// Package markov implements the FSM-analysis substrate of Section III's
// "first approach": extracting the state transition graph (STG) of a
// sequential circuit, solving the Chapman–Kolmogorov equations for the
// stationary state distribution, and estimating mixing/warm-up times.
//
// The paper argues this approach is exponential in the latch count and
// therefore impractical for real circuits — this package exists (a) to
// reproduce that argument quantitatively, (b) to provide an exact
// baseline estimator on small circuits, and (c) to implement the
// fixed-warm-up baseline (the paper's ref [9], Chou et al.) that DIPE's
// dynamic independence interval is compared against.
package markov
