package core

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// DefaultBatchCycles is the default batch size for EstimateBatchMeans:
// long enough that batch means of a few-cycle-correlated process are
// nearly independent.
const DefaultBatchCycles = 64

// EstimateBatchMeans is the consecutive-cycle baseline in the style of
// the paper's ref [1] (Najm, Goel, Hajj, DAC'95): every clock cycle is
// simulated with the general-delay simulator and power is averaged in
// batches of `batch` cycles; the batch means (approximately independent
// for batch >> correlation time) feed the stopping criterion.
//
// Against DIPE the trade-off is explicit: no randomness test and no
// zero-delay phase, but every simulated cycle pays general-delay cost,
// and the batch size is a blind a-priori guess where DIPE's interval is
// measured. The warm-up ablation quantifies the difference.
func EstimateBatchMeans(s *sim.Session, opts Options, batch int) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := rejectVariance(opts); err != nil {
		return Result{}, err
	}
	if batch < 1 {
		return Result{}, fmt.Errorf("core: batch size %d must be >= 1", batch)
	}
	start := time.Now()
	s.ResetCounters()
	s.StepHiddenN(opts.WarmupCycles)

	crit := opts.NewCriterion(opts.Spec)
	name := fmt.Sprintf("batch-means-%d/%s", batch, crit.Name())
	for !crit.Done() {
		if (crit.N()+1)*batch > opts.MaxSamples {
			return Result{
				Power:         crit.Estimate(),
				SampleSize:    crit.N() * batch,
				HalfWidth:     crit.HalfWidth(),
				HiddenCycles:  s.HiddenCycles,
				SampledCycles: s.SampledCycles,
				Elapsed:       time.Since(start),
				Criterion:     name,
				Converged:     false,
			}, nil
		}
		sum := 0.0
		for i := 0; i < batch; i++ {
			sum += s.StepSampled(nil)
		}
		crit.Add(sum / float64(batch))
	}
	return Result{
		Power: crit.Estimate(),
		// SampleSize counts simulated power cycles, keeping the cost
		// comparable with DIPE's sample counts.
		SampleSize:    crit.N() * batch,
		HalfWidth:     crit.HalfWidth(),
		HiddenCycles:  s.HiddenCycles,
		SampledCycles: s.SampledCycles,
		Elapsed:       time.Since(start),
		Criterion:     name,
		Converged:     true,
	}, nil
}
