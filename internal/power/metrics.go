package power

import "repro/internal/obs"

// Metrics is the attribution telemetry: how many breakdown reports were
// built, how many raw transitions they covered, and the most recent
// dynamic/leakage split. Like every obs consumer, a nil *Metrics is
// skipped with one branch per report — breakdown-off runs never touch
// an instrument.
type Metrics struct {
	// Breakdowns counts attribution reports built.
	Breakdowns *obs.Counter
	// Toggles counts raw per-node transitions folded into reports.
	Toggles *obs.Counter
	// Dynamic is the dynamic power total of the most recent report.
	Dynamic *obs.Gauge
	// Leakage is the static power total of the most recent report.
	Leakage *obs.Gauge
}

// NewMetrics registers the attribution metrics on r (nil r gives a nil
// Metrics, which disables the instrumentation).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Breakdowns: r.Counter("dipe_power_breakdowns_total", "Per-node power attribution reports built."),
		Toggles:    r.Counter("dipe_power_breakdown_toggles_total", "Raw node transitions folded into attribution reports."),
		Dynamic:    r.Gauge("dipe_power_dynamic_watts", "Dynamic power total of the most recent attribution report."),
		Leakage:    r.Gauge("dipe_power_leakage_watts", "Static (leakage) power total of the most recent attribution report."),
	}
}

// Observe records one finished report. Nil-safe on both receivers.
func (m *Metrics) Observe(rep *BreakdownReport) {
	if m == nil || rep == nil {
		return
	}
	var toggles uint64
	for i := range rep.Rows {
		toggles += rep.Rows[i].Toggles
	}
	m.Breakdowns.Inc()
	m.Toggles.Add(toggles)
	m.Dynamic.Set(rep.Dynamic)
	m.Leakage.Set(rep.Leakage)
}
