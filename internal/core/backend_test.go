package core

import (
	"testing"

	"repro/internal/bench89"
	"repro/internal/delay"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// requireGolden fails unless the two results are bit-identical in every
// estimation-visible field — the backend contract: switching backends
// may change throughput, never a single bit of the answer.
func requireGolden(t *testing.T, label string, packed, compiled Result) {
	t.Helper()
	if compiled.Power != packed.Power {
		t.Errorf("%s: power %v != %v", label, compiled.Power, packed.Power)
	}
	if compiled.HalfWidth != packed.HalfWidth {
		t.Errorf("%s: half-width %v != %v", label, compiled.HalfWidth, packed.HalfWidth)
	}
	if compiled.SampleSize != packed.SampleSize {
		t.Errorf("%s: sample size %d != %d", label, compiled.SampleSize, packed.SampleSize)
	}
	if compiled.Interval != packed.Interval {
		t.Errorf("%s: interval %d != %d", label, compiled.Interval, packed.Interval)
	}
	if compiled.HiddenCycles != packed.HiddenCycles || compiled.SampledCycles != packed.SampledCycles {
		t.Errorf("%s: cycles (%d, %d) != (%d, %d)", label,
			compiled.HiddenCycles, compiled.SampledCycles, packed.HiddenCycles, packed.SampledCycles)
	}
	if compiled.CVBeta != packed.CVBeta {
		t.Errorf("%s: cv beta %v != %v", label, compiled.CVBeta, packed.CVBeta)
	}
	if compiled.Variance != packed.Variance || compiled.Criterion != packed.Criterion {
		t.Errorf("%s: labeling (%q, %q) != (%q, %q)", label,
			compiled.Variance, compiled.Criterion, packed.Variance, packed.Criterion)
	}
	if compiled.Converged != packed.Converged {
		t.Errorf("%s: converged %v != %v", label, compiled.Converged, packed.Converged)
	}
	if !packed.Converged {
		t.Errorf("%s: reference run did not converge", label)
	}
}

// TestCompiledBackendGoldenParallel is the golden end-to-end test: the
// full EstimateParallel flow on the compiled backend reproduces the
// interpreted backend's mean, half-width, sample size and cycle split
// bit-for-bit, across power modes and every variance-reduction
// transform. Replication counts beyond one machine word force different
// shard layouts per backend (one 96-lane compiled shard vs two packed
// words), so the lane→seed contract itself is under test, not just the
// per-step semantics.
func TestCompiledBackendGoldenParallel(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	cases := []struct {
		label    string
		mode     power.PowerMode
		variance vr.Mode
		reps     int
	}{
		{"zero-delay/plain", power.ModeZeroDelay, vr.ModeNone, 96},
		{"zero-delay/antithetic", power.ModeZeroDelay, vr.ModeAntithetic, 64},
		{"general-delay/plain", power.ModeGeneralDelay, vr.ModeNone, 48},
		{"general-delay/control-variate", power.ModeGeneralDelay, vr.ModeControlVariate, 48},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.label, func(t *testing.T) {
			t.Parallel()
			opts := DefaultOptions()
			opts.Mode = tc.mode
			opts.Variance.Mode = tc.variance
			opts.Replications = tc.reps
			opts.Workers = 2
			opts.Backend = sim.BackendPacked
			packed, err := EstimateParallel(tb, factory, 33, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Backend = sim.BackendCompiled
			opts.Workers = 3 // a different pool must not matter either
			compiled, err := EstimateParallel(tb, factory, 33, opts)
			if err != nil {
				t.Fatal(err)
			}
			requireGolden(t, tc.label, packed, compiled)
			if packed.Backend != string(sim.BackendPacked) || compiled.Backend != string(sim.BackendCompiled) {
				t.Errorf("backends recorded as (%q, %q)", packed.Backend, compiled.Backend)
			}
			wantEngine := sim.EngineEventDriven
			if tc.mode.IsZeroDelay() {
				wantEngine = sim.EngineCompiledZeroDelay
			}
			if compiled.Engine != wantEngine {
				t.Errorf("compiled engine %q, want %q", compiled.Engine, wantEngine)
			}
		})
	}
}

// TestCompiledBackendAllZeroUpgradeEngine pins the all-zero-delay
// upgrade path: a general-delay run over a zero delay table is silently
// upgraded to word-parallel sampling, and Result.Engine must name the
// backend that actually observed it — the compiled zero-delay engine
// under the compiled backend, not the packed interpreter.
func TestCompiledBackendAllZeroUpgradeEngine(t *testing.T) {
	c := bench89.MustGet("s27")
	tb := NewTestbench(c, delay.Zero{}, power.DefaultCapModel(), power.DefaultSupply())
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = 16
	opts.Backend = sim.BackendPacked
	packed, err := EstimateParallel(tb, factory, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Backend = sim.BackendCompiled
	compiled, err := EstimateParallel(tb, factory, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireGolden(t, "all-zero upgrade", packed, compiled)
	if packed.Engine != sim.EnginePackedZeroDelay {
		t.Errorf("packed engine %q, want %q", packed.Engine, sim.EnginePackedZeroDelay)
	}
	if compiled.Engine != sim.EngineCompiledZeroDelay {
		t.Errorf("compiled engine %q, want %q", compiled.Engine, sim.EngineCompiledZeroDelay)
	}
	if packed.DelayModel != compiled.DelayModel {
		t.Errorf("delay models %q != %q", compiled.DelayModel, packed.DelayModel)
	}
}

// TestCompiledBackendGoldenStreamed checks the streamed (cluster
// worker) path: StreamReplications blocks under the compiled backend
// are bit-identical to the interpreted ones, shard layout differences
// and all.
func TestCompiledBackendGoldenStreamed(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	collect := func(backend sim.Backend, workers int) [][]float64 {
		opts := DefaultOptions()
		opts.Mode = power.ModeZeroDelay
		opts.Backend = backend
		opts.Workers = workers
		var blocks [][]float64
		err := StreamReplications(t.Context(), tb, factory, 21, opts, vr.Plan{},
			2, 0, 96, 4, 0, 3, 0, func(b ReplicationBlock) error {
				s := make([]float64, len(b.Samples))
				copy(s, b.Samples)
				blocks = append(blocks, s)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return blocks
	}
	ref := collect(sim.BackendPacked, 2)
	got := collect(sim.BackendCompiled, 1)
	if len(ref) != len(got) {
		t.Fatalf("block counts %d != %d", len(got), len(ref))
	}
	for i := range ref {
		if len(ref[i]) != len(got[i]) {
			t.Fatalf("block %d: lengths %d != %d", i, len(got[i]), len(ref[i]))
		}
		for j := range ref[i] {
			if ref[i][j] != got[i][j] {
				t.Fatalf("block %d sample %d: compiled %v, packed %v", i, j, got[i][j], ref[i][j])
			}
		}
	}
}

// TestBlockedGoldenS38417 is the large-circuit golden test of the
// cache-blocked and level-parallel executors at estimator level: the
// full EstimateParallel flow on s38417 must produce bit-identical
// results whether the compiled programs run as one linear pass
// (CacheBudget -1), cache-blocked segments (a deliberately tiny budget
// that forces many segments even at w=1), or level waves across
// goroutines (SessionWorkers 3). A fixed interval and a loose accuracy
// spec keep the run test-sized; the contract is exact equality, not
// statistics.
func TestBlockedGoldenS38417(t *testing.T) {
	c := bench89.MustGet("s38417")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	base := func() Options {
		opts := DefaultOptions()
		opts.Mode = power.ModeZeroDelay
		opts.Replications = 64
		opts.Workers = 2
		opts.MaxSamples = 1024 // cap the run; unconverged is fine for identity
		opts.Spec.RelErr = 0.5
		return opts
	}
	run := func(label string, mutate func(*Options)) Result {
		opts := base()
		mutate(&opts)
		res, err := EstimateParallelWithInterval(tb, factory, 7, opts, 2)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return res
	}
	ref := run("unblocked", func(o *Options) { o.CacheBudget = -1 })
	blocked := run("blocked", func(o *Options) { o.CacheBudget = 32 << 10 })
	parallel := run("parallel", func(o *Options) { o.SessionWorkers = 3 })
	if blocked.Power != ref.Power || blocked.HalfWidth != ref.HalfWidth || blocked.SampleSize != ref.SampleSize {
		t.Errorf("blocked: (%v, %v, %d) != unblocked (%v, %v, %d)",
			blocked.Power, blocked.HalfWidth, blocked.SampleSize, ref.Power, ref.HalfWidth, ref.SampleSize)
	}
	if parallel.Power != ref.Power || parallel.HalfWidth != ref.HalfWidth || parallel.SampleSize != ref.SampleSize {
		t.Errorf("parallel: (%v, %v, %d) != unblocked (%v, %v, %d)",
			parallel.Power, parallel.HalfWidth, parallel.SampleSize, ref.Power, ref.HalfWidth, ref.SampleSize)
	}
	if blocked.HiddenCycles != ref.HiddenCycles || parallel.HiddenCycles != ref.HiddenCycles {
		t.Errorf("hidden cycles diverge: unblocked %d, blocked %d, parallel %d",
			ref.HiddenCycles, blocked.HiddenCycles, parallel.HiddenCycles)
	}
}
