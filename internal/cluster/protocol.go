package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/vr"
)

// RunRequest asks a worker to simulate replications [RepLo, RepHi) of a
// job and stream back their power samples. It carries everything the
// sampling phase needs and nothing it does not: interval selection has
// already happened at the coordinator, and the stopping decision will
// happen there too.
type RunRequest struct {
	// Hash is the provenance hash of the circuit (SourceHash).
	Hash string `json:"hash"`
	// Source is the primary-input model; replication r draws from an
	// independent source seeded Seed+1+r.
	Source service.SourceSpec `json:"source"`
	// Seed is the job's base seed.
	Seed int64 `json:"seed"`
	// Mode is the power-observation mode ("" = general-delay).
	Mode string `json:"mode,omitempty"`
	// Backend is the lane-parallel simulation backend ("" = packed).
	// The backends are observation-equivalent, so a mixed cluster still
	// merges bit-identical samples; the field exists so operators can
	// pick throughput per job.
	Backend string `json:"backend,omitempty"`
	// VR is the resolved variance-reduction plan (zero value = plain
	// estimation). The coordinator freezes it — including the
	// regression-estimated control-variate coefficient and covariate
	// mean — before the sampled phase, so every worker transforms its
	// samples exactly as the single-process estimator would;
	// encoding/json's shortest round-trip float rendering keeps the
	// coefficients lossless on the wire.
	VR vr.Plan `json:"vr,omitzero"`
	// Warmup is the per-replication hidden warm-up cycle count.
	Warmup int `json:"warmup"`
	// Interval is the independence interval selected by the coordinator.
	Interval int `json:"interval"`
	// RepLo and RepHi bound the replication range (half-open).
	RepLo int `json:"repLo"`
	RepHi int `json:"repHi"`
	// Rounds is the block cadence: samples stream in blocks of
	// Rounds*(RepHi-RepLo), round-major.
	Rounds int `json:"rounds"`
	// SkipBlocks fast-forwards the first blocks without emitting them —
	// how a reassigned worker resumes a dead worker's stream exactly
	// where the merged prefix ends.
	SkipBlocks int `json:"skipBlocks,omitempty"`
	// MaxBlocks bounds the stream (0 = until client disconnect). The
	// coordinator sets it from the job's sample budget so an orphaned
	// stream can never run unbounded.
	MaxBlocks int `json:"maxBlocks,omitempty"`
	// Workers bounds the worker-process goroutine pool for this range
	// (0 = GOMAXPROCS of the worker).
	Workers int `json:"workers,omitempty"`
	// Breakdown asks the worker to accumulate per-node transition counts
	// and attach each block's count delta (StreamBlock.Counts). Counting
	// never changes the samples, so a mixed run (some attempts with the
	// flag, some without) still merges bit-identical estimates.
	Breakdown bool `json:"breakdown,omitempty"`
	// BudgetRounds is the merge side's total round budget under
	// Breakdown ((MaxSamples - seeded samples) / PerRound; 0 =
	// unbounded): the final block's count delta is clipped to it exactly
	// as the coordinator's merger clips the rounds it consumes.
	BudgetRounds int `json:"budgetRounds,omitempty"`
}

// Validate rejects requests a worker could not run.
func (r RunRequest) Validate() error {
	switch {
	case r.Hash == "":
		return fmt.Errorf("cluster: run request missing circuit hash")
	case r.Warmup < 0:
		return fmt.Errorf("cluster: negative warmup %d", r.Warmup)
	case r.Interval < 0:
		return fmt.Errorf("cluster: negative interval %d", r.Interval)
	case r.RepLo < 0 || r.RepHi <= r.RepLo:
		return fmt.Errorf("cluster: bad replication range [%d, %d)", r.RepLo, r.RepHi)
	case r.Rounds < 1:
		return fmt.Errorf("cluster: block rounds %d must be >= 1", r.Rounds)
	case r.SkipBlocks < 0:
		return fmt.Errorf("cluster: negative skipBlocks %d", r.SkipBlocks)
	case r.MaxBlocks < 0:
		return fmt.Errorf("cluster: negative maxBlocks %d", r.MaxBlocks)
	case r.Workers < 0:
		return fmt.Errorf("cluster: negative workers %d", r.Workers)
	case r.BudgetRounds < 0:
		return fmt.Errorf("cluster: negative budgetRounds %d", r.BudgetRounds)
	}
	if err := sim.Backend(r.Backend).Validate(); err != nil {
		return err
	}
	return r.VR.Validate()
}

// StreamHeader is the first line of a /v1/run response; the client
// checks it against the request before merging anything.
type StreamHeader struct {
	Lanes  int `json:"lanes"`
	Rounds int `json:"rounds"`
}

// StreamBlock is one round-block of samples: Rounds rounds, round-major
// with replications ascending within a round. encoding/json renders
// float64 in shortest round-trip form, so the wire format is lossless
// and the merged estimate stays bit-identical to a local run.
type StreamBlock struct {
	Index   int       `json:"b"`
	Samples []float64 `json:"s"`
	// Counts is the block's per-node transition-count delta (indexed by
	// NodeID, summed over the range's replications), present only when
	// the run requested a breakdown. Integers survive JSON exactly below
	// 2^53 — a bound no single block can reach — so folding the merged
	// blocks' deltas reproduces the in-process accumulator bit for bit.
	Counts []uint64 `json:"c,omitempty"`
}

// InstallRequest propagates a circuit to a worker that missed its hash.
type InstallRequest struct {
	Hash   string                `json:"hash"`
	Source service.CircuitSource `json:"source"`
}

// InstallResponse acknowledges an installed circuit.
type InstallResponse struct {
	Hash  string `json:"hash"`
	Gates int    `json:"gates"`
}

// SourceHash content-addresses a circuit's provenance. Builtin circuits
// hash their generator identity; uploads hash name, format and the full
// netlist text. Workers recompute the hash over the propagated
// provenance and refuse mismatches, so a hash uniquely names one frozen
// circuit across the whole cluster. The definition lives in the service
// package (service.HashSource) so the result cache shares the same
// circuit identity without importing this package.
func SourceHash(src service.CircuitSource) string {
	return service.HashSource(src)
}

// errorBody is the uniform JSON error shape, mirroring the service API.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON and readJSON mirror the service package's helpers (which
// are unexported there).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// maxBodyBytes bounds request bodies; netlist text dominates and the
// largest benchmark serializations are well under 1 MiB.
const maxBodyBytes = 8 << 20

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}
