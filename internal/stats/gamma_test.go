package stats

import (
	"math"
	"testing"
)

func TestRegLowerGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^-x.
	for _, x := range []float64{0.1, 1, 3, 10} {
		almost(t, "P(1,x)", RegLowerGamma(1, x), 1-math.Exp(-x), 1e-12)
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		almost(t, "P(0.5,x)", RegLowerGamma(0.5, x), math.Erf(math.Sqrt(x)), 1e-12)
	}
	almost(t, "P(a,0)", RegLowerGamma(3, 0), 0, 0)
}

func TestRegLowerGammaMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x < 30; x += 0.25 {
		v := RegLowerGamma(2.5, x)
		if v < prev-1e-14 {
			t.Fatalf("P(2.5, %g) = %g decreased from %g", x, v, prev)
		}
		if v < 0 || v > 1 {
			t.Fatalf("P(2.5, %g) = %g outside [0,1]", x, v)
		}
		prev = v
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Chi-square with 2 dof is Exponential(1/2): F(x) = 1 - e^{-x/2}.
	for _, x := range []float64{0.5, 2, 5.991} {
		almost(t, "chi2(2)", ChiSquareCDF(x, 2), 1-math.Exp(-x/2), 1e-12)
	}
	// Classical critical values: P(chi2_10 <= 18.307) = 0.95.
	almost(t, "chi2(10) 95%", ChiSquareCDF(18.307038, 10), 0.95, 1e-6)
	almost(t, "chi2(1) at 3.841", ChiSquareCDF(3.841459, 1), 0.95, 1e-6)
	if ChiSquareCDF(-1, 3) != 0 {
		t.Error("negative x should give 0")
	}
}

func TestChiSquareQuantileInvertsCDF(t *testing.T) {
	for _, k := range []int{1, 2, 5, 10, 50} {
		for _, p := range []float64{0.01, 0.5, 0.95, 0.99} {
			q := ChiSquareQuantile(p, k)
			almost(t, "chi2 roundtrip", ChiSquareCDF(q, k), p, 1e-9)
		}
	}
}

func TestGammaPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RegLowerGamma(0, 1) },
		func() { RegLowerGamma(1, -1) },
		func() { ChiSquareCDF(1, 0) },
		func() { ChiSquareQuantile(0, 3) },
	} {
		func() {
			defer func() { recover() }()
			fn()
			t.Error("expected panic")
		}()
	}
}
