package markov

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/stopping"
)

// EstimateResult is the outcome of the exact state-sampling estimator.
type EstimateResult struct {
	Power      float64 // watts
	SampleSize int
	HalfWidth  float64
	Converged  bool
	States     int // reachable states used
}

// EstimateByStateSampling implements the paper's Section III "first
// approach" end to end: with the STG extracted and the Chapman–
// Kolmogorov equations solved for the stationary distribution, each
// power sample is generated from an independently drawn (state, input,
// next-input) triple — i.i.d. by construction, no independence interval
// needed. Feasible only below the exponential wall (MaxExactLatches).
//
// Per sample: S1 ~ stationary, V1 ~ input distribution, the circuit
// settles on (V1, S1); the sampled cycle then applies fresh V2 and the
// captured S2 = delta(V1, S1), and the event-driven simulator returns
// the transition power of Eq. 1.
func EstimateByStateSampling(s *sim.Session, g *STG, stationary []float64, inputP []float64,
	spec stopping.Spec, newCriterion stopping.Factory, seed int64, checkEvery, maxSamples int) (EstimateResult, error) {

	if err := spec.Validate(); err != nil {
		return EstimateResult{}, err
	}
	c := s.Circuit()
	if g.Latches != len(c.Latches) {
		return EstimateResult{}, fmt.Errorf("markov: STG has %d latches, circuit has %d", g.Latches, len(c.Latches))
	}
	if len(stationary) != g.NumStates() {
		return EstimateResult{}, fmt.Errorf("markov: distribution over %d states, STG has %d", len(stationary), g.NumStates())
	}
	if len(inputP) != len(c.Inputs) {
		return EstimateResult{}, fmt.Errorf("markov: %d input probabilities, circuit has %d inputs", len(inputP), len(c.Inputs))
	}
	if checkEvery < 1 || maxSamples < checkEvery {
		return EstimateResult{}, fmt.Errorf("markov: bad cadence checkEvery=%d maxSamples=%d", checkEvery, maxSamples)
	}

	rng := rand.New(rand.NewSource(seed))
	crit := newCriterion(spec)
	q := make([]bool, g.Latches)
	v1 := make([]bool, len(c.Inputs))
	res := EstimateResult{States: g.NumStates()}
	for !crit.Done() {
		if crit.N()+checkEvery > maxSamples {
			res.Power = crit.Estimate()
			res.SampleSize = crit.N()
			res.HalfWidth = crit.HalfWidth()
			return res, nil
		}
		for i := 0; i < checkEvery; i++ {
			g.SampleState(stationary, rng, q)
			for b := range v1 {
				v1[b] = rng.Float64() < inputP[b]
			}
			s.SetState(q)
			s.SetPins(v1)
			// StepSampled draws V2 from the session's source and applies
			// the captured next state — exactly the (V1,S1)->(V2,S2)
			// transition of Eq. 1.
			crit.Add(s.StepSampled(nil))
		}
	}
	res.Power = crit.Estimate()
	res.SampleSize = crit.N()
	res.HalfWidth = crit.HalfWidth()
	res.Converged = true
	return res, nil
}
