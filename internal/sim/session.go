package sim

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// Session drives a sequential circuit through clock cycles, maintaining
// the (input pattern, latch state, settled node values) triple between
// cycles. It is the substrate for the paper's two-phase sampling:
//
//   - StepHidden advances one cycle with the zero-delay simulator only
//     (used inside the independence interval, no power observation);
//   - StepSampled advances one cycle with the event-driven general-delay
//     simulator and returns the weighted transition sum of Eq. 1.
//
// The class invariant is that vals always holds settled node values for
// the current (pins, q) pair, so the two step kinds can be interleaved
// freely.
type Session struct {
	c   *netlist.Circuit
	zd  *ZeroDelay
	ed  *EventDriven
	src vectors.Source

	weights []float64

	vals  []bool
	pins  []bool
	q     []bool
	nextQ []bool
	buf   []bool

	// HiddenCycles and SampledCycles count the work done since the last
	// ResetCounters; they are the paper's simulation-cost metrics.
	HiddenCycles  uint64
	SampledCycles uint64
}

// NewSession builds a session. weights[i] is the per-transition power
// contribution of node i (see power.BuildWeights); src must have width
// len(c.Inputs). The circuit starts in the all-zero latch state with an
// all-zero input pattern, settled.
func NewSession(c *netlist.Circuit, dt *delay.Table, src vectors.Source, weights []float64) *Session {
	if src.Width() != len(c.Inputs) {
		panic(fmt.Sprintf("sim: source width %d, circuit has %d inputs", src.Width(), len(c.Inputs)))
	}
	if len(weights) != len(c.Nodes) {
		panic(fmt.Sprintf("sim: weights length %d, circuit has %d nodes", len(weights), len(c.Nodes)))
	}
	s := &Session{
		c:       c,
		zd:      NewZeroDelay(c),
		ed:      NewEventDriven(c, dt),
		src:     src,
		weights: weights,
		vals:    make([]bool, len(c.Nodes)),
		pins:    make([]bool, len(c.Inputs)),
		q:       make([]bool, len(c.Latches)),
		nextQ:   make([]bool, len(c.Latches)),
		buf:     make([]bool, len(c.Inputs)),
	}
	s.zd.Settle(s.vals, s.pins, s.q)
	return s
}

// Circuit returns the simulated circuit.
func (s *Session) Circuit() *netlist.Circuit { return s.c }

// Source returns the session's input pattern source.
func (s *Session) Source() vectors.Source { return s.src }

// Reset returns the circuit to the all-zero reset state and re-settles.
// Cycle counters are preserved; use ResetCounters to clear them.
func (s *Session) Reset() {
	for i := range s.pins {
		s.pins[i] = false
	}
	for i := range s.q {
		s.q[i] = false
	}
	s.zd.Settle(s.vals, s.pins, s.q)
}

// ResetCounters zeroes the cycle-cost counters.
func (s *Session) ResetCounters() {
	s.HiddenCycles = 0
	s.SampledCycles = 0
}

// advance computes the next latch state from the current settled values
// and draws the next input pattern; it returns them without applying.
func (s *Session) advance() {
	s.zd.NextState(s.vals, s.nextQ)
	s.src.Next(s.buf)
}

// StepHidden advances one clock cycle using the zero-delay simulator.
// No transitions are counted.
func (s *Session) StepHidden() {
	s.advance()
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	s.zd.Settle(s.vals, s.pins, s.q)
	s.HiddenCycles++
}

// StepHiddenN advances n cycles with StepHidden.
func (s *Session) StepHiddenN(n int) {
	for i := 0; i < n; i++ {
		s.StepHidden()
	}
}

// StepSampled advances one clock cycle using the event-driven simulator
// and returns the weighted transition sum for the cycle: sum_i w_i * n_i,
// which equals the cycle's average power when the weights are built as
// C_i * VDD^2 / (2T) (see power.BuildWeights). If counts is non-nil, the
// per-node transition counts are accumulated into it.
func (s *Session) StepSampled(counts []uint32) float64 {
	s.advance()
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	p := s.ed.Cycle(s.vals, s.pins, s.q, s.weights, counts)
	s.SampledCycles++
	return p
}

// SettleTime returns the simulated settling time of the most recent
// sampled cycle.
func (s *Session) SettleTime() delay.Picoseconds { return s.ed.LastSettleTime }

// Events returns the applied event count of the most recent sampled cycle.
func (s *Session) Events() uint64 { return s.ed.LastEvents }

// State copies the current latch state into dst (len = #latches).
func (s *Session) State(dst []bool) { copy(dst, s.q) }

// SetState forces the latch state (len = #latches) and re-settles with
// the current input pattern. Used by the FSM-analysis estimator, which
// samples states from a stationary distribution.
func (s *Session) SetState(q []bool) {
	copy(s.q, q)
	s.zd.Settle(s.vals, s.pins, s.q)
}

// SetPins forces the current input pattern and re-settles.
func (s *Session) SetPins(pins []bool) {
	copy(s.pins, pins)
	s.zd.Settle(s.vals, s.pins, s.q)
}

// Values returns the settled value array (live; callers must not modify).
func (s *Session) Values() []bool { return s.vals }

// SetObserver installs a per-transition callback on the underlying
// event-driven simulator (see EventDriven.SetObserver). Only sampled
// cycles produce observations; hidden cycles are functional.
func (s *Session) SetObserver(fn func(id netlist.NodeID, t delay.Picoseconds, v bool)) {
	s.ed.SetObserver(fn)
}
