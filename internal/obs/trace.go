package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one recorded step of a job's lifecycle. Times are
// milliseconds relative to the trace start (monotonic clock); EndMS is
// nil for instantaneous events.
type Span struct {
	Name  string   `json:"name"`
	T     float64  `json:"tMs"`
	EndMS *float64 `json:"endMs,omitempty"`
	Attrs []string `json:"attrs,omitempty"` // alternating key, value
}

// maxSpans bounds a trace; a long sampling tail emits one merge-round
// span per merged block, and a runaway job must not grow memory
// without bound. Overflow increments Dropped instead of appending.
const maxSpans = 4096

// Trace is an append-only ordered span list for one job. All methods
// are safe for concurrent use and nil-receiver safe, so untraced runs
// (CLI, tests) pay a single branch per span site.
type Trace struct {
	mu      sync.Mutex
	base    time.Time
	offset  float64 // added to new span times after Import
	spans   []Span
	dropped int
}

// NewTrace starts an empty trace anchored at the current time.
func NewTrace() *Trace {
	return &Trace{base: time.Now()}
}

func (t *Trace) nowMS() float64 {
	return t.offset + float64(time.Since(t.base))/float64(time.Millisecond)
}

func (t *Trace) append(s Span) {
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Event records an instantaneous span.
func (t *Trace) Event(name string, attrs ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.append(Span{Name: name, T: t.nowMS(), Attrs: attrs})
	t.mu.Unlock()
}

// Begin records a span that is still open and returns a closure that
// stamps its end time. The span is appended immediately so ordering
// follows start times even when spans nest or overlap.
func (t *Trace) Begin(name string, attrs ...string) func() {
	if t == nil {
		return func() {}
	}
	t.mu.Lock()
	idx := -1
	if len(t.spans) < maxSpans {
		idx = len(t.spans)
	}
	t.append(Span{Name: name, T: t.nowMS(), Attrs: attrs})
	t.mu.Unlock()
	return func() {
		if idx < 0 {
			return
		}
		t.mu.Lock()
		end := t.nowMS()
		t.spans[idx].EndMS = &end
		t.mu.Unlock()
	}
}

// Import splices spans recorded before a restart (from the job
// journal) ahead of everything recorded afterwards: the imported spans
// keep their timestamps and subsequent spans are offset past the
// latest imported time, so the combined list stays monotonically
// ordered across the resume boundary.
func (t *Trace) Import(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	latest := t.offset
	for _, s := range spans {
		if s.T > latest {
			latest = s.T
		}
		if s.EndMS != nil && *s.EndMS > latest {
			latest = *s.EndMS
		}
	}
	t.offset = latest
	t.base = time.Now()
	t.spans = append(append([]Span(nil), spans...), t.spans...)
}

// Spans returns a copy of the recorded spans in order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many spans were discarded after the trace filled.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

type traceKey struct{}

// ContextWithTrace attaches a trace to a context so lower layers (core
// estimator, cluster coordinator) can record spans without new
// parameters.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil (and nil is safe to
// record into).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
