// Custom stopping criteria: Section IV treats the stopping criterion as
// a pluggable component — "depending on the desired robustness, one can
// choose a parametric criterion based on the central-limit theorem, or
// nonparametric ones". This example
//
//  1. compares the three built-in criteria on one circuit, and
//  2. implements a custom criterion (fixed sample budget with a
//     jackknifed half-width report) against the same interface.
//
// go run ./examples/custom_stopping
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

// fixedBudget is a user-defined stopping criterion: it stops after
// exactly N samples and reports a CLT half-width for whatever confidence
// the spec asked. It shows the minimal Criterion surface a downstream
// user must implement.
type fixedBudget struct {
	budget int
	conf   float64
	n      int
	sum    float64
	sumSq  float64
}

func (f *fixedBudget) Add(x float64) { f.n++; f.sum += x; f.sumSq += x * x }
func (f *fixedBudget) Done() bool    { return f.n >= f.budget }
func (f *fixedBudget) Estimate() float64 {
	if f.n == 0 {
		return 0
	}
	return f.sum / float64(f.n)
}
func (f *fixedBudget) HalfWidth() float64 {
	if f.n < 2 {
		return math.Inf(1)
	}
	mean := f.Estimate()
	varr := (f.sumSq - float64(f.n)*mean*mean) / float64(f.n-1)
	if varr < 0 {
		varr = 0
	}
	// 2.576 ~ z at 0.995; good enough for a demo criterion.
	return 2.576 * math.Sqrt(varr/float64(f.n))
}
func (f *fixedBudget) N() int       { return f.n }
func (f *fixedBudget) Reset()       { *f = fixedBudget{budget: f.budget, conf: f.conf} }
func (f *fixedBudget) Name() string { return fmt.Sprintf("fixed-%d", f.budget) }

func main() {
	circuit, err := dipe.Benchmark("s386")
	if err != nil {
		log.Fatal(err)
	}
	tb := dipe.NewTestbench(circuit)
	width := len(circuit.Inputs)
	fmt.Println(circuit.ComputeStats())

	ref := dipe.RunReference(tb.NewSession(dipe.NewIIDSource(width, 0.5, 99)), 256, 150_000)
	fmt.Printf("reference: %s\n\n", dipe.FormatWatts(ref.Power))

	run := func(label string, opts dipe.Options, seed int64) {
		res, err := dipe.Estimate(tb.NewSession(dipe.NewIIDSource(width, 0.5, seed)), opts)
		if err != nil {
			log.Fatal(err)
		}
		dev := 100 * (res.Power - ref.Power) / ref.Power
		fmt.Printf("%-22s power=%12s  n=%6d  half-width=%5.2f%%  dev=%+5.2f%%\n",
			label, dipe.FormatWatts(res.Power), res.SampleSize, 100*res.RelHalfWidth(), dev)
	}

	// The three built-in criteria at the paper's spec.
	for _, c := range []struct {
		label   string
		factory func(dipe.Spec) dipe.Criterion
	}{
		{"normal (CLT, [11])", dipe.NormalCriterion},
		{"ks band ([6])", dipe.KSCriterion},
		{"order-stats ([7])", dipe.OrderStatisticsCriterion},
	} {
		opts := dipe.DefaultOptions()
		opts.NewCriterion = c.factory
		run(c.label, opts, 42)
	}

	// The custom criterion: spend exactly 2048 samples, report what you
	// got. Useful for fixed simulation budgets.
	opts := dipe.DefaultOptions()
	opts.NewCriterion = func(spec dipe.Spec) dipe.Criterion {
		return &fixedBudget{budget: 2048, conf: spec.Confidence}
	}
	run("custom fixed-2048", opts, 42)

	fmt.Println("\nThe distribution-free criteria buy robustness with samples; the")
	fmt.Println("custom budget criterion trades guaranteed accuracy for a fixed cost.")
}
