//go:build !slow

package core

// coverageRuns is the per-mode repetition count of the CI-coverage
// conformance suite in the default test run: large enough for a
// meaningful binomial band, small enough to keep `go test` interactive.
// The nightly job builds with -tags slow for the full-size variant.
const coverageRuns = 60
