package sim

import (
	"math"
	"testing"

	"repro/internal/bench89"
	"repro/internal/vectors"
)

// iidSources builds lane sources for global lanes [lo, hi): lane k is
// seeded base+k, the same mapping the parallel estimator uses, so any
// partition of the lane space draws the same per-lane streams.
func iidSources(width, lo, hi int, base int64) []vectors.Source {
	srcs := make([]vectors.Source, hi-lo)
	for k := range srcs {
		srcs[k] = vectors.NewIID(width, 0.5, base+int64(lo+k))
	}
	return srcs
}

// TestToggleCountsThreeWayDifferential pins the per-node transition
// counts three ways over every bench89 circuit: the scalar
// ZeroDelayToggle engine (one session per lane), the packed
// interpreter's popcounted toggle diff, and the compiled backend's
// scatter — at lane widths crossing every word-partition boundary (one
// lane, a partial word, one word plus one, and eight full words). The
// counts are integer sums, so all three must agree exactly, not within
// tolerance: this is the invariant that makes breakdown reports
// backend- and shard-independent.
func TestToggleCountsThreeWayDifferential(t *testing.T) {
	const (
		hidden  = 6
		sampled = 10
		base    = int64(9000)
	)
	widths := []int{1, 63, 65, 512}
	for _, name := range bench89.Names() {
		c := bench89.MustGet(name)
		if testing.Short() && c.NumGates() > 700 {
			continue
		}
		w := make([]float64, c.NumNodes())
		for i := range w {
			w[i] = 1 + float64(i%5)
		}
		for _, lanes := range widths {
			if testing.Short() && lanes > 65 {
				continue
			}
			// Scalar reference: one ZeroDelayToggle session per lane,
			// accumulating into a shared count buffer.
			want := make([]uint64, c.NumNodes())
			for k := 0; k < lanes; k++ {
				s := NewSessionEngine(c, NewZeroDelayToggle(c),
					vectors.NewIID(len(c.Inputs), 0.5, base+int64(k)), w)
				s.StepHiddenN(hidden)
				for i := 0; i < sampled; i++ {
					s.StepSampled(want)
				}
			}
			for _, backend := range Backends() {
				got := make([]uint64, c.NumNodes())
				for lo := 0; lo < lanes; lo += MaxLanes {
					hi := min(lo+MaxLanes, lanes)
					ls := NewLaneSession(backend, c, iidSources(len(c.Inputs), lo, hi, base))
					ls.AccumulateToggles(got)
					powers := make([]float64, hi-lo)
					ls.StepHiddenN(hidden)
					for i := 0; i < sampled; i++ {
						ls.StepSampled(w, powers)
					}
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s lanes=%d %s: node %s counts %d, scalar %d",
							name, lanes, backend, c.Nodes[i].Name, got[i], want[i])
						break
					}
				}
			}
		}
	}
}

// TestToggleCountsGeneralDelayMatchScalar covers the event-driven
// sampled path (StepSampledWith) and the paired observation path
// (StepSampledBoth): both accumulate the scalar engine's per-node
// counts, and the covariate word-level toggle diff of StepSampledBoth
// must not double-count.
func TestToggleCountsGeneralDelayMatchScalar(t *testing.T) {
	c := bench89.MustGet("s298")
	const lanes = 9
	const base = int64(77)
	w := make([]float64, c.NumNodes())
	for i := range w {
		w[i] = 1
	}
	for _, both := range []bool{false, true} {
		want := make([]uint64, c.NumNodes())
		for k := 0; k < lanes; k++ {
			s := NewSessionEngine(c, NewZeroDelayToggle(c),
				vectors.NewIID(len(c.Inputs), 0.5, base+int64(k)), w)
			s.StepHiddenN(4)
			for i := 0; i < 12; i++ {
				s.StepSampled(want)
			}
		}
		got := make([]uint64, c.NumNodes())
		ps := NewPackedSession(c, iidSources(len(c.Inputs), 0, lanes, base))
		ps.AccumulateToggles(got)
		engine := NewZeroDelayToggle(c)
		powers := make([]float64, lanes)
		toggles := make([]float64, lanes)
		ps.StepHiddenN(4)
		for i := 0; i < 12; i++ {
			if both {
				ps.StepSampledBoth(engine, w, powers, toggles)
			} else {
				ps.StepSampledWith(engine, w, powers)
			}
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("both=%v: node %s counts %d, scalar %d", both, c.Nodes[i].Name, got[i], want[i])
			}
		}
	}
}

// TestToggleCountsNoOverflowAt32Bits is the widening regression test:
// per-node counts live in uint64 accumulators precisely because a long
// run at 64 lanes crosses 2^32 per node (a clock-like node toggling
// every cycle needs only ~9 minutes of simulated 100 MHz time). A
// pre-loaded accumulator at the uint32 boundary must keep counting past
// it — under []uint32 arithmetic these adds wrapped to small values.
func TestToggleCountsNoOverflowAt32Bits(t *testing.T) {
	c := bench89.MustGet("s298")
	w := make([]float64, c.NumNodes())
	for _, backend := range Backends() {
		counts := make([]uint64, c.NumNodes())
		for i := range counts {
			counts[i] = math.MaxUint32 - 8
		}
		ls := NewLaneSession(backend, c, iidSources(len(c.Inputs), 0, MaxLanes, 5))
		ls.AccumulateToggles(counts)
		powers := make([]float64, MaxLanes)
		ls.StepHiddenN(4)
		for i := 0; i < 32; i++ {
			ls.StepSampled(w, powers)
		}
		crossed := false
		for _, n := range counts {
			if n < math.MaxUint32-8 {
				t.Fatalf("%s: count wrapped to %d", backend, n)
			}
			if n > math.MaxUint32 {
				crossed = true
			}
		}
		if !crossed {
			t.Fatalf("%s: no node crossed the 32-bit boundary; the regression test lost its teeth", backend)
		}
	}
}
