package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bench89"
	"repro/internal/delay"
	"repro/internal/vectors"
)

// laneSources builds the fixed lane→seed mapping used throughout the
// tests: lane k gets an i.i.d. source seeded base+k.
func laneSources(width, lanes int, base int64) []vectors.Source {
	srcs := make([]vectors.Source, lanes)
	for k := range srcs {
		srcs[k] = vectors.NewIID(width, 0.5, base+int64(k))
	}
	return srcs
}

// TestPropertyPackedMatchesScalar is the central bit-parallel property
// over seeded random circuits: after any multi-cycle run with latch
// feedback, every lane of the packed simulator settles to exactly the
// same node values as a scalar ZeroDelay session driven by the same
// seed. All 64 lanes are checked every cycle.
func TestPropertyPackedMatchesScalar(t *testing.T) {
	check := func(seed uint32) bool {
		sig := randomSignature(seed)
		c, err := bench89.Generate(sig)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		const lanes = MaxLanes
		base := int64(seed)*1000 + 1
		ps := NewPackedSession(c, laneSources(len(c.Inputs), lanes, base))
		w := make([]float64, c.NumNodes())
		scalar := make([]*Session, lanes)
		dt := delay.BuildTable(c, delay.DefaultFanoutLoaded())
		for k := range scalar {
			scalar[k] = NewSession(c, dt, vectors.NewIID(len(c.Inputs), 0.5, base+int64(k)), w)
		}
		vals := make([]bool, c.NumNodes())
		for cycle := 0; cycle < 12; cycle++ {
			ps.StepHidden()
			for k := 0; k < lanes; k++ {
				scalar[k].StepHidden()
			}
			for k := 0; k < lanes; k++ {
				ps.ExtractLane(k, vals, nil, nil)
				ref := scalar[k].Values()
				for i := range vals {
					if vals[i] != ref[i] {
						t.Logf("seed %d cycle %d lane %d: node %s mismatch",
							seed, cycle, k, c.Nodes[i].Name)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPackedSampledMatchesScalar interleaves hidden and sampled
// steps (the estimator's two-phase pattern) and asserts lane state AND
// per-cycle power agree with scalar sessions for every lane.
func TestPropertyPackedSampledMatchesScalar(t *testing.T) {
	check := func(seed uint32) bool {
		sig := randomSignature(seed)
		c, err := bench89.Generate(sig)
		if err != nil {
			return false
		}
		const lanes = MaxLanes
		base := int64(seed)*2000 + 7
		ps := NewPackedSession(c, laneSources(len(c.Inputs), lanes, base))
		w := make([]float64, c.NumNodes())
		for i := range w {
			w[i] = 1 + float64(i%5)
		}
		dt := delay.BuildTable(c, delay.DefaultFanoutLoaded())
		ed := NewEventDriven(c, dt)
		scalar := make([]*Session, lanes)
		for k := range scalar {
			scalar[k] = NewSession(c, dt, vectors.NewIID(len(c.Inputs), 0.5, base+int64(k)), w)
		}
		rng := rand.New(rand.NewSource(int64(seed) + 3))
		powers := make([]float64, lanes)
		vals := make([]bool, c.NumNodes())
		q := make([]bool, len(c.Latches))
		sq := make([]bool, len(c.Latches))
		for cycle := 0; cycle < 20; cycle++ {
			if rng.Intn(2) == 0 {
				ps.StepHidden()
				for k := 0; k < lanes; k++ {
					scalar[k].StepHidden()
				}
			} else {
				ps.StepSampledWith(ed, w, powers)
				for k := 0; k < lanes; k++ {
					p := scalar[k].StepSampled(nil)
					if p != powers[k] {
						t.Logf("seed %d cycle %d lane %d: power %g, scalar %g",
							seed, cycle, k, powers[k], p)
						return false
					}
				}
			}
			for k := 0; k < lanes; k++ {
				ps.ExtractLane(k, vals, nil, q)
				scalar[k].State(sq)
				for i := range q {
					if q[i] != sq[i] {
						t.Logf("seed %d cycle %d lane %d: latch %d mismatch", seed, cycle, k, i)
						return false
					}
				}
				ref := scalar[k].Values()
				for i := range vals {
					if vals[i] != ref[i] {
						t.Logf("seed %d cycle %d lane %d: node %s mismatch",
							seed, cycle, k, c.Nodes[i].Name)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPackedCounters: the per-replication cycle counters scale with the
// lane count.
func TestPackedCounters(t *testing.T) {
	c := bench89.S27()
	const lanes = 5
	ps := NewPackedSession(c, laneSources(len(c.Inputs), lanes, 11))
	ed := NewEventDriven(c, delay.BuildTable(c, delay.Unit{}))
	w := make([]float64, c.NumNodes())
	powers := make([]float64, lanes)
	ps.StepHiddenN(7)
	ps.StepSampledWith(ed, w, powers)
	ps.StepSampledWith(ed, w, powers)
	if ps.HiddenCycles != 7*lanes {
		t.Errorf("HiddenCycles = %d, want %d", ps.HiddenCycles, 7*lanes)
	}
	if ps.SampledCycles != 2*lanes {
		t.Errorf("SampledCycles = %d, want %d", ps.SampledCycles, 2*lanes)
	}
	ps.ResetCounters()
	if ps.HiddenCycles != 0 || ps.SampledCycles != 0 {
		t.Error("ResetCounters did not clear")
	}
}

// TestPackedFewerLanes: a partially filled packed session (lanes < 64)
// still matches scalar sessions lane-for-lane.
func TestPackedFewerLanes(t *testing.T) {
	c := bench89.MustGet("s298")
	const lanes = 9
	base := int64(41)
	ps := NewPackedSession(c, laneSources(len(c.Inputs), lanes, base))
	w := make([]float64, c.NumNodes())
	dt := delay.BuildTable(c, delay.DefaultFanoutLoaded())
	scalar := make([]*Session, lanes)
	for k := range scalar {
		scalar[k] = NewSession(c, dt, vectors.NewIID(len(c.Inputs), 0.5, base+int64(k)), w)
	}
	vals := make([]bool, c.NumNodes())
	pins := make([]bool, len(c.Inputs))
	for cycle := 0; cycle < 50; cycle++ {
		ps.StepHidden()
		for k := 0; k < lanes; k++ {
			scalar[k].StepHidden()
			ps.ExtractLane(k, vals, pins, nil)
			ref := scalar[k].Values()
			for i := range vals {
				if vals[i] != ref[i] {
					t.Fatalf("cycle %d lane %d: node %s mismatch", cycle, k, c.Nodes[i].Name)
				}
			}
		}
	}
}
