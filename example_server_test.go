package dipe_test

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro"
)

// ExampleNewServer runs the power-estimation service in-process and
// drives one job through the submit → wait lifecycle over HTTP — the
// same flow cmd/dipe-server exposes on a real port. Estimates are
// deterministic: identical requests (circuit, source, seed, options)
// always return bit-identical results.
func ExampleNewServer() {
	srv := dipe.NewServer(dipe.DefaultServerConfig())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Submit an estimation job for the genuine s27 benchmark.
	body := `{"circuit":"s27","seed":42,"options":{"replications":16,"workers":2}}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	// Block until the job finishes (clients may also poll /v1/jobs/{id}).
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/wait?timeout=60s")
	if err != nil {
		log.Fatal(err)
	}
	var done struct {
		State  string `json:"state"`
		Result struct {
			Power     float64 `json:"power"`
			Converged bool    `json:"converged"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&done); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	fmt.Printf("state: %s\n", done.State)
	fmt.Printf("power: %s\n", dipe.FormatWatts(done.Result.Power))
	fmt.Printf("converged: %v\n", done.Result.Converged)
	// Output:
	// state: done
	// power: 45.718 uW
	// converged: true
}
