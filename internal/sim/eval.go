// Package sim provides the two gate-level simulators the estimation
// technique relies on (Section IV of the paper):
//
//   - a zero-delay levelized functional simulator, used to advance the
//     circuit state cheaply through the independence interval, and
//   - an event-driven general-delay simulator with inertial gate delays,
//     used on sampled cycles to observe every transition (including
//     glitches) for the power computation of Eq. 1.
//
// Both simulators operate on the same dense value array, so a session can
// interleave them cycle by cycle.
package sim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// evalNode computes the functional value of a combinational node from the
// current value array. It is the single source of truth for gate
// semantics in both simulators (the zero-delay sweep and event-driven
// re-evaluation), guaranteeing they agree on settled values.
func evalNode(vals []bool, nd *netlist.Node) bool {
	fi := nd.Fanin
	switch nd.Kind {
	case logic.Buf:
		return vals[fi[0]]
	case logic.Not:
		return !vals[fi[0]]
	case logic.And:
		for _, f := range fi {
			if !vals[f] {
				return false
			}
		}
		return true
	case logic.Nand:
		for _, f := range fi {
			if !vals[f] {
				return true
			}
		}
		return false
	case logic.Or:
		for _, f := range fi {
			if vals[f] {
				return true
			}
		}
		return false
	case logic.Nor:
		for _, f := range fi {
			if vals[f] {
				return false
			}
		}
		return true
	case logic.Xor:
		x := false
		for _, f := range fi {
			x = x != vals[f]
		}
		return x
	case logic.Xnor:
		x := true
		for _, f := range fi {
			x = x != vals[f]
		}
		return x
	case logic.Const0:
		return false
	case logic.Const1:
		return true
	}
	panic("sim: evalNode on non-combinational node " + nd.Name)
}
