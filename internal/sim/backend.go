package sim

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/vectors"
)

// Backend names a lane-parallel simulation backend for the sampling
// phase: the interpreted packed sweep or the compiled word-level
// program. The empty string means the default (compiled, since BENCH_6
// gates its ≥2x duty-cycle advantage in CI; "packed" remains the
// escape hatch).
type Backend string

const (
	// BackendPacked is the interpreted bit-parallel simulator
	// (PackedSession): one levelized CSR sweep per cycle, 64 lanes.
	BackendPacked Backend = "packed"
	// BackendCompiled is the compiled word-level engine
	// (CompiledSession): the circuit is compiled once into straight-line
	// bytecode and replayed, with up to CompiledMaxLanes lanes per step.
	BackendCompiled Backend = "compiled"
)

// Canonical maps the empty backend to the default.
func (b Backend) Canonical() Backend {
	if b == "" {
		return BackendCompiled
	}
	return b
}

// Validate rejects unknown backend names.
func (b Backend) Validate() error {
	switch b.Canonical() {
	case BackendPacked, BackendCompiled:
		return nil
	}
	return fmt.Errorf("sim: unknown backend %q", string(b))
}

// String returns the canonical name.
func (b Backend) String() string { return string(b.Canonical()) }

// ParseBackend resolves a user-supplied backend string ("packed",
// "compiled"; empty means compiled).
func ParseBackend(s string) (Backend, error) {
	b := Backend(s)
	if err := b.Validate(); err != nil {
		return "", err
	}
	return b.Canonical(), nil
}

// Backends lists the valid canonical backends.
func Backends() []Backend { return []Backend{BackendPacked, BackendCompiled} }

// MaxLanesFor returns the widest session the backend supports.
func MaxLanesFor(b Backend) int {
	if b.Canonical() == BackendCompiled {
		return CompiledMaxLanes
	}
	return MaxLanes
}

// LaneSession is the lane-parallel session contract the estimation
// layer drives: both PackedSession and CompiledSession implement it
// with bit-identical per-lane observations, so backend selection can
// never change an estimate — only its speed. See the differential
// battery in this package for the enforcement.
type LaneSession interface {
	// Circuit returns the simulated circuit.
	Circuit() *netlist.Circuit
	// Lanes returns the number of active replication lanes.
	Lanes() int
	// ResetCounters zeroes the cycle-cost counters.
	ResetCounters()
	// CycleCounts returns the per-replication hidden and sampled cycle
	// counts accumulated so far.
	CycleCounts() (hidden, sampled uint64)
	// StepHidden advances every lane one cycle without observing power.
	StepHidden()
	// StepHiddenN advances n cycles with StepHidden.
	StepHiddenN(n int)
	// StepSampled advances one cycle and writes each lane's weighted
	// zero-delay toggle power into powers[:Lanes()].
	StepSampled(weights, powers []float64)
	// StepSampledWith advances one cycle, observing each lane with the
	// scalar power engine (general-delay accounting).
	StepSampledWith(engine PowerEngine, weights, powers []float64)
	// StepSampledBoth observes each lane with the scalar engine while
	// also computing the zero-delay toggle covariate at word level.
	StepSampledBoth(engine PowerEngine, weights []float64, powers, toggles []float64)
	// AccumulateToggles installs dst (len NumNodes, nil to disable) as a
	// per-node transition-count accumulator over all active lanes of
	// every sampled cycle. Counts are integers merged by addition, so
	// they are bit-identical across backends, lane widths and any
	// partition of the replication space.
	AccumulateToggles(dst []uint64)
	// ExtractLane copies lane k's settled state into scalar arrays; any
	// destination may be nil.
	ExtractLane(k int, vals, pins, q []bool)
}

// SessionConfig carries backend tuning options through the estimation
// layer. Every field is result-invariant: it changes how fast a session
// runs, never what it observes. The packed backend ignores it.
type SessionConfig struct {
	// CacheBudget bounds the compiled backend's blocked-execution
	// scratch working set in bytes (0 = default, <0 = disable blocking).
	CacheBudget int
	// Workers > 1 runs the compiled programs' per-level instruction
	// waves across this many goroutines inside one session.
	Workers int
	// MaxSegInsts caps instructions per blocked segment (test hook).
	MaxSegInsts int
}

// NewLaneSession builds a session of the given backend over the
// per-lane sources with the default config. The packed backend accepts
// up to MaxLanes sources, the compiled backend up to CompiledMaxLanes;
// lane k of either is bit-identical to a scalar Session seeded from
// srcs[k].
func NewLaneSession(b Backend, c *netlist.Circuit, srcs []vectors.Source) LaneSession {
	return NewLaneSessionConfig(b, c, srcs, SessionConfig{})
}

// NewLaneSessionConfig is NewLaneSession with backend tuning options.
func NewLaneSessionConfig(b Backend, c *netlist.Circuit, srcs []vectors.Source, cfg SessionConfig) LaneSession {
	if b.Canonical() == BackendCompiled {
		return NewCompiledSessionConfig(c, srcs, CompiledConfig{
			CacheBudget: cfg.CacheBudget,
			Workers:     cfg.Workers,
			MaxSegInsts: cfg.MaxSegInsts,
		})
	}
	return NewPackedSession(c, srcs)
}

// CycleCounts returns the packed session's cost counters, satisfying
// LaneSession.
func (s *PackedSession) CycleCounts() (hidden, sampled uint64) {
	return s.HiddenCycles, s.SampledCycles
}
