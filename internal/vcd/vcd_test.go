package vcd

import (
	"strings"
	"testing"

	"repro/internal/bench89"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/vectors"
)

func newSession(t *testing.T, c *netlist.Circuit, seed int64) *sim.Session {
	t.Helper()
	w := make([]float64, c.NumNodes())
	for i := range w {
		w[i] = 1
	}
	return sim.NewSession(c, delay.BuildTable(c, delay.DefaultFanoutLoaded()),
		vectors.NewIID(len(c.Inputs), 0.5, seed), w)
}

func TestWriterProducesWellFormedVCD(t *testing.T) {
	c := bench89.S27()
	s := newSession(t, c, 1)
	var sb strings.Builder
	w := New(&sb, c, nil, 50_000)
	if err := w.Header(s.Values()); err != nil {
		t.Fatal(err)
	}
	w.Attach(s)
	for i := 0; i < 5; i++ {
		w.BeginCycle()
		s.StepSampled(nil)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ps $end",
		"$scope module s27 $end",
		"$enddefinitions $end",
		"$dumpvars",
		"$var wire 1 ! ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// One $var per node.
	if got := strings.Count(out, "$var wire"); got != c.NumNodes() {
		t.Errorf("%d $var lines, want %d", got, c.NumNodes())
	}
	// Timestamps must be monotonically increasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		var ts int64
		for _, ch := range line[1:] {
			ts = ts*10 + int64(ch-'0')
		}
		if ts <= last {
			t.Fatalf("timestamp %d not increasing (prev %d)", ts, last)
		}
		last = ts
	}
	if w.Cycles() != 5 {
		t.Errorf("Cycles = %d", w.Cycles())
	}
}

func TestWriterSubsetOnly(t *testing.T) {
	c := bench89.S27()
	s := newSession(t, c, 2)
	watch := []netlist.NodeID{c.Lookup("G17"), c.Lookup("G11")}
	var sb strings.Builder
	w := New(&sb, c, watch, 50_000)
	if err := w.Header(s.Values()); err != nil {
		t.Fatal(err)
	}
	w.Attach(s)
	for i := 0; i < 20; i++ {
		w.BeginCycle()
		s.StepSampled(nil)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "$var wire"); got != 2 {
		t.Errorf("%d $var lines, want 2", got)
	}
	if !strings.Contains(out, "G17") || !strings.Contains(out, "G11") {
		t.Error("watched node names missing")
	}
	if strings.Contains(out, "G14") {
		t.Error("unwatched node dumped")
	}
}

func TestHeaderTwiceFails(t *testing.T) {
	c := bench89.S27()
	s := newSession(t, c, 3)
	var sb strings.Builder
	w := New(&sb, c, nil, 0) // 0 -> default period
	if err := w.Header(s.Values()); err != nil {
		t.Fatal(err)
	}
	if err := w.Header(s.Values()); err == nil {
		t.Fatal("second Header accepted")
	}
}

func TestIDCodeUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10_000; i++ {
		code := idCode(i)
		if code == "" {
			t.Fatalf("empty code at %d", i)
		}
		if seen[code] {
			t.Fatalf("duplicate code %q at %d", code, i)
		}
		seen[code] = true
		for _, ch := range code {
			if ch < '!' || ch > '~' {
				t.Fatalf("unprintable code byte %q at %d", ch, i)
			}
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a b$c\td"); got != "a_b_c_d" {
		t.Fatalf("sanitize = %q", got)
	}
}

func TestGlitchVisibleInDump(t *testing.T) {
	// The XOR-chain glitch from the simulator tests must appear as two
	// value changes inside one cycle slot.
	c := netlist.NewCircuit("glitch")
	a, _ := c.AddNode("A", logic.Input)
	b1, _ := c.AddNode("B1", logic.Not, a)
	b2, _ := c.AddNode("B2", logic.Not, b1)
	y, _ := c.AddNode("Y", logic.Xor, b2, a)
	_ = c.MarkOutput(y)
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	wts := make([]float64, c.NumNodes())
	s := sim.NewSession(c, delay.BuildTable(c, delay.Unit{}),
		&alternating{}, wts)
	var sb strings.Builder
	w := New(&sb, c, []netlist.NodeID{y}, 1_000)
	if err := w.Header(s.Values()); err != nil {
		t.Fatal(err)
	}
	w.Attach(s)
	w.BeginCycle()
	s.StepSampled(nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// After $dumpvars: two changes of Y ("1!"... then "0!").
	body := out[strings.Index(out, "$end\n#"):]
	if strings.Count(body, "1!")+strings.Count(body, "0!") != 2 {
		t.Fatalf("expected 2 glitch transitions in dump:\n%s", out)
	}
}

// alternating drives a single input 1,0,1,0,...
type alternating struct{ v bool }

func (a *alternating) Next(dst []bool) { a.v = !a.v; dst[0] = a.v }
func (a *alternating) Width() int      { return 1 }
func (a *alternating) Name() string    { return "alternating" }
