package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// JobState is the lifecycle state of a submitted estimation job.
type JobState string

// Job lifecycle: Submit puts a job in StateQueued; a pool worker moves
// it to StateRunning; it terminates in exactly one of StateDone,
// StateFailed or StateCancelled.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SourceSpec selects the primary-input model of a job. The zero value
// is the paper's input model: i.i.d. Bernoulli(0.5).
type SourceSpec struct {
	// Kind is "iid" (independent Bernoulli bits, the default) or "lag"
	// (per-bit two-state Markov chains with lag-1 autocorrelation Rho).
	Kind string `json:"kind,omitempty"`
	// P is the stationary one-probability of each input bit (0 means the
	// default of 0.5).
	P float64 `json:"p,omitempty"`
	// Rho is the lag-1 autocorrelation for Kind "lag".
	Rho float64 `json:"rho,omitempty"`
}

// Factory builds the input-source factory for a circuit with the given
// number of primary inputs. Parameter ranges are checked here (not
// deferred to the vectors constructors, which panic) so bad requests
// are rejected at Validate time instead of crashing a pool worker.
// Exported for dispatchers (internal/cluster workers rebuild sources
// from the wire spec with it).
func (s SourceSpec) Factory(width int) (vectors.Factory, error) {
	p := s.P
	if p == 0 {
		p = 0.5
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("service: source probability %g out of [0,1]", s.P)
	}
	switch s.Kind {
	case "", "iid":
		return vectors.IIDFactory(width, p), nil
	case "lag":
		if s.Rho < 0 || s.Rho >= 1 {
			return nil, fmt.Errorf("service: lag-1 correlation %g out of [0,1)", s.Rho)
		}
		return vectors.LagCorrelatedFactory(width, p, s.Rho), nil
	default:
		return nil, fmt.Errorf("service: unknown source kind %q (want \"iid\" or \"lag\")", s.Kind)
	}
}

// OptionsSpec is the client-settable subset of core.Options. Zero
// fields keep the paper defaults (DefaultOptions), so an empty object
// is a valid request.
type OptionsSpec struct {
	// RelErr and Confidence override the accuracy specification
	// (defaults 0.05 and 0.99).
	RelErr     float64 `json:"relErr,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	// Alpha is the randomness-test significance level (default 0.20).
	Alpha float64 `json:"alpha,omitempty"`
	// SeqLen is the randomness-test sequence length (default 320).
	SeqLen int `json:"seqLen,omitempty"`
	// Replications is the number of bit-packed parallel replications
	// (default 64, one full machine word).
	Replications int `json:"replications,omitempty"`
	// Workers bounds the per-job goroutine pool (default GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// MaxSamples caps the sample budget (default 2^21).
	MaxSamples int `json:"maxSamples,omitempty"`
	// PowerMode selects the sampled-cycle observation scenario:
	// "general-delay" (event-driven, glitches included — the default) or
	// "zero-delay" (functional transitions only, bit-parallel packed
	// engine). Unknown values fail Validate, so bad requests are rejected
	// at submit time.
	PowerMode string `json:"powerMode,omitempty"`
	// Backend selects the lane-parallel simulation backend: "" or
	// "compiled" (the word-level bytecode engine, compiled once per
	// circuit — the default, gated ≥2x faster in CI) or "packed" (the
	// interpreted word-parallel sweep, the escape hatch). The backends
	// are observation-equivalent — results are bit-identical — so this
	// is a throughput knob. Unknown values fail Validate at submit time.
	Backend string `json:"backend,omitempty"`
	// SessionWorkers > 1 runs each compiled session's per-level
	// instruction waves across this many goroutines (level parallelism
	// for big-circuit replications). Result-invariant; ignored by the
	// packed backend.
	SessionWorkers int `json:"sessionWorkers,omitempty"`
	// CacheBudget bounds the compiled backend's cache-blocked execution
	// scratch in bytes (0 = default ~L2/2, negative disables blocking).
	// Result-invariant.
	CacheBudget int `json:"cacheBudget,omitempty"`
	// Variance selects a variance-reduction transform for the sampling
	// phase: "" or "none" (plain), "antithetic" (mirrored replication
	// pairs) or "control-variate" (zero-delay toggle covariate; needs
	// general-delay sampling). Unknown values and invalid combinations
	// fail Validate at submit time.
	Variance string `json:"variance,omitempty"`
	// Breakdown enables per-node power attribution: the result gains a
	// ranked per-gate dynamic+leakage breakdown (inline top rows plus the
	// full ranking at GET /v1/jobs/{id}/breakdown). It augments the
	// result rather than changing the estimate, but it still participates
	// in the result cache key — a cached scalar-only result cannot answer
	// a breakdown request.
	Breakdown bool `json:"breakdown,omitempty"`
}

// Options expands the spec over the paper defaults. Exported for
// dispatchers, which derive the estimator configuration from the wire
// spec.
func (o OptionsSpec) Options() core.Options {
	opts := core.DefaultOptions()
	if o.RelErr != 0 {
		opts.Spec.RelErr = o.RelErr
	}
	if o.Confidence != 0 {
		opts.Spec.Confidence = o.Confidence
	}
	if o.Alpha != 0 {
		opts.Alpha = o.Alpha
	}
	if o.SeqLen != 0 {
		opts.SeqLen = o.SeqLen
	}
	if o.Replications != 0 {
		opts.Replications = o.Replications
	}
	if o.Workers != 0 {
		opts.Workers = o.Workers
	}
	if o.MaxSamples != 0 {
		opts.MaxSamples = o.MaxSamples
	}
	opts.Mode = power.PowerMode(o.PowerMode)
	opts.Backend = sim.Backend(o.Backend)
	opts.SessionWorkers = o.SessionWorkers
	opts.CacheBudget = o.CacheBudget
	opts.Variance.Mode = vr.Mode(o.Variance).Canonical()
	opts.Breakdown = o.Breakdown
	return opts
}

// JobRequest is one estimation request. Identical requests (same
// circuit content, source, seed and options) produce bit-identical
// results: the estimator's replication seeding is fixed and merge order
// is deterministic, independent of pool scheduling.
type JobRequest struct {
	// Circuit names a registry circuit (built-in benchmark or upload).
	Circuit string `json:"circuit"`
	// Source selects the primary-input model.
	Source SourceSpec `json:"source"`
	// Seed is the base seed of the run (replication r uses Seed+1+r).
	Seed int64 `json:"seed"`
	// Options overrides estimation tunables; zero fields keep defaults.
	Options OptionsSpec `json:"options"`
	// Interval, if non-nil, fixes the independence interval and skips
	// the Fig. 2 selection procedure.
	Interval *int `json:"interval,omitempty"`
}

// Validate rejects requests the pool would fail on anyway.
func (r JobRequest) Validate() error {
	if r.Circuit == "" {
		return errors.New("service: request missing circuit name")
	}
	if r.Interval != nil && *r.Interval < 0 {
		return fmt.Errorf("service: negative interval %d", *r.Interval)
	}
	if _, err := r.Source.Factory(1); err != nil {
		return err
	}
	return r.Options.Options().Validate()
}

// jsonFinite maps non-finite values to -1 for JSON transport: a
// stopping criterion's half-width is +Inf until it has enough samples
// to bound the estimate, and encoding/json cannot represent ±Inf (the
// whole response would fail to encode). Half-widths are otherwise
// nonnegative, so -1 unambiguously means "no finite bound yet".
func jsonFinite(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return -1
	}
	return x
}

// ResultView is the JSON rendering of a finished estimation.
// HalfWidth and RelHalfWidth are -1 when the run ended before the
// criterion could bound the estimate (see jsonFinite).
type ResultView struct {
	Power          float64 `json:"power"`
	Interval       int     `json:"interval"`
	IntervalCapped bool    `json:"intervalCapped,omitempty"`
	SampleSize     int     `json:"sampleSize"`
	HalfWidth      float64 `json:"halfWidth"`
	RelHalfWidth   float64 `json:"relHalfWidth"`
	HiddenCycles   uint64  `json:"hiddenCycles"`
	SampledCycles  uint64  `json:"sampledCycles"`
	Criterion      string  `json:"criterion"`
	Engine         string  `json:"engine"`
	Backend        string  `json:"backend,omitempty"`
	DelayModel     string  `json:"delayModel"`
	Variance       string  `json:"variance,omitempty"`
	CVBeta         float64 `json:"cvBeta,omitempty"`
	Converged      bool    `json:"converged"`
	ElapsedMS      float64 `json:"elapsedMs"`
	// Cached marks a result served from the result cache instead of a
	// fresh run; by determinism the two are bit-identical (ElapsedMS
	// reports the original run's cost).
	Cached bool `json:"cached,omitempty"`
	// Trace summarizes the job's lifecycle trace; the ordered span list
	// is at GET /v1/jobs/{id}/trace.
	Trace *TraceSummary `json:"trace,omitempty"`
	// Breakdown carries the per-node power attribution summary (requests
	// with options.breakdown only).
	Breakdown *BreakdownView `json:"breakdown,omitempty"`
}

// breakdownTopN bounds the ranked rows a ResultView carries inline; the
// complete ranking is at GET /v1/jobs/{id}/breakdown.
const breakdownTopN = 20

// BreakdownView is the JSON rendering of a per-node power breakdown:
// report totals plus the top-ranked rows. The full per-node ranking can
// run to tens of thousands of rows on the large benchmarks, so it stays
// out of the inline view and the journal; the dump endpoint serves it
// from the retained report.
type BreakdownView struct {
	// Observations is the sampled-cycle count the toggle counts cover.
	Observations uint64 `json:"observations"`
	// Dynamic and Leakage are the report's total watts.
	Dynamic float64 `json:"dynamic"`
	Leakage float64 `json:"leakage"`
	// Nodes is the number of ranked rows in the full report (gates and
	// latches; inputs and constants are excluded from ranking).
	Nodes int `json:"nodes"`
	// Top is the head of the ranking (up to breakdownTopN rows).
	Top []power.BreakdownRow `json:"top,omitempty"`
	// Modules aggregates the ranking by hierarchical module prefix
	// (absent for flat netlists).
	Modules []power.ModuleRow `json:"modules,omitempty"`
	// Full is the complete report, retained in memory for the dump
	// endpoint but deliberately never journaled; a job restored from the
	// journal serves Top there instead.
	Full *power.BreakdownReport `json:"-"`
}

func viewBreakdown(rep *power.BreakdownReport) *BreakdownView {
	if rep == nil {
		return nil
	}
	return &BreakdownView{
		Observations: rep.Observations,
		Dynamic:      rep.Dynamic,
		Leakage:      rep.Leakage,
		Nodes:        len(rep.Rows),
		Top:          rep.TopRows(breakdownTopN),
		Modules:      rep.Modules,
		Full:         rep,
	}
}

// TraceSummary condenses a job's lifecycle trace into its result view.
type TraceSummary struct {
	// Spans is the recorded span count (submit through stop).
	Spans int `json:"spans"`
	// Dropped counts spans discarded after the trace cap.
	Dropped int `json:"dropped,omitempty"`
	// LastMS is the timestamp of the final span, milliseconds since
	// submission (monotonic across restarts for resumed jobs).
	LastMS float64 `json:"lastMs"`
}

func viewResult(res core.Result) *ResultView {
	return &ResultView{
		Power:          res.Power,
		Interval:       res.Interval,
		IntervalCapped: res.IntervalCapped,
		SampleSize:     res.SampleSize,
		HalfWidth:      jsonFinite(res.HalfWidth),
		RelHalfWidth:   jsonFinite(res.RelHalfWidth()),
		HiddenCycles:   res.HiddenCycles,
		SampledCycles:  res.SampledCycles,
		Criterion:      res.Criterion,
		Engine:         res.Engine,
		Backend:        res.Backend,
		DelayModel:     res.DelayModel,
		Variance:       res.Variance,
		CVBeta:         res.CVBeta,
		Converged:      res.Converged,
		ElapsedMS:      float64(res.Elapsed) / float64(time.Millisecond),
		Breakdown:      viewBreakdown(res.Breakdown),
	}
}

// ProgressView is the JSON rendering of a live progress snapshot.
// HalfWidth is -1 while the criterion cannot bound the estimate yet
// (see jsonFinite).
type ProgressView struct {
	Samples   int     `json:"samples"`
	Power     float64 `json:"power"`
	HalfWidth float64 `json:"halfWidth"`
	Interval  int     `json:"interval"`
}

func viewProgress(p core.Progress) *ProgressView {
	return &ProgressView{
		Samples:   p.Samples,
		Power:     p.Power,
		HalfWidth: jsonFinite(p.HalfWidth),
		Interval:  p.Interval,
	}
}

// JobView is the externally visible snapshot of a job.
type JobView struct {
	ID       string        `json:"id"`
	State    JobState      `json:"state"`
	Request  JobRequest    `json:"request"`
	Progress *ProgressView `json:"progress,omitempty"`
	Result   *ResultView   `json:"result,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// job is the manager-internal job record. All mutable fields are
// guarded by the owning Manager's mutex.
type job struct {
	id       string
	req      JobRequest
	state    JobState
	progress *ProgressView
	result   *ResultView
	err      string
	cancel   context.CancelFunc
	done     chan struct{} // closed on terminal state
	// ckpt is the frozen pre-sampling outcome: set by the running
	// dispatcher once the plan freezes, or restored from the journal for
	// a resumed job.
	ckpt *Checkpoint
	// cacheKey addresses the job's slot in the result cache ("" when the
	// circuit provenance could not be resolved at submit time).
	cacheKey string
	// userCancel distinguishes an explicit Cancel (terminal, journaled)
	// from a shutdown-drain cancellation (not journaled, so the job
	// replays as resumable on restart).
	userCancel bool
	// progSamples is the sample count at the last journaled progress
	// record (throttle state).
	progSamples int
	// trace is the job's lifecycle span list (submit → … → stop),
	// threaded into the dispatcher through the job context. For a
	// resumed job the journaled pre-restart spans are imported first.
	trace *obs.Trace
}

// PoolStats is a snapshot of the job pool.
type PoolStats struct {
	Workers   int `json:"workers"`
	QueueCap  int `json:"queueCap"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// ErrQueueFull is returned by Submit when the pending-job queue is at
// capacity; clients should retry with backoff.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned by Submit once the manager is draining: a job
// accepted after Close would sit queued forever with no pool worker
// left to run it (and leak any Wait caller blocked on it).
var ErrClosed = errors.New("service: job manager is shut down")

// Manager owns the asynchronous job lifecycle: a bounded FIFO queue
// feeding a fixed worker pool, with per-job cancellation and live
// progress. Jobs are never forgotten; completed records stay queryable
// until the manager is closed.
type Manager struct {
	reg      *Registry
	dispatch Dispatcher
	workers  int
	store    *JobStore    // nil = in-memory only
	cache    *resultCache // finished results keyed by provenance+options

	ctx   context.Context // parent of every job context
	stop  context.CancelFunc
	queue chan *job
	wg    sync.WaitGroup

	met *serviceMetrics
	log *obs.Logger

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for List
	seq    uint64
	closed bool
}

// NewManager starts a pool of `workers` goroutines (default 2 if
// non-positive) consuming a queue of up to queueCap pending jobs
// (default 64), executing each job through the dispatcher (the local
// in-process dispatcher if nil). Each job may itself fan out over
// Options.Workers simulation goroutines (or cluster workers), so the
// pool size bounds concurrent *jobs*, not goroutines.
//
// A non-nil store makes the manager durable: the journal replayed at
// store open is folded back in before the pool starts — terminal jobs
// become queryable again (and re-prime the result cache), every other
// journaled job is re-enqueued and resumed from its checkpoint. The
// manager owns the store from here and closes it on Close.
func NewManager(reg *Registry, dispatch Dispatcher, workers, queueCap int, store *JobStore) *Manager {
	return NewManagerObs(reg, dispatch, workers, queueCap, store, nil, nil)
}

// NewManagerObs is NewManager with observability attached: job-lifecycle
// metrics register on obsReg (an internal registry backs the same cells
// when nil, so /v1/stats counters are always real) and structured
// lifecycle events go to log (nil discards).
func NewManagerObs(reg *Registry, dispatch Dispatcher, workers, queueCap int, store *JobStore, obsReg *obs.Registry, log *obs.Logger) *Manager {
	if dispatch == nil {
		dispatch = NewLocalDispatcher()
	}
	if workers <= 0 {
		workers = 2
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	var restored []RestoredJob
	if store != nil {
		restored = store.Restored()
		// The journal can hold more pending jobs than the configured
		// queue; restoring must never drop one.
		if queueCap < len(restored) {
			queueCap = len(restored)
		}
	}
	if obsReg == nil {
		obsReg = obs.NewRegistry() // internal: counters stay real, just unscraped
	}
	met := newServiceMetrics(obsReg)
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		reg:      reg,
		dispatch: dispatch,
		workers:  workers,
		store:    store,
		cache:    newResultCache(0, met.cacheHits, met.cacheMisses),
		met:      met,
		log:      log.With("component", "jobs"),
		ctx:      ctx,
		stop:     stop,
		queue:    make(chan *job, queueCap),
		jobs:     make(map[string]*job),
	}
	m.registerStateGauges(obsReg)
	m.restore(restored)
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// restore folds replayed journal records into the job table before the
// pool starts: terminal jobs are installed finished (their done channel
// already closed, their results priming the cache), everything else is
// re-enqueued with its checkpoint attached. ID sequencing continues
// from the highest replayed ID so restarts never reuse a job ID.
func (m *Manager) restore(restored []RestoredJob) {
	for _, r := range restored {
		j := &job{
			id:       r.ID,
			req:      r.Req,
			state:    r.State,
			progress: r.Progress,
			result:   r.Result,
			err:      r.Error,
			ckpt:     r.Checkpoint,
			done:     make(chan struct{}),
			trace:    obs.NewTrace(),
		}
		// Spans journaled before the restart splice in ahead of anything
		// the resumed run records, keeping one monotonic lifecycle.
		j.trace.Import(r.Spans)
		if src, err := m.reg.Source(r.Req.Circuit); err == nil {
			j.cacheKey = resultKey(src, r.Req)
		}
		if j.state.Terminal() {
			close(j.done)
			if j.state == StateDone && j.result != nil && j.cacheKey != "" {
				m.cache.put(j.cacheKey, *j.result)
			}
		} else {
			j.state = StateQueued
			j.trace.Event("restore")
			m.queue <- j // capacity >= len(restored) by construction
			m.log.Info("job resumed from journal", "job", j.id, "circuit", j.req.Circuit)
		}
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		var n uint64
		if _, err := fmt.Sscanf(j.id, "job-%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
	}
}

// Submit validates and enqueues a request, returning the job ID. The
// non-blocking enqueue and the registration happen under one lock so a
// full queue never leaves a half-registered job behind. A request whose
// result is already in the result cache skips the queue entirely: the
// job is registered terminal with the cached (bit-identical) result and
// its view is available immediately.
func (m *Manager) Submit(req JobRequest) (string, error) {
	if err := req.Validate(); err != nil {
		return "", err
	}
	// Provenance resolution happens outside the manager lock (it takes
	// the registry lock); an unresolvable circuit just bypasses the
	// cache and fails later in run() with the precise error.
	cacheKey := ""
	if src, err := m.reg.Source(req.Circuit); err == nil {
		cacheKey = resultKey(src, req)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrClosed
	}
	j := &job{
		id:       fmt.Sprintf("job-%06d", m.seq+1),
		req:      req,
		state:    StateQueued,
		done:     make(chan struct{}),
		cacheKey: cacheKey,
		trace:    obs.NewTrace(),
	}
	j.trace.Event("submit", "circuit", req.Circuit)
	if cacheKey != "" {
		if rv, ok := m.cache.get(cacheKey); ok {
			m.seq++
			m.jobs[j.id] = j
			m.order = append(m.order, j.id)
			if m.store != nil {
				m.store.submit(j.id, req)
			}
			j.trace.Event("cache-hit")
			m.met.submitted.Inc()
			m.finishLocked(j, StateDone, rv, "")
			return j.id, nil
		}
	}
	select {
	case m.queue <- j:
	default:
		return "", ErrQueueFull
	}
	m.seq++
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if m.store != nil {
		m.store.submit(j.id, req)
	}
	m.met.submitted.Inc()
	m.log.Info("job submitted", "job", j.id, "circuit", req.Circuit)
	return j.id, nil
}

// Trace returns the job's recorded lifecycle spans.
func (m *Manager) Trace(id string) (JobTrace, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	var state JobState
	if ok {
		state = j.state
	}
	m.mu.Unlock()
	if !ok {
		return JobTrace{}, false
	}
	return JobTrace{
		ID:      id,
		State:   state,
		Spans:   j.trace.Spans(),
		Dropped: j.trace.Dropped(),
	}, true
}

// JobBreakdown is the full per-node power attribution of one job, the
// body of GET /v1/jobs/{id}/breakdown.
type JobBreakdown struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Report is the complete attribution (nil until a breakdown-enabled
	// job finishes).
	Report *power.BreakdownReport `json:"report,omitempty"`
	// Truncated marks a job restored from the journal: the full ranking
	// is not persisted, so the report carries only the inline top rows.
	Truncated bool `json:"truncated,omitempty"`
}

// Breakdown returns the job's per-node power attribution. ok reports
// whether the job exists; Report stays nil until a job submitted with
// options.breakdown reaches StateDone.
func (m *Manager) Breakdown(id string) (JobBreakdown, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobBreakdown{}, false
	}
	out := JobBreakdown{ID: id, State: j.state}
	if j.result != nil && j.result.Breakdown != nil {
		bv := j.result.Breakdown
		if bv.Full != nil {
			out.Report = bv.Full
		} else {
			// Restored from the journal, where only the summary survives:
			// rebuild a report from the inline rows and say so.
			out.Report = &power.BreakdownReport{
				Observations: bv.Observations,
				Dynamic:      bv.Dynamic,
				Leakage:      bv.Leakage,
				Rows:         bv.Top,
				Modules:      bv.Modules,
			}
			out.Truncated = true
		}
	}
	return out, true
}

// JobTrace is the JSON rendering of a job's lifecycle trace: the
// ordered span list from submit to stop, with per-span millisecond
// offsets from submission (monotonic across restarts for resumed jobs).
type JobTrace struct {
	ID      string     `json:"id"`
	State   JobState   `json:"state"`
	Spans   []obs.Span `json:"spans"`
	Dropped int        `json:"dropped,omitempty"`
}

// Get returns a snapshot of the job, if it exists.
func (m *Manager) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return m.viewLocked(j), true
}

// Wait blocks until the job reaches a terminal state or the context is
// done, and returns the final snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (JobView, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked(j), nil
}

// Cancel requests cancellation of a job. Queued jobs terminate
// immediately; running jobs stop at the next stopping-criterion block.
// Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (JobView, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return JobView{}, false
	}
	switch j.state {
	case StateQueued:
		j.userCancel = true
		m.finishLocked(j, StateCancelled, nil, "cancelled before start")
	case StateRunning:
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	view := m.viewLocked(j)
	m.mu.Unlock()
	return view, true
}

// List returns snapshots of all jobs in submission order.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.viewLocked(m.jobs[id]))
	}
	return out
}

// Stats returns a snapshot of the pool counters.
func (m *Manager) Stats() PoolStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := PoolStats{Workers: m.workers, QueueCap: cap(m.queue)}
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Close drains the pool: it rejects further submissions, cancels every
// live job (queued jobs terminate immediately; running jobs stop at
// their next stopping-criterion block) and waits until every pool
// worker has retired — no in-flight estimation goroutine survives the
// call. Safe to call more than once; Submit afterwards returns
// ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	for _, j := range m.jobs {
		if j.state == StateQueued {
			m.finishLocked(j, StateCancelled, nil, "service shutting down")
		}
	}
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
	if m.store != nil {
		// Flush after the pool retires so every record of the drain —
		// including checkpoints written moments ago — reaches disk.
		m.store.Close()
	}
}

// worker consumes the queue until the manager is closed.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// run executes one job end to end. A panic anywhere in the estimation
// stack fails the job instead of killing the pool worker (and with it
// the whole server).
func (m *Manager) run(j *job) {
	ctx, cancel := context.WithCancel(m.ctx)
	defer cancel()
	defer func() {
		if r := recover(); r != nil {
			m.finish(j, StateFailed, nil, fmt.Sprintf("internal panic: %v", r))
		}
	}()

	m.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	m.mu.Unlock()
	j.trace.Event("run")
	m.log.Debug("job running", "job", j.id, "circuit", j.req.Circuit)
	ctx = obs.ContextWithTrace(ctx, j.trace)

	tb, err := m.reg.Testbench(j.req.Circuit)
	if err != nil {
		m.finish(j, StateFailed, nil, err.Error())
		return
	}
	progress := func(p core.Progress) {
		m.mu.Lock()
		j.progress = viewProgress(p)
		journal := m.store != nil && p.Samples-j.progSamples >= progressJournalEvery
		if journal {
			j.progSamples = p.Samples
		}
		m.mu.Unlock()
		// Throttled merged-round snapshots let a restarted server show a
		// resumed job's last known progress; they are cosmetic for
		// correctness (the resume replays from the checkpoint), so they
		// are journaled without fsync.
		if journal {
			m.store.progress(j.id, *viewProgress(p))
		}
	}

	var res core.Result
	if rd, ok := m.dispatch.(ResumableDispatcher); ok {
		m.mu.Lock()
		ckpt := j.ckpt
		m.mu.Unlock()
		save := func(c Checkpoint) {
			m.mu.Lock()
			j.ckpt = &c
			m.mu.Unlock()
			if m.store != nil {
				// The spans so far ride along so a restart resumes the
				// lifecycle trace, not just the sampling phase.
				m.store.checkpoint(j.id, c, j.trace.Spans())
			}
		}
		res, err = rd.EstimateResumable(ctx, tb, j.req, ckpt, save, progress)
	} else {
		res, err = m.dispatch.Estimate(ctx, tb, j.req, progress)
	}
	switch {
	case errors.Is(err, context.Canceled):
		m.finish(j, StateCancelled, nil, "cancelled")
	case err != nil:
		m.finish(j, StateFailed, nil, err.Error())
	default:
		m.finish(j, StateDone, viewResult(res), "")
	}
}

func (m *Manager) finish(j *job, state JobState, res *ResultView, msg string) {
	m.mu.Lock()
	m.finishLocked(j, state, res, msg)
	m.mu.Unlock()
}

// finishLocked moves a job to a terminal state. Caller holds m.mu.
//
// Durability rules: terminal states are journaled — except a
// cancellation caused by the manager draining (not by an explicit
// Cancel), which is deliberately left out of the journal so the job
// replays as resumable after a restart. Finished results fill the
// result cache.
func (m *Manager) finishLocked(j *job, state JobState, res *ResultView, msg string) {
	if j.state.Terminal() {
		return
	}
	j.trace.Event("stop", "state", string(state))
	if res != nil {
		if spans := j.trace.Spans(); len(spans) > 0 {
			res.Trace = &TraceSummary{
				Spans:   len(spans),
				Dropped: j.trace.Dropped(),
				LastMS:  spans[len(spans)-1].T,
			}
		}
	}
	j.state = state
	j.result = res
	j.err = msg
	close(j.done)
	if state == StateDone && res != nil && !res.Cached && j.cacheKey != "" {
		m.cache.put(j.cacheKey, *res)
	}
	m.met.finished.With(string(state)).Inc()
	if msg != "" {
		m.log.Info("job finished", "job", j.id, "state", string(state), "err", msg)
	} else {
		m.log.Info("job finished", "job", j.id, "state", string(state))
	}
	if m.store != nil {
		if state == StateCancelled && m.closed && !j.userCancel {
			return // shutdown drain: resume after restart instead
		}
		m.store.terminal(j.id, state, res, msg)
	}
}

// progressJournalEvery throttles progress records: one journal line per
// this many newly merged samples.
const progressJournalEvery = 4096

// CacheStats snapshots the result cache.
func (m *Manager) CacheStats() CacheStats { return m.cache.stats() }

// StoreStats snapshots the job journal; nil when the manager runs
// without one.
func (m *Manager) StoreStats() *StoreStats {
	if m.store == nil {
		return nil
	}
	st := m.store.Stats()
	return &st
}

// viewLocked snapshots a job. Caller holds m.mu.
func (m *Manager) viewLocked(j *job) JobView {
	v := JobView{
		ID:      j.id,
		State:   j.state,
		Request: j.req,
		Error:   j.err,
	}
	if j.progress != nil {
		p := *j.progress
		v.Progress = &p
	}
	if j.result != nil {
		r := *j.result
		v.Result = &r
	}
	return v
}
