package main

import (
	"strings"
	"testing"
)

func TestBuildFamilySpecs(t *testing.T) {
	cases := []struct {
		spec       string
		pi, po, ff int
	}{
		{"counter:4:1", 1, 1, 4},
		{"counter:8:2", 2, 1, 8},
		{"lfsr:8", 1, 1, 8},
		{"shift:16", 1, 1, 16},
		{"pipeline:4:3", 4, 4, 12},
	}
	for _, tc := range cases {
		c, err := buildFamily(tc.spec)
		if err != nil {
			t.Errorf("%s: %v", tc.spec, err)
			continue
		}
		st := c.ComputeStats()
		if st.Inputs != tc.pi || st.Outputs != tc.po || st.Latches != tc.ff {
			t.Errorf("%s: got %d/%d/%d, want %d/%d/%d",
				tc.spec, st.Inputs, st.Outputs, st.Latches, tc.pi, tc.po, tc.ff)
		}
	}
}

func TestBuildFamilyDefaults(t *testing.T) {
	for _, spec := range []string{"counter", "lfsr", "shift", "pipeline"} {
		if _, err := buildFamily(spec); err != nil {
			t.Errorf("%s with defaults: %v", spec, err)
		}
	}
}

func TestBuildFamilyErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"warp:4", "unknown family"},
		{"lfsr:11", "no maximal tap set"},
		{"counter:x", "invalid syntax"},
		{"pipeline:2:1", "width >= 3"},
	}
	for _, tc := range cases {
		_, err := buildFamily(tc.spec)
		if err == nil {
			t.Errorf("%s: accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.spec, err, tc.want)
		}
	}
}
