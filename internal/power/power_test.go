package power

import (
	"math"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func miniCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("mini")
	a, _ := c.AddNode("A", logic.Input)
	g1, _ := c.AddNode("G1", logic.Not, a) // fanout 2
	g2, _ := c.AddNode("G2", logic.And, g1, a)
	g3, _ := c.AddNode("G3", logic.Or, g1, g2)
	q, _ := c.AddNode("Q", logic.DFF, g3)
	_ = q
	_ = c.MarkOutput(g3)
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultSupply(t *testing.T) {
	s := DefaultSupply()
	if s.VDD != 5.0 || s.ClockPeriod != 50e-9 {
		t.Fatalf("default supply = %+v, want 5V/50ns", s)
	}
	if f := s.Frequency(); math.Abs(f-20e6) > 1 {
		t.Fatalf("frequency = %g, want 20 MHz", f)
	}
}

func TestNodeCapStructure(t *testing.T) {
	c := miniCircuit(t)
	cm := CapModel{Base: 30e-15, PerFanout: 10e-15}
	// G1 drives G2 and G3: C = 30 + 2*10 = 50 fF.
	if got := cm.NodeCap(c, c.Lookup("G1")); math.Abs(got-50e-15) > 1e-20 {
		t.Errorf("G1 cap = %g, want 50 fF", got)
	}
	// Primary input excluded by default.
	if got := cm.NodeCap(c, c.Lookup("A")); got != 0 {
		t.Errorf("input cap = %g, want 0", got)
	}
	cm.IncludeInputs = true
	if got := cm.NodeCap(c, c.Lookup("A")); got == 0 {
		t.Errorf("input cap = 0 with IncludeInputs")
	}
	// The latch (a memory element) is included: Eq. 1 covers cells =
	// gates and memory elements.
	if got := cm.NodeCap(c, c.Lookup("Q")); got <= 0 {
		t.Errorf("DFF cap = %g, want > 0", got)
	}
}

func TestWeightsEquationOne(t *testing.T) {
	// One transition at node i must contribute C_i * VDD^2/(2T) watts.
	c := miniCircuit(t)
	m := NewModel(c, DefaultCapModel(), DefaultSupply())
	w := m.Weights()
	k := 5.0 * 5.0 / (2 * 50e-9)
	for i := range w {
		want := m.Caps[i] * k
		if math.Abs(w[i]-want) > 1e-12*math.Abs(want) {
			t.Fatalf("weight[%d] = %g, want %g", i, w[i], want)
		}
	}
}

func TestPowerFromCountsHandComputed(t *testing.T) {
	c := miniCircuit(t)
	cm := CapModel{Base: 100e-15, PerFanout: 0}
	m := NewModel(c, cm, Supply{VDD: 2, ClockPeriod: 10e-9})
	counts := make([]uint64, c.NumNodes())
	counts[c.Lookup("G1")] = 10
	counts[c.Lookup("G2")] = 5
	// P = VDD^2/(2*T*cycles) * C * n = 4/(2*10e-9*10) * 100e-15 * 15
	want := 4.0 / (2 * 10e-9 * 10) * 100e-15 * 15
	if got := m.PowerFromCounts(counts, 10); math.Abs(got-want) > 1e-12*want {
		t.Fatalf("PowerFromCounts = %g, want %g", got, want)
	}
	if m.PowerFromCounts(counts, 0) != 0 {
		t.Fatal("zero cycles should give zero power")
	}
}

func TestEnergyPerTransition(t *testing.T) {
	c := miniCircuit(t)
	m := NewModel(c, CapModel{Base: 40e-15}, Supply{VDD: 5, ClockPeriod: 50e-9})
	want := 40e-15 * 25 / 2
	if got := m.EnergyPerTransition(c.Lookup("G2")); math.Abs(got-want) > 1e-25 {
		t.Fatalf("energy = %g, want %g", got, want)
	}
}

func TestTopConsumers(t *testing.T) {
	c := miniCircuit(t)
	m := NewModel(c, CapModel{Base: 50e-15, PerFanout: 0}, DefaultSupply())
	counts := make([]uint64, c.NumNodes())
	counts[c.Lookup("G1")] = 100
	counts[c.Lookup("G2")] = 50
	counts[c.Lookup("G3")] = 10
	top := m.TopConsumers(c, counts, 100, 2)
	if len(top) != 2 {
		t.Fatalf("got %d entries, want 2", len(top))
	}
	if top[0].Name != "G1" || top[1].Name != "G2" {
		t.Fatalf("top order = %s, %s", top[0].Name, top[1].Name)
	}
	if top[0].Share <= top[1].Share {
		t.Fatal("shares not ordered")
	}
	// Shares are fractions of the total.
	if top[0].Share <= 0 || top[0].Share >= 1 {
		t.Fatalf("share = %g", top[0].Share)
	}
	if m.TopConsumers(c, counts, 0, 5) != nil {
		t.Fatal("cycles=0 should return nil")
	}
}

func TestFormatWatts(t *testing.T) {
	cases := map[float64]string{
		2.5:     "W",
		3.2e-3:  "mW",
		4.7e-6:  "uW",
		8.8e-10: "nW",
	}
	for v, unit := range cases {
		if s := FormatWatts(v); !strings.HasSuffix(s, unit) {
			t.Errorf("FormatWatts(%g) = %q, want suffix %q", v, s, unit)
		}
	}
}

func TestPowerModeValidateAndParse(t *testing.T) {
	for _, m := range []PowerMode{"", ModeGeneralDelay, ModeZeroDelay} {
		if err := m.Validate(); err != nil {
			t.Errorf("mode %q rejected: %v", m, err)
		}
	}
	if err := PowerMode("half-delay").Validate(); err == nil {
		t.Error("bad mode accepted")
	}
	if PowerMode("").Canonical() != ModeGeneralDelay || PowerMode("").String() != "general-delay" {
		t.Error("zero value is not canonical general-delay")
	}
	if !ModeZeroDelay.IsZeroDelay() || ModeGeneralDelay.IsZeroDelay() {
		t.Error("IsZeroDelay wrong")
	}
	cases := map[string]PowerMode{
		"": ModeGeneralDelay, "general": ModeGeneralDelay, "general-delay": ModeGeneralDelay,
		"zero": ModeZeroDelay, "zero-delay": ModeZeroDelay,
	}
	for in, want := range cases {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus")
	}
	if n := len(Modes()); n != 2 {
		t.Errorf("Modes() has %d entries", n)
	}
}
