package randtest

import (
	"math"

	"repro/internal/stats"
)

// LjungBox is the Ljung–Box portmanteau test for serial correlation: the
// statistic
//
//	Q = n(n+2) * sum_{k=1..h} rho_k^2 / (n-k)
//
// is asymptotically chi-square with h degrees of freedom under the
// randomness hypothesis. Unlike the runs tests, it aggregates evidence
// across h lags, which makes it sensitive to correlation structures whose
// lag-1 signature is weak (e.g. oscillatory components).
//
// The chi-square p-value is mapped onto the common Result.Z scale as
// z = Phi^-1(1 - p/2), so Accept's two-sided |z| threshold reproduces the
// one-sided chi-square test exactly: |z| > c(alpha) iff p < alpha.
type LjungBox struct {
	// Lags is the number of autocorrelation lags h to pool (default 10).
	Lags int
}

// Name implements Test.
func (t LjungBox) Name() string { return "ljung-box" }

// Apply implements Test.
func (t LjungBox) Apply(seq []float64) Result {
	res := Result{TestName: "ljung-box"}
	h := t.Lags
	if h <= 0 {
		h = 10
	}
	n := len(seq)
	res.N = n
	if n < minEffective || n <= h+1 {
		res.Degenerate = true
		return res
	}
	acf := stats.Autocorrelation(seq, h)
	// A constant sequence has zero variance: degenerate, accept.
	allZero := true
	for _, r := range acf[1:] {
		if r != 0 {
			allZero = false
			break
		}
	}
	if allZero && stats.Variance(seq) == 0 {
		res.Degenerate = true
		return res
	}
	fn := float64(n)
	q := 0.0
	for k := 1; k <= h; k++ {
		q += acf[k] * acf[k] / (fn - float64(k))
	}
	q *= fn * (fn + 2)
	p := 1 - stats.ChiSquareCDF(q, h)
	res.PValue = p
	// Map to the shared z scale; clamp to avoid the infinite quantile at
	// p == 0.
	if p < 1e-300 {
		p = 1e-300
	}
	res.Z = stats.NormalQuantile(1 - p/2)
	if math.IsInf(res.Z, 0) {
		res.Z = 40
	}
	return res
}
