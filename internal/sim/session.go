package sim

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// Session drives a sequential circuit through clock cycles, maintaining
// the (input pattern, latch state, settled node values) triple between
// cycles. It is the substrate for the paper's two-phase sampling:
//
//   - StepHidden advances one cycle with the zero-delay simulator only
//     (used inside the independence interval, no power observation);
//   - StepSampled advances one cycle with the session's power engine and
//     returns the weighted transition sum of Eq. 1. The default engine
//     is the event-driven general-delay simulator; NewSessionEngine
//     installs any PowerEngine (e.g. ZeroDelayToggle for the zero-delay
//     mode).
//
// The class invariant is that vals always holds settled node values for
// the current (pins, q) pair, so the two step kinds can be interleaved
// freely — every engine leaves vals settled for the new (pins, q).
type Session struct {
	c      *netlist.Circuit
	zd     *ZeroDelay
	engine PowerEngine
	src    vectors.Source

	weights []float64

	vals    []bool
	pins    []bool
	q       []bool
	nextQ   []bool
	buf     []bool
	oldVals []bool // lazily allocated by StepSampledPair

	// HiddenCycles and SampledCycles count the work done since the last
	// ResetCounters; they are the paper's simulation-cost metrics.
	HiddenCycles  uint64
	SampledCycles uint64
}

// NewSession builds a session with the default event-driven
// general-delay power engine over the given delay table. weights[i] is
// the per-transition power contribution of node i (see power
// Model.Weights); src must have width len(c.Inputs). The circuit starts
// in the all-zero latch state with an all-zero input pattern, settled.
func NewSession(c *netlist.Circuit, dt *delay.Table, src vectors.Source, weights []float64) *Session {
	return NewSessionEngine(c, NewEventDriven(c, dt), src, weights)
}

// NewSessionEngine builds a session whose sampled cycles are observed by
// the given power engine (the engine must have been built for the same
// circuit). Hidden cycles always run on the zero-delay simulator.
func NewSessionEngine(c *netlist.Circuit, engine PowerEngine, src vectors.Source, weights []float64) *Session {
	if src.Width() != len(c.Inputs) {
		panic(fmt.Sprintf("sim: source width %d, circuit has %d inputs", src.Width(), len(c.Inputs)))
	}
	if len(weights) != len(c.Nodes) {
		panic(fmt.Sprintf("sim: weights length %d, circuit has %d nodes", len(weights), len(c.Nodes)))
	}
	if engine == nil {
		panic("sim: NewSessionEngine requires a power engine")
	}
	s := &Session{
		c:       c,
		zd:      NewZeroDelay(c),
		engine:  engine,
		src:     src,
		weights: weights,
		vals:    make([]bool, len(c.Nodes)),
		pins:    make([]bool, len(c.Inputs)),
		q:       make([]bool, len(c.Latches)),
		nextQ:   make([]bool, len(c.Latches)),
		buf:     make([]bool, len(c.Inputs)),
	}
	s.zd.Settle(s.vals, s.pins, s.q)
	return s
}

// Circuit returns the simulated circuit.
func (s *Session) Circuit() *netlist.Circuit { return s.c }

// Source returns the session's input pattern source.
func (s *Session) Source() vectors.Source { return s.src }

// Reset returns the circuit to the all-zero reset state and re-settles.
// Cycle counters are preserved; use ResetCounters to clear them.
func (s *Session) Reset() {
	for i := range s.pins {
		s.pins[i] = false
	}
	for i := range s.q {
		s.q[i] = false
	}
	s.zd.Settle(s.vals, s.pins, s.q)
}

// ResetCounters zeroes the cycle-cost counters.
func (s *Session) ResetCounters() {
	s.HiddenCycles = 0
	s.SampledCycles = 0
}

// advance computes the next latch state from the current settled values
// and draws the next input pattern; it returns them without applying.
func (s *Session) advance() {
	s.zd.NextState(s.vals, s.nextQ)
	s.src.Next(s.buf)
}

// StepHidden advances one clock cycle using the zero-delay simulator.
// No transitions are counted.
func (s *Session) StepHidden() {
	s.advance()
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	s.zd.Settle(s.vals, s.pins, s.q)
	s.HiddenCycles++
}

// StepHiddenN advances n cycles with StepHidden.
func (s *Session) StepHiddenN(n int) {
	for i := 0; i < n; i++ {
		s.StepHidden()
	}
}

// StepSampled advances one clock cycle using the session's power engine
// and returns the weighted transition sum for the cycle: sum_i w_i * n_i,
// which equals the cycle's average power when the weights are built as
// C_i * VDD^2 / (2T) (see power Model.Weights). If counts is non-nil, the
// per-node transition counts are accumulated into it.
func (s *Session) StepSampled(counts []uint64) float64 {
	s.advance()
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	p := s.engine.CyclePower(s.vals, s.pins, s.q, s.weights, counts)
	s.SampledCycles++
	return p
}

// StepSampledPair advances one clock cycle like StepSampled, returning
// both the engine's weighted transition sum x and the same cycle's
// zero-delay toggle power c (the weights of every node whose settled
// value changed, summed in node-index order). Every engine leaves vals
// zero-delay settled, so c is bit-identical to what the ZeroDelayToggle
// engine — and lane-for-lane the packed sampled step — would report for
// the cycle, and the session trajectory and x are bit-identical to a
// plain StepSampled. The pair is the calibration substrate of the
// control-variate transform (internal/vr): x is the sample, c the
// covariate. If counts is non-nil the engine's per-node transition
// counts are accumulated into it, exactly as in StepSampled.
func (s *Session) StepSampledPair(counts []uint64) (x, c float64) {
	if s.oldVals == nil {
		s.oldVals = make([]bool, len(s.vals))
	}
	copy(s.oldVals, s.vals)
	s.advance()
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	x = s.engine.CyclePower(s.vals, s.pins, s.q, s.weights, counts)
	for i, v := range s.vals {
		if v != s.oldVals[i] {
			c += s.weights[i]
		}
	}
	s.SampledCycles++
	return x, c
}

// Engine returns the session's power engine.
func (s *Session) Engine() PowerEngine { return s.engine }

// eventDriven returns the underlying event-driven simulator if that is
// the session's engine, else nil.
func (s *Session) eventDriven() *EventDriven {
	ed, _ := s.engine.(*EventDriven)
	return ed
}

// SettleTime returns the simulated settling time of the most recent
// sampled cycle (0 unless the engine is event-driven).
func (s *Session) SettleTime() delay.Picoseconds {
	if ed := s.eventDriven(); ed != nil {
		return ed.LastSettleTime
	}
	return 0
}

// Events returns the applied event count of the most recent sampled
// cycle (0 unless the engine is event-driven).
func (s *Session) Events() uint64 {
	if ed := s.eventDriven(); ed != nil {
		return ed.LastEvents
	}
	return 0
}

// State copies the current latch state into dst (len = #latches).
func (s *Session) State(dst []bool) { copy(dst, s.q) }

// SetState forces the latch state (len = #latches) and re-settles with
// the current input pattern. Used by the FSM-analysis estimator, which
// samples states from a stationary distribution.
func (s *Session) SetState(q []bool) {
	copy(s.q, q)
	s.zd.Settle(s.vals, s.pins, s.q)
}

// SetPins forces the current input pattern and re-settles.
func (s *Session) SetPins(pins []bool) {
	copy(s.pins, pins)
	s.zd.Settle(s.vals, s.pins, s.q)
}

// Values returns the settled value array (live; callers must not modify).
func (s *Session) Values() []bool { return s.vals }

// SetObserver installs a per-transition callback on the underlying
// event-driven simulator (see EventDriven.SetObserver). Only sampled
// cycles produce observations; hidden cycles are functional. It panics
// if the session's engine is not event-driven — waveform observation is
// a timed-simulation feature.
func (s *Session) SetObserver(fn func(id netlist.NodeID, t delay.Picoseconds, v bool)) {
	ed := s.eventDriven()
	if ed == nil {
		panic(fmt.Sprintf("sim: SetObserver requires the event-driven engine, session uses %q", s.engine.Name()))
	}
	ed.SetObserver(fn)
}
