package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
)

// TestReadyzLocal: with the local dispatcher the service is ready as
// soon as it is constructed, and /readyz mirrors Ready().
func TestReadyzLocal(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ready" {
		t.Fatalf("status %q, want ready", body["status"])
	}
}

// notReadyDispatcher wraps the local dispatcher with a failing
// readiness probe.
type notReadyDispatcher struct{ Dispatcher }

func (notReadyDispatcher) Ready() error { return errors.New("warming up") }

// TestReadyzNotReady: a dispatcher that is not ready turns /readyz into
// a 503 while /healthz stays green — the liveness/readiness split.
func TestReadyzNotReady(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1, Dispatcher: notReadyDispatcher{NewLocalDispatcher()}})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503", resp.StatusCode)
	}
	live, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 while not ready", live.StatusCode)
	}
}

// TestClusterEndpointsLocalMode: the cluster worker endpoints answer
// 404 under the local dispatcher instead of pretending a worker set
// exists.
func TestClusterEndpointsLocalMode(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cluster workers in local mode = %d, want 404", resp.StatusCode)
	}
}

// slowDispatcher runs a fake estimation that only ends on cancellation,
// and records that it observed the cancel — the stand-in for an
// in-flight job during shutdown.
type slowDispatcher struct {
	started   chan struct{}
	cancelled chan struct{}
}

func (d *slowDispatcher) Name() string { return "slow" }
func (d *slowDispatcher) Ready() error { return nil }
func (d *slowDispatcher) Estimate(ctx context.Context, tb *core.Testbench, req JobRequest, progress func(core.Progress)) (core.Result, error) {
	close(d.started)
	<-ctx.Done()
	close(d.cancelled)
	return core.Result{}, ctx.Err()
}

// TestCloseDrainsRunningJobs: Close cancels the running job, waits for
// its goroutine to retire before returning, and rejects submissions
// afterwards — the graceful-drain contract dipe-server relies on before
// srv.Shutdown.
func TestCloseDrainsRunningJobs(t *testing.T) {
	d := &slowDispatcher{started: make(chan struct{}), cancelled: make(chan struct{})}
	svc := New(Config{Workers: 1, Dispatcher: d})

	id, err := svc.Jobs.Submit(JobRequest{Circuit: "s27", Seed: 1, Options: OptionsSpec{Replications: 8}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	done := make(chan struct{})
	go func() {
		svc.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return within 10s")
	}
	// Close returned, so the estimation goroutine must already have
	// observed cancellation (no leak) and the job must be terminal.
	select {
	case <-d.cancelled:
	default:
		t.Fatal("Close returned while the estimation was still running")
	}
	view, ok := svc.Jobs.Get(id)
	if !ok || !view.State.Terminal() {
		t.Fatalf("job state after Close = %+v, want terminal", view)
	}

	if _, err := svc.Jobs.Submit(JobRequest{Circuit: "s27", Seed: 2, Options: OptionsSpec{Replications: 8}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}
