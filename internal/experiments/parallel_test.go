package experiments

import (
	"testing"
)

// TestTable2ParallelMatchesSerial: the aggregate rows must be identical
// regardless of the parallelism level, because runs are seeded per index
// and aggregated in order.
func TestTable2ParallelMatchesSerial(t *testing.T) {
	base := tinyConfig()
	base.Circuits = []string{"s27"}
	base.Runs = 6

	serial := base
	serial.Parallel = 1
	a, err := Table2(serial)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = 4
	b, err := Table2(par)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("parallel row differs from serial:\n%+v\n%+v", a[0], b[0])
	}
}

// TestTable2ParallelRace is meaningful under -race: concurrent sessions
// must share nothing mutable.
func TestTable2ParallelRace(t *testing.T) {
	cfg := tinyConfig()
	cfg.Circuits = []string{"s298"}
	cfg.Runs = 8
	cfg.Parallel = 8
	if _, err := Table2(cfg); err != nil {
		t.Fatal(err)
	}
}
