package sim

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
)

// EventDriven is a gate-level event-driven timing simulator with inertial
// delays. Given a circuit settled for the previous cycle's inputs and
// state, Cycle applies the new input pattern and new latch outputs
// simultaneously at t=0 and propagates events until quiescence, counting
// every output transition — functional transitions and glitches alike.
// This is the "general-delay circuit simulator" of the paper's two-phase
// sampling scheme.
//
// Inertial semantics: a gate re-evaluation schedules its new output value
// after the gate delay; a re-evaluation that returns the gate to its
// current value cancels any pending change (pulse filtering). At most one
// change per node is pending at any time.
//
// The fanout walk and gate re-evaluation run over the circuit's CSR view
// (flat kind/level/fanin/fanout arrays).
type EventDriven struct {
	csr       *netlist.CSR
	delays    []delay.Picoseconds
	modelName string

	heap []event

	pendingVal    []bool
	pendingActive []bool
	pendingGen    []uint32

	seq uint64

	// LastSettleTime is the simulated time at which the previous Cycle
	// quiesced; callers can check it against the clock period.
	LastSettleTime delay.Picoseconds
	// LastEvents is the number of applied (non-stale) events in the
	// previous Cycle, a machine-independent cost metric.
	LastEvents uint64

	// observer, when set, receives every committed transition (including
	// the t=0 source changes). Used by waveform dumpers; nil in normal
	// estimation runs.
	observer func(id netlist.NodeID, t delay.Picoseconds, v bool)
}

type event struct {
	t     delay.Picoseconds
	level int32
	seq   uint64
	node  netlist.NodeID
	gen   uint32
}

// NewEventDriven builds an event-driven simulator for a frozen circuit
// under a delay table.
func NewEventDriven(c *netlist.Circuit, dt *delay.Table) *EventDriven {
	if !c.Frozen() {
		panic("sim: NewEventDriven requires a frozen circuit")
	}
	if len(dt.Delays) != len(c.Nodes) {
		panic(fmt.Sprintf("sim: delay table has %d entries, circuit has %d nodes",
			len(dt.Delays), len(c.Nodes)))
	}
	n := len(c.Nodes)
	return &EventDriven{
		csr:           c.CSR(),
		delays:        dt.Delays,
		modelName:     dt.ModelName,
		heap:          make([]event, 0, 4*n),
		pendingVal:    make([]bool, n),
		pendingActive: make([]bool, n),
		pendingGen:    make([]uint32, n),
	}
}

// Cycle simulates one clock cycle. On entry vals must hold the settled
// values for the previous (pattern, state) pair; on return vals holds the
// settled values for (newPins, newQ).
//
// weights[i] is the power contribution of one transition at node i (zero
// to exclude a node, e.g. primary inputs whose transitions are paid by
// the external driver). The weighted sum over all transitions is
// returned. If counts is non-nil, counts[i] is incremented once per
// transition at node i (it is not cleared first, so callers can
// accumulate energy breakdowns over many cycles).
func (e *EventDriven) Cycle(vals []bool, newPins, newQ []bool, weights []float64, counts []uint64) float64 {
	r := e.csr
	sum := 0.0
	e.LastEvents = 0
	e.LastSettleTime = 0
	// The heap is always drained by the previous Cycle; reslice anyway so
	// an aborted cycle can never leak stale events, while the backing
	// array (pre-sized at construction) is reused across cycles.
	e.heap = e.heap[:0]

	// Apply simultaneous source changes at t=0: the clock edge updates
	// latch outputs while the environment presents the next pattern.
	for i, id := range r.Inputs {
		if vals[id] != newPins[i] {
			vals[id] = newPins[i]
			sum += weights[id]
			if counts != nil {
				counts[id]++
			}
			if e.observer != nil {
				e.observer(netlist.NodeID(id), 0, vals[id])
			}
			e.LastEvents++
			e.fanoutEval(id, 0, vals)
		}
	}
	for i, id := range r.Latches {
		if vals[id] != newQ[i] {
			vals[id] = newQ[i]
			sum += weights[id]
			if counts != nil {
				counts[id]++
			}
			if e.observer != nil {
				e.observer(netlist.NodeID(id), 0, vals[id])
			}
			e.LastEvents++
			e.fanoutEval(id, 0, vals)
		}
	}

	// Propagate to quiescence. The commit loop is duplicated so the
	// counts branch is taken once per cycle, not once per event; the
	// counting variant only runs for energy-breakdown callers.
	if counts == nil {
		for len(e.heap) > 0 {
			ev := e.pop()
			id := ev.node
			if !e.pendingActive[id] || e.pendingGen[id] != ev.gen {
				continue // cancelled or superseded
			}
			e.pendingActive[id] = false
			vals[id] = e.pendingVal[id]
			sum += weights[id]
			if e.observer != nil {
				e.observer(id, ev.t, vals[id])
			}
			e.LastEvents++
			if ev.t > e.LastSettleTime {
				e.LastSettleTime = ev.t
			}
			e.fanoutEval(int32(id), ev.t, vals)
		}
	} else {
		for len(e.heap) > 0 {
			ev := e.pop()
			id := ev.node
			if !e.pendingActive[id] || e.pendingGen[id] != ev.gen {
				continue
			}
			e.pendingActive[id] = false
			vals[id] = e.pendingVal[id]
			sum += weights[id]
			counts[id]++
			if e.observer != nil {
				e.observer(id, ev.t, vals[id])
			}
			e.LastEvents++
			if ev.t > e.LastSettleTime {
				e.LastSettleTime = ev.t
			}
			e.fanoutEval(int32(id), ev.t, vals)
		}
	}
	return sum
}

// CyclePower implements PowerEngine; it is Cycle under the interface's
// name.
func (e *EventDriven) CyclePower(vals []bool, newPins, newQ []bool, weights []float64, counts []uint64) float64 {
	return e.Cycle(vals, newPins, newQ, weights, counts)
}

// Name implements PowerEngine.
func (e *EventDriven) Name() string { return EngineEventDriven }

// DelayModelName implements PowerEngine: the name of the delay model the
// simulator's table was built from.
func (e *EventDriven) DelayModelName() string { return e.modelName }

// SetObserver installs (or clears, with nil) a callback invoked for
// every committed transition during subsequent Cycles. Observation slows
// simulation; estimation runs leave it unset.
func (e *EventDriven) SetObserver(fn func(id netlist.NodeID, t delay.Picoseconds, v bool)) {
	e.observer = fn
}

// fanoutEval re-evaluates every combinational gate driven by id at time t.
// It walks the CSR gate-fanout row of the node (non-combinational sinks —
// DFF D pins — are excluded at Freeze time).
func (e *EventDriven) fanoutEval(id int32, t delay.Picoseconds, vals []bool) {
	r := e.csr
	for _, g := range r.GateFanoutList[r.GateFanoutIdx[id]:r.GateFanoutIdx[id+1]] {
		newv := evalCSR(vals, r.Kind[g], r.FaninList[r.FaninIdx[g]:r.FaninIdx[g+1]])
		if e.pendingActive[g] {
			if e.pendingVal[g] == newv {
				continue // already scheduled to the right value
			}
			// Inertial cancellation of the pending (now wrong) change.
			e.pendingGen[g]++
			e.pendingActive[g] = false
		}
		if newv == vals[g] {
			continue
		}
		e.pendingVal[g] = newv
		e.pendingActive[g] = true
		e.pendingGen[g]++
		e.push(event{t: t + e.delays[g], level: r.Level[g], seq: e.seq,
			node: netlist.NodeID(g), gen: e.pendingGen[g]})
		e.seq++
	}
}

// less orders events by time, then by logic level, then by scheduling
// order. The level tiebreak makes zero-delay (and equal-delay) event
// processing behave like a levelized sweep, so delta-cycle artifacts
// cannot masquerade as glitches: an upstream same-time change always
// lands before a downstream gate commits, letting inertial cancellation
// absorb it.
func (a event) less(b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.level != b.level {
		return a.level < b.level
	}
	return a.seq < b.seq
}

func (e *EventDriven) push(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heap[i].less(e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *EventDriven) pop() event {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	e.heap = h[:last]
	h = e.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].less(h[small]) {
			small = l
		}
		if r < len(h) && h[r].less(h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}
