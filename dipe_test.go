package dipe_test

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	c, err := dipe.Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	tb := dipe.NewTestbench(c)
	res, err := dipe.Estimate(tb.NewSession(dipe.NewIIDSource(len(c.Inputs), 0.5, 1)), dipe.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Power <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	ref := dipe.RunReference(tb.NewSession(dipe.NewIIDSource(len(c.Inputs), 0.5, 2)), 128, 60_000)
	if dev := math.Abs(res.Power-ref.Power) / ref.Power; dev > 0.05+4*ref.RelStdErr() {
		t.Fatalf("estimate %g deviates %.2f%% from reference %g", res.Power, 100*dev, ref.Power)
	}
}

func TestFacadeBenchmarkNames(t *testing.T) {
	names := dipe.BenchmarkNames()
	if len(names) != 24 {
		t.Fatalf("BenchmarkNames = %d entries, want 24 (paper's Tables 1-2)", len(names))
	}
	if names[0] != "s208" || names[len(names)-1] != "s15850" {
		t.Fatalf("unexpected ordering: first %s last %s", names[0], names[len(names)-1])
	}
	if _, err := dipe.Benchmark("sNOPE"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeBenchFileRoundTrip(t *testing.T) {
	c, err := dipe.Benchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s298.bench")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dipe.WriteBench(f, c); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := dipe.LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := c.ComputeStats(), re.ComputeStats()
	a.Name, b.Name = "", "" // LoadBench names the circuit after the path
	if a != b {
		t.Fatalf("round trip changed structure: %+v vs %+v", a, b)
	}
}

func TestFacadeLoadBenchMissingFile(t *testing.T) {
	if _, err := dipe.LoadBench("/nonexistent/x.bench"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFacadeParseBench(t *testing.T) {
	c, err := dipe.ParseBench("t", strings.NewReader("INPUT(A)\nOUTPUT(Y)\nY = NOT(A)\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 {
		t.Fatalf("gates = %d", c.NumGates())
	}
}

func TestFacadeSTG(t *testing.T) {
	c, err := dipe.Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	stg, err := dipe.ExtractSTG(c, []float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := stg.Stationary(1e-10, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("stationary sums to %g", sum)
	}
}

func TestFacadeCriteriaAndTests(t *testing.T) {
	spec := dipe.DefaultSpec()
	for _, f := range []func(dipe.Spec) dipe.Criterion{
		dipe.NormalCriterion, dipe.KSCriterion, dipe.OrderStatisticsCriterion,
	} {
		crit := f(spec)
		crit.Add(1)
		if crit.N() != 1 {
			t.Fatalf("%s: N=%d", crit.Name(), crit.N())
		}
	}
	seq := make([]float64, 100)
	for i := range seq {
		seq[i] = float64(i % 7)
	}
	for _, name := range []string{
		dipe.OrdinaryRunsTest.Name(), dipe.UpDownRunsTest.Name(), dipe.VonNeumannTest.Name(),
	} {
		if name == "" {
			t.Fatal("empty test name")
		}
	}
	_ = dipe.OrdinaryRunsTest.Apply(seq)
}

func TestFacadeFormatWatts(t *testing.T) {
	if s := dipe.FormatWatts(1.7e-3); !strings.Contains(s, "mW") {
		t.Fatalf("FormatWatts = %q", s)
	}
}

func TestFacadeSourcesWidth(t *testing.T) {
	if w := dipe.NewIIDSource(7, 0.5, 1).Width(); w != 7 {
		t.Fatalf("iid width %d", w)
	}
	if w := dipe.NewLagCorrelatedSource(3, 0.5, 0.5, 1).Width(); w != 3 {
		t.Fatalf("lag width %d", w)
	}
	if w := dipe.NewSpatialSource(6, 2, 0.5, 0.1, 1).Width(); w != 6 {
		t.Fatalf("spatial width %d", w)
	}
}
