// Package compile turns a frozen, levelized netlist into straight-line
// word-level programs — the software analogue of the "power emulation"
// idea from hardware-accelerated power estimation: pay the per-gate
// decoding cost once, at compile time, and replay the circuit at native
// word speed afterwards.
//
// A compilation Unit holds two programs over the same circuit:
//
//   - Full computes the settled value of every node (one register slot
//     per node). It is observation-exact: slot i holds exactly what the
//     interpreted sweep (sim.PackedZeroDelay.Settle) computes for node
//     i, so weighted toggle diffs over the register file are
//     bit-identical to the interpreter's. Its only liberties are ones
//     that cannot change any node value: gates whose value is invariant
//     (constant cones) are hoisted into init data, and identity
//     operands (AND with a known-1 input, XOR with a known-0 input, …)
//     are elided with the gate's polarity adjusted.
//   - Step computes only the next latch state (the D-pin values). It is
//     free to restructure: gates outside the transitive fanin cone of
//     the latches are eliminated (dead fanout with respect to state
//     evolution), BUF chains collapse to slot aliases, single-fanout
//     same-base gate chains fuse into multi-input ops (AND feeding AND
//     becomes one n-ary AND; XOR-base fusion absorbs XNOR/NOT children
//     by flipping the parent's polarity), and register slots are
//     recycled by a linear-scan allocator so the working set stays
//     cache-resident. Hidden cycles — the bulk of every estimation run —
//     execute Step; sampled cycles execute Full.
//
// The bytecode is deliberately tiny: a flat instruction array of
// (opcode, dst, operands) over a register file of W-word rows, where W
// is chosen by the caller at execution time (1 word = 64 lanes, up to 8
// words = 512 lanes per step). Two-operand gates get specialized
// opcodes; wider gates read their operand list from a shared args
// table. Instructions are emitted in levelized order, so execution is a
// single linear pass with no scheduling logic, and each op streams W
// contiguous words per operand — the per-instruction decode cost is
// amortized over the whole lane block.
//
// Programs are compiled once per frozen circuit — Unit construction is
// a pure function of the CSR view built at Freeze — and cached on the
// circuit itself (netlist.(*Circuit).SetArtifact), so every
// sim.CompiledSession over the same circuit shares one Unit.
//
// Every pass above must be observation-equivalent to the interpreter;
// the differential battery in internal/sim (property tests over all
// bench89 circuits and randomized netlists, FuzzCompile, and the golden
// end-to-end tests in internal/core) asserts bit-identical next-state
// words, per-lane toggle powers and estimation results.
package compile
