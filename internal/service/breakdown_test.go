package service

import (
	"context"
	"math"
	"net/http"
	"testing"
	"time"
)

// TestCacheKeyedByBreakdown: a breakdown request must never be answered
// from a scalar-only run's cache slot (the cached result has no rows to
// serve), while a repeat of each spelling hits its own slot; and the
// breakdown data actually flows through the job API — inline summary on
// the result view, full ranking on the dump endpoint.
func TestCacheKeyedByBreakdown(t *testing.T) {
	svc, ts := newTestService(t, Config{Workers: 1})

	run := func(breakdown bool) JobView {
		req := fastRequest(7)
		req.Options.Breakdown = breakdown
		var v JobView
		if code := postJSON(t, ts.URL+"/v1/jobs", req, &v); code != http.StatusAccepted {
			t.Fatalf("submit status = %d", code)
		}
		var out JobView
		if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/wait?timeout=60s", &out); code != http.StatusOK {
			t.Fatalf("wait status = %d", code)
		}
		if out.State != StateDone {
			t.Fatalf("job %s finished %s (%s)", v.ID, out.State, out.Error)
		}
		return out
	}

	scalar := run(false)
	if scalar.Result.Breakdown != nil {
		t.Fatalf("scalar-only run carries a breakdown: %+v", scalar.Result.Breakdown)
	}
	withBrk := run(true)
	if withBrk.Result.Cached {
		t.Fatalf("breakdown request was served from the scalar run's cache slot: %+v", withBrk.Result)
	}
	bv := withBrk.Result.Breakdown
	if bv == nil || bv.Nodes == 0 || len(bv.Top) == 0 {
		t.Fatalf("breakdown view missing or empty: %+v", bv)
	}
	if b1, b2 := math.Float64bits(scalar.Result.Power), math.Float64bits(withBrk.Result.Power); b1 != b2 {
		t.Fatalf("breakdown changed the estimate: %x vs %x", b1, b2)
	}
	if rel := math.Abs(bv.Dynamic-withBrk.Result.Power) / withBrk.Result.Power; rel > 1e-9 {
		t.Fatalf("dynamic total %g vs estimate %g: relative gap %g", bv.Dynamic, withBrk.Result.Power, rel)
	}

	// Full dump endpoint: every ranked row, consistent with the summary.
	var dump JobBreakdown
	if code := getJSON(t, ts.URL+"/v1/jobs/"+withBrk.ID+"/breakdown", &dump); code != http.StatusOK {
		t.Fatalf("breakdown dump status = %d", code)
	}
	if dump.Report == nil || len(dump.Report.Rows) != bv.Nodes || dump.Truncated {
		t.Fatalf("breakdown dump = %+v, want %d untruncated rows", dump, bv.Nodes)
	}
	// The scalar job has nothing to dump.
	if code := getJSON(t, ts.URL+"/v1/jobs/"+scalar.ID+"/breakdown", nil); code != http.StatusNotFound {
		t.Fatalf("scalar job breakdown dump status = %d, want 404", code)
	}

	// Repeats hit their own slots and keep their shapes.
	if again := run(false); again.Result.Cached != true || again.Result.Breakdown != nil {
		t.Fatalf("scalar repeat = %+v, want cached scalar result", again.Result)
	}
	if again := run(true); !again.Result.Cached || again.Result.Breakdown == nil {
		t.Fatalf("breakdown repeat = %+v, want cached breakdown result", again.Result)
	}
	if cs := svc.Jobs.CacheStats(); cs.Hits != 2 || cs.Misses != 2 || cs.Entries != 2 {
		t.Fatalf("result cache stats = %+v, want 2 hits / 2 misses / 2 entries", cs)
	}
}

// TestServerRestartResumesBreakdownJob: the journal round-trips the
// phase-1 seed toggles through the checkpoint, so a breakdown job
// interrupted mid-sampling resumes to a report identical to the
// uninterrupted run's.
func TestServerRestartResumesBreakdownJob(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(0)
	req := JobRequest{
		Circuit: "s298",
		Seed:    61,
		Options: OptionsSpec{
			RelErr: 0.02, Confidence: 0.95,
			Replications: 16, Workers: 1, PowerMode: "zero-delay",
			Breakdown: true,
		},
	}

	ref := NewManager(reg, nil, 1, 0, nil)
	refID, err := ref.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	refView, err := ref.Wait(context.Background(), refID)
	ref.Close()
	if err != nil || refView.State != StateDone {
		t.Fatalf("reference run: state %v err %v (%s)", refView.State, err, refView.Error)
	}
	want := refView.Result
	if want.Breakdown == nil {
		t.Fatal("reference run produced no breakdown")
	}

	store1, err := OpenJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := newStallDispatcher()
	m1 := NewManager(reg, d, 1, 0, store1)
	id, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.running:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started sampling")
	}
	m1.Close()

	store2, err := OpenJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The journaled checkpoint must carry the seed toggles for the
	// resumed report to fold.
	var restored *RestoredJob
	for i, r := range store2.Restored() {
		if r.ID == id {
			restored = &store2.Restored()[i]
		}
	}
	if restored == nil || restored.Checkpoint == nil {
		t.Fatalf("restart lost the checkpoint for %s", id)
	}
	if len(restored.Checkpoint.SeedToggles) == 0 {
		t.Fatal("journaled checkpoint carries no seed toggles")
	}

	m2 := NewManager(reg, nil, 1, 0, store2)
	defer m2.Close()
	got, err := m2.Wait(context.Background(), id)
	if err != nil || got.State != StateDone {
		t.Fatalf("resumed job: state %v err %v (%s)", got.State, err, got.Error)
	}

	// Scalar fields first (breakdown views compare separately: the full
	// report pointer is process-local).
	g, w := *got.Result, *want
	g.Breakdown, w.Breakdown = nil, nil
	sameResultView(t, &g, &w, "resumed breakdown job")

	gb, wb := got.Result.Breakdown, want.Breakdown
	if gb == nil {
		t.Fatal("resumed job lost its breakdown")
	}
	if gb.Observations != wb.Observations || gb.Dynamic != wb.Dynamic ||
		gb.Leakage != wb.Leakage || gb.Nodes != wb.Nodes {
		t.Fatalf("resumed breakdown header %+v, want %+v", gb, wb)
	}
	if len(gb.Top) != len(wb.Top) {
		t.Fatalf("resumed top rows %d, want %d", len(gb.Top), len(wb.Top))
	}
	for i := range gb.Top {
		if gb.Top[i] != wb.Top[i] {
			t.Fatalf("resumed top row %d = %+v, want %+v", i, gb.Top[i], wb.Top[i])
		}
	}
}
