package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench89"
	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/service"
)

// The heterogeneous benchmark (BENCH_5.json) measures what the leased
// scheduler is for: a fleet whose workers are NOT interchangeable — one
// fast, one pathologically slow (its per-block service time exceeds the
// lease timeout, so its leases keep getting reclaimed), one flaky (its
// streams die after a few blocks, every time). Static range partitioning
// would pin ~1/3 of the replication space to each and run the whole job
// at the slow worker's pace; work stealing should instead run it near
// the fast worker's pace. The gate compares cluster throughput against
// the slowest worker running the job alone.

// HeterogeneousRow is one measured configuration of the heterogeneous
// fleet benchmark.
type HeterogeneousRow struct {
	// Config labels the run: "cluster" (fast+slow+flaky fleet) or
	// "slow-alone" (the slowest worker running the job by itself).
	Config        string  `json:"config"`
	Workers       int     `json:"workers"`
	Samples       int     `json:"samples"`
	Seconds       float64 `json:"seconds"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	// Scheduler churn observed during the run, summed over workers.
	LeaseExpiries uint64 `json:"lease_expiries"`
	Reassignments uint64 `json:"reassignments"`
	Retries       uint64 `json:"retries"`
}

// HeterogeneousConfig sizes the heterogeneous fleet run.
type HeterogeneousConfig struct {
	// Circuit to measure.
	Circuit string
	// FastSPS, SlowSPS and FlakySPS pace the three workers
	// (samples/second of emulated simulation capacity). SlowSPS should
	// be chosen so one block takes longer than LeaseTimeout — that is
	// what makes its leases reclaimable.
	FastSPS, SlowSPS, FlakySPS int
	// FlakyKillBlocks crashes every flaky-worker stream after this many
	// delivered blocks.
	FlakyKillBlocks int
	// Samples is the cluster run's sample budget; BaselineSamples is the
	// (smaller) budget for the slow-alone baseline, which would
	// otherwise dominate wall-clock. Both runs are budget-bound, so
	// samples/s is comparable across budgets.
	Samples, BaselineSamples int
	// Interval is the fixed independence interval (selection skipped).
	Interval int
	// Replications is the job's replication count.
	Replications int
	// LeaseTimeout is the coordinator's per-block delivery deadline.
	LeaseTimeout time.Duration
	Seed         int64
}

// DefaultHeterogeneousConfig is the regression configuration: s1494,
// zero-delay sampling (real compute far below every pace), a 4000 sps
// fast worker, a 60 sps slow worker against a 50 ms lease (one ~6-sample
// block takes ~100 ms, so every slow lease expires after its first
// block), and a flaky worker that crashes every stream after 3 blocks.
func DefaultHeterogeneousConfig() HeterogeneousConfig {
	return HeterogeneousConfig{
		Circuit:         "s1494",
		FastSPS:         4000,
		SlowSPS:         60,
		FlakySPS:        2000,
		FlakyKillBlocks: 3,
		Samples:         4096,
		BaselineSamples: 384,
		Interval:        4,
		Replications:    64,
		LeaseTimeout:    50 * time.Millisecond,
		Seed:            1997,
	}
}

// HeterogeneousScaling runs the heterogeneous fleet benchmark: the
// cluster row on the fast+slow+flaky fleet, the slow-alone baseline row,
// and the speedup of the first over the second. Workers are real
// cluster.Worker HTTP servers on loopback, faulted through the chaos
// package.
func HeterogeneousScaling(cfg HeterogeneousConfig) ([]HeterogeneousRow, error) {
	if cfg.Samples < 1024 || cfg.BaselineSamples < 64 || cfg.Replications < 1 || cfg.Interval < 0 {
		return nil, fmt.Errorf("experiments: bad heterogeneous bench config %+v", cfg)
	}
	if _, err := bench89.Get(cfg.Circuit); err != nil {
		return nil, err
	}

	cluster3 := func() ([]string, func(), error) {
		return startFaultedWorkers([]func(http.Handler) http.Handler{
			func(h http.Handler) http.Handler { return chaos.Pace(h, perSamplePace(cfg.FastSPS)) },
			func(h http.Handler) http.Handler { return chaos.Pace(h, perSamplePace(cfg.SlowSPS)) },
			func(h http.Handler) http.Handler {
				return chaos.KillAfterBlocks(chaos.Pace(h, perSamplePace(cfg.FlakySPS)), cfg.FlakyKillBlocks, 0)
			},
		})
	}
	slowAlone := func() ([]string, func(), error) {
		return startFaultedWorkers([]func(http.Handler) http.Handler{
			func(h http.Handler) http.Handler { return chaos.Pace(h, perSamplePace(cfg.SlowSPS)) },
		})
	}

	rows := make([]HeterogeneousRow, 0, 2)
	clusterRow, err := heterogeneousOne(cfg, "cluster", cluster3, cfg.Samples)
	if err != nil {
		return nil, err
	}
	rows = append(rows, *clusterRow)
	baseRow, err := heterogeneousOne(cfg, "slow-alone", slowAlone, cfg.BaselineSamples)
	if err != nil {
		return nil, err
	}
	rows = append(rows, *baseRow)
	return rows, nil
}

// heterogeneousOne measures one fleet configuration.
func heterogeneousOne(cfg HeterogeneousConfig, label string, boot func() ([]string, func(), error), samples int) (*HeterogeneousRow, error) {
	urls, stop, err := boot()
	if err != nil {
		return nil, err
	}
	defer stop()
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Workers: urls,
		// A short heartbeat so the flaky worker rejoins quickly after
		// each scripted crash.
		Heartbeat:    200 * time.Millisecond,
		LeaseTimeout: cfg.LeaseTimeout,
	})
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	reg := service.NewRegistry(0)
	coord.SetRegistry(reg)
	tb, err := reg.Testbench(cfg.Circuit)
	if err != nil {
		return nil, err
	}

	interval := cfg.Interval
	req := service.JobRequest{
		Circuit:  cfg.Circuit,
		Seed:     cfg.Seed,
		Interval: &interval,
		Options: service.OptionsSpec{
			// Unreachably tight spec: the run is ended by the sample
			// budget, so every configuration does identical work.
			RelErr:       0.0001,
			Confidence:   0.9999,
			Replications: cfg.Replications,
			Workers:      1,
			MaxSamples:   samples,
			PowerMode:    "zero-delay",
		},
	}
	// Untimed warm-up: propagate the circuit to every worker directly
	// (the pace wrappers only throttle /v1/run), so provenance install
	// and testbench freeze happen outside the measurement.
	src, err := reg.Source(cfg.Circuit)
	if err != nil {
		return nil, err
	}
	if err := installEverywhere(urls, src); err != nil {
		return nil, err
	}

	t0 := time.Now()
	res, err := coord.Estimate(context.Background(), tb, req, nil)
	if err != nil {
		return nil, err
	}
	sec := time.Since(t0).Seconds()
	row := &HeterogeneousRow{
		Config:  label,
		Workers: len(urls),
		Samples: res.SampleSize,
		Seconds: sec,
	}
	if sec > 0 {
		row.SamplesPerSec = float64(res.SampleSize) / sec
	}
	for _, w := range coord.Workers() {
		row.LeaseExpiries += w.LeaseExpiries
		row.Reassignments += w.Reassignments
		row.Retries += w.Retries
	}
	return row, nil
}

// installEverywhere propagates a circuit's provenance to every worker
// up front, exactly as the coordinator would on a 404.
func installEverywhere(urls []string, src service.CircuitSource) error {
	body, err := json.Marshal(cluster.InstallRequest{Hash: cluster.SourceHash(src), Source: src})
	if err != nil {
		return err
	}
	for _, u := range urls {
		resp, err := http.Post(u+"/v1/circuits", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("experiments: install on %s: status %d", u, resp.StatusCode)
		}
	}
	return nil
}

// startFaultedWorkers boots one cluster worker per fault wrapper on
// loopback listeners.
func startFaultedWorkers(faults []func(http.Handler) http.Handler) ([]string, func(), error) {
	var (
		urls    []string
		servers []*http.Server
	)
	stop := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for _, fault := range faults {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv := &http.Server{Handler: fault(cluster.NewWorker(cluster.WorkerConfig{}).Handler())}
		servers = append(servers, srv)
		go srv.Serve(ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	return urls, stop, nil
}

// HeterogeneousReport is the JSON document emitted for regression
// tracking (BENCH_5.json).
type HeterogeneousReport struct {
	Benchmark       string             `json:"benchmark"`
	Circuit         string             `json:"circuit"`
	FastSPS         int                `json:"fast_samples_per_sec"`
	SlowSPS         int                `json:"slow_samples_per_sec"`
	FlakySPS        int                `json:"flaky_samples_per_sec"`
	FlakyKillBlocks int                `json:"flaky_kill_after_blocks"`
	LeaseTimeoutMS  float64            `json:"lease_timeout_ms"`
	GoVersion       string             `json:"go_version"`
	NumCPU          int                `json:"num_cpu"`
	Rows            []HeterogeneousRow `json:"rows"`
	// SpeedupVsSlowest is cluster samples/s over slow-alone samples/s —
	// the number the CI gate floors.
	SpeedupVsSlowest float64 `json:"speedup_vs_slowest_alone"`
}

// HeterogeneousJSON renders rows as an indented JSON report.
func HeterogeneousJSON(rows []HeterogeneousRow, cfg HeterogeneousConfig) string {
	rep := HeterogeneousReport{
		Benchmark:       "work stealing on a heterogeneous fleet: cluster throughput vs slowest worker alone",
		Circuit:         cfg.Circuit,
		FastSPS:         cfg.FastSPS,
		SlowSPS:         cfg.SlowSPS,
		FlakySPS:        cfg.FlakySPS,
		FlakyKillBlocks: cfg.FlakyKillBlocks,
		LeaseTimeoutMS:  float64(cfg.LeaseTimeout) / float64(time.Millisecond),
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		Rows:            rows,
	}
	var clusterSPS, slowSPS float64
	for _, r := range rows {
		switch r.Config {
		case "cluster":
			clusterSPS = r.SamplesPerSec
		case "slow-alone":
			slowSPS = r.SamplesPerSec
		}
	}
	if slowSPS > 0 {
		rep.SpeedupVsSlowest = clusterSPS / slowSPS
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		// Marshal of a plain struct cannot fail; keep the API total anyway.
		return "{}"
	}
	return string(b) + "\n"
}

// RenderHeterogeneous renders rows as an ASCII table.
func RenderHeterogeneous(rows []HeterogeneousRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %9s %9s %11s %9s %9s\n",
		"config", "workers", "samples", "seconds", "samples/s", "expiries", "reassign")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %8d %9d %9.2f %11.0f %9d %9d\n",
			r.Config, r.Workers, r.Samples, r.Seconds, r.SamplesPerSec, r.LeaseExpiries, r.Reassignments)
	}
	return sb.String()
}
