package stats

import (
	"fmt"
	"math"
)

// NormalCDF returns Phi(z), the standard normal distribution function.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalPDF returns the standard normal density at z.
func NormalPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns Phi^-1(p) for p in (0,1). It uses Acklam's
// rational approximation refined by one Halley step, giving ~1e-15
// relative accuracy over the full range.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		panic(fmt.Sprintf("stats: NormalQuantile(%v) outside (0,1)", p))
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// LogBeta returns ln B(a,b) = ln Gamma(a) + ln Gamma(b) - ln Gamma(a+b).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// for a,b > 0 and x in [0,1], evaluated with the continued fraction of
// Lentz's method (the Numerical-Recipes betacf scheme).
func RegIncBeta(a, b, x float64) float64 {
	if x < 0 || x > 1 || math.IsNaN(x) {
		panic(fmt.Sprintf("stats: RegIncBeta x=%v outside [0,1]", x))
	}
	if a <= 0 || b <= 0 {
		panic(fmt.Sprintf("stats: RegIncBeta needs a,b > 0, got a=%v b=%v", a, b))
	}
	if x == 0 {
		return 0
	}
	if x == 1 {
		return 1
	}
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - LogBeta(a, b))
	// Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to keep the continued
	// fraction in its rapidly converging region.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(b*math.Log(1-x)+a*math.Log(x)-LogBeta(a, b))*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h
		}
	}
	// Convergence is proven for the restricted domain we call it on; hit
	// the iteration cap only for pathological inputs.
	return h
}

// StudentTCDF returns P(T <= t) for Student's t with nu degrees of freedom.
func StudentTCDF(t, nu float64) float64 {
	if nu <= 0 {
		panic(fmt.Sprintf("stats: StudentTCDF nu=%v must be positive", nu))
	}
	if t == 0 {
		return 0.5
	}
	x := nu / (nu + t*t)
	p := 0.5 * RegIncBeta(nu/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTQuantile returns the p-quantile of Student's t distribution
// with nu degrees of freedom, via monotone bisection on the CDF seeded by
// the normal quantile. Accuracy ~1e-12, far below statistical noise.
func StudentTQuantile(p, nu float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: StudentTQuantile(%v) outside (0,1)", p))
	}
	if nu <= 0 {
		panic(fmt.Sprintf("stats: StudentTQuantile nu=%v must be positive", nu))
	}
	if p == 0.5 {
		return 0
	}
	// Bracket the root around the normal approximation.
	z := NormalQuantile(p)
	scale := math.Sqrt(nu / math.Max(nu-2, 0.5))
	lo, hi := z*scale-10, z*scale+10
	for StudentTCDF(lo, nu) > p {
		lo *= 2
	}
	for StudentTCDF(hi, nu) < p {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if StudentTCDF(mid, nu) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// BinomialCDF returns P(X <= k) for X ~ Binomial(n, p), computed through
// the incomplete beta function to stay accurate for large n.
func BinomialCDF(k, n int, p float64) float64 {
	if n < 0 || p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: BinomialCDF bad arguments n=%d p=%v", n, p))
	}
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	return RegIncBeta(float64(n-k), float64(k+1), 1-p)
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(ln - lk - lnk + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// DKWEpsilon returns the half-width of the Dvoretzky–Kiefer–Wolfowitz
// uniform confidence band for an empirical CDF of n samples at confidence
// 1-delta: eps = sqrt(ln(2/delta) / (2n)). The true CDF lies within
// +/-eps of the empirical CDF everywhere with probability >= 1-delta.
func DKWEpsilon(n int, delta float64) float64 {
	if n <= 0 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("stats: DKWEpsilon bad arguments n=%d delta=%v", n, delta))
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(n)))
}
