package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// ZeroDelay is a levelized functional simulator. One Settle call computes
// the steady-state value of every node for a given input pattern and
// latch state, in a single topological sweep. It performs no transition
// accounting — it exists to advance the FSM through the cycles of the
// independence interval at minimal cost ("zero-delay simulation of the
// next-state logic", Section IV).
//
// The sweep runs entirely over the circuit's CSR view: flat kind and
// fanin arrays, no per-Node pointer chasing.
type ZeroDelay struct {
	csr *netlist.CSR
}

// NewZeroDelay builds a zero-delay simulator for a frozen circuit.
func NewZeroDelay(c *netlist.Circuit) *ZeroDelay {
	if !c.Frozen() {
		panic("sim: NewZeroDelay requires a frozen circuit")
	}
	return &ZeroDelay{csr: c.CSR()}
}

// Settle writes the steady-state value of every node into vals, given the
// primary-input pattern pins (aligned with c.Inputs) and latch outputs q
// (aligned with c.Latches). len(vals) must be c.NumNodes().
func (z *ZeroDelay) Settle(vals []bool, pins, q []bool) {
	r := z.csr
	if len(vals) != r.NumNodes() {
		panic(fmt.Sprintf("sim: Settle vals length %d, want %d", len(vals), r.NumNodes()))
	}
	for i, id := range r.Inputs {
		vals[id] = pins[i]
	}
	for i, id := range r.Latches {
		vals[id] = q[i]
	}
	for _, id := range r.Const0s {
		vals[id] = false
	}
	for _, id := range r.Const1s {
		vals[id] = true
	}
	faninIdx, faninList, kinds := r.FaninIdx, r.FaninList, r.Kind
	for _, id := range r.Order {
		vals[id] = evalCSR(vals, kinds[id], faninList[faninIdx[id]:faninIdx[id+1]])
	}
}

// NextState reads the next latch state out of a settled value array into
// nextQ (aligned with c.Latches): the value at each DFF's D pin.
func (z *ZeroDelay) NextState(vals []bool, nextQ []bool) {
	for i, d := range z.csr.LatchD {
		nextQ[i] = vals[d]
	}
}

// Outputs reads the primary-output values out of a settled value array.
func (z *ZeroDelay) Outputs(vals []bool, out []bool) {
	for i, id := range z.csr.Outputs {
		out[i] = vals[id]
	}
}
