package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// This file splits the parallel estimator at its natural checkpoint
// boundary: everything that happens before the first phase-2 sample —
// interval selection and variance-reduction plan resolution — is frozen
// into a ResumePoint, and the sampling/stopping tail can be (re)started
// from one. The split is what makes estimation jobs durable: a job
// store can persist the ResumePoint once the pre-sampling phases have
// run, and a restarted server re-enters the sampling phase directly.
// Determinism does the rest — replaying the tail from the same
// ResumePoint with the same seeds reproduces the interrupted run's
// samples bit for bit, so a resumed job's Result equals the Result the
// uninterrupted run would have produced.

// ResumePoint is the frozen outcome of the pre-sampling phases of an
// EstimateParallel-shaped run: the selected (or fixed) independence
// interval, the resolved variance-reduction plan, the accepted phase-1
// sequence that seeds the stopping criterion under
// Options.ReuseTestSamples, and the simulation cycles those phases
// cost. It is pure data — JSON-serializable and process-independent.
type ResumePoint struct {
	// Interval is the independence interval the sampling phase runs at.
	Interval int `json:"interval"`
	// Capped marks a selection that hit Options.MaxInterval.
	Capped bool `json:"capped,omitempty"`
	// Trials documents the selection iterations (nil for fixed-interval
	// points and points restored from a persisted checkpoint).
	Trials []Trial `json:"-"`
	// SeedSeq is the accepted phase-1 power sequence (already
	// plan-transformed when the plan corrects samples); it seeds the
	// stopping criterion when Options.ReuseTestSamples is set.
	SeedSeq []float64 `json:"seedSeq,omitempty"`
	// SeedToggles is the accepted sequence's per-node transition counts
	// (indexed by NodeID), captured only under Options.Breakdown; it
	// seeds the attribution accumulator whenever SeedSeq seeds the
	// criterion, so a resumed breakdown stays bit-identical to an
	// uninterrupted one.
	SeedToggles []uint64 `json:"seedToggles,omitempty"`
	// Plan is the frozen variance-reduction plan.
	Plan vr.Plan `json:"plan,omitzero"`
	// Hidden and Sampled tally the simulation cycles the pre-sampling
	// phases cost; a resumed Result restores them so cycle counters stay
	// identical to the uninterrupted run.
	Hidden  uint64 `json:"hidden,omitempty"`
	Sampled uint64 `json:"sampled,omitempty"`
}

// PreparePlanCtx runs the pre-sampling phases of an EstimateParallel
// run and freezes them into a ResumePoint. With fixed == nil, phase 1
// (Fig. 2 interval selection) runs on a scalar session seeded baseSeed;
// a non-nil fixed skips selection and pins the interval, exactly like
// EstimateParallelWithInterval. Plan resolution (ResolvePlan) follows
// in either case. Two calls with the same inputs produce bit-identical
// points — the determinism that makes persisted checkpoints safe to
// resume from.
func PreparePlanCtx(ctx context.Context, tb *Testbench, src vectors.Factory, baseSeed int64, opts Options, fixed *int) (ResumePoint, error) {
	if err := opts.Validate(); err != nil {
		return ResumePoint{}, err
	}
	var (
		rp  ResumePoint
		sel *IntervalSelection
	)
	tr := obs.TraceFrom(ctx)
	if fixed != nil {
		if *fixed < 0 {
			return ResumePoint{}, fmt.Errorf("core: negative interval %d", *fixed)
		}
		rp.Interval = *fixed
	} else {
		endSel := tr.Begin("select-interval")
		sel0 := tb.NewSessionMode(src(baseSeed), opts.Mode)
		sel0.StepHiddenN(opts.WarmupCycles)
		s, err := SelectIntervalCtx(ctx, sel0, opts)
		if err != nil {
			return ResumePoint{}, err
		}
		endSel()
		sel = &s
		rp.Interval, rp.Capped, rp.Trials = s.Interval, s.Capped, s.Trials
		rp.SeedToggles = s.Toggles
		rp.Hidden += sel0.HiddenCycles
		rp.Sampled += sel0.SampledCycles
	}
	endPlan := tr.Begin("plan-resolve", "interval", strconv.Itoa(rp.Interval))
	plan, seedSeq, cal, err := ResolvePlan(ctx, tb, src, baseSeed, opts, rp.Interval, sel)
	if err != nil {
		return ResumePoint{}, err
	}
	endPlan()
	rp.Plan, rp.SeedSeq = plan, seedSeq
	rp.Hidden += cal.Hidden
	rp.Sampled += cal.Sampled
	return rp, nil
}

// EstimateParallelResume runs the sampling/stopping tail of an
// EstimateParallel run from a frozen ResumePoint (see
// EstimateParallelResumeCtx).
func EstimateParallelResume(tb *Testbench, src vectors.Factory, baseSeed int64, opts Options, rp ResumePoint) (Result, error) {
	return EstimateParallelResumeCtx(context.Background(), tb, src, baseSeed, opts, rp)
}

// EstimateParallelResumeCtx runs the sampling/stopping phase at rp's
// interval under rp's plan, restoring rp's cycle counters into the
// Result. PreparePlanCtx followed by EstimateParallelResumeCtx is
// exactly EstimateParallelCtx — the pair is how a durable job store
// resumes an interrupted run without repeating interval selection or
// plan calibration, and determinism guarantees the resumed Result is
// bit-identical to the uninterrupted one.
func EstimateParallelResumeCtx(ctx context.Context, tb *Testbench, src vectors.Factory, baseSeed int64, opts Options, rp ResumePoint) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if rp.Interval < 0 {
		return Result{}, fmt.Errorf("core: negative interval %d", rp.Interval)
	}
	start := time.Now()
	res, err := parallelTail(ctx, tb, src, baseSeed, opts, rp.Interval, rp.SeedSeq, rp.SeedToggles, rp.Plan)
	res.Trials = rp.Trials
	res.IntervalCapped = rp.Capped
	res.HiddenCycles += rp.Hidden
	res.SampledCycles += rp.Sampled
	res.Elapsed = time.Since(start)
	return res, err
}
