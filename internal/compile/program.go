package compile

import "fmt"

// opcode identifies one word-level instruction. Two-operand gates have
// dedicated opcodes (the common case in technology-mapped netlists);
// wider gates use the n-ary forms, which read their operand slots from
// the program's shared args table.
type opcode uint8

const (
	opCopy  opcode = iota // dst = a          (BUF, or a gate reduced to one operand)
	opNot                 // dst = ^a
	opAnd2                // dst = a & b
	opNand2               // dst = ^(a & b)
	opOr2                 // dst = a | b
	opNor2                // dst = ^(a | b)
	opXor2                // dst = a ^ b
	opXnor2               // dst = ^(a ^ b)
	opAndN                // dst = &{args}
	opNandN               // dst = ^&{args}
	opOrN                 // dst = |{args}
	opNorN                // dst = ^|{args}
	opXorN                // dst = ^^{args} (parity)
	opXnorN               // dst = ^parity{args}
	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	"copy", "not", "and2", "nand2", "or2", "nor2", "xor2", "xnor2",
	"andN", "nandN", "orN", "norN", "xorN", "xnorN",
}

func (o opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("opcode(%d)", uint8(o))
}

// inst is one straight-line instruction. dst and the operands are
// register-file row indices; a row is W consecutive words at execution
// time. n-ary forms keep (off, n) into Program.Args instead of (a, b).
type inst struct {
	op   opcode
	dst  int32
	a, b int32 // 1- and 2-operand forms
	off  int32 // n-ary: offset into Args
	n    int32 // n-ary: operand count
}

// forOperands calls f for each operand row of the instruction, in
// operand order. args is the owning program's (or segment's) table.
func (in *inst) forOperands(args []int32, f func(int32)) {
	if in.n > 0 {
		for _, s := range args[in.off : in.off+in.n] {
			f(s)
		}
		return
	}
	switch in.op {
	case opCopy, opNot:
		f(in.a)
	default:
		f(in.a)
		f(in.b)
	}
}

// Program is a straight-line word-level program over a register file of
// Slots rows. The caller picks the row width W (words per row) at
// execution time; all state arrays are laid out row-major, so row s is
// vals[s*W : (s+1)*W].
type Program struct {
	// Slots is the register-file height in rows.
	Slots int
	// In[i] is the row holding primary input i; Q[i] the row holding
	// latch output i. The caller writes these rows before Exec.
	In, Q []int32
	// D[i] is the row holding latch i's next-state (D-pin) value after
	// Exec.
	D []int32
	// Const0 and Const1 list rows whose value is invariant: all-zero and
	// all-one respectively. InitConsts writes them once; no instruction
	// ever writes a constant row.
	Const0, Const1 []int32
	// Args is the shared operand table of the n-ary instructions.
	Args []int32

	code []inst
	// levels[i] is the logic level of code[i]'s destination node. The
	// compiler emits in level-contiguous order, so levels is
	// nondecreasing; the blocked executor uses the level runs as its
	// parallel waves. Instructions of one level are write/read-disjoint
	// from each other (operands come from strictly lower levels, and the
	// Step allocator recycles slots only across level boundaries).
	levels []int32
}

// NumInsts returns the instruction count.
func (p *Program) NumInsts() int { return len(p.code) }

// Stats summarizes a compiled program for reports and tests.
type Stats struct {
	Insts     int // instruction count
	Slots     int // register-file rows
	MaxArity  int // widest n-ary instruction
	NaryInsts int // instructions using the args table
}

// Stats returns the program's summary.
func (p *Program) Stats() Stats {
	st := Stats{Insts: len(p.code), Slots: p.Slots}
	for i := range p.code {
		in := &p.code[i]
		if in.n > 0 {
			st.NaryInsts++
			if int(in.n) > st.MaxArity {
				st.MaxArity = int(in.n)
			}
		}
	}
	return st
}

// InitConsts writes the constant rows of a w-wide register file. Called
// once per value array; Exec never touches constant rows.
func (p *Program) InitConsts(vals []uint64, w int) {
	for _, s := range p.Const0 {
		row := vals[int(s)*w : (int(s)+1)*w]
		for k := range row {
			row[k] = 0
		}
	}
	for _, s := range p.Const1 {
		row := vals[int(s)*w : (int(s)+1)*w]
		for k := range row {
			row[k] = ^uint64(0)
		}
	}
}

// Exec runs the program over a register file of w-word rows. vals must
// hold Slots*w words with the In and Q rows (and, once, the constant
// rows via InitConsts) already written. Execution is a single linear
// pass in levelized order; bit j of word k of a row is the value of
// that signal in lane k*64+j, and lanes never mix — every op is a pure
// per-word bitwise function.
func (p *Program) Exec(vals []uint64, w int) {
	execCode(p.code, p.Args, vals, w)
}

// execCode runs one instruction sequence over a register file of w-word
// rows. Factored out of Program.Exec so the blocked executor can run
// segment code (with segment-local args tables) through the same
// dispatch loop.
func execCode(code []inst, args []int32, vals []uint64, w int) {
	if w == 1 {
		execCode1(code, args, vals)
		return
	}
	for i := range code {
		in := &code[i]
		dst := vals[int(in.dst)*w : (int(in.dst)+1)*w]
		switch in.op {
		case opCopy:
			copy(dst, vals[int(in.a)*w:(int(in.a)+1)*w])
		case opNot:
			a := vals[int(in.a)*w : (int(in.a)+1)*w]
			for k := range dst {
				dst[k] = ^a[k]
			}
		case opAnd2:
			a := vals[int(in.a)*w : (int(in.a)+1)*w]
			b := vals[int(in.b)*w : (int(in.b)+1)*w]
			for k := range dst {
				dst[k] = a[k] & b[k]
			}
		case opNand2:
			a := vals[int(in.a)*w : (int(in.a)+1)*w]
			b := vals[int(in.b)*w : (int(in.b)+1)*w]
			for k := range dst {
				dst[k] = ^(a[k] & b[k])
			}
		case opOr2:
			a := vals[int(in.a)*w : (int(in.a)+1)*w]
			b := vals[int(in.b)*w : (int(in.b)+1)*w]
			for k := range dst {
				dst[k] = a[k] | b[k]
			}
		case opNor2:
			a := vals[int(in.a)*w : (int(in.a)+1)*w]
			b := vals[int(in.b)*w : (int(in.b)+1)*w]
			for k := range dst {
				dst[k] = ^(a[k] | b[k])
			}
		case opXor2:
			a := vals[int(in.a)*w : (int(in.a)+1)*w]
			b := vals[int(in.b)*w : (int(in.b)+1)*w]
			for k := range dst {
				dst[k] = a[k] ^ b[k]
			}
		case opXnor2:
			a := vals[int(in.a)*w : (int(in.a)+1)*w]
			b := vals[int(in.b)*w : (int(in.b)+1)*w]
			for k := range dst {
				dst[k] = ^(a[k] ^ b[k])
			}
		default:
			ops := args[in.off : in.off+in.n]
			copy(dst, vals[int(ops[0])*w:(int(ops[0])+1)*w])
			switch in.op {
			case opAndN, opNandN:
				for _, s := range ops[1:] {
					b := vals[int(s)*w : (int(s)+1)*w]
					for k := range dst {
						dst[k] &= b[k]
					}
				}
			case opOrN, opNorN:
				for _, s := range ops[1:] {
					b := vals[int(s)*w : (int(s)+1)*w]
					for k := range dst {
						dst[k] |= b[k]
					}
				}
			case opXorN, opXnorN:
				for _, s := range ops[1:] {
					b := vals[int(s)*w : (int(s)+1)*w]
					for k := range dst {
						dst[k] ^= b[k]
					}
				}
			}
			switch in.op {
			case opNandN, opNorN, opXnorN:
				for k := range dst {
					dst[k] = ^dst[k]
				}
			}
		}
	}
}

// execCode1 is the single-word specialization: with one word per row
// the per-op slicing and inner loops collapse to direct indexing, which
// keeps the compiled backend competitive at 64 lanes and below.
func execCode1(code []inst, args []int32, vals []uint64) {
	for i := range code {
		in := &code[i]
		switch in.op {
		case opCopy:
			vals[in.dst] = vals[in.a]
		case opNot:
			vals[in.dst] = ^vals[in.a]
		case opAnd2:
			vals[in.dst] = vals[in.a] & vals[in.b]
		case opNand2:
			vals[in.dst] = ^(vals[in.a] & vals[in.b])
		case opOr2:
			vals[in.dst] = vals[in.a] | vals[in.b]
		case opNor2:
			vals[in.dst] = ^(vals[in.a] | vals[in.b])
		case opXor2:
			vals[in.dst] = vals[in.a] ^ vals[in.b]
		case opXnor2:
			vals[in.dst] = ^(vals[in.a] ^ vals[in.b])
		default:
			ops := args[in.off : in.off+in.n]
			v := vals[ops[0]]
			switch in.op {
			case opAndN, opNandN:
				for _, s := range ops[1:] {
					v &= vals[s]
				}
			case opOrN, opNorN:
				for _, s := range ops[1:] {
					v |= vals[s]
				}
			case opXorN, opXnorN:
				for _, s := range ops[1:] {
					v ^= vals[s]
				}
			}
			switch in.op {
			case opNandN, opNorN, opXnorN:
				v = ^v
			}
			vals[in.dst] = v
		}
	}
}
