package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/refsim"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// VRBenchRow measures one (circuit, variance-reduction mode) cell of
// the BENCH_4 regression: the full DIPE procedure run to the accuracy
// target, with the sampled-cycle cost and the resulting interval
// recorded against a long reference. Reduction is the plain mode's
// sampled-cycle count divided by this row's — the samples-to-target
// lever the transforms pull.
type VRBenchRow struct {
	Name          string  `json:"circuit"`
	Gates         int     `json:"gates"`
	Mode          string  `json:"mode"`
	Interval      int     `json:"interval"`
	SampleSize    int     `json:"samples"`
	SampledCycles uint64  `json:"sampled_cycles"`
	HiddenCycles  uint64  `json:"hidden_cycles"`
	Power         float64 `json:"power_watts"`
	HalfWidth     float64 `json:"half_width_watts"`
	RelHalfWidth  float64 `json:"rel_half_width"`
	CVBeta        float64 `json:"cv_beta,omitempty"`
	RefPower      float64 `json:"ref_power_watts"`
	RefRelSE      float64 `json:"ref_rel_std_err"`
	Covered       bool    `json:"ci_covers_ref"`
	Converged     bool    `json:"converged"`
	Seconds       float64 `json:"seconds"`
	// Reduction is plain sampled cycles / this mode's sampled cycles
	// for the same circuit (1.0 for the plain row).
	Reduction float64 `json:"reduction_vs_plain"`
}

// VRBenchConfig sizes the variance-reduction benchmark.
type VRBenchConfig struct {
	// Circuits to measure (default s298/s832/s1494 — the repo's
	// regression trio).
	Circuits []string
	// Modes to sweep; must include the plain mode for reductions.
	Modes []vr.Mode
	// Spec is the accuracy target the runs converge to (default: the
	// paper's 5% at 0.99).
	RelErr     float64
	Confidence float64
	// Replications and Seed configure the estimator.
	Replications int
	Seed         int64
	// RefCycles scales the per-circuit reference budget (nil = default).
	RefCycles func(gates int) int
	// Log receives progress lines when non-nil.
	Log func(format string, args ...any)
}

// DefaultVRBenchConfig is the regression configuration: the trio of
// benchmark circuits at the paper's accuracy target, plain vs
// antithetic vs control-variate.
func DefaultVRBenchConfig() VRBenchConfig {
	return VRBenchConfig{
		Circuits:     []string{"s298", "s832", "s1494"},
		Modes:        []vr.Mode{vr.ModeNone, vr.ModeAntithetic, vr.ModeControlVariate},
		RelErr:       0.05,
		Confidence:   0.99,
		Replications: 64,
		Seed:         1997,
	}
}

// VarianceReduction runs the benchmark: for every circuit, one long
// reference plus one full estimation run per mode (dynamic interval
// selection included, so every mode pays the same phase-1 cost it would
// in production). The runs are deterministic: fixed seeds, fixed merge
// order.
func VarianceReduction(cfg VRBenchConfig) ([]VRBenchRow, error) {
	if len(cfg.Circuits) == 0 || len(cfg.Modes) == 0 {
		return nil, fmt.Errorf("experiments: empty VR bench config")
	}
	if cfg.RelErr == 0 {
		cfg.RelErr = 0.05
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.99
	}
	if cfg.Replications == 0 {
		cfg.Replications = 64
	}
	if cfg.RefCycles == nil {
		cfg.RefCycles = DefaultRefCycles
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var rows []VRBenchRow
	for ci, name := range cfg.Circuits {
		c, err := bench89.Get(name)
		if err != nil {
			return nil, err
		}
		tb := core.DefaultTestbench(c)
		width := len(c.Inputs)
		seed := cfg.Seed + int64(ci)*1_000_003
		refCycles := cfg.RefCycles(c.NumGates())
		logf("vr-bench: %s reference (%d cycles)...\n", name, refCycles)
		ref := refsim.Run(tb.NewSession(vectors.NewIID(width, 0.5, seed)), 256, refCycles)

		circuitStart := len(rows)
		for _, mode := range cfg.Modes {
			opts := core.DefaultOptions()
			opts.Spec.RelErr = cfg.RelErr
			opts.Spec.Confidence = cfg.Confidence
			opts.Replications = cfg.Replications
			opts.Variance.Mode = mode
			t0 := time.Now()
			res, err := core.EstimateParallel(tb, vectors.IIDFactory(width, 0.5), seed+1, opts)
			if err != nil {
				return nil, fmt.Errorf("vr-bench %s/%s: %w", name, mode, err)
			}
			row := VRBenchRow{
				Name:          name,
				Gates:         c.NumGates(),
				Mode:          mode.String(),
				Interval:      res.Interval,
				SampleSize:    res.SampleSize,
				SampledCycles: res.SampledCycles,
				HiddenCycles:  res.HiddenCycles,
				Power:         res.Power,
				HalfWidth:     res.HalfWidth,
				RelHalfWidth:  res.RelHalfWidth(),
				CVBeta:        res.CVBeta,
				RefPower:      ref.Power,
				RefRelSE:      ref.RelStdErr(),
				Covered:       math.Abs(res.Power-ref.Power) <= res.HalfWidth+3*ref.StdErr,
				Converged:     res.Converged,
				Seconds:       time.Since(t0).Seconds(),
			}
			logf("vr-bench: %s/%-15s n=%d sampled=%d covered=%v\n",
				name, mode, row.SampleSize, row.SampledCycles, row.Covered)
			rows = append(rows, row)
		}
		// Reductions in a second pass, so the plain baseline may appear
		// anywhere in cfg.Modes.
		var plainSampled uint64
		for _, r := range rows[circuitStart:] {
			if vr.Mode(r.Mode).Canonical() == vr.ModeNone {
				plainSampled = r.SampledCycles
			}
		}
		if plainSampled > 0 {
			for i := range rows[circuitStart:] {
				r := &rows[circuitStart+i]
				if r.SampledCycles > 0 {
					r.Reduction = float64(plainSampled) / float64(r.SampledCycles)
				}
			}
		}
	}
	return rows, nil
}

// VRBenchReport is the JSON document emitted for regression tracking
// (BENCH_4.json).
type VRBenchReport struct {
	Benchmark  string       `json:"benchmark"`
	RelErr     float64      `json:"rel_err"`
	Confidence float64      `json:"confidence"`
	GoVersion  string       `json:"go_version"`
	NumCPU     int          `json:"num_cpu"`
	Rows       []VRBenchRow `json:"rows"`
}

// VRBenchJSON renders rows as an indented JSON report.
func VRBenchJSON(rows []VRBenchRow, cfg VRBenchConfig) string {
	rep := VRBenchReport{
		Benchmark:  "variance reduction: sampled cycles to the accuracy target, plain vs antithetic vs control-variate",
		RelErr:     cfg.RelErr,
		Confidence: cfg.Confidence,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Rows:       rows,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		// Marshal of a plain struct cannot fail; keep the API total anyway.
		return "{}"
	}
	return string(b) + "\n"
}

// RenderVRBench renders rows as an ASCII table.
func RenderVRBench(rows []VRBenchRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-16s %3s %8s %10s %8s %8s %9s %8s\n",
		"circuit", "mode", "II", "samples", "sampled", "hw%", "beta", "reduction", "covers")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-16s %3d %8d %10d %7.2f%% %8.3f %8.2fx %8v\n",
			r.Name, r.Mode, r.Interval, r.SampleSize, r.SampledCycles,
			100*r.RelHalfWidth, r.CVBeta, r.Reduction, r.Covered)
	}
	return sb.String()
}
