package compile

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench89"
	"repro/internal/netlist"
)

// randomFile builds a Slots*w register file with random source rows and
// the constant rows initialized, as a session would before Exec.
func randomFile(p *Program, w int, rng *rand.Rand) []uint64 {
	vals := make([]uint64, p.Slots*w)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	p.InitConsts(vals, w)
	return vals
}

// liveRows returns the rows whose post-Exec values the blocked forms
// guarantee: every row for the observation-exact Full program, only the
// D rows for Step (dead temporaries may stay in scratch).
func liveRows(p *Program, observeAll bool) []int32 {
	if observeAll {
		rows := make([]int32, p.Slots)
		for i := range rows {
			rows[i] = int32(i)
		}
		return rows
	}
	return p.D
}

// checkBlockedExact asserts that a blocked partition reproduces
// Program.Exec bit-for-bit on the guaranteed-live rows, starting from
// identical random register files.
func checkBlockedExact(t *testing.T, p *Program, b *Blocked, w int, observeAll bool, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 4; trial++ {
		ref := randomFile(p, w, rng)
		got := make([]uint64, len(ref))
		copy(got, ref)
		p.Exec(ref, w)
		scratch := make([]uint64, b.ScratchSlots*w)
		if b.Workers > 1 {
			b.ExecParallel(got, w)
		} else {
			b.Exec(got, scratch, w)
		}
		for _, row := range liveRows(p, observeAll) {
			for k := 0; k < w; k++ {
				if got[int(row)*w+k] != ref[int(row)*w+k] {
					t.Fatalf("trial %d: row %d word %d: blocked %#x, reference %#x",
						trial, row, k, got[int(row)*w+k], ref[int(row)*w+k])
				}
			}
		}
	}
}

// TestBlockedExecExact sweeps budgets from pathological (one slot's
// worth of bytes) through tiny, moderate and effectively unbounded, at
// 1- and 8-word widths, over both programs of several circuits. Every
// partition must reproduce the linear pass exactly.
func TestBlockedExecExact(t *testing.T) {
	budgets := []int{8, 512, 4 << 10, 64 << 10, 1 << 30}
	for _, name := range []string{"s298", "s1423", "s5378"} {
		u := Compile(bench89.MustGet(name))
		for _, w := range []int{1, 8} {
			for _, budget := range budgets {
				for _, pc := range []struct {
					tag        string
					p          *Program
					observeAll bool
				}{{"full", u.Full, true}, {"step", u.Step, false}} {
					b := Block(pc.p, BlockOptions{BudgetBytes: budget, W: w, ObserveAll: pc.observeAll})
					t.Run(fmt.Sprintf("%s/%s/w%d/budget%d", name, pc.tag, w, budget), func(t *testing.T) {
						checkBlockedExact(t, pc.p, b, w, pc.observeAll, int64(budget)+int64(w))
					})
				}
			}
		}
	}
}

// TestBlockedSegInstsCap forces one instruction per segment — the
// maximum possible spill traffic — and checks both the exactness and
// that the cap is honored.
func TestBlockedSegInstsCap(t *testing.T) {
	u := Compile(bench89.MustGet("s1423"))
	for _, pc := range []struct {
		tag        string
		p          *Program
		observeAll bool
	}{{"full", u.Full, true}, {"step", u.Step, false}} {
		b := Block(pc.p, BlockOptions{BudgetBytes: 4 << 10, W: 1, MaxSegInsts: 1, ObserveAll: pc.observeAll})
		st := b.Stats()
		if st.Segments != pc.p.NumInsts() {
			t.Fatalf("%s: %d segments for %d instructions with MaxSegInsts=1", pc.tag, st.Segments, pc.p.NumInsts())
		}
		checkBlockedExact(t, pc.p, b, 1, pc.observeAll, 77)
	}
}

// TestBlockedHugeBudgetIsDirect checks the degenerate upper end: a
// budget larger than the whole register file must collapse to a single
// direct segment with no scratch file and no boundary copies.
func TestBlockedHugeBudgetIsDirect(t *testing.T) {
	u := Compile(bench89.MustGet("s298"))
	b := Block(u.Full, BlockOptions{BudgetBytes: 1 << 30, W: 1, ObserveAll: true})
	st := b.Stats()
	if st.Segments != 1 || st.DirectSegs != 1 {
		t.Fatalf("got %d segments (%d direct), want one direct segment", st.Segments, st.DirectSegs)
	}
	if st.ScratchSlots != 0 || st.LoadRows != 0 || st.StoreRows != 0 {
		t.Fatalf("direct partition still spills: scratch %d, loads %d, stores %d",
			st.ScratchSlots, st.LoadRows, st.StoreRows)
	}
}

// TestBlockedParallelExact runs the level-parallel partition at several
// worker counts against the linear pass.
func TestBlockedParallelExact(t *testing.T) {
	for _, name := range []string{"s298", "s1423", "s5378"} {
		u := Compile(bench89.MustGet(name))
		for _, workers := range []int{2, 3, 8} {
			for _, pc := range []struct {
				tag        string
				p          *Program
				observeAll bool
			}{{"full", u.Full, true}, {"step", u.Step, false}} {
				b := Block(pc.p, BlockOptions{Workers: workers})
				if b.Workers != workers {
					t.Fatalf("partition kept %d workers, want %d", b.Workers, workers)
				}
				t.Run(fmt.Sprintf("%s/%s/workers%d", name, pc.tag, workers), func(t *testing.T) {
					checkBlockedExact(t, pc.p, b, 1, pc.observeAll, int64(workers))
				})
			}
		}
	}
}

// TestBlockedParallelRandomCircuits extends the parallel exactness
// check to generated netlists, whose level structure is much more
// irregular than the ISCAS'89 set.
func TestBlockedParallelRandomCircuits(t *testing.T) {
	for seed := uint32(0); seed < 6; seed++ {
		c, err := bench89.Generate(bench89.RandomSignature(seed))
		if err != nil {
			t.Fatal(err)
		}
		u := Compile(c)
		b := Block(u.Full, BlockOptions{Workers: 4})
		checkBlockedExact(t, u.Full, b, 2, true, int64(seed))
		bs := Block(u.Step, BlockOptions{Workers: 4})
		checkBlockedExact(t, u.Step, bs, 2, false, int64(seed)+100)
	}
}

// TestLevelsNondecreasing pins the compiler's level-contiguous emission
// contract that both blocked forms build on: the per-instruction level
// sequence never decreases, and every instruction has a level entry.
func TestLevelsNondecreasing(t *testing.T) {
	check := func(name string, p *Program) {
		if len(p.levels) != p.NumInsts() {
			t.Fatalf("%s: %d level entries for %d instructions", name, len(p.levels), p.NumInsts())
		}
		for i := 1; i < len(p.levels); i++ {
			if p.levels[i] < p.levels[i-1] {
				t.Fatalf("%s: level drops %d -> %d at instruction %d", name, p.levels[i-1], p.levels[i], i)
			}
		}
	}
	for _, name := range bench89.Names() {
		u := Compile(bench89.MustGet(name))
		check(name+"/full", u.Full)
		check(name+"/step", u.Step)
	}
}

// TestLevelsOperandsStrictlyLower pins the independence property that
// makes same-level segments safe to run concurrently: within one level
// no instruction reads a row that another instruction of that level
// writes.
func TestLevelsOperandsStrictlyLower(t *testing.T) {
	check := func(name string, p *Program) {
		writer := make(map[int32]int32) // row -> level that wrote it
		for i := range p.code {
			in := &p.code[i]
			lvl := p.levels[i]
			in.forOperands(p.Args, func(s int32) {
				if wl, ok := writer[s]; ok && wl == lvl {
					t.Fatalf("%s: instruction %d (level %d) reads row %d written in the same level", name, i, lvl, s)
				}
			})
			writer[in.dst] = lvl
		}
	}
	for _, name := range []string{"s298", "s1423", "s5378", "s9234"} {
		u := Compile(bench89.MustGet(name))
		check(name+"/full", u.Full)
		check(name+"/step", u.Step)
	}
}

// TestBlockedEmptyProgram exercises the zero-instruction edge (a
// circuit with no gates compiles to an empty Step program body on some
// shapes); Block must not panic and Exec must be a no-op.
func TestBlockedEmptyProgram(t *testing.T) {
	c, err := netlist.ParseBenchString("tiny", "INPUT(a)\nOUTPUT(a)\n")
	if err != nil {
		t.Fatal(err)
	}
	u := Compile(c)
	for _, p := range []*Program{u.Full, u.Step} {
		b := Block(p, BlockOptions{BudgetBytes: 64, W: 1})
		vals := make([]uint64, p.Slots)
		scratch := make([]uint64, b.ScratchSlots)
		b.Exec(vals, scratch, 1)
		bp := Block(p, BlockOptions{Workers: 2})
		bp.ExecParallel(vals, 1)
	}
}
