// Command dipe-worker is the stateless sampling node of a dipe
// estimation cluster: it serves the cluster worker protocol (install a
// circuit by provenance hash, stream a replication range's power
// samples) and holds no job state of its own. Point any number of them
// at a dipe-server running in cluster mode.
//
//	dipe-worker                                  # listen on :8416
//	dipe-worker -addr :9101                      # explicit port
//	dipe-worker -register http://coord:8415      # self-register with the coordinator
//	dipe-worker -register http://coord:8415 -advertise http://10.0.0.7:8416
//
// With -register, the worker POSTs its advertised URL to the
// coordinator's /v1/cluster/workers on startup (retrying until the
// coordinator answers), so bringing capacity online is one command.
// Without -advertise the worker advertises http://127.0.0.1:<port> —
// fine for single-host clusters, wrong across machines.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dipe-worker:", err)
		os.Exit(1)
	}
}

// run parses args, serves until the stop channel (or SIGINT/SIGTERM
// when stop is nil) fires, and reports the bound address on ready when
// non-nil — the test harness uses ready/stop to drive a real listener
// on a kernel-assigned port.
func run(args []string, out io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("dipe-worker", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8416", "listen address")
		circuits  = fs.Int("circuits", 0, "installed-circuit table capacity (0 = default)")
		register  = fs.String("register", "", "coordinator base URL to self-register with (empty = none)")
		advertise = fs.String("advertise", "", "base URL the coordinator should reach this worker at (default http://127.0.0.1:<port>)")
		logLevel  = fs.String("log-level", "info", "structured log threshold: debug | info | warn | error")
		logFormat = fs.String("log-format", "logfmt", "structured log encoding: logfmt | json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The worker mounts reg.Handler() at /metrics itself; the compiled
	// backend's wave/instruction counters register on the same registry
	// so sampling throughput is scrapable per node.
	reg := obs.NewRegistry()
	sim.RegisterCompiledMetrics(reg)
	log := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel), obs.ParseFormat(*logFormat))
	wk := cluster.NewWorker(cluster.WorkerConfig{CircuitCap: *circuits, Obs: reg, Log: log})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Every request context descends from baseCtx; cancelling it on
	// shutdown aborts in-flight sample streams at their next block, so a
	// draining worker doesn't sit out the whole Shutdown deadline waiting
	// for coordinators to hang up. A severed stream is a fault the
	// coordinator's lease/reassignment machinery already absorbs.
	baseCtx, abortStreams := context.WithCancel(context.Background())
	defer abortStreams()
	srv := &http.Server{
		Handler:     wk.Handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	fmt.Fprintf(out, "dipe-worker listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	regCtx, regCancel := context.WithCancel(context.Background())
	defer regCancel()
	if *register != "" {
		self := *advertise
		if self == "" {
			_, port, err := net.SplitHostPort(ln.Addr().String())
			if err != nil {
				return err
			}
			self = "http://127.0.0.1:" + port
		}
		go selfRegister(regCtx, out, strings.TrimRight(*register, "/"), self)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	if stop == nil {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigc)
		select {
		case err := <-errc:
			return err
		case <-sigc:
		}
	} else {
		select {
		case err := <-errc:
			return err
		case <-stop:
		}
	}

	// Stop re-announcing, abort in-flight streams at their next block,
	// then drain the remaining (short-lived) requests.
	regCancel()
	abortStreams()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// A coordinator may still hold a dead stream's socket open past
		// the deadline; surrender the sockets rather than hang shutdown.
		_ = srv.Close()
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "dipe-worker stopped")
	return nil
}

// selfRegister announces the worker to the coordinator and keeps
// re-announcing it for the life of the process: exponential backoff
// with jitter until the first success — the coordinator may come up
// well after the workers, and a fleet booting together must not
// synchronize its retries — then a slow steady cadence (15s). Each
// attempt carries its own timeout. The coordinator's worker table is
// in-memory, so periodic re-registration is what lets a restarted
// coordinator rediscover its fleet without operator action;
// re-registering an already-known URL is an idempotent re-probe.
func selfRegister(ctx context.Context, out io.Writer, coordinator, self string) {
	body, err := json.Marshal(map[string]string{"url": self})
	if err != nil {
		return
	}
	const (
		baseDelay   = 500 * time.Millisecond
		steadyDelay = 15 * time.Second
	)
	client := &http.Client{}
	registered := false
	delay := baseDelay
	for {
		attempt, cancel := context.WithTimeout(ctx, 3*time.Second)
		req, err := http.NewRequestWithContext(attempt, http.MethodPost,
			coordinator+"/v1/cluster/workers", bytes.NewReader(body))
		if err != nil {
			cancel()
			fmt.Fprintf(out, "dipe-worker: bad coordinator URL: %v\n", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusCreated:
				if !registered {
					fmt.Fprintf(out, "registered with %s as %s\n", coordinator, self)
				}
				registered = true
			case resp.StatusCode == http.StatusNotFound:
				// The coordinator is not in cluster mode; retrying will not
				// fix a configuration error, so say so and stop.
				cancel()
				fmt.Fprintf(out, "dipe-worker: %s is not running a cluster dispatcher (start dipe-server with -cluster or -workers-addr)\n", coordinator)
				return
			}
		}
		cancel()
		var wait time.Duration
		if registered {
			delay = baseDelay // reset for the next outage
			wait = steadyDelay
		} else {
			// ±20% jitter, then double toward the steady cadence.
			wait = delay + time.Duration((rand.Float64()-0.5)*0.4*float64(delay))
			if delay *= 2; delay > steadyDelay {
				delay = steadyDelay
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}
