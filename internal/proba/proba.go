package proba

import (
	"fmt"
	"math"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/power"
)

// Options tunes the latch fixpoint iteration.
type Options struct {
	// Tol is the convergence tolerance on the maximum latch probability
	// change per iteration.
	Tol float64
	// MaxIter bounds the iteration count.
	MaxIter int
	// Damping in (0,1]: newP = Damping*computed + (1-Damping)*old.
	// Values below 1 stabilize oscillating FSM fixpoints (a two-phase
	// oscillator has no fixpoint without damping).
	Damping float64
}

// DefaultOptions returns tolerances adequate for benchmark circuits.
func DefaultOptions() Options {
	return Options{Tol: 1e-9, MaxIter: 10_000, Damping: 0.5}
}

// Result holds per-node signal statistics.
type Result struct {
	// P[i] is the estimated probability that node i is 1.
	P []float64
	// Activity[i] is the estimated transitions per clock cycle at node
	// i under the temporal-independence approximation: 2 p (1-p).
	Activity []float64
	// Iterations is the number of fixpoint sweeps performed.
	Iterations int
	// Converged reports whether the latch probabilities reached Tol.
	Converged bool
}

// Analyze propagates signal probabilities through a frozen sequential
// circuit whose primary inputs are independent Bernoulli(inputP[i])
// sources. Latch output probabilities are iterated to a fixpoint of
// p(Q) = p(D).
func Analyze(c *netlist.Circuit, inputP []float64, opts Options) (*Result, error) {
	if !c.Frozen() {
		return nil, fmt.Errorf("proba: circuit %q not frozen", c.Name)
	}
	if len(inputP) != len(c.Inputs) {
		return nil, fmt.Errorf("proba: %d input probabilities for %d inputs", len(inputP), len(c.Inputs))
	}
	for i, p := range inputP {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("proba: input probability p[%d]=%v outside [0,1]", i, p)
		}
	}
	if opts.Tol <= 0 || opts.MaxIter < 1 || opts.Damping <= 0 || opts.Damping > 1 {
		return nil, fmt.Errorf("proba: bad options %+v", opts)
	}

	n := c.NumNodes()
	res := &Result{P: make([]float64, n), Activity: make([]float64, n)}
	for i, id := range c.Inputs {
		res.P[id] = inputP[i]
	}
	// Latch probabilities start at 0.5 (maximum entropy).
	for _, id := range c.Latches {
		res.P[id] = 0.5
	}
	// Constants are sources, not gates: set them once here.
	for i := range c.Nodes {
		switch c.Nodes[i].Kind {
		case logic.Const0:
			res.P[i] = 0
		case logic.Const1:
			res.P[i] = 1
		}
	}

	sweep := func() {
		for _, id := range c.Order() {
			nd := &c.Nodes[id]
			res.P[id] = gateProb(nd.Kind, nd.Fanin, res.P)
		}
	}
	for it := 1; it <= opts.MaxIter; it++ {
		sweep()
		res.Iterations = it
		// Update latch probabilities toward p(D); track the change.
		maxDelta := 0.0
		for _, id := range c.Latches {
			d := c.Nodes[id].Fanin[0]
			newP := opts.Damping*res.P[d] + (1-opts.Damping)*res.P[id]
			if delta := math.Abs(newP - res.P[id]); delta > maxDelta {
				maxDelta = delta
			}
			res.P[id] = newP
		}
		if maxDelta < opts.Tol {
			res.Converged = true
			break
		}
	}
	// One final sweep with the converged latch probabilities.
	sweep()
	for i := range res.Activity {
		switch c.Nodes[i].Kind {
		case logic.Const0, logic.Const1:
			res.Activity[i] = 0
		default:
			p := res.P[i]
			// Temporal-independence approximation: consecutive values
			// i.i.d. Bernoulli(p) -> P(transition) = 2p(1-p).
			res.Activity[i] = 2 * p * (1 - p)
		}
	}
	return res, nil
}

// gateProb evaluates the output-1 probability of a gate under the
// fanin-independence approximation.
func gateProb(k logic.Kind, fanin []netlist.NodeID, p []float64) float64 {
	switch k {
	case logic.Buf:
		return p[fanin[0]]
	case logic.Not:
		return 1 - p[fanin[0]]
	case logic.And, logic.Nand:
		v := 1.0
		for _, f := range fanin {
			v *= p[f]
		}
		if k == logic.Nand {
			return 1 - v
		}
		return v
	case logic.Or, logic.Nor:
		v := 1.0
		for _, f := range fanin {
			v *= 1 - p[f]
		}
		if k == logic.Nor {
			return v
		}
		return 1 - v
	case logic.Xor, logic.Xnor:
		// Fold pairwise: P(a xor b) = a(1-b) + b(1-a) under independence.
		v := 0.0
		for i, f := range fanin {
			if i == 0 {
				v = p[f]
				continue
			}
			v = v*(1-p[f]) + p[f]*(1-v)
		}
		if k == logic.Xnor {
			return 1 - v
		}
		return v
	case logic.Const0:
		return 0
	case logic.Const1:
		return 1
	}
	panic("proba: gateProb on non-combinational kind " + k.String())
}

// Power converts the activity estimate into average power under a power
// model: P = sum_i C_i * a_i * VDD^2 / (2T). This is the probabilistic
// counterpart of Eq. 1 with n_i replaced by its (approximate) mean.
func (r *Result) Power(m *power.Model) float64 {
	k := m.Supply.VDD * m.Supply.VDD / (2 * m.Supply.ClockPeriod)
	total := 0.0
	for i, a := range r.Activity {
		total += m.Caps[i] * a * k
	}
	return total
}
