package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/vectors"
)

// The large-circuit benchmark (BENCH_7.json) measures what the blocked
// executor buys at s38417 scale and beyond: the same estimation
// duty-cycle sweep as CompiledThroughput, but compiled-backend only,
// comparing the linear one-pass executor against the cache-blocked
// wave-batched form and the level-parallel executor at several worker
// counts. The suite pairs the largest ISCAS'89 circuit with a synthetic
// latch-heavy netlist several times bigger.
//
// Two throughput figures come out per row. The engine figure counts
// only register-file execution time (the Step/Full passes the blocked
// executor restructures), measured at the session's exec funnel via
// CompiledConfig.Instrument — this is the regression-gated number. The
// duty figure is end-to-end estimation cycles per second; it also
// includes the stimulus and observation layers (per-lane source draws
// and the weighted toggle diff), whose bit streams and float summation
// order are frozen by the cross-backend identity contract and are
// therefore identical work in every row. Reporting both keeps the
// comparison honest: the executor speedup is the engine ratio, and the
// duty ratio shows how much of an estimation cycle that execution is.

// LargeBenchConfig configures LargeBench.
type LargeBenchConfig struct {
	// Circuits are bench89 names (the extended set included).
	Circuits []string
	// ScaledGates > 0 adds a synthetic bench89.ScaledSignature circuit of
	// that many gates, generated with ScaledSeed.
	ScaledGates int
	ScaledSeed  uint32
	// Warmup, Samples and Interval define one duty-cycle sweep (see
	// CompiledThroughput); Sweeps sweeps are timed per configuration and
	// the fastest one counts.
	Warmup, Samples, Interval, Sweeps int
	// Lanes is the compiled session width.
	Lanes int
	// WorkerCounts are the level-parallel configurations to time (each
	// adds a "workers-N" row). Empty means none.
	WorkerCounts []int
	// Seed feeds the lane sources.
	Seed int64
	// Log receives progress lines when non-nil.
	Log func(format string, args ...any)
}

// DefaultLargeBenchConfig returns the BENCH_7 regression configuration:
// s38417 plus a ~100k-gate synthetic circuit, default budget blocking,
// and a 2-worker level-parallel row.
func DefaultLargeBenchConfig() LargeBenchConfig {
	return LargeBenchConfig{
		Circuits:     []string{"s38417"},
		ScaledGates:  100_000,
		ScaledSeed:   7,
		Warmup:       512,
		Samples:      32,
		Interval:     8,
		Sweeps:       3,
		Lanes:        sim.CompiledMaxLanes,
		WorkerCounts: []int{2},
		Seed:         1997,
	}
}

// LargeBenchRow is one (circuit, executor configuration) measurement.
type LargeBenchRow struct {
	Name   string `json:"circuit"`
	Gates  int    `json:"gates"`
	Lanes  int    `json:"lanes"`
	Config string `json:"config"` // unblocked | blocked | workers-N

	// Step/Full register-file sizes in bytes at this width — the working
	// sets blocking exists to shrink.
	StepFileBytes int `json:"step_file_bytes"`
	FullFileBytes int `json:"full_file_bytes"`
	// Segmentation shape (zero for the unblocked row).
	StepSegments int `json:"step_segments,omitempty"`
	FullSegments int `json:"full_segments,omitempty"`

	HiddenCPS     float64 `json:"hidden_cycles_per_sec"`
	DutyCPS       float64 `json:"duty_cycles_per_sec"`
	EngineCPS     float64 `json:"engine_cycles_per_sec"`
	HiddenSpeedup float64 `json:"hidden_speedup_vs_unblocked"`
	DutySpeedup   float64 `json:"duty_speedup_vs_unblocked"`
	EngineSpeedup float64 `json:"engine_speedup_vs_unblocked"`
	Warmup        int     `json:"warmup_cycles"`
	Samples       int     `json:"samples_per_sweep"`
	Interval      int     `json:"sampling_interval"`
}

// largeBenchCircuits resolves the configured benchmark circuits.
func largeBenchCircuits(cfg LargeBenchConfig) ([]*netlist.Circuit, error) {
	var out []*netlist.Circuit
	for _, name := range cfg.Circuits {
		c, err := bench89.Get(name)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if cfg.ScaledGates > 0 {
		c, err := bench89.Generate(bench89.ScaledSignature(cfg.ScaledSeed, cfg.ScaledGates))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// LargeBench times the executor configurations over the configured
// circuits. Rows come out grouped per circuit with the unblocked row
// first; speedups are relative to that row.
func LargeBench(cfg LargeBenchConfig) ([]LargeBenchRow, error) {
	if cfg.Warmup < 1 || cfg.Samples < 1 || cfg.Interval < 1 || cfg.Sweeps < 1 {
		return nil, fmt.Errorf("experiments: bad large bench config (warmup=%d samples=%d interval=%d sweeps=%d)",
			cfg.Warmup, cfg.Samples, cfg.Interval, cfg.Sweeps)
	}
	if cfg.Lanes < 1 || cfg.Lanes > sim.CompiledMaxLanes {
		return nil, fmt.Errorf("experiments: large bench lanes %d out of range [1, %d]", cfg.Lanes, sim.CompiledMaxLanes)
	}
	circuits, err := largeBenchCircuits(cfg)
	if err != nil {
		return nil, err
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	type execConfig struct {
		label string
		sc    sim.SessionConfig
	}
	configs := []execConfig{
		{"unblocked", sim.SessionConfig{CacheBudget: -1}},
		{"blocked", sim.SessionConfig{}},
	}
	for _, n := range cfg.WorkerCounts {
		if n > 1 {
			configs = append(configs, execConfig{fmt.Sprintf("workers-%d", n), sim.SessionConfig{Workers: n}})
		}
	}

	perSweep := cfg.Warmup + cfg.Samples*cfg.Interval
	var rows []LargeBenchRow
	for _, c := range circuits {
		tb := core.DefaultTestbench(c)
		weights := tb.Weights()
		width := len(c.Inputs)
		var base LargeBenchRow
		for i, ec := range configs {
			logf("largebench: %s / %s\n", c.Name, ec.label)
			mk := func() *sim.CompiledSession {
				srcs := make([]vectors.Source, cfg.Lanes)
				for k := range srcs {
					srcs[k] = vectors.NewIID(width, 0.5, cfg.Seed+1+int64(k))
				}
				return sim.NewCompiledSessionConfig(c, srcs, sim.CompiledConfig{
					CacheBudget: ec.sc.CacheBudget,
					Workers:     ec.sc.Workers,
					Instrument:  true,
				})
			}
			powers := make([]float64, cfg.Lanes)

			// Every figure is the fastest of cfg.Sweeps timed sweeps:
			// interference on a shared host only ever inflates a sweep's
			// wall time, so the minimum is the noise-robust statistic for
			// a regression gate.
			s := mk()
			s.StepHiddenN(64) // touch everything once before timing
			hiddenSec := 0.0
			for i := 0; i < cfg.Sweeps; i++ {
				t0 := time.Now()
				s.StepHiddenN(perSweep)
				if d := time.Since(t0).Seconds(); i == 0 || d < hiddenSec {
					hiddenSec = d
				}
			}

			s = mk()
			sweep := func() {
				s.StepHiddenN(cfg.Warmup)
				for i := 0; i < cfg.Samples; i++ {
					s.StepHiddenN(cfg.Interval - 1)
					s.StepSampled(weights, powers)
				}
			}
			sweep() // warm pass
			dutySec, engineSec := 0.0, 0.0
			for i := 0; i < cfg.Sweeps; i++ {
				e0 := s.ExecSeconds
				t0 := time.Now()
				sweep()
				if d := time.Since(t0).Seconds(); i == 0 || d < dutySec {
					dutySec = d
				}
				if e := s.ExecSeconds - e0; i == 0 || e < engineSec {
					engineSec = e
				}
			}

			row := LargeBenchRow{
				Name: c.Name, Gates: c.NumGates(), Lanes: cfg.Lanes, Config: ec.label,
				Warmup: cfg.Warmup, Samples: cfg.Samples, Interval: cfg.Interval,
			}
			stepStats, fullStats, blocked := s.BlockedStats()
			if blocked {
				row.StepSegments = stepStats.Segments
				row.FullSegments = fullStats.Segments
			}
			row.StepFileBytes, row.FullFileBytes = s.FileBytes()
			cps := func(cycles int, sec float64) float64 {
				if sec <= 0 {
					return 0
				}
				return float64(cycles*cfg.Lanes) / sec
			}
			row.HiddenCPS = cps(perSweep, hiddenSec)
			row.DutyCPS = cps(perSweep, dutySec)
			row.EngineCPS = cps(perSweep, engineSec)
			if i == 0 {
				base = row
			}
			if base.HiddenCPS > 0 {
				row.HiddenSpeedup = row.HiddenCPS / base.HiddenCPS
			}
			if base.DutyCPS > 0 {
				row.DutySpeedup = row.DutyCPS / base.DutyCPS
			}
			if base.EngineCPS > 0 {
				row.EngineSpeedup = row.EngineCPS / base.EngineCPS
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// LargeBenchReport is the JSON document emitted for regression tracking
// (BENCH_7.json).
type LargeBenchReport struct {
	Benchmark string          `json:"benchmark"`
	GoVersion string          `json:"go_version"`
	NumCPU    int             `json:"num_cpu"`
	Rows      []LargeBenchRow `json:"rows"`
}

// LargeBenchJSON renders rows as an indented JSON report.
func LargeBenchJSON(rows []LargeBenchRow) string {
	rep := LargeBenchReport{
		Benchmark: "large-circuit duty cycle: linear vs cache-blocked vs level-parallel compiled execution",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Rows:      rows,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		// Marshal of a plain struct cannot fail; keep the API total anyway.
		return "{}"
	}
	return string(b) + "\n"
}

// RenderLargeBench renders rows as an ASCII table.
func RenderLargeBench(rows []LargeBenchRow) string {
	s := fmt.Sprintf("%-12s %8s %-10s %9s %9s %12s %7s %12s %7s\n",
		"circuit", "gates", "config", "step KB", "full KB", "engine c/s", "eng.x", "duty c/s", "duty.x")
	for _, r := range rows {
		s += fmt.Sprintf("%-12s %8d %-10s %9d %9d %12.3g %6.2fx %12.3g %6.2fx\n",
			r.Name, r.Gates, r.Config, r.StepFileBytes>>10, r.FullFileBytes>>10,
			r.EngineCPS, r.EngineSpeedup, r.DutyCPS, r.DutySpeedup)
	}
	return s
}
