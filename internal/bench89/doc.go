// Package bench89 provides the sequential benchmark circuits the paper
// evaluates on (the ISCAS89 suite, s208 … s15850).
//
// The original ISCAS89 netlists are distribution artifacts we do not
// ship; instead this package provides
//
//   - the genuine s27 netlist (public domain, 10 gates), embedded
//     verbatim, used as ground truth for the parser and simulators, and
//   - a deterministic synthetic generator that reproduces each
//     benchmark's published signature (#PI, #PO, #DFF, #gates) with an
//     FSM-like structure: an input-gated ripple counter (strong
//     cycle-to-cycle power correlation), hold-style state registers, and
//     a random combinational cloud.
//
// The substitution is documented in DESIGN.md: the estimation technique
// only requires ergodic, mixing sequential circuits with temporally
// correlated per-cycle power, which the generated circuits exhibit by
// construction. Genuine ISCAS89 .bench files parse with
// netlist.ParseBench and can be dropped in directly.
//
// These are the circuits of the paper's evaluation (Section V,
// Tables 1 and 2); the dipe-server registry serves them by name next
// to uploaded netlists.
package bench89
