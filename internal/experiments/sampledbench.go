package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vectors"
)

// SampledBenchRow compares sampled-cycle throughput on one circuit
// across the power engines: the scalar event-driven simulator (the
// general-delay mode's per-lane cost), the scalar zero-delay toggle
// engine, and the packed 64-lane zero-delay engine (word-level
// transition counting). Cycles per second count per-replication clock
// cycles, so the packed figure already includes the lane fan-out. The
// packed-vs-event-driven speedup is the cost ratio between the two
// power modes' sampled phases — the phase that dominates estimation
// cost in the paper's two-phase scheme.
type SampledBenchRow struct {
	Name          string  `json:"circuit"`
	Gates         int     `json:"gates"`
	Lanes         int     `json:"lanes"`
	EventCPS      float64 `json:"event_driven_cycles_per_sec"`
	ToggleCPS     float64 `json:"zero_delay_toggle_cycles_per_sec"`
	PackedCPS     float64 `json:"packed_zero_delay_cycles_per_sec"`
	Speedup       float64 `json:"speedup_vs_event_driven"`
	ScalarCycles  int     `json:"scalar_cycles_measured"`
	PackedCycles  int     `json:"packed_cycles_measured"`
	ElapsedEvent  float64 `json:"event_driven_seconds"`
	ElapsedToggle float64 `json:"zero_delay_toggle_seconds"`
	ElapsedPacked float64 `json:"packed_zero_delay_seconds"`
}

// SampledThroughput measures sampled-cycle throughput for the given
// circuits. cycles is the per-replication sampled-cycle budget for each
// scalar run; the packed run advances the same number of wall-clock
// sampled sweeps (cycles*lanes per-replication cycles) so both sides do
// comparable amounts of timed work. lanes is the packed session width
// (usually sim.MaxLanes).
func SampledThroughput(circuits []string, cycles, lanes int, seed int64) ([]SampledBenchRow, error) {
	if cycles < 1 || lanes < 1 || lanes > sim.MaxLanes {
		return nil, fmt.Errorf("experiments: bad sampled bench config (cycles=%d lanes=%d)", cycles, lanes)
	}
	rows := make([]SampledBenchRow, 0, len(circuits))
	for _, name := range circuits {
		c, err := bench89.Get(name)
		if err != nil {
			return nil, err
		}
		tb := core.DefaultTestbench(c)
		weights := tb.Weights()
		width := len(c.Inputs)

		timeScalar := func(s *sim.Session) float64 {
			for i := 0; i < 64; i++ { // touch everything once before timing
				s.StepSampled(nil)
			}
			t0 := time.Now()
			for i := 0; i < cycles; i++ {
				s.StepSampled(nil)
			}
			return time.Since(t0).Seconds()
		}
		eventSec := timeScalar(tb.NewSession(vectors.NewIID(width, 0.5, seed)))
		toggleSec := timeScalar(sim.NewSessionEngine(c, sim.NewZeroDelayToggle(c),
			vectors.NewIID(width, 0.5, seed), weights))

		srcs := make([]vectors.Source, lanes)
		for k := range srcs {
			srcs[k] = vectors.NewIID(width, 0.5, seed+1+int64(k))
		}
		ps := sim.NewPackedSession(c, srcs)
		powers := make([]float64, lanes)
		for i := 0; i < 64; i++ {
			ps.StepSampled(weights, powers)
		}
		t0 := time.Now()
		for i := 0; i < cycles; i++ {
			ps.StepSampled(weights, powers)
		}
		packedSec := time.Since(t0).Seconds()

		row := SampledBenchRow{
			Name:          name,
			Gates:         c.NumGates(),
			Lanes:         lanes,
			ScalarCycles:  cycles,
			PackedCycles:  cycles * lanes,
			ElapsedEvent:  eventSec,
			ElapsedToggle: toggleSec,
			ElapsedPacked: packedSec,
		}
		if eventSec > 0 {
			row.EventCPS = float64(cycles) / eventSec
		}
		if toggleSec > 0 {
			row.ToggleCPS = float64(cycles) / toggleSec
		}
		if packedSec > 0 {
			row.PackedCPS = float64(cycles*lanes) / packedSec
		}
		if row.EventCPS > 0 {
			row.Speedup = row.PackedCPS / row.EventCPS
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SampledBenchReport is the JSON document emitted for regression
// tracking (BENCH_2.json): the machine context plus one row per
// circuit.
type SampledBenchReport struct {
	Benchmark string            `json:"benchmark"`
	GoVersion string            `json:"go_version"`
	NumCPU    int               `json:"num_cpu"`
	Rows      []SampledBenchRow `json:"rows"`
}

// SampledBenchJSON renders rows as an indented JSON report.
func SampledBenchJSON(rows []SampledBenchRow) string {
	rep := SampledBenchReport{
		Benchmark: "sampled cycles: scalar event-driven vs packed zero-delay",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Rows:      rows,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		// Marshal of a plain struct cannot fail; keep the API total anyway.
		return "{}"
	}
	return string(b) + "\n"
}

// RenderSampledBench renders rows as an ASCII table.
func RenderSampledBench(rows []SampledBenchRow) string {
	s := fmt.Sprintf("%-8s %7s %6s %13s %13s %13s %8s\n",
		"circuit", "gates", "lanes", "event c/s", "toggle c/s", "packed c/s", "speedup")
	for _, r := range rows {
		s += fmt.Sprintf("%-8s %7d %6d %13.3g %13.3g %13.3g %7.1fx\n",
			r.Name, r.Gates, r.Lanes, r.EventCPS, r.ToggleCPS, r.PackedCPS, r.Speedup)
	}
	return s
}
