// Package sim provides the gate-level simulators the estimation
// technique relies on (Section IV of the paper):
//
//   - a zero-delay levelized functional simulator, used to advance the
//     circuit state cheaply through the independence interval,
//   - a bit-parallel 64-lane variant of it (PackedZeroDelay), which
//     advances 64 independent replications per machine word, and
//   - an event-driven general-delay simulator with inertial gate delays,
//     used on sampled cycles to observe every transition (including
//     glitches) for the power computation of Eq. 1.
//
// The scalar simulators operate on the same dense value array, so a
// session can interleave them cycle by cycle; the packed simulator keeps
// one uint64 word per node and can extract any single lane into the
// scalar representation. All inner loops run over the circuit's frozen
// CSR view (netlist.CSR): flat kind/level/fanin/fanout arrays instead of
// per-Node slice chasing.
package sim
