package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRenderTable1Golden(t *testing.T) {
	rows := []Table1Row{
		{Name: "s27", SIM: 4.7e-5, RefRelSE: 0.002, RefCycles: 1000, II: 1,
			Estimate: 4.8e-5, SampleSize: 640, ErrPct: 2.13, Cycles: 1500, CPUSec: 0.05},
	}
	out := RenderTable1(rows)
	for _, want := range []string{
		"Table 1: Power estimation results",
		"s27", "0.0470", "0.0480", "640", "2.13", "1500", "0.1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 render missing %q:\n%s", want, out)
		}
	}
	// Header separator row present.
	if !strings.Contains(out, "-------") {
		t.Error("missing separator")
	}
}

func TestRenderTable2Golden(t *testing.T) {
	rows := []Table2Row{
		{Name: "s298", Runs: 100, IIMin: 0, IIMax: 5, IIAvg: 1.23,
			SAvg: 2523.4, DAvg: 1.15, ErrPct: 1.0, CycAvg: 6175.2},
	}
	out := RenderTable2(rows)
	for _, want := range []string{"s298", "100", "1.23", "2523", "1.15", "1.0", "6175"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFigure3GoldenBars(t *testing.T) {
	pts := []core.ZPoint{
		{Interval: 0, Z: -10, AbsZ: 10, Accepted: false},
		{Interval: 1, Z: -5, AbsZ: 5, Accepted: false},
		{Interval: 2, Z: 0.5, AbsZ: 0.5, Accepted: true},
	}
	out := RenderFigure3(pts, 1.282)
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("short render:\n%s", out)
	}
	// Bar lengths proportional: k=0 full width (60), k=1 half (30).
	if !strings.Contains(lines[1], strings.Repeat("#", 60)) {
		t.Errorf("k=0 bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 30)) || strings.Contains(lines[2], strings.Repeat("#", 31)) {
		t.Errorf("k=1 bar not half width: %q", lines[2])
	}
	if !strings.HasSuffix(strings.TrimRight(lines[3], " "), "*") {
		t.Errorf("accepted point not starred: %q", lines[3])
	}
	if !strings.Contains(out, "1.282") {
		t.Error("threshold missing from legend")
	}
}

func TestRenderHandlesEmptyAndZero(t *testing.T) {
	if out := RenderTable1(nil); !strings.Contains(out, "Table 1") {
		t.Error("empty Table 1 render broken")
	}
	if out := RenderFigure3(nil, 1.0); !strings.Contains(out, "Figure 3") {
		t.Error("empty Figure 3 render broken")
	}
	// All-zero z values must not divide by zero.
	pts := []core.ZPoint{{Interval: 0, Z: 0, AbsZ: 0, Accepted: true}}
	if out := RenderFigure3(pts, 1.0); !strings.Contains(out, "k=  0") {
		t.Error("zero-z figure render broken")
	}
}

func TestFigure3CSVGolden(t *testing.T) {
	pts := []core.ZPoint{{Interval: 3, Z: -1.5, AbsZ: 1.5, Accepted: false}}
	got := Figure3CSV(pts)
	want := "interval,z,abs_z,accepted\n3,-1.500000,1.500000,false\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestRenderAblationsContainData(t *testing.T) {
	if out := RenderSeqLen([]SeqLenRow{{SeqLen: 320, Runs: 5, IIMin: 1, IIMax: 3, IIAvg: 1.5, IIStd: 0.5, SelCycAvg: 900}}); !strings.Contains(out, "320") {
		t.Error("seqlen render")
	}
	if out := RenderAlpha([]AlphaRow{{Alpha: 0.2, Runs: 5, IIAvg: 1, SAvg: 100, DAvg: 1, ErrPct: 0}}); !strings.Contains(out, "0.20") {
		t.Error("alpha render")
	}
	if out := RenderStopping([]StoppingRow{{Criterion: "ks", Runs: 5, SAvg: 10, DAvg: 1, ErrPct: 0, CycAvg: 20}}); !strings.Contains(out, "ks") {
		t.Error("stopping render")
	}
	if out := RenderWarmup([]WarmupRow{{Mode: "dynamic", Runs: 5, IIAvg: 1, SAvg: 10, CycAvg: 20, DAvg: 1, ErrPct: 0}}); !strings.Contains(out, "dynamic") {
		t.Error("warmup render")
	}
	if out := RenderInputs([]InputsRow{{Rho: 0.5, Runs: 5, IIAvg: 2, SAvg: 10, DAvg: 1, ErrPct: 0}}); !strings.Contains(out, "0.50") {
		t.Error("inputs render")
	}
	if out := RenderDelayModels([]DelayModelRow{{Name: "s27", PZero: 1e-3, PUnit: 1.1e-3, PFanout: 1.2e-3, GlitchPct: 16.7, Cycles: 100}}); !strings.Contains(out, "16.7") {
		t.Error("delay render")
	}
	if out := RenderCalibration([]CalibrationRow{{Alpha: 0.05, Sequences: 100, SeqLen: 320, RejectRate: 0.04}}); !strings.Contains(out, "0.040") {
		t.Error("calibration render")
	}
}
