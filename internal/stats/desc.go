package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes running mean, variance, skewness and kurtosis
// with the one-pass Welford/Pébay update, plus min/max, without storing
// the samples.
type Accumulator struct {
	n          int
	mean       float64
	m2, m3, m4 float64
	min, max   float64
	hasSamples bool
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	n1 := float64(a.n)
	a.n++
	n := float64(a.n)
	d := x - a.mean
	dn := d / n
	dn2 := dn * dn
	t1 := d * dn * n1
	a.mean += dn
	a.m4 += t1*dn2*(n*n-3*n+3) + 6*dn2*a.m2 - 4*dn*a.m3
	a.m3 += t1*dn*(n-2) - 3*dn*a.m2
	a.m2 += t1
	if !a.hasSamples || x < a.min {
		a.min = x
	}
	if !a.hasSamples || x > a.max {
		a.max = x
	}
	a.hasSamples = true
}

// Reset clears the accumulator.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean, s/sqrt(n).
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.n))
}

// CV returns the coefficient of variation s/|mean| (0 if the mean is 0).
func (a *Accumulator) CV() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.Std() / math.Abs(a.mean)
}

// Skewness returns the sample skewness g1 = m3 / m2^(3/2) (biased,
// moment form; 0 for n < 3 or zero variance).
func (a *Accumulator) Skewness() float64 {
	if a.n < 3 || a.m2 == 0 {
		return 0
	}
	n := float64(a.n)
	return math.Sqrt(n) * a.m3 / math.Pow(a.m2, 1.5)
}

// ExcessKurtosis returns the sample excess kurtosis g2 = n*m4/m2^2 - 3
// (0 for n < 4 or zero variance; normal data gives ~0).
func (a *Accumulator) ExcessKurtosis() float64 {
	if a.n < 4 || a.m2 == 0 {
		return 0
	}
	n := float64(a.n)
	return n*a.m4/(a.m2*a.m2) - 3
}

// Min returns the smallest observation (0 for an empty accumulator).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 for an empty accumulator).
func (a *Accumulator) Max() float64 { return a.max }

// String summarizes the accumulator.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.6g min=%.6g max=%.6g",
		a.n, a.Mean(), a.Std(), a.min, a.max)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the sample median (average of middle pair for even n).
// It copies and sorts; callers in hot paths should use SortedMedian.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return SortedMedian(cp)
}

// SortedMedian returns the median of an already-sorted slice.
func SortedMedian(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return 0.5 * (sorted[n/2-1] + sorted[n/2])
}

// Quantile returns the q-quantile of xs using the common "type 7" linear
// interpolation (the default of R and NumPy). q must be in [0,1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile(%v) outside [0,1]", q))
	}
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return SortedQuantile(cp, q)
}

// SortedQuantile is Quantile over an already-sorted slice.
func SortedQuantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Autocorrelation returns the sample autocorrelation function of xs at
// lags 0..maxLag (acf[0] == 1). The biased estimator (dividing by n) is
// used, as is standard for correlograms. A constant series returns all
// zeros past lag 0.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	acf := make([]float64, maxLag+1)
	m := Mean(xs)
	var c0 float64
	for _, x := range xs {
		d := x - m
		c0 += d * d
	}
	acf[0] = 1
	if c0 == 0 {
		return acf
	}
	for k := 1; k <= maxLag; k++ {
		var ck float64
		for i := 0; i+k < n; i++ {
			ck += (xs[i] - m) * (xs[i+k] - m)
		}
		acf[k] = ck / c0
	}
	return acf
}

// EDF is an empirical distribution function over a fixed sample.
type EDF struct {
	sorted []float64
}

// NewEDF builds an empirical CDF (copies and sorts the sample).
func NewEDF(xs []float64) *EDF {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return &EDF{sorted: cp}
}

// At returns F_n(x) = (#samples <= x) / n.
func (e *EDF) At(x float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; advance
	// over equal values to count "<= x".
	for i < n && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(n)
}

// N returns the sample size.
func (e *EDF) N() int { return len(e.sorted) }

// Quantile returns the q-quantile of the sample.
func (e *EDF) Quantile(q float64) float64 { return SortedQuantile(e.sorted, q) }

// KSDistance returns the Kolmogorov–Smirnov statistic between two
// empirical distributions: sup_x |F(x) - G(x)|.
func KSDistance(f, g *EDF) float64 {
	d := 0.0
	for _, x := range f.sorted {
		if v := math.Abs(f.At(x) - g.At(x)); v > d {
			d = v
		}
	}
	for _, x := range g.sorted {
		if v := math.Abs(f.At(x) - g.At(x)); v > d {
			d = v
		}
	}
	return d
}
