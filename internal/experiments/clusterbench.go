package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench89"
	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/service"
)

// ClusterBenchRow measures distributed sampling throughput for one
// circuit at one worker count: a coordinator shards a fixed sample
// budget across N in-process dipe-workers over real loopback HTTP and
// merges the streams under the pooled stopping rule. Speedup is
// throughput relative to the 1-worker row of the same circuit.
type ClusterBenchRow struct {
	Name          string  `json:"circuit"`
	Gates         int     `json:"gates"`
	Workers       int     `json:"workers"`
	Replications  int     `json:"replications"`
	Interval      int     `json:"interval"`
	Samples       int     `json:"samples"`
	Seconds       float64 `json:"seconds"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	Speedup       float64 `json:"speedup_vs_one_worker"`
}

// ClusterScalingConfig sizes the scaling run.
type ClusterScalingConfig struct {
	// Circuits to measure (e.g. ["s1494"]).
	Circuits []string
	// WorkerCounts to sweep (e.g. [1, 2]); must include 1 for speedups.
	WorkerCounts []int
	// Samples is the per-run sample budget (the run is budget-bound: an
	// unreachably tight accuracy spec keeps the stopping rule from
	// firing early, so every configuration merges exactly this many).
	Samples int
	// Interval is the fixed independence interval (selection is skipped
	// so every configuration simulates identical work).
	Interval int
	// Replications is the job's replication count.
	Replications int
	// PacedSamplesPerSec, when non-zero, throttles every worker stream
	// to that many samples per second, emulating worker machines of
	// fixed simulation capacity. This makes the benchmark measure what
	// a scaling run on shared or single-core hardware can honestly
	// measure: how much of N workers' aggregate capacity survives the
	// coordinator's transport and ordered merge. Zero disables pacing
	// and measures raw CPU-bound scaling — meaningful only with at
	// least WorkerCounts[max] free cores.
	PacedSamplesPerSec int
	Seed               int64
}

// DefaultClusterScalingConfig is the regression configuration: s1494,
// 1 vs 2 workers, zero-delay sampling (so the paced workers' real
// compute is far below the pace and cannot skew the measurement), and
// a pace of 10k samples/s per worker — the order of the measured
// event-driven sampling rate on benchmark circuits.
func DefaultClusterScalingConfig() ClusterScalingConfig {
	return ClusterScalingConfig{
		Circuits:           []string{"s1494"},
		WorkerCounts:       []int{1, 2},
		Samples:            8192,
		Interval:           4,
		Replications:       64,
		PacedSamplesPerSec: 10000,
		Seed:               1997,
	}
}

// ClusterScaling runs the distributed scaling measurement. Workers are
// real cluster.Worker HTTP servers on loopback listeners; only the
// process boundary is elided, the protocol (provenance propagation,
// NDJSON sample streams, heartbeats) is the production one.
func ClusterScaling(cfg ClusterScalingConfig) ([]ClusterBenchRow, error) {
	if cfg.Samples < 1024 || cfg.Interval < 0 || cfg.Replications < 1 {
		return nil, fmt.Errorf("experiments: bad cluster bench config %+v", cfg)
	}
	var rows []ClusterBenchRow
	for _, name := range cfg.Circuits {
		c, err := bench89.Get(name)
		if err != nil {
			return nil, err
		}
		var base float64
		for _, workers := range cfg.WorkerCounts {
			row, err := clusterScalingOne(cfg, name, workers)
			if err != nil {
				return nil, err
			}
			row.Gates = c.NumGates()
			if workers == 1 {
				base = row.SamplesPerSec
			}
			if base > 0 {
				row.Speedup = row.SamplesPerSec / base
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

// clusterScalingOne measures one (circuit, worker count) cell.
func clusterScalingOne(cfg ClusterScalingConfig, circuit string, workers int) (*ClusterBenchRow, error) {
	urls, stop, err := startLocalWorkers(workers, cfg.PacedSamplesPerSec)
	if err != nil {
		return nil, err
	}
	defer stop()
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Workers:   urls,
		Heartbeat: time.Hour, // no flapping during the timed run
	})
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	reg := service.NewRegistry(0)
	coord.SetRegistry(reg)
	tb, err := reg.Testbench(circuit)
	if err != nil {
		return nil, err
	}

	interval := cfg.Interval
	req := service.JobRequest{
		Circuit:  circuit,
		Seed:     cfg.Seed,
		Interval: &interval,
		Options: service.OptionsSpec{
			// Unreachably tight spec: the run is ended by the sample
			// budget, so every configuration does identical work.
			RelErr:       0.0001,
			Confidence:   0.9999,
			Replications: cfg.Replications,
			Workers:      1, // one goroutine per worker: capacity scales with worker count only
			MaxSamples:   cfg.Samples,
			PowerMode:    "zero-delay",
		},
	}
	// Untimed warm-up run: provenance propagation and testbench freeze
	// happen once per worker, not inside the measurement.
	warm := req
	warm.Options.MaxSamples = 2048
	if _, err := coord.Estimate(context.Background(), tb, warm, nil); err != nil {
		return nil, err
	}

	t0 := time.Now()
	res, err := coord.Estimate(context.Background(), tb, req, nil)
	if err != nil {
		return nil, err
	}
	sec := time.Since(t0).Seconds()
	row := &ClusterBenchRow{
		Name:         circuit,
		Workers:      workers,
		Replications: cfg.Replications,
		Interval:     cfg.Interval,
		Samples:      res.SampleSize,
		Seconds:      sec,
	}
	if sec > 0 {
		row.SamplesPerSec = float64(res.SampleSize) / sec
	}
	return row, nil
}

// startLocalWorkers boots n cluster workers on loopback listeners,
// optionally paced, returning their base URLs and a stop func.
func startLocalWorkers(n, pacedSPS int) ([]string, func(), error) {
	var (
		urls    []string
		servers []*http.Server
	)
	stop := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		h := cluster.NewWorker(cluster.WorkerConfig{}).Handler()
		if pacedSPS > 0 {
			h = chaos.Pace(h, perSamplePace(pacedSPS))
		}
		srv := &http.Server{Handler: h}
		servers = append(servers, srv)
		go srv.Serve(ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	return urls, stop, nil
}

// perSamplePace converts a samples-per-second capacity into a chaos
// pacing function: per-block delay = block size (rounds * lanes, from
// the stream request) times the per-sample service time.
func perSamplePace(sps int) chaos.PaceFunc {
	perSample := time.Duration(float64(time.Second) / float64(sps))
	return func(body []byte) time.Duration {
		var req cluster.RunRequest
		if json.Unmarshal(body, &req) != nil {
			return 0
		}
		return time.Duration(req.Rounds*(req.RepHi-req.RepLo)) * perSample
	}
}

// ClusterBenchReport is the JSON document emitted for regression
// tracking (BENCH_3.json).
type ClusterBenchReport struct {
	Benchmark string `json:"benchmark"`
	// Paced notes the per-worker pacing (samples/s) when the workers
	// were capacity-emulated, 0 for raw CPU-bound scaling. Paced runs
	// measure coordinator/transport efficiency independent of host core
	// count; raw runs need >= max worker count free cores to be
	// meaningful.
	Paced     int               `json:"paced_samples_per_sec_per_worker"`
	GoVersion string            `json:"go_version"`
	NumCPU    int               `json:"num_cpu"`
	Rows      []ClusterBenchRow `json:"rows"`
}

// ClusterBenchJSON renders rows as an indented JSON report.
func ClusterBenchJSON(rows []ClusterBenchRow, paced int) string {
	rep := ClusterBenchReport{
		Benchmark: "distributed estimation: coordinator/worker sample throughput vs worker count",
		Paced:     paced,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Rows:      rows,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		// Marshal of a plain struct cannot fail; keep the API total anyway.
		return "{}"
	}
	return string(b) + "\n"
}

// RenderClusterBench renders rows as an ASCII table.
func RenderClusterBench(rows []ClusterBenchRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %7s %8s %6s %9s %11s %8s\n",
		"circuit", "gates", "workers", "reps", "samples", "samples/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %7d %8d %6d %9d %11.0f %7.2fx\n",
			r.Name, r.Gates, r.Workers, r.Replications, r.Samples, r.SamplesPerSec, r.Speedup)
	}
	return sb.String()
}
