package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/vr"
)

// CoordinatorConfig configures the cluster dispatcher. The zero value
// is usable: workers can be registered later (AddWorker or the server's
// POST /v1/cluster/workers).
type CoordinatorConfig struct {
	// Workers is the initial worker base-URL list.
	Workers []string
	// Heartbeat is the health-poll period (default 2s).
	Heartbeat time.Duration
	// HeartbeatTimeout bounds one health probe (default 1s).
	HeartbeatTimeout time.Duration
	// MaxAttempts bounds stream (re)starts per replication range per
	// job, counting only failed attempts (default 8). Determinism makes
	// retries safe, so the bound exists only to fail jobs on a dead
	// cluster instead of spinning.
	MaxAttempts int
	// LeaseTimeout is the per-block delivery deadline of a range lease
	// (default 15s): a worker that goes this long without producing the
	// next block — while another live worker is free to take over — has
	// the lease reclaimed and the range reassigned with SkipBlocks
	// replay. The first block of a stream is allowed leaseStartupFactor
	// timeouts (setup + warm-up + replay).
	LeaseTimeout time.Duration
	// LeaseSplit is how many replication ranges the scheduler creates
	// per live worker at job start (default 4, capped by the replication
	// count). More ranges than workers is what gives fast workers a tail
	// to steal; 1 reproduces the old static one-range-per-worker layout.
	LeaseSplit int
	// WorkerWait is how long a job waits for at least one live worker
	// before failing with "no live workers" (default 0: fail fast). A
	// restarted durable server re-runs its journaled jobs immediately —
	// typically before the worker fleet has re-registered — so resume
	// needs a grace period covering the workers' re-announce cadence.
	WorkerWait time.Duration
	// Client is the HTTP client for streams and uploads (default: a
	// dedicated client with no overall timeout — streams are long-lived
	// and cancelled by context).
	Client *http.Client
	// Obs, when non-nil, is the registry the coordinator's metrics
	// (dipe_cluster_*) register on. When nil an internal registry backs
	// the same counters, so /v1/cluster/workers reads real instrument
	// cells either way — only the scrape endpoint is absent.
	Obs *obs.Registry
	// Log, when non-nil, receives structured worker-liveness and lease
	// lifecycle events. A nil logger discards them.
	Log *obs.Logger

	// tick and probed are test seams (settable from same-package tests
	// only): a non-nil tick replaces the heartbeat ticker with an
	// injected clock, and probed receives one notification after each
	// completed heartbeat round. Together they let liveness-transition
	// tests drive the heartbeat deterministically instead of sleeping
	// against wall-clock timers.
	tick   <-chan time.Time
	probed chan<- struct{}
}

// workerState is one registered worker, guarded by the coordinator's
// mutex. The degradation counters are registry instruments (labeled by
// worker URL), so the JSON status view and the /metrics scrape read the
// same cells; see clusterMetrics.
type workerState struct {
	url          string
	alive        bool
	lastSeen     time.Time
	activeLeases int
	lastErr      string
	// Registry-backed counters (see service.WorkerStatus for semantics).
	failures      *obs.Counter
	retries       *obs.Counter
	reassignments *obs.Counter
	leaseExpiries *obs.Counter
	grants        *obs.Counter
	steals        *obs.Counter
	blockLat      *obs.Histogram
}

// Coordinator shards estimation jobs across dipe-worker processes. It
// implements service.Dispatcher (so dipe-server jobs run on it
// transparently), service.WorkerRegistrar (runtime worker
// registration) and service.RegistryAware (circuit provenance lookup
// for propagation).
//
// Estimation flow: interval selection runs locally on the coordinator
// (one scalar session — negligible against the sampling phase), the
// replication space is partitioned into contiguous ranges, one
// streaming /v1/run per range is opened on the live workers, and the
// per-range sample blocks are merged through core.Merger in the
// canonical order, making the pooled sequential stopping decision
// bit-identical to core.EstimateParallel with the same seeds. Worker
// death mid-stream triggers reassignment: another worker re-runs the
// range with SkipBlocks set to the already-merged prefix, which the
// deterministic seeding reproduces exactly.
type Coordinator struct {
	mu      sync.Mutex
	workers map[string]*workerState
	order   []string // registration order: deterministic assignment
	sources sourceResolver

	client       *http.Client
	hb           time.Duration
	hbTimeout    time.Duration
	maxAttempts  int
	leaseTimeout time.Duration
	leaseSplit   int
	workerWait   time.Duration
	hbTick       <-chan time.Time // injected heartbeat clock (tests)
	hbProbed     chan<- struct{}  // per-round completion notification (tests)

	met     *clusterMetrics
	coreMet *core.Metrics // convergence telemetry of the merge loop
	log     *obs.Logger

	stop     chan struct{}
	stopOnce sync.Once
	hbWG     sync.WaitGroup
}

// sourceResolver is what the coordinator needs from the service
// registry: circuit-name → provenance.
type sourceResolver interface {
	Source(name string) (service.CircuitSource, error)
}

// NewCoordinator builds the dispatcher, probes the initial workers
// synchronously (so Ready is meaningful immediately) and starts the
// heartbeat loop. Close it when done.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 15 * time.Second
	}
	if cfg.LeaseSplit <= 0 {
		cfg.LeaseSplit = 4
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{} // streams must not carry an overall timeout
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry() // internal: counters stay real, just unscraped
	}
	c := &Coordinator{
		workers:      make(map[string]*workerState),
		met:          newClusterMetrics(reg),
		coreMet:      core.NewCoreMetrics(reg),
		log:          cfg.Log.With("component", "cluster"),
		client:       client,
		hb:           cfg.Heartbeat,
		hbTimeout:    cfg.HeartbeatTimeout,
		maxAttempts:  cfg.MaxAttempts,
		leaseTimeout: cfg.LeaseTimeout,
		leaseSplit:   cfg.LeaseSplit,
		workerWait:   cfg.WorkerWait,
		hbTick:       cfg.tick,
		hbProbed:     cfg.probed,
		stop:         make(chan struct{}),
	}
	reg.GaugeFunc("dipe_cluster_workers_alive",
		"Workers currently passing heartbeats.",
		func() float64 { return float64(len(c.aliveWorkers())) })
	for _, u := range cfg.Workers {
		if err := c.AddWorker(u); err != nil {
			return nil, err
		}
	}
	c.hbWG.Add(1)
	go c.heartbeatLoop()
	return c, nil
}

// Close stops the heartbeat loop. In-flight Estimate calls are owned by
// their contexts (the job manager cancels them on shutdown).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.hbWG.Wait()
}

// Name implements service.Dispatcher.
func (c *Coordinator) Name() string { return "cluster" }

// SetRegistry implements service.RegistryAware.
func (c *Coordinator) SetRegistry(r *service.Registry) {
	c.mu.Lock()
	c.sources = r
	c.mu.Unlock()
}

// Ready implements service.Dispatcher: the cluster can run jobs once at
// least one worker answers its heartbeat.
func (c *Coordinator) Ready() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.workers) == 0 {
		return errors.New("cluster: no workers registered")
	}
	for _, w := range c.workers {
		if w.alive {
			return nil
		}
	}
	return fmt.Errorf("cluster: none of %d registered workers reachable", len(c.workers))
}

// AddWorker implements service.WorkerRegistrar: it normalizes and
// registers a worker base URL and probes it immediately.
// Re-registering an existing URL just re-probes it, so workers POST
// their registration on every startup.
func (c *Coordinator) AddWorker(rawURL string) error {
	u, err := url.Parse(strings.TrimRight(rawURL, "/"))
	if err != nil {
		return fmt.Errorf("cluster: bad worker url %q: %w", rawURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("cluster: bad worker url %q (want http[s]://host:port)", rawURL)
	}
	norm := u.String()
	c.mu.Lock()
	if _, ok := c.workers[norm]; !ok {
		c.workers[norm] = c.newWorkerState(norm)
		c.order = append(c.order, norm)
		c.log.Info("worker registered", "worker", norm)
	}
	c.mu.Unlock()
	c.probe(norm)
	return nil
}

// newWorkerState resolves the worker's labeled instrument cells; one
// resolution at registration, atomic increments thereafter.
func (c *Coordinator) newWorkerState(url string) *workerState {
	return &workerState{
		url:           url,
		failures:      c.met.failures.With(url),
		retries:       c.met.retries.With(url),
		reassignments: c.met.reassigns.With(url),
		leaseExpiries: c.met.expiries.With(url),
		grants:        c.met.grants.With(url),
		steals:        c.met.steals.With(url),
		blockLat:      c.met.blockLat.With(url),
	}
}

// Workers implements service.WorkerRegistrar.
func (c *Coordinator) Workers() []service.WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]service.WorkerStatus, 0, len(c.order))
	for _, u := range c.order {
		w := c.workers[u]
		out = append(out, service.WorkerStatus{
			URL:           w.url,
			Alive:         w.alive,
			LastSeen:      w.lastSeen,
			Failures:      w.failures.Value(),
			ActiveLeases:  w.activeLeases,
			Retries:       w.retries.Value(),
			Reassignments: w.reassignments.Value(),
			LeaseExpiries: w.leaseExpiries.Value(),
			LeaseGrants:   w.grants.Value(),
			LeaseSteals:   w.steals.Value(),
			LastError:     w.lastErr,
		})
	}
	return out
}

// heartbeatLoop probes every registered worker each period — including
// dead ones, which is how a restarted worker rejoins without
// re-registering. The period comes from a ticker, or from the injected
// test clock when one is configured, so liveness tests advance the
// heartbeat explicitly instead of sleeping.
func (c *Coordinator) heartbeatLoop() {
	defer c.hbWG.Done()
	tick := c.hbTick
	if tick == nil {
		ticker := time.NewTicker(c.hb)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-c.stop:
			return
		case <-tick:
		}
		c.mu.Lock()
		urls := append([]string(nil), c.order...)
		c.mu.Unlock()
		var wg sync.WaitGroup
		for _, u := range urls {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				c.probe(u)
			}(u)
		}
		wg.Wait()
		if c.hbProbed != nil {
			select {
			case c.hbProbed <- struct{}{}:
			case <-c.stop:
				return
			}
		}
	}
}

// probe pings one worker's /healthz and updates its state.
func (c *Coordinator) probe(workerURL string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.hbTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerURL+"/healthz", nil)
	if err != nil {
		c.setAlive(workerURL, false, true)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.setAlive(workerURL, false, true)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	c.setAlive(workerURL, resp.StatusCode == http.StatusOK, resp.StatusCode != http.StatusOK)
}

func (c *Coordinator) setAlive(workerURL string, alive, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerURL]
	if w == nil {
		return
	}
	wasAlive := w.alive
	w.alive = alive
	if alive {
		w.lastSeen = time.Now()
	}
	if failed && wasAlive {
		w.failures.Inc()
	}
	switch {
	case alive && !wasAlive:
		c.log.Info("worker up", "worker", workerURL)
	case !alive && wasAlive:
		c.log.Warn("worker down", "worker", workerURL)
	}
}

// markFailed records a stream failure and takes the worker out of
// rotation until a heartbeat revives it.
func (c *Coordinator) markFailed(workerURL string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[workerURL]; w != nil {
		w.alive = false
		w.failures.Inc()
		w.retries.Inc()
		if err != nil {
			w.lastErr = err.Error()
		}
		c.log.Warn("worker stream failed", "worker", workerURL, "err", err)
	}
}

// aliveWorkers snapshots the live worker URLs in registration order.
func (c *Coordinator) aliveWorkers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.order))
	for _, u := range c.order {
		if c.workers[u].alive {
			out = append(out, u)
		}
	}
	return out
}

// Estimate implements service.Dispatcher: the full DIPE flow with the
// sampling phase sharded across the cluster. Phase 1 (independence-
// interval selection) runs locally; phase 2 streams per-range sample
// blocks from the workers and merges them into the pooled stopping
// rule. The result is bit-identical to core.EstimateParallel(tb, ...,
// req.Seed, opts) — mean, half-width, sample size and cycle counts —
// for any worker count and any mid-job lease/reassignment history.
func (c *Coordinator) Estimate(ctx context.Context, tb *core.Testbench, req service.JobRequest, progress func(core.Progress)) (core.Result, error) {
	return c.EstimateResumable(ctx, tb, req, nil, nil, progress)
}

// EstimateResumable implements service.ResumableDispatcher: Estimate
// with the pre-sampling/sampling checkpoint seam exposed. A nil ckpt
// runs phase 1 and plan resolution locally (core.PreparePlanCtx — the
// same code, seeds and order as the single-process estimator) and
// reports the frozen outcome through save before any worker streams; a
// non-nil ckpt resumes the sampling phase directly. Since the sampling
// phase re-streams deterministically from replication seeds, a resumed
// job's Result is bit-identical to the uninterrupted run's.
func (c *Coordinator) EstimateResumable(ctx context.Context, tb *core.Testbench, req service.JobRequest, ckpt *service.Checkpoint, save func(service.Checkpoint), progress func(core.Progress)) (core.Result, error) {
	opts := req.Options.Options()
	if err := opts.Validate(); err != nil {
		return core.Result{}, err
	}
	factory, err := req.Source.Factory(len(tb.Circuit.Inputs))
	if err != nil {
		return core.Result{}, err
	}
	opts.Progress = progress
	opts.Metrics = c.coreMet
	start := time.Now()

	var rp core.ResumePoint
	if ckpt != nil {
		rp = ckpt.ResumePoint()
		if rp.Interval < 0 {
			return core.Result{}, fmt.Errorf("cluster: negative interval %d", rp.Interval)
		}
	} else {
		// The up-front local validation (instead of bouncing a bad fixed
		// interval off every worker as a 400) happens inside
		// PreparePlanCtx.
		if rp, err = core.PreparePlanCtx(ctx, tb, factory, req.Seed, opts, req.Interval); err != nil {
			return core.Result{}, err
		}
		if save != nil {
			save(service.CheckpointOf(rp))
		}
	}

	res, err := c.sampledPhase(ctx, tb, req, opts, rp.Plan, rp.Interval, rp.SeedSeq, rp.SeedToggles)
	res.Trials = rp.Trials
	res.IntervalCapped = rp.Capped
	res.HiddenCycles += rp.Hidden
	res.SampledCycles += rp.Sampled
	res.Elapsed = time.Since(start)
	return res, err
}

// rangeMsg is one delivery from a range stream to the merge loop.
type rangeMsg struct {
	block StreamBlock
	err   error
}

// repRange is one contiguous replication range and its stream channel.
type repRange struct {
	idx    int // position in the job's range list (scheduler penalty key)
	lo, hi int
	ch     chan rangeMsg
}

// sampledPhase is the distributed analogue of parallelTail: it streams
// sample blocks from one worker per replication range and merges them
// through core.Merger under the job's sequential stopping rule.
func (c *Coordinator) sampledPhase(ctx context.Context, tb *core.Testbench, req service.JobRequest, opts core.Options, plan vr.Plan, interval int, seedSeq []float64, seedToggles []uint64) (core.Result, error) {
	m, err := core.NewMerger(opts)
	if err != nil {
		return core.Result{}, err
	}
	if opts.ReuseTestSamples {
		m.Seed(seedSeq)
	}
	reps, rounds := m.Reps(), m.Rounds()
	// Per-node attribution state: the merged blocks' count deltas fold
	// into one accumulator, and the workers are told the merge loop's
	// round budget so the final (possibly clipped) block's delta covers
	// exactly the rounds merged here — the bit-identity contract with
	// the in-process estimator.
	var counts []uint64
	budgetRounds := 0
	if opts.Breakdown {
		counts = make([]uint64, tb.Circuit.NumNodes())
		budgetRounds = (opts.MaxSamples - m.N()) / m.PerRound()
	}
	// Budget ceiling for orphaned streams: strictly more blocks than the
	// merge loop can consume before its own MaxSamples cutoff fires
	// (PerRound, not reps: antithetic pairing halves the criterion
	// samples a round yields, doubling the blocks the budget can fund).
	maxBlocks := opts.MaxSamples/(m.PerRound()*rounds) + 2

	src, err := c.resolveSource(req.Circuit)
	if err != nil {
		return core.Result{}, err
	}
	hash := SourceHash(src)

	alive := c.aliveWorkers()
	if len(alive) == 0 && c.workerWait > 0 {
		// Grace for a fleet that is still (re-)registering — a restarted
		// durable server resumes its jobs before its workers re-announce.
		wctx, wcancel := context.WithTimeout(ctx, c.workerWait)
		bo := newRetryBackoff(50*time.Millisecond, c.hb)
		for len(alive) == 0 && bo.sleep(wctx) == nil {
			alive = c.aliveWorkers()
		}
		wcancel()
	}
	if len(alive) == 0 {
		return core.Result{}, errors.New("cluster: no live workers")
	}
	// LeaseSplit ranges per live worker: over-partitioning is what gives
	// fast workers a tail of leases to steal from slow ones. The range
	// *boundaries* come from core.SplitRangeAligned — the one partition
	// rule shared with the in-process shard layout, rounded to the
	// backend's session width so leases pack whole compiled word rows —
	// and the merge order is unchanged, so neither the range count nor
	// the alignment shows in the merged result. Jobs too small for
	// full-width leases halve the alignment until every lease keeps at
	// least one aligned block, preserving the stealable tail.
	k := len(alive) * c.leaseSplit
	if k > reps {
		k = reps
	}
	align := sim.MaxLanesFor(opts.Backend)
	for align > 1 && reps < k*align {
		align >>= 1
	}
	bounds := core.SplitRangeAligned(0, reps, k, align)
	ranges := make([]*repRange, k)
	lanes := make([]int, k)
	blocks := make([][]float64, k)

	tr := obs.TraceFrom(ctx)
	tr.Event("shard",
		"ranges", strconv.Itoa(k),
		"workers", strconv.Itoa(len(alive)),
		"replications", strconv.Itoa(reps),
		"interval", strconv.Itoa(interval))

	js := newJobScheduler(c)
	sctx, cancel := context.WithCancel(ctx)
	defer cancel() // stops every worker stream once stopping is decided
	for i, b := range bounds {
		rg := &repRange{idx: i, lo: b[0], hi: b[1], ch: make(chan rangeMsg, 16)}
		ranges[i] = rg
		lanes[i] = b[1] - b[0]
		go c.runLeasedRange(sctx, js, hash, src, req, opts, plan, interval, rounds, maxBlocks, budgetRounds, rg)
	}

	// Engine naming mirrors core.parallelTail exactly, including the
	// all-zero-delay upgrade and the backend that observed the sampled
	// cycles, so a cluster result is indistinguishable from a local one.
	backend := opts.Backend.Canonical()
	packedSampled := (opts.Mode.IsZeroDelay() || tb.Delays.AllZero()) && !plan.NeedsCovariate()
	engineName, delayName := sim.EnginePackedZeroDelay, delay.Zero{}.Name()
	if packedSampled && backend == sim.BackendCompiled {
		engineName = sim.EngineCompiledZeroDelay
	}
	if !packedSampled {
		engineName, delayName = sim.EngineEventDriven, tb.Delays.ModelName
	}
	result := func(converged bool) core.Result {
		// Cycle counters follow from the merged prefix alone — warm-up
		// plus interval hidden cycles and one sampled cycle per merged
		// round per replication — which matches the single-process
		// estimator's counters exactly and is independent of how far
		// ahead workers streamed before cancellation.
		merged := uint64(m.MergedRounds())
		if opts.Progress != nil {
			opts.Progress(m.Progress(interval))
		}
		res := core.Result{
			Power:         m.Estimate(),
			Interval:      interval,
			SampleSize:    m.N(),
			HalfWidth:     m.HalfWidth(),
			HiddenCycles:  uint64(reps)*uint64(opts.WarmupCycles) + merged*uint64(interval)*uint64(reps),
			SampledCycles: merged * uint64(reps),
			Criterion:     m.CriterionName(),
			Engine:        engineName,
			Backend:       string(backend),
			DelayModel:    delayName,
			Variance:      plan.Label(),
			CVBeta:        plan.Beta,
			Converged:     converged,
		}
		if opts.Breakdown {
			// Only merged blocks folded their deltas, so the counts cover
			// exactly the merged prefix — like the cycle counters, the
			// report is independent of how far ahead workers streamed.
			res.Breakdown = core.FinishBreakdown(tb, opts, m, len(seedSeq), seedToggles, counts)
			if opts.Metrics != nil {
				opts.Metrics.Power.Observe(res.Breakdown)
			}
		}
		return res
	}

	for b := 0; !m.Done(); b++ {
		if err := ctx.Err(); err != nil {
			return result(false), err
		}
		n := m.NextRounds()
		if n < 1 {
			return result(false), nil
		}
		// Barrier: block b from every range, in replication order.
		for i, rg := range ranges {
			select {
			case <-ctx.Done():
				return result(false), ctx.Err()
			case msg, ok := <-rg.ch:
				switch {
				case !ok:
					return result(false), fmt.Errorf("cluster: range [%d,%d) stream ended before block %d", rg.lo, rg.hi, b)
				case msg.err != nil:
					return result(false), fmt.Errorf("cluster: range [%d,%d): %w", rg.lo, rg.hi, msg.err)
				case msg.block.Index != b:
					return result(false), fmt.Errorf("cluster: range [%d,%d) delivered block %d, want %d", rg.lo, rg.hi, msg.block.Index, b)
				case opts.Breakdown && len(msg.block.Counts) != len(counts):
					return result(false), fmt.Errorf("cluster: range [%d,%d) block %d carries %d node counts, want %d",
						rg.lo, rg.hi, b, len(msg.block.Counts), len(counts))
				}
				blocks[i] = msg.block.Samples
				if opts.Breakdown {
					// Fold the delta as the block is merged; discarded
					// (post-convergence) blocks never reach this point.
					for j, d := range msg.block.Counts {
						counts[j] += d
					}
				}
			}
		}
		if err := m.MergeBlock(blocks, lanes, n); err != nil {
			return result(false), err
		}
		tr.Event("merge-round",
			"rounds", strconv.Itoa(m.MergedRounds()),
			"samples", strconv.Itoa(m.N()),
			"halfWidth", strconv.FormatFloat(m.HalfWidth(), 'g', 6, 64))
		if opts.Progress != nil {
			opts.Progress(m.Progress(interval))
		}
	}
	return result(true), nil
}

// resolveSource finds the provenance for a job circuit.
func (c *Coordinator) resolveSource(name string) (service.CircuitSource, error) {
	c.mu.Lock()
	res := c.sources
	c.mu.Unlock()
	if res == nil {
		return service.CircuitSource{}, errors.New("cluster: no circuit source resolver configured (SetRegistry)")
	}
	return res.Source(name)
}

// errUnknownCircuit marks a 404 from /v1/run: the worker misses the
// netlist and needs propagation, not replacement.
var errUnknownCircuit = errors.New("cluster: worker misses circuit")

// errPermanent marks a worker response that retrying cannot fix (a 4xx
// request rejection): the job must fail without marking the worker
// dead or burning retry budget across a healthy fleet.
var errPermanent = errors.New("cluster: request rejected")

// streamRange opens one /v1/run stream under a block lease and
// forwards its blocks, starting at *delivered and bumping it per
// delivered block. A nil return means the stream completed (maxBlocks
// reached); errLeaseExpired means the lease watchdog reclaimed the
// stream (next block overdue while another worker was free); any error
// leaves *delivered at the resume point for the next attempt.
func (c *Coordinator) streamRange(ctx context.Context, js *jobScheduler, worker, hash string, req service.JobRequest, opts core.Options, plan vr.Plan, interval, rounds, maxBlocks, budgetRounds int, delivered *int, rg *repRange) error {
	if *delivered >= maxBlocks {
		return nil
	}
	// The lease deadline enforces block delivery by cancelling the
	// stream's own context; the parent ctx (merge loop) is untouched.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	l := newBlockLease(js, worker, c.leaseTimeout, cancel)
	defer l.stop()
	err := c.streamBlocks(sctx, l, worker, hash, req, opts, plan, interval, rounds, maxBlocks, budgetRounds, delivered, rg)
	if err != nil && l.expired.Load() && ctx.Err() == nil {
		return fmt.Errorf("%w: worker %s stalled before block %d", errLeaseExpired, worker, *delivered)
	}
	return err
}

// streamBlocks is the body of one stream attempt; ctx is the
// lease-cancellable stream context.
func (c *Coordinator) streamBlocks(ctx context.Context, l *blockLease, worker, hash string, req service.JobRequest, opts core.Options, plan vr.Plan, interval, rounds, maxBlocks, budgetRounds int, delivered *int, rg *repRange) error {
	runReq := RunRequest{
		Hash:         hash,
		Source:       req.Source,
		Seed:         req.Seed,
		Mode:         string(opts.Mode),
		Backend:      string(opts.Backend),
		VR:           plan,
		Warmup:       opts.WarmupCycles,
		Interval:     interval,
		RepLo:        rg.lo,
		RepHi:        rg.hi,
		Rounds:       rounds,
		SkipBlocks:   *delivered,
		MaxBlocks:    maxBlocks,
		Workers:      opts.Workers,
		Breakdown:    opts.Breakdown,
		BudgetRounds: budgetRounds,
	}
	body, err := json.Marshal(runReq)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w (%s)", errUnknownCircuit, worker)
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		err := fmt.Errorf("cluster: worker %s: status %d: %s", worker, resp.StatusCode, eb.Error)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			err = fmt.Errorf("%w: %w", errPermanent, err)
		}
		return err
	}

	c.mu.Lock()
	var blockLat *obs.Histogram // nil-safe when the worker was dropped
	if w := c.workers[worker]; w != nil {
		blockLat = w.blockLat
	}
	c.mu.Unlock()
	lastBlock := time.Now()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	if !sc.Scan() {
		return fmt.Errorf("cluster: worker %s: stream ended before header: %w", worker, scanErr(sc))
	}
	var hdr StreamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return fmt.Errorf("cluster: worker %s: bad stream header: %w", worker, err)
	}
	if hdr.Lanes != rg.hi-rg.lo || hdr.Rounds != rounds {
		return fmt.Errorf("cluster: worker %s: header (lanes=%d rounds=%d), want (%d, %d)",
			worker, hdr.Lanes, hdr.Rounds, rg.hi-rg.lo, rounds)
	}
	want := rounds * (rg.hi - rg.lo)
	for sc.Scan() {
		var blk StreamBlock
		if err := json.Unmarshal(sc.Bytes(), &blk); err != nil {
			return fmt.Errorf("cluster: worker %s: bad block: %w", worker, err)
		}
		if blk.Index != *delivered {
			return fmt.Errorf("cluster: worker %s: block %d out of order (want %d)", worker, blk.Index, *delivered)
		}
		if len(blk.Samples) != want {
			return fmt.Errorf("cluster: worker %s: block %d carries %d samples, want %d", worker, blk.Index, len(blk.Samples), want)
		}
		blockLat.Observe(time.Since(lastBlock).Seconds())
		// Block in hand: suspend the delivery deadline while the merge
		// loop applies backpressure — waiting on the coordinator's own
		// queue is not the worker's fault.
		l.pause()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case rg.ch <- rangeMsg{block: blk}:
			*delivered++
		}
		if *delivered >= maxBlocks {
			return nil
		}
		l.arm()
		// Restart the latency clock only once we are waiting on the worker
		// again — like the lease, the histogram must not charge the worker
		// for merge-loop backpressure.
		lastBlock = time.Now()
	}
	if err := scanErr(sc); err != nil {
		return fmt.Errorf("cluster: worker %s: stream broke at block %d: %w", worker, *delivered, err)
	}
	return fmt.Errorf("cluster: worker %s: stream ended early at block %d of %d", worker, *delivered, maxBlocks)
}

func scanErr(sc *bufio.Scanner) error {
	if err := sc.Err(); err != nil {
		return err
	}
	return io.ErrUnexpectedEOF
}

// installCircuit propagates a circuit's provenance to one worker. The
// call is bounded by its own timeout (an install is one bounded upload,
// unlike a stream) so a black-holed worker cannot stall the retry loop.
func (c *Coordinator) installCircuit(ctx context.Context, worker, hash string, src service.CircuitSource) error {
	ctx, cancel := context.WithTimeout(ctx, c.leaseTimeout)
	defer cancel()
	body, err := json.Marshal(InstallRequest{Hash: hash, Source: src})
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/circuits", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var eb errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		return fmt.Errorf("cluster: install on %s: status %d: %s", worker, resp.StatusCode, eb.Error)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
