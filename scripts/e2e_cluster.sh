#!/usr/bin/env bash
# e2e_cluster.sh — boot a real estimation cluster on loopback and drive
# a batch through it: one dipe-server coordinator + two dipe-worker
# processes, worker self-registration, readiness transition, batch
# submission over the cluster dispatcher, and completion checks.
#
# With --chaos the script instead runs the fault-tolerance gate on real
# processes: a worker is SIGKILLed mid-batch (jobs must still finish), a
# replacement worker heals the fleet, the server is SIGTERMed mid-job
# and restarted on the same -state-dir — the journaled job must resume
# and finish with a result bit-identical to a clean local-mode run —
# and finally a worker is SIGSTOPped mid-job so its lease expires and
# the observability counters must show the steal.
#
# Both modes also scrape /metrics on the server and every worker and
# assert the exposition parses as Prometheus text with the expected
# families nonzero.
#
# CI runs both modes as end-to-end gates; they need only go, curl and
# python3.
set -euo pipefail
cd "$(dirname "$0")/.."

CHAOS=0
[ "${1:-}" = "--chaos" ] && CHAOS=1

# All three processes bind kernel-assigned ephemeral ports (":0") and
# report the bound address on their first log line ("... listening on
# HOST:PORT"), so any number of e2e runs can share a host — parallel CI
# jobs included — without port collisions.

BIN="$(mktemp -d)"
LOGS="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$BIN"
  for log in "$LOGS"/server*.log; do
    echo "--- $(basename "$log") ---"; cat "$log" || true
  done
  rm -rf "$LOGS"
}
trap cleanup EXIT

# bound_addr LOGFILE: wait for a process to announce its listen address.
bound_addr() {
  local log="$1" addr=""
  for i in $(seq 1 50); do
    addr=$(sed -n 's/.*listening on \([0-9.:]*\)$/\1/p' "$log" 2>/dev/null | head -n1)
    [ -n "$addr" ] && { echo "$addr"; return 0; }
    sleep 0.2
  done
  return 1
}

echo "== build"
go build -o "$BIN/dipe-server" ./cmd/dipe-server
go build -o "$BIN/dipe-worker" ./cmd/dipe-worker

STATE="$LOGS/state"
SERVER_FLAGS=(-cluster -heartbeat 500ms)
# Chaos mode adds a short lease deadline so the SIGSTOP segment below
# expires a stalled worker's lease within the test budget.
[ "$CHAOS" = 1 ] && SERVER_FLAGS+=(-state-dir "$STATE" -lease-timeout 2s)

# prom_check NAME...: the exposition on stdin must parse as Prometheus
# text (every line a comment or name{labels} value) and each NAME given
# as an argument must sum to > 0 across its label sets.
prom_check='
import re, sys
fam = {}
for ln in sys.stdin.read().splitlines():
    if not ln.strip():
        continue
    if ln.startswith("#"):
        assert ln.split()[1] in ("HELP", "TYPE"), f"bad comment: {ln!r}"
        continue
    m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)({[^}]*})? (-?[0-9.eE+-]+|NaN)$", ln)
    assert m, f"unparseable exposition line: {ln!r}"
    fam[m.group(1)] = fam.get(m.group(1), 0.0) + float(m.group(3))
assert fam, "empty exposition"
for want in sys.argv[1:]:
    assert fam.get(want, 0) > 0, f"{want} = {fam.get(want)} (want > 0); have {sorted(fam)}"
print(f"  {len(fam)} series ok" + (": " + ", ".join(sys.argv[1:]) if len(sys.argv) > 1 else ""))
'

echo "== start coordinator (cluster mode, no workers yet)"
"$BIN/dipe-server" -addr "127.0.0.1:0" "${SERVER_FLAGS[@]}" \
  >"$LOGS/server.log" 2>&1 &
SERVER_PID=$!
PIDS+=($SERVER_PID)

SERVER_ADDR=$(bound_addr "$LOGS/server.log") || { echo "server never reported its address"; exit 1; }
BASE="http://${SERVER_ADDR}"

for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || { echo "server never came up"; exit 1; }

echo "== not ready before any worker registers"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")
[ "$code" = 503 ] || { echo "readyz=$code before workers, want 503"; exit 1; }

echo "== start two workers with self-registration"
"$BIN/dipe-worker" -addr "127.0.0.1:0" -register "$BASE" >"$LOGS/w1.log" 2>&1 &
W1_PID=$!
PIDS+=($W1_PID)
"$BIN/dipe-worker" -addr "127.0.0.1:0" -register "$BASE" >"$LOGS/w2.log" 2>&1 &
W2_PID=$!
PIDS+=($W2_PID)
W1_ADDR=$(bound_addr "$LOGS/w1.log") || { echo "worker 1 never reported its address"; exit 1; }
W2_ADDR=$(bound_addr "$LOGS/w2.log") || { echo "worker 2 never reported its address"; exit 1; }

echo "== wait for readiness"
for i in $(seq 1 50); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")
  [ "$code" = 200 ] && break
  sleep 0.2
done
[ "$code" = 200 ] || { echo "readyz=$code with workers, want 200"; exit 1; }

echo "== both workers visible"
curl -s "$BASE/v1/cluster/workers" | python3 -c '
import json, sys
ws = json.load(sys.stdin)["workers"]
alive = [w for w in ws if w["alive"]]
assert len(ws) == 2, f"{len(ws)} workers registered, want 2"
assert len(alive) == 2, f"{len(alive)} workers alive, want 2"
'

if [ "$CHAOS" = 0 ]; then

echo "== submit a batch over the cluster dispatcher (incl. variance-reduction modes)"
ids=$(curl -sf -X POST "$BASE/v1/batch" -H 'Content-Type: application/json' -d '{
  "jobs": [
    {"circuit":"s27",  "seed":5, "options":{"replications":16,"workers":1}},
    {"circuit":"s298", "seed":9, "options":{"replications":32,"workers":1}},
    {"circuit":"s1494","seed":3, "options":{"replications":64,"workers":1}},
    {"circuit":"s298", "seed":4, "options":{"replications":16,"workers":1,"variance":"antithetic"}},
    {"circuit":"s298", "seed":8, "options":{"replications":16,"workers":1,"variance":"control-variate"}}
  ]}' | python3 -c 'import json,sys; print("\n".join(json.load(sys.stdin)["ids"]))')

echo "== wait for completion"
check_job='
import json, sys
jid = sys.argv[1]
v = json.load(sys.stdin)
assert v["state"] == "done", "%s: state %s error %s" % (jid, v["state"], v.get("error", ""))
r = v["result"]
assert r["power"] > 0, "%s: nonpositive power" % jid
assert r["converged"], "%s: did not converge" % jid
want_vr = v["request"]["options"].get("variance", "")
assert r.get("variance", "") == want_vr, "%s: variance %r, want %r" % (jid, r.get("variance"), want_vr)
print("%s: %s%s P=%.4g W n=%d" % (jid, v["request"]["circuit"],
      " [%s]" % want_vr if want_vr else "", r["power"], r["sampleSize"]))
'
for id in $ids; do
  curl -sf "$BASE/v1/jobs/$id/wait?timeout=120s" | python3 -c "$check_job" "$id"
done

echo "== stats name the cluster dispatcher"
curl -s "$BASE/v1/stats" | python3 -c '
import json, sys
st = json.load(sys.stdin)
assert st["dispatcher"] == "cluster", st["dispatcher"]
assert st["pool"]["done"] >= 5, st["pool"]
'

echo "== /metrics scrapes cleanly on the coordinator"
curl -sf "$BASE/metrics" | python3 -c "$prom_check" \
  dipe_core_rounds_total dipe_core_half_width \
  dipe_cluster_lease_grants_total dipe_cluster_workers_alive \
  dipe_service_jobs_submitted_total dipe_service_jobs_done

echo "== /metrics scrapes cleanly on both workers"
for waddr in "$W1_ADDR" "$W2_ADDR"; do
  curl -sf "http://$waddr/metrics" | python3 -c "$prom_check" \
    dipe_compile_waves_total dipe_worker_streams_served_total \
    dipe_worker_blocks_emitted_total
done

echo "e2e cluster: OK"
exit 0
fi

# ---------------------------------------------------------------------
# --chaos: fault-tolerance gate on real processes.
# ---------------------------------------------------------------------

check_done='
import json, sys
jid = sys.argv[1]
v = json.load(sys.stdin)
assert v["state"] == "done", "%s: state %s error %s" % (jid, v["state"], v.get("error", ""))
r = v["result"]
assert r["power"] > 0, "%s: nonpositive power" % jid
print("%s: %s P=%.4g n=%d" % (jid, v["request"]["circuit"], r["power"], r["sampleSize"]))
'

echo "== chaos 1: SIGKILL a worker mid-batch; jobs must still finish"
ids=$(curl -sf -X POST "$BASE/v1/batch" -H 'Content-Type: application/json' -d '{
  "jobs": [
    {"circuit":"s1494","seed":11,"options":{"relErr":0.03,"replications":64,"workers":1}},
    {"circuit":"s1494","seed":12,"options":{"relErr":0.03,"replications":64,"workers":1}},
    {"circuit":"s1494","seed":13,"options":{"relErr":0.03,"replications":64,"workers":1}}
  ]}' | python3 -c 'import json,sys; print("\n".join(json.load(sys.stdin)["ids"]))')
sleep 0.3
kill -9 "$W1_PID" 2>/dev/null || true
for id in $ids; do
  curl -sf "$BASE/v1/jobs/$id/wait?timeout=120s" | python3 -c "$check_done" "$id"
done

echo "== dead worker detected with failures recorded"
for i in $(seq 1 50); do
  dead=$(curl -s "$BASE/v1/cluster/workers" | python3 -c '
import json, sys
ws = json.load(sys.stdin)["workers"]
print(sum(1 for w in ws if not w["alive"] and w["failures"] > 0))')
  [ "$dead" -ge 1 ] && break
  sleep 0.2
done
[ "$dead" -ge 1 ] || { echo "killed worker never reported dead with failures"; exit 1; }

echo "== replacement worker heals the fleet"
"$BIN/dipe-worker" -addr "127.0.0.1:0" -register "$BASE" >"$LOGS/w3.log" 2>&1 &
W3_PID=$!
PIDS+=($W3_PID)
W3_ADDR=$(bound_addr "$LOGS/w3.log") || { echo "worker 3 never reported its address"; exit 1; }
for i in $(seq 1 50); do
  alive=$(curl -s "$BASE/v1/cluster/workers" | python3 -c '
import json, sys
print(sum(1 for w in json.load(sys.stdin)["workers"] if w["alive"]))')
  [ "$alive" -ge 2 ] && break
  sleep 0.2
done
[ "$alive" -ge 2 ] || { echo "replacement worker never became alive"; exit 1; }
curl -sf -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
  -d '{"circuit":"s298","seed":14,"options":{"replications":32,"workers":1}}' |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])' | while read -r id; do
    curl -sf "$BASE/v1/jobs/$id/wait?timeout=120s" | python3 -c "$check_done" "$id"
  done

echo "== chaos 2: SIGTERM the server mid-job; restart must resume it"
# Budget-bound spec (unreachably tight accuracy): the job cannot finish
# early, so the SIGTERM below always lands mid-run.
resume_req='{"circuit":"s1494","seed":77,"interval":4,"options":{"relErr":0.0001,"confidence":0.9999,"replications":64,"workers":1,"maxSamples":262144}}'
RESUME_ID=$(curl -sf -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' -d "$resume_req" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
for i in $(seq 1 200); do
  running=$(curl -s "$BASE/v1/jobs/$RESUME_ID" | python3 -c '
import json, sys
print(1 if json.load(sys.stdin)["state"] == "running" else 0)')
  [ "$running" = 1 ] && break
  sleep 0.05
done
[ "$running" = 1 ] || { echo "resume job never started running"; exit 1; }
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

echo "== restart server on the same address and state dir"
"$BIN/dipe-server" -addr "$SERVER_ADDR" "${SERVER_FLAGS[@]}" \
  >"$LOGS/server2.log" 2>&1 &
SERVER_PID=$!
PIDS+=($SERVER_PID)
for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || { echo "restarted server never came up"; exit 1; }
resumed=$(sed -n 's/.*(\([0-9]*\) to resume).*/\1/p' "$LOGS/server2.log" | head -n1)
[ "${resumed:-0}" -ge 1 ] || { echo "restarted server resumed ${resumed:-0} jobs, want >= 1"; exit 1; }

echo "== resumed job finishes (workers re-register within their steady cadence)"
RESUMED_RESULT=$(curl -sf "$BASE/v1/jobs/$RESUME_ID/wait?timeout=120s")
echo "$RESUMED_RESULT" | python3 -c "$check_done" "$RESUME_ID"

echo "== resumed result is bit-identical to a clean local-mode run"
"$BIN/dipe-server" -addr "127.0.0.1:0" >"$LOGS/server-ref.log" 2>&1 &
PIDS+=($!)
REF_ADDR=$(bound_addr "$LOGS/server-ref.log") || { echo "reference server never reported its address"; exit 1; }
REF_ID=$(curl -sf -X POST "http://$REF_ADDR/v1/jobs" -H 'Content-Type: application/json' -d "$resume_req" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
curl -sf "http://$REF_ADDR/v1/jobs/$REF_ID/wait?timeout=120s" |
  python3 -c '
import json, sys
ref = json.load(sys.stdin)["result"]
got = json.loads(sys.argv[1])["result"]
for k in ("power", "sampleSize", "interval", "hiddenCycles", "sampledCycles", "halfWidth"):
    assert got[k] == ref[k], "resumed %s=%r, clean run %r" % (k, got[k], ref[k])
print("resumed == clean: P=%.6g n=%d" % (ref["power"], ref["sampleSize"]))
' "$RESUMED_RESULT"

echo "== chaos 3: SIGSTOP a lease holder; the lease must expire and be stolen"
# The restarted coordinator's worker table refills on the fleet's 15s
# re-announce cadence; the steal needs a thief, so wait for two workers.
for i in $(seq 1 150); do
  alive=$(curl -s "$BASE/v1/cluster/workers" | python3 -c '
import json, sys
print(sum(1 for w in json.load(sys.stdin)["workers"] if w["alive"]))')
  [ "$alive" -ge 2 ] && break
  sleep 0.2
done
[ "$alive" -ge 2 ] || { echo "fleet never re-registered 2 workers"; exit 1; }

# Unreachably tight accuracy again: the job must outlive the stall.
stall_req='{"circuit":"s1494","seed":21,"interval":4,"options":{"relErr":0.0001,"confidence":0.9999,"replications":128,"workers":2,"maxSamples":262144}}'
curl -sf -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' -d "$stall_req" >/dev/null

echo "== find the lease holder"
holder=""
for i in $(seq 1 100); do
  holder=$(curl -s "$BASE/v1/cluster/workers" | python3 -c '
import json, sys
ws = json.load(sys.stdin)["workers"]
held = [w["url"] for w in ws if w["alive"] and w.get("activeLeases", 0) > 0]
print(held[0] if held else "")')
  [ -n "$holder" ] && break
  sleep 0.2
done
[ -n "$holder" ] || { echo "no worker ever held a lease"; exit 1; }
case "$holder" in
  *"$W2_ADDR"*) STALL_PID=$W2_PID ;;
  *"$W3_ADDR"*) STALL_PID=$W3_PID ;;
  *) echo "lease holder $holder is not a known worker"; exit 1 ;;
esac

kill -STOP "$STALL_PID"
echo "== wait for the steal counters (lease timeout 2s)"
sum_steals='
import re, sys
total = 0.0
for ln in sys.stdin:
    m = re.match(r"^dipe_cluster_lease_steals_total(?:\{[^}]*\})? ([0-9.eE+-]+)", ln)
    if m: total += float(m.group(1))
print(int(total))
'
stolen=0
for i in $(seq 1 120); do
  stolen=$(curl -s "$BASE/metrics" | python3 -c "$sum_steals")
  [ "$stolen" -ge 1 ] && break
  sleep 0.5
done
kill -CONT "$STALL_PID" 2>/dev/null || true
[ "$stolen" -ge 1 ] || { echo "stalled worker's lease was never stolen"; exit 1; }

echo "== expiry and steal counters visible on /metrics"
curl -sf "$BASE/metrics" | python3 -c "$prom_check" \
  dipe_cluster_lease_expiries_total dipe_cluster_lease_steals_total \
  dipe_cluster_reassignments_total dipe_core_rounds_total

echo "e2e cluster chaos: OK"
