package power

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Supply describes the electrical operating point. The paper's
// experiments use 5 V and 20 MHz.
type Supply struct {
	VDD         float64 // volts
	ClockPeriod float64 // seconds
}

// DefaultSupply returns the paper's operating point: 5 V, 20 MHz.
func DefaultSupply() Supply {
	return Supply{VDD: 5.0, ClockPeriod: 50e-9}
}

// Frequency returns the clock frequency in Hz.
func (s Supply) Frequency() float64 { return 1.0 / s.ClockPeriod }

// CapModel assigns a load capacitance to each node from its structure:
// C = Base + PerFanout * fanout. Primary inputs get zero weight by
// default because their transitions are charged to the external driver,
// not the circuit under analysis.
type CapModel struct {
	Base          float64 // farads, intrinsic output load
	PerFanout     float64 // farads per fanout connection
	IncludeInputs bool    // count primary-input transitions too
}

// DefaultCapModel returns the coefficients used by the benchmark
// experiments: 30 fF intrinsic + 10 fF per fanout. With the paper's 5 V /
// 20 MHz operating point these place the ISCAS89-sized circuits in the
// same sub-mW to few-mW decade as Table 1.
func DefaultCapModel() CapModel {
	return CapModel{Base: 30e-15, PerFanout: 10e-15}
}

// NodeCap returns the load capacitance of node i.
func (m CapModel) NodeCap(c *netlist.Circuit, id netlist.NodeID) float64 {
	nd := &c.Nodes[id]
	if nd.Kind == logic.Input && !m.IncludeInputs {
		return 0
	}
	if nd.Kind == logic.Const0 || nd.Kind == logic.Const1 {
		return 0 // constants never switch
	}
	return m.Base + m.PerFanout*float64(len(nd.Fanout))
}

// LeakModel assigns a static (leakage) power to each node from its
// structure: P_leak = GateBase + PerFanin * fanin, in watts. Leakage is
// state-independent here — it accrues whether or not the node switches —
// so total static power is a plain sum over the circuit, reported
// alongside the estimated dynamic power. Primary inputs and constant
// drivers are pads, not transistor stacks, and leak nothing.
type LeakModel struct {
	GateBase float64 // watts, per gate or latch output stage
	PerFanin float64 // watts per fanin connection (stacked devices)
}

// DefaultLeakModel returns leakage coefficients matching the paper's
// technology era (5 V, multi-micron CMOS): 50 pW per gate plus 10 pW
// per fanin — subthreshold leakage orders of magnitude below switching
// power, as it was before deep submicron.
func DefaultLeakModel() LeakModel {
	return LeakModel{GateBase: 50e-12, PerFanin: 10e-12}
}

// NodeLeak returns the static power of node i in watts.
func (lm LeakModel) NodeLeak(c *netlist.Circuit, id netlist.NodeID) float64 {
	nd := &c.Nodes[id]
	switch nd.Kind {
	case logic.Input, logic.Const0, logic.Const1:
		return 0
	}
	return lm.GateBase + lm.PerFanin*float64(len(nd.Fanin))
}

// Model couples a supply with per-node capacitances and leakage weights
// for one circuit.
type Model struct {
	Supply Supply
	Caps   []float64 // farads, indexed by NodeID
	Leak   []float64 // watts of static power, indexed by NodeID
}

// NewModel precomputes the capacitance and leakage of every node of a
// frozen circuit, using the default leakage coefficients.
func NewModel(c *netlist.Circuit, cm CapModel, s Supply) *Model {
	return NewModelLeak(c, cm, DefaultLeakModel(), s)
}

// NewModelLeak is NewModel with explicit leakage coefficients.
func NewModelLeak(c *netlist.Circuit, cm CapModel, lm LeakModel, s Supply) *Model {
	m := &Model{
		Supply: s,
		Caps:   make([]float64, len(c.Nodes)),
		Leak:   make([]float64, len(c.Nodes)),
	}
	for i := range c.Nodes {
		m.Caps[i] = cm.NodeCap(c, netlist.NodeID(i))
		m.Leak[i] = lm.NodeLeak(c, netlist.NodeID(i))
	}
	return m
}

// TotalLeakage returns the circuit's static power: the sum of every
// node's leakage weight, in watts.
func (m *Model) TotalLeakage() float64 {
	var sum float64
	for _, l := range m.Leak {
		sum += l
	}
	return sum
}

// Weights returns the per-transition power contribution of each node,
//
//	w_i = C_i * VDD^2 / (2T),
//
// so that a cycle's power is the plain weighted transition count. This is
// the array the event-driven simulator consumes.
func (m *Model) Weights() []float64 {
	k := m.Supply.VDD * m.Supply.VDD / (2 * m.Supply.ClockPeriod)
	w := make([]float64, len(m.Caps))
	for i, c := range m.Caps {
		w[i] = c * k
	}
	return w
}

// EnergyPerTransition returns the switching energy of one transition at
// node i: C_i * VDD^2 / 2, in joules.
func (m *Model) EnergyPerTransition(id netlist.NodeID) float64 {
	return m.Caps[id] * m.Supply.VDD * m.Supply.VDD / 2
}

// PowerFromCounts converts accumulated per-node transition counts over
// `cycles` clock cycles into average power in watts.
func (m *Model) PowerFromCounts(counts []uint64, cycles int) float64 {
	if cycles <= 0 {
		return 0
	}
	var sw float64 // total switched capacitance
	for i, n := range counts {
		sw += m.Caps[i] * float64(n)
	}
	return sw * m.Supply.VDD * m.Supply.VDD / (2 * m.Supply.ClockPeriod * float64(cycles))
}

// Breakdown is a per-node share of total average power, for reporting.
type Breakdown struct {
	Node  netlist.NodeID
	Name  string
	Power float64 // watts
	Share float64 // fraction of total
}

// TopConsumers ranks nodes by average power given accumulated transition
// counts over `cycles` cycles and returns the top n entries.
func (m *Model) TopConsumers(c *netlist.Circuit, counts []uint64, cycles, n int) []Breakdown {
	if cycles <= 0 || n <= 0 {
		return nil
	}
	k := m.Supply.VDD * m.Supply.VDD / (2 * m.Supply.ClockPeriod * float64(cycles))
	all := make([]Breakdown, 0, len(counts))
	total := 0.0
	for i, cnt := range counts {
		p := m.Caps[i] * float64(cnt) * k
		total += p
		if p > 0 {
			all = append(all, Breakdown{Node: netlist.NodeID(i), Name: c.Nodes[i].Name, Power: p})
		}
	}
	// Selection sort of the top n keeps this allocation-light for small n.
	if n > len(all) {
		n = len(all)
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].Power > all[best].Power {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	out := all[:n]
	if total > 0 {
		for i := range out {
			out[i].Share = out[i].Power / total
		}
	}
	return out
}

// FormatWatts renders a power value with an engineering unit prefix.
func FormatWatts(w float64) string {
	switch {
	case w >= 1:
		return fmt.Sprintf("%.3f W", w)
	case w >= 1e-3:
		return fmt.Sprintf("%.3f mW", w*1e3)
	case w >= 1e-6:
		return fmt.Sprintf("%.3f uW", w*1e6)
	default:
		return fmt.Sprintf("%.3f nW", w*1e9)
	}
}
