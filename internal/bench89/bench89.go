package bench89

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// S27Bench is the genuine ISCAS89 s27 netlist.
const S27Bench = `# s27
# 4 inputs, 1 output, 3 D-type flipflops, 2 inverters, 8 gates
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// Signature is the published interface/size of a benchmark circuit.
type Signature struct {
	Name    string
	Inputs  int
	Outputs int
	Latches int
	Gates   int
}

// signatures lists the 24 circuits of the paper's Tables 1 and 2 in table
// order, with their widely published sizes (for the .1 variants where
// those are the common form). The synthetic generator reproduces these
// exactly.
var signatures = []Signature{
	{"s208", 10, 1, 8, 96},
	{"s298", 3, 6, 14, 119},
	{"s344", 9, 11, 15, 160},
	{"s349", 9, 11, 15, 161},
	{"s382", 3, 6, 21, 158},
	{"s386", 7, 7, 6, 159},
	{"s400", 3, 6, 21, 162},
	{"s420", 18, 1, 16, 218},
	{"s444", 3, 6, 21, 181},
	{"s510", 19, 7, 6, 211},
	{"s526", 3, 6, 21, 193},
	{"s641", 35, 24, 19, 379},
	{"s713", 35, 23, 19, 393},
	{"s820", 18, 19, 5, 289},
	{"s832", 18, 19, 5, 287},
	{"s838", 34, 1, 32, 446},
	{"s1196", 14, 14, 18, 529},
	{"s1238", 14, 14, 18, 508},
	{"s1423", 17, 5, 74, 657},
	{"s1488", 8, 19, 6, 653},
	{"s1494", 8, 19, 6, 647},
	{"s5378", 35, 49, 179, 2779},
	{"s9234", 36, 39, 211, 5597},
	{"s15850", 77, 150, 534, 9772},
}

// extended lists the large ISCAS'89 circuits beyond the paper's tables,
// with their widely published sizes. They exist to exercise the memory
// wall: s38417-class register files outgrow L2 and are the target of the
// compiled backend's cache blocking.
var extended = []Signature{
	{"s953", 16, 23, 29, 395},
	{"s13207", 62, 152, 638, 7951},
	{"s35932", 35, 320, 1728, 16065},
	{"s38417", 28, 106, 1636, 22179},
	{"s38584", 38, 304, 1426, 19253},
}

// Names returns the benchmark names in the paper's table order.
func Names() []string {
	out := make([]string, len(signatures))
	for i, s := range signatures {
		out[i] = s.Name
	}
	return out
}

// ExtendedNames returns the large ISCAS'89 circuits outside the paper's
// tables (s953 and the s13207..s38584 class), in size order.
func ExtendedNames() []string {
	out := make([]string, len(extended))
	for i, s := range extended {
		out[i] = s.Name
	}
	return out
}

// AllNames returns the paper's table circuits followed by the extended
// large-circuit suite.
func AllNames() []string {
	return append(Names(), ExtendedNames()...)
}

// SmallNames returns the subset of benchmarks with fewer than the given
// number of gates, preserving table order; used to keep default
// experiment runs fast.
func SmallNames(maxGates int) []string {
	var out []string
	for _, s := range signatures {
		if s.Gates < maxGates {
			out = append(out, s.Name)
		}
	}
	return out
}

// Lookup returns the signature for a benchmark name, searching the
// paper's table and the extended large-circuit suite.
func Lookup(name string) (Signature, bool) {
	for _, s := range signatures {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range extended {
		if s.Name == name {
			return s, true
		}
	}
	return Signature{}, false
}

// S27 parses and returns the embedded genuine s27 circuit.
func S27() *netlist.Circuit {
	c, err := netlist.ParseBenchString("s27", S27Bench)
	if err != nil {
		panic("bench89: embedded s27 failed to parse: " + err.Error())
	}
	return c
}

// Get returns the benchmark circuit with the given name: the genuine s27,
// or the deterministic synthetic circuit for a known signature.
func Get(name string) (*netlist.Circuit, error) {
	if name == "s27" {
		return S27(), nil
	}
	sig, ok := Lookup(name)
	if !ok {
		known := append([]string{"s27"}, AllNames()...)
		sort.Strings(known)
		return nil, fmt.Errorf("bench89: unknown circuit %q (known: %v)", name, known)
	}
	return Generate(sig)
}

// MustGet is Get that panics on error, for tests and examples.
func MustGet(name string) *netlist.Circuit {
	c, err := Get(name)
	if err != nil {
		panic(err)
	}
	return c
}

// seedFor derives the deterministic generator seed from a circuit name.
func seedFor(name string) int64 {
	h := fnv.New64a()
	// The salt pins generated structure across refactors.
	_, _ = h.Write([]byte("bench89/v1/" + name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// RandomSignature derives a small well-formed random circuit signature
// from a seed: 3..10 inputs, 1..6 outputs, 1..16 latches and a gate
// budget padded past Generate's structural minimum. The same seed
// always yields the same signature (and so, via Generate, the same
// circuit) — the basis of the seeded property tests and of benchgen's
// "random" family.
func RandomSignature(seed uint32) Signature {
	rng := rand.New(rand.NewSource(int64(seed)))
	pi := 3 + rng.Intn(8)
	po := 1 + rng.Intn(6)
	ff := 1 + rng.Intn(16)
	// Minimum: 1 + 2*ff (counter worst case) + ff (free) + po, padded.
	gates := 1 + 3*ff + po + rng.Intn(120)
	return Signature{
		Name:    fmt.Sprintf("rnd%d", seed),
		Inputs:  pi,
		Outputs: po,
		Latches: ff,
		Gates:   gates,
	}
}

// ScaledSignature derives a well-formed synthetic signature of roughly
// the given gate count. Unlike RandomSignature it targets large
// circuits: the latch fraction is fixed at 1/4 (s38417-class circuits
// are latch-heavy, and latch+input rows are the floor of the compiled
// Step register file), so the generated circuit's working set genuinely
// outgrows L2 at 100k gates and the memory wall is reproducible. The
// same (seed, gates) pair always yields the same signature and, via
// Generate, the same circuit.
func ScaledSignature(seed uint32, gates int) Signature {
	if gates < 64 {
		gates = 64
	}
	ff := gates / 4
	pi := 32 + gates/256
	if pi > 512 {
		pi = 512
	}
	po := 8 + gates/512
	if po > 256 {
		po = 256
	}
	return Signature{
		Name:    fmt.Sprintf("big%dx%d", seed, gates),
		Inputs:  pi,
		Outputs: po,
		Latches: ff,
		Gates:   gates,
	}
}

// Generate builds a synthetic sequential circuit matching the signature.
// The same signature always yields the identical circuit.
//
// Structure (gate budget permitting):
//
//	enable   = AND of up to 3 primary inputs (slow activity, p≈1/8)
//	counter  = enable-gated ripple counter over ~half the latches
//	           (next_q[i] = q[i] XOR carry[i-1]; carry[i] = q[i] AND carry[i-1])
//	hold FSM = ~quarter of the latches toggle only when a gated condition
//	           holds (next_q = q XOR (enable2 AND cloud-signal))
//	free FSM = remaining latches load a random cloud signal each cycle
//	cloud    = random NAND/NOR/AND/OR/NOT/XOR network over inputs,
//	           latch outputs and earlier cloud gates
//
// The counter and hold registers give the per-cycle power sequence the
// strong positive temporal correlation the paper's technique exists to
// handle; the cloud supplies realistic reconvergent logic and glitching.
func Generate(sig Signature) (*netlist.Circuit, error) {
	if sig.Inputs < 3 || sig.Latches < 1 || sig.Outputs < 1 {
		return nil, fmt.Errorf("bench89: signature %+v too small (need >=3 PI, >=1 DFF, >=1 PO)", sig)
	}
	minGates := 1 + 2*sig.Latches + sig.Outputs
	if sig.Gates < minGates {
		return nil, fmt.Errorf("bench89: signature %+v needs at least %d gates", sig, minGates)
	}
	rng := rand.New(rand.NewSource(seedFor(sig.Name)))
	c := netlist.NewCircuit(sig.Name)

	inputs := make([]netlist.NodeID, sig.Inputs)
	for i := range inputs {
		id, err := c.AddNode(fmt.Sprintf("PI%d", i), logic.Input)
		if err != nil {
			return nil, err
		}
		inputs[i] = id
	}
	latches := make([]netlist.NodeID, sig.Latches)
	for i := range latches {
		id, err := c.AddNode(fmt.Sprintf("Q%d", i), logic.DFF)
		if err != nil {
			return nil, err
		}
		latches[i] = id
	}

	gateBudget := sig.Gates
	gateNum := 0
	newGate := func(kind logic.Kind, fanin ...netlist.NodeID) netlist.NodeID {
		id, err := c.AddNode(fmt.Sprintf("N%d", gateNum), kind, fanin...)
		if err != nil {
			panic("bench89: internal name collision: " + err.Error())
		}
		gateNum++
		gateBudget--
		return id
	}

	// Slow enable: AND of up to 3 inputs.
	enFan := []netlist.NodeID{inputs[0], inputs[1]}
	if sig.Inputs >= 3 {
		enFan = append(enFan, inputs[2])
	}
	enable := newGate(logic.And, enFan...)

	// Counter over roughly half the latches, at least 2 bits, capped so
	// the remaining budget always covers the other sections. The section
	// costs (gates per latch): counter 2, hold 3, free 1.
	nCounter := sig.Latches / 2
	if nCounter < 2 {
		nCounter = sig.Latches // tiny circuits: all latches count
	}
	nHold := sig.Latches / 4
	cost := func(nc, nh int) int {
		return 1 + 2*nc + 3*nh + (sig.Latches - nc - nh) + sig.Outputs
	}
	for cost(nCounter, nHold) > sig.Gates && nHold > 0 {
		nHold--
	}
	for cost(nCounter, 0) > sig.Gates && nCounter > 2 {
		nCounter--
	}
	nFree := sig.Latches - nCounter - nHold

	latchD := make([]netlist.NodeID, sig.Latches) // D pin drivers, filled below

	// Ripple counters: segmented into short chains so the state process
	// mixes quickly. One long n-bit counter would carry power components
	// with period ~2^n/p(enable) — effectively non-mixing at benchmark
	// scale, which the real ISCAS89 circuits do not exhibit. Segments of
	// at most maxSeg bits bound the slowest bit's flip probability at
	// p(enable)/2^(maxSeg-1) = 1/64, i.e. relaxation from reset within
	// ~100 cycles: strong short-range correlation (the paper's
	// phenomenon), fast long-range mixing (the paper's assumption).
	const maxSeg = 4
	carry := enable
	for i := 0; i < nCounter; i++ {
		if i%maxSeg == 0 {
			carry = enable // restart the chain: independent short counter
		}
		t := newGate(logic.Xor, latches[i], carry)
		latchD[i] = t
		// The AND extends the carry chain and, at segment ends, feeds the
		// cloud as a slow signal.
		carry = newGate(logic.And, latches[i], carry)
	}

	// Pool of signals the cloud can draw from, biased toward recent
	// entries so the network acquires depth.
	pool := make([]netlist.NodeID, 0, sig.Gates+sig.Inputs+sig.Latches)
	pool = append(pool, inputs...)
	pool = append(pool, latches...)
	pool = append(pool, enable, carry)

	// Sources that carry state: the latch outputs plus the slow enable.
	// A fixed fraction of cloud fanins reads them directly so the FSM
	// state modulates combinational activity everywhere — this is what
	// gives the per-cycle power sequence its temporal correlation (the
	// phenomenon the paper's Fig. 3 visualizes). Without it, latch-poor
	// circuits degenerate to nearly i.i.d. power.
	stateSignals := append(append([]netlist.NodeID(nil), latches...), enable)
	pick := func() netlist.NodeID {
		if rng.Float64() < 0.30 {
			return stateSignals[rng.Intn(len(stateSignals))]
		}
		// Square-biased index: recent pool entries are favored, giving
		// logarithmic-ish depth growth.
		u := rng.Float64()
		idx := len(pool) - 1 - int(u*u*float64(len(pool)))
		if idx < 0 {
			idx = 0
		}
		return pool[idx]
	}
	pickDistinct := func(n int) []netlist.NodeID {
		out := make([]netlist.NodeID, 0, n)
		for len(out) < n {
			cand := pick()
			dup := false
			for _, o := range out {
				if o == cand {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, cand)
				continue
			}
			// On collision fall back to a uniform draw; with pools this
			// size a handful of retries always suffices.
			cand = pool[rng.Intn(len(pool))]
			dup = false
			for _, o := range out {
				if o == cand {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, cand)
			}
		}
		return out
	}

	randomKind := func() (logic.Kind, int) {
		r := rng.Float64()
		var kind logic.Kind
		switch {
		case r < 0.25:
			kind = logic.Nand
		case r < 0.42:
			kind = logic.Nor
		case r < 0.57:
			kind = logic.And
		case r < 0.72:
			kind = logic.Or
		case r < 0.87:
			kind = logic.Not
		case r < 0.93:
			kind = logic.Xor
		case r < 0.97:
			kind = logic.Xnor
		default:
			kind = logic.Buf
		}
		fanin := 1
		if kind != logic.Not && kind != logic.Buf {
			switch f := rng.Float64(); {
			case f < 0.60:
				fanin = 2
			case f < 0.90:
				fanin = 3
			default:
				fanin = 4
			}
		}
		return kind, fanin
	}

	// Reserve budget for the hold and free sections and output buffers
	// before spending the rest on the cloud.
	reserve := 3*nHold + nFree + sig.Outputs
	for gateBudget > reserve {
		kind, nf := randomKind()
		if maxPool := len(pool); nf > maxPool {
			nf = maxPool
		}
		g := newGate(kind, pickDistinct(nf)...)
		pool = append(pool, g)
	}

	// Hold registers: each toggles only when its gating condition holds.
	// The condition AND(PI_a, XOR(cloud, PI_b)) mixes a cloud signal with
	// fresh input entropy, so under p=0.5 inputs it fires with
	// probability exactly 1/4 regardless of the cloud signal's bias:
	// state components with correlation times of a few cycles — the
	// regime of the paper's Tables 1-2 — and no near-frozen modes.
	for i := 0; i < nHold; i++ {
		l := nCounter + i
		mix := newGate(logic.Xor, pool[rng.Intn(len(pool))], inputs[(i+1)%len(inputs)])
		cond := newGate(logic.And, inputs[i%len(inputs)], mix)
		tog := newGate(logic.Xor, latches[l], cond)
		latchD[l] = tog
		pool = append(pool, mix, cond, tog)
	}

	// Free registers load a cloud signal mixed with an input. The XOR
	// injects independent randomness into every free state bit each
	// cycle, which makes the whole state chain geometrically ergodic by
	// construction. Wiring D to a raw cloud signal instead can create
	// input-independent latch loops (D_A = f(Q_B), D_B = g(Q_A)) whose
	// frozen or near-frozen orbits depend on early inputs — observed as
	// long-run references that disagree across seeds.
	for i := 0; i < nFree; i++ {
		l := nCounter + nHold + i
		mixed := newGate(logic.Xor, pool[rng.Intn(len(pool))], inputs[i%len(inputs)])
		latchD[l] = mixed
		pool = append(pool, mixed)
	}

	// Primary outputs: dedicated buffers reading cloud signals keep the
	// PO count exact without disturbing the budget accounting.
	for i := 0; i < sig.Outputs; i++ {
		src := pool[rng.Intn(len(pool))]
		ob := newGate(logic.Buf, src)
		if err := c.MarkOutput(ob); err != nil {
			return nil, err
		}
	}

	if gateBudget != 0 {
		return nil, fmt.Errorf("bench89: internal budget accounting error for %s: %d left", sig.Name, gateBudget)
	}

	// Wire the latch D pins.
	for i, l := range latches {
		if err := c.SetFanin(l, latchD[i]); err != nil {
			return nil, err
		}
	}
	if err := c.Freeze(); err != nil {
		return nil, err
	}
	return c, nil
}
