package markov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench89"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// counter2 builds a free-running 2-bit counter (no inputs beyond a dummy
// enable held irrelevant): next q0 = !q0, next q1 = q1 XOR q0. Its STG is
// a 4-cycle with uniform stationary distribution.
func counter2(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("counter2")
	// One dummy input so the input-probability machinery is exercised.
	_, _ = c.AddNode("EN", logic.Input)
	q0, _ := c.AddNode("Q0", logic.DFF)
	q1, _ := c.AddNode("Q1", logic.DFF)
	n0, _ := c.AddNode("N0", logic.Not, q0)
	x1, _ := c.AddNode("X1", logic.Xor, q1, q0)
	_ = c.SetFanin(q0, n0)
	_ = c.SetFanin(q1, x1)
	_ = c.MarkOutput(x1)
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExtractCounterSTG(t *testing.T) {
	c := counter2(t)
	g, err := Extract(c, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", g.NumStates())
	}
	// Deterministic next state: every row has exactly one transition of
	// probability 1 (the input is irrelevant).
	for si, row := range g.Rows {
		if len(row) != 1 {
			t.Fatalf("state %d has %d successors, want 1", si, len(row))
		}
		for _, p := range row {
			if math.Abs(p-1) > 1e-12 {
				t.Fatalf("state %d transition prob %g, want 1", si, p)
			}
		}
	}
	// The cycle visits 00 -> 01 -> 10 -> 11 -> 00 (q0 toggles, q1 xors).
	cur := g.Index[0]
	seen := map[int]bool{cur: true}
	for i := 0; i < 3; i++ {
		for ti := range g.Rows[cur] {
			cur = ti
		}
		if seen[cur] {
			t.Fatalf("counter STG revisits state %d early", cur)
		}
		seen[cur] = true
	}
}

func TestStationaryUniformOnCounter(t *testing.T) {
	c := counter2(t)
	g, err := Extract(c, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.Stationary(1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pi {
		if math.Abs(p-0.25) > 1e-6 {
			t.Errorf("pi[%d] = %g, want 0.25", i, p)
		}
	}
}

func TestStationaryIsFixedPoint(t *testing.T) {
	c := bench89.S27()
	p := []float64{0.5, 0.5, 0.5, 0.5}
	g, err := Extract(c, p)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.Stationary(1e-13, 200000)
	if err != nil {
		t.Fatal(err)
	}
	// Check sum to 1 and pi*P = pi.
	var sum float64
	for _, v := range pi {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stationary sums to %g", sum)
	}
	next := make([]float64, len(pi))
	for si, row := range g.Rows {
		for ti, pr := range row {
			next[ti] += pi[si] * pr
		}
	}
	for i := range pi {
		if math.Abs(next[i]-pi[i]) > 1e-6 {
			t.Fatalf("pi*P != pi at state %d: %g vs %g", i, next[i], pi[i])
		}
	}
}

func TestRowsAreStochastic(t *testing.T) {
	c := bench89.S27()
	g, err := Extract(c, []float64{0.3, 0.5, 0.7, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for si, row := range g.Rows {
		var sum float64
		for _, p := range row {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", si, sum)
		}
	}
}

func TestMixingTime(t *testing.T) {
	c := bench89.S27()
	p := []float64{0.5, 0.5, 0.5, 0.5}
	g, err := Extract(c, p)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.Stationary(1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	k, err := g.MixingTime(pi, 0.01, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 0 || k > 1000 {
		t.Fatalf("mixing time = %d, implausible for s27", k)
	}
	// Tighter tolerance cannot mix faster.
	k2, err := g.MixingTime(pi, 0.0001, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if k2 < k {
		t.Fatalf("mixing time decreased with tighter tolerance: %d < %d", k2, k)
	}
}

func TestMixingTimeNeverOnPeriodicChain(t *testing.T) {
	// The pure counter is periodic: distribution from reset never
	// converges, so MixingTime must error out rather than lie.
	c := counter2(t)
	g, err := Extract(c, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.Stationary(1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.MixingTime(pi, 0.01, 1000); err == nil {
		t.Fatal("MixingTime converged on a periodic chain")
	}
}

func TestComplexityGuards(t *testing.T) {
	big := bench89.MustGet("s1423") // 74 latches
	if _, err := Extract(big, uniformP(len(big.Inputs))); err == nil {
		t.Fatal("Extract accepted a 74-latch circuit")
	}
	wide := bench89.MustGet("s641") // 35 inputs
	if _, err := Extract(wide, uniformP(len(wide.Inputs))); err == nil {
		t.Fatal("Extract accepted a 35-input circuit")
	}
	s27 := bench89.S27()
	if _, err := Extract(s27, []float64{0.5}); err == nil {
		t.Fatal("Extract accepted a mis-sized probability vector")
	}
}

func uniformP(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.5
	}
	return p
}

func TestSampleStateMatchesDistribution(t *testing.T) {
	c := counter2(t)
	g, err := Extract(c, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	dist := []float64{0.7, 0.1, 0.1, 0.1}
	rng := rand.New(rand.NewSource(1))
	q := make([]bool, 2)
	counts := make(map[uint64]int)
	const n = 20000
	for i := 0; i < n; i++ {
		g.SampleState(dist, rng, q)
		var key uint64
		if q[0] {
			key |= 1
		}
		if q[1] {
			key |= 2
		}
		counts[key]++
	}
	for i, want := range dist {
		key := g.States[i]
		got := float64(counts[key]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("state %d sampled %g, want %g", i, got, want)
		}
	}
}

func TestStationaryProbLookup(t *testing.T) {
	c := counter2(t)
	g, _ := Extract(c, []float64{0.5})
	pi, _ := g.Stationary(1e-12, 100000)
	if p := StationaryProb(g, pi, g.States[2]); math.Abs(p-0.25) > 1e-6 {
		t.Fatalf("StationaryProb = %g", p)
	}
	if p := StationaryProb(g, pi, 0xdeadbeef); p != 0 {
		t.Fatalf("unreachable state prob = %g", p)
	}
}

func TestReachableSubsetOnly(t *testing.T) {
	// s27 has 3 latches = 8 conceivable states; only the reachable ones
	// appear.
	c := bench89.S27()
	g, err := Extract(c, uniformP(4))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() < 2 || g.NumStates() > 8 {
		t.Fatalf("s27 reachable states = %d", g.NumStates())
	}
	for _, key := range g.States {
		if key > 7 {
			t.Fatalf("state key %d exceeds 3-bit space", key)
		}
	}
}
