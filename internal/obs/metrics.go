package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; a nil Counter silently drops updates, which is how
// disabled observability stays off the hot path.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a settable float64 stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by d (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets with fixed
// upper bounds (an implicit +Inf bucket is always present). Observe is
// one atomic add on the owning bucket plus a CAS on the running sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// BucketCounts returns the cumulative per-bucket counts, one per bound
// plus the trailing +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// DefBuckets is the default latency bucket layout (seconds), matching
// the conventional Prometheus spread.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric with its help text and, for labeled
// variants, one child instrument per label-value tuple.
type family struct {
	name    string
	help    string
	typ     string
	keys    []string // label keys; nil for unlabeled
	bounds  []float64
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() uint64
	gfn     func() float64

	mu       sync.Mutex
	children map[string]any // joined label values -> *Counter/*Gauge/*Histogram
	order    []string
}

// Registry owns metric families and renders them in Prometheus text
// format. A nil Registry hands out nil instruments: every Counter /
// Gauge / Histogram method is nil-safe, so call sites never branch.
// Registration is idempotent — asking for an existing name returns the
// prior instrument — but panics when the same name is reused with a
// different type or label set, since that is always a programming bug.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func (r *Registry) family(name, help, typ string, keys []string) *family {
	if !nameRE.MatchString(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || strings.Join(f.keys, ",") != strings.Join(keys, ",") {
			panic("obs: metric " + name + " re-registered with a different type or labels")
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, keys: keys, children: make(map[string]any)}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeCounter, nil)
	if f.counter == nil && f.cfn == nil {
		f.counter = &Counter{}
	}
	return f.counter
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeGauge, nil)
	if f.gauge == nil && f.gfn == nil {
		f.gauge = &Gauge{}
	}
	return f.gauge
}

// Histogram registers (or returns) an unlabeled histogram with the
// given upper bounds (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeHistogram, nil)
	if f.hist == nil {
		f.hist = newHistogram(bounds)
		f.bounds = f.hist.bounds
	}
	return f.hist
}

// CounterFunc registers a counter whose value is read at scrape time.
// Used for cheap package-global counters (e.g. the compiled engine's)
// that cannot hold a registry handle.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	f := r.family(name, help, typeCounter, nil)
	f.cfn = fn
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.family(name, help, typeGauge, nil)
	f.gfn = fn
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// CounterVec is a counter family with labels. With resolves one child
// counter per label-value tuple; resolve once, increment many.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, typeCounter, keys)}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, typeGauge, keys)}
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeHistogram, keys)
	if f.bounds == nil {
		f.bounds = newHistogram(bounds).bounds
	}
	return &HistogramVec{f: f}
}

func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.keys) {
		panic("obs: metric " + f.name + ": wrong label value count")
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	f := v.f
	return f.child(values, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// --- exposition ----------------------------------------------------------

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func labelString(keys, values []string, extra ...string) string {
	if len(keys) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(values[i]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extra[i], escapeLabel(extra[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeHist(w io.Writer, name, labels string, keys, values []string, h *Histogram) {
	cum := h.BucketCounts()
	for i, bound := range h.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			labelString(keys, values, "le", formatFloat(bound)), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		labelString(keys, values, "le", "+Inf"), cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// WriteProm renders every registered family in Prometheus text format,
// families in registration order, children sorted by label values.
func (r *Registry) WriteProm(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		if f.keys == nil {
			switch {
			case f.cfn != nil:
				fmt.Fprintf(w, "%s %d\n", f.name, f.cfn())
			case f.gfn != nil:
				fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gfn()))
			case f.counter != nil:
				fmt.Fprintf(w, "%s %d\n", f.name, f.counter.Value())
			case f.gauge != nil:
				fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gauge.Value()))
			case f.hist != nil:
				writeHist(w, f.name, "", nil, nil, f.hist)
			}
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		sorted := make([]int, len(keys))
		for i := range sorted {
			sorted[i] = i
		}
		sort.Slice(sorted, func(a, b int) bool { return keys[sorted[a]] < keys[sorted[b]] })
		for _, i := range sorted {
			values := strings.Split(keys[i], "\x00")
			labels := labelString(f.keys, values)
			switch c := children[i].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, labels, c.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(c.Value()))
			case *Histogram:
				writeHist(w, f.name, labels, f.keys, values, c)
			}
		}
	}
}

// Handler serves the registry at scrape time (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
}
