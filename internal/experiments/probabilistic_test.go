package experiments

import (
	"strings"
	"testing"
)

func TestProbabilisticBaseline(t *testing.T) {
	cfg := tinyConfig()
	cfg.Circuits = []string{"s27", "s298"}
	rows, err := ProbabilisticBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SIM <= 0 || r.PProba <= 0 || r.PDipe <= 0 {
			t.Errorf("%s: nonpositive power %+v", r.Name, r)
		}
		if r.Iterations < 1 {
			t.Errorf("%s: no fixpoint iterations recorded", r.Name)
		}
	}
	// The paper's claim on the reconvergent benchmark: the probabilistic
	// estimate errs far more than DIPE.
	for _, r := range rows {
		if r.Name != "s298" {
			continue
		}
		if r.ProbaErr < r.DipeErr {
			t.Errorf("s298: probabilistic error %.1f%% below DIPE error %.1f%% — claim not reproduced",
				r.ProbaErr, r.DipeErr)
		}
		if r.ProbaErr < 5 {
			t.Errorf("s298: probabilistic error %.1f%% implausibly small", r.ProbaErr)
		}
	}
	out := RenderProba(rows)
	if !strings.Contains(out, "B1") || !strings.Contains(out, "s298") {
		t.Errorf("render:\n%s", out)
	}
}
