package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIncrements hammers one counter, one gauge, one
// histogram and one labeled counter from many goroutines; run under
// -race this is the data-race gate, and the final counts prove no
// increment was lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dipe_test_ops_total", "ops")
	g := r.Gauge("dipe_test_level", "level")
	h := r.Histogram("dipe_test_latency_seconds", "latency", []float64{0.5})
	v := r.CounterVec("dipe_test_labeled_total", "labeled", "worker")
	const goroutines, per = 8, 10_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			child := v.With("w" + string(rune('0'+id)))
			for j := 0; j < per; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j%2) + 0.25) // alternates buckets
				child.Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter lost increments: got %d want %d", got, goroutines*per)
	}
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("histogram lost observations: got %d want %d", got, goroutines*per)
	}
	wantSum := float64(goroutines) * (per/2*0.25 + per/2*1.25)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("histogram sum: got %g want %g", h.Sum(), wantSum)
	}
	for i := 0; i < goroutines; i++ {
		if got := v.With("w" + string(rune('0'+i))).Value(); got != per {
			t.Fatalf("labeled counter %d: got %d want %d", i, got, per)
		}
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal
// to a bound lands in that bound's bucket (cumulative counts include
// it), values above every bound land only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2.5, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2.5, 5, 7} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	// le=1: {0.5, 1}; le=2.5: +{1.0000001, 2.5}; le=5: +{5}; +Inf: +{7}
	want := []uint64{2, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("bucket count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: got %d want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count: got %d want 6", h.Count())
	}
}

// TestExpositionGolden locks the Prometheus text rendering: HELP/TYPE
// comments, label escaping, histogram bucket/sum/count lines, and
// scrape-time func metrics.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dipe_test_ops_total", "Operations started.").Add(3)
	r.Gauge("dipe_test_half_width", "Current half-width.").Set(0.125)
	h := r.Histogram("dipe_test_latency_seconds", "Stream latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	v := r.CounterVec("dipe_test_leases_total", "Leases granted.", "worker", "kind")
	v.With("http://b:1", "steal").Add(2)
	v.With(`http://a:1"x`, "grant").Inc()
	r.GaugeFunc("dipe_test_temperature", "Scrape-time gauge.", func() float64 { return 36.6 })
	r.CounterFunc("dipe_test_waves_total", "Scrape-time counter.", func() uint64 { return 7 })

	var buf bytes.Buffer
	r.WriteProm(&buf)
	want := `# HELP dipe_test_ops_total Operations started.
# TYPE dipe_test_ops_total counter
dipe_test_ops_total 3
# HELP dipe_test_half_width Current half-width.
# TYPE dipe_test_half_width gauge
dipe_test_half_width 0.125
# HELP dipe_test_latency_seconds Stream latency.
# TYPE dipe_test_latency_seconds histogram
dipe_test_latency_seconds_bucket{le="0.1"} 1
dipe_test_latency_seconds_bucket{le="1"} 2
dipe_test_latency_seconds_bucket{le="+Inf"} 3
dipe_test_latency_seconds_sum 2.55
dipe_test_latency_seconds_count 3
# HELP dipe_test_leases_total Leases granted.
# TYPE dipe_test_leases_total counter
dipe_test_leases_total{worker="http://a:1\"x",kind="grant"} 1
dipe_test_leases_total{worker="http://b:1",kind="steal"} 2
# HELP dipe_test_temperature Scrape-time gauge.
# TYPE dipe_test_temperature gauge
dipe_test_temperature 36.6
# HELP dipe_test_waves_total Scrape-time counter.
# TYPE dipe_test_waves_total counter
dipe_test_waves_total 7
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryIdempotent checks re-registration returns the same
// instrument and nil registries hand out working nil instruments.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dipe_test_x_total", "x")
	b := r.Counter("dipe_test_x_total", "x")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	var nilReg *Registry
	nilReg.Counter("dipe_test_y_total", "y").Inc()
	nilReg.Gauge("dipe_test_z", "z").Set(1)
	nilReg.Histogram("dipe_test_h", "h", nil).Observe(1)
	nilReg.CounterVec("dipe_test_v_total", "v", "k").With("a").Inc()
	nilReg.WriteProm(&bytes.Buffer{})

	defer func() {
		if recover() == nil {
			t.Fatal("type conflict did not panic")
		}
	}()
	r.Gauge("dipe_test_x_total", "x")
}

// TestLoggerFormats checks level filtering and both encodings.
func TestLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, FormatLogfmt)
	l.now = func() time.Time { return time.Unix(0, 0).UTC() }
	l = l.With("job", "j1")
	l.Debug("dropped")
	l.Info("job started", "worker", "http://a:1", "n", 3)
	line := buf.String()
	want := "ts=1970-01-01T00:00:00Z level=info msg=\"job started\" job=j1 worker=http://a:1 n=3\n"
	if line != want {
		t.Fatalf("logfmt: got %q want %q", line, want)
	}

	buf.Reset()
	j := NewLogger(&buf, LevelWarn, FormatJSON)
	j.Info("dropped")
	j.Warn("lease expired", "range", "[0,8)", "attempt", 2)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json decode: %v (%q)", err, buf.String())
	}
	if rec["level"] != "warn" || rec["msg"] != "lease expired" || rec["range"] != "[0,8)" {
		t.Fatalf("json record mismatch: %v", rec)
	}
	var nilLog *Logger
	nilLog.Info("safe")
	nilLog.With("k", "v").Error("safe")
}

// TestTraceOrderingAndImport checks spans stay ordered, Begin/End
// stamps close, and Import keeps monotonic times across a resume.
func TestTraceOrderingAndImport(t *testing.T) {
	tr := NewTrace()
	tr.Event("submit", "id", "j1")
	end := tr.Begin("select-interval")
	end()
	tr.Event("stop")
	spans := tr.Spans()
	if len(spans) != 3 || spans[0].Name != "submit" || spans[1].Name != "select-interval" || spans[2].Name != "stop" {
		t.Fatalf("span order: %+v", spans)
	}
	if spans[1].EndMS == nil || *spans[1].EndMS < spans[1].T {
		t.Fatalf("span end not stamped: %+v", spans[1])
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].T < spans[i-1].T {
			t.Fatalf("non-monotonic spans: %+v", spans)
		}
	}

	resumed := NewTrace()
	resumed.Import(spans)
	resumed.Event("resume")
	resumed.Event("stop")
	all := resumed.Spans()
	if len(all) != 5 || all[0].Name != "submit" || all[3].Name != "resume" || all[4].Name != "stop" {
		t.Fatalf("imported span order: %+v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i].T < all[i-1].T {
			t.Fatalf("non-monotonic after import: %+v", all)
		}
	}

	var nilTrace *Trace
	nilTrace.Event("safe")
	nilTrace.Begin("safe")()
	nilTrace.Import(spans)
	if nilTrace.Spans() != nil || nilTrace.Len() != 0 {
		t.Fatal("nil trace misbehaved")
	}
}

// TestTraceCap checks the span cap drops, not grows.
func TestTraceCap(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < maxSpans+10; i++ {
		tr.Event("merge-round")
	}
	if tr.Len() != maxSpans {
		t.Fatalf("len: got %d want %d", tr.Len(), maxSpans)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped: got %d want 10", tr.Dropped())
	}
}

// TestMetricNameValidation checks malformed names panic at
// registration, never at scrape.
func TestMetricNameValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad name did not panic")
		}
	}()
	NewRegistry().Counter("dipe test broken", "")
}

// TestHandler checks the HTTP exposition endpoint end to end.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("dipe_test_ops_total", "ops").Inc()
	var buf bytes.Buffer
	r.WriteProm(&buf)
	if !strings.Contains(buf.String(), "dipe_test_ops_total 1") {
		t.Fatalf("missing metric: %q", buf.String())
	}
}
