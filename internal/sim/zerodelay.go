package sim

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// ZeroDelay is a levelized functional simulator. One Settle call computes
// the steady-state value of every node for a given input pattern and
// latch state, in a single topological sweep. It performs no transition
// accounting — it exists to advance the FSM through the cycles of the
// independence interval at minimal cost ("zero-delay simulation of the
// next-state logic", Section IV).
type ZeroDelay struct {
	c     *netlist.Circuit
	order []netlist.NodeID
}

// NewZeroDelay builds a zero-delay simulator for a frozen circuit.
func NewZeroDelay(c *netlist.Circuit) *ZeroDelay {
	if !c.Frozen() {
		panic("sim: NewZeroDelay requires a frozen circuit")
	}
	return &ZeroDelay{c: c, order: c.Order()}
}

// Settle writes the steady-state value of every node into vals, given the
// primary-input pattern pins (aligned with c.Inputs) and latch outputs q
// (aligned with c.Latches). len(vals) must be c.NumNodes().
func (z *ZeroDelay) Settle(vals []bool, pins, q []bool) {
	c := z.c
	if len(vals) != len(c.Nodes) {
		panic(fmt.Sprintf("sim: Settle vals length %d, want %d", len(vals), len(c.Nodes)))
	}
	for i, id := range c.Inputs {
		vals[id] = pins[i]
	}
	for i, id := range c.Latches {
		vals[id] = q[i]
	}
	for i := range c.Nodes {
		switch c.Nodes[i].Kind {
		case logic.Const0:
			vals[i] = false
		case logic.Const1:
			vals[i] = true
		}
	}
	for _, id := range z.order {
		vals[id] = evalNode(vals, &c.Nodes[id])
	}
}

// NextState reads the next latch state out of a settled value array into
// nextQ (aligned with c.Latches): the value at each DFF's D pin.
func (z *ZeroDelay) NextState(vals []bool, nextQ []bool) {
	for i, id := range z.c.Latches {
		nextQ[i] = vals[z.c.Nodes[id].Fanin[0]]
	}
}

// Outputs reads the primary-output values out of a settled value array.
func (z *ZeroDelay) Outputs(vals []bool, out []bool) {
	for i, id := range z.c.Outputs {
		out[i] = vals[id]
	}
}
