// Server client: drive the dipe-server HTTP API end to end — upload a
// netlist, submit single jobs, fan a batch across the pool, watch the
// frozen-circuit cache warm up.
//
// By default the example starts the service in-process on a loopback
// port, so it is self-contained:
//
//	go run ./examples/server_client
//
// Point it at a real server (go run ./cmd/dipe-server) instead with:
//
//	go run ./examples/server_client -addr localhost:8415
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"repro"
)

func main() {
	addr := flag.String("addr", "", "address of a running dipe-server (empty = start one in-process)")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		// Self-contained mode: the whole service lives in this process.
		srv := dipe.NewServer(dipe.DefaultServerConfig())
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Println("started in-process server at", base)
	}

	// 1. Upload a tiny custom netlist. Uploads are parsed and frozen at
	// upload time, then cached like any built-in benchmark.
	upload := map[string]string{
		"name":   "toggle",
		"format": "bench",
		"text":   "INPUT(EN)\nOUTPUT(Q)\nQ = DFF(D)\nD = XOR(EN, Q)\n",
	}
	var uploaded struct {
		Stats string `json:"stats"`
	}
	post(base+"/v1/circuits", upload, &uploaded)
	fmt.Println("uploaded:", uploaded.Stats)

	// 2. Submit one job and block on /wait (clients may also poll).
	job := submit(base, map[string]any{
		"circuit": "toggle",
		"seed":    1,
		"options": map[string]any{"replications": 16},
	})
	res := wait(base, job)
	fmt.Printf("toggle: %s (interval %d, %d samples)\n",
		dipe.FormatWatts(res.Result.Power), res.Result.Interval, res.Result.SampleSize)

	// 3. Fan a batch of benchmark jobs across the worker pool. The two
	// s298 jobs share one frozen circuit: the second resolution is a
	// registry cache hit.
	var batch struct {
		IDs []string `json:"ids"`
	}
	post(base+"/v1/batch", map[string]any{"jobs": []map[string]any{
		{"circuit": "s298", "seed": 1, "options": map[string]any{"replications": 32}},
		{"circuit": "s298", "seed": 2, "options": map[string]any{"replications": 32}},
		{"circuit": "s386", "seed": 1, "options": map[string]any{"replications": 32}},
	}}, &batch)
	for _, id := range batch.IDs {
		r := wait(base, id)
		fmt.Printf("%s: %s = %s\n", id, r.Request.Circuit, dipe.FormatWatts(r.Result.Power))
	}

	// 4. The cache statistics show the amortization: misses only on
	// first touch of each design.
	var stats struct {
		Registry struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"registry"`
	}
	get(base+"/v1/stats", &stats)
	fmt.Printf("registry: %d hits, %d misses\n", stats.Registry.Hits, stats.Registry.Misses)
}

// jobView mirrors the service's job snapshot (the fields used here).
type jobView struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Error   string `json:"error"`
	Request struct {
		Circuit string `json:"circuit"`
	} `json:"request"`
	Result struct {
		Power      float64 `json:"power"`
		Interval   int     `json:"interval"`
		SampleSize int     `json:"sampleSize"`
	} `json:"result"`
}

func submit(base string, req any) string {
	var v jobView
	post(base+"/v1/jobs", req, &v)
	return v.ID
}

func wait(base, id string) jobView {
	var v jobView
	get(base+"/v1/jobs/"+id+"/wait?timeout=120s", &v)
	if v.State != "done" {
		log.Fatalf("job %s finished %s: %s", id, v.State, v.Error)
	}
	return v
}

func post(url string, req, out any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	decode(url, resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(url, resp, out)
}

func decode(url string, resp *http.Response, out any) {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("%s: %v", url, err)
	}
}
