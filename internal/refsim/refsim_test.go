package refsim

import (
	"math"
	"testing"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// toggleCircuit: one DFF fed by the inverse of its output. Both nodes
// transition every cycle, so the per-cycle power is an exact constant we
// can compute by hand from the power model.
func toggleCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("toggle")
	q, _ := c.AddNode("Q", logic.DFF)
	nq, _ := c.AddNode("NQ", logic.Not, q)
	_ = c.SetFanin(q, nq)
	_ = c.MarkOutput(nq)
	// A dummy input keeps the vector plumbing honest.
	if _, err := c.AddNode("A", logic.Input); err != nil {
		t.Fatal(err)
	}
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestToggleExactPower(t *testing.T) {
	c := toggleCircuit(t)
	tb := core.DefaultTestbench(c)
	s := tb.NewSession(vectors.NewIID(1, 0.5, 1))
	res := Run(s, 10, 1000)

	// Q and NQ each have fanout 1: C = 30fF + 10fF = 40fF each.
	// P = (40f + 40f) * 25 / (2 * 50ns) = 80e-15 * 2.5e8 = 2e-5 W.
	want := 2e-5
	if math.Abs(res.Power-want) > 1e-12 {
		t.Fatalf("toggle power = %g, want %g", res.Power, want)
	}
	// A constant power sequence has zero variance.
	if res.StdErr != 0 {
		t.Fatalf("toggle stderr = %g, want 0", res.StdErr)
	}
	if res.MinCycle != want || res.MaxCycle != want {
		t.Fatalf("min/max = %g/%g, want both %g", res.MinCycle, res.MaxCycle, want)
	}
}

func TestLongerRunsReduceStdErr(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := core.DefaultTestbench(c)
	short := Run(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 2)), 50, 2000)
	long := Run(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 2)), 50, 32000)
	if long.RelStdErr() >= short.RelStdErr() {
		t.Fatalf("stderr did not shrink: short %g, long %g", short.RelStdErr(), long.RelStdErr())
	}
	// Estimates from independent budgets should agree within joint noise.
	diff := math.Abs(long.Power - short.Power)
	tol := 4 * (long.StdErr + short.StdErr)
	if diff > tol {
		t.Fatalf("short and long references disagree: %g vs %g (tol %g)", short.Power, long.Power, tol)
	}
}

func TestRunDeterministic(t *testing.T) {
	c := bench89.S27()
	tb := core.DefaultTestbench(c)
	a := Run(tb.NewSession(vectors.NewIID(4, 0.5, 3)), 20, 3000)
	b := Run(tb.NewSession(vectors.NewIID(4, 0.5, 3)), 20, 3000)
	if a.Power != b.Power {
		t.Fatalf("same seed gave %g and %g", a.Power, b.Power)
	}
}

func TestRunPanicsOnZeroCycles(t *testing.T) {
	c := bench89.S27()
	tb := core.DefaultTestbench(c)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for cycles=0")
		}
	}()
	Run(tb.NewSession(vectors.NewIID(4, 0.5, 1)), 0, 0)
}

func TestResultString(t *testing.T) {
	c := bench89.S27()
	tb := core.DefaultTestbench(c)
	res := Run(tb.NewSession(vectors.NewIID(4, 0.5, 1)), 10, 500)
	if res.String() == "" {
		t.Fatal("empty String()")
	}
	if res.Cycles != 500 || res.Warmup != 10 {
		t.Fatalf("bookkeeping: %+v", res)
	}
}
