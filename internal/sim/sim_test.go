package sim

import (
	"math/rand"
	"testing"

	"repro/internal/bench89"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// xorChain builds IN -> (delayed path) XOR (direct path) so that an input
// edge produces a glitch at the XOR under unequal path delays:
//
//	Y = XOR(B2, A) with B2 = NOT(NOT(A))
//
// Functionally Y is always 0, so zero-delay simulation sees no
// transitions at Y; event-driven simulation with unit delays sees a
// pulse (two transitions) per input edge.
func xorChain(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("xorchain")
	a, _ := c.AddNode("A", logic.Input)
	b1, _ := c.AddNode("B1", logic.Not, a)
	b2, _ := c.AddNode("B2", logic.Not, b1)
	y, _ := c.AddNode("Y", logic.Xor, b2, a)
	_ = c.MarkOutput(y)
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	return c
}

func unitWeights(c *netlist.Circuit) []float64 {
	w := make([]float64, c.NumNodes())
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestZeroDelayS27TruthTable(t *testing.T) {
	// s27 next-state/output ground truth computed by hand from the
	// netlist: with all inputs 0 and state (G5,G6,G7) = (0,0,0):
	//   G14=NOT(0)=1, G12=NOR(0,0)=1, G13=NOR(0,1)=0, G8=AND(1,0)=0,
	//   G15=OR(1,0)=1, G16=OR(0,0)=0, G9=NAND(0,1)=1, G11=NOR(0,1)=0,
	//   G10=NOR(1,0)=0, G17=NOT(0)=1.
	c := bench89.S27()
	zd := NewZeroDelay(c)
	vals := make([]bool, c.NumNodes())
	pins := make([]bool, 4)
	q := make([]bool, 3)
	zd.Settle(vals, pins, q)

	get := func(name string) bool { return vals[c.Lookup(name)] }
	checks := map[string]bool{
		"G14": true, "G12": true, "G13": false, "G8": false,
		"G15": true, "G16": false, "G9": true, "G11": false,
		"G10": false, "G17": true,
	}
	for name, want := range checks {
		if got := get(name); got != want {
			t.Errorf("s27 reset-settle %s = %v, want %v", name, got, want)
		}
	}
	// Next state: (G10, G11, G13) = (0,0,0).
	nq := make([]bool, 3)
	zd.NextState(vals, nq)
	if nq[0] || nq[1] || nq[2] {
		t.Errorf("s27 next state from reset = %v, want all false", nq)
	}
	out := make([]bool, 1)
	zd.Outputs(vals, out)
	if !out[0] {
		t.Errorf("s27 output G17 = %v, want true", out[0])
	}
}

func TestEventDrivenSettlesToZeroDelayValues(t *testing.T) {
	// Property: after an event-driven cycle, node values equal a fresh
	// zero-delay settle of the same (pins, state). Checked across many
	// random cycles on several circuits and delay models.
	circuits := []*netlist.Circuit{bench89.S27(), bench89.MustGet("s298"), bench89.MustGet("s386")}
	models := []delay.Model{delay.Unit{}, delay.DefaultFanoutLoaded()}
	for _, c := range circuits {
		for _, dm := range models {
			rng := rand.New(rand.NewSource(42))
			zd := NewZeroDelay(c)
			ed := NewEventDriven(c, delay.BuildTable(c, dm))
			w := unitWeights(c)

			vals := make([]bool, c.NumNodes())
			ref := make([]bool, c.NumNodes())
			pins := make([]bool, len(c.Inputs))
			q := make([]bool, len(c.Latches))
			zd.Settle(vals, pins, q)

			for cycle := 0; cycle < 200; cycle++ {
				for i := range pins {
					pins[i] = rng.Intn(2) == 1
				}
				for i := range q {
					q[i] = rng.Intn(2) == 1
				}
				ed.Cycle(vals, pins, q, w, nil)
				zd.Settle(ref, pins, q)
				for i := range vals {
					if vals[i] != ref[i] {
						t.Fatalf("%s/%s cycle %d: node %s settled to %v, zero-delay says %v",
							c.Name, dm.Name(), cycle, c.Nodes[i].Name, vals[i], ref[i])
					}
				}
			}
		}
	}
}

func TestEventDrivenCountsGlitches(t *testing.T) {
	c := xorChain(t)
	zd := NewZeroDelay(c)
	ed := NewEventDriven(c, delay.BuildTable(c, delay.Unit{}))
	w := unitWeights(c)
	y := c.Lookup("Y")

	vals := make([]bool, c.NumNodes())
	zd.Settle(vals, []bool{false}, nil)
	counts := make([]uint64, c.NumNodes())
	ed.Cycle(vals, []bool{true}, nil, w, counts)

	// The XOR must glitch: 0 -> 1 (direct path) -> 0 (delayed path).
	if counts[y] != 2 {
		t.Fatalf("XOR glitch transitions = %d, want 2", counts[y])
	}
	if vals[y] != false {
		t.Fatalf("XOR settled to %v, want false", vals[y])
	}
}

func TestInertialFilteringSuppressesShortPulse(t *testing.T) {
	// Same circuit, but the XOR is slow (fanout-loaded base much larger
	// than the inverter-chain skew): the 2-unit input skew pulse is
	// shorter than the XOR delay, so inertial filtering removes it.
	c := xorChain(t)
	tab := delay.BuildTable(c, delay.Unit{})
	y := c.Lookup("Y")
	tab.Delays[y] = 100 // pulse width is 2 (two NOT delays) << 100
	zd := NewZeroDelay(c)
	ed := NewEventDriven(c, tab)
	w := unitWeights(c)

	vals := make([]bool, c.NumNodes())
	zd.Settle(vals, []bool{false}, nil)
	counts := make([]uint64, c.NumNodes())
	ed.Cycle(vals, []bool{true}, nil, w, counts)
	if counts[y] != 0 {
		t.Fatalf("slow XOR transitions = %d, want 0 (inertial filtering)", counts[y])
	}
}

func TestZeroDelayModelSeesNoGlitches(t *testing.T) {
	// Under the all-zero delay model the event simulator must count
	// exactly the functional transitions.
	c := xorChain(t)
	zd := NewZeroDelay(c)
	ed := NewEventDriven(c, delay.BuildTable(c, delay.Zero{}))
	w := unitWeights(c)
	y := c.Lookup("Y")

	vals := make([]bool, c.NumNodes())
	zd.Settle(vals, []bool{false}, nil)
	counts := make([]uint64, c.NumNodes())
	ed.Cycle(vals, []bool{true}, nil, w, counts)
	if counts[y] != 0 {
		t.Fatalf("zero-delay XOR transitions = %d, want 0", counts[y])
	}
}

func TestEventDrivenWeightedSumMatchesCounts(t *testing.T) {
	c := bench89.MustGet("s298")
	rng := rand.New(rand.NewSource(9))
	zd := NewZeroDelay(c)
	ed := NewEventDriven(c, delay.BuildTable(c, delay.DefaultFanoutLoaded()))
	w := make([]float64, c.NumNodes())
	for i := range w {
		w[i] = rng.Float64()
	}
	vals := make([]bool, c.NumNodes())
	pins := make([]bool, len(c.Inputs))
	q := make([]bool, len(c.Latches))
	zd.Settle(vals, pins, q)
	for cycle := 0; cycle < 50; cycle++ {
		for i := range pins {
			pins[i] = rng.Intn(2) == 1
		}
		for i := range q {
			q[i] = rng.Intn(2) == 1
		}
		counts := make([]uint64, c.NumNodes())
		sum := ed.Cycle(vals, pins, q, w, counts)
		var want float64
		for i, n := range counts {
			want += w[i] * float64(n)
		}
		if diff := sum - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("cycle %d: weighted sum %g, counts say %g", cycle, sum, want)
		}
	}
}

func TestEventDrivenDeterministic(t *testing.T) {
	c := bench89.MustGet("s344")
	run := func() float64 {
		s := NewSession(c, delay.BuildTable(c, delay.DefaultFanoutLoaded()),
			vectors.NewIID(len(c.Inputs), 0.5, 77), unitWeights(c))
		total := 0.0
		for i := 0; i < 200; i++ {
			total += s.StepSampled(nil)
		}
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical runs diverged: %g vs %g", a, b)
	}
}

func TestSessionInterleavingInvariant(t *testing.T) {
	// Interleaving hidden and sampled steps must visit the same state
	// trajectory as sampling every cycle (the FSM path depends only on
	// the input stream, not on which simulator advances it).
	c := bench89.MustGet("s386")
	tab := delay.BuildTable(c, delay.DefaultFanoutLoaded())
	w := unitWeights(c)

	sA := NewSession(c, tab, vectors.NewIID(len(c.Inputs), 0.5, 123), w)
	sB := NewSession(c, tab, vectors.NewIID(len(c.Inputs), 0.5, 123), w)

	qA := make([]bool, len(c.Latches))
	qB := make([]bool, len(c.Latches))
	for step := 0; step < 300; step++ {
		if step%3 == 0 {
			sA.StepSampled(nil)
		} else {
			sA.StepHidden()
		}
		sB.StepSampled(nil)
		sA.State(qA)
		sB.State(qB)
		for i := range qA {
			if qA[i] != qB[i] {
				t.Fatalf("step %d: latch %d diverged between hidden and sampled paths", step, i)
			}
		}
	}
}

func TestSessionCycleCounters(t *testing.T) {
	c := bench89.S27()
	s := NewSession(c, delay.BuildTable(c, delay.DefaultFanoutLoaded()),
		vectors.NewIID(4, 0.5, 1), unitWeights(c))
	s.StepHiddenN(10)
	s.StepSampled(nil)
	s.StepSampled(nil)
	if s.HiddenCycles != 10 || s.SampledCycles != 2 {
		t.Fatalf("counters = %d/%d, want 10/2", s.HiddenCycles, s.SampledCycles)
	}
	s.ResetCounters()
	if s.HiddenCycles != 0 || s.SampledCycles != 0 {
		t.Fatal("ResetCounters did not clear")
	}
}

func TestSessionReset(t *testing.T) {
	c := bench89.MustGet("s298")
	s := NewSession(c, delay.BuildTable(c, delay.DefaultFanoutLoaded()),
		vectors.NewIID(len(c.Inputs), 0.5, 5), unitWeights(c))
	s.StepHiddenN(50)
	s.Reset()
	q := make([]bool, len(c.Latches))
	s.State(q)
	for i, b := range q {
		if b {
			t.Fatalf("latch %d not reset", i)
		}
	}
}

func TestSessionSetState(t *testing.T) {
	c := bench89.S27()
	s := NewSession(c, delay.BuildTable(c, delay.DefaultFanoutLoaded()),
		vectors.NewIID(4, 0.5, 1), unitWeights(c))
	want := []bool{true, false, true}
	s.SetState(want)
	got := make([]bool, 3)
	s.State(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SetState not applied: %v vs %v", got, want)
		}
	}
}

func TestSettleTimeWithinClock(t *testing.T) {
	// All benchmark circuits must settle within the paper's 50 ns clock
	// under the default delay model.
	for _, name := range []string{"s27", "s298", "s1494"} {
		c := bench89.MustGet(name)
		s := NewSession(c, delay.BuildTable(c, delay.DefaultFanoutLoaded()),
			vectors.NewIID(len(c.Inputs), 0.5, 3), unitWeights(c))
		var worst delay.Picoseconds
		for i := 0; i < 100; i++ {
			s.StepSampled(nil)
			if st := s.SettleTime(); st > worst {
				worst = st
			}
		}
		if worst > 50_000 {
			t.Errorf("%s settle time %d ps exceeds 50 ns clock", name, worst)
		}
	}
}

func TestSessionPanicsOnWidthMismatch(t *testing.T) {
	c := bench89.S27()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched source width")
		}
	}()
	NewSession(c, delay.BuildTable(c, delay.DefaultFanoutLoaded()),
		vectors.NewIID(3, 0.5, 1), unitWeights(c)) // s27 has 4 inputs
}

func TestConstantNodesNeverTransition(t *testing.T) {
	text := "INPUT(A)\nC1 = CONST1()\nG = AND(A, C1)\n"
	c, err := netlist.ParseBenchString("const", text)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(c, delay.BuildTable(c, delay.Unit{}),
		vectors.NewIID(1, 0.5, 11), unitWeights(c))
	counts := make([]uint64, c.NumNodes())
	for i := 0; i < 100; i++ {
		s.StepSampled(counts)
	}
	if n := counts[c.Lookup("C1")]; n != 0 {
		t.Fatalf("constant node transitioned %d times", n)
	}
}
