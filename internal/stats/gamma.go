package stats

import (
	"fmt"
	"math"
)

// RegLowerGamma returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) for a > 0, x >= 0, using the series expansion
// for x < a+1 and the continued fraction (modified Lentz) otherwise —
// the standard gammp/gser/gcf decomposition.
func RegLowerGamma(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		panic(fmt.Sprintf("stats: RegLowerGamma(a=%v, x=%v) out of domain", a, x))
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-15
	)
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a,x) = 1-P(a,x) by continued fraction.
func gammaCF(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-15
		fpmin   = 1e-300
	)
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X <= x) for X ~ chi-square with k degrees of
// freedom.
func ChiSquareCDF(x float64, k int) float64 {
	if k <= 0 {
		panic(fmt.Sprintf("stats: ChiSquareCDF k=%d must be positive", k))
	}
	if x <= 0 {
		return 0
	}
	return RegLowerGamma(float64(k)/2, x/2)
}

// ChiSquareQuantile returns the p-quantile of the chi-square
// distribution with k degrees of freedom by monotone bisection.
func ChiSquareQuantile(p float64, k int) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: ChiSquareQuantile(%v) outside (0,1)", p))
	}
	if k <= 0 {
		panic(fmt.Sprintf("stats: ChiSquareQuantile k=%d must be positive", k))
	}
	lo, hi := 0.0, float64(k)+10
	for ChiSquareCDF(hi, k) < p {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if ChiSquareCDF(mid, k) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return 0.5 * (lo + hi)
}
