package experiments

import (
	"strings"
	"testing"

	"repro/internal/stopping"
)

// tinyConfig keeps experiment tests fast: two small circuits, small
// reference budgets, few runs, a loose spec.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Circuits = []string{"s27", "s298"}
	cfg.RefCycles = func(int) int { return 8000 }
	cfg.RefWarmup = 64
	cfg.Runs = 4
	cfg.Opts.Spec = stopping.Spec{RelErr: 0.10, Confidence: 0.95}
	return cfg
}

func TestTable1SmokeAndRender(t *testing.T) {
	rows, err := Table1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SIM <= 0 || r.Estimate <= 0 {
			t.Errorf("%s: nonpositive power (%g, %g)", r.Name, r.SIM, r.Estimate)
		}
		if r.SampleSize <= 0 || r.Cycles == 0 {
			t.Errorf("%s: missing diagnostics", r.Name)
		}
		// Estimates inside spec plus reference noise: generous bound.
		if r.ErrPct > 100*(0.10+4*r.RefRelSE) {
			t.Errorf("%s: error %.2f%% too large", r.Name, r.ErrPct)
		}
	}
	out := RenderTable1(rows)
	for _, want := range []string{"Table 1", "s27", "s298", "I.I."} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable2SmokeAndRender(t *testing.T) {
	cfg := tinyConfig()
	cfg.Circuits = []string{"s27"}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.IIMin > r.IIMax {
		t.Errorf("II bounds inverted: %d > %d", r.IIMin, r.IIMax)
	}
	if r.IIAvg < float64(r.IIMin) || r.IIAvg > float64(r.IIMax) {
		t.Errorf("II avg %.2f outside [%d,%d]", r.IIAvg, r.IIMin, r.IIMax)
	}
	if r.SAvg <= 0 || r.CycAvg <= 0 {
		t.Errorf("missing aggregates: %+v", r)
	}
	if out := RenderTable2(rows); !strings.Contains(out, "Table 2") {
		t.Errorf("render missing title")
	}
}

func TestTable2NeedsRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Runs = 1
	if _, err := Table2(cfg); err == nil {
		t.Fatal("Runs=1 accepted")
	}
}

func TestFigure3SmokeAndRender(t *testing.T) {
	cfg := tinyConfig()
	pts, err := Figure3(cfg, "s298", 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	txt := RenderFigure3(pts, 1.28)
	if !strings.Contains(txt, "Figure 3") || !strings.Contains(txt, "k=  0") {
		t.Errorf("figure render:\n%s", txt)
	}
	csv := Figure3CSV(pts)
	if !strings.HasPrefix(csv, "interval,z,abs_z,accepted\n") {
		t.Errorf("csv header wrong:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != 7 {
		t.Errorf("csv lines = %d, want 7", got)
	}
}

func TestAblationSeqLen(t *testing.T) {
	cfg := tinyConfig()
	rows, err := AblationSeqLen(cfg, "s298", []int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.IIMin > r.IIMax || r.SelCycAvg <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
	if out := RenderSeqLen(rows); !strings.Contains(out, "A1") {
		t.Error("render missing title")
	}
}

func TestAblationAlpha(t *testing.T) {
	cfg := tinyConfig()
	cfg.Runs = 3
	rows, err := AblationAlpha(cfg, "s27", []float64{0.05, 0.40})
	if err != nil {
		t.Fatal(err)
	}
	// Higher significance level can only demand more (or equal)
	// independence on average.
	if rows[1].IIAvg+1e-9 < rows[0].IIAvg-1 {
		t.Errorf("alpha=0.40 IIavg %.2f much below alpha=0.05 %.2f", rows[1].IIAvg, rows[0].IIAvg)
	}
	if out := RenderAlpha(rows); !strings.Contains(out, "A2") {
		t.Error("render missing title")
	}
}

func TestAblationStopping(t *testing.T) {
	cfg := tinyConfig()
	cfg.Runs = 3
	rows, err := AblationStopping(cfg, "s27")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 criteria", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Criterion] = true
	}
	for _, want := range []string{"normal", "ks", "order-statistics"} {
		if !names[want] {
			t.Errorf("missing criterion %q", want)
		}
	}
	if out := RenderStopping(rows); !strings.Contains(out, "A3") {
		t.Error("render missing title")
	}
}

func TestAblationWarmup(t *testing.T) {
	cfg := tinyConfig()
	cfg.Runs = 3
	rows, err := AblationWarmup(cfg, "s298", []int{10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Mode != "dynamic" || rows[3].Mode != "batch-means" {
		t.Fatalf("rows = %+v", rows)
	}
	// A fixed warm-up of 50 cycles must cost more simulated cycles than
	// the dynamic interval (which is a few cycles on these circuits).
	if rows[2].CycAvg <= rows[0].CycAvg {
		t.Errorf("fixed-50 cycles %.0f not above dynamic %.0f", rows[2].CycAvg, rows[0].CycAvg)
	}
	if out := RenderWarmup(rows); !strings.Contains(out, "A4") {
		t.Error("render missing title")
	}
}

func TestAblationInputs(t *testing.T) {
	cfg := tinyConfig()
	cfg.Runs = 3
	rows, err := AblationInputs(cfg, "s298", []float64{0.0, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if out := RenderInputs(rows); !strings.Contains(out, "A5") {
		t.Error("render missing title")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Circuits = nil
	if _, err := Table1(cfg); err == nil {
		t.Error("empty circuit list accepted")
	}
	cfg = tinyConfig()
	cfg.RefCycles = nil
	if _, err := Table1(cfg); err == nil {
		t.Error("nil RefCycles accepted")
	}
	cfg = tinyConfig()
	cfg.InputProb = 0
	if _, err := Table1(cfg); err == nil {
		t.Error("p=0 accepted")
	}
	cfg = tinyConfig()
	cfg.Circuits = []string{"sBOGUS"}
	if _, err := Table1(cfg); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestDefaultRefCyclesMonotone(t *testing.T) {
	sizes := []int{100, 500, 2000, 8000}
	prev := 1 << 30
	for _, g := range sizes {
		c := DefaultRefCycles(g)
		if c > prev {
			t.Fatalf("RefCycles not non-increasing at %d gates", g)
		}
		prev = c
	}
	if PaperRefCycles(12345) != 1_000_000 {
		t.Fatal("PaperRefCycles != 1e6")
	}
}

func TestTable1Deterministic(t *testing.T) {
	cfg := tinyConfig()
	cfg.Circuits = []string{"s27"}
	a, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].SIM != b[0].SIM || a[0].Estimate != b[0].Estimate || a[0].SampleSize != b[0].SampleSize {
		t.Fatalf("same config produced different rows: %+v vs %+v", a[0], b[0])
	}
}
