package service

import "repro/internal/obs"

// serviceMetrics is the job manager's registry-backed telemetry. A
// manager always has one — when Config.Obs is nil an internal registry
// backs the same cells — so the /v1/stats JSON (cache hits/misses,
// job-state counts) reads real instruments whether or not a /metrics
// endpoint is mounted, and the two views cannot drift.
type serviceMetrics struct {
	submitted   *obs.Counter
	finished    *obs.CounterVec // by terminal state
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
}

func newServiceMetrics(r *obs.Registry) *serviceMetrics {
	return &serviceMetrics{
		submitted: r.Counter("dipe_service_jobs_submitted_total",
			"Jobs accepted by Submit (including cache hits)."),
		finished: r.CounterVec("dipe_service_jobs_finished_total",
			"Jobs reaching a terminal state, by state.", "state"),
		cacheHits: r.Counter("dipe_service_cache_hits_total",
			"Submissions answered from the result cache."),
		cacheMisses: r.Counter("dipe_service_cache_misses_total",
			"Submissions that had to run."),
	}
}

// registerStateGauges exposes the live job-state counts — the same
// numbers PoolStats reports — as scrape-time gauges.
func (m *Manager) registerStateGauges(r *obs.Registry) {
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		st := st
		r.GaugeFunc("dipe_service_jobs_"+string(st),
			"Jobs currently in state "+string(st)+".",
			func() float64 { return float64(m.stateCount(st)) })
	}
}

func (m *Manager) stateCount(st JobState) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if j.state == st {
			n++
		}
	}
	return n
}
