package markov

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// MaxExactLatches bounds STG extraction: beyond 2^20 states the dense
// state indexing used here is pointless, which is exactly the paper's
// scalability point.
const MaxExactLatches = 20

// MaxExactInputs bounds exact input-pattern enumeration per state.
const MaxExactInputs = 16

// STG is a state transition graph with transition probabilities under a
// given primary-input distribution. States are latch-vector encodings
// (bit i of the key is latch i), restricted to the set reachable from
// the reset (all-zero) state.
type STG struct {
	Latches int
	// States maps the dense index to the latch-vector key.
	States []uint64
	// Index is the inverse of States.
	Index map[uint64]int
	// Rows holds, per state, the sparse outgoing transition distribution.
	Rows []map[int]float64
}

// NumStates returns the number of reachable states.
func (g *STG) NumStates() int { return len(g.States) }

// Extract enumerates the reachable STG of a circuit whose inputs are
// mutually independent Bernoulli(p[i]) variables, by exact enumeration of
// all 2^#PI input patterns from every reachable state. It fails when the
// circuit exceeds MaxExactLatches/MaxExactInputs — deliberately mirroring
// the complexity wall the paper describes.
func Extract(c *netlist.Circuit, p []float64) (*STG, error) {
	nl := len(c.Latches)
	ni := len(c.Inputs)
	if nl > MaxExactLatches {
		return nil, fmt.Errorf("markov: %s has %d latches; exact STG extraction capped at %d (state space 2^%d)",
			c.Name, nl, MaxExactLatches, nl)
	}
	if ni > MaxExactInputs {
		return nil, fmt.Errorf("markov: %s has %d inputs; exact pattern enumeration capped at %d",
			c.Name, ni, MaxExactInputs)
	}
	if len(p) != ni {
		return nil, fmt.Errorf("markov: probability vector has %d entries, circuit has %d inputs", len(p), ni)
	}
	zd := sim.NewZeroDelay(c)
	vals := make([]bool, c.NumNodes())
	pins := make([]bool, ni)
	q := make([]bool, nl)
	nq := make([]bool, nl)

	g := &STG{Latches: nl, Index: make(map[uint64]int)}
	addState := func(key uint64) int {
		if i, ok := g.Index[key]; ok {
			return i
		}
		i := len(g.States)
		g.States = append(g.States, key)
		g.Index[key] = i
		g.Rows = append(g.Rows, make(map[int]float64))
		return i
	}

	nPatterns := 1 << ni
	patProb := make([]float64, nPatterns)
	for m := 0; m < nPatterns; m++ {
		pr := 1.0
		for b := 0; b < ni; b++ {
			if m&(1<<b) != 0 {
				pr *= p[b]
			} else {
				pr *= 1 - p[b]
			}
		}
		patProb[m] = pr
	}

	work := []int{addState(0)}
	visited := map[int]bool{0: true}
	for len(work) > 0 {
		si := work[len(work)-1]
		work = work[:len(work)-1]
		key := g.States[si]
		for b := 0; b < nl; b++ {
			q[b] = key&(1<<b) != 0
		}
		for m := 0; m < nPatterns; m++ {
			if patProb[m] == 0 {
				continue
			}
			for b := 0; b < ni; b++ {
				pins[b] = m&(1<<b) != 0
			}
			zd.Settle(vals, pins, q)
			zd.NextState(vals, nq)
			var nkey uint64
			for b := 0; b < nl; b++ {
				if nq[b] {
					nkey |= 1 << b
				}
			}
			ti := addState(nkey)
			g.Rows[si][ti] += patProb[m]
			if !visited[ti] {
				visited[ti] = true
				work = append(work, ti)
			}
		}
	}
	return g, nil
}

// Stationary solves the Chapman–Kolmogorov equations pi = pi * P by power
// iteration from the uniform distribution over reachable states, to the
// given L1 tolerance. It returns the stationary distribution over
// g.States. Periodic chains are handled by averaging successive iterates
// (a lazy-chain transform with weight 1/2).
func (g *STG) Stationary(tol float64, maxIter int) ([]float64, error) {
	n := g.NumStates()
	if n == 0 {
		return nil, fmt.Errorf("markov: empty STG")
	}
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for it := 0; it < maxIter; it++ {
		for i := range next {
			next[i] = 0
		}
		for si, row := range g.Rows {
			for ti, pr := range row {
				next[ti] += pi[si] * pr
			}
		}
		// Lazy step: average with the current iterate to kill periodicity.
		var diff float64
		for i := range next {
			next[i] = 0.5*next[i] + 0.5*pi[i]
			diff += math.Abs(next[i] - pi[i])
		}
		pi, next = next, pi
		if diff < tol {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("markov: power iteration did not reach tol %g in %d iterations", tol, maxIter)
}

// MixingTime returns the smallest number of steps k such that the total
// variation distance between the k-step distribution started at the reset
// state and the stationary distribution drops below tol. This is the
// principled "warm-up period" the paper says is unknowable without the
// STG.
func (g *STG) MixingTime(stationary []float64, tol float64, maxSteps int) (int, error) {
	n := g.NumStates()
	p := make([]float64, n)
	next := make([]float64, n)
	p[0] = 1 // reset state is state 0 by construction
	for k := 0; k <= maxSteps; k++ {
		var tv float64
		for i := range p {
			tv += math.Abs(p[i] - stationary[i])
		}
		if tv/2 < tol {
			return k, nil
		}
		for i := range next {
			next[i] = 0
		}
		for si, row := range g.Rows {
			if p[si] == 0 {
				continue
			}
			for ti, pr := range row {
				next[ti] += p[si] * pr
			}
		}
		p, next = next, p
	}
	return 0, fmt.Errorf("markov: TV distance still above %g after %d steps", tol, maxSteps)
}

// SampleState draws a state (latch vector) from a distribution over
// g.States, writing it to q.
func (g *STG) SampleState(dist []float64, rng *rand.Rand, q []bool) {
	u := rng.Float64()
	acc := 0.0
	idx := len(dist) - 1
	for i, pr := range dist {
		acc += pr
		if u < acc {
			idx = i
			break
		}
	}
	key := g.States[idx]
	for b := 0; b < g.Latches; b++ {
		q[b] = key&(1<<b) != 0
	}
}

// StationaryProb returns the stationary probability of a latch-vector key
// (0 for unreachable states).
func StationaryProb(g *STG, dist []float64, key uint64) float64 {
	if i, ok := g.Index[key]; ok {
		return dist[i]
	}
	return 0
}
