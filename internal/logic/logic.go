package logic

import "fmt"

// Kind identifies the function computed by a node in a gate-level netlist.
type Kind uint8

// Gate kinds. Input denotes a primary input (no fanin), DFF a D flip-flop
// (fanin[0] is the D pin; the node value is the latched output Q).
// Const0/Const1 are constant drivers occasionally found in benchmark
// netlists after optimization.
const (
	Input Kind = iota
	DFF
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	Const0
	Const1
	numKinds
)

var kindNames = [numKinds]string{
	Input:  "INPUT",
	DFF:    "DFF",
	Buf:    "BUF",
	Not:    "NOT",
	And:    "AND",
	Nand:   "NAND",
	Or:     "OR",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
	Const0: "CONST0",
	Const1: "CONST1",
}

// String returns the ISCAS89 .bench spelling of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind maps a .bench function name (case-insensitive) to a Kind.
// It returns false for unknown names.
func ParseKind(s string) (Kind, bool) {
	switch toUpper(s) {
	case "INPUT":
		return Input, true
	case "DFF", "FF", "LATCH":
		return DFF, true
	case "BUF", "BUFF", "BUFFER":
		return Buf, true
	case "NOT", "INV", "INVERTER":
		return Not, true
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR", "NXOR":
		return Xnor, true
	case "CONST0", "GND", "ZERO":
		return Const0, true
	case "CONST1", "VDD", "ONE":
		return Const1, true
	}
	return 0, false
}

// toUpper upper-cases ASCII letters without importing strings; benchmark
// identifiers are plain ASCII.
func toUpper(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

// IsCombinational reports whether the kind computes a pure boolean
// function of its fanin (i.e., is neither an input, a constant, nor a
// state element).
func (k Kind) IsCombinational() bool {
	switch k {
	case Buf, Not, And, Nand, Or, Nor, Xor, Xnor:
		return true
	}
	return false
}

// IsSource reports whether the node's value is set externally to the
// combinational network: primary inputs, flip-flop outputs and constants.
func (k Kind) IsSource() bool {
	switch k {
	case Input, DFF, Const0, Const1:
		return true
	}
	return false
}

// MinFanin returns the minimum legal fanin count for the kind.
func (k Kind) MinFanin() int {
	switch k {
	case Input, Const0, Const1:
		return 0
	case DFF, Buf, Not:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal fanin count for the kind, or -1 for
// unbounded.
func (k Kind) MaxFanin() int {
	switch k {
	case Input, Const0, Const1:
		return 0
	case DFF, Buf, Not:
		return 1
	default:
		return -1
	}
}

// Eval computes the gate function over the fanin values. It must only be
// called for combinational kinds and constants; Input and DFF values are
// owned by the simulator. Eval panics on a kind it cannot evaluate, which
// indicates a simulator bug rather than a data error.
func Eval(k Kind, in []bool) bool {
	switch k {
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And:
		for _, v := range in {
			if !v {
				return false
			}
		}
		return true
	case Nand:
		for _, v := range in {
			if !v {
				return true
			}
		}
		return false
	case Or:
		for _, v := range in {
			if v {
				return true
			}
		}
		return false
	case Nor:
		for _, v := range in {
			if v {
				return false
			}
		}
		return true
	case Xor:
		x := false
		for _, v := range in {
			x = x != v
		}
		return x
	case Xnor:
		x := true
		for _, v := range in {
			x = x != v
		}
		return x
	case Const0:
		return false
	case Const1:
		return true
	}
	panic("logic: Eval called on non-combinational kind " + k.String())
}

// Controlling returns the controlling input value for the kind and
// whether one exists. An input at the controlling value fixes the gate
// output regardless of the other inputs (e.g., a 0 on an AND). Gate kinds
// without a controlling value (XOR/XNOR/BUF/NOT) return ok=false.
func Controlling(k Kind) (v bool, ok bool) {
	switch k {
	case And, Nand:
		return false, true
	case Or, Nor:
		return true, true
	}
	return false, false
}

// Inverting reports whether the kind's output is inverted relative to its
// "base" function (NAND vs AND, NOR vs OR, XNOR vs XOR, NOT vs BUF).
func Inverting(k Kind) bool {
	switch k {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}
