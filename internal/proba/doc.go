// Package proba implements the classical *probabilistic* power
// estimation baseline the paper's introduction describes and argues
// against: propagate signal probabilities through the gate network under
// a spatial-independence assumption, lump the FSM's statistics into the
// latch probabilities by fixpoint iteration (the approach of the paper's
// refs [2][3][4]), and convert per-node switching activities into power.
//
// Three approximations are involved, each documented where it is made:
//
//  1. spatial independence — gate fanins are treated as independent,
//     ignoring reconvergent fanout correlation;
//  2. temporal independence — a node's values in consecutive cycles are
//     treated as independent, giving activity 2p(1-p);
//  3. zero delay — glitches are invisible to probabilities.
//
// The paper's whole point is that these approximations cost accuracy on
// sequential circuits ("as the average power is very sensitive to signal
// correlations, neglecting such information will yield poor estimation
// accuracy"); the probabilistic-baseline experiment quantifies exactly
// that against DIPE and the simulation reference.
package proba
