package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vectors"
)

// PackedBenchRow compares hidden-cycle (zero-delay) throughput of the
// scalar and the bit-parallel 64-lane simulator on one circuit. Cycles
// per second count per-replication clock cycles, so the packed figure
// already includes the lane fan-out.
type PackedBenchRow struct {
	Name          string  `json:"circuit"`
	Gates         int     `json:"gates"`
	Lanes         int     `json:"lanes"`
	ScalarCPS     float64 `json:"scalar_cycles_per_sec"`
	PackedCPS     float64 `json:"packed_cycles_per_sec"`
	Speedup       float64 `json:"speedup"`
	ScalarCycles  int     `json:"scalar_cycles_measured"`
	PackedCycles  int     `json:"packed_cycles_measured"`
	ElapsedScalar float64 `json:"scalar_seconds"`
	ElapsedPacked float64 `json:"packed_seconds"`
}

// PackedThroughput measures scalar-vs-packed hidden-cycle throughput for
// the given circuits. cycles is the per-replication cycle budget for the
// scalar run; the packed run advances the same number of wall-clock
// sweeps so both sides do comparable amounts of timed work. lanes is the
// packed session width (usually sim.MaxLanes).
func PackedThroughput(circuits []string, cycles, lanes int, seed int64) ([]PackedBenchRow, error) {
	if cycles < 1 || lanes < 1 || lanes > sim.MaxLanes {
		return nil, fmt.Errorf("experiments: bad packed bench config (cycles=%d lanes=%d)", cycles, lanes)
	}
	rows := make([]PackedBenchRow, 0, len(circuits))
	for _, name := range circuits {
		c, err := bench89.Get(name)
		if err != nil {
			return nil, err
		}
		tb := core.DefaultTestbench(c)
		width := len(c.Inputs)

		scalar := tb.NewSession(vectors.NewIID(width, 0.5, seed))
		scalar.StepHiddenN(64) // touch everything once before timing
		t0 := time.Now()
		scalar.StepHiddenN(cycles)
		scalarSec := time.Since(t0).Seconds()

		srcs := make([]vectors.Source, lanes)
		for k := range srcs {
			srcs[k] = vectors.NewIID(width, 0.5, seed+1+int64(k))
		}
		ps := sim.NewPackedSession(c, srcs)
		ps.StepHiddenN(64)
		t0 = time.Now()
		ps.StepHiddenN(cycles)
		packedSec := time.Since(t0).Seconds()

		row := PackedBenchRow{
			Name:          name,
			Gates:         c.NumGates(),
			Lanes:         lanes,
			ScalarCycles:  cycles,
			PackedCycles:  cycles * lanes,
			ElapsedScalar: scalarSec,
			ElapsedPacked: packedSec,
		}
		if scalarSec > 0 {
			row.ScalarCPS = float64(cycles) / scalarSec
		}
		if packedSec > 0 {
			row.PackedCPS = float64(cycles*lanes) / packedSec
		}
		if row.ScalarCPS > 0 {
			row.Speedup = row.PackedCPS / row.ScalarCPS
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PackedBenchReport is the JSON document emitted for regression tracking
// (BENCH_1.json): the machine context plus one row per circuit.
type PackedBenchReport struct {
	Benchmark string           `json:"benchmark"`
	GoVersion string           `json:"go_version"`
	NumCPU    int              `json:"num_cpu"`
	Rows      []PackedBenchRow `json:"rows"`
}

// PackedBenchJSON renders rows as an indented JSON report.
func PackedBenchJSON(rows []PackedBenchRow) string {
	rep := PackedBenchReport{
		Benchmark: "packed-vs-scalar hidden cycles",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Rows:      rows,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		// Marshal of a plain struct cannot fail; keep the API total anyway.
		return "{}"
	}
	return string(b) + "\n"
}

// RenderPackedBench renders rows as an ASCII table.
func RenderPackedBench(rows []PackedBenchRow) string {
	s := fmt.Sprintf("%-8s %7s %6s %14s %14s %8s\n",
		"circuit", "gates", "lanes", "scalar c/s", "packed c/s", "speedup")
	for _, r := range rows {
		s += fmt.Sprintf("%-8s %7d %6d %14.3g %14.3g %7.1fx\n",
			r.Name, r.Gates, r.Lanes, r.ScalarCPS, r.PackedCPS, r.Speedup)
	}
	return s
}
