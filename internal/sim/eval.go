package sim

import (
	"repro/internal/logic"
)

// evalCSR computes the functional value of a combinational node from the
// current value array, given its kind and flat CSR fanin list. It is the
// single source of truth for gate semantics in the scalar simulators
// (the zero-delay sweep and event-driven re-evaluation), guaranteeing
// they agree on settled values. evalPacked is its 64-lane counterpart.
func evalCSR(vals []bool, kind logic.Kind, fi []int32) bool {
	switch kind {
	case logic.Buf:
		return vals[fi[0]]
	case logic.Not:
		return !vals[fi[0]]
	case logic.And:
		for _, f := range fi {
			if !vals[f] {
				return false
			}
		}
		return true
	case logic.Nand:
		for _, f := range fi {
			if !vals[f] {
				return true
			}
		}
		return false
	case logic.Or:
		for _, f := range fi {
			if vals[f] {
				return true
			}
		}
		return false
	case logic.Nor:
		for _, f := range fi {
			if vals[f] {
				return false
			}
		}
		return true
	case logic.Xor:
		x := false
		for _, f := range fi {
			x = x != vals[f]
		}
		return x
	case logic.Xnor:
		x := true
		for _, f := range fi {
			x = x != vals[f]
		}
		return x
	case logic.Const0:
		return false
	case logic.Const1:
		return true
	}
	panic("sim: evalCSR on non-combinational kind " + kind.String())
}

// evalPacked computes the 64-lane value word of a combinational node:
// bit k of the result is the node's value in replication lane k. The
// n-ary reductions are the bitwise analogues of evalCSR.
func evalPacked(vals []uint64, kind logic.Kind, fi []int32) uint64 {
	switch kind {
	case logic.Buf:
		return vals[fi[0]]
	case logic.Not:
		return ^vals[fi[0]]
	case logic.And:
		v := ^uint64(0)
		for _, f := range fi {
			v &= vals[f]
		}
		return v
	case logic.Nand:
		v := ^uint64(0)
		for _, f := range fi {
			v &= vals[f]
		}
		return ^v
	case logic.Or:
		v := uint64(0)
		for _, f := range fi {
			v |= vals[f]
		}
		return v
	case logic.Nor:
		v := uint64(0)
		for _, f := range fi {
			v |= vals[f]
		}
		return ^v
	case logic.Xor:
		v := uint64(0)
		for _, f := range fi {
			v ^= vals[f]
		}
		return v
	case logic.Xnor:
		v := uint64(0)
		for _, f := range fi {
			v ^= vals[f]
		}
		return ^v
	case logic.Const0:
		return 0
	case logic.Const1:
		return ^uint64(0)
	}
	panic("sim: evalPacked on non-combinational kind " + kind.String())
}
