// Package chaos injects scripted faults into cluster sample streams.
// It is the test half of the coordinator's fault-tolerance story: the
// lease/reassignment machinery claims that worker death, stalls, drops
// and slow links are invisible in the merged estimate, and this package
// provides the faults that claim is verified against.
//
// Faults come in two flavors, matching the two places a distributed
// stream can break:
//
//   - Handler wrappers (Pace, KillAfterBlocks, StallAfterBlocks) wrap a
//     worker's http.Handler and misbehave on the server side — a slow
//     machine, a crashing process, a wedged stream. They act on the
//     NDJSON stream endpoint and pass everything else through.
//   - Transport wraps the coordinator's http.RoundTripper and
//     misbehaves on the network side — connections refused, added
//     latency, responses cut off mid-body — scripted per worker host.
//
// The package deliberately knows nothing about the cluster wire types
// (it counts NDJSON lines, it does not parse them), so internal cluster
// tests can import it without a cycle.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// StreamPath is the endpoint the handler wrappers fault; requests to
// any other path pass through untouched.
const StreamPath = "/v1/run"

// PaceFunc maps a stream request body to the delay inserted after each
// streamed block line. The callback sees the raw JSON body so callers
// can derive a per-sample pace from the request's block geometry
// without this package importing the wire types.
type PaceFunc func(runRequestBody []byte) time.Duration

// Pace throttles every stream to a fixed per-block service time,
// emulating a worker machine of fixed simulation capacity. The sleep
// sits in the response write path, so it backpressures the worker's
// compute loop exactly like a slower CPU would.
func Pace(inner http.Handler, per PaceFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != StreamPath {
			inner.ServeHTTP(w, r)
			return
		}
		body, err := replayBody(r)
		if err != nil {
			inner.ServeHTTP(w, r)
			return
		}
		inner.ServeHTTP(&paceWriter{respWriter: respWriter{w: w}, perBlock: per(body)}, r)
	})
}

// KillAfterBlocks aborts a stream's connection after `blocks` complete
// block lines have been written (and flushed), emulating a worker
// process that crashes mid-job. Only the first `streams` stream
// attempts are killed (0 means every attempt), so a "flaky" worker dies
// a scripted number of times and then behaves; the coordinator should
// resume the range elsewhere — or on the same worker's next attempt —
// with nothing visible in the merged result.
func KillAfterBlocks(inner http.Handler, blocks, streams int) http.Handler {
	var attempts atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != StreamPath {
			inner.ServeHTTP(w, r)
			return
		}
		if streams > 0 && attempts.Add(1) > int64(streams) {
			inner.ServeHTTP(w, r)
			return
		}
		inner.ServeHTTP(&killWriter{respWriter: respWriter{w: w}, blocks: blocks}, r)
	})
}

// StallAfterBlocks wedges a stream after `blocks` complete block lines:
// the connection stays open but no further bytes arrive until the
// client disconnects. This is the fault the lease watchdog exists for —
// a worker that is alive (heartbeats fine) but not producing — and
// unlike KillAfterBlocks it never surfaces as a transport error.
func StallAfterBlocks(inner http.Handler, blocks int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != StreamPath {
			inner.ServeHTTP(w, r)
			return
		}
		inner.ServeHTTP(&stallWriter{respWriter: respWriter{w: w}, blocks: blocks, ctx: r.Context()}, r)
	})
}

// replayBody reads a request body and reinstalls it so the inner
// handler can read it again.
func replayBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, err
	}
	r.Body.Close()
	r.Body = &replayReader{b: body}
	return body, nil
}

type replayReader struct {
	b []byte
	i int
}

func (rr *replayReader) Read(p []byte) (int, error) {
	if rr.i >= len(rr.b) {
		return 0, io.EOF
	}
	n := copy(p, rr.b[rr.i:])
	rr.i += n
	return n, nil
}

func (rr *replayReader) Close() error { return nil }

// respWriter is the shared base of the fault writers: it forwards
// writes and flushes, and counts completed NDJSON lines (line 1 is the
// stream header, so block b ends at line b+1).
type respWriter struct {
	w     http.ResponseWriter
	lines int
}

func (rw *respWriter) Header() http.Header { return rw.w.Header() }

func (rw *respWriter) WriteHeader(status int) { rw.w.WriteHeader(status) }

func (rw *respWriter) Flush() {
	if f, ok := rw.w.(http.Flusher); ok {
		f.Flush()
	}
}

// blockEnds returns the offsets just past each newline in b that
// completes a *block* line (i.e. excluding the header line).
func (rw *respWriter) blockEnds(b []byte) []int {
	var ends []int
	for i, c := range b {
		if c == '\n' {
			rw.lines++
			if rw.lines > 1 {
				ends = append(ends, i+1)
			}
		}
	}
	return ends
}

// paceWriter sleeps once per completed block line.
type paceWriter struct {
	respWriter
	perBlock time.Duration
}

func (pw *paceWriter) Write(b []byte) (int, error) {
	for range pw.blockEnds(b) {
		time.Sleep(pw.perBlock)
	}
	return pw.w.Write(b)
}

// killWriter writes through until the target block line completes, then
// flushes what the client is meant to see and aborts the connection.
type killWriter struct {
	respWriter
	blocks int // abort after this many complete block lines
	sent   int
}

func (kw *killWriter) Write(b []byte) (int, error) {
	for _, end := range kw.blockEnds(b) {
		kw.sent++
		if kw.sent >= kw.blocks {
			kw.w.Write(b[:end])
			kw.Flush()
			// http.Server recovers ErrAbortHandler and severs the
			// connection without a clean close — exactly a crash.
			panic(http.ErrAbortHandler)
		}
	}
	return kw.w.Write(b)
}

// stallWriter writes through until the target block line completes,
// then swallows everything and parks until the client goes away.
type stallWriter struct {
	respWriter
	blocks int
	sent   int
	ctx    context.Context
}

func (sw *stallWriter) Write(b []byte) (int, error) {
	if sw.sent >= sw.blocks {
		<-sw.ctx.Done()
		return 0, sw.ctx.Err()
	}
	for _, end := range sw.blockEnds(b) {
		sw.sent++
		if sw.sent >= sw.blocks {
			if _, err := sw.w.Write(b[:end]); err != nil {
				return 0, err
			}
			sw.Flush()
			<-sw.ctx.Done()
			return len(b), nil // the stalled tail is swallowed, not errored
		}
	}
	return sw.w.Write(b)
}

// Rule scripts the network faults for one worker host.
type Rule struct {
	// Drop fails every request to the host outright (connection
	// refused).
	Drop bool
	// Delay is added before each request is forwarded.
	Delay time.Duration
	// CutAfterBlocks severs each stream response after that many block
	// lines have been read (0 = never). Unlike the handler-side kill,
	// the cut happens on the coordinator's side of the wire, so the
	// worker keeps writing into a dead connection for a while — the
	// "half-open stream" failure mode.
	CutAfterBlocks int
	// DropN, when positive, bounds Drop to the first DropN requests —
	// a host that is unreachable for a bounded outage, then recovers.
	DropN int
}

// errDropped is the synthetic transport error for dropped requests.
var errDropped = errors.New("chaos: request dropped")

// errCut is the synthetic read error for severed response bodies.
var errCut = errors.New("chaos: stream cut")

// Transport is a fault-injecting http.RoundTripper for the
// coordinator's client: per-host rules drop requests, add latency, or
// cut stream responses mid-body. Hosts without a rule pass through.
type Transport struct {
	// Base handles the real round trips (default
	// http.DefaultTransport).
	Base http.RoundTripper

	mu      sync.Mutex
	rules   map[string]*Rule
	dropped map[string]int
}

// Set installs (or replaces) the rule for a host ("127.0.0.1:4501").
func (t *Transport) Set(host string, r Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rules == nil {
		t.rules = make(map[string]*Rule)
		t.dropped = make(map[string]int)
	}
	rc := r
	t.rules[host] = &rc
	t.dropped[host] = 0
}

// Clear removes the rule for a host.
func (t *Transport) Clear(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.rules, host)
}

// rule snapshots the host's rule and charges a drop if one applies.
func (t *Transport) rule(host string) (Rule, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.rules[host]
	if r == nil {
		return Rule{}, false
	}
	rc := *r
	if rc.Drop && rc.DropN > 0 {
		if t.dropped[host] >= rc.DropN {
			rc.Drop = false
		} else {
			t.dropped[host]++
		}
	}
	return rc, true
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	r, ok := t.rule(req.URL.Host)
	if !ok {
		return base.RoundTrip(req)
	}
	if r.Drop {
		return nil, fmt.Errorf("%w: %s %s", errDropped, req.Method, req.URL)
	}
	if r.Delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(r.Delay):
		}
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if r.CutAfterBlocks > 0 && req.URL.Path == StreamPath {
		resp.Body = &cutReader{rc: resp.Body, blocks: r.CutAfterBlocks}
	}
	return resp, nil
}

// cutReader passes a response body through until the target block line
// completes, then returns a synthetic read error.
type cutReader struct {
	rc     io.ReadCloser
	blocks int
	lines  int
	cut    bool
}

func (cr *cutReader) Read(p []byte) (int, error) {
	if cr.cut {
		return 0, errCut
	}
	n, err := cr.rc.Read(p)
	for i := 0; i < n; i++ {
		if p[i] == '\n' {
			cr.lines++
			if cr.lines-1 >= cr.blocks { // line 1 is the header
				cr.cut = true
				return i + 1, nil // deliver through the completed line
			}
		}
	}
	return n, err
}

func (cr *cutReader) Close() error { return cr.rc.Close() }
