// Package stats provides the probability and statistics routines the
// estimation technique needs, implemented from scratch on the standard
// library: normal and Student-t distributions, the regularized incomplete
// beta function, binomial tails, descriptive statistics, empirical CDFs,
// sample quantiles and autocorrelation.
//
// It backs the quantitative machinery of Sections III and IV: the
// normal quantiles of the runs-test acceptance region (Eqs. 5–7), the
// binomial order-statistics bounds of the default stopping criterion,
// and the autocorrelation diagnostics of the sampling audits.
package stats
