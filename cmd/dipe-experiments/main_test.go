package main

import (
	"bytes"
	"strings"
	"testing"
)

// smoke runs the command body on the fast s27 configuration and returns
// stdout.
func smoke(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(append(args, "-q"), &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String()
}

func TestRunTable1Smoke(t *testing.T) {
	out := smoke(t, "-table1", "-circuits", "s27", "-runs", "1")
	if !strings.Contains(out, "s27") {
		t.Fatalf("Table 1 output missing circuit row:\n%s", out)
	}
}

func TestRunTable1ParallelSmoke(t *testing.T) {
	out := smoke(t, "-table1", "-circuits", "s27", "-replications", "16", "-workers", "2")
	if !strings.Contains(out, "s27") {
		t.Fatalf("parallel Table 1 output missing circuit row:\n%s", out)
	}
}

func TestRunTable2Smoke(t *testing.T) {
	out := smoke(t, "-table2", "-circuits", "s27", "-runs", "3")
	if !strings.Contains(out, "s27") {
		t.Fatalf("Table 2 output missing circuit row:\n%s", out)
	}
}

func TestRunFig3Smoke(t *testing.T) {
	out := smoke(t, "-fig3", "-fig3-circuit", "s27", "-fig3-len", "300", "-fig3-max", "3", "-csv")
	if !strings.Contains(out, "interval") && !strings.Contains(out, ",") {
		t.Fatalf("Figure 3 CSV output unexpected:\n%s", out)
	}
}

func TestRunAblationStoppingSmoke(t *testing.T) {
	out := smoke(t, "-ablation", "stopping", "-circuits", "s27", "-runs", "1")
	if out == "" {
		t.Fatal("stopping ablation produced no output")
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("no campaign selected but run succeeded")
	}
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-ablation", "nope", "-q"}, &stdout, &stderr); err == nil {
		t.Error("unknown ablation accepted")
	}
	if err := run([]string{"-table1", "-circuits", "sNOPE", "-q"}, &stdout, &stderr); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestRunSampledSmoke(t *testing.T) {
	out := smoke(t, "-sampled", "-circuits", "s27", "-sampled-cycles", "100")
	if !strings.Contains(out, "s27") || !strings.Contains(out, "speedup") {
		t.Fatalf("sampled bench output missing content:\n%s", out)
	}
}

func TestRunModesSmoke(t *testing.T) {
	out := smoke(t, "-modes", "-circuits", "s27", "-replications", "16", "-workers", "2")
	if !strings.Contains(out, "s27") || !strings.Contains(out, "glitch") {
		t.Fatalf("modes output missing content:\n%s", out)
	}
}
