package power

import (
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// This file turns accumulated per-node transition counts into the
// attribution report the estimation layers surface: per-node dynamic
// power (w_i * toggles_i / observations — the same Eq. 1 weights the
// estimator sums, so the dynamic column totals the scalar estimate in
// the plain estimator mode), per-node static leakage from Model.Leak,
// and module-level aggregation by hierarchical name prefix.

// NodeClass tags what a breakdown row attributes power to. Primary
// inputs carry zero capacitance weight under the default CapModel
// (their transitions are charged to the external driver), so reporting
// them as 0 W rows would be misleading — ranked output excludes the
// input and constant classes and keeps the tag so consumers can tell
// gates from latches.
type NodeClass string

const (
	ClassGate  NodeClass = "gate"
	ClassLatch NodeClass = "latch"
	ClassInput NodeClass = "input"
	ClassConst NodeClass = "const"
)

// ClassOf maps a netlist node kind to its breakdown class.
func ClassOf(k logic.Kind) NodeClass {
	switch k {
	case logic.Input:
		return ClassInput
	case logic.DFF:
		return ClassLatch
	case logic.Const0, logic.Const1:
		return ClassConst
	}
	return ClassGate
}

// BreakdownRow is one node's share of the circuit's power.
type BreakdownRow struct {
	Node    int       `json:"node"`
	Name    string    `json:"name"`
	Class   NodeClass `json:"class"`
	Toggles uint64    `json:"toggles"`
	Dynamic float64   `json:"dynamic"` // watts
	Leakage float64   `json:"leakage"` // watts
	Share   float64   `json:"share"`   // of the dynamic+leakage grand total
}

// ModuleRow aggregates rows by hierarchical module prefix.
type ModuleRow struct {
	Module  string  `json:"module"`
	Nodes   int     `json:"nodes"`
	Toggles uint64  `json:"toggles"`
	Dynamic float64 `json:"dynamic"`
	Leakage float64 `json:"leakage"`
	Share   float64 `json:"share"`
}

// BreakdownReport is the full power attribution of one estimation run.
type BreakdownReport struct {
	// Observations is the number of sampled-cycle observations the
	// toggle counts cover (per replication lane; the denominator of the
	// per-node dynamic power).
	Observations uint64 `json:"observations"`
	// Dynamic is the total dynamic power in watts: the weighted toggle
	// sum over every node, including classes the ranked rows exclude.
	// In the plain estimator mode it equals the scalar estimate up to
	// float summation order; variance-reduced runs transform the samples
	// the criterion consumes, so there the raw attribution total and the
	// transformed estimate differ by design.
	Dynamic float64 `json:"dynamic"`
	// Leakage is the total static power in watts (state-independent).
	Leakage float64 `json:"leakage"`
	// Rows ranks gate and latch nodes by dynamic+leakage power,
	// descending, ties broken by ascending node index. Input and
	// constant nodes are excluded (zero weight by construction).
	Rows []BreakdownRow `json:"rows"`
	// Modules aggregates Rows by module prefix, same ranking.
	Modules []ModuleRow `json:"modules,omitempty"`
}

// ModuleOf extracts the module prefix of a hierarchical node name: the
// part before the last '/' or '.' separator. Flat netlist names (the
// ISCAS89 benches) have no separator and collapse into the top module.
func ModuleOf(name string) string {
	if i := strings.LastIndexAny(name, "/."); i > 0 {
		return name[:i]
	}
	return "(top)"
}

// Breakdown builds the attribution report for accumulated per-node
// transition counts over `observations` sampled cycles. counts must be
// indexed by NodeID (len NumNodes); observations == 0 yields zero
// dynamic rows (leakage is still reported — it does not depend on
// switching activity).
func (m *Model) Breakdown(c *netlist.Circuit, counts []uint64, observations uint64) *BreakdownReport {
	w := m.Weights()
	rep := &BreakdownReport{Observations: observations}
	rep.Leakage = m.TotalLeakage()
	rows := make([]BreakdownRow, 0, len(counts))
	for i, n := range counts {
		var dyn float64
		if observations > 0 {
			dyn = w[i] * float64(n) / float64(observations)
		}
		rep.Dynamic += dyn
		class := ClassOf(c.Nodes[i].Kind)
		if class == ClassInput || class == ClassConst {
			continue
		}
		rows = append(rows, BreakdownRow{
			Node:    i,
			Name:    c.Nodes[i].Name,
			Class:   class,
			Toggles: n,
			Dynamic: dyn,
			Leakage: m.Leak[i],
		})
	}
	// Rank by combined power; the index tiebreak keeps the order a pure
	// function of the counts, so N-worker and local reports are
	// comparable row for row.
	sort.Slice(rows, func(a, b int) bool {
		pa, pb := rows[a].Dynamic+rows[a].Leakage, rows[b].Dynamic+rows[b].Leakage
		if pa != pb {
			return pa > pb
		}
		return rows[a].Node < rows[b].Node
	})
	total := rep.Dynamic + rep.Leakage
	if total > 0 {
		for i := range rows {
			rows[i].Share = (rows[i].Dynamic + rows[i].Leakage) / total
		}
	}
	rep.Rows = rows
	rep.Modules = moduleRows(rows, total)
	return rep
}

// moduleRows aggregates ranked rows into per-module totals. A flat
// netlist degrades to a single "(top)" module, which is then omitted —
// it would only repeat the report totals.
func moduleRows(rows []BreakdownRow, total float64) []ModuleRow {
	byName := make(map[string]*ModuleRow)
	order := make([]string, 0, 8)
	for _, r := range rows {
		mod := ModuleOf(r.Name)
		mr := byName[mod]
		if mr == nil {
			mr = &ModuleRow{Module: mod}
			byName[mod] = mr
			order = append(order, mod)
		}
		mr.Nodes++
		mr.Toggles += r.Toggles
		mr.Dynamic += r.Dynamic
		mr.Leakage += r.Leakage
	}
	if len(order) <= 1 {
		return nil
	}
	out := make([]ModuleRow, 0, len(order))
	for _, mod := range order {
		mr := byName[mod]
		if total > 0 {
			mr.Share = (mr.Dynamic + mr.Leakage) / total
		}
		out = append(out, *mr)
	}
	sort.Slice(out, func(a, b int) bool {
		pa, pb := out[a].Dynamic+out[a].Leakage, out[b].Dynamic+out[b].Leakage
		if pa != pb {
			return pa > pb
		}
		return out[a].Module < out[b].Module
	})
	return out
}

// TopRows returns the first n ranked rows (all of them when n <= 0 or
// past the end) — the summary slice result views carry inline.
func (r *BreakdownReport) TopRows(n int) []BreakdownRow {
	if n <= 0 || n > len(r.Rows) {
		n = len(r.Rows)
	}
	return r.Rows[:n]
}
