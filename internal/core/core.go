package core

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/randtest"
	"repro/internal/sim"
	"repro/internal/stopping"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// Options collects the tunables of the estimation procedure. The zero
// value is not usable; start from DefaultOptions.
type Options struct {
	// Alpha is the significance level of the randomness test (Eq. 7).
	// The paper's experiments use 0.20.
	Alpha float64
	// SeqLen is the power sequence length fed to the randomness test at
	// each trial interval. The paper chooses 320 ("the gain in
	// statistical stability ... is marginal if it is any longer").
	SeqLen int
	// MaxInterval caps the trial independence interval; selection stops
	// there and marks the result Capped. A guard against non-mixing
	// behaviour rather than an expected outcome (paper observes
	// intervals of a few cycles).
	MaxInterval int
	// Spec is the accuracy specification (paper: 5% error, 0.99
	// confidence).
	Spec stopping.Spec
	// NewCriterion builds the stopping criterion (paper default:
	// order statistics, their ref [7]).
	NewCriterion stopping.Factory
	// Test is the randomness test (paper: ordinary runs test).
	Test randtest.Test
	// CheckEvery is the stopping-criterion cadence in samples. Table 1
	// sample sizes are all congruent to SeqLen modulo 32.
	CheckEvery int
	// MaxSamples aborts estimation if convergence is not reached; a
	// safety net, not a tuning knob.
	MaxSamples int
	// WarmupCycles is the number of initial hidden (zero-delay) cycles
	// before interval selection, letting the state process approach
	// stationarity from reset. Zero-delay cycles are two to three orders
	// of magnitude cheaper than sampled ones, so a generous default is
	// nearly free; estimates on slowly-relaxing circuits are biased by
	// the reset transient if this is too small.
	WarmupCycles int
	// ReuseTestSamples feeds the accepted randomness-test sequence into
	// the stopping criterion as its first SeqLen samples. Table 1's
	// sample sizes (all = 320 + k*32) indicate the paper does this.
	ReuseTestSamples bool
	// Replications is the number of independent replications
	// EstimateParallel runs concurrently (bit-packed, up to 64 per
	// machine word). 0 means the default of 64 — one full word. Ignored
	// by the serial estimators.
	Replications int
	// Workers bounds the goroutine pool of EstimateParallel. 0 means
	// GOMAXPROCS. The estimate is independent of the worker count:
	// replication seeds are fixed and samples are merged in replication
	// order.
	Workers int
	// Mode selects the power-observation scenario for sampled cycles:
	// general-delay (event-driven, glitches included — the paper's
	// configuration and the zero-value default) or zero-delay (functional
	// transitions only, bit-parallel across replication lanes). It is
	// honoured by the estimators that build their own sessions
	// (EstimateParallel and friends); the session-based estimators follow
	// the engine of the session they are handed (Testbench.NewSessionMode).
	Mode power.PowerMode
	// Backend selects the lane-parallel simulation backend of the
	// parallel estimators: the compiled word-level engine
	// (sim.BackendCompiled, the zero-value default), which compiles the
	// circuit once at first use and replays it, or the interpreted
	// packed sweep (sim.BackendPacked). The backends are
	// observation-equivalent — per-lane samples are bit-identical — so
	// this switch changes throughput, never results. Ignored by the
	// serial estimators (they are scalar).
	Backend sim.Backend
	// SessionWorkers > 1 runs each compiled session's per-level
	// instruction waves across this many goroutines, so one big-circuit
	// replication block can use several cores on top of the
	// replication-level pool. Result-invariant (deterministic
	// segment→worker mapping, disjoint writes per wave); ignored by the
	// packed backend. 0 or 1 keeps sessions single-threaded.
	SessionWorkers int
	// CacheBudget bounds the compiled backend's cache-blocked execution
	// scratch working set in bytes. 0 selects the default
	// (compile.DefaultBudgetBytes, ~L2/2); negative disables blocking.
	// Result-invariant; sessions whose register files already fit run
	// unblocked either way.
	CacheBudget int
	// Variance selects a variance-reduction transform for the sampling
	// phase (see internal/vr): antithetic replication pairing, or a
	// control-variate correction by the same-cycle zero-delay toggle
	// power. The zero value is the paper's plain estimator. Honoured by
	// the parallel estimators only (the transforms are defined over the
	// replication space); the serial estimators reject a non-plain mode.
	Variance vr.Spec
	// Breakdown enables per-node power attribution: the sampled phase
	// accumulates per-node transition counts alongside the power samples
	// and the Result carries a ranked dynamic+leakage report
	// (power.BreakdownReport). Counts are integers merged by addition, so
	// the report is bit-identical across backends, worker counts and any
	// partition of the replication space. Honoured by the parallel
	// estimators only (the serial ones have no power model in scope);
	// costs one popcount per node word per sampled cycle when on, nothing
	// when off.
	Breakdown bool
	// Progress, if non-nil, is called from the estimator goroutine after
	// every merged block of samples (roughly every CheckEvery) with a
	// running snapshot of the estimate. It must be cheap; it is never
	// called concurrently with itself. Long-running callers (the
	// dipe-server job manager) use it to surface live job status. It does
	// not affect the estimate.
	Progress func(Progress)
	// Metrics, if non-nil, receives convergence telemetry (rounds,
	// samples, half-width, samples/s) from the Merger after every merged
	// block — both the in-process sampling tail and the cluster
	// coordinator's merge loop flow through it. Like Progress it never
	// affects the estimate; nil costs one branch per block.
	Metrics *Metrics
}

// Progress is a point-in-time snapshot of a running estimation,
// delivered to Options.Progress as samples accumulate.
type Progress struct {
	// Samples is the number of power samples consumed by the stopping
	// criterion so far.
	Samples int
	// Power is the running estimate in watts.
	Power float64
	// HalfWidth is the current confidence half-width in watts.
	HalfWidth float64
	// Interval is the independence interval in use.
	Interval int
	// Rounds is the number of replication rounds merged so far.
	Rounds int
	// Elapsed is the wall-clock seconds since the sampling phase
	// started (this process's share of it, under a resumed job).
	Elapsed float64
}

// DefaultOptions returns the paper's experimental configuration.
func DefaultOptions() Options {
	return Options{
		Alpha:            0.20,
		SeqLen:           320,
		MaxInterval:      64,
		Spec:             stopping.DefaultSpec(),
		NewCriterion:     stopping.OrderStatisticsFactory,
		Test:             randtest.OrdinaryRuns{},
		CheckEvery:       32,
		MaxSamples:       1 << 21,
		WarmupCycles:     512,
		ReuseTestSamples: true,
	}
}

// Validate checks the options for usability.
func (o Options) Validate() error {
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return fmt.Errorf("core: significance level %g outside (0,1)", o.Alpha)
	}
	if o.SeqLen < 32 {
		return fmt.Errorf("core: sequence length %d too short for the runs test", o.SeqLen)
	}
	if o.MaxInterval < 0 {
		return fmt.Errorf("core: negative MaxInterval %d", o.MaxInterval)
	}
	if err := o.Spec.Validate(); err != nil {
		return err
	}
	if o.NewCriterion == nil {
		return fmt.Errorf("core: NewCriterion is nil")
	}
	if o.Test == nil {
		return fmt.Errorf("core: Test is nil")
	}
	if o.CheckEvery < 1 {
		return fmt.Errorf("core: CheckEvery %d must be >= 1", o.CheckEvery)
	}
	if o.MaxSamples < o.SeqLen+o.CheckEvery {
		return fmt.Errorf("core: MaxSamples %d below SeqLen+CheckEvery", o.MaxSamples)
	}
	if o.WarmupCycles < 0 {
		return fmt.Errorf("core: negative WarmupCycles %d", o.WarmupCycles)
	}
	if o.Replications < 0 {
		return fmt.Errorf("core: negative Replications %d", o.Replications)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: negative Workers %d", o.Workers)
	}
	if o.SessionWorkers < 0 {
		return fmt.Errorf("core: negative SessionWorkers %d", o.SessionWorkers)
	}
	if err := o.Mode.Validate(); err != nil {
		return err
	}
	if err := o.Backend.Validate(); err != nil {
		return err
	}
	reps := o.Replications
	if reps == 0 {
		reps = sim.MaxLanes
	}
	if err := o.Variance.Validate(reps, o.Mode.IsZeroDelay()); err != nil {
		return err
	}
	return nil
}

// Testbench bundles a circuit with its timing and power models — the
// "Load Circuit Description / Timing Model / Power Model" box of Fig. 1.
// One Testbench serves any number of sessions and estimator runs.
type Testbench struct {
	Circuit *netlist.Circuit
	Delays  *delay.Table
	Model   *power.Model
	weights []float64
}

// NewTestbench instruments a frozen circuit with the given models.
func NewTestbench(c *netlist.Circuit, dm delay.Model, cm power.CapModel, supply power.Supply) *Testbench {
	m := power.NewModel(c, cm, supply)
	return &Testbench{
		Circuit: c,
		Delays:  delay.BuildTable(c, dm),
		Model:   m,
		weights: m.Weights(),
	}
}

// DefaultTestbench instruments a circuit with the experiment defaults:
// fanout-loaded delays, the default capacitance model, 5 V / 20 MHz.
func DefaultTestbench(c *netlist.Circuit) *Testbench {
	return NewTestbench(c, delay.DefaultFanoutLoaded(), power.DefaultCapModel(), power.DefaultSupply())
}

// NewSession creates a simulation session over the testbench with the
// given input source and the default general-delay (event-driven) power
// engine.
func (tb *Testbench) NewSession(src vectors.Source) *sim.Session {
	return sim.NewSession(tb.Circuit, tb.Delays, src, tb.weights)
}

// Engine builds the scalar power engine realizing a power mode on this
// testbench: the event-driven simulator over the testbench's delay
// table for general-delay, the zero-delay toggle engine otherwise.
func (tb *Testbench) Engine(mode power.PowerMode) sim.PowerEngine {
	if mode.IsZeroDelay() {
		return sim.NewZeroDelayToggle(tb.Circuit)
	}
	return sim.NewEventDriven(tb.Circuit, tb.Delays)
}

// NewSessionMode creates a session whose sampled cycles are observed
// under the given power mode. The zero mode value gives exactly
// NewSession's general-delay behaviour.
func (tb *Testbench) NewSessionMode(src vectors.Source, mode power.PowerMode) *sim.Session {
	return sim.NewSessionEngine(tb.Circuit, tb.Engine(mode), src, tb.weights)
}

// Weights exposes the per-transition power weights (watts per
// transition); read-only.
func (tb *Testbench) Weights() []float64 { return tb.weights }
