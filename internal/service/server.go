package service

import (
	"errors"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config sizes the service. The zero value means defaults everywhere,
// so Config{} is a valid production starting point.
type Config struct {
	// CacheSize is the frozen-circuit LRU capacity (default
	// DefaultCacheSize).
	CacheSize int
	// Workers is the number of concurrently running estimation jobs
	// (default 2). Each job additionally fans out over its own
	// Options.Workers simulation goroutines.
	Workers int
	// QueueSize bounds pending (queued, not yet running) jobs
	// (default 64); Submit beyond it returns ErrQueueFull.
	QueueSize int
	// Dispatcher selects the execution substrate for jobs: nil means
	// the in-process local dispatcher; a cluster.Coordinator shards jobs
	// across dipe-worker processes instead.
	Dispatcher Dispatcher
	// Store, when non-nil, makes the job pool durable: every job is
	// journaled to the store's state directory and a restarted service
	// resumes journaled in-flight jobs from their checkpoints. Open one
	// with OpenJobStore; the service owns it from here (closed on
	// Close).
	Store *JobStore
	// Obs, when non-nil, is the metrics registry the service's and the
	// local estimator's instruments register on; the caller typically
	// also mounts Obs.Handler() at /metrics. Nil disables nothing
	// visible — an internal registry keeps /v1/stats counters real.
	Obs *obs.Registry
	// Log, when non-nil, receives structured job-lifecycle events.
	Log *obs.Logger
}

// DefaultConfig returns the default sizing.
func DefaultConfig() Config { return Config{} }

// Service bundles the circuit registry, the job pool and the HTTP API.
// Create one with New, mount Handler on an http.Server, and Close on
// shutdown.
type Service struct {
	Registry *Registry
	Jobs     *Manager
	dispatch Dispatcher
	mux      *http.ServeMux
	closing  sync.Once
}

// New builds a service from the config and starts its worker pool.
func New(cfg Config) *Service {
	dispatch := cfg.Dispatcher
	if dispatch == nil {
		// The local estimator's convergence telemetry registers here; a
		// cluster dispatcher wires its own (CoordinatorConfig.Obs).
		dispatch = localDispatcher{met: core.NewCoreMetrics(cfg.Obs)}
	}
	s := &Service{Registry: NewRegistry(cfg.CacheSize), dispatch: dispatch}
	if ra, ok := dispatch.(RegistryAware); ok {
		ra.SetRegistry(s.Registry)
	}
	s.Jobs = NewManagerObs(s.Registry, dispatch, cfg.Workers, cfg.QueueSize, cfg.Store, cfg.Obs, cfg.Log)
	s.mux = s.routes()
	return s
}

// Handler returns the HTTP API (see routes for the endpoint table).
func (s *Service) Handler() http.Handler { return s.mux }

// Ready reports whether the service can run jobs right now: the
// registry and job pool must exist and the dispatcher must be ready (in
// cluster mode, at least one worker reachable). GET /readyz surfaces
// the error; liveness (/healthz) stays green regardless, so an
// orchestrator restarts the process only when it is actually dead, not
// merely awaiting workers.
func (s *Service) Ready() error {
	if s.Registry == nil || s.Jobs == nil {
		return errors.New("service: not initialised")
	}
	return s.dispatch.Ready()
}

// Close drains the job pool: further submissions are rejected, live
// jobs are cancelled, and the call blocks until every in-flight
// estimation goroutine has retired — callers can safely proceed to
// http.Server.Shutdown knowing no estimate leaks. Idempotent.
func (s *Service) Close() { s.closing.Do(s.Jobs.Close) }
