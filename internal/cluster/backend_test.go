package cluster

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/service"
	"repro/internal/sim"
)

// TestClusterCompiledBackendGolden: the golden cross-backend guarantee
// over the wire — a cluster job on the compiled backend, with one and
// with two workers, reproduces the single-process *packed* reference
// bit for bit. Backend selection travels in the run request, is
// reported in the result, and cannot move the estimate.
func TestClusterCompiledBackendGolden(t *testing.T) {
	w1, w2 := NewWorker(WorkerConfig{}), NewWorker(WorkerConfig{})
	s1 := httptest.NewServer(w1.Handler())
	defer s1.Close()
	s2 := httptest.NewServer(w2.Handler())
	defer s2.Close()

	reg := service.NewRegistry(0)

	packedReq := service.JobRequest{
		Circuit: "s298", Seed: 404,
		Options: service.OptionsSpec{Replications: 96, Workers: 2, PowerMode: "zero-delay"},
	}
	want := reference(t, reg, packedReq)
	compiledReq := packedReq
	compiledReq.Options.Backend = string(sim.BackendCompiled)

	tb, err := reg.Testbench(compiledReq.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		urls []string
	}{
		{"one-worker", []string{s1.URL}},
		{"two-workers", []string{s1.URL, s2.URL}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			coord := newTestCoordinator(t, reg, tc.urls...)
			got, err := coord.Estimate(context.Background(), tb, compiledReq, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Engine != sim.EngineCompiledZeroDelay {
				t.Errorf("engine %q, want %q", got.Engine, sim.EngineCompiledZeroDelay)
			}
			if got.Backend != string(sim.BackendCompiled) {
				t.Errorf("backend %q, want %q", got.Backend, sim.BackendCompiled)
			}
			// Everything but the engine/backend labels must equal the
			// packed single-process run.
			got.Engine, got.Backend = want.Engine, want.Backend
			sameResult(t, got, want, tc.name)
			if !got.Converged {
				t.Fatal("cluster run did not converge")
			}
		})
	}
}

// TestRunRequestBackendValidation: unknown backends are rejected at the
// protocol boundary, before any simulation starts.
func TestRunRequestBackendValidation(t *testing.T) {
	req := RunRequest{
		Hash: "abc", Interval: 1, RepHi: 4, Rounds: 1,
		Backend: "vectorized",
	}
	if err := req.Validate(); err == nil {
		t.Fatal("bad backend accepted")
	}
	req.Backend = "compiled"
	if err := req.Validate(); err != nil {
		t.Fatalf("compiled backend rejected: %v", err)
	}
}
