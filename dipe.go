package dipe

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/bench89"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/markov"
	"repro/internal/maxpower"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/proba"
	"repro/internal/randtest"
	"repro/internal/refsim"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stopping"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// Circuit is a frozen gate-level sequential circuit.
type Circuit = netlist.Circuit

// Options configures the DIPE estimation procedure (significance level,
// sequence length, accuracy specification, stopping criterion, ...).
type Options = core.Options

// Result is the outcome of one estimation run.
type Result = core.Result

// Testbench bundles a circuit with timing and power models.
type Testbench = core.Testbench

// Session drives a circuit through clock cycles (two-phase simulation).
type Session = sim.Session

// Source produces primary-input patterns, one per clock cycle.
type Source = vectors.Source

// Spec is the accuracy specification: relative error bound at a
// confidence level.
type Spec = stopping.Spec

// Criterion is a pluggable stopping criterion.
type Criterion = stopping.Criterion

// IntervalSelection is the outcome of the independence-interval
// selection procedure (Fig. 2 of the paper).
type IntervalSelection = core.IntervalSelection

// ZPoint is one point of a z-statistic-vs-interval trace (Fig. 3).
type ZPoint = core.ZPoint

// Reference is a long-run consecutive-cycle reference estimate (the
// paper's "SIM" column).
type Reference = refsim.Result

// DefaultOptions returns the paper's experimental configuration:
// alpha = 0.20, sequence length 320, 5% error at 0.99 confidence,
// order-statistics stopping criterion, ordinary runs test.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultSpec returns the paper's accuracy specification (5%, 0.99).
func DefaultSpec() Spec { return stopping.DefaultSpec() }

// NewTestbench instruments a circuit with the default models: fanout-
// loaded gate delays, fanout-proportional load capacitances, 5 V supply
// and 20 MHz clock (the paper's operating point).
func NewTestbench(c *Circuit) *Testbench { return core.DefaultTestbench(c) }

// NewCustomTestbench instruments a circuit with explicit models.
func NewCustomTestbench(c *Circuit, dm delay.Model, cm power.CapModel, s power.Supply) *Testbench {
	return core.NewTestbench(c, dm, cm, s)
}

// DelayModel maps gate structure to propagation delay.
type DelayModel = delay.Model

// CapModel assigns load capacitances from fanout structure.
type CapModel = power.CapModel

// Supply is the electrical operating point (VDD, clock period).
type Supply = power.Supply

// Delay models for NewCustomTestbench.
var (
	// ZeroDelayModel makes every gate switch instantly: functional
	// transitions only, no glitches.
	ZeroDelayModel DelayModel = delay.Zero{}
	// UnitDelayModel assigns one time unit per gate.
	UnitDelayModel DelayModel = delay.Unit{}
	// FanoutDelayModel is the default general-delay model
	// (d = 200ps + 100ps × fanout).
	FanoutDelayModel DelayModel = delay.DefaultFanoutLoaded()
)

// PowerMode selects the power-observation scenario for sampled cycles:
// general-delay (event-driven, glitches included — the paper's default)
// or zero-delay (functional transitions only, bit-parallel across
// replication lanes so sampled cycles run at packed-simulation
// throughput). Set Options.Mode, or build sessions with
// Testbench.NewSessionMode. Result.Engine and Result.DelayModel record
// what actually observed a run's sampled cycles.
type PowerMode = power.PowerMode

// Power modes for Options.Mode / Testbench.NewSessionMode.
const (
	// GeneralDelayMode counts every transition, glitches included, with
	// the event-driven simulator (the default; equals the zero value).
	GeneralDelayMode = power.ModeGeneralDelay
	// ZeroDelayMode counts functional transitions only, with the packed
	// 64-lane engine under EstimateParallel.
	ZeroDelayMode = power.ModeZeroDelay
)

// ParsePowerMode resolves a user-supplied mode string ("general-delay",
// "zero-delay", or the aliases "general"/"zero"; empty means
// general-delay).
func ParsePowerMode(s string) (PowerMode, error) { return power.ParseMode(s) }

// PowerModes lists the valid canonical power modes.
func PowerModes() []PowerMode { return power.Modes() }

// BreakdownReport is the per-node power attribution of an estimation
// run: ranked per-gate dynamic power from accumulated transition counts
// plus static leakage, with module-level aggregation for hierarchical
// names. Enable with Options.Breakdown under EstimateParallel; the
// report arrives in Result.Breakdown.
type BreakdownReport = power.BreakdownReport

// BreakdownRow is one node's share of the circuit's power in a
// BreakdownReport.
type BreakdownRow = power.BreakdownRow

// ModuleRow aggregates breakdown rows by hierarchical module prefix.
type ModuleRow = power.ModuleRow

// NodeClass tags what a breakdown row attributes power to ("gate",
// "latch"; primary inputs and constants are excluded from ranking).
type NodeClass = power.NodeClass

// LeakModel parameterizes the per-gate static leakage component of the
// power model (see NewCustomTestbench / power.NewModelLeak).
type LeakModel = power.LeakModel

// DefaultLeakModel returns the default static-leakage coefficients.
func DefaultLeakModel() LeakModel { return power.DefaultLeakModel() }

// Backend names a lane-parallel simulation backend for the parallel
// estimators' sampling phase. The backends are observation-equivalent —
// per-lane samples are bit-identical — so Options.Backend is purely a
// throughput knob; Result.Backend records what a run used.
type Backend = sim.Backend

// Simulation backends for Options.Backend.
const (
	// BackendPacked is the interpreted bit-parallel simulator (the
	// default; equals the zero value): one levelized sweep per cycle,
	// 64 replication lanes per machine word.
	BackendPacked = sim.BackendPacked
	// BackendCompiled compiles the circuit once into straight-line
	// word-level bytecode (fused gate chains, dead-fanout elimination)
	// and replays it with up to 512 lanes per step.
	BackendCompiled = sim.BackendCompiled
)

// ParseBackend resolves a user-supplied backend string ("packed",
// "compiled"; empty means packed).
func ParseBackend(s string) (Backend, error) { return sim.ParseBackend(s) }

// Backends lists the valid canonical simulation backends.
func Backends() []Backend { return sim.Backends() }

// VarianceMode names a variance-reduction transform for the sampling
// phase; see internal/vr for the statistics.
type VarianceMode = vr.Mode

// VarianceSpec configures variance reduction via Options.Variance: the
// mode plus optional calibration overrides. The zero value is the plain
// estimator.
type VarianceSpec = vr.Spec

// Variance-reduction modes for Options.Variance.Mode.
const (
	// VarianceNone is the paper's plain estimator (the zero value).
	VarianceNone = vr.ModeNone
	// VarianceAntithetic pairs replication lanes with mirrored input
	// streams and feeds the stopping criterion pair means. The packed
	// simulator makes the mirrored lanes free: each 64-lane word-step
	// yields 32 negatively correlated pairs.
	VarianceAntithetic = vr.ModeAntithetic
	// VarianceControlVariate subtracts the regression-scaled, centred
	// same-cycle zero-delay toggle power from every general-delay
	// sample. The coefficient is estimated from the phase-1 sequence and
	// the covariate mean from a cheap packed zero-delay pre-run.
	VarianceControlVariate = vr.ModeControlVariate
)

// ParseVarianceMode resolves a user-supplied variance-reduction mode
// string ("none", "antithetic", "control-variate", or the aliases
// "anti"/"cv"; empty means none).
func ParseVarianceMode(s string) (VarianceMode, error) { return vr.ParseMode(s) }

// VarianceModes lists the valid canonical variance-reduction modes.
func VarianceModes() []VarianceMode { return vr.Modes() }

// AntitheticSource returns the antithetic twin of a freshly built
// stochastic source: same configuration and seed, every underlying
// uniform mirrored (u -> 1-u), so the twin keeps the exact input
// distribution while anticorrelating with the original draw for draw.
func AntitheticSource(s Source) (Source, error) { return vectors.Antithetic(s) }

// DefaultCapModel returns the default load-capacitance coefficients
// (30 fF + 10 fF per fanout).
func DefaultCapModel() CapModel { return power.DefaultCapModel() }

// DefaultSupply returns the paper's operating point: 5 V, 20 MHz.
func DefaultSupply() Supply { return power.DefaultSupply() }

// Estimate runs the full DIPE flow on a session: warm-up, independence
// interval selection, two-phase sampling, stopping criterion.
func Estimate(s *Session, opts Options) (Result, error) { return core.Estimate(s, opts) }

// SourceFactory builds an independent input source for a given seed;
// estimators that run many replications use it to give every
// replication fresh, reproducible randomness.
type SourceFactory = vectors.Factory

// NewIIDSourceFactory returns a factory of i.i.d. Bernoulli(p) sources.
func NewIIDSourceFactory(width int, p float64) SourceFactory {
	return vectors.IIDFactory(width, p)
}

// NewLagCorrelatedSourceFactory returns a factory of lag-1 Markov
// sources (see NewLagCorrelatedSource).
func NewLagCorrelatedSourceFactory(width int, p, rho float64) SourceFactory {
	return vectors.LagCorrelatedFactory(width, p, rho)
}

// EstimateParallel runs the DIPE flow with Options.Replications
// independent replications advanced concurrently: hidden cycles run on
// a bit-packed zero-delay simulator (64 replications per machine word)
// and sampled cycles on the engine Options.Mode selects — per-shard
// event-driven simulators under the default general-delay mode, or
// word-level packed transition counting under ZeroDelayMode (sampled
// cycles then cost the same as hidden ones). Replication r is seeded
// baseSeed+1+r (interval selection uses baseSeed), and samples merge
// into the stopping criterion in a fixed order, so results are
// reproducible and independent of the worker count.
func EstimateParallel(tb *Testbench, src SourceFactory, baseSeed int64, opts Options) (Result, error) {
	return core.EstimateParallel(tb, src, baseSeed, opts)
}

// EstimateParallelWithInterval is EstimateParallel at a fixed
// independence interval, bypassing selection.
func EstimateParallelWithInterval(tb *Testbench, src SourceFactory, baseSeed int64, opts Options, interval int) (Result, error) {
	return core.EstimateParallelWithInterval(tb, src, baseSeed, opts, interval)
}

// EstimateParallelCtx is EstimateParallel with cancellation: the
// sampling loop checks ctx between stopping-criterion blocks and
// returns the partial (unconverged) result together with ctx.Err() when
// the context is cancelled. Combine with Options.Progress for live
// status of long runs.
func EstimateParallelCtx(ctx context.Context, tb *Testbench, src SourceFactory, baseSeed int64, opts Options) (Result, error) {
	return core.EstimateParallelCtx(ctx, tb, src, baseSeed, opts)
}

// Progress is a point-in-time snapshot of a running estimation,
// delivered to Options.Progress as samples accumulate.
type Progress = core.Progress

// ServerConfig sizes the estimation service: frozen-circuit cache
// capacity, concurrent-job pool width, pending-queue bound, and the
// job dispatcher (nil = in-process; a ClusterCoordinator shards jobs
// across dipe-worker processes). The zero value means defaults
// everywhere.
type ServerConfig = service.Config

// Server is a long-running power-estimation service: a circuit registry
// with an LRU cache of frozen circuits, an asynchronous job pool over
// EstimateParallel, and an HTTP/JSON API (submit/poll/wait/cancel,
// batch fan-out, netlist upload, statistics). cmd/dipe-server is a thin
// wrapper around it; see internal/service for the endpoint table.
type Server = service.Service

// NewServer builds an estimation service and starts its worker pool.
// Mount Handler() on an http.Server (or httptest.Server) and Close()
// on shutdown.
func NewServer(cfg ServerConfig) *Server { return service.New(cfg) }

// DefaultServerConfig returns the default service sizing.
func DefaultServerConfig() ServerConfig { return service.DefaultConfig() }

// ClusterConfig configures a distributed-estimation coordinator:
// initial worker URLs, heartbeat cadence, retry bound.
type ClusterConfig = cluster.CoordinatorConfig

// ClusterCoordinator shards estimation jobs across dipe-worker
// processes. It plugs into ServerConfig.Dispatcher, making every job
// submitted to the server run on the cluster — bit-identically to
// local execution (same replication seeds, same merge order, same
// pooled stopping decision). Workers can be listed up front or
// registered at runtime (AddWorker / POST /v1/cluster/workers).
type ClusterCoordinator = cluster.Coordinator

// NewClusterCoordinator builds a cluster dispatcher and starts its
// worker heartbeat; Close it on shutdown. Wire it into a server with
//
//	coord, _ := dipe.NewClusterCoordinator(dipe.ClusterConfig{Workers: urls})
//	srv := dipe.NewServer(dipe.ServerConfig{Dispatcher: coord})
func NewClusterCoordinator(cfg ClusterConfig) (*ClusterCoordinator, error) {
	return cluster.NewCoordinator(cfg)
}

// ClusterWorkerConfig sizes a cluster worker (installed-circuit table).
type ClusterWorkerConfig = cluster.WorkerConfig

// ClusterWorker is the stateless sampling node of an estimation
// cluster; cmd/dipe-worker is a thin wrapper around it. Mount
// Handler() on an http.Server reachable by the coordinator.
type ClusterWorker = cluster.Worker

// NewClusterWorker builds a cluster worker service.
func NewClusterWorker(cfg ClusterWorkerConfig) *ClusterWorker { return cluster.NewWorker(cfg) }

// EstimateWithInterval runs the sampling phase at a fixed interval,
// bypassing selection (the fixed-warm-up baseline of the paper's ref [9]).
func EstimateWithInterval(s *Session, opts Options, interval int) (Result, error) {
	return core.EstimateWithInterval(s, opts, interval)
}

// SelectInterval runs only the independence-interval selection procedure.
func SelectInterval(s *Session, opts Options) (IntervalSelection, error) {
	return core.SelectInterval(s, opts)
}

// ZTrace collects the runs-test z statistic at trial intervals 0..maxK
// (the data behind Fig. 3).
func ZTrace(s *Session, opts Options, maxK, seqLen int) ([]ZPoint, error) {
	return core.ZTrace(s, opts, maxK, seqLen)
}

// Diagnostics audits a power sample collected at a fixed interval with a
// battery of randomness tests and the autocorrelation function.
type Diagnostics = core.Diagnostics

// Diagnose collects a fresh n-sample power sequence at the given
// interval and audits its randomness.
func Diagnose(s *Session, interval, n int) (Diagnostics, error) {
	return core.Diagnose(s, interval, n)
}

// EstimateBatchMeans is the consecutive-cycle baseline (the paper's ref
// [1] style): every cycle is simulated general-delay; batch means feed
// the stopping criterion.
func EstimateBatchMeans(s *Session, opts Options, batch int) (Result, error) {
	return core.EstimateBatchMeans(s, opts, batch)
}

// Reference simulation: mean power over `cycles` consecutive cycles
// after `warmup` hidden cycles.
func RunReference(s *Session, warmup, cycles int) Reference { return refsim.Run(s, warmup, cycles) }

// Benchmark returns a built-in benchmark circuit: the genuine s27, or a
// deterministic synthetic circuit matching the published ISCAS89
// signature (s208 ... s15850). See internal/bench89 for the substitution
// rationale.
func Benchmark(name string) (*Circuit, error) { return bench89.Get(name) }

// BenchmarkNames lists the built-in benchmark names in the paper's table
// order (s27 excluded, as in the paper).
func BenchmarkNames() []string { return bench89.Names() }

// ParseBench reads a circuit in ISCAS89 .bench format.
func ParseBench(name string, r io.Reader) (*Circuit, error) { return netlist.ParseBench(name, r) }

// LoadBench reads a .bench file from disk.
func LoadBench(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dipe: %w", err)
	}
	defer f.Close()
	return netlist.ParseBench(path, f)
}

// WriteBench writes a circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return netlist.WriteBench(w, c) }

// ParseBLIF reads a circuit in Berkeley Logic Interchange Format
// (structural subset: .inputs/.outputs/.latch/.names); covers are
// synthesized into the gate set.
func ParseBLIF(name string, r io.Reader) (*Circuit, error) { return netlist.ParseBLIF(name, r) }

// LoadBLIF reads a .blif file from disk.
func LoadBLIF(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dipe: %w", err)
	}
	defer f.Close()
	return netlist.ParseBLIF(path, f)
}

// NewIIDSource returns a source whose bits are independent Bernoulli(p)
// variables — the paper's input model with p = 0.5.
func NewIIDSource(width int, p float64, seed int64) Source {
	return vectors.NewIID(width, p, seed)
}

// NewLagCorrelatedSource returns a temporally correlated source: each
// bit is a two-state Markov chain with stationary probability p and
// lag-1 autocorrelation rho.
func NewLagCorrelatedSource(width int, p, rho float64, seed int64) Source {
	return vectors.NewLagCorrelated(width, p, rho, seed)
}

// NewSpatialSource returns a spatially correlated source (groups of bits
// share a random driver).
func NewSpatialSource(width, groupSize int, p, flip float64, seed int64) Source {
	return vectors.NewSpatial(width, groupSize, p, flip, seed)
}

// Stopping-criterion factories, selectable via Options.NewCriterion.
var (
	// NormalCriterion is the CLT-based parametric criterion (ref [11]).
	NormalCriterion = stopping.NormalFactory
	// KSCriterion is the Kolmogorov–Smirnov/DKW band criterion (ref [6]).
	KSCriterion = stopping.KSFactory
	// OrderStatisticsCriterion is the distribution-free order-statistics
	// criterion (ref [7]), the paper's default.
	OrderStatisticsCriterion = stopping.OrderStatisticsFactory
)

// Randomness tests, selectable via Options.Test.
var (
	// OrdinaryRunsTest is the paper's runs test about the median.
	OrdinaryRunsTest = randtest.OrdinaryRuns{}
	// UpDownRunsTest is the runs-up-and-down variant.
	UpDownRunsTest = randtest.UpDownRuns{}
	// VonNeumannTest is the serial-correlation ratio test.
	VonNeumannTest = randtest.VonNeumann{}
	// LjungBoxTest pools autocorrelation evidence over multiple lags.
	LjungBoxTest = randtest.LjungBox{}
)

// CompositeTest builds a battery that accepts only if every component
// test accepts (worst |z| is reported).
func CompositeTest(tests ...randtest.Test) randtest.Test {
	return randtest.Composite{Tests: tests}
}

// FormatWatts renders a power value with an engineering prefix.
func FormatWatts(w float64) string { return power.FormatWatts(w) }

// MaxPowerOptions configures the maximum-power search.
type MaxPowerOptions = maxpower.Options

// MaxPowerResult is the peak cycle found by a maximum-power search.
type MaxPowerResult = maxpower.Result

// MaxPower searches for the single-cycle peak power of the circuit
// (simulation-based maximum power estimation, the companion problem of
// the paper's ref [8]) using bit-flip hill climbing with restarts.
func MaxPower(tb *Testbench, opts MaxPowerOptions) (MaxPowerResult, error) {
	return maxpower.HillClimb(tb.Circuit, tb.Delays, tb.Weights(), opts)
}

// MaxPowerRandom is the Monte-Carlo baseline: best of Budget random
// cycles.
func MaxPowerRandom(tb *Testbench, opts MaxPowerOptions) (MaxPowerResult, error) {
	return maxpower.RandomSearch(tb.Circuit, tb.Delays, tb.Weights(), opts)
}

// DefaultMaxPowerOptions returns a search budget adequate for benchmark
// circuits.
func DefaultMaxPowerOptions() MaxPowerOptions { return maxpower.DefaultOptions() }

// SignalStatistics is the probabilistic baseline's per-node output.
type SignalStatistics = proba.Result

// AnalyzeProbabilities runs the classical signal-probability power
// estimation baseline (the paper's refs [2-4] style): probability
// propagation under spatial independence with latch fixpoint iteration.
// Its Power method converts activities into watts. See internal/proba
// for the documented approximations.
func AnalyzeProbabilities(c *Circuit, inputP []float64) (*SignalStatistics, error) {
	return proba.Analyze(c, inputP, proba.DefaultOptions())
}

// STG is a state transition graph with transition probabilities — the
// substrate of Section III's exact "first approach". Its methods solve
// the Chapman–Kolmogorov equations (Stationary) and bound warm-up
// periods (MixingTime).
type STG = markov.STG

// ExtractSTG enumerates the reachable state transition graph of a small
// sequential circuit under mutually independent Bernoulli(p[i]) inputs.
// It fails beyond 20 latches / 16 inputs — deliberately mirroring the
// exponential wall that motivates the statistical approach.
func ExtractSTG(c *Circuit, p []float64) (*STG, error) { return markov.Extract(c, p) }

// StateSamplingResult is the outcome of the exact state-sampling
// estimator.
type StateSamplingResult = markov.EstimateResult

// EstimateByStateSampling runs the paper's Section III "first approach":
// i.i.d. power samples drawn directly from the stationary state
// distribution of the extracted STG. Only feasible on small circuits.
func EstimateByStateSampling(s *Session, g *STG, stationary, inputP []float64,
	spec Spec, newCriterion func(Spec) Criterion, seed int64) (StateSamplingResult, error) {
	return markov.EstimateByStateSampling(s, g, stationary, inputP, spec, newCriterion, seed, 32, 1<<21)
}
