package vectors

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// collectBit gathers n observations of bit `bit` from a source as 0/1.
func collectBit(s Source, bit, n int) []float64 {
	buf := make([]bool, s.Width())
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s.Next(buf)
		if buf[bit] {
			out[i] = 1
		}
	}
	return out
}

func TestIIDSignalProbability(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		s := NewIID(4, p, 1)
		xs := collectBit(s, 2, 20000)
		if m := stats.Mean(xs); math.Abs(m-p) > 0.02 {
			t.Errorf("p=%g: observed %g", p, m)
		}
	}
}

func TestIIDNoTemporalCorrelation(t *testing.T) {
	s := NewIID(1, 0.5, 2)
	xs := collectBit(s, 0, 50000)
	acf := stats.Autocorrelation(xs, 3)
	for k := 1; k <= 3; k++ {
		if math.Abs(acf[k]) > 0.02 {
			t.Errorf("iid acf[%d] = %g", k, acf[k])
		}
	}
}

func TestIIDDeterministicPerSeed(t *testing.T) {
	a := collectBit(NewIID(3, 0.5, 7), 1, 100)
	b := collectBit(NewIID(3, 0.5, 7), 1, 100)
	c := collectBit(NewIID(3, 0.5, 8), 1, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestIIDPerBitProbabilities(t *testing.T) {
	s := NewIIDPerBit([]float64{0.0, 1.0, 0.5}, 3)
	buf := make([]bool, 3)
	ones := 0
	for i := 0; i < 1000; i++ {
		s.Next(buf)
		if buf[0] {
			t.Fatal("p=0 bit fired")
		}
		if !buf[1] {
			t.Fatal("p=1 bit did not fire")
		}
		if buf[2] {
			ones++
		}
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("p=0.5 bit fired %d/1000", ones)
	}
}

func TestIIDRejectsBadProbability(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p=1.5")
		}
	}()
	NewIID(2, 1.5, 1)
}

func TestLagCorrelatedStationaryProbability(t *testing.T) {
	for _, p := range []float64{0.3, 0.5, 0.7} {
		s := NewLagCorrelated(2, p, 0.8, 4)
		xs := collectBit(s, 0, 40000)
		if m := stats.Mean(xs); math.Abs(m-p) > 0.03 {
			t.Errorf("p=%g rho=0.8: observed mean %g", p, m)
		}
	}
}

func TestLagCorrelatedAutocorrelation(t *testing.T) {
	for _, rho := range []float64{0.0, 0.5, 0.9} {
		s := NewLagCorrelated(1, 0.5, rho, 5)
		xs := collectBit(s, 0, 60000)
		acf := stats.Autocorrelation(xs, 2)
		if math.Abs(acf[1]-rho) > 0.03 {
			t.Errorf("rho=%g: acf[1] = %g", rho, acf[1])
		}
		// Markov chain: acf[2] = rho^2.
		if math.Abs(acf[2]-rho*rho) > 0.03 {
			t.Errorf("rho=%g: acf[2] = %g, want %g", rho, acf[2], rho*rho)
		}
	}
}

func TestLagCorrelatedRejectsBadRho(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rho=1")
		}
	}()
	NewLagCorrelated(1, 0.5, 1.0, 1)
}

func TestSpatialWithinGroupCorrelation(t *testing.T) {
	s := NewSpatial(4, 2, 0.5, 0.0, 6)
	buf := make([]bool, 4)
	for i := 0; i < 1000; i++ {
		s.Next(buf)
		if buf[0] != buf[1] || buf[2] != buf[3] {
			t.Fatal("flip=0 group bits differ")
		}
	}
	// With flip, bits within a group should agree most of the time.
	s = NewSpatial(2, 2, 0.5, 0.1, 7)
	agree := 0
	for i := 0; i < 5000; i++ {
		s.Next(buf[:2])
		if buf[0] == buf[1] {
			agree++
		}
	}
	// P(agree) = (1-f)^2 + f^2 = 0.82.
	if rate := float64(agree) / 5000; math.Abs(rate-0.82) > 0.03 {
		t.Fatalf("agreement rate %g, want ~0.82", rate)
	}
}

func TestSpatialGroupsIndependent(t *testing.T) {
	s := NewSpatial(2, 1, 0.5, 0, 8)
	buf := make([]bool, 2)
	joint := 0
	n := 20000
	for i := 0; i < n; i++ {
		s.Next(buf)
		if buf[0] && buf[1] {
			joint++
		}
	}
	if rate := float64(joint) / float64(n); math.Abs(rate-0.25) > 0.02 {
		t.Fatalf("P(b0 & b1) = %g, want 0.25", rate)
	}
}

func TestTraceReplayAndWrap(t *testing.T) {
	tr, err := NewTrace([][]bool{{true, false}, {false, true}, {true, true}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]bool, 2)
	want := [][]bool{{true, false}, {false, true}, {true, true}, {true, false}}
	for i, w := range want {
		tr.Next(buf)
		if buf[0] != w[0] || buf[1] != w[1] {
			t.Fatalf("pattern %d = %v, want %v", i, buf, w)
		}
	}
	if tr.Len() != 3 || tr.Width() != 2 {
		t.Fatalf("Len=%d Width=%d", tr.Len(), tr.Width())
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace([][]bool{{true}, {true, false}}); err == nil {
		t.Error("ragged trace accepted")
	}
}

func TestTraceCopiesPatterns(t *testing.T) {
	src := [][]bool{{true}}
	tr, _ := NewTrace(src)
	src[0][0] = false
	buf := make([]bool, 1)
	tr.Next(buf)
	if !buf[0] {
		t.Fatal("trace aliases caller's slice")
	}
}

func TestFactoriesProduceIndependentSources(t *testing.T) {
	for _, f := range []Factory{
		IIDFactory(2, 0.5),
		LagCorrelatedFactory(2, 0.5, 0.5),
		SpatialFactory(2, 2, 0.5, 0.1),
	} {
		a := f(1)
		b := f(1)
		if a == b {
			t.Fatal("factory returned shared source")
		}
		// Same seed, same stream.
		xa := collectBit(a, 0, 50)
		xb := collectBit(b, 0, 50)
		for i := range xa {
			if xa[i] != xb[i] {
				t.Fatal("factory not deterministic per seed")
			}
		}
	}
}

func TestNames(t *testing.T) {
	names := []string{
		NewIID(1, 0.5, 1).Name(),
		NewLagCorrelated(1, 0.5, 0.5, 1).Name(),
		NewSpatial(2, 2, 0.5, 0.1, 1).Name(),
	}
	tr, _ := NewTrace([][]bool{{true}})
	names = append(names, tr.Name())
	for _, n := range names {
		if n == "" {
			t.Fatal("empty source name")
		}
	}
}
