// Package sim provides the gate-level simulators the estimation
// technique relies on (Section IV of the paper):
//
//   - a zero-delay levelized functional simulator, used to advance the
//     circuit state cheaply through the independence interval,
//   - a bit-parallel 64-lane variant of it (PackedZeroDelay), which
//     advances 64 independent replications per machine word, and
//   - an event-driven general-delay simulator with inertial gate delays,
//     used on sampled cycles to observe every transition (including
//     glitches) for the power computation of Eq. 1.
//
// Power observation itself is pluggable behind the PowerEngine
// interface: a sampled cycle is "apply the new (pattern, state), settle,
// return the weighted transition sum of Eq. 1", and which transitions
// are counted is the engine's delay-model scenario (power.PowerMode at
// the estimator level). *EventDriven realizes the paper's general-delay
// observation (glitches included); *ZeroDelayToggle realizes zero-delay
// observation (at most one functional toggle per node, computed as a
// settled-value diff). Sessions take an engine at construction
// (NewSessionEngine) and default to event-driven (NewSession).
//
// The sampled phase is bit-parallel in the zero-delay scenario:
// PackedSession.StepSampled computes all 64 lanes' powers from one
// packed sweep plus an XOR diff pass over the value words (each set bit
// routes its node's weight to its lane's sum) — a sampled cycle then
// costs the same order as a hidden one. Lane k of a packed sampled step
// is bit-identical, float summation order included, to a scalar
// ZeroDelayToggle session over the same source; the property tests
// assert this for every lane. PackedSession.StepSampledWith keeps the
// general-delay path: each lane is extracted into a scalar engine for
// exact glitch accounting.
//
// The scalar simulators operate on the same dense value array, so a
// session can interleave them cycle by cycle; the packed simulator keeps
// one uint64 word per node and can extract any single lane into the
// scalar representation. All inner loops run over the circuit's frozen
// CSR view (netlist.CSR): flat kind/level/fanin/fanout arrays instead of
// per-Node slice chasing.
package sim
