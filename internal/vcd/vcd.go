package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Writer emits a VCD file for a subset of a circuit's nodes.
type Writer struct {
	w        *bufio.Writer
	c        *netlist.Circuit
	ids      map[netlist.NodeID]string // VCD identifier codes
	watched  []netlist.NodeID
	period   delay.Picoseconds
	cycle    int64
	lastTime int64 // last VCD timestamp emitted
	headered bool
	err      error
}

// New creates a VCD writer for the given nodes (nil = all nodes).
// period is the clock period in picoseconds; each simulated cycle
// occupies one period on the VCD time axis with 1 ps resolution.
func New(w io.Writer, c *netlist.Circuit, nodes []netlist.NodeID, period delay.Picoseconds) *Writer {
	if period <= 0 {
		period = 50_000 // the paper's 20 MHz clock
	}
	if nodes == nil {
		nodes = make([]netlist.NodeID, len(c.Nodes))
		for i := range c.Nodes {
			nodes[i] = netlist.NodeID(i)
		}
	}
	watched := append([]netlist.NodeID(nil), nodes...)
	sort.Slice(watched, func(i, j int) bool { return watched[i] < watched[j] })
	v := &Writer{
		w:       bufio.NewWriter(w),
		c:       c,
		ids:     make(map[netlist.NodeID]string, len(watched)),
		watched: watched,
		period:  period,
	}
	for i, id := range watched {
		v.ids[id] = idCode(i)
	}
	return v
}

// idCode produces the compact printable VCD identifier for index i
// (base-94 over '!'..'~').
func idCode(i int) string {
	var buf []byte
	for {
		buf = append(buf, byte('!'+i%94))
		i /= 94
		if i == 0 {
			break
		}
		i--
	}
	return string(buf)
}

// Header writes the declaration section and the initial values. It must
// be called once, after the session has settled its initial state.
func (v *Writer) Header(vals []bool) error {
	if v.headered {
		return fmt.Errorf("vcd: Header called twice")
	}
	fmt.Fprintf(v.w, "$date %s $end\n", time.Now().UTC().Format("2006-01-02"))
	fmt.Fprintf(v.w, "$version repro/dipe gate-level simulator $end\n")
	fmt.Fprintf(v.w, "$timescale 1ps $end\n")
	fmt.Fprintf(v.w, "$scope module %s $end\n", sanitize(v.c.Name))
	for _, id := range v.watched {
		fmt.Fprintf(v.w, "$var wire 1 %s %s $end\n", v.ids[id], sanitize(v.c.Nodes[id].Name))
	}
	fmt.Fprintf(v.w, "$upscope $end\n$enddefinitions $end\n")
	fmt.Fprintf(v.w, "$dumpvars\n")
	for _, id := range v.watched {
		fmt.Fprintf(v.w, "%s%s\n", bit(vals[id]), v.ids[id])
	}
	fmt.Fprintf(v.w, "$end\n")
	v.headered = true
	v.lastTime = -1
	return v.w.Flush()
}

// Attach subscribes the writer to a session: every transition of a
// watched node during sampled cycles is dumped. Call BeginCycle before
// each sampled step so transitions land in the right time slot.
func (v *Writer) Attach(s *sim.Session) {
	s.SetObserver(func(id netlist.NodeID, t delay.Picoseconds, val bool) {
		code, ok := v.ids[id]
		if !ok || v.err != nil {
			return
		}
		ts := (v.cycle-1)*int64(v.period) + int64(t)
		if ts != v.lastTime {
			if _, err := fmt.Fprintf(v.w, "#%d\n", ts); err != nil {
				v.err = err
				return
			}
			v.lastTime = ts
		}
		if _, err := fmt.Fprintf(v.w, "%s%s\n", bit(val), code); err != nil {
			v.err = err
		}
	})
}

// BeginCycle advances the VCD time axis by one clock period; call it
// immediately before each sampled session step.
func (v *Writer) BeginCycle() { v.cycle++ }

// Close flushes buffered output and reports any deferred write error.
func (v *Writer) Close() error {
	if v.err != nil {
		return v.err
	}
	return v.w.Flush()
}

// Cycles returns how many cycles have been begun.
func (v *Writer) Cycles() int64 { return v.cycle }

func bit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// sanitize replaces characters VCD identifiers dislike.
func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch c {
		case ' ', '\t', '$':
			out[i] = '_'
		}
	}
	return string(out)
}
