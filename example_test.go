package dipe_test

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

// Example_estimate runs the full DIPE flow on the genuine s27 benchmark
// with the paper's default configuration. All runs are deterministic
// given the input-source seed.
func Example_estimate() {
	circuit, err := dipe.Benchmark("s27")
	if err != nil {
		log.Fatal(err)
	}
	tb := dipe.NewTestbench(circuit)
	src := dipe.NewIIDSource(len(circuit.Inputs), 0.5, 42)

	res, err := dipe.Estimate(tb.NewSession(src), dipe.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power: %s\n", dipe.FormatWatts(res.Power))
	fmt.Printf("independence interval: %d\n", res.Interval)
	fmt.Printf("converged: %v\n", res.Converged)
	// Output:
	// power: 46.708 uW
	// independence interval: 0
	// converged: true
}

// Example_selectInterval runs only the Fig. 2 procedure: trial intervals
// are increased until the runs test accepts the power sequence as
// random.
func Example_selectInterval() {
	circuit, err := dipe.Benchmark("s27")
	if err != nil {
		log.Fatal(err)
	}
	tb := dipe.NewTestbench(circuit)
	sel, err := dipe.SelectInterval(tb.NewSession(dipe.NewIIDSource(4, 0.5, 7)), dipe.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval: %d (after %d trials)\n", sel.Interval, len(sel.Trials))
	// Output:
	// interval: 1 (after 2 trials)
}

// Example_probabilisticBaseline computes the classical signal-
// probability power estimate — no simulation, but no correlation or
// glitch awareness either.
func Example_probabilisticBaseline() {
	circuit, err := dipe.Benchmark("s27")
	if err != nil {
		log.Fatal(err)
	}
	tb := dipe.NewTestbench(circuit)
	stats, err := dipe.AnalyzeProbabilities(circuit, []float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probabilistic estimate: %s\n", dipe.FormatWatts(stats.Power(tb.Model)))
	// Output:
	// probabilistic estimate: 50.881 uW
}

// Example_parseBench loads a circuit from ISCAS89 .bench text.
func Example_parseBench() {
	netlist := `
INPUT(A)
OUTPUT(Y)
Q = DFF(D)
D = XOR(A, Q)
Y = NOT(Q)
`
	circuit, err := dipe.ParseBench("accum", strings.NewReader(netlist))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(circuit.ComputeStats())
	// Output:
	// accum: 1 PI, 1 PO, 1 DFF, 2 gates, depth 1, max fanout 2
}

// Example_maxPower searches for the peak single-cycle power (the
// companion problem of the paper's ref [8]).
func Example_maxPower() {
	circuit, err := dipe.Benchmark("s27")
	if err != nil {
		log.Fatal(err)
	}
	tb := dipe.NewTestbench(circuit)
	opts := dipe.DefaultMaxPowerOptions()
	opts.Budget = 2000
	opts.Seed = 9
	peak, err := dipe.MaxPower(tb, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peak cycle power: %s\n", dipe.FormatWatts(peak.Power))
	// Output:
	// peak cycle power: 162.500 uW
}
