package experiments

import (
	"fmt"
	"time"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/power"
)

// ModeRow is one row of the Table-1-style two-mode comparison: the same
// circuit estimated under the general-delay mode (event-driven,
// glitches included) and the zero-delay mode (functional transitions
// only, packed sampled phase). The power gap is the glitch power the
// delay model exposes; the cost columns show the zero-delay sampled
// phase running at packed throughput.
type ModeRow struct {
	Name       string
	Gates      int
	PGeneral   float64 // watts, general-delay estimate
	PZero      float64 // watts, zero-delay estimate
	GlitchPct  float64 // 100 * (PGeneral - PZero) / PGeneral
	NGeneral   int     // sample size, general-delay run
	NZero      int     // sample size, zero-delay run
	CycGeneral uint64  // total simulated cycles, general-delay run
	CycZero    uint64  // total simulated cycles, zero-delay run
	SecGeneral float64 // wall seconds, general-delay run
	SecZero    float64 // wall seconds, zero-delay run
}

// ModeComparison estimates every configured circuit under both power
// modes with the bit-parallel estimator (cfg.Replications lanes; 64 if
// the config leaves it at 0, matching EstimateParallel's default).
// Both runs share a seed, so the comparison isolates the delay-model
// axis.
func ModeComparison(cfg Config) ([]ModeRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rows := make([]ModeRow, 0, len(cfg.Circuits))
	for ci, name := range cfg.Circuits {
		circ, err := bench89.Get(name)
		if err != nil {
			return nil, err
		}
		tb := core.DefaultTestbench(circ)
		width := len(circ.Inputs)
		seed := cfg.BaseSeed + 13_131_313 + int64(ci)*1_000_003

		opts := cfg.Opts
		opts.Replications = cfg.Replications
		opts.Workers = cfg.Workers

		run := func(mode power.PowerMode) (core.Result, float64, error) {
			o := opts
			o.Mode = mode
			start := time.Now()
			res, err := core.EstimateParallel(tb, cfg.factory(width), seed, o)
			return res, time.Since(start).Seconds(), err
		}
		gen, genSec, err := run(power.ModeGeneralDelay)
		if err != nil {
			return nil, fmt.Errorf("modes %s general-delay: %w", name, err)
		}
		zero, zeroSec, err := run(power.ModeZeroDelay)
		if err != nil {
			return nil, fmt.Errorf("modes %s zero-delay: %w", name, err)
		}
		row := ModeRow{
			Name:       name,
			Gates:      circ.NumGates(),
			PGeneral:   gen.Power,
			PZero:      zero.Power,
			NGeneral:   gen.SampleSize,
			NZero:      zero.SampleSize,
			CycGeneral: gen.TotalCycles(),
			CycZero:    zero.TotalCycles(),
			SecGeneral: genSec,
			SecZero:    zeroSec,
		}
		if gen.Power > 0 {
			row.GlitchPct = 100 * (gen.Power - zero.Power) / gen.Power
		}
		cfg.logf("modes: %s general=%.4g zero=%.4g glitch=%.1f%% (%.2fs vs %.2fs)\n",
			name, row.PGeneral, row.PZero, row.GlitchPct, row.SecGeneral, row.SecZero)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderModes renders mode-comparison rows as an ASCII table.
func RenderModes(rows []ModeRow) string {
	s := fmt.Sprintf("%-8s %7s %12s %12s %8s %8s %8s %9s %9s\n",
		"circuit", "gates", "P(general)", "P(zero)", "glitch%", "n(gen)", "n(zero)", "s(gen)", "s(zero)")
	for _, r := range rows {
		s += fmt.Sprintf("%-8s %7d %12.4g %12.4g %7.1f%% %8d %8d %8.2fs %8.2fs\n",
			r.Name, r.Gates, r.PGeneral, r.PZero, r.GlitchPct, r.NGeneral, r.NZero, r.SecGeneral, r.SecZero)
	}
	return s
}
