// Glitch analysis: the paper's two-phase scheme exists because accurate
// power needs a general-delay simulator — a zero-delay model sees only
// functional transitions and misses glitch power entirely (Eq. 1 counts
// *all* transitions n_i). This example quantifies that on a benchmark:
//
//  1. average power under zero-delay, unit-delay and fanout-loaded
//     delay models on the same input stream,
//  2. the glitch share of total power,
//  3. the top power-consuming nodes with their switching rates
//     (switching rate > 1 per cycle is the glitch signature).
//
// go run ./examples/glitch_analysis
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	circuit, err := dipe.Benchmark("s1238")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(circuit.ComputeStats())
	width := len(circuit.Inputs)
	const cycles = 30_000

	models := []struct {
		name string
		dm   dipe.DelayModel
	}{
		{"zero-delay (functional)", dipe.ZeroDelayModel},
		{"unit-delay", dipe.UnitDelayModel},
		{"fanout-loaded (general)", dipe.FanoutDelayModel},
	}

	fmt.Printf("\n%-26s %14s\n", "delay model", "avg power")
	powers := make([]float64, len(models))
	for i, m := range models {
		tb := dipe.NewCustomTestbench(circuit, m.dm, dipe.DefaultCapModel(), dipe.DefaultSupply())
		// Same seed: identical input stream isolates the model effect.
		ref := dipe.RunReference(tb.NewSession(dipe.NewIIDSource(width, 0.5, 7)), 512, cycles)
		powers[i] = ref.Power
		fmt.Printf("%-26s %14s\n", m.name, dipe.FormatWatts(ref.Power))
	}
	glitch := 100 * (powers[2] - powers[0]) / powers[2]
	fmt.Printf("\nglitch power share: %.1f%% of total — invisible to zero-delay simulation\n", glitch)

	// Per-node breakdown under the general-delay model.
	tb := dipe.NewTestbench(circuit)
	s := tb.NewSession(dipe.NewIIDSource(width, 0.5, 8))
	s.StepHiddenN(512)
	counts := make([]uint64, circuit.NumNodes())
	for i := 0; i < cycles; i++ {
		s.StepSampled(counts)
	}
	fmt.Printf("\ntop consumers (switch/cycle > 1 indicates glitching):\n")
	fmt.Printf("%-4s %-14s %14s %8s %12s\n", "#", "node", "power", "share", "switch/cyc")
	for i, b := range tb.Model.TopConsumers(circuit, counts, cycles, 8) {
		fmt.Printf("%-4d %-14s %14s %7.2f%% %12.3f\n",
			i+1, b.Name, dipe.FormatWatts(b.Power), 100*b.Share,
			float64(counts[b.Node])/float64(cycles))
	}
}
