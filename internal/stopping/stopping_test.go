package stopping

import (
	"math"
	"math/rand"
	"testing"
)

// feedUntilDone streams samples from gen into the criterion until Done or
// the cap; returns the sample count at convergence and whether it stopped.
func feedUntilDone(c Criterion, gen func() float64, cap int) (int, bool) {
	for i := 0; i < cap; i++ {
		c.Add(gen())
		if i%32 == 31 && c.Done() {
			return c.N(), true
		}
	}
	return c.N(), c.Done()
}

func normalGen(mean, sd float64, seed int64) func() float64 {
	rng := rand.New(rand.NewSource(seed))
	return func() float64 { return mean + sd*rng.NormFloat64() }
}

// lognormalGen is a skewed, heavy-tailed distribution: the stress case
// for "distribution-independent" claims.
func lognormalGen(mu, sigma float64, seed int64) func() float64 {
	rng := rand.New(rand.NewSource(seed))
	return func() float64 { return math.Exp(mu + sigma*rng.NormFloat64()) }
}

var allFactories = []struct {
	name string
	f    Factory
}{
	{"normal", NormalFactory},
	{"ks", KSFactory},
	{"order-statistics", OrderStatisticsFactory},
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{RelErr: 0, Confidence: 0.99},
		{RelErr: 1.5, Confidence: 0.99},
		{RelErr: 0.05, Confidence: 0},
		{RelErr: 0.05, Confidence: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", s)
		}
	}
}

func TestCriteriaConvergeOnNormalData(t *testing.T) {
	spec := Spec{RelErr: 0.05, Confidence: 0.99}
	for _, tc := range allFactories {
		c := tc.f(spec)
		n, done := feedUntilDone(c, normalGen(10, 3, 1), 1<<20)
		if !done {
			t.Errorf("%s: did not converge in %d samples", tc.name, n)
			continue
		}
		if got := c.Estimate(); math.Abs(got-10) > 0.05*10 {
			t.Errorf("%s: estimate %.4f deviates more than 5%% from 10", tc.name, got)
		}
	}
}

func TestCriteriaConvergeOnBoundedSkewedData(t *testing.T) {
	// X = 10*U^4 with U uniform: bounded on [0,10], heavily right-skewed,
	// mean = 10/5 = 2. Per-cycle power is likewise bounded and skewed,
	// so this is the realistic stress case for all three criteria.
	want := 2.0
	spec := Spec{RelErr: 0.05, Confidence: 0.95}
	for _, tc := range allFactories {
		rng := rand.New(rand.NewSource(2))
		gen := func() float64 { u := rng.Float64(); return 10 * u * u * u * u }
		c := tc.f(spec)
		n, done := feedUntilDone(c, gen, 1<<22)
		if !done {
			t.Errorf("%s: did not converge in %d samples", tc.name, n)
			continue
		}
		if got := c.Estimate(); math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s: estimate %.4f vs true mean %.4f", tc.name, got, want)
		}
	}
}

func TestUnboundedHeavyTailConvergence(t *testing.T) {
	// Lognormal(0, 1): mean = exp(0.5) ~ 1.6487. The CLT and
	// order-statistics criteria converge; the KS criterion is documented
	// to require bounded support and is exempt here.
	want := math.Exp(0.5)
	spec := Spec{RelErr: 0.05, Confidence: 0.95}
	for _, tc := range allFactories {
		if tc.name == "ks" {
			continue
		}
		c := tc.f(spec)
		n, done := feedUntilDone(c, lognormalGen(0, 1, 2), 1<<22)
		if !done {
			t.Errorf("%s: did not converge in %d samples", tc.name, n)
			continue
		}
		if got := c.Estimate(); math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s: estimate %.4f vs true mean %.4f", tc.name, got, want)
		}
	}
}

func TestCoverageOnNormalData(t *testing.T) {
	// Repeated runs: the fraction of estimates within RelErr of the truth
	// must be at least roughly the confidence level. This is the
	// statistical contract of Table 2's Err(%) column.
	spec := Spec{RelErr: 0.05, Confidence: 0.95}
	const runs = 120
	for _, tc := range allFactories {
		bad := 0
		for r := 0; r < runs; r++ {
			c := tc.f(spec)
			_, done := feedUntilDone(c, normalGen(7, 5, int64(100+r)), 1<<20)
			if !done {
				t.Fatalf("%s run %d did not converge", tc.name, r)
			}
			if math.Abs(c.Estimate()-7)/7 > spec.RelErr {
				bad++
			}
		}
		rate := float64(bad) / runs
		// Allow slack: 95% nominal coverage, require <= 10% violations.
		if rate > 0.10 {
			t.Errorf("%s: violation rate %.3f exceeds 0.10 (spec 0.05)", tc.name, rate)
		}
	}
}

func TestTighterSpecNeedsMoreSamples(t *testing.T) {
	for _, tc := range allFactories {
		loose := tc.f(Spec{RelErr: 0.10, Confidence: 0.95})
		tight := tc.f(Spec{RelErr: 0.02, Confidence: 0.95})
		nLoose, okL := feedUntilDone(loose, normalGen(10, 4, 3), 1<<22)
		nTight, okT := feedUntilDone(tight, normalGen(10, 4, 3), 1<<22)
		if !okL || !okT {
			t.Fatalf("%s: convergence failure (loose %v tight %v)", tc.name, okL, okT)
		}
		if nTight <= nLoose {
			t.Errorf("%s: tight spec used %d samples, loose used %d", tc.name, nTight, nLoose)
		}
	}
}

func TestHigherVarianceNeedsMoreSamples(t *testing.T) {
	spec := Spec{RelErr: 0.05, Confidence: 0.95}
	for _, tc := range allFactories {
		lo := tc.f(spec)
		hi := tc.f(spec)
		nLo, _ := feedUntilDone(lo, normalGen(10, 1, 4), 1<<22)
		nHi, _ := feedUntilDone(hi, normalGen(10, 6, 4), 1<<22)
		if nHi <= nLo {
			t.Errorf("%s: high-variance run used %d samples, low-variance %d", tc.name, nHi, nLo)
		}
	}
}

func TestCriterionReset(t *testing.T) {
	for _, tc := range allFactories {
		c := tc.f(DefaultSpec())
		for i := 0; i < 100; i++ {
			c.Add(float64(i))
		}
		c.Reset()
		if c.N() != 0 {
			t.Errorf("%s: N=%d after Reset", tc.name, c.N())
		}
		if c.Done() {
			t.Errorf("%s: Done immediately after Reset", tc.name)
		}
		if !math.IsInf(c.HalfWidth(), 1) {
			t.Errorf("%s: HalfWidth finite after Reset: %g", tc.name, c.HalfWidth())
		}
	}
}

func TestAllZeroSamplesConvergeTrivially(t *testing.T) {
	// A gate-free circuit dissipates nothing; the criteria must not spin
	// forever on mean zero.
	for _, tc := range allFactories {
		c := tc.f(DefaultSpec())
		n, done := feedUntilDone(c, func() float64 { return 0 }, 4096)
		if !done {
			t.Errorf("%s: all-zero stream did not converge in %d", tc.name, n)
		}
		if c.Estimate() != 0 {
			t.Errorf("%s: estimate %g for all-zero stream", tc.name, c.Estimate())
		}
	}
}

func TestEstimateIsSampleMean(t *testing.T) {
	for _, tc := range allFactories {
		c := tc.f(DefaultSpec())
		sum := 0.0
		for i := 1; i <= 1000; i++ {
			x := float64(i % 17)
			c.Add(x)
			sum += x
		}
		want := sum / 1000
		if math.Abs(c.Estimate()-want) > 1e-9 {
			t.Errorf("%s: estimate %.9f, want sample mean %.9f", tc.name, c.Estimate(), want)
		}
	}
}

func TestNamesAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, tc := range allFactories {
		name := tc.f(DefaultSpec()).Name()
		if seen[name] {
			t.Errorf("duplicate criterion name %q", name)
		}
		seen[name] = true
	}
}

func TestMedianCIRankProperties(t *testing.T) {
	// Rank must give coverage >= 1-delta and be maximal.
	for _, k := range []int{8, 20, 50, 101, 500} {
		for _, delta := range []float64{0.01, 0.05, 0.2} {
			r := medianCIRank(k, delta)
			if r < 1 {
				if k >= 20 {
					t.Errorf("medianCIRank(%d,%g) = %d", k, delta, r)
				}
				continue
			}
			// Coverage check: P(y_(r) <= med <= y_(k+1-r)) =
			// 1 - 2*BinomialCDF(r-1, k, 1/2) >= 1-delta.
			// (Strictly, >= by construction of r.)
			if got := cdfHalf(r-1, k); got > delta/2+1e-12 {
				t.Errorf("rank %d for k=%d delta=%g has tail %g > %g", r, k, delta, got, delta/2)
			}
			if r2 := r + 1; r2 <= k/2 {
				if got := cdfHalf(r2-1, k); got <= delta/2 {
					t.Errorf("rank %d for k=%d delta=%g is not maximal", r, k, delta)
				}
			}
		}
	}
}

// cdfHalf is BinomialCDF(j, k, 0.5) via direct summation (independent of
// the production implementation).
func cdfHalf(j, k int) float64 {
	sum := 0.0
	c := math.Pow(0.5, float64(k))
	binom := 1.0
	for i := 0; i <= j; i++ {
		sum += binom * c
		binom = binom * float64(k-i) / float64(i+1)
	}
	return sum
}

func TestOrderStatisticsBatching(t *testing.T) {
	c := NewOrderStatistics(DefaultSpec())
	for i := 0; i < DefaultBatchSize*10; i++ {
		c.Add(1)
	}
	if len(c.batches) != 10 {
		t.Fatalf("batches = %d, want 10", len(c.batches))
	}
	for _, b := range c.batches {
		if b != 1 {
			t.Fatalf("batch mean %g, want 1", b)
		}
	}
}

func TestKSMoreConservativeThanNormal(t *testing.T) {
	// On the same data stream the DKW band is wider than the CLT CI, so
	// KS must need at least as many samples.
	spec := Spec{RelErr: 0.05, Confidence: 0.95}
	nN, _ := feedUntilDone(NewNormal(spec), normalGen(10, 3, 9), 1<<22)
	nK, _ := feedUntilDone(NewKS(spec), normalGen(10, 3, 9), 1<<22)
	if nK < nN {
		t.Fatalf("KS converged faster (%d) than normal (%d)", nK, nN)
	}
}
