package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
)

// ParseBLIF reads a circuit in Berkeley Logic Interchange Format, the
// native format of SIS-era logic synthesis (the toolchain of the paper's
// contemporaries). The supported subset is the structural core:
//
//	.model NAME
//	.inputs A B ...
//	.outputs Y ...
//	.latch IN OUT [type clock] [init]
//	.names IN... OUT          followed by single-output cover lines
//	.end
//
// Each .names cover is synthesized into this package's gate set on the
// fly: every cube becomes an AND of (possibly inverted) literals and the
// cubes are OR-ed; the constant covers become CONST0/CONST1. Covers with
// output value 0 define the complement and are inverted. Latch init
// values other than 0 are accepted and ignored (the simulators start
// from the all-zero state).
func ParseBLIF(name string, r io.Reader) (*Circuit, error) {
	type cover struct {
		out   string
		ins   []string
		cubes []string // input parts
		vals  []byte   // output value per cube ('0' or '1')
		line  int
	}
	type latch struct {
		in, out string
		line    int
	}
	var (
		modelName string
		inputs    []string
		outputs   []string
		covers    []*cover
		latches   []latch
		current   *cover
	)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	var pending string // for line continuations with '\'
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		if i := strings.IndexByte(raw, '#'); i >= 0 {
			raw = raw[:i]
		}
		raw = strings.TrimSpace(pending + " " + raw)
		pending = ""
		if strings.HasSuffix(raw, "\\") {
			pending = strings.TrimSuffix(raw, "\\")
			continue
		}
		if raw == "" {
			continue
		}
		fields := strings.Fields(raw)
		switch fields[0] {
		case ".model":
			if len(fields) >= 2 && modelName == "" {
				modelName = fields[1]
			}
			current = nil
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
			current = nil
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
			current = nil
		case ".latch":
			if len(fields) < 3 {
				return nil, fmt.Errorf("netlist: %s line %d: .latch needs input and output", name, lineNo)
			}
			latches = append(latches, latch{in: fields[1], out: fields[2], line: lineNo})
			current = nil
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("netlist: %s line %d: .names needs at least an output", name, lineNo)
			}
			cv := &cover{
				out:  fields[len(fields)-1],
				ins:  fields[1 : len(fields)-1],
				line: lineNo,
			}
			covers = append(covers, cv)
			current = cv
		case ".end":
			current = nil
		case ".exdc", ".subckt", ".gate", ".mlatch", ".clock":
			return nil, fmt.Errorf("netlist: %s line %d: unsupported BLIF construct %q", name, lineNo, fields[0])
		default:
			if strings.HasPrefix(fields[0], ".") {
				// Unknown dot-directives (e.g. .default_input_arrival)
				// are ignored, as SIS does for unknown annotations.
				current = nil
				continue
			}
			// Cover line for the current .names.
			if current == nil {
				return nil, fmt.Errorf("netlist: %s line %d: cover line outside .names", name, lineNo)
			}
			var inPart, outPart string
			switch len(fields) {
			case 1:
				// Constant cover: just the output value.
				inPart, outPart = "", fields[0]
			case 2:
				inPart, outPart = fields[0], fields[1]
			default:
				return nil, fmt.Errorf("netlist: %s line %d: malformed cover line %q", name, lineNo, raw)
			}
			if outPart != "0" && outPart != "1" {
				return nil, fmt.Errorf("netlist: %s line %d: cover output %q must be 0 or 1", name, lineNo, outPart)
			}
			if len(inPart) != len(current.ins) {
				return nil, fmt.Errorf("netlist: %s line %d: cube %q has %d literals for %d inputs",
					name, lineNo, inPart, len(inPart), len(current.ins))
			}
			current.cubes = append(current.cubes, inPart)
			current.vals = append(current.vals, outPart[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: reading %s: %v", name, err)
	}
	if modelName == "" {
		modelName = name
	}

	c := NewCircuit(modelName)
	for _, in := range inputs {
		if _, err := c.AddNode(in, logic.Input); err != nil {
			return nil, err
		}
	}
	for _, l := range latches {
		if _, err := c.AddNode(l.out, logic.DFF); err != nil {
			return nil, err
		}
	}
	// Synthesize covers. Internal synthesis nodes get reserved names.
	aux := 0
	auxName := func() string {
		aux++
		return fmt.Sprintf("_blif%d", aux)
	}
	// First declare all cover outputs so cubes can reference any signal.
	for _, cv := range covers {
		if c.Lookup(cv.out) != InvalidNode {
			return nil, fmt.Errorf("netlist: %s line %d: signal %q defined twice", name, cv.line, cv.out)
		}
		// Kind fixed up in the synthesis pass below; BUF placeholder.
		if _, err := c.AddNode(cv.out, logic.Buf); err != nil {
			return nil, err
		}
	}
	for _, cv := range covers {
		outID := c.Lookup(cv.out)
		// Resolve input names.
		ins := make([]NodeID, len(cv.ins))
		for i, s := range cv.ins {
			id := c.Lookup(s)
			if id == InvalidNode {
				return nil, fmt.Errorf("netlist: %s line %d: cover references undefined signal %q", name, cv.line, s)
			}
			ins[i] = id
		}
		if err := synthesizeCover(c, outID, ins, cv.cubes, cv.vals, auxName); err != nil {
			return nil, fmt.Errorf("netlist: %s line %d: %v", name, cv.line, err)
		}
	}
	// Wire latch D pins.
	for _, l := range latches {
		out := c.Lookup(l.out)
		in := c.Lookup(l.in)
		if in == InvalidNode {
			return nil, fmt.Errorf("netlist: %s line %d: latch input %q undefined", name, l.line, l.in)
		}
		if err := c.SetFanin(out, in); err != nil {
			return nil, err
		}
	}
	for _, o := range outputs {
		id := c.Lookup(o)
		if id == InvalidNode {
			return nil, fmt.Errorf("netlist: %s: output %q undefined", name, o)
		}
		if err := c.MarkOutput(id); err != nil {
			return nil, err
		}
	}
	if err := c.Freeze(); err != nil {
		return nil, err
	}
	return c, nil
}

// synthesizeCover lowers one single-output cover onto the out node,
// creating auxiliary gates as needed. The cover's cubes must share the
// same output value (standard BLIF: a cover lists either the on-set or
// the off-set).
func synthesizeCover(c *Circuit, out NodeID, ins []NodeID, cubes []string, vals []byte, auxName func() string) error {
	if len(cubes) == 0 {
		// Empty cover: constant 0 (SIS convention).
		c.Nodes[out].Kind = logic.Const0
		return c.SetFanin(out)
	}
	onSet := vals[0] == '1'
	for _, v := range vals {
		if (v == '1') != onSet {
			return fmt.Errorf("cover mixes on-set and off-set cubes")
		}
	}
	// Constant covers: no inputs.
	if len(ins) == 0 {
		if onSet {
			c.Nodes[out].Kind = logic.Const1
		} else {
			c.Nodes[out].Kind = logic.Const0
		}
		return c.SetFanin(out)
	}

	// Build one AND term per cube (or simpler when degenerate).
	terms := make([]NodeID, 0, len(cubes))
	for _, cube := range cubes {
		lits := make([]NodeID, 0, len(cube))
		for i, ch := range cube {
			switch ch {
			case '1':
				lits = append(lits, ins[i])
			case '0':
				inv, err := c.AddNode(auxName(), logic.Not, ins[i])
				if err != nil {
					return err
				}
				lits = append(lits, inv)
			case '-':
				// don't care: literal absent
			default:
				return fmt.Errorf("bad cube character %q", ch)
			}
		}
		switch len(lits) {
		case 0:
			// All-don't-care cube: the function is constant true.
			if onSet {
				c.Nodes[out].Kind = logic.Const1
			} else {
				c.Nodes[out].Kind = logic.Const0
			}
			return c.SetFanin(out)
		case 1:
			terms = append(terms, lits[0])
		default:
			and, err := c.AddNode(auxName(), logic.And, lits...)
			if err != nil {
				return err
			}
			terms = append(terms, and)
		}
	}

	// OR the terms into the output node (inverted for off-set covers).
	switch {
	case len(terms) == 1 && onSet:
		c.Nodes[out].Kind = logic.Buf
		return c.SetFanin(out, terms[0])
	case len(terms) == 1:
		c.Nodes[out].Kind = logic.Not
		return c.SetFanin(out, terms[0])
	case onSet:
		c.Nodes[out].Kind = logic.Or
		return c.SetFanin(out, terms...)
	default:
		c.Nodes[out].Kind = logic.Nor
		return c.SetFanin(out, terms...)
	}
}

// ParseBLIFString is ParseBLIF over in-memory text.
func ParseBLIFString(name, text string) (*Circuit, error) {
	return ParseBLIF(name, strings.NewReader(text))
}
