package sim

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
)

// PowerEngine observes the power dissipated in one clock cycle of a
// scalar simulation. It is the seam between the estimator's two-phase
// sampling loop and the delay-model scenario: CyclePower applies a new
// (input pattern, latch state) pair to a settled value array, advances
// it to the next settled state, and returns the weighted transition sum
// of Eq. 1 for whatever transition accounting the engine implements.
//
// Two engines ship with the package: *EventDriven (general-delay,
// glitches included — the paper's configuration) and *ZeroDelayToggle
// (functional transitions only). PackedSession.StepSampled is the
// bit-parallel 64-lane counterpart of the zero-delay engine.
//
// The engine contract mirrors EventDriven.Cycle: on entry vals holds
// the settled values of the previous (pattern, state) pair; on return
// it holds the settled values of (newPins, newQ) — identical across
// engines, which is what lets sessions interleave hidden and sampled
// steps with any engine.
type PowerEngine interface {
	// CyclePower simulates one clock cycle and returns the weighted
	// transition sum. weights[i] is the power contribution of one
	// transition at node i; if counts is non-nil, counts[i] is
	// incremented once per transition at node i. The accumulators are
	// uint64: a long fixed-interval run on a 100k-gate circuit can push a
	// high-activity node past 2^32 transitions, which a narrower counter
	// would wrap silently.
	CyclePower(vals []bool, newPins, newQ []bool, weights []float64, counts []uint64) float64
	// Name identifies the engine in results and reports.
	Name() string
	// DelayModelName names the timing model the engine realizes
	// (a delay.Model name; "zero" for zero-delay engines).
	DelayModelName() string
}

// EngineEventDriven and EngineZeroDelay are the engine names reported
// by the built-in scalar engines; EnginePackedZeroDelay is reported by
// estimators that observe sampled cycles with the bit-parallel
// PackedSession.StepSampled instead of a scalar engine.
const (
	EngineEventDriven     = "event-driven"
	EngineZeroDelay       = "zero-delay"
	EnginePackedZeroDelay = "packed-zero-delay"
	// EngineCompiledZeroDelay is reported when sampled cycles are
	// observed word-parallel by the compiled backend
	// (CompiledSession.StepSampled).
	EngineCompiledZeroDelay = "compiled-zero-delay"
)

// ZeroDelayToggle is the zero-delay power engine: one levelized settle
// for the new (pattern, state) pair, then a toggle count against the
// previous settled values. Every node contributes at most one
// transition per cycle — the functional transition count, with glitch
// power excluded by construction. It is the scalar reference semantics
// for PackedSession.StepSampled: lane k of a packed sampled step is
// bit-identical (including float summation order) to this engine.
type ZeroDelayToggle struct {
	zd      *ZeroDelay
	scratch []bool
}

// NewZeroDelayToggle builds a zero-delay power engine for a frozen
// circuit.
func NewZeroDelayToggle(c *netlist.Circuit) *ZeroDelayToggle {
	return &ZeroDelayToggle{
		zd:      NewZeroDelay(c),
		scratch: make([]bool, c.NumNodes()),
	}
}

// CyclePower implements PowerEngine: settle (newPins, newQ) and sum the
// weights of every node whose settled value changed. The sum runs in
// node-index order — the same order the packed sampled step uses, so
// the two agree bit-for-bit.
func (e *ZeroDelayToggle) CyclePower(vals []bool, newPins, newQ []bool, weights []float64, counts []uint64) float64 {
	if len(vals) != len(e.scratch) {
		panic(fmt.Sprintf("sim: ZeroDelayToggle vals length %d, want %d", len(vals), len(e.scratch)))
	}
	e.zd.Settle(e.scratch, newPins, newQ)
	sum := 0.0
	for i, v := range e.scratch {
		if v != vals[i] {
			sum += weights[i]
			if counts != nil {
				counts[i]++
			}
		}
	}
	copy(vals, e.scratch)
	return sum
}

// Name implements PowerEngine.
func (e *ZeroDelayToggle) Name() string { return EngineZeroDelay }

// DelayModelName implements PowerEngine: the zero-delay engine realizes
// the zero delay model by definition.
func (e *ZeroDelayToggle) DelayModelName() string { return delay.Zero{}.Name() }
