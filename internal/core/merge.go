package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stopping"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// This file is the partial-result layer of the parallel estimator,
// exported so the distributed coordinator (internal/cluster) can shard
// the replication space across processes while keeping the paper's
// sequential stopping rule statistically — and bit-for-bit — intact:
//
//   - Merger owns the pooled stopping criterion and merges blocks of
//     per-replication samples in the canonical order (round-major,
//     ascending replication index), exactly as parallelTail does
//     in-process. parallelTail itself is built on it, so a remote merge
//     that feeds the same sample values cannot diverge from the local
//     estimator.
//   - StreamReplications runs a contiguous sub-range of the replication
//     space at a fixed interval and emits its samples in round-blocks —
//     the worker side of the coordinator/worker protocol.
//
// Determinism contract: replication r is always seeded baseSeed+1+r, a
// replication's sample stream depends only on its own seed (packed
// lanes are independent), and the merge order is a pure function of
// (reps, rounds). Any partition of [0,reps) into contiguous ranges —
// goroutine shards, worker processes, or a retried reassignment after a
// worker death — therefore reproduces the single-process estimate
// exactly, including float summation order.

// Merger pools per-replication sample blocks into a stopping criterion
// with the budget rules of EstimateParallel. One block is n rounds; one
// round is one sample from every replication, merged in ascending
// replication order. Under the antithetic variance-reduction mode
// (Options.Variance) the merger is also the transform seam: each
// assembled round is reduced to pair means before feeding the
// criterion, so pairing is a pure function of the canonical merge order
// and replication pairs may span shard or worker boundaries freely.
type Merger struct {
	crit       stopping.Criterion
	reps       int
	rounds     int
	maxSamples int
	merged     int // rounds merged so far

	pairing  bool      // antithetic: criterion consumes pair means
	perRound int       // criterion samples per merged round
	round    []float64 // scratch: one assembled round (pairing only)
	pairs    []float64 // scratch: one round's pair means

	met   *Metrics  // convergence telemetry sink (nil = off)
	start time.Time // sampling-phase start, for samples/s
}

// NewMerger builds the pooled stopping state for an EstimateParallel-
// shaped run: opts.Replications replications (default sim.MaxLanes),
// block cadence max(1, CheckEvery/Replications) rounds, sample budget
// MaxSamples, and the merge-side transform Options.Variance selects.
// opts must validate.
func NewMerger(opts Options) (*Merger, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	reps := opts.Replications
	if reps == 0 {
		reps = sim.MaxLanes
	}
	rounds := opts.CheckEvery / reps
	if rounds < 1 {
		rounds = 1
	}
	m := &Merger{
		crit:       opts.NewCriterion(opts.Spec),
		reps:       reps,
		rounds:     rounds,
		maxSamples: opts.MaxSamples,
		pairing:    opts.Variance.Mode.Canonical() == vr.ModeAntithetic,
		perRound:   reps,
		met:        opts.Metrics,
		start:      time.Now(),
	}
	if m.met != nil {
		m.met.Runs.Inc()
	}
	if m.pairing {
		m.perRound = reps / 2
		m.round = make([]float64, 0, reps)
		m.pairs = make([]float64, 0, m.perRound)
	}
	return m, nil
}

// Seed feeds an already-collected sample sequence (the accepted
// randomness-test sequence, under Options.ReuseTestSamples) into the
// criterion before any block is merged.
func (m *Merger) Seed(samples []float64) {
	for _, p := range samples {
		m.crit.Add(p)
	}
}

// Reps returns the width of the replication space.
func (m *Merger) Reps() int { return m.reps }

// Rounds returns the block cadence: the number of rounds a full block
// carries.
func (m *Merger) Rounds() int { return m.rounds }

// MergedRounds returns the number of rounds merged so far.
func (m *Merger) MergedRounds() int { return m.merged }

// PerRound returns the number of criterion samples one merged round
// yields: the replication count, halved under antithetic pairing.
func (m *Merger) PerRound() int { return m.perRound }

// NextRounds returns how many rounds the next merged block may contain:
// the block cadence, clipped to the remaining sample budget. A return
// below 1 means the budget cannot fund even one more round — the run
// must stop unconverged, exactly as EstimateParallel does.
func (m *Merger) NextRounds() int {
	n := m.rounds
	if remaining := (m.maxSamples - m.crit.N()) / m.perRound; n > remaining {
		n = remaining
	}
	return n
}

// MergeBlock merges n rounds from contiguous replication ranges into
// the criterion. ranges[i] holds range i's samples, round-major
// ([t*lanes[i]+lane], at least n rounds); ranges must be ordered by
// ascending replication index and their lane counts must tile the full
// replication space. The merge order is round-major, ascending
// replication — the canonical order every estimator in this package
// produces.
func (m *Merger) MergeBlock(ranges [][]float64, lanes []int, n int) error {
	if len(ranges) != len(lanes) {
		return fmt.Errorf("core: %d sample ranges but %d lane counts", len(ranges), len(lanes))
	}
	total := 0
	for i, l := range lanes {
		total += l
		if len(ranges[i]) < n*l {
			return fmt.Errorf("core: range %d holds %d samples, need %d rounds x %d lanes",
				i, len(ranges[i]), n, l)
		}
	}
	if total != m.reps {
		return fmt.Errorf("core: ranges cover %d replications, want %d", total, m.reps)
	}
	for t := 0; t < n; t++ {
		if m.pairing {
			// Assemble the full round in canonical order, then feed the
			// criterion its pair means — the antithetic transform.
			m.round = m.round[:0]
			for i, l := range lanes {
				m.round = append(m.round, ranges[i][t*l:(t+1)*l]...)
			}
			m.pairs = vr.PairMeans(m.round, m.pairs[:0])
			for _, y := range m.pairs {
				m.crit.Add(y)
			}
			continue
		}
		for i, l := range lanes {
			for _, p := range ranges[i][t*l : (t+1)*l] {
				m.crit.Add(p)
			}
		}
	}
	m.merged += n
	if m.met != nil {
		// One telemetry update per merged block: the convergence
		// trajectory of the sequential stopping rule, live.
		m.met.Rounds.Add(uint64(n))
		m.met.Samples.Add(uint64(n * m.perRound))
		m.met.Mean.Set(m.crit.Estimate())
		m.met.HalfWidth.Set(m.crit.HalfWidth())
		if elapsed := time.Since(m.start).Seconds(); elapsed > 0 {
			m.met.Rate.Set(float64(m.crit.N()) / elapsed)
		}
	}
	return nil
}

// Done reports whether the pooled criterion has met the accuracy
// specification.
func (m *Merger) Done() bool { return m.crit.Done() }

// N returns the number of samples the criterion has consumed (seeded
// plus merged).
func (m *Merger) N() int { return m.crit.N() }

// Estimate returns the pooled point estimate.
func (m *Merger) Estimate() float64 { return m.crit.Estimate() }

// HalfWidth returns the pooled confidence half-width.
func (m *Merger) HalfWidth() float64 { return m.crit.HalfWidth() }

// CriterionName names the underlying stopping criterion.
func (m *Merger) CriterionName() string { return m.crit.Name() }

// Progress renders the pooled state as a Progress snapshot.
func (m *Merger) Progress(interval int) Progress {
	return Progress{
		Samples:   m.crit.N(),
		Power:     m.crit.Estimate(),
		HalfWidth: m.crit.HalfWidth(),
		Interval:  interval,
		Rounds:    m.merged,
		Elapsed:   time.Since(m.start).Seconds(),
	}
}

// FinishBreakdown builds the per-node attribution report for a sampling
// phase whose merged samples produced the given transition counts. It
// folds the phase-1 seed toggles into total in place — exactly when the
// seed sequence also seeded the criterion (opts.ReuseTestSamples), so
// counts and samples stay in lockstep — computes the observation
// denominator (seeded samples plus one sample per replication per
// merged round), and ranks the report against the testbench's power
// model. Both the in-process tail and the cluster coordinator finish
// through here, which is what makes an N-worker breakdown bit-identical
// to the local one.
func FinishBreakdown(tb *Testbench, opts Options, m *Merger, seedLen int, seedToggles, total []uint64) *power.BreakdownReport {
	observed := uint64(m.MergedRounds()) * uint64(m.Reps())
	if opts.ReuseTestSamples && len(seedToggles) == len(total) {
		for i, n := range seedToggles {
			total[i] += n
		}
		observed += uint64(seedLen)
	}
	return tb.Model.Breakdown(tb.Circuit, total, observed)
}

// SplitRange partitions [lo, hi) into k contiguous sub-ranges whose
// sizes differ by at most one, in ascending order. It is THE partition
// rule of the replication space: parallelTail's goroutine shards,
// StreamReplications' packed sessions and the cluster coordinator's
// worker ranges all use it, which is what keeps every layout merging
// the same samples at the same boundaries.
func SplitRange(lo, hi, k int) [][2]int {
	out := make([][2]int, 0, k)
	next := lo
	for i := 0; i < k; i++ {
		width := (hi - next + k - i - 1) / (k - i)
		out = append(out, [2]int{next, next + width})
		next += width
	}
	return out
}

// SplitRangeAligned partitions [lo, hi) into k contiguous ascending
// sub-ranges whose boundaries are multiples of align relative to lo,
// with the final range absorbing the remainder. Alignment matters to
// the cluster's lease sizing: a lease that is a whole number of
// compiled-session widths (512 lanes) packs its replications into full
// word rows instead of leaving partial words at every lease boundary.
// The ranges still cover [lo, hi) exactly in ascending order — the
// merge rule is unchanged, so alignment can never change a result, only
// how the work is cut. align <= 1 (or a span smaller than k*align,
// which would force empty ranges) degrades gracefully toward
// SplitRange's unaligned cuts.
func SplitRangeAligned(lo, hi, k, align int) [][2]int {
	if align <= 1 {
		return SplitRange(lo, hi, k)
	}
	units := (hi - lo) / align
	out := make([][2]int, 0, k)
	next := lo
	for i, b := range SplitRange(0, units, k) {
		width := (b[1] - b[0]) * align
		if i == k-1 {
			width = hi - next
		}
		out = append(out, [2]int{next, next + width})
		next += width
	}
	return out
}

// ReplicationBlock is one round-block emitted by StreamReplications:
// Rounds rounds of samples from a contiguous replication range, round-
// major with replications ascending within a round.
type ReplicationBlock struct {
	// Index is the block's position in the stream (0-based, counting
	// skipped blocks).
	Index int
	// Rounds is the number of rounds in the block.
	Rounds int
	// Samples holds Rounds*lanes power samples, round-major.
	Samples []float64
	// Toggles holds the block's per-node transition-count delta (indexed
	// by NodeID, summed over the range's replications), emitted only
	// under Options.Breakdown. The delta covers exactly the rounds of
	// this block the merge side will consume — the block cadence, clipped
	// by the budgetRounds schedule — so folding the deltas of the merged
	// blocks reproduces the in-process accumulator bit for bit.
	Toggles []uint64
}

// StreamReplications runs replications [lo, hi) of an EstimateParallel-
// shaped run at a fixed independence interval and emits their power
// samples in blocks of `rounds` rounds. Replication r is seeded
// baseSeed+1+r — the same mapping parallelTail uses, including the
// plan's antithetic mirroring of odd replications — so the emitted
// samples are bit-identical to the corresponding lanes of a single-
// process run, regardless of how [lo, hi) is packed into 64-lane words
// or spread over opts.Workers goroutines.
//
// plan is the resolved variance-reduction plan (ResolvePlan): under the
// control-variate mode each emitted sample is already transformed
// (Y = X - beta (C - mu_C)); under antithetic pairing samples stream
// raw and the Merger reduces assembled rounds to pair means, so pairs
// may span worker boundaries.
//
// skip fast-forwards the first `skip` blocks without observing power:
// the state trajectory of a sampled cycle equals a hidden cycle's, so a
// retried worker can reproduce a dead worker's remaining blocks exactly
// without re-transmitting (or re-weighing) the ones already merged.
// maxBlocks bounds the stream (0 = unbounded); emitting stops early
// when ctx is cancelled or emit returns an error.
//
// Under opts.Breakdown each block additionally carries its per-node
// transition-count delta. budgetRounds is the merge side's total round
// budget ((MaxSamples - seeded samples) / PerRound; 0 = unbounded): the
// merger clips its final block to it, so block b's delta covers
// min(rounds, budgetRounds - b*rounds) rounds even though the block
// always carries the full `rounds` rounds of samples. Outside breakdown
// runs budgetRounds is ignored.
//
// opts contributes WarmupCycles, Mode, Workers and Breakdown; the
// stopping criterion is not consulted — stopping is the merger's job.
func StreamReplications(ctx context.Context, tb *Testbench, src vectors.Factory, baseSeed int64, opts Options, plan vr.Plan, interval, lo, hi, rounds, skip, maxBlocks, budgetRounds int, emit func(ReplicationBlock) error) error {
	if err := opts.Mode.Validate(); err != nil {
		return err
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	switch {
	case interval < 0:
		return fmt.Errorf("core: negative interval %d", interval)
	case lo < 0 || hi <= lo:
		return fmt.Errorf("core: bad replication range [%d, %d)", lo, hi)
	case rounds < 1:
		return fmt.Errorf("core: block rounds %d must be >= 1", rounds)
	case skip < 0:
		return fmt.Errorf("core: negative skip %d", skip)
	case opts.WarmupCycles < 0:
		return fmt.Errorf("core: negative WarmupCycles %d", opts.WarmupCycles)
	}
	n := hi - lo
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	useCov := plan.NeedsCovariate()
	packedSampled := (opts.Mode.IsZeroDelay() || tb.Delays.AllZero()) && !useCov

	// The same shard layout as parallelTail (newShards), over the
	// sub-range: contiguous ascending so block assembly is
	// replication-ordered.
	shards, err := newShards(tb, src, baseSeed, opts, plan, lo, hi, workers, packedSampled, useCov)
	if err != nil {
		return err
	}
	// Per-node attribution: each shard counts into a private accumulator
	// and keeps a per-block snapshot (`snap`) taken after the rounds the
	// merge side will actually consume, so the emitted deltas track the
	// merger's clipped final block instead of the full block the stream
	// always carries.
	var prev []uint64
	if opts.Breakdown {
		prev = make([]uint64, tb.Circuit.NumNodes())
	}
	for _, sh := range shards {
		sh.powers = make([]float64, rounds*sh.lanes)
		if opts.Breakdown {
			sh.counts = make([]uint64, tb.Circuit.NumNodes())
			sh.snap = make([]uint64, tb.Circuit.NumNodes())
			sh.ps.AccumulateToggles(sh.counts)
		}
	}

	runShards(shards, workers, func(sh *shard) {
		sh.ps.StepHiddenN(opts.WarmupCycles)
	})
	if skip > 0 {
		// Power observation does not influence the state trajectory, so
		// skipped blocks replay as pure hidden cycles: interval hidden
		// cycles plus the would-be sampled cycle, per round.
		runShards(shards, workers, func(sh *shard) {
			sh.ps.StepHiddenN(skip * rounds * (interval + 1))
		})
	}
	weights := tb.Weights()
	for b := skip; maxBlocks == 0 || b < maxBlocks; b++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// The rounds of this block the merge side will consume: the block
		// cadence, clipped by the remaining round budget (mirrors
		// Merger.NextRounds with merged == b*rounds).
		countRounds := rounds
		if budgetRounds > 0 {
			if cr := budgetRounds - b*rounds; cr < countRounds {
				countRounds = cr
			}
			if countRounds < 0 {
				countRounds = 0
			}
		}
		runShards(shards, workers, func(sh *shard) {
			for t := 0; t < rounds; t++ {
				sh.ps.StepHiddenN(interval)
				block := sh.powers[t*sh.lanes : (t+1)*sh.lanes]
				switch {
				case useCov:
					sh.ps.StepSampledBoth(sh.engine, weights, block, sh.cov)
					for k, x := range block {
						block[k] = plan.Apply(x, sh.cov[k])
					}
				case packedSampled:
					sh.ps.StepSampled(weights, block)
				default:
					sh.ps.StepSampledWith(sh.engine, weights, block)
				}
				if sh.snap != nil && t+1 == countRounds {
					copy(sh.snap, sh.counts)
				}
			}
		})
		samples := make([]float64, 0, rounds*n)
		for t := 0; t < rounds; t++ {
			for _, sh := range shards {
				samples = append(samples, sh.powers[t*sh.lanes:(t+1)*sh.lanes]...)
			}
		}
		var toggles []uint64
		if opts.Breakdown {
			toggles = make([]uint64, len(prev))
			for _, sh := range shards {
				for i, c := range sh.snap {
					toggles[i] += c
				}
			}
			for i := range toggles {
				toggles[i], prev[i] = toggles[i]-prev[i], toggles[i]
			}
		}
		if err := emit(ReplicationBlock{Index: b, Rounds: rounds, Samples: samples, Toggles: toggles}); err != nil {
			return err
		}
	}
	return nil
}
