package refsim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Result is a long-run reference estimate.
type Result struct {
	Power     float64 // watts, mean over all sampled cycles
	Cycles    int     // consecutive cycles averaged
	Warmup    int     // cycles discarded before averaging
	StdErr    float64 // standard error from batch means (watts)
	BatchSize int
	Elapsed   time.Duration
	MinCycle  float64 // smallest single-cycle power observed
	MaxCycle  float64 // largest single-cycle power observed
}

// RelStdErr returns StdErr / Power (0 when Power is 0).
func (r Result) RelStdErr() float64 {
	if r.Power == 0 {
		return 0
	}
	return r.StdErr / math.Abs(r.Power)
}

// String summarizes the reference run.
func (r Result) String() string {
	return fmt.Sprintf("SIM=%.4g W over %d cycles (rel. std. err. %.3f%%)",
		r.Power, r.Cycles, 100*r.RelStdErr())
}

// Run simulates warmup hidden cycles followed by `cycles` consecutive
// sampled (general-delay) cycles on the session and returns the mean
// power. The session is advanced in place; callers wanting a fresh state
// should pass a new session.
func Run(s *sim.Session, warmup, cycles int) Result {
	if cycles <= 0 {
		panic(fmt.Sprintf("refsim: cycles = %d must be positive", cycles))
	}
	start := time.Now()
	s.StepHiddenN(warmup)

	// Batch means give a serial-correlation-robust standard error for
	// the consecutive-cycle average.
	batch := cycles / 64
	if batch < 16 {
		batch = 16
	}
	var all, cur stats.Accumulator
	var batches stats.Accumulator
	inBatch := 0
	for i := 0; i < cycles; i++ {
		p := s.StepSampled(nil)
		all.Add(p)
		cur.Add(p)
		inBatch++
		if inBatch == batch {
			batches.Add(cur.Mean())
			cur.Reset()
			inBatch = 0
		}
	}
	res := Result{
		Power:     all.Mean(),
		Cycles:    cycles,
		Warmup:    warmup,
		BatchSize: batch,
		Elapsed:   time.Since(start),
		MinCycle:  all.Min(),
		MaxCycle:  all.Max(),
	}
	if batches.N() >= 2 {
		res.StdErr = batches.StdErr()
	} else {
		res.StdErr = all.StdErr()
	}
	return res
}
