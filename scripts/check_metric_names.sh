#!/usr/bin/env bash
# check_metric_names.sh — lint the observability naming convention over
# every instrument registered on the obs registry outside internal/obs
# itself (whose tests use a reserved dipe_test_* subsystem):
#
#   dipe_<subsystem>_<name>    subsystem ∈ core | compile | cluster |
#                                          service | worker
#   counters end in _total; gauges and histograms never do.
#
# Names assembled from a literal prefix plus a runtime suffix (e.g.
# "dipe_service_jobs_"+state) are checked on the prefix, which the
# trailing-underscore exemption below recognises.
set -euo pipefail
cd "$(dirname "$0")/.."

matches=$(grep -rnoE '\.(Counter|Gauge|Histogram)(Vec|Func)?\("[^"]*"' \
  --include='*.go' --exclude='*_test.go' internal cmd examples 2>/dev/null |
  grep -v '^internal/obs/' || true)

echo "$matches" | awk -F'"' '
NF < 2 { next }
{
  n++
  name = $2
  split($1, loc, ":")
  where = loc[1] ":" loc[2]
  iscounter = ($1 ~ /\.Counter(Vec|Func)?\($/)
  if (name !~ /^dipe_(core|compile|cluster|power|service|worker)_[a-z][a-z0-9_]*$/) {
    print where ": metric " name " does not match dipe_<subsystem>_<name>"
    bad = 1
  } else if (iscounter && name !~ /_total$/ && name !~ /_$/) {
    print where ": counter " name " must end in _total"
    bad = 1
  } else if (!iscounter && name ~ /_total$/) {
    print where ": non-counter " name " must not end in _total"
    bad = 1
  }
}
END {
  if (n == 0) { print "check_metric_names: no registrations found (grep pattern stale?)"; exit 1 }
  printf "check_metric_names: %d metric names OK\n", n
  exit bad
}'
