package netlist

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// s27Like builds a small sequential circuit mirroring s27's structure
// without depending on the bench89 package (which would create an import
// cycle in tests).
func s27Like(t *testing.T) *Circuit {
	t.Helper()
	text := `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`
	c, err := ParseBenchString("s27", text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExtractConeOfOutput(t *testing.T) {
	c := s27Like(t)
	cone, err := ExtractCone(c, []NodeID{c.Lookup("G17")}, "g17cone")
	if err != nil {
		t.Fatal(err)
	}
	// G17 = NOT(G11), G11 = NOR(G5, G9), G9 = NAND(G16, G15), ... the
	// cone reaches most of the circuit but cuts at DFF outputs.
	if len(cone.Latches) != 0 {
		t.Fatalf("cone contains %d latches, want 0", len(cone.Latches))
	}
	if len(cone.Outputs) != 1 || cone.Nodes[cone.Outputs[0]].Name != "G17" {
		t.Fatalf("cone outputs = %v", cone.Outputs)
	}
	// DFF outputs referenced by the cone must have become inputs.
	for _, name := range []string{"G5", "G6", "G7"} {
		id := cone.Lookup(name)
		if id == InvalidNode {
			continue // not in this cone is acceptable
		}
		if cone.Nodes[id].Kind != logic.Input {
			t.Errorf("latch %s in cone is %s, want INPUT", name, cone.Nodes[id].Kind)
		}
	}
	// Unreached input G2 must not appear (G17's cone does not use G13).
	if cone.Lookup("G13") != InvalidNode {
		t.Error("G13 (not in G17's cone) was extracted")
	}
}

func TestConeFunctionalEquivalence(t *testing.T) {
	// The cone must compute exactly the same function of (PI, state) as
	// the original circuit node, across random assignments.
	c := s27Like(t)
	root := c.Lookup("G9")
	cone, err := ExtractCone(c, []NodeID{root}, "g9cone")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))

	evalFull := func(assign map[string]bool) bool {
		vals := make([]bool, len(c.Nodes))
		for i := range c.Nodes {
			if c.Nodes[i].Kind.IsSource() {
				vals[i] = assign[c.Nodes[i].Name]
			}
		}
		for _, id := range c.Order() {
			nd := &c.Nodes[id]
			in := make([]bool, len(nd.Fanin))
			for j, f := range nd.Fanin {
				in[j] = vals[f]
			}
			vals[id] = logic.Eval(nd.Kind, in)
		}
		return vals[root]
	}
	evalCone := func(assign map[string]bool) bool {
		vals := make([]bool, len(cone.Nodes))
		for i := range cone.Nodes {
			if cone.Nodes[i].Kind == logic.Input {
				vals[i] = assign[cone.Nodes[i].Name]
			}
		}
		for _, id := range cone.Order() {
			nd := &cone.Nodes[id]
			in := make([]bool, len(nd.Fanin))
			for j, f := range nd.Fanin {
				in[j] = vals[f]
			}
			vals[id] = logic.Eval(nd.Kind, in)
		}
		return vals[cone.Outputs[0]]
	}

	for trial := 0; trial < 200; trial++ {
		assign := map[string]bool{}
		for _, name := range []string{"G0", "G1", "G2", "G3", "G5", "G6", "G7"} {
			assign[name] = rng.Intn(2) == 1
		}
		if evalFull(assign) != evalCone(assign) {
			t.Fatalf("cone diverges from original at %v", assign)
		}
	}
}

func TestExtractConeMultipleRoots(t *testing.T) {
	c := s27Like(t)
	roots := []NodeID{c.Lookup("G10"), c.Lookup("G13")}
	cone, err := ExtractCone(c, roots, "nextstate")
	if err != nil {
		t.Fatal(err)
	}
	if len(cone.Outputs) != 2 {
		t.Fatalf("outputs = %d, want 2", len(cone.Outputs))
	}
}

func TestExtractConeErrors(t *testing.T) {
	c := s27Like(t)
	if _, err := ExtractCone(c, nil, "x"); err == nil {
		t.Error("empty roots accepted")
	}
	if _, err := ExtractCone(c, []NodeID{9999}, "x"); err == nil {
		t.Error("out-of-range root accepted")
	}
	unfrozen := NewCircuit("u")
	if _, err := ExtractCone(unfrozen, []NodeID{0}, "x"); err == nil {
		t.Error("unfrozen circuit accepted")
	}
}

func TestExtractConeOfSourceOnly(t *testing.T) {
	c := s27Like(t)
	cone, err := ExtractCone(c, []NodeID{c.Lookup("G0")}, "pin")
	if err != nil {
		t.Fatal(err)
	}
	if cone.NumGates() != 0 || len(cone.Inputs) != 1 {
		t.Fatalf("source cone: %+v", cone.ComputeStats())
	}
}

func TestFanoutCone(t *testing.T) {
	c := s27Like(t)
	// G14 = NOT(G0) feeds G8 and G10; G8 feeds G15,G16; those feed G9;
	// G9 feeds G11; G11 feeds G17 and G10... all combinational reachable.
	cone := FanoutCone(c, c.Lookup("G14"))
	want := map[string]bool{"G8": true, "G10": true, "G15": true, "G16": true,
		"G9": true, "G11": true, "G17": true}
	got := map[string]bool{}
	for _, id := range cone {
		got[c.Nodes[id].Name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("FanoutCone(G14) missing %s (got %v)", name, got)
		}
	}
	// Latches are never crossed.
	for _, id := range cone {
		if c.Nodes[id].Kind == logic.DFF {
			t.Errorf("FanoutCone crossed into latch %s", c.Nodes[id].Name)
		}
	}
	if FanoutCone(c, -1) != nil {
		t.Error("invalid id should return nil")
	}
}
