package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.10g, want %.10g (tol %g)", name, got, want, tol)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	almost(t, "Phi(0)", NormalCDF(0), 0.5, 1e-15)
	almost(t, "Phi(1.96)", NormalCDF(1.959963984540054), 0.975, 1e-12)
	almost(t, "Phi(-1.96)", NormalCDF(-1.959963984540054), 0.025, 1e-12)
	almost(t, "Phi(2.5758)", NormalCDF(2.5758293035489004), 0.995, 1e-12)
	almost(t, "Phi(3)", NormalCDF(3), 0.9986501019683699, 1e-12)
}

func TestNormalQuantileKnownValues(t *testing.T) {
	almost(t, "z(0.5)", NormalQuantile(0.5), 0, 1e-12)
	almost(t, "z(0.975)", NormalQuantile(0.975), 1.959963984540054, 1e-9)
	almost(t, "z(0.995)", NormalQuantile(0.995), 2.5758293035489004, 1e-9)
	almost(t, "z(0.9)", NormalQuantile(0.9), 1.2815515655446004, 1e-9)
	almost(t, "z(0.0001)", NormalQuantile(0.0001), -3.719016485455709, 1e-8)
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	err := quick.Check(func(u float64) bool {
		p := math.Abs(math.Mod(u, 1))
		if p < 1e-10 || p > 1-1e-10 {
			return true
		}
		z := NormalQuantile(p)
		return math.Abs(NormalCDF(z)-p) < 1e-10
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.4} {
		if d := NormalQuantile(p) + NormalQuantile(1-p); math.Abs(d) > 1e-9 {
			t.Errorf("z(%g) + z(%g) = %g, want 0", p, 1-p, d)
		}
	}
}

func TestNormalQuantilePanicsOutsideDomain(t *testing.T) {
	for _, p := range []float64{-0.5, 1.5, math.NaN()} {
		func() {
			defer func() { recover() }()
			NormalQuantile(p)
			t.Errorf("NormalQuantile(%v) did not panic", p)
		}()
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		almost(t, "I_x(1,1)", RegIncBeta(1, 1, x), x, 1e-12)
	}
	// I_x(2,2) = x^2(3-2x).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		almost(t, "I_x(2,2)", RegIncBeta(2, 2, x), x*x*(3-2*x), 1e-12)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	almost(t, "symmetry", RegIncBeta(3.5, 1.25, 0.3), 1-RegIncBeta(1.25, 3.5, 0.7), 1e-12)
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// With 1 dof (Cauchy): F(1) = 0.75.
	almost(t, "t1(1)", StudentTCDF(1, 1), 0.75, 1e-12)
	// Large dof approaches the normal.
	almost(t, "t1e6(1.96)", StudentTCDF(1.959963984540054, 1e6), 0.975, 1e-4)
	almost(t, "t(0)", StudentTCDF(0, 7), 0.5, 1e-15)
}

func TestStudentTQuantileKnownValues(t *testing.T) {
	// Classical table values.
	almost(t, "t(0.975,10)", StudentTQuantile(0.975, 10), 2.228138852, 1e-6)
	almost(t, "t(0.995,30)", StudentTQuantile(0.995, 30), 2.749995654, 1e-6)
	almost(t, "t(0.95,5)", StudentTQuantile(0.95, 5), 2.015048373, 1e-6)
	almost(t, "t(0.5,3)", StudentTQuantile(0.5, 3), 0, 1e-12)
	// Symmetry.
	almost(t, "t symmetry", StudentTQuantile(0.1, 12), -StudentTQuantile(0.9, 12), 1e-9)
}

func TestStudentTQuantileInvertsCDF(t *testing.T) {
	for _, nu := range []float64{1, 2, 5, 30, 200} {
		for _, p := range []float64{0.01, 0.2, 0.5, 0.8, 0.99} {
			q := StudentTQuantile(p, nu)
			almost(t, "t roundtrip", StudentTCDF(q, nu), p, 1e-9)
		}
	}
}

func TestBinomialCDF(t *testing.T) {
	// Exact small cases.
	almost(t, "Bin(2,0.5)<=0", BinomialCDF(0, 2, 0.5), 0.25, 1e-12)
	almost(t, "Bin(2,0.5)<=1", BinomialCDF(1, 2, 0.5), 0.75, 1e-12)
	almost(t, "Bin(2,0.5)<=2", BinomialCDF(2, 2, 0.5), 1, 0)
	almost(t, "Bin(10,0.3)<=3", BinomialCDF(3, 10, 0.3), 0.6496107184, 1e-9)
	if BinomialCDF(-1, 5, 0.5) != 0 {
		t.Error("CDF(-1) != 0")
	}
}

func TestBinomialCDFMatchesPMFSum(t *testing.T) {
	for _, n := range []int{1, 7, 40} {
		for _, p := range []float64{0.1, 0.5, 0.83} {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += BinomialPMF(k, n, p)
				almost(t, "pmf-sum", BinomialCDF(k, n, p), sum, 1e-10)
			}
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	almost(t, "pmf p=0 k=0", BinomialPMF(0, 5, 0), 1, 0)
	almost(t, "pmf p=0 k=1", BinomialPMF(1, 5, 0), 0, 0)
	almost(t, "pmf p=1 k=n", BinomialPMF(5, 5, 1), 1, 0)
	almost(t, "pmf out of range", BinomialPMF(7, 5, 0.5), 0, 0)
}

func TestDKWEpsilon(t *testing.T) {
	// eps = sqrt(ln(2/0.01)/(2*100))
	almost(t, "DKW", DKWEpsilon(100, 0.01), math.Sqrt(math.Log(200)/200), 1e-12)
	// Monotone decreasing in n.
	if DKWEpsilon(1000, 0.05) >= DKWEpsilon(100, 0.05) {
		t.Error("DKW epsilon not decreasing in n")
	}
}

func TestAccumulatorAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	var acc Accumulator
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		acc.Add(xs[i])
	}
	almost(t, "mean", acc.Mean(), Mean(xs), 1e-10)
	almost(t, "var", acc.Variance(), Variance(xs), 1e-8)
	almost(t, "stderr", acc.StdErr(), Std(xs)/math.Sqrt(500), 1e-9)
	minX, maxX := xs[0], xs[0]
	for _, x := range xs {
		minX = math.Min(minX, x)
		maxX = math.Max(maxX, x)
	}
	almost(t, "min", acc.Min(), minX, 0)
	almost(t, "max", acc.Max(), maxX, 0)
	if acc.N() != 500 {
		t.Errorf("N = %d", acc.N())
	}
}

func TestAccumulatorReset(t *testing.T) {
	var acc Accumulator
	acc.Add(5)
	acc.Reset()
	if acc.N() != 0 || acc.Mean() != 0 || acc.Variance() != 0 {
		t.Errorf("reset accumulator not empty: %s", acc.String())
	}
}

func TestAccumulatorCV(t *testing.T) {
	var acc Accumulator
	for _, x := range []float64{9, 11, 9, 11} {
		acc.Add(x)
	}
	almost(t, "cv", acc.CV(), Std([]float64{9, 11, 9, 11})/10, 1e-12)
}

func TestMedianAndQuantiles(t *testing.T) {
	almost(t, "median odd", Median([]float64{3, 1, 2}), 2, 0)
	almost(t, "median even", Median([]float64{4, 1, 3, 2}), 2.5, 0)
	almost(t, "median empty", Median(nil), 0, 0)
	xs := []float64{1, 2, 3, 4, 5}
	almost(t, "q0", Quantile(xs, 0), 1, 0)
	almost(t, "q1", Quantile(xs, 1), 5, 0)
	almost(t, "q0.5", Quantile(xs, 0.5), 3, 0)
	almost(t, "q0.25", Quantile(xs, 0.25), 2, 0)
	almost(t, "interp", Quantile([]float64{0, 10}, 0.3), 3, 1e-12)
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	sort.Float64s(xs)
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0001; q += 0.01 {
		qq := math.Min(q, 1)
		v := SortedQuantile(xs, qq)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", qq, v, prev)
		}
		prev = v
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	acf := Autocorrelation(xs, 5)
	almost(t, "acf[0]", acf[0], 1, 0)
	for k := 1; k <= 5; k++ {
		if math.Abs(acf[k]) > 0.03 {
			t.Errorf("white-noise acf[%d] = %g, want ~0", k, acf[k])
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with coefficient 0.8: acf[k] ~ 0.8^k.
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 100000)
	x := 0.0
	for i := range xs {
		x = 0.8*x + rng.NormFloat64()
		xs[i] = x
	}
	acf := Autocorrelation(xs, 3)
	for k := 1; k <= 3; k++ {
		want := math.Pow(0.8, float64(k))
		if math.Abs(acf[k]-want) > 0.03 {
			t.Errorf("AR1 acf[%d] = %g, want %g", k, acf[k], want)
		}
	}
}

func TestAutocorrelationConstant(t *testing.T) {
	acf := Autocorrelation([]float64{5, 5, 5, 5, 5}, 2)
	if acf[0] != 1 || acf[1] != 0 || acf[2] != 0 {
		t.Errorf("constant acf = %v", acf)
	}
}

func TestEDF(t *testing.T) {
	e := NewEDF([]float64{1, 2, 2, 3})
	almost(t, "F(0)", e.At(0), 0, 0)
	almost(t, "F(1)", e.At(1), 0.25, 0)
	almost(t, "F(2)", e.At(2), 0.75, 0)
	almost(t, "F(2.5)", e.At(2.5), 0.75, 0)
	almost(t, "F(3)", e.At(3), 1, 0)
	almost(t, "F(9)", e.At(9), 1, 0)
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
}

func TestKSDistance(t *testing.T) {
	a := NewEDF([]float64{1, 2, 3, 4})
	b := NewEDF([]float64{1, 2, 3, 4})
	almost(t, "identical", KSDistance(a, b), 0, 0)
	c := NewEDF([]float64{11, 12, 13, 14})
	almost(t, "disjoint", KSDistance(a, c), 1, 0)
	// Shifted uniform: KS distance equals the shift fraction.
	d := NewEDF([]float64{2, 3, 4, 5})
	almost(t, "shifted", KSDistance(a, d), 0.25, 0)
}

func TestMeanVarianceEdgeCases(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton edge cases wrong")
	}
}
