package dipe_test

import (
	"math"
	"strings"
	"testing"

	"repro"
)

func TestFacadeMaxPower(t *testing.T) {
	c, err := dipe.Benchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	tb := dipe.NewTestbench(c)
	opts := dipe.DefaultMaxPowerOptions()
	opts.Budget = 1200
	peak, err := dipe.MaxPower(tb, opts)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := dipe.MaxPowerRandom(tb, opts)
	if err != nil {
		t.Fatal(err)
	}
	if peak.Power <= 0 || rnd.Power <= 0 {
		t.Fatalf("peaks: hc=%g random=%g", peak.Power, rnd.Power)
	}
	// The peak must exceed the long-run average.
	ref := dipe.RunReference(tb.NewSession(dipe.NewIIDSource(len(c.Inputs), 0.5, 3)), 128, 10_000)
	if peak.Power <= ref.Power {
		t.Fatalf("peak %g not above average %g", peak.Power, ref.Power)
	}
}

func TestFacadeProbabilisticBaseline(t *testing.T) {
	c, err := dipe.Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := dipe.AnalyzeProbabilities(c, []float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tb := dipe.NewTestbench(c)
	p := stats.Power(tb.Model)
	if p <= 0 {
		t.Fatalf("probabilistic power %g", p)
	}
	// Within a factor of 2 of simulation on this small FSM.
	ref := dipe.RunReference(tb.NewSession(dipe.NewIIDSource(4, 0.5, 9)), 128, 30_000)
	if p < ref.Power/2 || p > ref.Power*2 {
		t.Fatalf("probabilistic %g vs simulated %g out of sanity band", p, ref.Power)
	}
}

func TestFacadeBLIF(t *testing.T) {
	text := `
.model m
.inputs a b
.outputs y
.names a b y
11 1
.end
`
	c, err := dipe.ParseBLIF("m", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 2 || len(c.Outputs) != 1 {
		t.Fatalf("stats: %+v", c.ComputeStats())
	}
	if _, err := dipe.LoadBLIF("/nonexistent.blif"); err == nil {
		t.Fatal("missing BLIF file accepted")
	}
}

func TestFacadeDiagnose(t *testing.T) {
	c, err := dipe.Benchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	tb := dipe.NewTestbench(c)
	s := tb.NewSession(dipe.NewIIDSource(len(c.Inputs), 0.5, 4))
	d, err := dipe.Diagnose(s, 2, 320)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tests) == 0 || len(d.ACF) == 0 {
		t.Fatalf("diagnostics empty: %+v", d)
	}
}

func TestFacadeEstimateBatchMeans(t *testing.T) {
	c, err := dipe.Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	tb := dipe.NewTestbench(c)
	res, err := dipe.EstimateBatchMeans(tb.NewSession(dipe.NewIIDSource(4, 0.5, 5)), dipe.DefaultOptions(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Power <= 0 {
		t.Fatalf("batch means: %+v", res)
	}
}

func TestFacadeCompositeTest(t *testing.T) {
	comp := dipe.CompositeTest(dipe.OrdinaryRunsTest, dipe.LjungBoxTest)
	opts := dipe.DefaultOptions()
	opts.Test = comp
	c, err := dipe.Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	tb := dipe.NewTestbench(c)
	res, err := dipe.Estimate(tb.NewSession(dipe.NewIIDSource(4, 0.5, 6)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("composite-test estimation did not converge")
	}
}

func TestFacadeStateSampling(t *testing.T) {
	c, err := dipe.Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.5, 0.5, 0.5, 0.5}
	stg, err := dipe.ExtractSTG(c, p)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := stg.Stationary(1e-10, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	tb := dipe.NewTestbench(c)
	res, err := dipe.EstimateByStateSampling(tb.NewSession(dipe.NewIIDSource(4, 0.5, 7)),
		stg, pi, p, dipe.DefaultSpec(), dipe.OrderStatisticsCriterion, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Power <= 0 {
		t.Fatalf("state sampling: %+v", res)
	}
}

func TestFacadeCustomTestbench(t *testing.T) {
	c, err := dipe.Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	tb := dipe.NewCustomTestbench(c, dipe.UnitDelayModel, dipe.DefaultCapModel(), dipe.DefaultSupply())
	ref := dipe.RunReference(tb.NewSession(dipe.NewIIDSource(4, 0.5, 8)), 64, 5_000)
	if ref.Power <= 0 {
		t.Fatalf("unit-delay reference power %g", ref.Power)
	}
	// Zero-delay power must not exceed general-delay power on the same
	// stream (glitches only add).
	tbz := dipe.NewCustomTestbench(c, dipe.ZeroDelayModel, dipe.DefaultCapModel(), dipe.DefaultSupply())
	refz := dipe.RunReference(tbz.NewSession(dipe.NewIIDSource(4, 0.5, 8)), 64, 5_000)
	tbf := dipe.NewCustomTestbench(c, dipe.FanoutDelayModel, dipe.DefaultCapModel(), dipe.DefaultSupply())
	reff := dipe.RunReference(tbf.NewSession(dipe.NewIIDSource(4, 0.5, 8)), 64, 5_000)
	if refz.Power > reff.Power*1.001 {
		t.Fatalf("zero-delay power %g above general-delay %g", refz.Power, reff.Power)
	}
	if math.IsNaN(refz.Power) || math.IsNaN(reff.Power) {
		t.Fatal("NaN power")
	}
}
