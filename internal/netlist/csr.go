package netlist

import "repro/internal/logic"

// CSR is a frozen, cache-friendly compressed-sparse-row view of a
// circuit. Instead of chasing per-Node Fanin/Fanout slices (one pointer
// dereference and one potential cache miss per node), simulator inner
// loops walk flat int32 arrays laid out contiguously in memory:
//
//	fanin of node i:  FaninList[FaninIdx[i]:FaninIdx[i+1]]
//	fanout of node i: FanoutList[FanoutIdx[i]:FanoutIdx[i+1]]
//
// Kind and Level are dense per-node arrays so the hot loops never touch
// the Node structs at all. The view is built once by Freeze and shared
// by every simulator over the circuit; it must be treated as read-only.
type CSR struct {
	// Kind[i] is the gate kind of node i.
	Kind []logic.Kind
	// Level[i] is the logic level of node i (sources are 0).
	Level []int32

	// FaninIdx has len(Nodes)+1 entries; FaninList is the concatenation
	// of all fanin lists in node order.
	FaninIdx  []int32
	FaninList []int32

	// FanoutIdx/FanoutList mirror FaninIdx/FaninList for fanouts.
	FanoutIdx  []int32
	FanoutList []int32

	// GateFanoutIdx/GateFanoutList restrict fanouts to combinational
	// sinks — the set the event-driven simulator re-evaluates (DFF D
	// pins are captured at the clock edge, not propagated).
	GateFanoutIdx  []int32
	GateFanoutList []int32

	// Order is the levelized combinational evaluation order (gates only).
	Order []int32

	// Inputs, Latches and Outputs are the declaration-order node lists.
	Inputs  []int32
	Latches []int32
	Outputs []int32

	// LatchD[i] is the D-pin driver of Latches[i].
	LatchD []int32

	// Const0s/Const1s list the constant-driver nodes, so simulators can
	// initialize them without scanning the whole node array every settle.
	Const0s []int32
	Const1s []int32
}

// Fanin returns the fanin node list of node i (read-only).
func (r *CSR) Fanin(i int32) []int32 { return r.FaninList[r.FaninIdx[i]:r.FaninIdx[i+1]] }

// Fanout returns the fanout node list of node i (read-only).
func (r *CSR) Fanout(i int32) []int32 { return r.FanoutList[r.FanoutIdx[i]:r.FanoutIdx[i+1]] }

// GateFanout returns the combinational fanout node list of node i.
func (r *CSR) GateFanout(i int32) []int32 {
	return r.GateFanoutList[r.GateFanoutIdx[i]:r.GateFanoutIdx[i+1]]
}

// NumNodes returns the node count of the underlying circuit.
func (r *CSR) NumNodes() int { return len(r.Kind) }

// buildCSR flattens a validated, levelized circuit into its CSR view.
// Called by Freeze after fanouts and levels are final.
func (c *Circuit) buildCSR() {
	n := len(c.Nodes)
	r := &CSR{
		Kind:          make([]logic.Kind, n),
		Level:         make([]int32, n),
		FaninIdx:      make([]int32, n+1),
		FanoutIdx:     make([]int32, n+1),
		GateFanoutIdx: make([]int32, n+1),
		Order:         make([]int32, len(c.order)),
		Inputs:        make([]int32, len(c.Inputs)),
		Latches:       make([]int32, len(c.Latches)),
		Outputs:       make([]int32, len(c.Outputs)),
		LatchD:        make([]int32, len(c.Latches)),
	}
	totalIn, totalOut, totalGateOut := 0, 0, 0
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		r.Kind[i] = nd.Kind
		r.Level[i] = c.levels[i]
		totalIn += len(nd.Fanin)
		totalOut += len(nd.Fanout)
		for _, t := range nd.Fanout {
			if c.Nodes[t].Kind.IsCombinational() {
				totalGateOut++
			}
		}
		switch nd.Kind {
		case logic.Const0:
			r.Const0s = append(r.Const0s, int32(i))
		case logic.Const1:
			r.Const1s = append(r.Const1s, int32(i))
		}
	}
	r.FaninList = make([]int32, 0, totalIn)
	r.FanoutList = make([]int32, 0, totalOut)
	r.GateFanoutList = make([]int32, 0, totalGateOut)
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		r.FaninIdx[i] = int32(len(r.FaninList))
		for _, f := range nd.Fanin {
			r.FaninList = append(r.FaninList, int32(f))
		}
		r.FanoutIdx[i] = int32(len(r.FanoutList))
		r.GateFanoutIdx[i] = int32(len(r.GateFanoutList))
		for _, t := range nd.Fanout {
			r.FanoutList = append(r.FanoutList, int32(t))
			if c.Nodes[t].Kind.IsCombinational() {
				r.GateFanoutList = append(r.GateFanoutList, int32(t))
			}
		}
	}
	r.FaninIdx[n] = int32(len(r.FaninList))
	r.FanoutIdx[n] = int32(len(r.FanoutList))
	r.GateFanoutIdx[n] = int32(len(r.GateFanoutList))
	for i, id := range c.order {
		r.Order[i] = int32(id)
	}
	for i, id := range c.Inputs {
		r.Inputs[i] = int32(id)
	}
	for i, id := range c.Latches {
		r.Latches[i] = int32(id)
		r.LatchD[i] = int32(c.Nodes[id].Fanin[0])
	}
	for i, id := range c.Outputs {
		r.Outputs[i] = int32(id)
	}
	c.csr = r
}

// CSR returns the flattened view of a frozen circuit.
func (c *Circuit) CSR() *CSR {
	if !c.frozen {
		panic("netlist: CSR on unfrozen circuit " + c.Name)
	}
	return c.csr
}
