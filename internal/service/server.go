package service

import "net/http"

// Config sizes the service. The zero value means defaults everywhere,
// so Config{} is a valid production starting point.
type Config struct {
	// CacheSize is the frozen-circuit LRU capacity (default
	// DefaultCacheSize).
	CacheSize int
	// Workers is the number of concurrently running estimation jobs
	// (default 2). Each job additionally fans out over its own
	// Options.Workers simulation goroutines.
	Workers int
	// QueueSize bounds pending (queued, not yet running) jobs
	// (default 64); Submit beyond it returns ErrQueueFull.
	QueueSize int
}

// DefaultConfig returns the default sizing.
func DefaultConfig() Config { return Config{} }

// Service bundles the circuit registry, the job pool and the HTTP API.
// Create one with New, mount Handler on an http.Server, and Close on
// shutdown.
type Service struct {
	Registry *Registry
	Jobs     *Manager
	mux      *http.ServeMux
}

// New builds a service from the config and starts its worker pool.
func New(cfg Config) *Service {
	s := &Service{Registry: NewRegistry(cfg.CacheSize)}
	s.Jobs = NewManager(s.Registry, cfg.Workers, cfg.QueueSize)
	s.mux = s.routes()
	return s
}

// Handler returns the HTTP API (see routes for the endpoint table).
func (s *Service) Handler() http.Handler { return s.mux }

// Close cancels all live jobs and stops the worker pool.
func (s *Service) Close() { s.Jobs.Close() }
