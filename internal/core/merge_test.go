package core

import (
	"context"
	"testing"

	"repro/internal/bench89"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// TestMergerStreamedRangesMatchParallel is the merge-path contract in
// miniature, with no transport in the loop: running the replication
// space as two StreamReplications ranges and merging their blocks
// through a Merger reproduces EstimateParallelWithInterval bit for bit
// — the exact mechanism the cluster coordinator is built on.
func TestMergerStreamedRangesMatchParallel(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = 24
	opts.Workers = 2
	// A tighter budget keeps the eagerly-streamed queues (maxBlocks
	// blocks each) test-sized; s298 converges well under it.
	opts.MaxSamples = 1 << 16
	const (
		seed     = int64(99)
		interval = 3
	)

	want, err := EstimateParallelWithInterval(tb, factory, seed, opts, interval)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Converged {
		t.Fatal("reference run did not converge")
	}

	m, err := NewMerger(opts)
	if err != nil {
		t.Fatal(err)
	}
	reps, rounds := m.Reps(), m.Rounds()
	if reps != 24 {
		t.Fatalf("merger reps = %d", reps)
	}

	// Two uneven contiguous ranges, streamed eagerly into block queues
	// (like worker streams read ahead of the merge loop).
	bounds := [][2]int{{0, 10}, {10, 24}}
	maxBlocks := opts.MaxSamples/(reps*rounds) + 2
	queues := make([][][]float64, len(bounds))
	for i, b := range bounds {
		i, b := i, b
		err := StreamReplications(context.Background(), tb, factory, seed, opts,
			vr.Plan{}, interval, b[0], b[1], rounds, 0, maxBlocks, 0, func(blk ReplicationBlock) error {
				queues[i] = append(queues[i], blk.Samples)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
	}

	lanes := []int{10, 14}
	for b := 0; !m.Done(); b++ {
		n := m.NextRounds()
		if n < 1 {
			t.Fatalf("budget exhausted before convergence at block %d", b)
		}
		if err := m.MergeBlock([][]float64{queues[0][b], queues[1][b]}, lanes, n); err != nil {
			t.Fatal(err)
		}
	}
	if m.Estimate() != want.Power {
		t.Errorf("merged estimate %v, want %v", m.Estimate(), want.Power)
	}
	if m.HalfWidth() != want.HalfWidth {
		t.Errorf("merged half-width %v, want %v", m.HalfWidth(), want.HalfWidth)
	}
	if m.N() != want.SampleSize {
		t.Errorf("merged sample count %d, want %d", m.N(), want.SampleSize)
	}
	merged := m.MergedRounds()
	if hidden := uint64(reps)*uint64(opts.WarmupCycles) + uint64(merged)*uint64(interval)*uint64(reps); hidden != want.HiddenCycles {
		t.Errorf("derived hidden cycles %d, want %d", hidden, want.HiddenCycles)
	}
	if sampled := uint64(merged) * uint64(reps); sampled != want.SampledCycles {
		t.Errorf("derived sampled cycles %d, want %d", sampled, want.SampledCycles)
	}
}

// TestStreamReplicationsSkipFastForward: a stream started with
// SkipBlocks=k reproduces blocks k, k+1, ... of the unskipped stream
// exactly — the property worker reassignment rests on.
func TestStreamReplicationsSkipFastForward(t *testing.T) {
	c := bench89.MustGet("s27")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Workers = 1
	const (
		seed     = int64(5)
		interval = 2
		rounds   = 4
		total    = 6
		skip     = 3
	)

	collect := func(skipBlocks int) [][]float64 {
		var out [][]float64
		err := StreamReplications(context.Background(), tb, factory, seed, opts,
			vr.Plan{}, interval, 0, 8, rounds, skipBlocks, total, 0, func(blk ReplicationBlock) error {
				s := append([]float64(nil), blk.Samples...)
				out = append(out, s)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	full := collect(0)
	resumed := collect(skip)
	if len(full) != total || len(resumed) != total-skip {
		t.Fatalf("block counts %d/%d, want %d/%d", len(full), len(resumed), total, total-skip)
	}
	for i, blk := range resumed {
		want := full[skip+i]
		for j := range blk {
			if blk[j] != want[j] {
				t.Fatalf("resumed block %d sample %d = %v, want %v (not bit-identical)", skip+i, j, blk[j], want[j])
			}
		}
	}
}

// TestSplitRangeAligned checks the aligned partition rule: exact
// coverage of [lo, hi) in ascending order, all interior boundaries at
// multiples of align (relative to lo), the remainder absorbed by the
// last range, and graceful degradation to SplitRange when the span is
// too small to align or align <= 1.
func TestSplitRangeAligned(t *testing.T) {
	cases := []struct {
		lo, hi, k, align int
	}{
		{0, 4096, 4, 512}, // exact multiple: equal aligned quarters
		{0, 4100, 4, 512}, // remainder rides on the last range
		{0, 1536, 4, 512}, // fewer aligned units than ranges
		{0, 100, 3, 512},  // span smaller than one unit
		{0, 100, 3, 1},    // align disabled
		{7, 4103, 4, 512}, // non-zero lo: alignment is relative to lo
		{0, 513, 2, 512},  // one unit plus remainder
		{0, 64, 64, 8},    // many ranges, few units
	}
	for _, tc := range cases {
		got := SplitRangeAligned(tc.lo, tc.hi, tc.k, tc.align)
		if len(got) != tc.k {
			t.Fatalf("SplitRangeAligned(%d,%d,%d,%d): %d ranges, want %d", tc.lo, tc.hi, tc.k, tc.align, len(got), tc.k)
		}
		next := tc.lo
		for i, b := range got {
			if b[0] != next || b[1] < b[0] {
				t.Fatalf("SplitRangeAligned(%d,%d,%d,%d): range %d = %v breaks coverage at %d", tc.lo, tc.hi, tc.k, tc.align, i, b, next)
			}
			if tc.align > 1 && i < tc.k-1 && (b[1]-tc.lo)%tc.align != 0 && b[1] != tc.hi {
				t.Fatalf("SplitRangeAligned(%d,%d,%d,%d): interior boundary %d not aligned", tc.lo, tc.hi, tc.k, tc.align, b[1])
			}
			next = b[1]
		}
		if next != tc.hi {
			t.Fatalf("SplitRangeAligned(%d,%d,%d,%d): covers up to %d, want %d", tc.lo, tc.hi, tc.k, tc.align, next, tc.hi)
		}
	}
	// align <= 1 must be SplitRange exactly.
	a, b := SplitRangeAligned(3, 77, 5, 1), SplitRange(3, 77, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("align=1: range %d = %v, SplitRange %v", i, a[i], b[i])
		}
	}
}
