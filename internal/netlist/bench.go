package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/logic"
)

// ParseBench reads a circuit in the ISCAS89 ".bench" format:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G5 = DFF(G10)
//	G8 = AND(G14, G6)
//
// Signals may be referenced before they are defined (DFF feedback), so
// parsing is two-pass: first collect declarations, then resolve names.
// The circuit is frozen before being returned.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type rawGate struct {
		out  string
		fn   string
		args []string
		line int
	}
	var (
		inputs  []string
		outputs []string
		gates   []rawGate
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case hasPrefixFold(line, "INPUT"):
			arg, err := parseDecl(line, "INPUT")
			if err != nil {
				return nil, fmt.Errorf("netlist: %s line %d: %v", name, lineNo, err)
			}
			inputs = append(inputs, arg)
		case hasPrefixFold(line, "OUTPUT"):
			arg, err := parseDecl(line, "OUTPUT")
			if err != nil {
				return nil, fmt.Errorf("netlist: %s line %d: %v", name, lineNo, err)
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("netlist: %s line %d: expected assignment, got %q", name, lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.IndexByte(rhs, '(')
			closeP := strings.LastIndexByte(rhs, ')')
			if open < 0 || closeP < open {
				return nil, fmt.Errorf("netlist: %s line %d: malformed gate expression %q", name, lineNo, rhs)
			}
			fn := strings.TrimSpace(rhs[:open])
			var args []string
			inner := strings.TrimSpace(rhs[open+1 : closeP])
			if inner != "" {
				for _, a := range strings.Split(inner, ",") {
					a = strings.TrimSpace(a)
					if a == "" {
						return nil, fmt.Errorf("netlist: %s line %d: empty argument in %q", name, lineNo, rhs)
					}
					args = append(args, a)
				}
			}
			if out == "" {
				return nil, fmt.Errorf("netlist: %s line %d: empty output name", name, lineNo)
			}
			gates = append(gates, rawGate{out: out, fn: fn, args: args, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: reading %s: %v", name, err)
	}

	c := NewCircuit(name)
	for _, in := range inputs {
		if _, err := c.AddNode(in, logic.Input); err != nil {
			return nil, err
		}
	}
	for _, g := range gates {
		kind, ok := logic.ParseKind(g.fn)
		if !ok {
			return nil, fmt.Errorf("netlist: %s line %d: unknown gate function %q", name, g.line, g.fn)
		}
		if kind == logic.Input {
			return nil, fmt.Errorf("netlist: %s line %d: INPUT used as gate function", name, g.line)
		}
		if _, err := c.AddNode(g.out, kind); err != nil {
			return nil, fmt.Errorf("netlist: %s line %d: %v", name, g.line, err)
		}
	}
	// Second pass: resolve fanin names.
	for _, g := range gates {
		id := c.Lookup(g.out)
		fanin := make([]NodeID, len(g.args))
		for i, a := range g.args {
			f := c.Lookup(a)
			if f == InvalidNode {
				return nil, fmt.Errorf("netlist: %s line %d: gate %q references undefined signal %q",
					name, g.line, g.out, a)
			}
			fanin[i] = f
		}
		if err := c.SetFanin(id, fanin...); err != nil {
			return nil, err
		}
	}
	for _, o := range outputs {
		id := c.Lookup(o)
		if id == InvalidNode {
			return nil, fmt.Errorf("netlist: %s: OUTPUT(%s) references undefined signal", name, o)
		}
		if err := c.MarkOutput(id); err != nil {
			return nil, err
		}
	}
	if err := c.Freeze(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseBenchString is ParseBench over an in-memory netlist.
func ParseBenchString(name, text string) (*Circuit, error) {
	return ParseBench(name, strings.NewReader(text))
}

func parseDecl(line, kw string) (string, error) {
	rest := strings.TrimSpace(line[len(kw):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("malformed %s declaration %q", kw, line)
	}
	arg := strings.TrimSpace(rest[1 : len(rest)-1])
	if arg == "" {
		return "", fmt.Errorf("empty %s declaration", kw)
	}
	return arg, nil
}

func hasPrefixFold(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	return strings.EqualFold(s[:len(prefix)], prefix)
}

// WriteBench writes the circuit in .bench format. Node declaration order
// is preserved, so ParseBench(WriteBench(c)) reproduces the circuit
// structure exactly.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	st := c.ComputeStats()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d D-type flipflops, %d gates\n",
		st.Inputs, st.Outputs, st.Latches, st.Gates)
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Nodes[in].Name)
	}
	for _, o := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Nodes[o].Name)
	}
	fmt.Fprintln(bw)
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		if nd.Kind == logic.Input {
			continue
		}
		names := make([]string, len(nd.Fanin))
		for j, f := range nd.Fanin {
			names[j] = c.Nodes[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", nd.Name, nd.Kind, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// BenchString renders the circuit as .bench text.
func BenchString(c *Circuit) string {
	var sb strings.Builder
	// strings.Builder writes never fail.
	_ = WriteBench(&sb, c)
	return sb.String()
}

// SortedNodeNames returns all node names in lexical order; useful for
// deterministic debugging output and tests.
func (c *Circuit) SortedNodeNames() []string {
	names := make([]string, len(c.Nodes))
	for i := range c.Nodes {
		names[i] = c.Nodes[i].Name
	}
	sort.Strings(names)
	return names
}
