// Package dipe is the public API of this repository: a from-scratch Go
// reproduction of
//
//	L.-P. Yuan, C.-C. Teng, S.-M. Kang,
//	"Statistical Estimation of Average Power Dissipation in Sequential
//	Circuits", 34th Design Automation Conference (DAC), 1997.
//
// DIPE ("distribution-independent power estimation") estimates the
// average power of a gate-level sequential circuit by Monte-Carlo
// simulation. Because latch feedback makes consecutive-cycle power
// temporally correlated, DIPE first determines an independence interval
// with a randomness test (the ordinary runs test), samples power once
// per interval with an event-driven general-delay simulator (cheap
// zero-delay simulation in between), and stops when a
// distribution-independent criterion certifies the requested accuracy.
//
// Quick start:
//
//	c, _ := dipe.Benchmark("s298")          // or dipe.LoadBench(path)
//	tb := dipe.NewTestbench(c)
//	src := dipe.NewIIDSource(len(c.Inputs), 0.5, 1)
//	res, _ := dipe.Estimate(tb.NewSession(src), dipe.DefaultOptions())
//	fmt.Println(res.Power, res.Interval, res.SampleSize)
//
// For many replications at once use EstimateParallel (bit-packed, 64
// lanes per machine word); to serve estimates over HTTP use NewServer,
// the entry point behind cmd/dipe-server.
//
// The package is a thin facade; the implementation lives in the
// internal packages, each documented with the paper section it
// implements (see also ARCHITECTURE.md and internal/README.md):
//
//   - internal/netlist, internal/logic — circuit substrate: gate-level
//     representation, .bench/BLIF I/O, frozen CSR view
//   - internal/sim — Section IV's two-phase simulation: zero-delay,
//     packed 64-lane, and event-driven general-delay simulators
//   - internal/power, internal/delay — the power model of Eq. 1 and the
//     timing models feeding it
//   - internal/randtest — Section III.A randomness tests (Eqs. 4–7)
//   - internal/core — the DIPE flow of Fig. 1: interval selection
//     (Fig. 2), estimation, parallel estimator
//   - internal/stopping — Section IV stopping criteria
//   - internal/markov — Section III's exact "first approach" (STG)
//   - internal/proba, internal/refsim, internal/maxpower — baselines
//     and companions (refs [2–4], "SIM", ref [8])
//   - internal/experiments, internal/bench89 — Section V evaluation
//   - internal/service — the estimation service behind cmd/dipe-server
package dipe
