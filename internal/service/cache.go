package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// The result cache exploits the estimator's end-to-end determinism:
// identical (circuit content, input model, seed, canonicalized options)
// always produce a bit-identical Result, so a repeated submission can
// be answered instantly from the first run's result. The key hashes the
// circuit's *provenance* (HashSource) rather than its registry name —
// re-uploading the same netlist under the same name hits, replacing it
// with different text misses — plus the request knobs with defaults
// applied, so spelling a default explicitly still hits. Worker count is
// excluded: results are worker-independent by construction. The
// simulation backend is included even though estimates are
// backend-independent too — the result's engine/backend labels report
// what actually ran, and a cached compiled result must not answer a
// packed request (or vice versa) with the wrong provenance.

// HashSource content-addresses a circuit's provenance. Builtin circuits
// hash their generator identity; uploads hash name, format and the full
// netlist text. This is the circuit-identity half of the cluster wire
// protocol (workers recompute it over propagated provenance and refuse
// mismatches) and of the result-cache key.
func HashSource(src CircuitSource) string {
	h := sha256.New()
	if src.Builtin != "" {
		io.WriteString(h, "builtin\x00")
		io.WriteString(h, src.Builtin)
	} else {
		io.WriteString(h, "upload\x00")
		io.WriteString(h, src.Name)
		io.WriteString(h, "\x00")
		io.WriteString(h, src.Format)
		io.WriteString(h, "\x00")
		io.WriteString(h, src.Text)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheKeySpec is the canonical form of everything a Result depends on.
// Zero-valued request fields are expanded to their defaults before
// hashing, so requests that differ only in how they spell a default
// share a key. Options.Workers, SessionWorkers and CacheBudget are
// deliberately absent: they tune throughput, never results.
type cacheKeySpec struct {
	Hash string `json:"hash"`
	// Input model, normalized ("" kind means "iid", 0 probability means
	// 0.5 — see SourceSpec.Factory).
	Kind string  `json:"kind"`
	P    float64 `json:"p"`
	Rho  float64 `json:"rho,omitempty"`
	Seed int64   `json:"seed"`
	// Interval is the fixed independence interval, -1 when selection
	// runs.
	Interval int `json:"interval"`
	// Estimation knobs with defaults applied.
	RelErr        float64  `json:"relErr"`
	Confidence    float64  `json:"confidence"`
	Alpha         float64  `json:"alpha"`
	SeqLen        int      `json:"seqLen"`
	MaxInterval   int      `json:"maxInterval"`
	CheckEvery    int      `json:"checkEvery"`
	MaxSamples    int      `json:"maxSamples"`
	Warmup        int      `json:"warmup"`
	Replications  int      `json:"replications"`
	Reuse         bool     `json:"reuse"`
	Mode          string   `json:"mode"`
	Backend       string   `json:"backend"`
	Variance      string   `json:"variance,omitempty"`
	Beta          *float64 `json:"beta,omitempty"`
	ControlCycles int      `json:"controlCycles,omitempty"`
	// Breakdown widens the result (per-node attribution) without
	// changing the estimate, so it must key the cache: a scalar-only
	// result cannot answer a breakdown request. omitempty keeps every
	// pre-existing key byte-identical for breakdown-less requests.
	Breakdown bool `json:"breakdown,omitempty"`
}

// resultKey builds the cache key for a request whose circuit resolves
// to the given provenance.
func resultKey(src CircuitSource, req JobRequest) string {
	opts := req.Options.Options()
	spec := cacheKeySpec{
		Hash:          HashSource(src),
		Kind:          req.Source.Kind,
		P:             req.Source.P,
		Rho:           req.Source.Rho,
		Seed:          req.Seed,
		Interval:      -1,
		RelErr:        opts.Spec.RelErr,
		Confidence:    opts.Spec.Confidence,
		Alpha:         opts.Alpha,
		SeqLen:        opts.SeqLen,
		MaxInterval:   opts.MaxInterval,
		CheckEvery:    opts.CheckEvery,
		MaxSamples:    opts.MaxSamples,
		Warmup:        opts.WarmupCycles,
		Replications:  opts.Replications,
		Reuse:         opts.ReuseTestSamples,
		Mode:          opts.Mode.String(),
		Backend:       opts.Backend.String(),
		Variance:      string(opts.Variance.Mode.Canonical()),
		Beta:          opts.Variance.BetaOverride,
		ControlCycles: opts.Variance.ControlCycles,
		Breakdown:     opts.Breakdown,
	}
	if spec.Kind == "" {
		spec.Kind = "iid"
	}
	if spec.P == 0 {
		spec.P = 0.5
	}
	if req.Interval != nil {
		spec.Interval = *req.Interval
	}
	if spec.Replications == 0 {
		spec.Replications = sim.MaxLanes
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// CacheStats is a snapshot of the result cache.
type CacheStats struct {
	// Hits counts submissions answered from a previous identical run.
	Hits uint64 `json:"hits"`
	// Misses counts submissions that had to run.
	Misses uint64 `json:"misses"`
	// Entries is the current number of cached results.
	Entries int `json:"entries"`
}

// resultCache is a bounded FIFO map of finished results keyed by
// resultKey. FIFO (not LRU) keeps eviction trivial; the cache exists to
// absorb repeated submissions, which arrive close together in practice.
// Hit/miss counts live in registry counters (the manager always hands
// in real handles) so /v1/stats and /metrics read the same cells.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	results map[string]ResultView
	order   []string
	hits    *obs.Counter
	misses  *obs.Counter
}

func newResultCache(capacity int, hits, misses *obs.Counter) *resultCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &resultCache{cap: capacity, results: make(map[string]ResultView), hits: hits, misses: misses}
}

// get returns a copy of the cached result, marked Cached, and counts
// the hit/miss.
func (c *resultCache) get(key string) (*ResultView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rv, ok := c.results[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	rv.Cached = true
	return &rv, true
}

// put stores a copy of a finished result (its Cached flag cleared — the
// flag marks served copies, not the original run — and its trace
// summary dropped: the trace belongs to the job that ran, and a served
// copy gets its own).
func (c *resultCache) put(key string, rv ResultView) {
	rv.Cached = false
	rv.Trace = nil
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.results[key]; !ok {
		c.order = append(c.order, key)
		for len(c.order) > c.cap {
			delete(c.results, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.results[key] = rv
}

// stats snapshots the counters.
func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits.Value(), Misses: c.misses.Value(), Entries: len(c.results)}
}
