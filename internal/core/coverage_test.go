package core

import (
	"math"
	"testing"

	"repro/internal/bench89"
	"repro/internal/refsim"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// This file is the statistical conformance suite: an empirical check
// that the intervals the reproduction reports mean what the paper
// claims they mean. A long consecutive-cycle reference fixes the
// ground-truth mean; many independent estimation runs then measure
//
//   - CI coverage: the fraction of runs whose reported interval
//     contains the truth must not fall below the nominal confidence
//     (minus a binomial tolerance band — the criteria are conservative
//     by construction, so only the lower edge is informative), and
//   - unbiasedness: the mean of the point estimates must sit on the
//     truth within Monte-Carlo resolution,
//
// for the plain estimator and for every variance-reduction mode. The
// short variant (coverageRuns = 60) runs in the default `go test`; the
// nightly job builds with -tags slow for the full-size run.

// coverageCase is one estimator configuration under conformance test.
type coverageCase struct {
	name string
	mode vr.Mode
}

func TestCICoverageConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite skipped in -short mode")
	}
	c := bench89.MustGet("s27")
	tb := DefaultTestbench(c)
	width := len(c.Inputs)

	// Ground truth: a long general-delay reference, far tighter than the
	// estimates under test. Its own standard error is folded into the
	// coverage check so the truth's residual uncertainty can only be
	// charged in the estimator's favour, never against it.
	ref := refsim.Run(tb.NewSession(vectors.NewIID(width, 0.5, 999_999)), 512, 300_000)
	truth := ref.Power
	truthSlack := 3 * ref.StdErr
	if ref.RelStdErr() > 0.005 {
		t.Fatalf("reference too loose for a conformance baseline: rel SE %.3f%%", 100*ref.RelStdErr())
	}

	const confidence = 0.95
	cases := []coverageCase{
		{"plain", vr.ModeNone},
		{"antithetic", vr.ModeAntithetic},
		{"control-variate", vr.ModeControlVariate},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			covered, converged := 0, 0
			var sumEst, sumSq float64
			for r := 0; r < coverageRuns; r++ {
				opts := DefaultOptions()
				opts.Spec.RelErr = 0.05
				opts.Spec.Confidence = confidence
				opts.Replications = 32
				opts.Workers = 2
				opts.Variance.Mode = tc.mode
				opts.Variance.ControlCycles = 1024 // cheap covariate mean; error still negligible
				seed := int64(1_000_000 + r*7919)  // disjoint from the reference seed
				res, err := EstimateParallel(tb, vectors.IIDFactory(width, 0.5), seed, opts)
				if err != nil {
					t.Fatalf("run %d: %v", r, err)
				}
				if !res.Converged {
					continue
				}
				converged++
				sumEst += res.Power
				sumSq += res.Power * res.Power
				if math.Abs(res.Power-truth) <= res.HalfWidth+truthSlack {
					covered++
				}
			}
			if converged < coverageRuns*9/10 {
				t.Fatalf("only %d/%d runs converged", converged, coverageRuns)
			}

			// Coverage: empirical rate within the binomial tolerance band
			// below the nominal level. The criteria are conservative
			// (coverage >= nominal by design), so the upper edge is 1.
			coverage := float64(covered) / float64(converged)
			band := 3 * math.Sqrt(confidence*(1-confidence)/float64(converged))
			if coverage < confidence-band {
				t.Errorf("empirical %.0f%%-CI coverage %.3f below tolerance floor %.3f (%d/%d)",
					100*confidence, coverage, confidence-band, covered, converged)
			}

			// Unbiasedness: the estimator mean must agree with the truth
			// within Monte-Carlo resolution of the run ensemble.
			n := float64(converged)
			mean := sumEst / n
			sd := math.Sqrt(math.Max(0, sumSq/n-mean*mean))
			tol := 4*sd/math.Sqrt(n) + truthSlack
			if math.Abs(mean-truth) > tol {
				t.Errorf("estimator mean %v deviates from truth %v by %v (tolerance %v) — biased",
					mean, truth, math.Abs(mean-truth), tol)
			}
			t.Logf("%s: coverage %d/%d = %.3f (floor %.3f), mean %.6g vs truth %.6g, sd %.3g",
				tc.name, covered, converged, coverage, confidence-band, mean, truth, sd)
		})
	}
}
