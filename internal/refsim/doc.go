// Package refsim computes the reference average power the paper calls
// "SIM": the mean per-cycle power over a long run of consecutive clock
// cycles under the general-delay simulator. Table 1 uses one million
// cycles; the cycle budget here is a parameter so the full suite remains
// runnable in minutes, and the reference's own statistical uncertainty
// is reported via batch means.
//
// In the paper this is the accuracy yardstick of Section V: Table 1's
// "SIM" column and the Davg/Err% columns of Table 2 are deviations of
// DIPE estimates from exactly this kind of long consecutive-cycle run.
package refsim
