package service

import (
	"context"
	"time"

	"repro/internal/core"
)

// Dispatcher runs a validated job's estimation phase on a resolved
// testbench. It is the seam between the job manager and the execution
// substrate: the local dispatcher calls core.EstimateParallel in
// process, the cluster dispatcher (internal/cluster.Coordinator) shards
// the job's replications across dipe-worker processes and merges their
// partial results into the same sequential stopping rule. Existing jobs
// run transparently on either — both substrates use the identical
// replication seeding (baseSeed+1+r) and merge order, so the choice is
// invisible in the Result.
type Dispatcher interface {
	// Name labels the dispatch strategy in statistics ("local",
	// "cluster").
	Name() string
	// Ready reports whether the dispatcher can currently run jobs; the
	// /readyz probe surfaces its error. The local dispatcher is always
	// ready; the cluster dispatcher requires at least one live worker.
	Ready() error
	// Estimate runs one job to completion (or ctx cancellation),
	// reporting running snapshots through progress (never concurrently
	// with itself). On cancellation it returns the partial result with
	// ctx's error, like core.EstimateParallelCtx.
	Estimate(ctx context.Context, tb *core.Testbench, req JobRequest, progress func(core.Progress)) (core.Result, error)
}

// ResumableDispatcher is the optional Dispatcher extension for
// substrates that can checkpoint and resume the estimation flow at the
// pre-sampling/sampling boundary. When the configured dispatcher
// implements it and a job store is attached, the manager persists the
// checkpoint the moment the plan freezes and ships it back on restart —
// a resumed job skips interval selection and plan calibration and, by
// the determinism contract, finishes with a Result bit-identical to the
// uninterrupted run's.
type ResumableDispatcher interface {
	Dispatcher
	// EstimateResumable is Estimate with the checkpoint seam exposed:
	// a nil ckpt runs the pre-sampling phases and reports their frozen
	// outcome through save (when non-nil) before sampling starts; a
	// non-nil ckpt skips them and resumes sampling directly.
	EstimateResumable(ctx context.Context, tb *core.Testbench, req JobRequest, ckpt *Checkpoint, save func(Checkpoint), progress func(core.Progress)) (core.Result, error)
}

// WorkerRegistrar is the optional Dispatcher extension for substrates
// with a dynamic worker set; the HTTP layer exposes it as the
// /v1/cluster/workers endpoints when the configured dispatcher
// implements it.
type WorkerRegistrar interface {
	// AddWorker registers (or re-registers) a worker by base URL.
	AddWorker(url string) error
	// Workers snapshots the registered workers.
	Workers() []WorkerStatus
}

// RegistryAware is the optional Dispatcher extension for substrates
// that must propagate circuits to remote processes: New hands the
// service registry to the dispatcher so it can look up a job circuit's
// provenance (Registry.Source) and ship it to workers that miss it.
type RegistryAware interface {
	SetRegistry(*Registry)
}

// WorkerStatus is one registered worker's health and degradation
// snapshot. Beyond liveness, the lease counters let operators see a
// worker that is alive but slow (leases keep expiring), flaky (streams
// keep retrying) or picking up others' work (reassignments).
type WorkerStatus struct {
	URL      string    `json:"url"`
	Alive    bool      `json:"alive"`
	LastSeen time.Time `json:"lastSeen,omitzero"`
	// Failures counts stream and heartbeat failures attributed to the
	// worker since registration.
	Failures uint64 `json:"failures"`
	// ActiveLeases is the number of replication-range leases the worker
	// holds right now.
	ActiveLeases int `json:"activeLeases,omitempty"`
	// Retries counts failed stream attempts charged to the worker
	// (transport/server errors and expired leases alike).
	Retries uint64 `json:"retries,omitempty"`
	// Reassignments counts leases the worker inherited mid-range after
	// another worker failed or timed out (its streams replay the merged
	// prefix via SkipBlocks).
	Reassignments uint64 `json:"reassignments,omitempty"`
	// LeaseExpiries counts leases reclaimed from the worker because a
	// block missed its delivery deadline.
	LeaseExpiries uint64 `json:"leaseExpiries,omitempty"`
	// LeaseGrants counts replication-range leases granted to the worker.
	LeaseGrants uint64 `json:"leaseGrants,omitempty"`
	// LeaseSteals counts expired leases the worker took over from
	// another worker (the work-stealing path; counted on the thief).
	LeaseSteals uint64 `json:"leaseSteals,omitempty"`
	// LastError is the most recent failure attributed to the worker.
	LastError string `json:"lastError,omitempty"`
}

// localDispatcher runs jobs in-process over the goroutine-parallel
// estimator — the single-node default. met, when non-nil, feeds the
// estimator's per-round convergence telemetry (dipe_core_*).
type localDispatcher struct {
	met *core.Metrics
}

// NewLocalDispatcher returns the in-process dispatcher.
func NewLocalDispatcher() Dispatcher { return localDispatcher{} }

func (localDispatcher) Name() string { return "local" }

func (localDispatcher) Ready() error { return nil }

func (d localDispatcher) Estimate(ctx context.Context, tb *core.Testbench, req JobRequest, progress func(core.Progress)) (core.Result, error) {
	factory, err := req.Source.Factory(len(tb.Circuit.Inputs))
	if err != nil {
		return core.Result{}, err
	}
	opts := req.Options.Options()
	opts.Progress = progress
	opts.Metrics = d.met
	if req.Interval != nil {
		return core.EstimateParallelWithIntervalCtx(ctx, tb, factory, req.Seed, opts, *req.Interval)
	}
	return core.EstimateParallelCtx(ctx, tb, factory, req.Seed, opts)
}

func (d localDispatcher) EstimateResumable(ctx context.Context, tb *core.Testbench, req JobRequest, ckpt *Checkpoint, save func(Checkpoint), progress func(core.Progress)) (core.Result, error) {
	factory, err := req.Source.Factory(len(tb.Circuit.Inputs))
	if err != nil {
		return core.Result{}, err
	}
	opts := req.Options.Options()
	opts.Progress = progress
	opts.Metrics = d.met
	var rp core.ResumePoint
	if ckpt != nil {
		rp = ckpt.ResumePoint()
	} else {
		if rp, err = core.PreparePlanCtx(ctx, tb, factory, req.Seed, opts, req.Interval); err != nil {
			return core.Result{}, err
		}
		if save != nil {
			save(CheckpointOf(rp))
		}
	}
	return core.EstimateParallelResumeCtx(ctx, tb, factory, req.Seed, opts, rp)
}
