package service

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/netlist"
)

// DefaultCacheSize is the frozen-circuit LRU capacity used when a
// Registry is built with a non-positive capacity.
const DefaultCacheSize = 16

// RegistryStats is a snapshot of the registry's cache behaviour. The
// Hits/Misses split is the service's cache-effectiveness signal: a
// second request for the same circuit must be a hit (no re-parse, no
// re-freeze).
type RegistryStats struct {
	// Hits counts Testbench calls answered from the LRU cache.
	Hits uint64 `json:"hits"`
	// Misses counts Testbench calls that had to parse/generate and
	// freeze the circuit.
	Misses uint64 `json:"misses"`
	// Evictions counts frozen circuits dropped by the LRU policy.
	Evictions uint64 `json:"evictions"`
	// Cached is the current number of frozen testbenches held.
	Cached int `json:"cached"`
	// Uploaded is the number of user-uploaded netlists registered.
	Uploaded int `json:"uploaded"`
}

// uploadEntry retains the source text of an uploaded netlist so the
// circuit can be re-frozen after an LRU eviction.
type uploadEntry struct {
	format string // "bench" or "blif"
	text   string
}

// cacheEntry is one LRU slot: a circuit name bound to its instrumented
// testbench (frozen circuit + delay table + power model).
type cacheEntry struct {
	name string
	tb   *core.Testbench
}

// Registry resolves circuit names to instrumented testbenches. Names
// cover the built-in ISCAS89 benchmark set (bench89) and netlists
// uploaded at runtime; resolved testbenches are kept in an LRU cache so
// the parse/freeze/instrument cost is paid once per design, not per
// request. All methods are safe for concurrent use.
//
// A testbench is built under the registry lock, so concurrent first
// requests for distinct circuits serialize; benchmark-scale circuits
// freeze in milliseconds, which keeps this simple policy adequate.
type Registry struct {
	mu        sync.Mutex
	cap       int
	order     *list.List               // front = most recently used
	cache     map[string]*list.Element // name -> element holding *cacheEntry
	uploads   map[string]uploadEntry
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewRegistry builds a registry whose LRU cache holds up to capacity
// frozen testbenches (DefaultCacheSize if capacity <= 0).
func NewRegistry(capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Registry{
		cap:     capacity,
		order:   list.New(),
		cache:   make(map[string]*list.Element),
		uploads: make(map[string]uploadEntry),
	}
}

// Upload registers a netlist under name. Format is "bench" (ISCAS89
// .bench) or "blif"; the text is parsed and frozen immediately so
// malformed netlists are rejected at upload time, and the frozen
// testbench is installed in the cache. Uploading over an existing
// uploaded name replaces it; names of built-in benchmarks are reserved.
func (r *Registry) Upload(name, format, text string) (netlist.Stats, error) {
	if name == "" {
		return netlist.Stats{}, fmt.Errorf("service: empty circuit name")
	}
	if builtin(name) {
		return netlist.Stats{}, fmt.Errorf("service: %q is a built-in benchmark name", name)
	}
	c, err := parseNetlist(name, format, text)
	if err != nil {
		return netlist.Stats{}, err
	}
	tb := core.DefaultTestbench(c)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.uploads[name] = uploadEntry{format: format, text: text}
	r.install(name, tb)
	return c.ComputeStats(), nil
}

// Testbench resolves a circuit name to its instrumented testbench,
// from cache when possible. The returned testbench is shared and
// read-only; sessions are created per job.
func (r *Registry) Testbench(name string) (*core.Testbench, error) {
	r.mu.Lock()
	if el, ok := r.cache[name]; ok {
		r.order.MoveToFront(el)
		r.hits++
		tb := el.Value.(*cacheEntry).tb
		r.mu.Unlock()
		return tb, nil
	}
	r.misses++
	up, uploaded := r.uploads[name]
	r.mu.Unlock()

	// Build outside the hot path bookkeeping but re-lock to install;
	// a concurrent duplicate build is harmless (last writer wins, both
	// testbenches are equivalent and deterministic).
	var (
		c   *netlist.Circuit
		err error
	)
	if uploaded {
		c, err = parseNetlist(name, up.format, up.text)
	} else {
		c, err = bench89.Get(name)
	}
	if err != nil {
		return nil, err
	}
	tb := core.DefaultTestbench(c)
	r.mu.Lock()
	r.install(name, tb)
	r.mu.Unlock()
	return tb, nil
}

// install puts (name, tb) at the front of the LRU, evicting from the
// back if over capacity. Caller holds r.mu.
func (r *Registry) install(name string, tb *core.Testbench) {
	if el, ok := r.cache[name]; ok {
		el.Value.(*cacheEntry).tb = tb
		r.order.MoveToFront(el)
		return
	}
	r.cache[name] = r.order.PushFront(&cacheEntry{name: name, tb: tb})
	for r.order.Len() > r.cap {
		back := r.order.Back()
		ent := back.Value.(*cacheEntry)
		r.order.Remove(back)
		delete(r.cache, ent.name)
		r.evictions++
	}
}

// CircuitSource is the provenance of a registry circuit — exactly what
// is needed to rebuild its frozen form bit-identically in another
// process. Builtin circuits are regenerated from the deterministic
// bench89 generator; uploads are re-parsed from the original text with
// the original name and format, so node IDs (and with them every
// float-summation order in the simulators) come out identical to the
// coordinator's copy. This is what the cluster propagates to workers
// instead of a re-serialized netlist, which could reorder nodes.
type CircuitSource struct {
	// Builtin, when non-empty, names a built-in benchmark (bench89/s27);
	// the other fields are empty.
	Builtin string `json:"builtin,omitempty"`
	// Name, Format and Text reproduce an uploaded netlist.
	Name   string `json:"name,omitempty"`
	Format string `json:"format,omitempty"`
	Text   string `json:"text,omitempty"`
}

// Source returns the provenance of a resolvable circuit name.
func (r *Registry) Source(name string) (CircuitSource, error) {
	if builtin(name) {
		return CircuitSource{Builtin: name}, nil
	}
	r.mu.Lock()
	up, ok := r.uploads[name]
	r.mu.Unlock()
	if !ok {
		return CircuitSource{}, fmt.Errorf("service: unknown circuit %q", name)
	}
	return CircuitSource{Name: name, Format: up.format, Text: up.text}, nil
}

// Names lists every resolvable circuit name: the built-in benchmark set
// (including s27) plus all uploads, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string{"s27"}, bench89.Names()...)
	for name := range r.uploads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats returns a snapshot of the cache counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Hits:      r.hits,
		Misses:    r.misses,
		Evictions: r.evictions,
		Cached:    r.order.Len(),
		Uploaded:  len(r.uploads),
	}
}

// builtin reports whether name belongs to the built-in benchmark set.
func builtin(name string) bool {
	if name == "s27" {
		return true
	}
	_, ok := bench89.Lookup(name)
	return ok
}

// parseNetlist parses netlist text in the given format and returns the
// frozen circuit.
func parseNetlist(name, format, text string) (*netlist.Circuit, error) {
	switch format {
	case "", "bench":
		return netlist.ParseBenchString(name, text)
	case "blif":
		return netlist.ParseBLIFString(name, text)
	default:
		return nil, fmt.Errorf("service: unknown netlist format %q (want \"bench\" or \"blif\")", format)
	}
}
