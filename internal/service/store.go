package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/vr"
)

// This file is the durability layer of the job manager: an append-only
// JSONL journal of job lifecycle records under a state directory. Every
// accepted job appends a submit record, the frozen pre-sampling outcome
// (interval + resolved VR plan) appends a checkpoint record, merged
// progress appends throttled progress records, and terminal states
// append a state record. A restarted server replays the journal, makes
// finished jobs queryable again (and re-primes the result cache), and
// re-enqueues every job that never reached a terminal state — resuming
// from the checkpoint, which skips interval selection and plan
// calibration. Determinism closes the loop: the re-streamed sampling
// phase reproduces the interrupted run's samples bit for bit, so a
// resumed job's final Result is identical to what the uninterrupted run
// would have produced.

// Checkpoint is the persisted form of core.ResumePoint: everything the
// sampling phase needs to restart without repeating the pre-sampling
// phases. It is written to the journal as soon as the plan is frozen
// and shipped back into the dispatcher on resume.
type Checkpoint struct {
	// Interval is the selected (or fixed) independence interval.
	Interval int `json:"interval"`
	// Capped marks a selection that hit Options.MaxInterval.
	Capped bool `json:"capped,omitempty"`
	// SeedSeq is the accepted phase-1 sequence that seeds the stopping
	// criterion under ReuseTestSamples; JSON renders float64 in shortest
	// round-trip form, so persistence is lossless.
	SeedSeq []float64 `json:"seedSeq,omitempty"`
	// SeedToggles is the accepted phase-1 sequence's per-node transition
	// counts (Options.Breakdown runs only); integers below 2^53 survive
	// JSON exactly, so a resumed breakdown folds the same seed counts the
	// uninterrupted run would have.
	SeedToggles []uint64 `json:"seedToggles,omitempty"`
	// Plan is the frozen variance-reduction plan.
	Plan vr.Plan `json:"plan,omitzero"`
	// HiddenCycles and SampledCycles are the pre-sampling phase costs,
	// restored into the final Result's counters.
	HiddenCycles  uint64 `json:"hiddenCycles,omitempty"`
	SampledCycles uint64 `json:"sampledCycles,omitempty"`
}

// ResumePoint converts the persisted checkpoint back to the core seam.
func (c Checkpoint) ResumePoint() core.ResumePoint {
	return core.ResumePoint{
		Interval:    c.Interval,
		Capped:      c.Capped,
		SeedSeq:     c.SeedSeq,
		SeedToggles: c.SeedToggles,
		Plan:        c.Plan,
		Hidden:      c.HiddenCycles,
		Sampled:     c.SampledCycles,
	}
}

// CheckpointOf freezes a core.ResumePoint into its persisted form.
// (Selection trial diagnostics are deliberately dropped: they document
// the selection procedure, not the sampling phase, and never surface in
// a ResultView.)
func CheckpointOf(rp core.ResumePoint) Checkpoint {
	return Checkpoint{
		Interval:      rp.Interval,
		Capped:        rp.Capped,
		SeedSeq:       rp.SeedSeq,
		SeedToggles:   rp.SeedToggles,
		Plan:          rp.Plan,
		HiddenCycles:  rp.Hidden,
		SampledCycles: rp.Sampled,
	}
}

// storeRecord is one journal line. Kind selects which optional fields
// are meaningful.
type storeRecord struct {
	// Kind is "submit", "checkpoint", "progress" or "state".
	Kind string `json:"kind"`
	ID   string `json:"id"`
	// Req accompanies "submit".
	Req *JobRequest `json:"req,omitempty"`
	// Checkpoint accompanies "checkpoint"; Spans carries the job's
	// lifecycle trace up to the checkpoint, so a restarted server can
	// splice the pre-restart spans ahead of the resumed run's.
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
	Spans      []obs.Span  `json:"spans,omitempty"`
	// Progress accompanies "progress" (throttled merged-round snapshots).
	Progress *ProgressView `json:"progress,omitempty"`
	// State, Result and Error accompany "state" (terminal states only).
	State  JobState    `json:"state,omitempty"`
	Result *ResultView `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// RestoredJob is one job folded out of a journal replay.
type RestoredJob struct {
	ID  string
	Req JobRequest
	// Checkpoint is the frozen pre-sampling outcome, if the job got that
	// far before the interruption.
	Checkpoint *Checkpoint
	// Spans is the lifecycle trace journaled with the checkpoint.
	Spans []obs.Span
	// Progress is the last journaled merged-round snapshot; surfaced as
	// the restored job's progress until the resumed run overtakes it.
	Progress *ProgressView
	// State is a terminal state, or StateQueued for jobs that must be
	// re-run.
	State  JobState
	Result *ResultView
	Error  string
}

// StoreStats is a snapshot of the journal.
type StoreStats struct {
	// Path is the journal file.
	Path string `json:"path"`
	// Records counts journal lines appended this process lifetime.
	Records uint64 `json:"records"`
	// Restored counts jobs folded out of the journal at open (terminal
	// and resumable alike); Resumed counts the non-terminal subset that
	// was re-enqueued.
	Restored int `json:"restored"`
	Resumed  int `json:"resumed"`
}

// JobStore is the append-only JSONL job journal. Open it once per state
// directory and hand it to the service Config; the job manager owns it
// from there (appends records, closes it on drain). All methods are
// safe for concurrent use.
type JobStore struct {
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	path     string
	records  uint64
	restored []RestoredJob
	resumed  int
}

// OpenJobStore opens (creating if needed) the job journal under dir,
// replaying any existing records first. A trailing line truncated by a
// crash mid-write is tolerated and dropped; anything before it replays
// normally.
func OpenJobStore(dir string) (*JobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	path := filepath.Join(dir, "jobs.jsonl")
	restored, err := replayJournal(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: job journal: %w", err)
	}
	resumed := 0
	for _, r := range restored {
		if !r.State.Terminal() {
			resumed++
		}
	}
	return &JobStore{
		f:        f,
		w:        bufio.NewWriter(f),
		path:     path,
		restored: restored,
		resumed:  resumed,
	}, nil
}

// replayJournal folds the journal into per-job restored records,
// preserving submission order.
func replayJournal(path string) ([]RestoredJob, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: job journal: %w", err)
	}
	defer f.Close()

	jobs := make(map[string]*RestoredJob)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxBodyBytes)
	for sc.Scan() {
		var rec storeRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// A crash can truncate the final append; everything after the
			// first malformed line is untrusted, so stop folding there.
			break
		}
		switch rec.Kind {
		case "submit":
			if rec.Req == nil || jobs[rec.ID] != nil {
				continue
			}
			jobs[rec.ID] = &RestoredJob{ID: rec.ID, Req: *rec.Req, State: StateQueued}
			order = append(order, rec.ID)
		case "checkpoint":
			if j := jobs[rec.ID]; j != nil && rec.Checkpoint != nil {
				j.Checkpoint = rec.Checkpoint
				j.Spans = rec.Spans
			}
		case "progress":
			if j := jobs[rec.ID]; j != nil && rec.Progress != nil {
				j.Progress = rec.Progress
			}
		case "state":
			if j := jobs[rec.ID]; j != nil && rec.State.Terminal() {
				j.State, j.Result, j.Error = rec.State, rec.Result, rec.Error
			}
		}
	}
	out := make([]RestoredJob, 0, len(order))
	for _, id := range order {
		out = append(out, *jobs[id])
	}
	return out, nil
}

// Restored returns the jobs folded out of the journal at open, in
// submission order.
func (s *JobStore) Restored() []RestoredJob { return s.restored }

// append writes one record; sync forces it to stable storage (used for
// every record that changes what a replay reconstructs — submits,
// checkpoints and terminal states — while throttled progress snapshots
// ride along on the next sync).
func (s *JobStore) append(rec storeRecord, sync bool) {
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return
	}
	s.w.Write(line)
	s.w.WriteByte('\n')
	s.records++
	if sync {
		s.w.Flush()
		s.f.Sync()
	}
}

func (s *JobStore) submit(id string, req JobRequest) {
	s.append(storeRecord{Kind: "submit", ID: id, Req: &req}, true)
}

func (s *JobStore) checkpoint(id string, c Checkpoint, spans []obs.Span) {
	s.append(storeRecord{Kind: "checkpoint", ID: id, Checkpoint: &c, Spans: spans}, true)
}

func (s *JobStore) progress(id string, p ProgressView) {
	s.append(storeRecord{Kind: "progress", ID: id, Progress: &p}, false)
}

func (s *JobStore) terminal(id string, state JobState, res *ResultView, msg string) {
	s.append(storeRecord{Kind: "state", ID: id, State: state, Result: res, Error: msg}, true)
}

// Stats snapshots the journal counters.
func (s *JobStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Path:     s.path,
		Records:  s.records,
		Restored: len(s.restored),
		Resumed:  s.resumed,
	}
}

// Close flushes and closes the journal. Further appends are dropped.
func (s *JobStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	s.w.Flush()
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
