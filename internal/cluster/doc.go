// Package cluster shards the paper's estimation procedure across
// processes: a Coordinator partitions a job's independent replications
// into contiguous seed ranges, streams their power samples back from
// stateless dipe-worker processes over HTTP, and merges the partial
// results into one pooled sequential stopping rule (core.Merger) — so
// the two-phase stopping decision of the paper is made globally, on
// merged statistics, exactly as the single-process estimator makes it.
//
// Determinism is the load-bearing property. Replication r is seeded
// baseSeed+1+r no matter which worker runs it, a replication's sample
// stream depends only on its own seed, and the coordinator merges
// samples in the canonical round-major ascending-replication order. An
// N-worker run is therefore bit-identical (mean, half-width, sample
// size, cycle counts) to core.EstimateParallel on one machine — and a
// dead worker's range can be reassigned mid-job to any other worker,
// which fast-forwards past the already-merged blocks and reproduces the
// remainder exactly.
//
// Protocol (all JSON over HTTP, worker side):
//
//	GET  /healthz      liveness + load gauges (heartbeat target)
//	GET  /readyz       readiness
//	POST /v1/circuits  install a circuit by provenance {hash, source}
//	POST /v1/run       stream one replication range's sample blocks
//
// /v1/run responds with newline-delimited JSON: a StreamHeader line,
// then one StreamBlock line per round-block until MaxBlocks or client
// disconnect. Circuits are content-addressed by provenance hash; a run
// for an unknown hash fails with 404 and the coordinator uploads the
// provenance (builtin benchmark name, or the original netlist text)
// before retrying — workers rebuild the exact frozen circuit the
// coordinator's registry holds, so no re-serialization can perturb node
// order or float summation.
package cluster
