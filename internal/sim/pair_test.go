package sim

import (
	"testing"

	"repro/internal/bench89"
	"repro/internal/delay"
	"repro/internal/power"
	"repro/internal/vectors"
)

// pairBench builds a frozen benchmark circuit with its default models
// for the pair-sampling equivalence tests.
func pairBench(t *testing.T, name string) (*PackedSession, *PackedSession, []float64, int) {
	t.Helper()
	c := bench89.MustGet(name)
	weights := power.NewModel(c, power.DefaultCapModel(), power.DefaultSupply()).Weights()
	const lanes = MaxLanes
	mk := func() *PackedSession {
		srcs := make([]vectors.Source, lanes)
		for k := range srcs {
			srcs[k] = vectors.NewIID(len(c.Inputs), 0.5, int64(1000+k))
		}
		return NewPackedSession(c, srcs)
	}
	return mk(), mk(), weights, lanes
}

// TestStepSampledBothMatchesSeparateSteps: StepSampledBoth's powers are
// bit-identical to StepSampledWith on a twin session, and its toggles
// are bit-identical to StepSampled on the same twin — one cycle yields
// exactly the general-delay sample and its zero-delay covariate.
func TestStepSampledBothMatchesSeparateSteps(t *testing.T) {
	c := bench89.MustGet("s298")
	dt := delay.BuildTable(c, delay.DefaultFanoutLoaded())
	a, b, weights, lanes := pairBench(t, "s298")
	engA := NewEventDriven(c, dt)
	engB := NewEventDriven(c, dt)

	a.StepHiddenN(32)
	b.StepHiddenN(32)

	powersA := make([]float64, lanes)
	togglesA := make([]float64, lanes)
	powersB := make([]float64, lanes)

	for cycle := 0; cycle < 50; cycle++ {
		// The twin interleaves: StepSampledWith to check powers on even
		// cycles, StepSampled to check toggles on odd ones. Both advance
		// the state identically to StepSampledBoth, so the sessions stay
		// in lock-step.
		a.StepSampledBoth(engA, weights, powersA, togglesA)
		if cycle%2 == 0 {
			b.StepSampledWith(engB, weights, powersB)
			for k := 0; k < lanes; k++ {
				if powersA[k] != powersB[k] {
					t.Fatalf("cycle %d lane %d: both-power %v != with-power %v", cycle, k, powersA[k], powersB[k])
				}
			}
		} else {
			b.StepSampled(weights, powersB)
			for k := 0; k < lanes; k++ {
				if togglesA[k] != powersB[k] {
					t.Fatalf("cycle %d lane %d: both-toggle %v != packed zero-delay power %v", cycle, k, togglesA[k], powersB[k])
				}
			}
		}
	}
	if a.SampledCycles != b.SampledCycles {
		t.Fatalf("cycle counters diverged: %d vs %d", a.SampledCycles, b.SampledCycles)
	}
}

// TestSessionStepSampledPair: the scalar pair step leaves the sample
// and the trajectory bit-identical to plain sampling, and its covariate
// equals the ZeroDelayToggle engine's power for the same cycle on a
// lock-stepped twin.
func TestSessionStepSampledPair(t *testing.T) {
	c := bench89.MustGet("s298")
	dt := delay.BuildTable(c, delay.DefaultFanoutLoaded())
	weights := power.NewModel(c, power.DefaultCapModel(), power.DefaultSupply()).Weights()

	mk := func(engine PowerEngine) *Session {
		return NewSessionEngine(c, engine, vectors.NewIID(len(c.Inputs), 0.5, 77), weights)
	}
	paired := mk(NewEventDriven(c, dt))
	plain := mk(NewEventDriven(c, dt))
	toggle := mk(NewZeroDelayToggle(c))

	paired.StepHiddenN(64)
	plain.StepHiddenN(64)
	toggle.StepHiddenN(64)

	for cycle := 0; cycle < 200; cycle++ {
		x, cov := paired.StepSampledPair(nil)
		if want := plain.StepSampled(nil); x != want {
			t.Fatalf("cycle %d: pair sample %v != plain sample %v", cycle, x, want)
		}
		if want := toggle.StepSampled(nil); cov != want {
			t.Fatalf("cycle %d: pair covariate %v != zero-delay toggle power %v", cycle, cov, want)
		}
	}
	if paired.SampledCycles != plain.SampledCycles {
		t.Fatalf("cycle counters diverged: %d vs %d", paired.SampledCycles, plain.SampledCycles)
	}
}
