// FSM analysis: Section III of the paper contrasts two routes to a
// random power sample. The "first approach" extracts the state
// transition graph (STG), solves the Chapman–Kolmogorov equations for
// the stationary state probabilities, and samples states directly — an
// exact method that is exponential in the latch count. DIPE's
// statistical route avoids the STG entirely.
//
// This example runs both on the genuine s27 (3 latches, so the exact
// route is feasible), compares the estimates, and demonstrates the
// exponential wall on a larger benchmark.
//
//	go run ./examples/fsm_analysis
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	s27, err := dipe.Benchmark("s27")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s27.ComputeStats())

	// --- Exact route: STG + Chapman-Kolmogorov ---------------------------
	p := []float64{0.5, 0.5, 0.5, 0.5}
	stg, err := dipe.ExtractSTG(s27, p)
	if err != nil {
		log.Fatal(err)
	}
	pi, err := stg.Stationary(1e-12, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreachable states   : %d (of 2^%d conceivable)\n", stg.NumStates(), len(s27.Latches))
	fmt.Println("stationary distribution over latch vectors (Q5 Q6 Q7):")
	for i, key := range stg.States {
		fmt.Printf("  state %03b : %.4f\n", key, pi[i])
	}

	// A principled warm-up period for this FSM: steps until the state
	// distribution from reset is within 1% total variation of
	// stationary. The paper notes this is unknowable without the STG —
	// here we have the STG, so we can report it exactly.
	if k, err := stg.MixingTime(pi, 0.01, 100_000); err == nil {
		fmt.Printf("mixing time (TV<1%%): %d cycles\n", k)
	} else {
		fmt.Printf("mixing time        : %v\n", err)
	}

	// --- Exact route as an estimator: state sampling ---------------------
	// With the stationary distribution in hand, power samples can be
	// drawn i.i.d. by construction — no independence interval needed.
	tb := dipe.NewTestbench(s27)
	exact, err := dipe.EstimateByStateSampling(tb.NewSession(dipe.NewIIDSource(4, 0.5, 6)),
		stg, pi, p, dipe.DefaultSpec(), dipe.OrderStatisticsCriterion, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstate-sampling est : %s (%d samples, i.i.d. by construction)\n",
		dipe.FormatWatts(exact.Power), exact.SampleSize)

	// --- Statistical route: DIPE -----------------------------------------
	res, err := dipe.Estimate(tb.NewSession(dipe.NewIIDSource(4, 0.5, 7)), dipe.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ref := dipe.RunReference(tb.NewSession(dipe.NewIIDSource(4, 0.5, 8)), 256, 200_000)
	fmt.Printf("DIPE estimate      : %s (II=%d, %d samples)\n",
		dipe.FormatWatts(res.Power), res.Interval, res.SampleSize)
	fmt.Printf("reference (SIM)    : %s\n", dipe.FormatWatts(ref.Power))
	fmt.Printf("DIPE deviation     : %+.2f%%\n", 100*(res.Power-ref.Power)/ref.Power)
	fmt.Printf("exact deviation    : %+.2f%%\n", 100*(exact.Power-ref.Power)/ref.Power)

	// --- The exponential wall --------------------------------------------
	// s1423 has 74 latches: a 2^74 state space. Extraction must refuse.
	s1423, err := dipe.Benchmark("s1423")
	if err != nil {
		log.Fatal(err)
	}
	pBig := make([]float64, len(s1423.Inputs))
	for i := range pBig {
		pBig[i] = 0.5
	}
	if _, err := dipe.ExtractSTG(s1423, pBig); err != nil {
		fmt.Printf("\ns1423 exact route  : %v\n", err)
		fmt.Println("                     ...which is exactly why the paper goes statistical.")
	}
}
