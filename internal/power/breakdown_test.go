package power

import (
	"math"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
)

func TestClassOf(t *testing.T) {
	cases := []struct {
		kind logic.Kind
		want NodeClass
	}{
		{logic.Input, ClassInput},
		{logic.DFF, ClassLatch},
		{logic.Const0, ClassConst},
		{logic.Const1, ClassConst},
		{logic.And, ClassGate},
		{logic.Not, ClassGate},
		{logic.Or, ClassGate},
	}
	for _, tc := range cases {
		if got := ClassOf(tc.kind); got != tc.want {
			t.Errorf("ClassOf(%v) = %q, want %q", tc.kind, got, tc.want)
		}
	}
}

func TestModuleOf(t *testing.T) {
	cases := []struct{ name, want string }{
		{"G17", "(top)"},             // flat ISCAS89 name
		{"alu/add/carry", "alu/add"}, // last separator wins
		{"alu.x", "alu"},
		{"/rooted", "(top)"}, // separator at index 0 is not a prefix
		{"", "(top)"},
	}
	for _, tc := range cases {
		if got := ModuleOf(tc.name); got != tc.want {
			t.Errorf("ModuleOf(%q) = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// hierCircuit has two modules plus a primary input, so moduleRows has
// something to aggregate and the input-exclusion rule is visible.
func hierCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("hier")
	a, _ := c.AddNode("A", logic.Input)
	x, _ := c.AddNode("alu/x", logic.Not, a)
	y, _ := c.AddNode("alu/y", logic.And, x, a)
	q, _ := c.AddNode("ctl/q", logic.DFF, y)
	_ = c.MarkOutput(q)
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBreakdownHandComputed(t *testing.T) {
	c := hierCircuit(t)
	cm := CapModel{Base: 100e-15, PerFanout: 0}
	lm := LeakModel{GateBase: 10e-12, PerFanin: 1e-12}
	m := NewModelLeak(c, cm, lm, Supply{VDD: 2, ClockPeriod: 10e-9})
	// w_i = C * VDD^2 / (2T) = 100fF * 4 / 20ns = 20 uW per transition.
	w := 100e-15 * 4 / (2 * 10e-9)

	counts := make([]uint64, c.NumNodes())
	counts[c.Lookup("A")] = 1000 // input: counted toward nothing (weight 0)
	counts[c.Lookup("alu/x")] = 10
	counts[c.Lookup("alu/y")] = 30
	counts[c.Lookup("ctl/q")] = 20

	rep := m.Breakdown(c, counts, 100)
	if rep.Observations != 100 {
		t.Fatalf("observations = %d, want 100", rep.Observations)
	}
	wantDyn := w * float64(10+30+20) / 100
	if math.Abs(rep.Dynamic-wantDyn) > 1e-9*wantDyn {
		t.Fatalf("dynamic = %g, want %g", rep.Dynamic, wantDyn)
	}
	// Leakage: x has 1 fanin, y has 2, q has 1 → 3*base + 4*perFanin.
	wantLeak := 3*10e-12 + 4*1e-12
	if math.Abs(rep.Leakage-wantLeak) > 1e-20 {
		t.Fatalf("leakage = %g, want %g", rep.Leakage, wantLeak)
	}
	if got := m.TotalLeakage(); got != rep.Leakage {
		t.Fatalf("TotalLeakage = %g, report says %g", got, rep.Leakage)
	}

	// The input is excluded from ranked rows; the rest rank by power.
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (input excluded): %+v", len(rep.Rows), rep.Rows)
	}
	if rep.Rows[0].Name != "alu/y" || rep.Rows[1].Name != "ctl/q" || rep.Rows[2].Name != "alu/x" {
		t.Fatalf("ranking = %q %q %q, want alu/y ctl/q alu/x",
			rep.Rows[0].Name, rep.Rows[1].Name, rep.Rows[2].Name)
	}
	if rep.Rows[0].Class != ClassGate || rep.Rows[1].Class != ClassLatch {
		t.Fatalf("classes = %q %q, want gate latch", rep.Rows[0].Class, rep.Rows[1].Class)
	}
	var shares float64
	for _, r := range rep.Rows {
		shares += r.Share
	}
	if math.Abs(shares-1) > 1e-12 {
		t.Fatalf("row shares sum to %g, want 1", shares)
	}

	// Two modules → aggregated rows, ranked, shares summing to 1.
	if len(rep.Modules) != 2 {
		t.Fatalf("modules = %+v, want alu and ctl", rep.Modules)
	}
	alu := rep.Modules[0]
	if alu.Module != "alu" || alu.Nodes != 2 || alu.Toggles != 40 {
		t.Fatalf("top module = %+v, want alu with 2 nodes / 40 toggles", alu)
	}
	if got := rep.Modules[0].Share + rep.Modules[1].Share; math.Abs(got-1) > 1e-12 {
		t.Fatalf("module shares sum to %g, want 1", got)
	}
}

func TestBreakdownZeroObservationsLeakageOnly(t *testing.T) {
	c := hierCircuit(t)
	m := NewModel(c, DefaultCapModel(), DefaultSupply())
	rep := m.Breakdown(c, make([]uint64, c.NumNodes()), 0)
	if rep.Dynamic != 0 {
		t.Fatalf("dynamic = %g with zero observations, want 0", rep.Dynamic)
	}
	if rep.Leakage != m.TotalLeakage() || rep.Leakage <= 0 {
		t.Fatalf("leakage = %g, want %g > 0", rep.Leakage, m.TotalLeakage())
	}
	// Shares still defined: the grand total is the (positive) leakage.
	var shares float64
	for _, r := range rep.Rows {
		shares += r.Share
	}
	if math.Abs(shares-1) > 1e-12 {
		t.Fatalf("leakage-only shares sum to %g, want 1", shares)
	}
}

func TestBreakdownFlatCircuitHasNoModules(t *testing.T) {
	c := miniCircuit(t) // flat names → single "(top)" module, omitted
	m := NewModel(c, DefaultCapModel(), DefaultSupply())
	counts := make([]uint64, c.NumNodes())
	counts[c.Lookup("G1")] = 5
	rep := m.Breakdown(c, counts, 10)
	if rep.Modules != nil {
		t.Fatalf("flat circuit reported modules: %+v", rep.Modules)
	}
}

func TestTopRows(t *testing.T) {
	c := hierCircuit(t)
	m := NewModel(c, DefaultCapModel(), DefaultSupply())
	counts := make([]uint64, c.NumNodes())
	counts[c.Lookup("alu/y")] = 7
	rep := m.Breakdown(c, counts, 10)
	if n := len(rep.Rows); n != 3 {
		t.Fatalf("rows = %d, want 3", n)
	}
	if got := rep.TopRows(2); len(got) != 2 || got[0] != rep.Rows[0] {
		t.Fatalf("TopRows(2) = %+v", got)
	}
	if got := rep.TopRows(0); len(got) != 3 {
		t.Fatalf("TopRows(0) = %d rows, want all 3", len(got))
	}
	if got := rep.TopRows(99); len(got) != 3 {
		t.Fatalf("TopRows(99) = %d rows, want all 3", len(got))
	}
}

func TestMetricsObserve(t *testing.T) {
	// Nil registry disables the whole instrument set; nil receivers and
	// nil reports are no-ops.
	if m := NewMetrics(nil); m != nil {
		t.Fatalf("NewMetrics(nil) = %+v, want nil", m)
	}
	var nilM *Metrics
	nilM.Observe(&BreakdownReport{}) // must not panic

	c := hierCircuit(t)
	model := NewModel(c, DefaultCapModel(), DefaultSupply())
	counts := make([]uint64, c.NumNodes())
	counts[c.Lookup("alu/x")] = 4
	counts[c.Lookup("ctl/q")] = 6
	rep := model.Breakdown(c, counts, 10)

	m := NewMetrics(obs.NewRegistry())
	m.Observe(nil) // no-op
	m.Observe(rep)
	m.Observe(rep)
	if got := m.Breakdowns.Value(); got != 2 {
		t.Fatalf("breakdowns counter = %d, want 2", got)
	}
	if got := m.Toggles.Value(); got != 20 {
		t.Fatalf("toggles counter = %d, want 20 (2 reports x 10)", got)
	}
	if got := m.Dynamic.Value(); got != rep.Dynamic {
		t.Fatalf("dynamic gauge = %g, want %g", got, rep.Dynamic)
	}
	if got := m.Leakage.Value(); got != rep.Leakage {
		t.Fatalf("leakage gauge = %g, want %g", got, rep.Leakage)
	}
}
