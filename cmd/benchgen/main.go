// Command benchgen writes the repository's benchmark circuits out as
// ISCAS89 .bench netlists, so they can be inspected, diffed, or fed to
// other tools. It can also generate parameterized circuit families.
//
//	benchgen -out ./netlists                  # all 24 + s27
//	benchgen -out . -circuits s298,s27        # subset
//	benchgen -stats                           # print a signature table only
//	benchgen -out . -family counter:8:2       # 8-bit counter, 2 enable pins
//	benchgen -out . -family lfsr:16           # maximal 16-bit LFSR
//	benchgen -out . -family shift:32          # 32-stage shift register
//	benchgen -out . -family pipeline:8:4      # 8 bits wide, 4 stages
//	benchgen -out . -family random:42         # seeded random netlist
//	benchgen -out . -family random:7:100000   # ~100k-gate scaled netlist
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro"
	"repro/internal/bench89"
	"repro/internal/netlist"
)

// buildFamily parses a "-family kind:arg[:arg]" spec and generates the
// circuit.
func buildFamily(spec string) (*netlist.Circuit, error) {
	parts := strings.Split(spec, ":")
	atoi := func(i int, def int) (int, error) {
		if i >= len(parts) {
			return def, nil
		}
		return strconv.Atoi(parts[i])
	}
	switch parts[0] {
	case "counter":
		bits, err := atoi(1, 8)
		if err != nil {
			return nil, err
		}
		en, err := atoi(2, 1)
		if err != nil {
			return nil, err
		}
		return bench89.GenerateCounter(fmt.Sprintf("counter%d", bits), bits, en)
	case "lfsr":
		bits, err := atoi(1, 8)
		if err != nil {
			return nil, err
		}
		taps, ok := bench89.MaximalLFSRTaps[bits]
		if !ok {
			return nil, fmt.Errorf("no maximal tap set for %d bits (have %v)", bits, knownTapSizes())
		}
		return bench89.GenerateLFSR(fmt.Sprintf("lfsr%d", bits), bits, taps)
	case "shift":
		depth, err := atoi(1, 16)
		if err != nil {
			return nil, err
		}
		return bench89.GenerateShiftRegister(fmt.Sprintf("shift%d", depth), depth)
	case "pipeline":
		width, err := atoi(1, 8)
		if err != nil {
			return nil, err
		}
		stages, err := atoi(2, 4)
		if err != nil {
			return nil, err
		}
		return bench89.GeneratePipeline(fmt.Sprintf("pipe%dx%d", width, stages), width, stages)
	case "random":
		seed, err := atoi(1, 1)
		if err != nil {
			return nil, err
		}
		if seed < 0 {
			return nil, fmt.Errorf("random seed %d must be >= 0", seed)
		}
		// An optional third argument scales the circuit to a gate target:
		// random:7:100000 is a deterministic ~100k-gate netlist sized for
		// the cache-blocking benchmarks.
		if len(parts) > 2 {
			gates, err := atoi(2, 0)
			if err != nil {
				return nil, err
			}
			if gates < 1 {
				return nil, fmt.Errorf("random gate count %d must be >= 1", gates)
			}
			return bench89.Generate(bench89.ScaledSignature(uint32(seed), gates))
		}
		return bench89.Generate(bench89.RandomSignature(uint32(seed)))
	}
	return nil, fmt.Errorf("unknown family %q (counter|lfsr|shift|pipeline|random)", parts[0])
}

func knownTapSizes() []int {
	var out []int
	for k := range bench89.MaximalLFSRTaps {
		out = append(out, k)
	}
	return out
}

func main() {
	var (
		out      = flag.String("out", "", "output directory for .bench files")
		circuits = flag.String("circuits", "", "comma-separated subset (default: s27 + all 24)")
		family   = flag.String("family", "", "generate a parameterized family circuit (kind:args)")
		stats    = flag.Bool("stats", false, "print circuit statistics instead of writing files")
	)
	flag.Parse()

	if *family != "" {
		c, err := buildFamily(*family)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if *out == "" {
			fmt.Println(netlist.BenchString(c))
			return
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, c.Name+".bench")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := dipe.WriteBench(f, c); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
		return
	}

	names := append([]string{"s27"}, dipe.BenchmarkNames()...)
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}

	if !*stats && *out == "" {
		fmt.Fprintln(os.Stderr, "benchgen: need -out DIR or -stats")
		os.Exit(2)
	}

	if *stats {
		fmt.Printf("%-10s %6s %6s %6s %8s %7s %10s\n", "circuit", "PI", "PO", "DFF", "gates", "depth", "max-fanout")
		for _, name := range names {
			c, err := dipe.Benchmark(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchgen:", err)
				os.Exit(1)
			}
			st := c.ComputeStats()
			fmt.Printf("%-10s %6d %6d %6d %8d %7d %10d\n",
				st.Name, st.Inputs, st.Outputs, st.Latches, st.Gates, st.Depth, st.MaxFanout)
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	for _, name := range names {
		c, err := dipe.Benchmark(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, name+".bench")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := dipe.WriteBench(f, c); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}
