package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// newTestService builds a service with a small deterministic
// configuration and registers cleanup.
func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// fastRequest is a quickly converging job on the genuine s27 benchmark.
func fastRequest(seed int64) JobRequest {
	return JobRequest{
		Circuit: "s27",
		Seed:    seed,
		Options: OptionsSpec{Replications: 16, Workers: 2},
	}
}

// postJSON posts v and decodes the response body into out.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestSubmitPollLifecycle(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})

	var submitted JobView
	if code := postJSON(t, ts.URL+"/v1/jobs", fastRequest(42), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if submitted.ID == "" || submitted.State.Terminal() {
		t.Fatalf("submit view = %+v, want live job with ID", submitted)
	}

	// Poll until terminal.
	deadline := time.Now().Add(30 * time.Second)
	var view JobView
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+submitted.ID, &view); code != http.StatusOK {
			t.Fatalf("poll status = %d", code)
		}
		if view.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.State != StateDone || view.Result == nil {
		t.Fatalf("final view = %+v, want done with result", view)
	}
	if view.Result.Power <= 0 || !view.Result.Converged {
		t.Fatalf("result = %+v, want positive converged power", view.Result)
	}

	// The wait endpoint returns the same terminal snapshot.
	var waited JobView
	if code := getJSON(t, ts.URL+"/v1/jobs/"+submitted.ID+"/wait?timeout=5s", &waited); code != http.StatusOK {
		t.Fatalf("wait status = %d", code)
	}
	if waited.Result == nil || waited.Result.Power != view.Result.Power {
		t.Fatalf("wait result %+v != poll result %+v", waited.Result, view.Result)
	}

	// Job listing includes it.
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK || len(list.Jobs) != 1 {
		t.Fatalf("list = %+v (status %d), want 1 job", list, code)
	}
}

// TestDeterminismAndCacheHit is the acceptance test of the service
// layer: two identical requests return bit-identical estimates, and the
// second skips re-freezing (observable as a registry cache hit).
func TestDeterminismAndCacheHit(t *testing.T) {
	svc, ts := newTestService(t, Config{Workers: 1})

	run := func() JobView {
		var v JobView
		if code := postJSON(t, ts.URL+"/v1/jobs", fastRequest(7), &v); code != http.StatusAccepted {
			t.Fatalf("submit status = %d", code)
		}
		var out JobView
		if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/wait?timeout=60s", &out); code != http.StatusOK {
			t.Fatalf("wait status = %d", code)
		}
		if out.State != StateDone {
			t.Fatalf("job %s finished %s (%s)", v.ID, out.State, out.Error)
		}
		return out
	}

	first := run()
	statsAfterFirst := svc.Registry.Stats()
	second := run()
	statsAfterSecond := svc.Registry.Stats()

	if b1, b2 := math.Float64bits(first.Result.Power), math.Float64bits(second.Result.Power); b1 != b2 {
		t.Fatalf("identical requests gave different powers: %x vs %x", b1, b2)
	}
	if first.Result.SampleSize != second.Result.SampleSize ||
		first.Result.HalfWidth != second.Result.HalfWidth ||
		first.Result.Interval != second.Result.Interval {
		t.Fatalf("identical requests diverged: %+v vs %+v", first.Result, second.Result)
	}
	if statsAfterFirst.Misses != 1 {
		t.Fatalf("first request: misses = %d, want 1", statsAfterFirst.Misses)
	}
	// The second identical request is answered by the result cache: no
	// new estimation, no new registry traffic, result marked Cached.
	if !second.Result.Cached {
		t.Fatalf("second identical request was re-run instead of served from the result cache: %+v", second.Result)
	}
	if first.Result.Cached {
		t.Fatalf("first request claims to be cached: %+v", first.Result)
	}
	if statsAfterSecond.Misses != statsAfterFirst.Misses {
		t.Fatalf("second request re-froze the circuit: first %+v, second %+v",
			statsAfterFirst, statsAfterSecond)
	}
	if cs := svc.Jobs.CacheStats(); cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Fatalf("result cache stats = %+v, want 1 hit / 1 miss / 1 entry", cs)
	}
}

// TestCacheKeyedByBackend: requests differing only in simulation
// backend occupy separate cache slots — estimates are bit-identical
// across backends by construction, but the result's engine/backend
// labels report what actually ran, so a cached compiled run must not
// answer a packed request.
func TestCacheKeyedByBackend(t *testing.T) {
	svc, ts := newTestService(t, Config{Workers: 1})

	run := func(backend string) JobView {
		req := fastRequest(7)
		req.Options.PowerMode = "zero-delay"
		req.Options.Backend = backend
		var v JobView
		if code := postJSON(t, ts.URL+"/v1/jobs", req, &v); code != http.StatusAccepted {
			t.Fatalf("submit status = %d", code)
		}
		var out JobView
		if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/wait?timeout=60s", &out); code != http.StatusOK {
			t.Fatalf("wait status = %d", code)
		}
		if out.State != StateDone {
			t.Fatalf("job %s finished %s (%s)", v.ID, out.State, out.Error)
		}
		return out
	}

	compiled := run("compiled")
	packed := run("packed")
	if packed.Result.Cached {
		t.Fatalf("packed request was served from the compiled run's cache slot: %+v", packed.Result)
	}
	if compiled.Result.Backend != "compiled" || compiled.Result.Engine != "compiled-zero-delay" {
		t.Fatalf("compiled run labels = (%q, %q)", compiled.Result.Backend, compiled.Result.Engine)
	}
	if packed.Result.Backend != "packed" || packed.Result.Engine != "packed-zero-delay" {
		t.Fatalf("packed run labels = (%q, %q)", packed.Result.Backend, packed.Result.Engine)
	}
	if b1, b2 := math.Float64bits(compiled.Result.Power), math.Float64bits(packed.Result.Power); b1 != b2 {
		t.Fatalf("backends disagree on the estimate: %x vs %x", b1, b2)
	}
	// A repeat of each spelling hits its own slot.
	if again := run("compiled"); !again.Result.Cached || again.Result.Backend != "compiled" {
		t.Fatalf("compiled repeat = %+v, want cached compiled result", again.Result)
	}
	if again := run("packed"); !again.Result.Cached || again.Result.Backend != "packed" {
		t.Fatalf("packed repeat = %+v, want cached packed result", again.Result)
	}
	if cs := svc.Jobs.CacheStats(); cs.Hits != 2 || cs.Misses != 2 || cs.Entries != 2 {
		t.Fatalf("result cache stats = %+v, want 2 hits / 2 misses / 2 entries", cs)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	svc := New(Config{Workers: 1, QueueSize: 8})
	defer svc.Close()

	// A slow accuracy spec keeps the single worker busy long enough for
	// the next submissions to stay queued.
	slow := JobRequest{
		Circuit: "s298",
		Seed:    1,
		Options: OptionsSpec{RelErr: 0.004, Confidence: 0.999, Replications: 32, Workers: 1},
	}
	blocker, err := svc.Jobs.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Jobs.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	view, ok := svc.Jobs.Cancel(queued)
	if !ok || view.State != StateCancelled {
		t.Fatalf("cancel of queued job = %+v (ok=%v), want cancelled", view, ok)
	}
	// Cancelling the blocker too keeps the test fast; it is either
	// running (cancel via context) or already terminal.
	svc.Jobs.Cancel(blocker)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := svc.Jobs.Wait(ctx, blocker); err != nil {
		t.Fatalf("blocker did not terminate after cancel: %v", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})

	slow := JobRequest{
		Circuit: "s298",
		Seed:    3,
		Options: OptionsSpec{RelErr: 0.004, Confidence: 0.999, Replications: 32, Workers: 1},
	}
	var v JobView
	if code := postJSON(t, ts.URL+"/v1/jobs", slow, &v); code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	// Wait until it is actually running.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur JobView
		getJSON(t, ts.URL+"/v1/jobs/"+v.ID, &cur)
		if cur.State == StateRunning {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("slow job finished early: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}

	var final JobView
	if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/wait?timeout=30s", &final); code != http.StatusOK {
		t.Fatalf("wait status = %d", code)
	}
	if final.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", final.State)
	}
}

func TestBatchFanOut(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2})

	batch := BatchRequest{Jobs: []JobRequest{fastRequest(1), fastRequest(2), fastRequest(3)}}
	var resp BatchResponse
	if code := postJSON(t, ts.URL+"/v1/batch", batch, &resp); code != http.StatusAccepted {
		t.Fatalf("batch status = %d", code)
	}
	if len(resp.IDs) != 3 {
		t.Fatalf("batch ids = %v, want 3", resp.IDs)
	}
	powers := make([]float64, len(resp.IDs))
	for i, id := range resp.IDs {
		var v JobView
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/wait?timeout=60s", &v); code != http.StatusOK {
			t.Fatalf("wait %s status = %d", id, code)
		}
		if v.State != StateDone {
			t.Fatalf("batch job %s finished %s (%s)", id, v.State, v.Error)
		}
		powers[i] = v.Result.Power
	}
	// Different seeds: genuinely different replication streams.
	if powers[0] == powers[1] && powers[1] == powers[2] {
		t.Fatalf("all batch powers identical (%v) despite distinct seeds", powers)
	}

	// A batch with an invalid member is rejected atomically.
	bad := BatchRequest{Jobs: []JobRequest{fastRequest(1), {Circuit: ""}}}
	var errResp map[string]string
	if code := postJSON(t, ts.URL+"/v1/batch", bad, &errResp); code != http.StatusBadRequest {
		t.Fatalf("invalid batch status = %d", code)
	}
}

func TestUploadAndEstimateUploaded(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})

	var up UploadResponse
	code := postJSON(t, ts.URL+"/v1/circuits", UploadRequest{Name: "toy", Text: toyBench}, &up)
	if code != http.StatusCreated {
		t.Fatalf("upload status = %d", code)
	}
	if up.Inputs != 1 || up.Latches != 1 {
		t.Fatalf("upload response = %+v", up)
	}

	var circuits struct {
		Circuits []string `json:"circuits"`
	}
	getJSON(t, ts.URL+"/v1/circuits", &circuits)
	if !strings.Contains(strings.Join(circuits.Circuits, ","), "toy") {
		t.Fatalf("circuit list %v missing upload", circuits.Circuits)
	}

	var v JobView
	req := JobRequest{Circuit: "toy", Seed: 5, Options: OptionsSpec{Replications: 8}}
	if code := postJSON(t, ts.URL+"/v1/jobs", req, &v); code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	var out JobView
	if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/wait?timeout=60s", &out); code != http.StatusOK {
		t.Fatalf("wait status = %d", code)
	}
	if out.State != StateDone || out.Result.Power <= 0 {
		t.Fatalf("uploaded-circuit job = %+v", out)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})

	if code := getJSON(t, ts.URL+"/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job poll status = %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job cancel status = %d, want 404", resp.StatusCode)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Circuit: "sNOPE"}, nil); code != http.StatusAccepted {
		// Unknown circuits are resolved lazily by the worker, so the job
		// is accepted and then fails.
		t.Errorf("unknown-circuit submit status = %d, want 202", code)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", JobRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty submit status = %d, want 400", code)
	}
	// Out-of-range source parameters must be rejected at submit time;
	// the vectors constructors panic on them, and that must never reach
	// a pool worker.
	badSources := []SourceSpec{
		{P: 1.5},
		{P: -0.1},
		{Kind: "lag", Rho: 1.0},
		{Kind: "lag", Rho: -0.5},
	}
	for _, src := range badSources {
		req := JobRequest{Circuit: "s27", Source: src}
		if code := postJSON(t, ts.URL+"/v1/jobs", req, nil); code != http.StatusBadRequest {
			t.Errorf("bad source %+v: submit status = %d, want 400", src, code)
		}
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"nope": 1}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown-field submit status = %d, want 400", code)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz status = %d", code)
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Errorf("stats status = %d", code)
	}
	if stats.Pool.Workers != 1 {
		t.Errorf("pool stats = %+v, want 1 worker", stats.Pool)
	}
}

// TestJobFailsOnUnknownCircuit covers the failed terminal state.
func TestJobFailsOnUnknownCircuit(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	var v JobView
	if code := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Circuit: "sNOPE", Seed: 1}, &v); code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	var out JobView
	if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/wait?timeout=30s", &out); code != http.StatusOK {
		t.Fatalf("wait status = %d", code)
	}
	if out.State != StateFailed || out.Error == "" {
		t.Fatalf("view = %+v, want failed with error", out)
	}
}

func TestQueueFull(t *testing.T) {
	svc := New(Config{Workers: 1, QueueSize: 1})
	defer svc.Close()
	slow := JobRequest{
		Circuit: "s298",
		Seed:    1,
		Options: OptionsSpec{RelErr: 0.004, Confidence: 0.999, Replications: 32, Workers: 1},
	}
	var ids []string
	var sawFull bool
	// One job can be running and one queued; the pool hands queue slots
	// to the worker asynchronously, so allow a couple of extra attempts
	// before demanding ErrQueueFull.
	for i := 0; i < 5; i++ {
		id, err := svc.Jobs.Submit(slow)
		if err != nil {
			if err != ErrQueueFull {
				t.Fatalf("submit %d: %v", i, err)
			}
			sawFull = true
			break
		}
		ids = append(ids, id)
	}
	if !sawFull {
		t.Fatal("queue never reported full")
	}
	for _, id := range ids {
		svc.Jobs.Cancel(id)
	}
}

// TestPowerModeJob: a zero-delay job runs on the default word-parallel
// (compiled) engine and the result records it; an unknown mode is
// rejected at submit time.
func TestPowerModeJob(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})

	req := fastRequest(5)
	req.Options.PowerMode = "zero-delay"
	var submitted JobView
	if code := postJSON(t, ts.URL+"/v1/jobs", req, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	var done JobView
	if code := getJSON(t, ts.URL+"/v1/jobs/"+submitted.ID+"/wait?timeout=30s", &done); code != http.StatusOK {
		t.Fatalf("wait status %d", code)
	}
	if done.State != StateDone || done.Result == nil {
		t.Fatalf("job did not finish: %+v", done)
	}
	if done.Result.Engine != "compiled-zero-delay" || done.Result.DelayModel != "zero" {
		t.Fatalf("result records engine %q delay %q", done.Result.Engine, done.Result.DelayModel)
	}

	bad := fastRequest(6)
	bad.Options.PowerMode = "half-delay"
	var errBody struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", bad, &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad mode submit status %d", code)
	}
	if !strings.Contains(errBody.Error, "power mode") {
		t.Fatalf("error %q does not mention the power mode", errBody.Error)
	}

	// The general-delay default still records the event-driven engine.
	var gen JobView
	if code := postJSON(t, ts.URL+"/v1/jobs", fastRequest(7), &gen); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+gen.ID+"/wait?timeout=30s", &gen); code != http.StatusOK {
		t.Fatalf("wait status %d", code)
	}
	if gen.Result == nil || gen.Result.Engine != "event-driven" {
		t.Fatalf("default engine recorded as %+v", gen.Result)
	}
}

// TestNonFiniteViewsEncode: a job cancelled before its criterion can
// bound the estimate leaves a terminal progress snapshot whose
// half-width is +Inf in core terms; the JSON views must map non-finite
// values to -1 so every job view (and the whole /v1/jobs listing)
// still encodes.
func TestNonFiniteViewsEncode(t *testing.T) {
	if v := viewResult(core.Result{Power: 1, HalfWidth: math.Inf(1)}); v.HalfWidth != -1 || v.RelHalfWidth != -1 {
		t.Fatalf("non-finite result view not sanitized: %+v", v)
	}
	if v := viewProgress(core.Progress{HalfWidth: math.Inf(1)}); v.HalfWidth != -1 {
		t.Fatalf("non-finite progress view not sanitized: %+v", v)
	}
	v := viewResult(core.Result{HalfWidth: math.Inf(1)})
	if _, err := json.Marshal(JobView{ID: "j", State: StateDone, Result: v}); err != nil {
		t.Fatalf("job view with sanitized result does not encode: %v", err)
	}
	if v := viewProgress(core.Progress{HalfWidth: 0.5}); v.HalfWidth != 0.5 {
		t.Fatalf("finite half-width altered: %+v", v)
	}
}
