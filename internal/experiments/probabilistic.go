package experiments

import (
	"fmt"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/proba"
)

// ProbaRow is one row of the probabilistic-baseline experiment (B1): the
// classical signal-probability approach of the paper's refs [2][3][4]
// versus DIPE, both judged against the general-delay simulation
// reference. The paper's motivating claim — neglecting correlations
// yields poor accuracy — becomes a measured column.
type ProbaRow struct {
	Name       string
	SIM        float64 // watts, reference
	PProba     float64 // watts, probabilistic estimate
	ProbaErr   float64 // percent error vs SIM
	PDipe      float64 // watts, DIPE estimate
	DipeErr    float64 // percent error vs SIM
	Iterations int     // latch fixpoint iterations
}

// ProbabilisticBaseline runs the comparison on every configured circuit.
func ProbabilisticBaseline(cfg Config) ([]ProbaRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rows := make([]ProbaRow, 0, len(cfg.Circuits))
	for ci, name := range cfg.Circuits {
		circ, err := bench89.Get(name)
		if err != nil {
			return nil, err
		}
		tb := core.DefaultTestbench(circ)
		width := len(circ.Inputs)
		seed := cfg.BaseSeed + 3_333_333 + int64(ci)*1_000_003

		ref := cfg.reference(tb, width, seed)

		inputP := make([]float64, width)
		for i := range inputP {
			inputP[i] = cfg.InputProb
		}
		pr, err := proba.Analyze(circ, inputP, proba.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("proba %s: %w", name, err)
		}
		pProba := pr.Power(tb.Model)

		dipeRes, err := core.Estimate(tb.NewSession(cfg.factory(width)(seed+1)), cfg.Opts)
		if err != nil {
			return nil, fmt.Errorf("dipe %s: %w", name, err)
		}

		row := ProbaRow{
			Name:       name,
			SIM:        ref.Power,
			PProba:     pProba,
			PDipe:      dipeRes.Power,
			Iterations: pr.Iterations,
		}
		if ref.Power > 0 {
			row.ProbaErr = 100 * abs(pProba-ref.Power) / ref.Power
			row.DipeErr = 100 * abs(dipeRes.Power-ref.Power) / ref.Power
		}
		cfg.logf("proba baseline: %s SIM=%.4g proba=%.4g (%.1f%%) dipe=%.4g (%.1f%%)\n",
			name, row.SIM, row.PProba, row.ProbaErr, row.PDipe, row.DipeErr)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderProba renders the probabilistic-baseline table.
func RenderProba(rows []ProbaRow) string {
	header := []string{"Circuit", "SIM(mW)", "Proba(mW)", "ProbaErr(%)", "DIPE(mW)", "DIPEErr(%)", "FixpointIters"}
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			r.Name,
			fmt.Sprintf("%.4f", r.SIM*1e3),
			fmt.Sprintf("%.4f", r.PProba*1e3),
			fmt.Sprintf("%.1f", r.ProbaErr),
			fmt.Sprintf("%.4f", r.PDipe*1e3),
			fmt.Sprintf("%.1f", r.DipeErr),
			fmt.Sprintf("%d", r.Iterations),
		}
	}
	return renderRows("Baseline B1: probabilistic (refs [2-4] style) vs DIPE", header, body)
}
