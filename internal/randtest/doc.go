// Package randtest implements the nonparametric randomness tests of
// Section III.A of the paper, centered on the ordinary runs test (with
// the continuity-corrected z statistic of Eq. 4), plus two additional
// tests from the same family (runs up-and-down, von Neumann serial
// correlation) that the paper alludes to with "the ordinary runs test is
// adopted among others".
//
// Every test examines the hypothesis
//
//	H: the sequence is random (i.i.d.)     vs.     A: it is not,
//
// and is accepted at significance level alpha iff |z| <= Phi^-1(1-alpha/2)
// (Eqs. 5–7).
package randtest
