// Package delay provides the timing and load models used by the
// simulators and the power model. Delays are integer picoseconds so the
// event-driven simulator can order events exactly, with no floating-point
// ties.
//
// In the paper's structure this is the "Timing Model" box of Fig. 1:
// the general-delay model that makes glitches observable on sampled
// cycles (Section IV). The default is a fanout-loaded linear model
// (d = 200ps + 100ps × fanout); Zero and Unit models exist for
// ablations and for the hidden zero-delay cycles of the two-phase
// scheme.
package delay
