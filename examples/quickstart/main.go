// Quickstart: estimate the average power of a built-in benchmark
// circuit with the paper's default configuration, then sanity-check the
// estimate against a long brute-force reference simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Load a built-in benchmark (an FSM-like sequential circuit with the
	// published s298 signature: 3 PI, 6 PO, 14 DFF, 119 gates).
	circuit, err := dipe.Benchmark("s298")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(circuit.ComputeStats())

	// Instrument it with the paper's operating point: 5 V, 20 MHz,
	// fanout-loaded delays and capacitances.
	tb := dipe.NewTestbench(circuit)

	// The paper's input model: mutually independent inputs, p = 0.5.
	inputs := dipe.NewIIDSource(len(circuit.Inputs), 0.5, 1)

	// Run DIPE: select the independence interval with the runs test,
	// sample two-phase, stop at 5% error / 0.99 confidence.
	res, err := dipe.Estimate(tb.NewSession(inputs), dipe.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DIPE estimate      : %s\n", dipe.FormatWatts(res.Power))
	fmt.Printf("independence intvl : %d cycles\n", res.Interval)
	fmt.Printf("samples used       : %d (criterion: %s)\n", res.SampleSize, res.Criterion)
	fmt.Printf("simulated cycles   : %d\n", res.TotalCycles())

	// Brute-force check: average 100k consecutive general-delay cycles.
	ref := dipe.RunReference(tb.NewSession(dipe.NewIIDSource(len(circuit.Inputs), 0.5, 2)), 256, 100_000)
	dev := 100 * (res.Power - ref.Power) / ref.Power
	fmt.Printf("reference (SIM)    : %s over %d cycles\n", dipe.FormatWatts(ref.Power), ref.Cycles)
	fmt.Printf("deviation          : %+.2f%% (spec: 5%% at 0.99 confidence)\n", dev)
}
