// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) plus the ablations documented in DESIGN.md:
//
//	Table 1  — per-circuit estimation results against a long reference
//	Table 2  — many-run summary (II spread, average sample size, Davg, Err%)
//	Figure 3 — runs-test z statistic vs. trial interval length
//	A1..A5   — sequence length, significance level, stopping criterion,
//	           fixed-warm-up baseline, and correlated-input ablations
//
// The functions are deterministic given Config.BaseSeed. Rendered tables
// are plain text; Figure data can also be rendered as CSV.
package experiments
