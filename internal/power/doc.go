// Package power implements the paper's power dissipation model (Eq. 1):
//
//	P = VDD^2 / (2T) * sum_i C_i * n_i
//
// where C_i is the load capacitance at node i, n_i the number of logic
// transitions at node i during the clock cycle, T the clock period and
// VDD the supply voltage. C_i can absorb second-order contributions
// (short-circuit current, internal capacitance) by adjustment, exactly as
// the paper notes.
//
// What counts as a transition is the delay-model scenario, named by
// PowerMode: under ModeGeneralDelay n_i includes glitches (the paper's
// event-driven observation, Section IV); under ModeZeroDelay n_i is the
// functional toggle count (at most 1 per cycle), which excludes glitch
// power by construction and admits the bit-parallel packed sampled
// phase of internal/sim. The mode is a first-class estimator option
// (core.Options.Mode) and API field (the service's "powerMode"); the
// gap between the two modes' estimates is the circuit's glitch power,
// the sensitivity the delay-model ablation quantifies.
//
// Alongside the switching power of Eq. 1 the model carries a static
// (leakage) component, state-independent and hence outside the
// estimation loop entirely:
//
//	P_leak(i) = GateBase + PerFanin * fanin(i)   for gates and latches
//	P_leak(i) = 0                                for inputs and constants
//	P_leak    = sum_i P_leak(i)
//
// Primary inputs and constant drivers are pads, not transistor stacks.
// The default coefficients (GateBase = 50 pW, PerFanin = 10 pW) match
// the paper's technology era — 5 V multi-micron CMOS, where
// subthreshold leakage sat orders of magnitude below switching power —
// and exist mainly so attribution reports (Model.Breakdown) can rank
// nodes by total dynamic+static power and expose the split.
package power
