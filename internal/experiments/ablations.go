package experiments

import (
	"fmt"
	"math"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/refsim"
	"repro/internal/stopping"
	"repro/internal/vectors"
)

// SeqLenRow is one row of ablation A1: how the selected independence
// interval behaves as the randomness-test sequence length varies. The
// paper fixes L = 320 arguing longer sequences buy only marginal
// stability; this ablation quantifies that.
type SeqLenRow struct {
	SeqLen    int
	Runs      int
	IIMin     int
	IIMax     int
	IIAvg     float64
	IIStd     float64
	SelCycAvg float64 // cycles spent inside interval selection
}

// AblationSeqLen runs interval selection cfg.Runs times per sequence
// length on one circuit.
func AblationSeqLen(cfg Config, circuit string, lengths []int) ([]SeqLenRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	circ, err := bench89.Get(circuit)
	if err != nil {
		return nil, err
	}
	tb := core.DefaultTestbench(circ)
	width := len(circ.Inputs)
	rows := make([]SeqLenRow, 0, len(lengths))
	for li, L := range lengths {
		opts := cfg.Opts
		opts.SeqLen = L
		row := SeqLenRow{SeqLen: L, Runs: cfg.Runs, IIMin: 1 << 30}
		var sum, sumSq, sumCyc float64
		for r := 0; r < cfg.Runs; r++ {
			s := tb.NewSession(cfg.factory(width)(cfg.BaseSeed + int64(li)*100_000 + int64(r)))
			s.StepHiddenN(opts.WarmupCycles)
			s.ResetCounters()
			sel, err := core.SelectInterval(s, opts)
			if err != nil {
				return nil, err
			}
			ii := float64(sel.Interval)
			sum += ii
			sumSq += ii * ii
			sumCyc += float64(s.HiddenCycles + s.SampledCycles)
			if sel.Interval < row.IIMin {
				row.IIMin = sel.Interval
			}
			if sel.Interval > row.IIMax {
				row.IIMax = sel.Interval
			}
		}
		n := float64(cfg.Runs)
		row.IIAvg = sum / n
		v := sumSq/n - row.IIAvg*row.IIAvg
		if v < 0 {
			v = 0
		}
		row.IIStd = sqrt(v)
		row.SelCycAvg = sumCyc / n
		cfg.logf("ablation seqlen: L=%d II %d..%d avg %.2f±%.2f\n", L, row.IIMin, row.IIMax, row.IIAvg, row.IIStd)
		rows = append(rows, row)
	}
	return rows, nil
}

// AlphaRow is one row of ablation A2: significance level vs. interval
// and accuracy. Larger alpha rejects randomness more eagerly, inflating
// the interval (more conservative, more simulation); smaller alpha
// accepts residual correlation.
type AlphaRow struct {
	Alpha  float64
	Runs   int
	IIAvg  float64
	SAvg   float64
	DAvg   float64 // percent, Eq. 8 against the reference
	ErrPct float64
}

// AblationAlpha sweeps the randomness-test significance level on one
// circuit.
func AblationAlpha(cfg Config, circuit string, alphas []float64) ([]AlphaRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	circ, err := bench89.Get(circuit)
	if err != nil {
		return nil, err
	}
	tb := core.DefaultTestbench(circ)
	width := len(circ.Inputs)
	ref := cfg.reference(tb, width, cfg.BaseSeed+555)

	rows := make([]AlphaRow, 0, len(alphas))
	for ai, alpha := range alphas {
		opts := cfg.Opts
		opts.Alpha = alpha
		row := AlphaRow{Alpha: alpha, Runs: cfg.Runs}
		var sumII, sumS, sumD float64
		viol := 0
		for r := 0; r < cfg.Runs; r++ {
			res, err := core.Estimate(tb.NewSession(cfg.factory(width)(cfg.BaseSeed+int64(ai)*200_000+int64(r))), opts)
			if err != nil {
				return nil, err
			}
			sumII += float64(res.Interval)
			sumS += float64(res.SampleSize)
			dev := 100 * abs(res.Power-ref.Power) / ref.Power
			sumD += dev
			if dev > 100*opts.Spec.RelErr {
				viol++
			}
		}
		n := float64(cfg.Runs)
		row.IIAvg, row.SAvg, row.DAvg = sumII/n, sumS/n, sumD/n
		row.ErrPct = 100 * float64(viol) / n
		cfg.logf("ablation alpha: a=%.2f IIavg=%.2f Savg=%.0f Davg=%.2f%%\n", alpha, row.IIAvg, row.SAvg, row.DAvg)
		rows = append(rows, row)
	}
	return rows, nil
}

// StoppingRow is one row of ablation A3: criterion comparison.
type StoppingRow struct {
	Criterion string
	Runs      int
	SAvg      float64
	DAvg      float64 // percent
	ErrPct    float64 // spec violations, percent of runs
	CycAvg    float64
}

// AblationStopping compares the three stopping criteria on one circuit.
func AblationStopping(cfg Config, circuit string) ([]StoppingRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	circ, err := bench89.Get(circuit)
	if err != nil {
		return nil, err
	}
	tb := core.DefaultTestbench(circ)
	width := len(circ.Inputs)
	ref := cfg.reference(tb, width, cfg.BaseSeed+777)

	factories := []stopping.Factory{
		stopping.NormalFactory, stopping.KSFactory, stopping.OrderStatisticsFactory,
	}
	rows := make([]StoppingRow, 0, len(factories))
	for fi, f := range factories {
		opts := cfg.Opts
		opts.NewCriterion = f
		row := StoppingRow{Runs: cfg.Runs}
		var sumS, sumD, sumCyc float64
		viol := 0
		for r := 0; r < cfg.Runs; r++ {
			res, err := core.Estimate(tb.NewSession(cfg.factory(width)(cfg.BaseSeed+int64(fi)*300_000+int64(r))), opts)
			if err != nil {
				return nil, err
			}
			row.Criterion = res.Criterion
			sumS += float64(res.SampleSize)
			sumCyc += float64(res.TotalCycles())
			dev := 100 * abs(res.Power-ref.Power) / ref.Power
			sumD += dev
			if dev > 100*opts.Spec.RelErr {
				viol++
			}
		}
		n := float64(cfg.Runs)
		row.SAvg, row.DAvg, row.CycAvg = sumS/n, sumD/n, sumCyc/n
		row.ErrPct = 100 * float64(viol) / n
		cfg.logf("ablation stopping: %s Savg=%.0f Davg=%.2f%% Err=%.1f%%\n", row.Criterion, row.SAvg, row.DAvg, row.ErrPct)
		rows = append(rows, row)
	}
	return rows, nil
}

// WarmupRow is one row of ablation A4: DIPE's dynamically selected
// interval versus pessimistic fixed warm-up periods (the strategy of the
// paper's ref [9]). The cost metric is total simulated cycles to reach
// the same accuracy spec.
type WarmupRow struct {
	Mode   string // "dynamic" or "fixed-K"
	Runs   int
	IIAvg  float64 // dynamic: selected; fixed: the constant K
	SAvg   float64
	CycAvg float64
	DAvg   float64 // percent
	ErrPct float64
}

// AblationWarmup compares dynamic interval selection against fixed
// warm-up periods on one circuit.
func AblationWarmup(cfg Config, circuit string, fixed []int) ([]WarmupRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	circ, err := bench89.Get(circuit)
	if err != nil {
		return nil, err
	}
	tb := core.DefaultTestbench(circ)
	width := len(circ.Inputs)
	ref := cfg.reference(tb, width, cfg.BaseSeed+888)

	runMode := func(mode string, interval int, seedOff int64) (WarmupRow, error) {
		row := WarmupRow{Mode: mode, Runs: cfg.Runs}
		var sumII, sumS, sumCyc, sumD float64
		viol := 0
		for r := 0; r < cfg.Runs; r++ {
			seed := cfg.BaseSeed + seedOff + int64(r)
			var res core.Result
			var err error
			sess := tb.NewSession(cfg.factory(width)(seed))
			switch mode {
			case "dynamic":
				res, err = core.Estimate(sess, cfg.Opts)
			case "batch-means":
				res, err = core.EstimateBatchMeans(sess, cfg.Opts, core.DefaultBatchCycles)
			default:
				res, err = core.EstimateWithInterval(sess, cfg.Opts, interval)
			}
			if err != nil {
				return row, err
			}
			sumII += float64(res.Interval)
			sumS += float64(res.SampleSize)
			sumCyc += float64(res.TotalCycles())
			dev := 100 * abs(res.Power-ref.Power) / ref.Power
			sumD += dev
			if dev > 100*cfg.Opts.Spec.RelErr {
				viol++
			}
		}
		n := float64(cfg.Runs)
		row.IIAvg, row.SAvg, row.CycAvg, row.DAvg = sumII/n, sumS/n, sumCyc/n, sumD/n
		row.ErrPct = 100 * float64(viol) / n
		cfg.logf("ablation warmup: %s IIavg=%.2f cycles=%.0f Davg=%.2f%%\n", row.Mode, row.IIAvg, row.CycAvg, row.DAvg)
		return row, nil
	}

	rows := make([]WarmupRow, 0, len(fixed)+2)
	row, err := runMode("dynamic", 0, 400_000)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	for i, k := range fixed {
		row, err := runMode(fmt.Sprintf("fixed-%d", k), k, 500_000+int64(i)*100_000)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	// The consecutive-cycle batch-means baseline ([1]-style): every
	// cycle pays general-delay cost.
	row, err = runMode("batch-means", 0, 900_000)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

// InputsRow is one row of ablation A5: estimator behaviour under
// temporally correlated input streams (the paper's "correlated input
// streams can also be handled without any extra work" claim). Stronger
// input correlation slows the FSM's mixing, so the selected interval
// should grow while accuracy holds.
type InputsRow struct {
	Rho    float64
	Runs   int
	IIAvg  float64
	SAvg   float64
	DAvg   float64
	ErrPct float64
}

// AblationInputs sweeps the lag-1 input autocorrelation on one circuit.
func AblationInputs(cfg Config, circuit string, rhos []float64) ([]InputsRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	circ, err := bench89.Get(circuit)
	if err != nil {
		return nil, err
	}
	tb := core.DefaultTestbench(circ)
	width := len(circ.Inputs)

	rows := make([]InputsRow, 0, len(rhos))
	for ri, rho := range rhos {
		fac := vectors.LagCorrelatedFactory(width, cfg.InputProb, rho)
		// Per-rho reference: the input process changes the true average
		// power, so each rho needs its own.
		cycles := cfg.RefCycles(circ.NumGates())
		ref := refsimRun(tb, fac(cfg.BaseSeed+999+int64(ri)), cfg.RefWarmup, cycles)

		row := InputsRow{Rho: rho, Runs: cfg.Runs}
		var sumII, sumS, sumD float64
		viol := 0
		for r := 0; r < cfg.Runs; r++ {
			res, err := core.Estimate(tb.NewSession(fac(cfg.BaseSeed+int64(ri)*600_000+int64(r))), cfg.Opts)
			if err != nil {
				return nil, err
			}
			sumII += float64(res.Interval)
			sumS += float64(res.SampleSize)
			dev := 100 * abs(res.Power-ref) / ref
			sumD += dev
			if dev > 100*cfg.Opts.Spec.RelErr {
				viol++
			}
		}
		n := float64(cfg.Runs)
		row.IIAvg, row.SAvg, row.DAvg = sumII/n, sumS/n, sumD/n
		row.ErrPct = 100 * float64(viol) / n
		cfg.logf("ablation inputs: rho=%.2f IIavg=%.2f Savg=%.0f Davg=%.2f%%\n", rho, row.IIAvg, row.SAvg, row.DAvg)
		rows = append(rows, row)
	}
	return rows, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// refsimRun returns just the reference power for a prebuilt source.
func refsimRun(tb *core.Testbench, src vectors.Source, warmup, cycles int) float64 {
	return refsim.Run(tb.NewSession(src), warmup, cycles).Power
}
