package netlist

import (
	"fmt"

	"repro/internal/logic"
)

// ExtractCone builds a standalone combinational circuit containing the
// transitive fanin cone of the given root nodes, cut at sources: primary
// inputs stay inputs, and latch outputs become new primary inputs (the
// cone is the next-state/output logic as a function of (PI, state)).
// Root nodes become the primary outputs of the new circuit.
//
// Cone extraction is the standard workhorse for per-output analysis,
// debugging a mis-predicted node, and unit-testing small slices of a big
// benchmark.
func ExtractCone(c *Circuit, roots []NodeID, name string) (*Circuit, error) {
	if !c.Frozen() {
		return nil, fmt.Errorf("netlist: ExtractCone requires a frozen circuit")
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("netlist: ExtractCone needs at least one root")
	}
	for _, r := range roots {
		if r < 0 || int(r) >= len(c.Nodes) {
			return nil, fmt.Errorf("netlist: ExtractCone root %d out of range", r)
		}
	}
	// Depth-first reachability backwards over fanin edges, cutting at
	// sources.
	inCone := make(map[NodeID]bool)
	stack := append([]NodeID(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if inCone[id] {
			continue
		}
		inCone[id] = true
		if c.Nodes[id].Kind.IsSource() {
			continue // cut: latches/inputs become cone inputs
		}
		for _, f := range c.Nodes[id].Fanin {
			if !inCone[f] {
				stack = append(stack, f)
			}
		}
	}

	out := NewCircuit(name)
	remap := make(map[NodeID]NodeID, len(inCone))
	// Sources first (deterministic: circuit order).
	for i := range c.Nodes {
		id := NodeID(i)
		if !inCone[id] || !c.Nodes[id].Kind.IsSource() {
			continue
		}
		kind := logic.Input
		switch c.Nodes[id].Kind {
		case logic.Const0, logic.Const1:
			kind = c.Nodes[id].Kind // constants stay constants
		}
		nid, err := out.AddNode(c.Nodes[id].Name, kind)
		if err != nil {
			return nil, err
		}
		remap[id] = nid
	}
	// Gates in levelized order so fanins are always defined.
	for _, id := range c.Order() {
		if !inCone[id] {
			continue
		}
		nd := &c.Nodes[id]
		fanin := make([]NodeID, len(nd.Fanin))
		for j, f := range nd.Fanin {
			nf, ok := remap[f]
			if !ok {
				return nil, fmt.Errorf("netlist: ExtractCone internal error: fanin %s unmapped", c.Nodes[f].Name)
			}
			fanin[j] = nf
		}
		nid, err := out.AddNode(nd.Name, nd.Kind, fanin...)
		if err != nil {
			return nil, err
		}
		remap[id] = nid
	}
	for _, r := range roots {
		nid, ok := remap[r]
		if !ok {
			return nil, fmt.Errorf("netlist: ExtractCone root %s unmapped", c.Nodes[r].Name)
		}
		if err := out.MarkOutput(nid); err != nil {
			return nil, err
		}
	}
	if err := out.Freeze(); err != nil {
		return nil, err
	}
	return out, nil
}

// FanoutCone returns the IDs of all nodes transitively driven by id
// (combinational propagation only; it does not cross latch boundaries).
// Useful for impact analysis: which nodes can glitch when id toggles.
func FanoutCone(c *Circuit, id NodeID) []NodeID {
	if id < 0 || int(id) >= len(c.Nodes) {
		return nil
	}
	seen := make(map[NodeID]bool)
	var out []NodeID
	stack := []NodeID{id}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range c.Nodes[n].Fanout {
			if seen[t] || !c.Nodes[t].Kind.IsCombinational() {
				continue
			}
			seen[t] = true
			out = append(out, t)
			stack = append(stack, t)
		}
	}
	return out
}
