package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bench89"
	"repro/internal/compile"
	"repro/internal/delay"
	"repro/internal/netlist"
)

// packedTile is one <=64-lane packed reference covering compiled lanes
// [lo, lo+ps.Lanes()). A compiled session wider than 64 lanes is
// checked against packed sessions tiling the same lane range — per-lane
// bit-identity is width-independent, so tiling checks exactly the
// multi-word packing contract.
type packedTile struct {
	lo int
	ps *PackedSession
}

// newPackedTiles builds packed reference sessions tiling `lanes` lanes
// with the same lane→seed mapping the compiled session uses.
func newPackedTiles(c *netlist.Circuit, lanes int, base int64) []packedTile {
	var tiles []packedTile
	for lo := 0; lo < lanes; lo += MaxLanes {
		n := lanes - lo
		if n > MaxLanes {
			n = MaxLanes
		}
		tiles = append(tiles, packedTile{
			lo: lo,
			ps: NewPackedSession(c, laneSources(len(c.Inputs), n, base+int64(lo))),
		})
	}
	return tiles
}

// diffCompiledPacked drives a compiled session and its packed reference
// tiles through `cycles` mixed steps (hidden runs and all three sampled
// flavours, chosen by a seeded rng) and reports any per-lane
// divergence: settled node values, input pattern, latch state,
// zero-delay toggle powers, scalar-engine powers and the
// control-variate covariate must all be bit-identical.
func diffCompiledPacked(t *testing.T, c *netlist.Circuit, lanes, cycles int, base, rngSeed int64) {
	t.Helper()
	diffCompiledPackedConfig(t, c, lanes, cycles, base, rngSeed, CompiledConfig{})
}

// diffCompiledPackedConfig is diffCompiledPacked with an explicit
// compiled-session configuration, so cache-blocked and level-parallel
// executions run through the same bit-identity battery as the plain
// compiled engine.
func diffCompiledPackedConfig(t *testing.T, c *netlist.Circuit, lanes, cycles int, base, rngSeed int64, cfg CompiledConfig) {
	t.Helper()
	cs := NewCompiledSessionConfig(c, laneSources(len(c.Inputs), lanes, base), cfg)
	tiles := newPackedTiles(c, lanes, base)
	weights := make([]float64, c.NumNodes())
	for i := range weights {
		weights[i] = 1 + float64(i%7)/3
	}
	dt := delay.BuildTable(c, delay.DefaultFanoutLoaded())
	csEngine := NewEventDriven(c, dt)
	tileEngine := NewEventDriven(c, dt)

	// The packed tiles write into their own slice of the lane-indexed
	// buffers, so comparisons address both sessions by global lane.
	cPow := make([]float64, lanes)
	cTog := make([]float64, lanes)
	pPow := make([]float64, lanes)
	pTog := make([]float64, lanes)
	cVals := make([]bool, c.NumNodes())
	pVals := make([]bool, c.NumNodes())
	cPins := make([]bool, len(c.Inputs))
	pPins := make([]bool, len(c.Inputs))
	cQ := make([]bool, len(c.Latches))
	pQ := make([]bool, len(c.Latches))

	compareLanes := func(cycle int, sampled bool) {
		for _, tl := range tiles {
			for k := 0; k < tl.ps.Lanes(); k++ {
				lane := tl.lo + k
				if sampled {
					if cPow[lane] != pPow[lane] {
						t.Fatalf("cycle %d lane %d: power %g, packed %g", cycle, lane, cPow[lane], pPow[lane])
					}
					if cTog[lane] != pTog[lane] {
						t.Fatalf("cycle %d lane %d: toggle %g, packed %g", cycle, lane, cTog[lane], pTog[lane])
					}
				}
				cs.ExtractLane(lane, cVals, cPins, cQ)
				tl.ps.ExtractLane(k, pVals, pPins, pQ)
				for i := range cQ {
					if cQ[i] != pQ[i] {
						t.Fatalf("cycle %d lane %d: latch %d mismatch", cycle, lane, i)
					}
				}
				for i := range cPins {
					if cPins[i] != pPins[i] {
						t.Fatalf("cycle %d lane %d: input %d mismatch", cycle, lane, i)
					}
				}
				for i := range cVals {
					if cVals[i] != pVals[i] {
						t.Fatalf("cycle %d lane %d: node %s mismatch", cycle, lane, c.Nodes[i].Name)
					}
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(rngSeed))
	for cycle := 0; cycle < cycles; cycle++ {
		sampled := true
		switch rng.Intn(5) {
		case 0, 1:
			sampled = false
			cs.StepHidden()
			for _, tl := range tiles {
				tl.ps.StepHidden()
			}
		case 2:
			// Zero-delay word-level sampling (StepSampled). The toggle
			// comparison reuses the power slot: under this flavour the
			// toggle sum IS the power.
			cs.StepSampled(weights, cPow)
			copy(cTog, cPow)
			for _, tl := range tiles {
				tl.ps.StepSampled(weights, pPow[tl.lo:tl.lo+tl.ps.Lanes()])
			}
			copy(pTog, pPow)
		case 3:
			// General-delay per-lane engine sampling (StepSampledWith).
			cs.StepSampledWith(csEngine, weights, cPow)
			copy(cTog, cPow)
			for _, tl := range tiles {
				tl.ps.StepSampledWith(tileEngine, weights, pPow[tl.lo:tl.lo+tl.ps.Lanes()])
			}
			copy(pTog, pPow)
		default:
			// Engine power plus toggle covariate (StepSampledBoth).
			cs.StepSampledBoth(csEngine, weights, cPow, cTog)
			for _, tl := range tiles {
				lo, hi := tl.lo, tl.lo+tl.ps.Lanes()
				tl.ps.StepSampledBoth(tileEngine, weights, pPow[lo:hi], pTog[lo:hi])
			}
		}
		compareLanes(cycle, sampled)
	}
	ch, csamp := cs.CycleCounts()
	var ph, psamp uint64
	for _, tl := range tiles {
		h, s := tl.ps.CycleCounts()
		ph += h
		psamp += s
	}
	if ch != ph || csamp != psamp {
		t.Fatalf("cycle counters (%d, %d), packed (%d, %d)", ch, csamp, ph, psamp)
	}
}

// TestCompiledMatchesPackedBench89 runs the differential battery over
// every bench89 circuit — the paper's 24 plus the extended large set up
// to s38417/s38584 — at full word width: compiled and interpreted
// sessions must agree bit-for-bit on all 64 lanes under both power
// modes. Cycle counts scale down with circuit size so the big circuits
// stay affordable without losing coverage of the mixed step flavours.
func TestCompiledMatchesPackedBench89(t *testing.T) {
	for _, name := range bench89.AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c := bench89.MustGet(name)
			cycles := 24
			switch {
			case c.NumNodes() > 10000:
				cycles = 4
			case c.NumNodes() > 500:
				cycles = 10
			}
			diffCompiledPacked(t, c, MaxLanes, cycles, bench89SeedBase(name), 101)
		})
	}
}

// TestCompiledBlockedMatchesPacked reruns the differential battery with
// cache blocking forced into every degenerate regime: a tiny budget
// (many multi-instruction segments), one instruction per segment (the
// maximum spill traffic possible), blocking disabled outright, and the
// default budget. All must stay bit-identical to the packed
// interpreter.
func TestCompiledBlockedMatchesPacked(t *testing.T) {
	configs := []struct {
		name string
		cfg  CompiledConfig
	}{
		{"budget4k", CompiledConfig{CacheBudget: 4 << 10}},
		{"budget64k", CompiledConfig{CacheBudget: 64 << 10}},
		{"seg1", CompiledConfig{CacheBudget: 4 << 10, MaxSegInsts: 1}},
		{"unblocked", CompiledConfig{CacheBudget: -1}},
		{"default", CompiledConfig{}},
	}
	for _, circuit := range []string{"s298", "s1423", "s5378"} {
		c := bench89.MustGet(circuit)
		for _, tc := range configs {
			tc := tc
			t.Run(circuit+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				diffCompiledPackedConfig(t, c, MaxLanes, 10, bench89SeedBase(circuit), 7, tc.cfg)
			})
		}
	}
}

// TestCompiledParallelMatchesPacked reruns the battery with the
// level-parallel executor at several worker counts, including more
// workers than some levels have segments. Determinism does not depend
// on scheduling — each worker owns a fixed stripe of each wave — so the
// result must stay bit-identical to the serial interpreter.
func TestCompiledParallelMatchesPacked(t *testing.T) {
	for _, workers := range []int{2, 3, 7} {
		workers := workers
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			t.Parallel()
			c := bench89.MustGet("s1423")
			diffCompiledPackedConfig(t, c, MaxLanes, 10, 4242, 9, CompiledConfig{Workers: workers})
		})
	}
}

// TestCompiledBlockedStats sanity-checks the segmentation metadata on a
// forced-blocking session: blocking must actually engage, produce more
// than one segment, and bound the scratch file by the requested budget.
func TestCompiledBlockedStats(t *testing.T) {
	c := bench89.MustGet("s5378")
	lanes := MaxLanes
	// 2KB is below both program's live-slot footprints at w=1 (full needs
	// ~3000 slots, step ~600), so blocking must engage on both.
	cs := NewCompiledSessionConfig(c, laneSources(len(c.Inputs), lanes, 1), CompiledConfig{CacheBudget: 2 << 10})
	step, full, blocked := cs.BlockedStats()
	if !blocked {
		t.Fatal("2KB budget on s5378 did not engage blocking")
	}
	w := (lanes + 63) / 64
	budgetSlots := (2 << 10) / (8 * w)
	for _, st := range []struct {
		name string
		s    compile.BlockedStats
	}{{"step", step}, {"full", full}} {
		if st.s.Segments < 2 {
			t.Fatalf("%s: got %d segments, want >= 2", st.name, st.s.Segments)
		}
		if st.s.ScratchSlots > budgetSlots {
			t.Fatalf("%s: scratch %d slots exceeds budget %d", st.name, st.s.ScratchSlots, budgetSlots)
		}
	}
	if _, _, blocked := NewCompiledSessionConfig(c, laneSources(len(c.Inputs), lanes, 1), CompiledConfig{CacheBudget: -1}).BlockedStats(); blocked {
		t.Fatal("CacheBudget -1 still produced a blocked program")
	}
}

// bench89SeedBase derives a stable per-circuit seed base.
func bench89SeedBase(name string) int64 {
	var h int64 = 1
	for _, r := range name {
		h = h*131 + int64(r)
	}
	return h&0xffff + 3
}

// TestCompiledMultiWordLanes checks the widened packing: 65, 256 and
// 512 lanes exercise 2- and 8-word rows, including a partial final
// word, against 64-lane packed tiles.
func TestCompiledMultiWordLanes(t *testing.T) {
	c := bench89.MustGet("s298")
	for _, lanes := range []int{1, 63, 65, 256, CompiledMaxLanes} {
		diffCompiledPacked(t, c, lanes, 10, int64(900+lanes), int64(lanes))
	}
}

// TestCompiledMatchesPackedBenchgen runs the battery over exactly the
// randomized netlists cmd/benchgen emits (-family random:<seed>):
// generate, serialize to .bench text, reparse, and diff the reparsed
// circuit — so the compiled backend is checked against the interpreter
// on freshly parsed external netlists, not only on in-memory generator
// output.
func TestCompiledMatchesPackedBenchgen(t *testing.T) {
	for seed := uint32(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("random%d", seed), func(t *testing.T) {
			t.Parallel()
			gen, err := bench89.Generate(bench89.RandomSignature(seed))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := netlist.WriteBench(&buf, gen); err != nil {
				t.Fatal(err)
			}
			c, err := netlist.ParseBenchString(gen.Name, buf.String())
			if err != nil {
				t.Fatal(err)
			}
			lanes := 32 + int(seed)*29 // spans sub-word and multi-word widths
			diffCompiledPacked(t, c, lanes, 16, int64(seed)*977+5, int64(seed)+55)
		})
	}
}

// TestPropertyCompiledMatchesPacked is the central compiler property
// over seeded random netlists: any generated circuit, any mixed
// hidden/sampled trajectory, every lane bit-identical to the
// interpreter.
func TestPropertyCompiledMatchesPacked(t *testing.T) {
	check := func(seed uint32) bool {
		sig := randomSignature(seed)
		c, err := bench89.Generate(sig)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		lanes := 1 + int(seed%uint32(2*MaxLanes+5))
		diffCompiledPacked(t, c, lanes, 14, int64(seed)*3000+17, int64(seed))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
