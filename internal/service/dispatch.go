package service

import (
	"context"
	"time"

	"repro/internal/core"
)

// Dispatcher runs a validated job's estimation phase on a resolved
// testbench. It is the seam between the job manager and the execution
// substrate: the local dispatcher calls core.EstimateParallel in
// process, the cluster dispatcher (internal/cluster.Coordinator) shards
// the job's replications across dipe-worker processes and merges their
// partial results into the same sequential stopping rule. Existing jobs
// run transparently on either — both substrates use the identical
// replication seeding (baseSeed+1+r) and merge order, so the choice is
// invisible in the Result.
type Dispatcher interface {
	// Name labels the dispatch strategy in statistics ("local",
	// "cluster").
	Name() string
	// Ready reports whether the dispatcher can currently run jobs; the
	// /readyz probe surfaces its error. The local dispatcher is always
	// ready; the cluster dispatcher requires at least one live worker.
	Ready() error
	// Estimate runs one job to completion (or ctx cancellation),
	// reporting running snapshots through progress (never concurrently
	// with itself). On cancellation it returns the partial result with
	// ctx's error, like core.EstimateParallelCtx.
	Estimate(ctx context.Context, tb *core.Testbench, req JobRequest, progress func(core.Progress)) (core.Result, error)
}

// WorkerRegistrar is the optional Dispatcher extension for substrates
// with a dynamic worker set; the HTTP layer exposes it as the
// /v1/cluster/workers endpoints when the configured dispatcher
// implements it.
type WorkerRegistrar interface {
	// AddWorker registers (or re-registers) a worker by base URL.
	AddWorker(url string) error
	// Workers snapshots the registered workers.
	Workers() []WorkerStatus
}

// RegistryAware is the optional Dispatcher extension for substrates
// that must propagate circuits to remote processes: New hands the
// service registry to the dispatcher so it can look up a job circuit's
// provenance (Registry.Source) and ship it to workers that miss it.
type RegistryAware interface {
	SetRegistry(*Registry)
}

// WorkerStatus is one registered worker's health snapshot.
type WorkerStatus struct {
	URL      string    `json:"url"`
	Alive    bool      `json:"alive"`
	LastSeen time.Time `json:"lastSeen,omitzero"`
	// Failures counts stream and heartbeat failures attributed to the
	// worker since registration.
	Failures uint64 `json:"failures"`
}

// localDispatcher runs jobs in-process over the goroutine-parallel
// estimator — the single-node default.
type localDispatcher struct{}

// NewLocalDispatcher returns the in-process dispatcher.
func NewLocalDispatcher() Dispatcher { return localDispatcher{} }

func (localDispatcher) Name() string { return "local" }

func (localDispatcher) Ready() error { return nil }

func (localDispatcher) Estimate(ctx context.Context, tb *core.Testbench, req JobRequest, progress func(core.Progress)) (core.Result, error) {
	factory, err := req.Source.Factory(len(tb.Circuit.Inputs))
	if err != nil {
		return core.Result{}, err
	}
	opts := req.Options.Options()
	opts.Progress = progress
	if req.Interval != nil {
		return core.EstimateParallelWithIntervalCtx(ctx, tb, factory, req.Seed, opts, *req.Interval)
	}
	return core.EstimateParallelCtx(ctx, tb, factory, req.Seed, opts)
}
