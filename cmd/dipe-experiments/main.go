// Command dipe-experiments regenerates every table and figure of the
// paper's evaluation section, plus the ablations documented in
// DESIGN.md.
//
//	dipe-experiments -table1                       # Table 1 (all circuits)
//	dipe-experiments -table2 -runs 1000            # Table 2 at paper scale
//	dipe-experiments -fig3                         # Figure 3 (s1494, L=10000)
//	dipe-experiments -ablation stopping            # criterion comparison
//	dipe-experiments -modes                        # general- vs zero-delay power modes
//	dipe-experiments -sampled -sampled-json BENCH_2.json   # sampled-phase throughput
//	dipe-experiments -compiled -compiled-json BENCH_6.json # compiled-vs-packed duty cycle
//	dipe-experiments -large -large-json BENCH_7.json       # cache blocking at s38417+ scale
//	dipe-experiments -table1 -circuits s27,s298    # subset
//	dipe-experiments -all -small                   # everything, small circuits
//
// By default reference budgets scale with circuit size; -paper restores
// the 1e6-cycle references of the paper (slow on the largest circuits).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench89"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dipe-experiments:", err)
		os.Exit(2)
	}
}

// run is the testable body of the command: it parses args, runs the
// selected campaigns, and writes reports to stdout (progress to
// stderr).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dipe-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table1   = fs.Bool("table1", false, "regenerate Table 1")
		table2   = fs.Bool("table2", false, "regenerate Table 2")
		fig3     = fs.Bool("fig3", false, "regenerate Figure 3")
		ablation = fs.String("ablation", "", "run one ablation: seqlen | alpha | stopping | warmup | inputs")
		all      = fs.Bool("all", false, "run every table, figure and ablation")
		circuits = fs.String("circuits", "", "comma-separated circuit subset (default: all 24)")
		small    = fs.Bool("small", false, "restrict to circuits with < 700 gates")
		runs     = fs.Int("runs", 100, "runs per circuit for Table 2 / ablations (paper: 1000)")
		parallel = fs.Int("parallel", 0, "concurrent estimation runs in Table 2 (0 = serial)")
		reps     = fs.Int("replications", 0, "Table 1: bit-parallel replications (0 = serial estimator)")
		workers  = fs.Int("workers", 0, "goroutine pool for -replications (0 = GOMAXPROCS)")
		packed   = fs.Bool("packed", false, "run the packed-vs-scalar hidden-cycle throughput benchmark")
		packedN  = fs.Int("packed-cycles", 200_000, "scalar cycle budget for -packed")
		packedJS = fs.String("packed-json", "", "write the -packed report as JSON to this file")
		sampled  = fs.Bool("sampled", false, "run the sampled-cycle throughput benchmark (event-driven vs packed zero-delay)")
		sampledN = fs.Int("sampled-cycles", 2_000, "scalar sampled-cycle budget for -sampled")
		sampledJ = fs.String("sampled-json", "", "write the -sampled report as JSON to this file (BENCH_2.json)")
		compiled = fs.Bool("compiled", false, "run the compiled-vs-packed estimation duty-cycle benchmark")
		compSw   = fs.Int("compiled-sweeps", 8, "timed duty-cycle sweeps per circuit for -compiled")
		compLn   = fs.Int("compiled-lanes", 512, "compiled session width for -compiled")
		compJ    = fs.String("compiled-json", "", "write the -compiled report as JSON to this file (BENCH_6.json)")
		largeB   = fs.Bool("large", false, "run the large-circuit cache-blocking benchmark (unblocked vs blocked vs level-parallel)")
		largeSw  = fs.Int("large-sweeps", 3, "timed duty-cycle sweeps per configuration for -large")
		largeGt  = fs.Int("large-gates", 100_000, "synthetic scaled-circuit gate count for -large (0 = named circuits only)")
		largeWk  = fs.String("large-workers", "2", "comma-separated level-parallel worker counts for -large (empty = none)")
		largeLn  = fs.Int("large-lanes", 512, "compiled session width for -large")
		largeJ   = fs.String("large-json", "", "write the -large report as JSON to this file (BENCH_7.json)")
		clusterB = fs.Bool("cluster", false, "run the distributed scaling benchmark (coordinator + in-process workers)")
		clusterW = fs.String("cluster-workers", "1,2", "comma-separated worker counts for -cluster")
		clusterN = fs.Int("cluster-samples", 8192, "sample budget per -cluster run")
		clusterP = fs.Int("cluster-pace", 10000, "per-worker pacing in samples/s for -cluster (0 = raw CPU-bound)")
		clusterJ = fs.String("cluster-json", "", "write the -cluster report as JSON to this file (BENCH_3.json)")
		hetB     = fs.Bool("het", false, "run the heterogeneous-fleet work-stealing benchmark (fast+slow+flaky workers)")
		hetJ     = fs.String("het-json", "", "write the -het report as JSON to this file (BENCH_5.json)")
		modes    = fs.Bool("modes", false, "run the Table-1-style general-delay vs zero-delay mode comparison")
		vrB      = fs.Bool("vr", false, "run the variance-reduction benchmark (plain vs antithetic vs control-variate)")
		vrRelErr = fs.Float64("vr-relerr", 0.05, "accuracy target for -vr")
		vrJ      = fs.String("vr-json", "", "write the -vr report as JSON to this file (BENCH_4.json)")
		paper    = fs.Bool("paper", false, "use the paper's 1e6-cycle references")
		seed     = fs.Int64("seed", 1997, "base seed for the whole campaign")
		fig3Len  = fs.Int("fig3-len", 10000, "Figure 3 sequence length")
		fig3Max  = fs.Int("fig3-max", 30, "Figure 3 maximum trial interval")
		fig3Circ = fs.String("fig3-circuit", "s1494", "Figure 3 circuit")
		csv      = fs.Bool("csv", false, "emit Figure 3 as CSV instead of ASCII")
		quiet    = fs.Bool("q", false, "suppress progress logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.DefaultConfig()
	cfg.Runs = *runs
	cfg.Parallel = *parallel
	cfg.Replications = *reps
	cfg.Workers = *workers
	cfg.BaseSeed = *seed
	if !*quiet {
		cfg.Log = stderr
	}
	if *paper {
		cfg.RefCycles = experiments.PaperRefCycles
	}
	switch {
	case *circuits != "":
		cfg.Circuits = strings.Split(*circuits, ",")
	case *small:
		cfg.Circuits = bench89.SmallNames(700)
	}

	if !*table1 && !*table2 && !*fig3 && *ablation == "" && !*all && !*packed && !*sampled && !*compiled && !*largeB && !*modes && !*clusterB && !*vrB && !*hetB {
		fs.Usage()
		return fmt.Errorf("no campaign selected")
	}

	if *vrB {
		vcfg := experiments.DefaultVRBenchConfig()
		vcfg.RelErr = *vrRelErr
		vcfg.Seed = cfg.BaseSeed
		if *circuits != "" || *small {
			vcfg.Circuits = cfg.Circuits
		}
		if !*quiet {
			vcfg.Log = func(format string, args ...any) { fmt.Fprintf(stderr, format, args...) }
		}
		rows, err := experiments.VarianceReduction(vcfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderVRBench(rows))
		if *vrJ != "" {
			if err := os.WriteFile(*vrJ, []byte(experiments.VRBenchJSON(rows, vcfg)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *vrJ)
		}
	}

	if *clusterB {
		ccfg := experiments.DefaultClusterScalingConfig()
		ccfg.Samples = *clusterN
		ccfg.PacedSamplesPerSec = *clusterP
		ccfg.Seed = cfg.BaseSeed
		if *circuits != "" || *small {
			ccfg.Circuits = cfg.Circuits
		}
		ccfg.WorkerCounts = ccfg.WorkerCounts[:0]
		for _, s := range strings.Split(*clusterW, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -cluster-workers entry %q", s)
			}
			ccfg.WorkerCounts = append(ccfg.WorkerCounts, n)
		}
		rows, err := experiments.ClusterScaling(ccfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderClusterBench(rows))
		if *clusterJ != "" {
			if err := os.WriteFile(*clusterJ, []byte(experiments.ClusterBenchJSON(rows, ccfg.PacedSamplesPerSec)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *clusterJ)
		}
	}

	if *hetB {
		hcfg := experiments.DefaultHeterogeneousConfig()
		hcfg.Seed = cfg.BaseSeed
		rows, err := experiments.HeterogeneousScaling(hcfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderHeterogeneous(rows))
		if *hetJ != "" {
			if err := os.WriteFile(*hetJ, []byte(experiments.HeterogeneousJSON(rows, hcfg)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *hetJ)
		}
	}

	if *packed {
		set := cfg.Circuits
		if *circuits == "" && !*small {
			// Default to the regression trio unless the user chose a set.
			set = []string{"s298", "s832", "s1494"}
		}
		rows, err := experiments.PackedThroughput(set, *packedN, 64, cfg.BaseSeed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderPackedBench(rows))
		if *packedJS != "" {
			if err := os.WriteFile(*packedJS, []byte(experiments.PackedBenchJSON(rows)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *packedJS)
		}
	}

	if *sampled {
		set := cfg.Circuits
		if *circuits == "" && !*small {
			// Default to the regression trio unless the user chose a set.
			set = []string{"s298", "s832", "s1494"}
		}
		rows, err := experiments.SampledThroughput(set, *sampledN, 64, cfg.BaseSeed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderSampledBench(rows))
		if *sampledJ != "" {
			if err := os.WriteFile(*sampledJ, []byte(experiments.SampledBenchJSON(rows)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *sampledJ)
		}
	}

	if *compiled {
		set := cfg.Circuits
		if *circuits == "" && !*small {
			// Default to the regression trio unless the user chose a set.
			set = []string{"s298", "s832", "s1494"}
		}
		// Warmup 512 + one 32-sample stopping round at interval 8 is the
		// estimator's per-replication cycle mix (DefaultOptions
		// WarmupCycles and CheckEvery, a mid-range stationarity interval).
		rows, err := experiments.CompiledThroughput(set, 512, 32, 8, *compSw, *compLn, cfg.BaseSeed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderCompiledBench(rows))
		if *compJ != "" {
			if err := os.WriteFile(*compJ, []byte(experiments.CompiledBenchJSON(rows)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *compJ)
		}
	}

	if *largeB {
		lcfg := experiments.DefaultLargeBenchConfig()
		lcfg.Sweeps = *largeSw
		lcfg.ScaledGates = *largeGt
		lcfg.Lanes = *largeLn
		lcfg.Seed = cfg.BaseSeed
		if *circuits != "" {
			lcfg.Circuits = cfg.Circuits
		}
		lcfg.WorkerCounts = lcfg.WorkerCounts[:0]
		if s := strings.TrimSpace(*largeWk); s != "" {
			for _, e := range strings.Split(s, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(e))
				if err != nil || n < 1 {
					return fmt.Errorf("bad -large-workers entry %q", e)
				}
				lcfg.WorkerCounts = append(lcfg.WorkerCounts, n)
			}
		}
		if !*quiet {
			lcfg.Log = func(format string, args ...any) { fmt.Fprintf(stderr, format, args...) }
		}
		rows, err := experiments.LargeBench(lcfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderLargeBench(rows))
		if *largeJ != "" {
			if err := os.WriteFile(*largeJ, []byte(experiments.LargeBenchJSON(rows)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *largeJ)
		}
	}

	if *modes || *all {
		mcfg := cfg
		if *circuits == "" && !*small {
			mcfg.Circuits = []string{"s298", "s832", "s1494"}
		}
		rows, err := experiments.ModeComparison(mcfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.RenderModes(rows))
	}

	if *table1 || *all {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.RenderTable1(rows))
	}
	if *table2 || *all {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.RenderTable2(rows))
	}
	if *fig3 || *all {
		pts, err := experiments.Figure3(cfg, *fig3Circ, *fig3Len, *fig3Max)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Fprint(stdout, experiments.Figure3CSV(pts))
		} else {
			c := stats.NormalQuantile(1 - cfg.Opts.Alpha/2)
			fmt.Fprintln(stdout, experiments.RenderFigure3(pts, c))
		}
	}

	runAblation := func(which string) error {
		// Ablations run on one representative circuit each; s298 is small
		// and strongly correlated, s27 is the fast smoke case.
		switch which {
		case "seqlen":
			rows, err := experiments.AblationSeqLen(cfg, "s298", []int{80, 160, 320, 640, 1280})
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.RenderSeqLen(rows))
		case "alpha":
			rows, err := experiments.AblationAlpha(cfg, "s298", []float64{0.05, 0.10, 0.20, 0.30, 0.50})
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.RenderAlpha(rows))
		case "stopping":
			rows, err := experiments.AblationStopping(cfg, "s298")
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.RenderStopping(rows))
		case "warmup":
			rows, err := experiments.AblationWarmup(cfg, "s298", []int{10, 50, 100})
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.RenderWarmup(rows))
		case "inputs":
			rows, err := experiments.AblationInputs(cfg, "s298", []float64{0, 0.5, 0.9})
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.RenderInputs(rows))
		case "delay":
			dcfg := cfg
			if len(dcfg.Circuits) > 8 {
				dcfg.Circuits = dcfg.Circuits[:8]
			}
			rows, err := experiments.AblationDelayModels(dcfg)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.RenderDelayModels(rows))
		case "calibration":
			rows := experiments.CalibrationRunsTest(cfg, cfg.Opts.Test, cfg.Opts.SeqLen, 2000,
				[]float64{0.05, 0.10, 0.20, 0.30, 0.50})
			fmt.Fprintln(stdout, experiments.RenderCalibration(rows))
		case "proba":
			pcfg := cfg
			if len(pcfg.Circuits) > 12 {
				pcfg.Circuits = pcfg.Circuits[:12]
			}
			rows, err := experiments.ProbabilisticBaseline(pcfg)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.RenderProba(rows))
		default:
			return fmt.Errorf("unknown ablation %q (seqlen|alpha|stopping|warmup|inputs|delay|calibration|proba)", which)
		}
		return nil
	}
	if *ablation != "" {
		if err := runAblation(*ablation); err != nil {
			return err
		}
	}
	if *all {
		for _, a := range []string{"seqlen", "alpha", "stopping", "warmup", "inputs", "delay", "calibration", "proba"} {
			if err := runAblation(a); err != nil {
				return err
			}
		}
	}
	return nil
}
