package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestPackedThroughput(t *testing.T) {
	rows, err := PackedThroughput([]string{"s27", "s298"}, 2_000, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.ScalarCPS <= 0 || r.PackedCPS <= 0 {
			t.Errorf("%s: nonpositive throughput: %+v", r.Name, r)
		}
		if r.Lanes != 64 || r.PackedCycles != 64*r.ScalarCycles {
			t.Errorf("%s: lane accounting wrong: %+v", r.Name, r)
		}
	}

	var rep PackedBenchReport
	if err := json.Unmarshal([]byte(PackedBenchJSON(rows)), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Rows) != 2 || rep.Rows[0].Name != "s27" {
		t.Fatalf("bad report: %+v", rep)
	}
	if !strings.Contains(RenderPackedBench(rows), "s298") {
		t.Fatal("ASCII render missing circuit name")
	}
}

func TestPackedThroughputErrors(t *testing.T) {
	if _, err := PackedThroughput([]string{"s27"}, 0, 64, 1); err == nil {
		t.Fatal("cycles=0 accepted")
	}
	if _, err := PackedThroughput([]string{"s27"}, 100, 65, 1); err == nil {
		t.Fatal("lanes=65 accepted")
	}
	if _, err := PackedThroughput([]string{"sNOPE"}, 100, 64, 1); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

// TestTable1Parallel: Table1 over the bit-parallel estimator produces
// sane rows (the serial path is covered by the existing tests).
func TestTable1Parallel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Circuits = []string{"s27"}
	cfg.RefCycles = func(int) int { return 5_000 }
	cfg.Replications = 8
	cfg.Workers = 2
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Estimate <= 0 {
		t.Fatalf("bad rows: %+v", rows)
	}
	if rows[0].ErrPct > 25 {
		t.Fatalf("parallel estimate off by %.1f%% from reference", rows[0].ErrPct)
	}
}
