// Power signoff: a realistic end-to-end power characterization of one
// circuit, combining every estimator in the library the way a power
// methodology would:
//
//  1. a probabilistic quick estimate (seconds-scale screening, the
//     refs [2-4] baseline — known to be optimistic/pessimistic);
//  2. the DIPE statistical estimate with accuracy guarantees (the
//     paper's contribution);
//  3. peak single-cycle power via randomized search (ref [8]'s problem,
//     for IR-drop/reliability margins);
//  4. the per-node power ranking (optimization targets).
//
// go run ./examples/power_signoff
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	circuit, err := dipe.Benchmark("s832")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(circuit.ComputeStats())
	tb := dipe.NewTestbench(circuit)
	width := len(circuit.Inputs)

	// 1. Probabilistic screening: no simulation at all.
	inputP := make([]float64, width)
	for i := range inputP {
		inputP[i] = 0.5
	}
	stats, err := dipe.AnalyzeProbabilities(circuit, inputP)
	if err != nil {
		log.Fatal(err)
	}
	pQuick := stats.Power(tb.Model)
	fmt.Printf("\n1. probabilistic screening : %s (%d fixpoint iterations; no correlations, no glitches)\n",
		dipe.FormatWatts(pQuick), stats.Iterations)

	// 2. DIPE with the paper's 5%/0.99 specification.
	res, err := dipe.Estimate(tb.NewSession(dipe.NewIIDSource(width, 0.5, 1)), dipe.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. DIPE average            : %s (II=%d, %d samples, half-width %.1f%% at 0.99)\n",
		dipe.FormatWatts(res.Power), res.Interval, res.SampleSize, 100*res.RelHalfWidth())
	fmt.Printf("   screening error vs DIPE : %+.1f%%\n", 100*(pQuick-res.Power)/res.Power)

	// 3. Peak power search.
	mOpts := dipe.DefaultMaxPowerOptions()
	mOpts.Budget = 6000
	peak, err := dipe.MaxPower(tb, mOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. peak single-cycle power : %s (%.1fx average; %d-cycle search)\n",
		dipe.FormatWatts(peak.Power), peak.Power/res.Power, peak.Cycles)

	// 4. Where does the power go?
	s := tb.NewSession(dipe.NewIIDSource(width, 0.5, 2))
	s.StepHiddenN(512)
	counts := make([]uint64, circuit.NumNodes())
	const cycles = 20_000
	for i := 0; i < cycles; i++ {
		s.StepSampled(counts)
	}
	fmt.Println("4. top consumers:")
	for i, b := range tb.Model.TopConsumers(circuit, counts, cycles, 5) {
		fmt.Printf("   %d. %-12s %12s (%.1f%%)\n", i+1, b.Name, dipe.FormatWatts(b.Power), 100*b.Share)
	}
}
