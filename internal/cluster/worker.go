package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/service"
	"repro/internal/sim"
)

// DefaultCircuitCap bounds the worker's installed-circuit table.
const DefaultCircuitCap = 64

// WorkerConfig sizes a worker. The zero value is a valid worker.
type WorkerConfig struct {
	// CircuitCap bounds the number of installed frozen circuits
	// (default DefaultCircuitCap); beyond it the oldest is evicted and
	// will simply be re-propagated on its next miss.
	CircuitCap int
	// Obs, when non-nil, registers the worker's serving metrics
	// (dipe_worker_*) and mounts the registry's scrape endpoint on the
	// worker mux at GET /metrics.
	Obs *obs.Registry
	// Log, when non-nil, receives structured request-lifecycle events.
	Log *obs.Logger
}

// Worker is the stateless sampling slave of the cluster: it holds no
// job state, only a content-addressed table of frozen circuits, and
// answers /v1/run by streaming a replication range's samples until told
// to stop. Everything statistical — interval selection, the pooled
// stopping rule, retry bookkeeping — lives at the coordinator.
type Worker struct {
	mu    sync.Mutex
	tbs   map[string]*core.Testbench
	order []string // installation order, for eviction
	cap   int

	streams atomic.Int64 // currently running /v1/run streams
	served  atomic.Int64 // total /v1/run streams accepted
	blocks  atomic.Int64 // total sample blocks emitted across streams

	log *obs.Logger
	mux *http.ServeMux
}

// NewWorker builds a worker service; mount Handler on an http.Server.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.CircuitCap <= 0 {
		cfg.CircuitCap = DefaultCircuitCap
	}
	w := &Worker{
		tbs: make(map[string]*core.Testbench),
		cap: cfg.CircuitCap,
		log: cfg.Log.With("component", "worker"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", w.handleHealth)
	mux.HandleFunc("GET /readyz", w.handleHealth)
	mux.HandleFunc("POST /v1/circuits", w.handleInstall)
	mux.HandleFunc("POST /v1/run", w.handleRun)
	if cfg.Obs != nil {
		// Serving state is already tracked in atomics for /healthz; the
		// registry reads the same cells at scrape time.
		cfg.Obs.CounterFunc("dipe_worker_streams_served_total",
			"Sample streams (/v1/run) accepted since start.",
			func() uint64 { return uint64(w.served.Load()) })
		cfg.Obs.CounterFunc("dipe_worker_blocks_emitted_total",
			"Sample blocks written to stream clients.",
			func() uint64 { return uint64(w.blocks.Load()) })
		cfg.Obs.GaugeFunc("dipe_worker_streams_active",
			"Sample streams running right now.",
			func() float64 { return float64(w.streams.Load()) })
		cfg.Obs.GaugeFunc("dipe_worker_circuits_installed",
			"Frozen circuits in the content-addressed table.",
			func() float64 { return float64(w.Circuits()) })
		mux.Handle("GET /metrics", cfg.Obs.Handler())
	}
	w.mux = mux
	return w
}

// Handler returns the worker's HTTP API.
func (w *Worker) Handler() http.Handler { return w.mux }

// Circuits returns the number of installed circuits.
func (w *Worker) Circuits() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.tbs)
}

// handleHealth answers both liveness and readiness: a worker with a
// serving mux is ready (circuits arrive by propagation), so the two
// probes coincide here — unlike the coordinator, whose readiness
// depends on this endpoint.
func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	writeJSON(rw, http.StatusOK, map[string]any{
		"status":   "ok",
		"circuits": w.Circuits(),
		"streams":  w.streams.Load(),
		"served":   w.served.Load(),
	})
}

// handleInstall installs a circuit from its provenance, verifying the
// content hash so a worker can never hold a circuit under the wrong
// name.
func (w *Worker) handleInstall(rw http.ResponseWriter, r *http.Request) {
	var req InstallRequest
	if !readJSON(rw, r, &req) {
		return
	}
	if got := SourceHash(req.Source); got != req.Hash {
		writeError(rw, http.StatusBadRequest,
			fmt.Errorf("cluster: provenance hashes to %.12s..., claimed %.12s...", got, req.Hash))
		return
	}
	tb, err := buildTestbench(req.Source)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	w.install(req.Hash, tb)
	w.log.Info("circuit installed", "hash", req.Hash[:min(12, len(req.Hash))], "gates", tb.Circuit.NumGates())
	writeJSON(rw, http.StatusCreated, InstallResponse{
		Hash:  req.Hash,
		Gates: tb.Circuit.NumGates(),
	})
}

// buildTestbench rebuilds the frozen testbench a provenance describes —
// bit-identically to the coordinator registry's copy: builtins come
// from the same deterministic generator, uploads are re-parsed from the
// original text with the original name, so node IDs and hence every
// float summation order match.
func buildTestbench(src service.CircuitSource) (*core.Testbench, error) {
	var (
		c   *netlist.Circuit
		err error
	)
	switch {
	case src.Builtin != "":
		c, err = bench89.Get(src.Builtin)
	case src.Format == "" || src.Format == "bench":
		c, err = netlist.ParseBenchString(src.Name, src.Text)
	case src.Format == "blif":
		c, err = netlist.ParseBLIFString(src.Name, src.Text)
	default:
		err = fmt.Errorf("cluster: unknown netlist format %q", src.Format)
	}
	if err != nil {
		return nil, err
	}
	return core.DefaultTestbench(c), nil
}

// install puts a testbench in the table, evicting the oldest entry
// beyond capacity.
func (w *Worker) install(hash string, tb *core.Testbench) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.tbs[hash]; !ok {
		w.order = append(w.order, hash)
	}
	w.tbs[hash] = tb
	for len(w.order) > w.cap {
		delete(w.tbs, w.order[0])
		w.order = w.order[1:]
	}
}

func (w *Worker) lookup(hash string) *core.Testbench {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tbs[hash]
}

// handleRun streams a replication range's sample blocks as NDJSON: one
// StreamHeader line, then StreamBlock lines until MaxBlocks is reached
// or the client disconnects (the coordinator cancels the request when
// the pooled criterion converges). All validation happens before the
// 200 header goes out; once streaming starts the only failure modes are
// connection loss, which the coordinator treats as a worker death.
func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !readJSON(rw, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	tb := w.lookup(req.Hash)
	if tb == nil {
		writeError(rw, http.StatusNotFound,
			fmt.Errorf("cluster: unknown circuit %.12s...", req.Hash))
		return
	}
	mode := power.PowerMode(req.Mode)
	if err := mode.Validate(); err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	factory, err := req.Source.Factory(len(tb.Circuit.Inputs))
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}

	w.streams.Add(1)
	w.served.Add(1)
	defer w.streams.Add(-1)
	w.log.Debug("stream start",
		"hash", req.Hash[:min(12, len(req.Hash))],
		"reps", fmt.Sprintf("[%d,%d)", req.RepLo, req.RepHi),
		"skipBlocks", req.SkipBlocks)

	flusher, _ := rw.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(rw)
	if err := enc.Encode(StreamHeader{Lanes: req.RepHi - req.RepLo, Rounds: req.Rounds}); err != nil {
		return
	}
	flush()

	opts := core.DefaultOptions()
	opts.WarmupCycles = req.Warmup
	opts.Mode = mode
	opts.Backend = sim.Backend(req.Backend)
	opts.Workers = req.Workers
	opts.Breakdown = req.Breakdown
	// Errors terminate the stream; the client distinguishes a complete
	// stream from a truncated one by block count, so nothing more is
	// needed here. ctx errors are the normal convergence path.
	_ = core.StreamReplications(r.Context(), tb, factory, req.Seed, opts,
		req.VR, req.Interval, req.RepLo, req.RepHi, req.Rounds, req.SkipBlocks, req.MaxBlocks, req.BudgetRounds,
		func(b core.ReplicationBlock) error {
			if err := enc.Encode(StreamBlock{Index: b.Index, Samples: b.Samples, Counts: b.Toggles}); err != nil {
				return err
			}
			w.blocks.Add(1)
			flush()
			return nil
		})
}
