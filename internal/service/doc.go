// Package service is the long-running power-estimation service behind
// cmd/dipe-server: it turns the one-shot DIPE estimator of the paper
// (Yuan/Teng/Kang, DAC 1997) into a shared HTTP/JSON system that
// amortizes circuit preparation across requests.
//
// It has three layers:
//
//   - Registry (registry.go): a named circuit store — the built-in
//     ISCAS89 benchmark set plus uploaded .bench/BLIF netlists — with an
//     LRU cache of frozen circuits and their instrumented testbenches
//     (CSR view, delay table, power weights). Parsing and freezing a
//     design is paid once, not per request; cache hits and misses are
//     observable via Stats.
//
//   - Manager (jobs.go): an asynchronous job manager. Clients submit an
//     estimation request (circuit, input source, options, seed) and get
//     a job ID back; a bounded worker pool runs jobs through
//     core.EstimateParallelCtx with live progress snapshots,
//     cancellation, and deterministic seeding — two identical requests
//     return bit-identical estimates regardless of pool load.
//
//   - HTTP API (handlers.go, server.go): submit/poll/wait/cancel job
//     endpoints, a batch endpoint that fans a list of jobs across the
//     pool, circuit upload/list, registry/pool statistics, and the
//     liveness/readiness split (/healthz vs /readyz).
//
// Job execution goes through the Dispatcher seam (dispatch.go): the
// local dispatcher runs core.EstimateParallelCtx in-process, while
// internal/cluster's Coordinator shards the same jobs across
// dipe-worker processes — transparently and bit-identically, because
// both use the same replication seeding and merge order. Shutdown
// drains: Close cancels live jobs, rejects new submissions (ErrClosed)
// and waits for the pool, so no estimation goroutine outlives the
// service.
//
// The package is deliberately independent of any particular transport
// policy: Service.Handler returns a plain http.Handler, so it can be
// mounted under a larger mux, wrapped with middleware, or driven
// directly from httptest in handler tests.
package service
