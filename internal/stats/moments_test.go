package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSkewnessKnownDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Symmetric data: skewness ~ 0.
	var sym Accumulator
	for i := 0; i < 100_000; i++ {
		sym.Add(rng.NormFloat64())
	}
	if g1 := sym.Skewness(); math.Abs(g1) > 0.05 {
		t.Errorf("normal skewness = %g, want ~0", g1)
	}
	// Exponential: skewness = 2.
	var exp Accumulator
	for i := 0; i < 200_000; i++ {
		exp.Add(rng.ExpFloat64())
	}
	if g1 := exp.Skewness(); math.Abs(g1-2) > 0.15 {
		t.Errorf("exponential skewness = %g, want 2", g1)
	}
}

func TestExcessKurtosisKnownDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var norm Accumulator
	for i := 0; i < 200_000; i++ {
		norm.Add(rng.NormFloat64())
	}
	if g2 := norm.ExcessKurtosis(); math.Abs(g2) > 0.12 {
		t.Errorf("normal excess kurtosis = %g, want ~0", g2)
	}
	// Uniform: excess kurtosis = -1.2.
	var uni Accumulator
	for i := 0; i < 200_000; i++ {
		uni.Add(rng.Float64())
	}
	if g2 := uni.ExcessKurtosis(); math.Abs(g2+1.2) > 0.1 {
		t.Errorf("uniform excess kurtosis = %g, want -1.2", g2)
	}
	// Exponential: excess kurtosis = 6.
	var exp Accumulator
	for i := 0; i < 400_000; i++ {
		exp.Add(rng.ExpFloat64())
	}
	if g2 := exp.ExcessKurtosis(); math.Abs(g2-6) > 1.0 {
		t.Errorf("exponential excess kurtosis = %g, want 6", g2)
	}
}

func TestMomentsDegenerate(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(1)
	if a.Skewness() != 0 || a.ExcessKurtosis() != 0 {
		t.Error("constant data should have zero higher moments")
	}
	var b Accumulator
	b.Add(3)
	if b.Skewness() != 0 || b.ExcessKurtosis() != 0 {
		t.Error("single sample should have zero higher moments")
	}
}

func TestMomentsShiftInvariance(t *testing.T) {
	// Skewness and kurtosis are invariant under affine shift; skewness
	// flips sign under negation.
	rng := rand.New(rand.NewSource(23))
	var a, b, c Accumulator
	for i := 0; i < 50_000; i++ {
		x := rng.ExpFloat64()
		a.Add(x)
		b.Add(x + 1000)
		c.Add(-x)
	}
	if math.Abs(a.Skewness()-b.Skewness()) > 1e-6 {
		t.Errorf("skewness not shift invariant: %g vs %g", a.Skewness(), b.Skewness())
	}
	if math.Abs(a.Skewness()+c.Skewness()) > 1e-9 {
		t.Errorf("skewness sign under negation: %g vs %g", a.Skewness(), c.Skewness())
	}
	if math.Abs(a.ExcessKurtosis()-c.ExcessKurtosis()) > 1e-9 {
		t.Errorf("kurtosis under negation: %g vs %g", a.ExcessKurtosis(), c.ExcessKurtosis())
	}
}

func TestMomentsMatchDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	xs := make([]float64, 5000)
	var acc Accumulator
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 5
		acc.Add(xs[i])
	}
	m := Mean(xs)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	n := float64(len(xs))
	wantSkew := math.Sqrt(n) * m3 / math.Pow(m2, 1.5)
	wantKurt := n*m4/(m2*m2) - 3
	if math.Abs(acc.Skewness()-wantSkew) > 1e-9 {
		t.Errorf("skewness %g vs direct %g", acc.Skewness(), wantSkew)
	}
	if math.Abs(acc.ExcessKurtosis()-wantKurt) > 1e-9 {
		t.Errorf("kurtosis %g vs direct %g", acc.ExcessKurtosis(), wantKurt)
	}
}
