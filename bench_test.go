// Benchmark harness: one benchmark per table/figure of the paper plus
// micro-benchmarks of the simulation and statistics engines.
//
//	go test -bench=. -benchmem
//
// The table/figure benchmarks run scaled-down configurations per
// iteration (the full campaigns live in cmd/dipe-experiments); custom
// metrics report the paper's machine-independent costs: samples per run
// and simulated cycles per run.
package dipe_test

import (
	"testing"

	"repro"
	"repro/internal/bench89"
	"repro/internal/delay"
	"repro/internal/experiments"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/randtest"
	"repro/internal/sim"
	"repro/internal/stopping"
	"repro/internal/vectors"
)

// table1Circuits is the benchmark subset exercised per iteration; the
// spread covers small, medium and large table rows.
var table1Circuits = []string{"s27", "s298", "s832", "s1494"}

// BenchmarkTable1Estimate measures one full DIPE estimation run (Table 1
// row) per circuit: interval selection + sampling to the paper's spec.
func BenchmarkTable1Estimate(b *testing.B) {
	for _, name := range table1Circuits {
		c := bench89.MustGet(name)
		tb := dipe.NewTestbench(c)
		b.Run(name, func(b *testing.B) {
			var samples, cycles float64
			for i := 0; i < b.N; i++ {
				res, err := dipe.Estimate(tb.NewSession(dipe.NewIIDSource(len(c.Inputs), 0.5, int64(i+1))), dipe.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				samples += float64(res.SampleSize)
				cycles += float64(res.TotalCycles())
			}
			b.ReportMetric(samples/float64(b.N), "samples/run")
			b.ReportMetric(cycles/float64(b.N), "cycles/run")
		})
	}
}

// BenchmarkTable1Reference measures the brute-force SIM reference that
// Table 1's estimates are compared against (per 10k cycles).
func BenchmarkTable1Reference(b *testing.B) {
	for _, name := range []string{"s298", "s1494"} {
		c := bench89.MustGet(name)
		tb := dipe.NewTestbench(c)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dipe.RunReference(tb.NewSession(dipe.NewIIDSource(len(c.Inputs), 0.5, int64(i+1))), 64, 10_000)
			}
		})
	}
}

// BenchmarkTable2Run measures the repeated-run experiment of Table 2 at
// a reduced run count (the statistic aggregation is the same code path
// the full campaign uses).
func BenchmarkTable2Run(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Circuits = []string{"s27"}
	cfg.Runs = 5
	cfg.RefCycles = func(int) int { return 5_000 }
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3ZTrace measures the z-statistic sweep of Fig. 3
// (trial intervals 0..10) at a reduced sequence length.
func BenchmarkFigure3ZTrace(b *testing.B) {
	c := bench89.MustGet("s1494")
	tb := dipe.NewTestbench(c)
	for i := 0; i < b.N; i++ {
		s := tb.NewSession(dipe.NewIIDSource(len(c.Inputs), 0.5, int64(i+1)))
		if _, err := dipe.ZTrace(s, dipe.DefaultOptions(), 10, 1_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSeqLen measures ablation A1 (sequence-length sweep)
// at a reduced configuration.
func BenchmarkAblationSeqLen(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = 3
	cfg.RefCycles = func(int) int { return 5_000 }
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSeqLen(cfg, "s298", []int{80, 320}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAlpha measures ablation A2 (significance sweep).
func BenchmarkAblationAlpha(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = 3
	cfg.RefCycles = func(int) int { return 5_000 }
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAlpha(cfg, "s27", []float64{0.1, 0.3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStopping measures ablation A3 (criterion comparison).
func BenchmarkAblationStopping(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = 3
	cfg.RefCycles = func(int) int { return 5_000 }
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStopping(cfg, "s27"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWarmup measures ablation A4 (dynamic vs fixed
// warm-up cost).
func BenchmarkAblationWarmup(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = 3
	cfg.RefCycles = func(int) int { return 5_000 }
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWarmup(cfg, "s27", []int{20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInputs measures ablation A5 (correlated inputs).
func BenchmarkAblationInputs(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = 3
	cfg.RefCycles = func(int) int { return 5_000 }
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationInputs(cfg, "s27", []float64{0, 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- engine micro-benchmarks ---------------------------------------------

// BenchmarkEventDrivenCycle measures one sampled (general-delay) clock
// cycle across circuit sizes — the dominant cost of estimation.
func BenchmarkEventDrivenCycle(b *testing.B) {
	for _, name := range []string{"s298", "s1494", "s5378", "s15850"} {
		c := bench89.MustGet(name)
		tb := dipe.NewTestbench(c)
		b.Run(name, func(b *testing.B) {
			s := tb.NewSession(dipe.NewIIDSource(len(c.Inputs), 0.5, 1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.StepSampled(nil)
			}
			b.ReportMetric(float64(s.Events()), "events/cycle")
		})
	}
}

// BenchmarkZeroDelayCycle measures one hidden (zero-delay) cycle — the
// cost of advancing through the independence interval.
func BenchmarkZeroDelayCycle(b *testing.B) {
	for _, name := range []string{"s298", "s832", "s1494", "s5378", "s15850"} {
		c := bench89.MustGet(name)
		tb := dipe.NewTestbench(c)
		b.Run(name, func(b *testing.B) {
			s := tb.NewSession(dipe.NewIIDSource(len(c.Inputs), 0.5, 1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.StepHidden()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// BenchmarkPackedHidden measures one packed hidden cycle: 64
// replications advance per iteration, so the cycles/sec metric counts
// per-replication clock cycles and is directly comparable with
// BenchmarkZeroDelayCycle's. The ≥10x target over the scalar baseline
// is the acceptance bar recorded in BENCH_1.json.
func BenchmarkPackedHidden(b *testing.B) {
	for _, name := range []string{"s298", "s832", "s1494", "s5378"} {
		c := bench89.MustGet(name)
		b.Run(name, func(b *testing.B) {
			srcs := make([]vectors.Source, sim.MaxLanes)
			for k := range srcs {
				srcs[k] = vectors.NewIID(len(c.Inputs), 0.5, int64(k+1))
			}
			s := sim.NewPackedSession(c, srcs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.StepHidden()
			}
			b.ReportMetric(float64(b.N*sim.MaxLanes)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// BenchmarkPackedSampled measures one packed sampled cycle (64 lanes
// through the scalar event-driven observer — the general-delay mode).
func BenchmarkPackedSampled(b *testing.B) {
	for _, name := range []string{"s298", "s1494"} {
		c := bench89.MustGet(name)
		tb := dipe.NewTestbench(c)
		b.Run(name, func(b *testing.B) {
			srcs := make([]vectors.Source, sim.MaxLanes)
			for k := range srcs {
				srcs[k] = vectors.NewIID(len(c.Inputs), 0.5, int64(k+1))
			}
			s := sim.NewPackedSession(c, srcs)
			ed := sim.NewEventDriven(c, tb.Delays)
			powers := make([]float64, sim.MaxLanes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.StepSampledWith(ed, tb.Weights(), powers)
			}
			b.ReportMetric(float64(b.N*sim.MaxLanes)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// BenchmarkPackedSampledZeroDelay measures one packed zero-delay
// sampled cycle: all 64 lanes observed by word-level transition
// counting, no scalar extraction at all.
func BenchmarkPackedSampledZeroDelay(b *testing.B) {
	for _, name := range []string{"s298", "s1494"} {
		c := bench89.MustGet(name)
		tb := dipe.NewTestbench(c)
		b.Run(name, func(b *testing.B) {
			srcs := make([]vectors.Source, sim.MaxLanes)
			for k := range srcs {
				srcs[k] = vectors.NewIID(len(c.Inputs), 0.5, int64(k+1))
			}
			s := sim.NewPackedSession(c, srcs)
			powers := make([]float64, sim.MaxLanes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.StepSampled(tb.Weights(), powers)
			}
			b.ReportMetric(float64(b.N*sim.MaxLanes)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// BenchmarkEstimateParallel measures one full bit-parallel estimation
// run (64 replications, default workers) next to BenchmarkTable1Estimate.
func BenchmarkEstimateParallel(b *testing.B) {
	for _, name := range []string{"s298", "s1494"} {
		c := bench89.MustGet(name)
		tb := dipe.NewTestbench(c)
		factory := dipe.NewIIDSourceFactory(len(c.Inputs), 0.5)
		b.Run(name, func(b *testing.B) {
			var samples, cycles float64
			for i := 0; i < b.N; i++ {
				res, err := dipe.EstimateParallel(tb, factory, int64(i+1), dipe.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				samples += float64(res.SampleSize)
				cycles += float64(res.TotalCycles())
			}
			b.ReportMetric(samples/float64(b.N), "samples/run")
			b.ReportMetric(cycles/float64(b.N), "cycles/run")
		})
	}
}

// BenchmarkRunsTest measures the ordinary runs test on a
// paper-sized (320) and a Fig. 3-sized (10000) sequence.
func BenchmarkRunsTest(b *testing.B) {
	for _, n := range []int{320, 10_000} {
		src := vectors.NewIID(1, 0.5, 1)
		buf := make([]bool, 1)
		seq := make([]float64, n)
		for i := range seq {
			src.Next(buf)
			if buf[0] {
				seq[i] = 1
			}
			seq[i] += float64(i%7) * 0.1
		}
		b.Run(benchName("L", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				randtest.OrdinaryRuns{}.Apply(seq)
			}
		})
	}
}

// BenchmarkStoppingCriteria measures per-sample cost of each criterion.
func BenchmarkStoppingCriteria(b *testing.B) {
	for _, f := range []stopping.Factory{
		stopping.NormalFactory, stopping.KSFactory, stopping.OrderStatisticsFactory,
	} {
		crit := f(stopping.DefaultSpec())
		b.Run(crit.Name(), func(b *testing.B) {
			crit.Reset()
			for i := 0; i < b.N; i++ {
				crit.Add(float64(i % 97))
				if i%32 == 31 {
					crit.Done()
				}
			}
		})
	}
}

// BenchmarkSTGExtract measures exact STG extraction on s27 (the
// feasibility boundary of the paper's "first approach").
func BenchmarkSTGExtract(b *testing.B) {
	c := bench89.S27()
	p := []float64{0.5, 0.5, 0.5, 0.5}
	for i := 0; i < b.N; i++ {
		if _, err := dipe.ExtractSTG(c, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntervalSelection measures the Fig. 2 procedure alone.
func BenchmarkIntervalSelection(b *testing.B) {
	c := bench89.MustGet("s298")
	tb := dipe.NewTestbench(c)
	for i := 0; i < b.N; i++ {
		s := tb.NewSession(dipe.NewIIDSource(len(c.Inputs), 0.5, int64(i+1)))
		if _, err := dipe.SelectInterval(s, dipe.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures synthetic circuit generation.
func BenchmarkGenerate(b *testing.B) {
	sig, _ := bench89.Lookup("s5378")
	for i := 0; i < b.N; i++ {
		if _, err := bench89.Generate(sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionCreation measures testbench + session setup for the
// largest circuit (amortized across runs in the campaigns).
func BenchmarkSessionCreation(b *testing.B) {
	c := bench89.MustGet("s15850")
	dt := delay.BuildTable(c, delay.DefaultFanoutLoaded())
	w := make([]float64, c.NumNodes())
	for i := range w {
		w[i] = 1
	}
	for i := 0; i < b.N; i++ {
		sim.NewSession(c, dt, vectors.NewIID(len(c.Inputs), 0.5, 1), w)
	}
}

// BenchmarkProbabilisticAnalysis measures the signal-probability
// baseline (B1's cheap path) across sizes.
func BenchmarkProbabilisticAnalysis(b *testing.B) {
	for _, name := range []string{"s298", "s5378"} {
		c := bench89.MustGet(name)
		p := make([]float64, len(c.Inputs))
		for i := range p {
			p[i] = 0.5
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dipe.AnalyzeProbabilities(c, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaxPowerSearch measures the peak-power hill climb per 512
// simulated cycles.
func BenchmarkMaxPowerSearch(b *testing.B) {
	c := bench89.MustGet("s1494")
	tb := dipe.NewTestbench(c)
	for i := 0; i < b.N; i++ {
		opts := dipe.DefaultMaxPowerOptions()
		opts.Budget = 512
		opts.Seed = int64(i + 1)
		if _, err := dipe.MaxPower(tb, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseBench measures netlist parsing throughput on the largest
// generated benchmark.
func BenchmarkParseBench(b *testing.B) {
	text := netlist.BenchString(bench89.MustGet("s15850"))
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netlist.ParseBenchString("s15850", text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiagnose measures the post-hoc sample audit.
func BenchmarkDiagnose(b *testing.B) {
	c := bench89.MustGet("s298")
	tb := dipe.NewTestbench(c)
	s := tb.NewSession(dipe.NewIIDSource(len(c.Inputs), 0.5, 1))
	for i := 0; i < b.N; i++ {
		if _, err := dipe.Diagnose(s, 2, 320); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStateSampling measures the exact estimator on s27 (the
// feasible corner of Section III's first approach).
func BenchmarkStateSampling(b *testing.B) {
	c := bench89.S27()
	p := []float64{0.5, 0.5, 0.5, 0.5}
	stg, err := dipe.ExtractSTG(c, p)
	if err != nil {
		b.Fatal(err)
	}
	pi, err := stg.Stationary(1e-10, 100_000)
	if err != nil {
		b.Fatal(err)
	}
	tb := dipe.NewTestbench(c)
	for i := 0; i < b.N; i++ {
		if _, err := dipe.EstimateByStateSampling(tb.NewSession(dipe.NewIIDSource(4, 0.5, int64(i+1))),
			stg, pi, p, dipe.DefaultSpec(), dipe.OrderStatisticsCriterion, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledObsOverhead measures the compiled s1494 duty cycle
// (3 hidden + 1 sampled step, 64 lanes) with the observability sink
// disabled — a nil atomic pointer, one branch per register-file pass —
// and enabled with live registry counters. The compiled-bench CI job
// gates the enabled/disabled ratio at 1% so instrumentation can never
// creep onto the simulation critical path.
func BenchmarkCompiledObsOverhead(b *testing.B) {
	c := bench89.MustGet("s1494")
	tb := dipe.NewTestbench(c)
	for _, mode := range []struct {
		name string
		reg  *obs.Registry
	}{{"disabled", nil}, {"enabled", obs.NewRegistry()}} {
		b.Run(mode.name, func(b *testing.B) {
			sim.RegisterCompiledMetrics(mode.reg)
			defer sim.RegisterCompiledMetrics(nil)
			srcs := make([]vectors.Source, sim.MaxLanes)
			for k := range srcs {
				srcs[k] = vectors.NewIID(len(c.Inputs), 0.5, int64(k+1))
			}
			s := sim.NewCompiledSession(c, srcs)
			powers := make([]float64, sim.MaxLanes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.StepHiddenN(3)
				s.StepSampled(tb.Weights(), powers)
			}
			b.ReportMetric(float64(b.N*sim.MaxLanes*4)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// BenchmarkBreakdownOverhead measures the compiled s1494 duty cycle (3
// hidden + 1 sampled step, 64 lanes) with per-node toggle counting
// disabled — a nil accumulator, zero work — and enabled. Counting adds
// one popcount-and-add per node word per sampled step; the CI gate
// holds the enabled/disabled ratio at 5% so breakdown runs stay within
// noise of scalar-only estimation.
func BenchmarkBreakdownOverhead(b *testing.B) {
	c := bench89.MustGet("s1494")
	tb := dipe.NewTestbench(c)
	for _, mode := range []struct {
		name     string
		counting bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			srcs := make([]vectors.Source, sim.MaxLanes)
			for k := range srcs {
				srcs[k] = vectors.NewIID(len(c.Inputs), 0.5, int64(k+1))
			}
			s := sim.NewCompiledSession(c, srcs)
			if mode.counting {
				s.AccumulateToggles(make([]uint64, c.NumNodes()))
			}
			powers := make([]float64, sim.MaxLanes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.StepHiddenN(3)
				s.StepSampled(tb.Weights(), powers)
			}
			b.ReportMetric(float64(b.N*sim.MaxLanes*4)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

func benchName(prefix string, n int) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return prefix + "=" + itoa(n/1000) + "k"
	default:
		return prefix + "=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
