package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// startServer runs the real binary entry point on a kernel-assigned
// port and returns its base URL plus a shutdown func.
func startServer(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	var out bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), &out, ready, stop)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, func() error {
			close(stop)
			select {
			case err := <-errc:
				return err
			case <-time.After(10 * time.Second):
				return fmt.Errorf("server did not shut down")
			}
		}
	case err := <-errc:
		t.Fatalf("server exited before ready: %v", err)
		return "", nil
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
		return "", nil
	}
}

func TestServeEstimateRoundTrip(t *testing.T) {
	base, shutdown := startServer(t, "-workers", "2", "-cache", "4")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	body := `{"circuit":"s27","seed":11,"options":{"replications":16,"workers":2}}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("submit status = %d, id = %q", resp.StatusCode, submitted.ID)
	}

	resp, err = http.Get(base + "/v1/jobs/" + submitted.ID + "/wait?timeout=60s")
	if err != nil {
		t.Fatal(err)
	}
	var final struct {
		State  string `json:"state"`
		Result *struct {
			Power float64 `json:"power"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if final.State != "done" || final.Result == nil || final.Result.Power <= 0 {
		t.Fatalf("final job = %+v", final)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "256.256.256.256:99999"}, &out, nil, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// TestClusterModeEndToEnd boots the server with the cluster dispatcher
// and an in-process worker, walks the readiness transition, runs a job
// through the cluster, and drains with a job in flight.
func TestClusterModeEndToEnd(t *testing.T) {
	wk := httptest.NewServer(cluster.NewWorker(cluster.WorkerConfig{}).Handler())
	defer wk.Close()

	base, shutdown := startServer(t, "-cluster", "-heartbeat", "100ms")

	// Cluster mode with no registered workers: alive, not ready.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before workers = %d, want 503", resp.StatusCode)
	}

	reg := fmt.Sprintf(`{"url":%q}`, wk.URL)
	resp, err = http.Post(base+"/v1/cluster/workers", "application/json", strings.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("worker registration = %d, want 201", resp.StatusCode)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after registration = %d, want 200", resp.StatusCode)
	}

	body := `{"circuit":"s27","seed":11,"options":{"replications":16,"workers":1}}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/v1/jobs/" + submitted.ID + "/wait?timeout=60s")
	if err != nil {
		t.Fatal(err)
	}
	var final struct {
		State  string `json:"state"`
		Error  string `json:"error"`
		Result *struct {
			Power float64 `json:"power"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if final.State != "done" || final.Result == nil || final.Result.Power <= 0 {
		t.Fatalf("cluster job = %+v (error %q)", final, final.Error)
	}

	// Drain with a job in flight: submit a slow one and shut down
	// immediately; run() must still return promptly (the drain cancels
	// it) and without error.
	slow := `{"circuit":"s298","seed":3,"interval":4,"options":{"relErr":0.001,"confidence":0.9999,"replications":16}}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown with in-flight job: %v", err)
	}
}
