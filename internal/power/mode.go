package power

import "fmt"

// PowerMode names the delay-model scenario under which transitions are
// observed on sampled cycles. It is the user-visible axis that selects a
// power engine (see internal/sim): general-delay observation counts
// every transition including glitches with the event-driven simulator;
// zero-delay observation counts only functional (settled-value)
// transitions and admits the bit-parallel packed engine, which makes
// sampled cycles as cheap as hidden ones.
//
// The zero value ("") means ModeGeneralDelay, the paper's configuration,
// so existing call sites keep their behaviour without change.
type PowerMode string

const (
	// ModeGeneralDelay observes sampled cycles with the event-driven
	// general-delay simulator: functional transitions and glitches alike
	// (the paper's Eq. 1 accounting). This is the default.
	ModeGeneralDelay PowerMode = "general-delay"
	// ModeZeroDelay observes sampled cycles under the zero-delay model:
	// each node contributes at most one transition per cycle (old settled
	// value XOR new settled value). Glitch power is excluded by
	// construction, and the observation is bit-packable across 64
	// replication lanes.
	ModeZeroDelay PowerMode = "zero-delay"
)

// Modes lists the valid canonical power modes.
func Modes() []PowerMode { return []PowerMode{ModeGeneralDelay, ModeZeroDelay} }

// Canonical maps the zero value to ModeGeneralDelay and returns every
// other value unchanged.
func (m PowerMode) Canonical() PowerMode {
	if m == "" {
		return ModeGeneralDelay
	}
	return m
}

// IsZeroDelay reports whether the mode selects zero-delay observation.
func (m PowerMode) IsZeroDelay() bool { return m == ModeZeroDelay }

// String implements fmt.Stringer; the zero value prints as its canonical
// form.
func (m PowerMode) String() string { return string(m.Canonical()) }

// Validate rejects anything but "", "general-delay" and "zero-delay".
// API layers that accept modes verbatim (the service's job schema) rely
// on this to fail requests before a worker picks them up.
func (m PowerMode) Validate() error {
	switch m {
	case "", ModeGeneralDelay, ModeZeroDelay:
		return nil
	}
	return fmt.Errorf("power: unknown power mode %q (want %q or %q)",
		string(m), ModeGeneralDelay, ModeZeroDelay)
}

// ParseMode resolves a user-supplied mode string, accepting the short
// aliases "general" and "zero" alongside the canonical names. The empty
// string parses to ModeGeneralDelay.
func ParseMode(s string) (PowerMode, error) {
	switch s {
	case "", "general", string(ModeGeneralDelay):
		return ModeGeneralDelay, nil
	case "zero", string(ModeZeroDelay):
		return ModeZeroDelay, nil
	}
	return "", fmt.Errorf("power: unknown power mode %q (want %q or %q)",
		s, ModeGeneralDelay, ModeZeroDelay)
}
