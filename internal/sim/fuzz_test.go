package sim

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// FuzzCompile feeds arbitrary ISCAS89 ".bench" text through the parser
// and, whenever a circuit results, through the compiler and one
// hidden-plus-sampled trajectory, asserting the compiled session agrees
// with the interpreted packed session on every lane and that nothing
// panics on degenerate shapes — constant cones, buffer chains, latches
// fed by latches, unused inputs. The budget byte steers the blocked /
// level-parallel configuration, so segmentation and spill analysis are
// fuzzed on the same degenerate shapes: 0 = plain, 1 = one instruction
// per segment, 2 = blocking disabled, 3 = two workers, otherwise a tiny
// byte-scaled cache budget.
func FuzzCompile(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(z)\nz = AND(a, a)\n", byte(0))
	f.Add("INPUT(a)\nOUTPUT(z)\nq = DFF(d)\nd = NOT(q)\nz = OR(a, q)\n", byte(1))
	f.Add("INPUT(a)\nOUTPUT(z)\nc0 = CONST0()\nb = BUF(c0)\nq = DFF(b)\nz = XOR(a, q)\n", byte(2))
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nq1 = DFF(q2)\nq2 = DFF(q1)\nz = NAND(a, XNORg)\nXNORg = XNOR(b, q1)\n", byte(3))
	f.Add("INPUT(a)\nOUTPUT(z)\nc1 = CONST1()\nz = XOR(a, c1)\nq = DFF(z)\n", byte(64))
	f.Fuzz(func(t *testing.T, text string, budget byte) {
		c, err := netlist.ParseBenchString("fuzz", text)
		if err != nil {
			t.Skip()
		}
		// Compile must handle anything the parser accepts.
		u := compile.Compile(c)
		if u.Full == nil || u.Step == nil {
			t.Fatal("Compile returned nil program")
		}
		var cfg CompiledConfig
		switch budget {
		case 0: // plain default
		case 1:
			cfg = CompiledConfig{CacheBudget: 256, MaxSegInsts: 1}
		case 2:
			cfg = CompiledConfig{CacheBudget: -1}
		case 3:
			cfg = CompiledConfig{Workers: 2}
		default:
			cfg = CompiledConfig{CacheBudget: int(budget) * 16}
		}
		const lanes = 3
		srcs := func() []vectors.Source {
			out := make([]vectors.Source, lanes)
			for k := range out {
				out[k] = vectors.NewIID(len(c.Inputs), 0.5, int64(100+k))
			}
			return out
		}
		cs := NewCompiledSessionConfig(c, srcs(), cfg)
		ps := NewPackedSession(c, srcs())
		weights := make([]float64, c.NumNodes())
		for i := range weights {
			weights[i] = 1 + float64(i%3)
		}
		cPow := make([]float64, lanes)
		pPow := make([]float64, lanes)
		cVals := make([]bool, c.NumNodes())
		pVals := make([]bool, c.NumNodes())
		for cycle := 0; cycle < 4; cycle++ {
			cs.StepHidden()
			ps.StepHidden()
		}
		cs.StepSampled(weights, cPow)
		ps.StepSampled(weights, pPow)
		for k := 0; k < lanes; k++ {
			if cPow[k] != pPow[k] {
				t.Fatalf("lane %d: compiled power %g, packed %g", k, cPow[k], pPow[k])
			}
			cs.ExtractLane(k, cVals, nil, nil)
			ps.ExtractLane(k, pVals, nil, nil)
			for i := range cVals {
				if cVals[i] != pVals[i] {
					t.Fatalf("lane %d: node %s mismatch", k, c.Nodes[i].Name)
				}
			}
		}
	})
}
