// Package stopping implements the stopping criteria of Section IV: given
// a stream of i.i.d. power samples and an accuracy specification
// (maximum relative error epsilon with confidence 1-delta), a criterion
// decides when enough samples have been collected.
//
// Three interchangeable criteria are provided, mirroring the choices the
// paper lists:
//
//   - Normal: the parametric criterion based on the central limit
//     theorem (Burch et al., the paper's ref [11]);
//   - KS: a distribution-free criterion built on the
//     Dvoretzky–Kiefer–Wolfowitz uniform confidence band for the
//     empirical CDF (a reconstruction of the Kolmogorov–Smirnov
//     criterion of the paper's ref [6]);
//   - OrderStatistics: a distribution-free criterion built on binomial
//     order statistics of batch means (a reconstruction of the paper's
//     ref [7], the criterion DIPE uses by default).
package stopping
