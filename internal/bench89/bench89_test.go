package bench89

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func TestS27Parses(t *testing.T) {
	c := S27()
	st := c.ComputeStats()
	if st.Inputs != 4 || st.Outputs != 1 || st.Latches != 3 || st.Gates != 10 {
		t.Fatalf("s27 stats = %+v, want 4/1/3/10", st)
	}
	if c.Lookup("G17") == netlist.InvalidNode {
		t.Fatalf("s27 missing output node G17")
	}
}

func TestSignaturesExact(t *testing.T) {
	for _, name := range Names() {
		sig, _ := Lookup(name)
		c, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		st := c.ComputeStats()
		if st.Inputs != sig.Inputs || st.Outputs != sig.Outputs ||
			st.Latches != sig.Latches || st.Gates != sig.Gates {
			t.Errorf("%s: generated %d/%d/%d/%d, want %d/%d/%d/%d",
				name, st.Inputs, st.Outputs, st.Latches, st.Gates,
				sig.Inputs, sig.Outputs, sig.Latches, sig.Gates)
		}
		if !c.Frozen() {
			t.Errorf("%s: circuit not frozen", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGet("s298")
	b := MustGet("s298")
	sa, sb := netlist.BenchString(a), netlist.BenchString(b)
	if sa != sb {
		t.Fatalf("s298 generation is not deterministic")
	}
}

func TestGenerateDistinctAcrossNames(t *testing.T) {
	a := netlist.BenchString(MustGet("s344"))
	b := netlist.BenchString(MustGet("s349"))
	if a == b {
		t.Fatalf("s344 and s349 generated identical netlists")
	}
}

func TestGenerateRoundTripsThroughBenchFormat(t *testing.T) {
	orig := MustGet("s386")
	text := netlist.BenchString(orig)
	re, err := netlist.ParseBenchString("s386", text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if netlist.BenchString(re) != text {
		t.Fatalf("bench round trip not stable")
	}
}

func TestLatchesAllDriven(t *testing.T) {
	for _, name := range []string{"s27", "s208", "s298", "s1494", "s5378"} {
		c := MustGet(name)
		for _, l := range c.Latches {
			nd := c.Nodes[l]
			if len(nd.Fanin) != 1 {
				t.Errorf("%s: latch %s has %d fanin", name, nd.Name, len(nd.Fanin))
			}
			if nd.Fanin[0] == l {
				t.Errorf("%s: latch %s drives itself directly", name, nd.Name)
			}
		}
	}
}

func TestUnknownCircuit(t *testing.T) {
	if _, err := Get("s9999"); err == nil {
		t.Fatalf("Get(s9999) succeeded, want error")
	}
}

func TestSmallNames(t *testing.T) {
	small := SmallNames(700)
	for _, n := range small {
		sig, ok := Lookup(n)
		if !ok {
			t.Fatalf("SmallNames returned unknown circuit %q", n)
		}
		if sig.Gates >= 700 {
			t.Errorf("SmallNames(700) returned %s with %d gates", n, sig.Gates)
		}
	}
	if len(small) == 0 {
		t.Fatalf("SmallNames(700) empty")
	}
}

func TestGenerateRejectsBadSignatures(t *testing.T) {
	bad := []Signature{
		{"x", 2, 1, 4, 100}, // too few inputs
		{"x", 4, 0, 4, 100}, // no outputs
		{"x", 4, 1, 0, 100}, // no latches
		{"x", 4, 1, 40, 20}, // gate budget below minimum
	}
	for _, sig := range bad {
		if _, err := Generate(sig); err == nil {
			t.Errorf("Generate(%+v) succeeded, want error", sig)
		}
	}
}

func TestGeneratedHasCombinationalVariety(t *testing.T) {
	c := MustGet("s1494")
	kinds := map[logic.Kind]int{}
	for i := range c.Nodes {
		if c.Nodes[i].Kind.IsCombinational() {
			kinds[c.Nodes[i].Kind]++
		}
	}
	for _, k := range []logic.Kind{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Not} {
		if kinds[k] == 0 {
			t.Errorf("s1494 has no %s gates", k)
		}
	}
}
