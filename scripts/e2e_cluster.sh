#!/usr/bin/env bash
# e2e_cluster.sh — boot a real estimation cluster on loopback and drive
# a batch through it: one dipe-server coordinator + two dipe-worker
# processes, worker self-registration, readiness transition, batch
# submission over the cluster dispatcher, and completion checks.
# CI runs this as the cluster end-to-end gate; it needs only go, curl
# and python3.
set -euo pipefail
cd "$(dirname "$0")/.."

# All three processes bind kernel-assigned ephemeral ports (":0") and
# report the bound address on their first log line ("... listening on
# HOST:PORT"), so any number of e2e runs can share a host — parallel CI
# jobs included — without port collisions.

BIN="$(mktemp -d)"
LOGS="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$BIN"
  echo "--- server log ---"; cat "$LOGS/server.log" || true
  rm -rf "$LOGS"
}
trap cleanup EXIT

# bound_addr LOGFILE: wait for a process to announce its listen address.
bound_addr() {
  local log="$1" addr=""
  for i in $(seq 1 50); do
    addr=$(sed -n 's/.*listening on \([0-9.:]*\)$/\1/p' "$log" 2>/dev/null | head -n1)
    [ -n "$addr" ] && { echo "$addr"; return 0; }
    sleep 0.2
  done
  return 1
}

echo "== build"
go build -o "$BIN/dipe-server" ./cmd/dipe-server
go build -o "$BIN/dipe-worker" ./cmd/dipe-worker

echo "== start coordinator (cluster mode, no workers yet)"
"$BIN/dipe-server" -addr "127.0.0.1:0" -cluster -heartbeat 500ms \
  >"$LOGS/server.log" 2>&1 &
PIDS+=($!)

SERVER_ADDR=$(bound_addr "$LOGS/server.log") || { echo "server never reported its address"; exit 1; }
BASE="http://${SERVER_ADDR}"

for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || { echo "server never came up"; exit 1; }

echo "== not ready before any worker registers"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")
[ "$code" = 503 ] || { echo "readyz=$code before workers, want 503"; exit 1; }

echo "== start two workers with self-registration"
"$BIN/dipe-worker" -addr "127.0.0.1:0" -register "$BASE" >"$LOGS/w1.log" 2>&1 &
PIDS+=($!)
"$BIN/dipe-worker" -addr "127.0.0.1:0" -register "$BASE" >"$LOGS/w2.log" 2>&1 &
PIDS+=($!)
bound_addr "$LOGS/w1.log" >/dev/null || { echo "worker 1 never reported its address"; exit 1; }
bound_addr "$LOGS/w2.log" >/dev/null || { echo "worker 2 never reported its address"; exit 1; }

echo "== wait for readiness"
for i in $(seq 1 50); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")
  [ "$code" = 200 ] && break
  sleep 0.2
done
[ "$code" = 200 ] || { echo "readyz=$code with workers, want 200"; exit 1; }

echo "== both workers visible"
curl -s "$BASE/v1/cluster/workers" | python3 -c '
import json, sys
ws = json.load(sys.stdin)["workers"]
alive = [w for w in ws if w["alive"]]
assert len(ws) == 2, f"{len(ws)} workers registered, want 2"
assert len(alive) == 2, f"{len(alive)} workers alive, want 2"
'

echo "== submit a batch over the cluster dispatcher (incl. variance-reduction modes)"
ids=$(curl -sf -X POST "$BASE/v1/batch" -H 'Content-Type: application/json' -d '{
  "jobs": [
    {"circuit":"s27",  "seed":5, "options":{"replications":16,"workers":1}},
    {"circuit":"s298", "seed":9, "options":{"replications":32,"workers":1}},
    {"circuit":"s1494","seed":3, "options":{"replications":64,"workers":1}},
    {"circuit":"s298", "seed":4, "options":{"replications":16,"workers":1,"variance":"antithetic"}},
    {"circuit":"s298", "seed":8, "options":{"replications":16,"workers":1,"variance":"control-variate"}}
  ]}' | python3 -c 'import json,sys; print("\n".join(json.load(sys.stdin)["ids"]))')

echo "== wait for completion"
check_job='
import json, sys
jid = sys.argv[1]
v = json.load(sys.stdin)
assert v["state"] == "done", "%s: state %s error %s" % (jid, v["state"], v.get("error", ""))
r = v["result"]
assert r["power"] > 0, "%s: nonpositive power" % jid
assert r["converged"], "%s: did not converge" % jid
want_vr = v["request"]["options"].get("variance", "")
assert r.get("variance", "") == want_vr, "%s: variance %r, want %r" % (jid, r.get("variance"), want_vr)
print("%s: %s%s P=%.4g W n=%d" % (jid, v["request"]["circuit"],
      " [%s]" % want_vr if want_vr else "", r["power"], r["sampleSize"]))
'
for id in $ids; do
  curl -sf "$BASE/v1/jobs/$id/wait?timeout=120s" | python3 -c "$check_job" "$id"
done

echo "== stats name the cluster dispatcher"
curl -s "$BASE/v1/stats" | python3 -c '
import json, sys
st = json.load(sys.stdin)
assert st["dispatcher"] == "cluster", st["dispatcher"]
assert st["pool"]["done"] >= 5, st["pool"]
'

echo "e2e cluster: OK"
