package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// API shapes specific to the HTTP layer. Job and result shapes live in
// jobs.go (JobRequest, JobView, ...).

// UploadRequest registers a netlist under a name.
type UploadRequest struct {
	Name string `json:"name"`
	// Format is "bench" (default) or "blif".
	Format string `json:"format,omitempty"`
	// Text is the netlist source.
	Text string `json:"text"`
}

// UploadResponse echoes the circuit statistics of a successful upload.
type UploadResponse struct {
	Name    string `json:"name"`
	Stats   string `json:"stats"`
	Inputs  int    `json:"inputs"`
	Gates   int    `json:"gates"`
	Latches int    `json:"latches"`
}

// BatchRequest fans a list of jobs across the pool in one call.
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// BatchResponse lists the job IDs in request order.
type BatchResponse struct {
	IDs []string `json:"ids"`
}

// StatsResponse aggregates registry, pool, cache and durability
// statistics, plus per-worker degradation counters in cluster mode.
type StatsResponse struct {
	Registry RegistryStats `json:"registry"`
	Pool     PoolStats     `json:"pool"`
	// Cache reports result-cache effectiveness (hits answer repeated
	// submissions without re-running them).
	Cache CacheStats `json:"cache"`
	// Store reports the job journal, when the service runs durable.
	Store *StoreStats `json:"store,omitempty"`
	// Dispatcher names the execution substrate ("local" or "cluster").
	Dispatcher string `json:"dispatcher"`
	// Workers mirrors GET /v1/cluster/workers in cluster mode so one
	// stats scrape shows degradation (retries, reassignments, lease
	// expiries, last errors), not just liveness.
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// RegisterWorkerRequest adds a worker to a cluster dispatcher.
type RegisterWorkerRequest struct {
	// URL is the worker's base URL (e.g. "http://10.0.0.7:8416").
	URL string `json:"url"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// routes builds the service mux:
//
//	GET    /healthz             liveness (always ok while the process serves)
//	GET    /readyz              readiness (503 until jobs can actually run)
//	GET    /v1/circuits         list resolvable circuit names
//	POST   /v1/circuits         upload a .bench/BLIF netlist
//	POST   /v1/jobs             submit one estimation job
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        poll one job
//	GET    /v1/jobs/{id}/wait   block until the job finishes (?timeout=30s)
//	GET    /v1/jobs/{id}/trace  ordered lifecycle span list (submit → stop)
//	GET    /v1/jobs/{id}/breakdown  full per-node power attribution dump
//	DELETE /v1/jobs/{id}        cancel a job
//	POST   /v1/batch            submit a list of jobs
//	GET    /v1/stats            registry + pool statistics
//	GET    /v1/cluster/workers  cluster mode: registered workers + health
//	POST   /v1/cluster/workers  cluster mode: register a worker {"url": ...}
func (s *Service) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /v1/cluster/workers", s.handleListWorkers)
	mux.HandleFunc("POST /v1/cluster/workers", s.handleRegisterWorker)
	mux.HandleFunc("GET /v1/circuits", s.handleListCircuits)
	mux.HandleFunc("POST /v1/circuits", s.handleUpload)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/wait", s.handleWaitJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/breakdown", s.handleJobBreakdown)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// handleReady is the readiness probe: 200 once jobs can run, 503 with
// the blocking error otherwise. Distinct from /healthz so a cluster
// coordinator waiting for its first worker reads as alive-but-not-ready
// instead of crash-looping.
func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	if err := s.Ready(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "not-ready",
			"error":  err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleListWorkers reports the cluster dispatcher's worker table; in
// local mode there is no worker set and the endpoint says so.
func (s *Service) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.dispatch.(WorkerRegistrar)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dispatcher %q has no worker registry", s.dispatch.Name()))
		return
	}
	writeJSON(w, http.StatusOK, map[string][]WorkerStatus{"workers": reg.Workers()})
}

// handleRegisterWorker lets a dipe-worker (or an operator) register a
// worker URL with the cluster dispatcher at runtime; re-registering an
// existing URL refreshes it, so workers can POST on every startup.
func (s *Service) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.dispatch.(WorkerRegistrar)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dispatcher %q has no worker registry", s.dispatch.Name()))
		return
	}
	var req RegisterWorkerRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := reg.AddWorker(req.URL); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string][]WorkerStatus{"workers": reg.Workers()})
}

func (s *Service) handleListCircuits(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"circuits": s.Registry.Names()})
}

func (s *Service) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	if !readJSON(w, r, &req) {
		return
	}
	stats, err := s.Registry.Upload(req.Name, req.Format, req.Text)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, UploadResponse{
		Name:    req.Name,
		Stats:   stats.String(),
		Inputs:  stats.Inputs,
		Gates:   stats.Gates,
		Latches: stats.Latches,
	})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !readJSON(w, r, &req) {
		return
	}
	id, err := s.Jobs.Submit(req)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	view, _ := s.Jobs.Get(id)
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Service) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]JobView{"jobs": s.Jobs.List()})
}

func (s *Service) handleGetJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleWaitJob(w http.ResponseWriter, r *http.Request) {
	timeout := 30 * time.Second
	if q := r.URL.Query().Get("timeout"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q", q))
			return
		}
		timeout = d
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	view, err := s.Jobs.Wait(ctx, r.PathValue("id"))
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// Not done yet: report current state instead of an error so
		// clients can keep polling.
		view, ok := s.Jobs.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusAccepted, view)
	case err != nil:
		writeError(w, http.StatusNotFound, err)
	default:
		writeJSON(w, http.StatusOK, view)
	}
}

// handleJobTrace reports the job's recorded lifecycle spans in order:
// submit, run, select-interval, plan-resolve, shard, lease/steal,
// merge-round, stop — with millisecond offsets from submission.
func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	tr, ok := s.Jobs.Trace(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// handleJobBreakdown serves the full per-node power attribution of a
// finished breakdown-enabled job; the job's result view carries only
// the top rows inline.
func (s *Service) handleJobBreakdown(w http.ResponseWriter, r *http.Request) {
	bd, ok := s.Jobs.Breakdown(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if bd.Report == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job %q has no breakdown (submit with options.breakdown=true and wait for completion)", bd.ID))
		return
	}
	writeJSON(w, http.StatusOK, bd)
}

func (s *Service) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	// Validate everything first so a batch is all-or-nothing at the
	// request level; a full queue mid-batch still cancels the remainder.
	for i, jr := range req.Jobs {
		if err := jr.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: %w", i, err))
			return
		}
	}
	ids := make([]string, 0, len(req.Jobs))
	for i, jr := range req.Jobs {
		id, err := s.Jobs.Submit(jr)
		if err != nil {
			for _, prev := range ids {
				s.Jobs.Cancel(prev)
			}
			writeError(w, submitStatus(err), fmt.Errorf("job %d: %w", i, err))
			return
		}
		ids = append(ids, id)
	}
	writeJSON(w, http.StatusAccepted, BatchResponse{IDs: ids})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Registry:   s.Registry.Stats(),
		Pool:       s.Jobs.Stats(),
		Cache:      s.Jobs.CacheStats(),
		Store:      s.Jobs.StoreStats(),
		Dispatcher: s.dispatch.Name(),
	}
	if reg, ok := s.dispatch.(WorkerRegistrar); ok {
		resp.Workers = reg.Workers()
	}
	writeJSON(w, http.StatusOK, resp)
}

// submitStatus maps Submit errors to HTTP statuses: a full queue and a
// draining manager are server-side transients (503, retry elsewhere or
// later), everything else is a request fault (400).
func submitStatus(err error) int {
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// readJSON decodes the request body into v, writing a 400 and returning
// false on malformed input.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// maxBodyBytes bounds request bodies (netlist uploads dominate; the
// largest ISCAS89 .bench is well under 1 MiB).
const maxBodyBytes = 8 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
