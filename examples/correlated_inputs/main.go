// Correlated inputs: the paper claims DIPE handles correlated input
// streams "without any extra work" because it makes no assumption about
// input statistics — the randomness test simply selects a longer
// independence interval when the input process slows the FSM's mixing.
//
// This example estimates the same circuit under three input processes:
// i.i.d., temporally correlated (per-bit lag-1 Markov chains), and
// spatially correlated (bit groups sharing a driver), and shows how the
// selected interval and the power change while accuracy is maintained.
//
//	go run ./examples/correlated_inputs
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	circuit, err := dipe.Benchmark("s382")
	if err != nil {
		log.Fatal(err)
	}
	tb := dipe.NewTestbench(circuit)
	width := len(circuit.Inputs)
	fmt.Println(circuit.ComputeStats())
	fmt.Println()

	cases := []struct {
		name string
		src  func(seed int64) dipe.Source
	}{
		{"iid p=0.5", func(s int64) dipe.Source {
			return dipe.NewIIDSource(width, 0.5, s)
		}},
		{"lag-1 rho=0.5", func(s int64) dipe.Source {
			return dipe.NewLagCorrelatedSource(width, 0.5, 0.5, s)
		}},
		{"lag-1 rho=0.9", func(s int64) dipe.Source {
			return dipe.NewLagCorrelatedSource(width, 0.5, 0.9, s)
		}},
		{"spatial groups=3", func(s int64) dipe.Source {
			return dipe.NewSpatialSource(width, 3, 0.5, 0.1, s)
		}},
	}

	fmt.Printf("%-18s %12s %6s %8s %10s %10s\n", "input process", "power", "II", "samples", "cycles", "dev vs ref")
	for i, c := range cases {
		// Estimate with DIPE.
		res, err := dipe.Estimate(tb.NewSession(c.src(int64(10+i))), dipe.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		// Independent long reference under the same input process. Note
		// the true average power differs per process: input statistics
		// change both switching activity and state occupancy.
		ref := dipe.RunReference(tb.NewSession(c.src(int64(100+i))), 256, 120_000)
		dev := 100 * (res.Power - ref.Power) / ref.Power
		fmt.Printf("%-18s %12s %6d %8d %10d %+9.2f%%\n",
			c.name, dipe.FormatWatts(res.Power), res.Interval, res.SampleSize, res.TotalCycles(), dev)
	}
	fmt.Println("\nNote how stronger input correlation raises the selected independence")
	fmt.Println("interval (slower mixing) while the estimates stay inside the 5% spec.")
}
