package bench89

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func TestS27Parses(t *testing.T) {
	c := S27()
	st := c.ComputeStats()
	if st.Inputs != 4 || st.Outputs != 1 || st.Latches != 3 || st.Gates != 10 {
		t.Fatalf("s27 stats = %+v, want 4/1/3/10", st)
	}
	if c.Lookup("G17") == netlist.InvalidNode {
		t.Fatalf("s27 missing output node G17")
	}
}

func TestSignaturesExact(t *testing.T) {
	for _, name := range Names() {
		sig, _ := Lookup(name)
		c, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		st := c.ComputeStats()
		if st.Inputs != sig.Inputs || st.Outputs != sig.Outputs ||
			st.Latches != sig.Latches || st.Gates != sig.Gates {
			t.Errorf("%s: generated %d/%d/%d/%d, want %d/%d/%d/%d",
				name, st.Inputs, st.Outputs, st.Latches, st.Gates,
				sig.Inputs, sig.Outputs, sig.Latches, sig.Gates)
		}
		if !c.Frozen() {
			t.Errorf("%s: circuit not frozen", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGet("s298")
	b := MustGet("s298")
	sa, sb := netlist.BenchString(a), netlist.BenchString(b)
	if sa != sb {
		t.Fatalf("s298 generation is not deterministic")
	}
}

func TestGenerateDistinctAcrossNames(t *testing.T) {
	a := netlist.BenchString(MustGet("s344"))
	b := netlist.BenchString(MustGet("s349"))
	if a == b {
		t.Fatalf("s344 and s349 generated identical netlists")
	}
}

func TestGenerateRoundTripsThroughBenchFormat(t *testing.T) {
	orig := MustGet("s386")
	text := netlist.BenchString(orig)
	re, err := netlist.ParseBenchString("s386", text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if netlist.BenchString(re) != text {
		t.Fatalf("bench round trip not stable")
	}
}

func TestLatchesAllDriven(t *testing.T) {
	for _, name := range []string{"s27", "s208", "s298", "s1494", "s5378"} {
		c := MustGet(name)
		for _, l := range c.Latches {
			nd := c.Nodes[l]
			if len(nd.Fanin) != 1 {
				t.Errorf("%s: latch %s has %d fanin", name, nd.Name, len(nd.Fanin))
			}
			if nd.Fanin[0] == l {
				t.Errorf("%s: latch %s drives itself directly", name, nd.Name)
			}
		}
	}
}

func TestUnknownCircuit(t *testing.T) {
	if _, err := Get("s9999"); err == nil {
		t.Fatalf("Get(s9999) succeeded, want error")
	}
}

func TestSmallNames(t *testing.T) {
	small := SmallNames(700)
	for _, n := range small {
		sig, ok := Lookup(n)
		if !ok {
			t.Fatalf("SmallNames returned unknown circuit %q", n)
		}
		if sig.Gates >= 700 {
			t.Errorf("SmallNames(700) returned %s with %d gates", n, sig.Gates)
		}
	}
	if len(small) == 0 {
		t.Fatalf("SmallNames(700) empty")
	}
}

func TestGenerateRejectsBadSignatures(t *testing.T) {
	bad := []Signature{
		{"x", 2, 1, 4, 100}, // too few inputs
		{"x", 4, 0, 4, 100}, // no outputs
		{"x", 4, 1, 0, 100}, // no latches
		{"x", 4, 1, 40, 20}, // gate budget below minimum
	}
	for _, sig := range bad {
		if _, err := Generate(sig); err == nil {
			t.Errorf("Generate(%+v) succeeded, want error", sig)
		}
	}
}

func TestGeneratedHasCombinationalVariety(t *testing.T) {
	c := MustGet("s1494")
	kinds := map[logic.Kind]int{}
	for i := range c.Nodes {
		if c.Nodes[i].Kind.IsCombinational() {
			kinds[c.Nodes[i].Kind]++
		}
	}
	for _, k := range []logic.Kind{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Not} {
		if kinds[k] == 0 {
			t.Errorf("s1494 has no %s gates", k)
		}
	}
}

// TestExtendedSignaturesExact is TestSignaturesExact for the extended
// large-circuit set: every generated circuit must hit its published
// PI/PO/DFF/gate counts exactly, and the extended names must be
// reachable through AllNames and Lookup but stay out of Names (the
// paper's default campaign set).
func TestExtendedSignaturesExact(t *testing.T) {
	if len(ExtendedNames()) == 0 {
		t.Fatal("no extended circuits")
	}
	base := make(map[string]bool)
	for _, n := range Names() {
		base[n] = true
	}
	all := make(map[string]bool)
	for _, n := range AllNames() {
		all[n] = true
	}
	for _, name := range ExtendedNames() {
		if base[name] {
			t.Errorf("%s: extended circuit leaked into Names()", name)
		}
		if !all[name] {
			t.Errorf("%s: extended circuit missing from AllNames()", name)
		}
		sig, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%s) failed", name)
		}
		c, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		st := c.ComputeStats()
		if st.Inputs != sig.Inputs || st.Outputs != sig.Outputs ||
			st.Latches != sig.Latches || st.Gates != sig.Gates {
			t.Errorf("%s: generated %d/%d/%d/%d, want %d/%d/%d/%d",
				name, st.Inputs, st.Outputs, st.Latches, st.Gates,
				sig.Inputs, sig.Outputs, sig.Latches, sig.Gates)
		}
	}
}

// TestScaledSignatureGenerates checks the synthetic large-circuit
// family behind benchgen's random:seed:gates spec: deterministic
// generation at the requested gate count, a latch-heavy shape (the
// Step program's register file must genuinely scale with the circuit),
// and distinct netlists across seeds.
func TestScaledSignatureGenerates(t *testing.T) {
	sig := ScaledSignature(3, 20000)
	if sig.Gates != 20000 {
		t.Fatalf("gates %d, want 20000", sig.Gates)
	}
	if sig.Latches < sig.Gates/8 {
		t.Fatalf("latches %d too few for gates %d: scaled circuits must be latch-heavy", sig.Latches, sig.Gates)
	}
	c, err := Generate(sig)
	if err != nil {
		t.Fatal(err)
	}
	st := c.ComputeStats()
	if st.Gates != sig.Gates || st.Latches != sig.Latches || st.Inputs != sig.Inputs || st.Outputs != sig.Outputs {
		t.Fatalf("generated %d/%d/%d/%d, want %d/%d/%d/%d",
			st.Inputs, st.Outputs, st.Latches, st.Gates,
			sig.Inputs, sig.Outputs, sig.Latches, sig.Gates)
	}
	c2, err := Generate(ScaledSignature(3, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if netlist.BenchString(c) != netlist.BenchString(c2) {
		t.Fatal("scaled generation is not deterministic")
	}
	other, err := Generate(ScaledSignature(4, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if netlist.BenchString(other) == netlist.BenchString(c) {
		t.Fatal("different seeds generated identical netlists")
	}
	if _, err := Generate(ScaledSignature(1, 10)); err != nil {
		t.Fatalf("tiny gate count not clamped: %v", err)
	}
}
