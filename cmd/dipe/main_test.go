package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runDefaults wraps run() with the flag defaults so each test overrides
// only what it cares about.
type runArgs struct {
	circuit, bench, blif string
	alpha                float64
	seqLen               int
	relErr, confidence   float64
	criterion, test      string
	powerMode            string
	variance             string
	backend              string
	inputProb, inputRho  float64
	seed                 int64
	fixed, reps, workers int
	sessWorkers          int
	cacheBudget          int
	breakdown            bool
	brkTop               int
	ztrace, ztraceLen    int
	refCycles            int
	verbose              bool
	topN, maxBudget      int
	vcdPath              string
	vcdCycles            int
	progJSON             bool
}

func defaults() runArgs {
	return runArgs{
		alpha: 0.20, seqLen: 320, relErr: 0.05, confidence: 0.99,
		criterion: "order-statistics", test: "runs", powerMode: "general-delay", variance: "none",
		inputProb: 0.5, seed: 1, fixed: -1, brkTop: 20, ztrace: -1, ztraceLen: 1000,
		vcdCycles: 8,
	}
}

func (a runArgs) run() error {
	return run(a.circuit, a.bench, a.blif, a.alpha, a.seqLen, a.relErr, a.confidence,
		a.criterion, a.test, a.powerMode, a.variance, a.backend, a.inputProb, a.inputRho, a.seed, a.fixed, a.reps, a.workers,
		a.sessWorkers, a.cacheBudget, a.breakdown, a.brkTop, a.ztrace, a.ztraceLen, a.refCycles, a.verbose, a.topN, a.maxBudget, a.vcdPath, a.vcdCycles, a.progJSON)
}

func TestRunEstimate(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.verbose = true
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunBreakdown(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.breakdown = true // reps left 0: -breakdown implies 64 replications
	a.brkTop = 5
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllCriteriaAndTests(t *testing.T) {
	for _, crit := range []string{"normal", "ks", "order-statistics", "os"} {
		a := defaults()
		a.circuit = "s27"
		a.criterion = crit
		a.relErr = 0.10 // keep ks fast
		if err := a.run(); err != nil {
			t.Errorf("criterion %s: %v", crit, err)
		}
	}
	for _, test := range []string{"runs", "updown", "vonneumann"} {
		a := defaults()
		a.circuit = "s27"
		a.test = test
		a.relErr = 0.10
		if err := a.run(); err != nil {
			t.Errorf("test %s: %v", test, err)
		}
	}
}

func TestRunReferenceMode(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.refCycles = 2000
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunZTraceMode(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.ztrace = 3
	a.ztraceLen = 200
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunFixedInterval(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.fixed = 2
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelReplications(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.reps = 16
	a.workers = 2
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
	// Fixed interval + replications takes the parallel fixed path.
	a.fixed = 2
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTopConsumers(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.topN = 3
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunMaxPower(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.maxBudget = 300
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunVCD(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.vcdPath = filepath.Join(t.TempDir(), "wave.vcd")
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(a.vcdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "$enddefinitions") {
		t.Fatal("VCD file missing declarations")
	}
}

func TestRunBenchAndBLIFFiles(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "t.bench")
	if err := os.WriteFile(benchPath, []byte("INPUT(A)\nOUTPUT(Y)\nQ = DFF(Y)\nY = XOR(A, Q)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := defaults()
	a.bench = benchPath
	a.relErr = 0.10
	if err := a.run(); err != nil {
		t.Fatal(err)
	}

	blifPath := filepath.Join(dir, "t.blif")
	blif := ".model t\n.inputs a\n.outputs q\n.latch d q 0\n.names a q d\n10 1\n01 1\n.end\n"
	if err := os.WriteFile(blifPath, []byte(blif), 0o644); err != nil {
		t.Fatal(err)
	}
	b := defaults()
	b.blif = blifPath
	b.relErr = 0.10
	if err := b.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunCorrelatedInputs(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.inputRho = 0.5
	a.relErr = 0.10
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []func(*runArgs){
		func(a *runArgs) {}, // no circuit at all
		func(a *runArgs) { a.circuit = "s27"; a.bench = "x.bench" },
		func(a *runArgs) { a.circuit = "sNOPE" },
		func(a *runArgs) { a.circuit = "s27"; a.criterion = "bogus" },
		func(a *runArgs) { a.circuit = "s27"; a.test = "bogus" },
		func(a *runArgs) { a.bench = "/nonexistent.bench" },
		func(a *runArgs) { a.blif = "/nonexistent.blif" },
	}
	for i, mutate := range cases {
		a := defaults()
		mutate(&a)
		if err := a.run(); err == nil {
			t.Errorf("case %d: run succeeded, want error", i)
		}
	}
}

func TestRunCompiledBackend(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.backend = "compiled"
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
	// Replications + zero-delay take the compiled word-parallel path.
	a.reps = 8
	a.powerMode = "zero-delay"
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
	a.backend = "bogus"
	if err := a.run(); err == nil {
		t.Fatal("bogus backend accepted")
	}
}

func TestRunSessionTuning(t *testing.T) {
	// The blocking budget and level-parallel worker knobs are
	// result-invariant; the run just has to succeed end to end.
	a := defaults()
	a.circuit = "s27"
	a.powerMode = "zero-delay"
	a.reps = 8
	a.cacheBudget = 4 << 10
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
	a.cacheBudget = 0
	a.sessWorkers = 2
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunZeroDelayMode(t *testing.T) {
	a := defaults()
	a.circuit = "s27"
	a.powerMode = "zero" // alias of "zero-delay"
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
	a.reps = 8
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
	a.powerMode = "bogus"
	if err := a.run(); err == nil {
		t.Fatal("bogus power mode accepted")
	}
}
