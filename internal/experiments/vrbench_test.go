package experiments

import (
	"strings"
	"testing"

	"repro/internal/vr"
)

// TestVarianceReductionSmoke runs the VR benchmark on the smallest
// circuit with a loose target: every row must be converged, covered
// and carry coherent accounting, and the control-variate row must not
// cost more sampled cycles than plain (the regression the vr-bench CI
// gate enforces at full size).
func TestVarianceReductionSmoke(t *testing.T) {
	cfg := DefaultVRBenchConfig()
	cfg.Circuits = []string{"s27"}
	cfg.RefCycles = func(int) int { return 20_000 }
	rows, err := VarianceReduction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byMode := map[string]VRBenchRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if !r.Converged {
			t.Errorf("%s/%s did not converge", r.Name, r.Mode)
		}
		if !r.Covered {
			t.Errorf("%s/%s CI does not cover the reference", r.Name, r.Mode)
		}
		if r.SampledCycles == 0 || r.Power <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
	if byMode["none"].Reduction != 1.0 {
		t.Errorf("plain reduction %v, want 1.0", byMode["none"].Reduction)
	}
	cv := byMode[vr.ModeControlVariate.String()]
	if cv.Reduction < 1.0 {
		t.Errorf("control-variate reduction %.2fx below break-even", cv.Reduction)
	}
	if cv.CVBeta == 0 {
		t.Error("control-variate row carries no coefficient")
	}

	out := RenderVRBench(rows)
	if !strings.Contains(out, "control-variate") {
		t.Errorf("render missing mode:\n%s", out)
	}
	js := VRBenchJSON(rows, cfg)
	if !strings.Contains(js, "reduction_vs_plain") {
		t.Errorf("json missing reduction field:\n%s", js)
	}
}
