package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

// newTestCoordinator builds a coordinator over the given worker URLs
// with a registry resolver, on a slow heartbeat so tests control
// liveness transitions themselves.
func newTestCoordinator(t *testing.T, reg *service.Registry, urls ...string) *Coordinator {
	t.Helper()
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:   urls,
		Heartbeat: time.Hour, // probes happen at AddWorker time; no flapping mid-test
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetRegistry(reg)
	t.Cleanup(coord.Close)
	return coord
}

func sameResult(t *testing.T, got, want core.Result, label string) {
	t.Helper()
	if got.Power != want.Power {
		t.Errorf("%s: power %v, want %v (bit-identical)", label, got.Power, want.Power)
	}
	if got.HalfWidth != want.HalfWidth {
		t.Errorf("%s: half-width %v, want %v", label, got.HalfWidth, want.HalfWidth)
	}
	if got.SampleSize != want.SampleSize {
		t.Errorf("%s: sample size %d, want %d", label, got.SampleSize, want.SampleSize)
	}
	if got.Interval != want.Interval {
		t.Errorf("%s: interval %d, want %d", label, got.Interval, want.Interval)
	}
	if got.HiddenCycles != want.HiddenCycles {
		t.Errorf("%s: hidden cycles %d, want %d", label, got.HiddenCycles, want.HiddenCycles)
	}
	if got.SampledCycles != want.SampledCycles {
		t.Errorf("%s: sampled cycles %d, want %d", label, got.SampledCycles, want.SampledCycles)
	}
	if got.Converged != want.Converged {
		t.Errorf("%s: converged %v, want %v", label, got.Converged, want.Converged)
	}
	if got.Engine != want.Engine || got.DelayModel != want.DelayModel {
		t.Errorf("%s: engine %s/%s, want %s/%s", label, got.Engine, got.DelayModel, want.Engine, want.DelayModel)
	}
	if got.Criterion != want.Criterion {
		t.Errorf("%s: criterion %q, want %q", label, got.Criterion, want.Criterion)
	}
	if got.Variance != want.Variance || got.CVBeta != want.CVBeta {
		t.Errorf("%s: variance %q/beta %v, want %q/%v", label, got.Variance, got.CVBeta, want.Variance, want.CVBeta)
	}
}

// reference runs the single-process estimator for a job request.
func reference(t *testing.T, reg *service.Registry, req service.JobRequest) core.Result {
	t.Helper()
	tb, err := reg.Testbench(req.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := req.Source.Factory(len(tb.Circuit.Inputs))
	if err != nil {
		t.Fatal(err)
	}
	opts := req.Options.Options()
	var res core.Result
	if req.Interval != nil {
		res, err = core.EstimateParallelWithInterval(tb, factory, req.Seed, opts, *req.Interval)
	} else {
		res, err = core.EstimateParallel(tb, factory, req.Seed, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterBitIdenticalOneWorker: the headline determinism guarantee
// — a cluster run with one worker reproduces core.EstimateParallel bit
// for bit: mean, half-width, sample size and cycle counts.
func TestClusterBitIdenticalOneWorker(t *testing.T) {
	wk := NewWorker(WorkerConfig{})
	srv := httptest.NewServer(wk.Handler())
	defer srv.Close()

	reg := service.NewRegistry(0)
	coord := newTestCoordinator(t, reg, srv.URL)

	req := service.JobRequest{
		Circuit: "s298",
		Seed:    42,
		Options: service.OptionsSpec{Replications: 16, Workers: 2},
	}
	want := reference(t, reg, req)
	tb, err := reg.Testbench(req.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if wk.Circuits() != 0 {
		t.Fatalf("worker starts with %d circuits, want 0", wk.Circuits())
	}
	got, err := coord.Estimate(context.Background(), tb, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want, "one worker")
	if !got.Converged {
		t.Fatal("cluster run did not converge")
	}
	// The worker started without the netlist: the 404-then-install
	// propagation path must have run.
	if wk.Circuits() != 1 {
		t.Fatalf("worker holds %d circuits after the job, want 1 (propagated)", wk.Circuits())
	}
}

// TestClusterBitIdenticalTwoWorkersAndModes: two workers (so the
// replication space really is split across processes) under both power
// modes and the fixed-interval path, with progress delivery checked.
func TestClusterBitIdenticalTwoWorkersAndModes(t *testing.T) {
	w1, w2 := NewWorker(WorkerConfig{}), NewWorker(WorkerConfig{})
	s1 := httptest.NewServer(w1.Handler())
	defer s1.Close()
	s2 := httptest.NewServer(w2.Handler())
	defer s2.Close()

	reg := service.NewRegistry(0)
	coord := newTestCoordinator(t, reg, s1.URL, s2.URL)

	fixed := 3
	cases := []struct {
		name string
		req  service.JobRequest
	}{
		{"general-delay", service.JobRequest{
			Circuit: "s298", Seed: 42,
			Options: service.OptionsSpec{Replications: 16, Workers: 2},
		}},
		{"zero-delay", service.JobRequest{
			Circuit: "s298", Seed: 1997,
			Options: service.OptionsSpec{Replications: 32, Workers: 2, PowerMode: "zero-delay"},
		}},
		{"fixed-interval", service.JobRequest{
			Circuit: "s298", Seed: 7,
			Options:  service.OptionsSpec{Replications: 16, Workers: 1},
			Interval: &fixed,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := reference(t, reg, tc.req)
			tb, err := reg.Testbench(tc.req.Circuit)
			if err != nil {
				t.Fatal(err)
			}
			var snapshots atomic.Int64
			got, err := coord.Estimate(context.Background(), tb, tc.req, func(core.Progress) {
				snapshots.Add(1)
			})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, got, want, tc.name)
			if snapshots.Load() == 0 {
				t.Error("no progress snapshots delivered")
			}
		})
	}
	if w1.Circuits() == 0 || w2.Circuits() == 0 {
		t.Errorf("circuit propagation incomplete: worker circuits %d and %d", w1.Circuits(), w2.Circuits())
	}
}

// flakyRun wraps a worker handler so its first successful /v1/run
// stream dies after a few block lines — simulating a worker crash
// mid-job. Health endpoints keep answering, like a process that is
// wedged rather than gone, and the circuit-miss 404 passes through
// untouched so the crash hits the actual sample stream.
type flakyRun struct {
	inner    http.Handler
	aborted  atomic.Bool
	maxLines int
}

type truncatingWriter struct {
	http.ResponseWriter
	parent   *flakyRun
	status   int
	lines    int
	maxLines int
}

func (tw *truncatingWriter) WriteHeader(code int) {
	tw.status = code
	tw.ResponseWriter.WriteHeader(code)
}

func (tw *truncatingWriter) Write(p []byte) (int, error) {
	if tw.status == 0 || tw.status == http.StatusOK {
		tw.lines += strings.Count(string(p), "\n")
		if tw.lines > tw.maxLines {
			tw.parent.aborted.Store(true)
			panic(http.ErrAbortHandler) // kills the connection mid-stream
		}
	}
	return tw.ResponseWriter.Write(p)
}

func (tw *truncatingWriter) Flush() {
	if f, ok := tw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (f *flakyRun) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/run" && !f.aborted.Load() {
		f.inner.ServeHTTP(&truncatingWriter{ResponseWriter: w, parent: f, maxLines: f.maxLines}, r)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestClusterWorkerDeathReassignment: a worker dying mid-job loses
// nothing — its range is reassigned, the replacement fast-forwards past
// the merged prefix, and the final result is still bit-identical to the
// single-process run.
func TestClusterWorkerDeathReassignment(t *testing.T) {
	healthy := NewWorker(WorkerConfig{})
	sHealthy := httptest.NewServer(healthy.Handler())
	defer sHealthy.Close()
	flaky := &flakyRun{inner: NewWorker(WorkerConfig{}).Handler(), maxLines: 4}
	sFlaky := httptest.NewServer(flaky)
	defer sFlaky.Close()

	reg := service.NewRegistry(0)
	// Flaky worker registered first so it owns range 0 of the partition.
	coord := newTestCoordinator(t, reg, sFlaky.URL, sHealthy.URL)

	// A tight spec keeps the run long enough (many blocks) that the
	// crash happens mid-stream, not after convergence.
	req := service.JobRequest{
		Circuit: "s298",
		Seed:    11,
		Options: service.OptionsSpec{RelErr: 0.01, Confidence: 0.99, Replications: 16, Workers: 1},
	}
	want := reference(t, reg, req)
	tb, err := reg.Testbench(req.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Estimate(context.Background(), tb, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !flaky.aborted.Load() {
		t.Fatal("flaky worker never died mid-stream — test exercised nothing")
	}
	sameResult(t, got, want, "after reassignment")

	// The coordinator must have recorded the death.
	var sawFailure bool
	for _, w := range coord.Workers() {
		if w.URL == sFlaky.URL && w.Failures > 0 {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Error("flaky worker death not recorded in worker status")
	}
}

// TestCoordinatorReady: readiness tracks the live-worker set.
func TestCoordinatorReady(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Heartbeat: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Ready(); err == nil {
		t.Fatal("ready with no workers")
	}
	wk := httptest.NewServer(NewWorker(WorkerConfig{}).Handler())
	defer wk.Close()
	if err := coord.AddWorker(wk.URL); err != nil {
		t.Fatal(err)
	}
	if err := coord.Ready(); err != nil {
		t.Fatalf("not ready with a live worker: %v", err)
	}
	if err := coord.AddWorker("ftp://nope"); err == nil {
		t.Fatal("accepted a non-http worker URL")
	}
}

// TestClusterNoWorkersFailsJob: with no live workers, Estimate fails
// cleanly instead of hanging.
func TestClusterNoWorkersFailsJob(t *testing.T) {
	reg := service.NewRegistry(0)
	coord := newTestCoordinator(t, reg)
	tb, err := reg.Testbench("s27")
	if err != nil {
		t.Fatal(err)
	}
	fixed := 2
	req := service.JobRequest{Circuit: "s27", Seed: 1, Interval: &fixed,
		Options: service.OptionsSpec{Replications: 8}}
	_, err = coord.Estimate(context.Background(), tb, req, nil)
	if err == nil || !strings.Contains(err.Error(), "no live workers") {
		t.Fatalf("err = %v, want no-live-workers failure", err)
	}
}

// TestClusterCancellation: cancelling the job context aborts the
// distributed run promptly with ctx.Err, like the local estimator.
func TestClusterCancellation(t *testing.T) {
	wk := httptest.NewServer(NewWorker(WorkerConfig{}).Handler())
	defer wk.Close()
	reg := service.NewRegistry(0)
	coord := newTestCoordinator(t, reg, wk.URL)
	tb, err := reg.Testbench("s298")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fixed := 4
	req := service.JobRequest{
		Circuit: "s298", Seed: 3, Interval: &fixed,
		// An unreachable accuracy spec: the run can only end by cancel.
		Options: service.OptionsSpec{RelErr: 0.0005, Confidence: 0.9999, Replications: 16},
	}
	progressed := make(chan struct{})
	var once atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := coord.Estimate(ctx, tb, req, func(core.Progress) {
			if once.CompareAndSwap(false, true) {
				close(progressed)
			}
		})
		done <- err
	}()
	select {
	case <-progressed:
	case <-time.After(30 * time.Second):
		t.Fatal("no progress within 30s")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not end the run within 10s")
	}
}
