package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stopping"
	"repro/internal/vr"
)

// Result is the outcome of one estimation run (one row of Table 1).
type Result struct {
	// Power is the average power estimate in watts.
	Power float64
	// Interval is the independence interval used (the paper's "I.I.").
	Interval int
	// IntervalCapped marks runs where selection hit MaxInterval.
	IntervalCapped bool
	// Trials documents the interval-selection iterations.
	Trials []Trial
	// SampleSize is the number of power samples consumed by the stopping
	// criterion (the paper's "Sample Size").
	SampleSize int
	// HalfWidth is the criterion's final confidence half-width in watts.
	HalfWidth float64
	// HiddenCycles and SampledCycles are the simulation cost split by
	// phase; their sum is the total simulated clock cycles.
	HiddenCycles  uint64
	SampledCycles uint64
	// Elapsed is the wall-clock time of the run.
	Elapsed time.Duration
	// Criterion names the stopping criterion used.
	Criterion string
	// Engine names the power engine that observed the sampled cycles
	// (sim.EngineEventDriven, sim.EngineZeroDelay,
	// sim.EnginePackedZeroDelay for the bit-parallel sampled phase, or
	// sim.EngineCompiledZeroDelay when the compiled backend observed it).
	Engine string
	// Backend names the lane-parallel simulation backend the parallel
	// estimators ran on ("packed" or "compiled"; empty for the scalar
	// estimators, which have no lane backend).
	Backend string
	// DelayModel names the timing model the engine realized ("zero" for
	// zero-delay observation).
	DelayModel string
	// Variance names the variance-reduction transform the sampling phase
	// ran under ("" for the plain estimator; see internal/vr). Under
	// "antithetic", SampleSize counts the pair means the criterion
	// consumed, each of which costs two sampled cycles.
	Variance string
	// CVBeta is the resolved control-variate coefficient (0 outside
	// control-variate runs).
	CVBeta float64
	// Breakdown is the per-node power attribution report (nil unless
	// Options.Breakdown). Its dynamic column totals the scalar estimate
	// in the plain estimator mode; see power.BreakdownReport.
	Breakdown *power.BreakdownReport
	// Converged is false only if MaxSamples was exhausted first.
	Converged bool
}

// RelHalfWidth returns HalfWidth relative to the estimate.
func (r Result) RelHalfWidth() float64 {
	if r.Power == 0 {
		return 0
	}
	return r.HalfWidth / r.Power
}

// TotalCycles returns the total number of simulated clock cycles.
func (r Result) TotalCycles() uint64 { return r.HiddenCycles + r.SampledCycles }

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("P=%.4g W, II=%d, n=%d, half-width=%.2f%%, cycles=%d, %s",
		r.Power, r.Interval, r.SampleSize, 100*r.RelHalfWidth(), r.TotalCycles(), r.Elapsed)
}

// Estimate runs the full DIPE flow of Fig. 1 on a session: warm-up,
// independence-interval selection, then two-phase random sampling until
// the stopping criterion reports convergence.
func Estimate(s *sim.Session, opts Options) (Result, error) {
	return EstimateCtx(context.Background(), s, opts)
}

// EstimateCtx is Estimate with cancellation: both interval selection
// (via SelectIntervalCtx) and the sampling loop poll ctx. Cancellation
// during selection returns ctx.Err() with an empty result; cancellation
// during sampling returns the partial (unconverged) result together
// with ctx.Err().
func EstimateCtx(ctx context.Context, s *sim.Session, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := rejectVariance(opts); err != nil {
		return Result{}, err
	}
	start := time.Now()
	s.ResetCounters()
	s.StepHiddenN(opts.WarmupCycles)

	sel, err := SelectIntervalCtx(ctx, s, opts)
	if err != nil {
		return Result{}, err
	}
	res, err := estimateTail(ctx, s, opts, sel.Interval, sel.Sequence)
	res.Trials = sel.Trials
	res.IntervalCapped = sel.Capped
	res.Elapsed = time.Since(start)
	return res, err
}

// EstimateWithInterval skips interval selection and samples at a fixed
// interval. It implements the fixed-warm-up baseline (the paper's ref
// [9], Chou et al.) that DIPE's dynamic selection is compared against in
// the warm-up ablation; interval 0 gives the naive consecutive-cycle
// estimator that ignores temporal correlation.
func EstimateWithInterval(s *sim.Session, opts Options, interval int) (Result, error) {
	return EstimateWithIntervalCtx(context.Background(), s, opts, interval)
}

// EstimateWithIntervalCtx is EstimateWithInterval with cancellation (see
// EstimateCtx).
func EstimateWithIntervalCtx(ctx context.Context, s *sim.Session, opts Options, interval int) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := rejectVariance(opts); err != nil {
		return Result{}, err
	}
	if interval < 0 {
		return Result{}, fmt.Errorf("core: negative interval %d", interval)
	}
	start := time.Now()
	s.ResetCounters()
	s.StepHiddenN(opts.WarmupCycles)
	res, err := estimateTail(ctx, s, opts, interval, nil)
	res.Elapsed = time.Since(start)
	return res, err
}

// estimateTail runs the sampling/stopping phase at a fixed interval,
// optionally seeded with an already-collected random sequence. On
// cancellation it returns the partial result together with ctx.Err().
// The engine is whatever the session was built with; it is recorded in
// the result.
func estimateTail(ctx context.Context, s *sim.Session, opts Options, interval int, seed []float64) (Result, error) {
	crit := opts.NewCriterion(opts.Spec)
	if opts.ReuseTestSamples {
		for _, p := range seed {
			crit.Add(p)
		}
	}
	result := func(converged bool) Result {
		// Every exit fires a final Progress snapshot so long-running
		// callers (the dipe-server job manager) never show a stale last
		// block after convergence, budget exhaustion or cancellation.
		if opts.Progress != nil {
			opts.Progress(Progress{
				Samples:   crit.N(),
				Power:     crit.Estimate(),
				HalfWidth: crit.HalfWidth(),
				Interval:  interval,
			})
		}
		return Result{
			Power:         crit.Estimate(),
			Interval:      interval,
			SampleSize:    crit.N(),
			HalfWidth:     crit.HalfWidth(),
			HiddenCycles:  s.HiddenCycles,
			SampledCycles: s.SampledCycles,
			Criterion:     crit.Name(),
			Engine:        s.Engine().Name(),
			DelayModel:    s.Engine().DelayModelName(),
			Converged:     converged,
		}
	}
	for !crit.Done() {
		if err := ctx.Err(); err != nil {
			return result(false), err
		}
		if crit.N()+opts.CheckEvery > opts.MaxSamples {
			return result(false), nil
		}
		for i := 0; i < opts.CheckEvery; i++ {
			s.StepHiddenN(interval)
			crit.Add(s.StepSampled(nil))
		}
		if opts.Progress != nil {
			opts.Progress(Progress{
				Samples:   crit.N(),
				Power:     crit.Estimate(),
				HalfWidth: crit.HalfWidth(),
				Interval:  interval,
			})
		}
	}
	return result(true), nil
}

// criterionName is a small helper for reports when only a factory is at
// hand.
func criterionName(f stopping.Factory, spec stopping.Spec) string {
	return f(spec).Name()
}

// rejectVariance guards the serial estimators: the variance-reduction
// transforms are defined over the replication space (paired lanes,
// covariates frozen before a pooled phase 2) and only the parallel
// estimators realize them.
func rejectVariance(opts Options) error {
	if opts.Variance.Mode.Canonical() != vr.ModeNone {
		return fmt.Errorf("core: variance reduction (%s) requires the parallel estimator (EstimateParallel)",
			opts.Variance.Mode)
	}
	if opts.Breakdown {
		return fmt.Errorf("core: per-node breakdown requires the parallel estimator (EstimateParallel) — " +
			"the session-based estimators have no power model in scope to attribute against")
	}
	return nil
}
