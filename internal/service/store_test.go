package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// stallDispatcher is the local dispatcher with a crash stand-in: the
// first progress report closes running, then the merge loop parks until
// the job context is cancelled. That freezes a job deterministically
// AFTER its checkpoint is journaled (the plan freezes before sampling,
// and progress only fires during sampling) and BEFORE it can finish, so
// a restart test never races the estimator.
type stallDispatcher struct {
	inner   ResumableDispatcher
	running chan struct{}
	once    sync.Once
}

func newStallDispatcher() *stallDispatcher {
	return &stallDispatcher{inner: localDispatcher{}, running: make(chan struct{})}
}

func (d *stallDispatcher) Name() string { return d.inner.Name() }

func (d *stallDispatcher) Ready() error { return d.inner.Ready() }

func (d *stallDispatcher) Estimate(ctx context.Context, tb *core.Testbench, req JobRequest, progress func(core.Progress)) (core.Result, error) {
	return d.inner.Estimate(ctx, tb, req, progress)
}

func (d *stallDispatcher) EstimateResumable(ctx context.Context, tb *core.Testbench, req JobRequest, ckpt *Checkpoint, save func(Checkpoint), progress func(core.Progress)) (core.Result, error) {
	wrapped := func(p core.Progress) {
		if progress != nil {
			progress(p)
		}
		d.once.Do(func() { close(d.running) })
		<-ctx.Done()
	}
	return d.inner.EstimateResumable(ctx, tb, req, ckpt, save, wrapped)
}

// sameResultView compares two result views bit for bit, ignoring the
// fields the determinism contract does not cover (wall-clock, cache
// provenance).
func sameResultView(t *testing.T, got, want *ResultView, label string) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: missing result (got %v, want %v)", label, got, want)
	}
	g, w := *got, *want
	g.ElapsedMS, w.ElapsedMS = 0, 0
	g.Cached, w.Cached = false, false
	g.Trace, w.Trace = nil, nil // lifecycle timings, not covered by determinism
	if g != w {
		t.Errorf("%s: result mismatch\n got %+v\nwant %+v", label, g, w)
	}
}

// TestServerRestartResumesInterruptedJob is the durability property
// test: a job interrupted mid-sampling by a drain (the SIGTERM/crash
// stand-in) is re-enqueued when a new manager opens the same state
// directory, keeps its job ID, resumes from the journaled checkpoint,
// and finishes with a Result bit-identical to an uninterrupted run.
func TestServerRestartResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(0)
	req := JobRequest{
		Circuit: "s298",
		Seed:    61,
		Options: OptionsSpec{
			RelErr: 0.02, Confidence: 0.95,
			Replications: 16, Workers: 1, PowerMode: "zero-delay",
		},
	}

	// Uninterrupted reference run, no store.
	ref := NewManager(reg, nil, 1, 0, nil)
	refID, err := ref.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	refView, err := ref.Wait(context.Background(), refID)
	ref.Close()
	if err != nil || refView.State != StateDone {
		t.Fatalf("reference run: state %v err %v (%s)", refView.State, err, refView.Error)
	}
	want := refView.Result

	// Interrupted run: the dispatcher parks the merge loop after the
	// checkpoint is on disk, then Close drains the manager. A drain
	// cancellation is deliberately not journaled as terminal, so the job
	// must replay as resumable.
	store1, err := OpenJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := newStallDispatcher()
	m1 := NewManager(reg, d, 1, 0, store1)
	id, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.running:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started sampling")
	}
	m1.Close()

	// Restart on the same state directory with the real dispatcher.
	store2, err := OpenJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(reg, nil, 1, 0, store2)
	defer m2.Close()
	if st := m2.StoreStats(); st == nil || st.Resumed < 1 {
		t.Fatalf("restart resumed nothing: %+v", st)
	}
	got, err := m2.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != id {
		t.Errorf("restart changed the job ID: %s -> %s", id, got.ID)
	}
	if got.State != StateDone {
		t.Fatalf("resumed job: state %v (%s)", got.State, got.Error)
	}
	sameResultView(t, got.Result, want, "resumed job")

	// The resumed result must prime the result cache: an identical
	// request after the restart is served without a fresh run.
	id2, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m2.Wait(context.Background(), id2)
	if err != nil || v2.State != StateDone {
		t.Fatalf("cached re-submit: state %v err %v (%s)", v2.State, err, v2.Error)
	}
	if v2.Result == nil || !v2.Result.Cached {
		t.Errorf("re-submit after restart was not served from the cache: %+v", v2.Result)
	}
	sameResultView(t, v2.Result, want, "cached after restart")
}

// TestResumedJobTraceSplicesPreRestartSpans: a job resumed from the
// journal keeps its pre-restart lifecycle — the spans journaled with
// the checkpoint are spliced ahead of the "restore" marker, and the
// whole list stays monotonic in time through "stop".
func TestResumedJobTraceSplicesPreRestartSpans(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(0)
	req := JobRequest{
		Circuit: "s298",
		Seed:    71,
		Options: OptionsSpec{
			RelErr: 0.02, Confidence: 0.95,
			Replications: 16, Workers: 1, PowerMode: "zero-delay",
		},
	}

	store1, err := OpenJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := newStallDispatcher()
	m1 := NewManager(reg, d, 1, 0, store1)
	id, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.running:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started sampling")
	}
	m1.Close()

	store2, err := OpenJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(reg, nil, 1, 0, store2)
	defer m2.Close()
	if v, err := m2.Wait(context.Background(), id); err != nil || v.State != StateDone {
		t.Fatalf("resumed job: state %v err %v", v.State, err)
	}

	tr, ok := m2.Trace(id)
	if !ok {
		t.Fatalf("no trace for resumed job %s", id)
	}
	idx := map[string]int{}
	for i, sp := range tr.Spans {
		if _, seen := idx[sp.Name]; !seen {
			idx[sp.Name] = i
		}
		if i > 0 && sp.T < tr.Spans[i-1].T {
			t.Errorf("span %d (%s) at %.3fms precedes span %d (%s) at %.3fms",
				i, sp.Name, sp.T, i-1, tr.Spans[i-1].Name, tr.Spans[i-1].T)
		}
	}
	// The pre-restart lifecycle (submit, run, plan freeze) must precede
	// the restore marker; the post-restart run and stop must follow it.
	restore, ok := idx["restore"]
	if !ok {
		t.Fatalf("no restore span in %v", names(tr.Spans))
	}
	for _, pre := range []string{"submit", "plan-resolve"} {
		if i, ok := idx[pre]; !ok || i >= restore {
			t.Errorf("span %q at %d not before restore at %d (spans %v)", pre, i, restore, names(tr.Spans))
		}
	}
	stop, ok := idx["stop"]
	if !ok || stop <= restore {
		t.Errorf("stop span at %d not after restore at %d (spans %v)", stop, restore, names(tr.Spans))
	}
	if tr.Spans[stop].Attrs[1] != string(StateDone) {
		t.Errorf("stop span state attr %v, want done", tr.Spans[stop].Attrs)
	}
}

func names(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestJournalTruncatedTailTolerated: a crash can cut the final journal
// append mid-line; everything before the torn line must still replay.
func TestJournalTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	journal := `{"kind":"submit","id":"job-000001","req":{"circuit":"s298","seed":1}}` + "\n" +
		`{"kind":"state","id":"job-0000` // torn mid-write
	if err := os.WriteFile(filepath.Join(dir, "jobs.jsonl"), []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := OpenJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	restored := store.Restored()
	if len(restored) != 1 {
		t.Fatalf("restored %d jobs, want 1", len(restored))
	}
	if restored[0].ID != "job-000001" || restored[0].State != StateQueued {
		t.Errorf("restored %+v; want job-000001 queued (torn terminal record dropped)", restored[0])
	}
}

// TestCheckpointRoundTrip: the persisted checkpoint reproduces the core
// resume point exactly, including the float64 seed sequence (JSON's
// shortest round-trip rendering is lossless).
func TestCheckpointRoundTrip(t *testing.T) {
	rp := core.ResumePoint{
		Interval: 7,
		Capped:   true,
		SeedSeq:  []float64{0.125, 1.0 / 3, 0x1p-52, 0.9999999999999999},
		Hidden:   1234,
		Sampled:  5678,
	}
	b, err := json.Marshal(CheckpointOf(rp))
	if err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.ResumePoint(); !reflect.DeepEqual(got, rp) {
		t.Errorf("checkpoint round trip changed the resume point\n got %+v\nwant %+v", got, rp)
	}
}
