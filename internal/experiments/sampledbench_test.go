package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSampledThroughput(t *testing.T) {
	rows, err := SampledThroughput([]string{"s27", "s298"}, 200, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.EventCPS <= 0 || r.ToggleCPS <= 0 || r.PackedCPS <= 0 {
			t.Errorf("%s: nonpositive throughput: %+v", r.Name, r)
		}
		if r.Lanes != 64 || r.PackedCycles != 64*r.ScalarCycles {
			t.Errorf("%s: lane accounting wrong: %+v", r.Name, r)
		}
		if r.Speedup <= 0 {
			t.Errorf("%s: speedup %g", r.Name, r.Speedup)
		}
	}

	var rep SampledBenchReport
	if err := json.Unmarshal([]byte(SampledBenchJSON(rows)), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Rows) != 2 || rep.Rows[0].Name != "s27" {
		t.Fatalf("bad report: %+v", rep)
	}
	if !strings.Contains(RenderSampledBench(rows), "s298") {
		t.Fatal("ASCII render missing circuit name")
	}
}

func TestSampledThroughputErrors(t *testing.T) {
	if _, err := SampledThroughput([]string{"s27"}, 0, 64, 1); err == nil {
		t.Fatal("cycles=0 accepted")
	}
	if _, err := SampledThroughput([]string{"s27"}, 100, 65, 1); err == nil {
		t.Fatal("lanes=65 accepted")
	}
	if _, err := SampledThroughput([]string{"sNOPE"}, 100, 64, 1); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

// TestModeComparison: the two-mode table reports a positive glitch gap
// (general-delay power is above zero-delay power) and sane run
// accounting on a glitch-prone circuit.
func TestModeComparison(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Circuits = []string{"s298"}
	cfg.Replications = 32
	cfg.Workers = 2
	rows, err := ModeComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.PGeneral <= 0 || r.PZero <= 0 || r.PZero >= r.PGeneral {
		t.Fatalf("implausible mode powers: %+v", r)
	}
	if r.GlitchPct <= 0 || r.GlitchPct >= 100 {
		t.Fatalf("glitch share %g%%", r.GlitchPct)
	}
	if r.NGeneral <= 0 || r.NZero <= 0 || r.CycGeneral == 0 || r.CycZero == 0 {
		t.Fatalf("missing run accounting: %+v", r)
	}
	if !strings.Contains(RenderModes(rows), "s298") {
		t.Fatal("ASCII render missing circuit name")
	}
}

func TestModeComparisonError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Circuits = []string{"sNOPE"}
	if _, err := ModeComparison(cfg); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}
