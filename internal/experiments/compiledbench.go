package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vectors"
)

// CompiledBenchRow compares the interpreted packed backend against the
// compiled word-level backend on one circuit, phase by phase. The
// headline figure is the estimation duty cycle — the cycle mix one
// replication sweep of the paper's two-phase scheme actually runs
// (warmup hidden cycles, then samples taken every `interval` cycles) —
// because hidden cycles dominate estimation cost and that is where the
// compiled engine's fused next-state program wins. All throughput
// figures count per-replication clock cycles, so different lane widths
// (64 packed words vs multi-word compiled blocks) are comparable.
type CompiledBenchRow struct {
	Name          string `json:"circuit"`
	Gates         int    `json:"gates"`
	PackedLanes   int    `json:"packed_lanes"`
	CompiledLanes int    `json:"compiled_lanes"`
	Warmup        int    `json:"warmup_cycles"`
	Samples       int    `json:"samples_per_sweep"`
	Interval      int    `json:"sampling_interval"`

	PackedHiddenCPS    float64 `json:"packed_hidden_cycles_per_sec"`
	CompiledHiddenCPS  float64 `json:"compiled_hidden_cycles_per_sec"`
	HiddenSpeedup      float64 `json:"hidden_speedup"`
	PackedSampledCPS   float64 `json:"packed_sampled_cycles_per_sec"`
	CompiledSampledCPS float64 `json:"compiled_sampled_cycles_per_sec"`
	SampledSpeedup     float64 `json:"sampled_speedup"`
	PackedDutyCPS      float64 `json:"packed_duty_cycles_per_sec"`
	CompiledDutyCPS    float64 `json:"compiled_duty_cycles_per_sec"`
	DutySpeedup        float64 `json:"duty_speedup"`
}

// CompiledThroughput measures packed-vs-compiled throughput for the
// given circuits. Each duty-cycle sweep runs `warmup` hidden cycles
// followed by `samples` samples spaced `interval` cycles apart
// (interval-1 hidden cycles then one sampled cycle), matching the
// estimator's per-replication cycle mix; `sweeps` sweeps are timed. The
// hidden and sampled phases are also timed in isolation over the same
// cycle budgets. lanes is the compiled session width (the packed side
// always runs full 64-lane words).
func CompiledThroughput(circuits []string, warmup, samples, interval, sweeps, lanes int, seed int64) ([]CompiledBenchRow, error) {
	if warmup < 1 || samples < 1 || interval < 1 || sweeps < 1 {
		return nil, fmt.Errorf("experiments: bad compiled bench config (warmup=%d samples=%d interval=%d sweeps=%d)",
			warmup, samples, interval, sweeps)
	}
	if lanes < 1 || lanes > sim.CompiledMaxLanes {
		return nil, fmt.Errorf("experiments: compiled bench lanes %d out of range [1, %d]", lanes, sim.CompiledMaxLanes)
	}
	perSweep := warmup + samples*interval
	rows := make([]CompiledBenchRow, 0, len(circuits))
	for _, name := range circuits {
		c, err := bench89.Get(name)
		if err != nil {
			return nil, err
		}
		tb := core.DefaultTestbench(c)
		weights := tb.Weights()
		width := len(c.Inputs)

		measure := func(b sim.Backend, n int) (hiddenSec, sampledSec, dutySec float64) {
			mk := func() sim.LaneSession {
				srcs := make([]vectors.Source, n)
				for k := range srcs {
					srcs[k] = vectors.NewIID(width, 0.5, seed+1+int64(k))
				}
				return sim.NewLaneSession(b, c, srcs)
			}
			powers := make([]float64, n)

			s := mk()
			s.StepHiddenN(64) // touch everything once before timing
			t0 := time.Now()
			s.StepHiddenN(sweeps * perSweep)
			hiddenSec = time.Since(t0).Seconds()

			s = mk()
			for i := 0; i < 16; i++ {
				s.StepSampled(weights, powers)
			}
			t0 = time.Now()
			for i := 0; i < sweeps*samples; i++ {
				s.StepSampled(weights, powers)
			}
			sampledSec = time.Since(t0).Seconds()

			s = mk()
			sweep := func() {
				s.StepHiddenN(warmup)
				for i := 0; i < samples; i++ {
					s.StepHiddenN(interval - 1)
					s.StepSampled(weights, powers)
				}
			}
			sweep() // warm pass
			t0 = time.Now()
			for i := 0; i < sweeps; i++ {
				sweep()
			}
			dutySec = time.Since(t0).Seconds()
			return hiddenSec, sampledSec, dutySec
		}

		pH, pS, pD := measure(sim.BackendPacked, sim.MaxLanes)
		cH, cS, cD := measure(sim.BackendCompiled, lanes)

		row := CompiledBenchRow{
			Name: name, Gates: c.NumGates(),
			PackedLanes: sim.MaxLanes, CompiledLanes: lanes,
			Warmup: warmup, Samples: samples, Interval: interval,
		}
		cps := func(cycles, n int, sec float64) float64 {
			if sec <= 0 {
				return 0
			}
			return float64(cycles*n) / sec
		}
		row.PackedHiddenCPS = cps(sweeps*perSweep, sim.MaxLanes, pH)
		row.CompiledHiddenCPS = cps(sweeps*perSweep, lanes, cH)
		row.PackedSampledCPS = cps(sweeps*samples, sim.MaxLanes, pS)
		row.CompiledSampledCPS = cps(sweeps*samples, lanes, cS)
		row.PackedDutyCPS = cps(sweeps*perSweep, sim.MaxLanes, pD)
		row.CompiledDutyCPS = cps(sweeps*perSweep, lanes, cD)
		if row.PackedHiddenCPS > 0 {
			row.HiddenSpeedup = row.CompiledHiddenCPS / row.PackedHiddenCPS
		}
		if row.PackedSampledCPS > 0 {
			row.SampledSpeedup = row.CompiledSampledCPS / row.PackedSampledCPS
		}
		if row.PackedDutyCPS > 0 {
			row.DutySpeedup = row.CompiledDutyCPS / row.PackedDutyCPS
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CompiledBenchReport is the JSON document emitted for regression
// tracking (BENCH_6.json): the machine context plus one row per
// circuit.
type CompiledBenchReport struct {
	Benchmark string             `json:"benchmark"`
	GoVersion string             `json:"go_version"`
	NumCPU    int                `json:"num_cpu"`
	Rows      []CompiledBenchRow `json:"rows"`
}

// CompiledBenchJSON renders rows as an indented JSON report.
func CompiledBenchJSON(rows []CompiledBenchRow) string {
	rep := CompiledBenchReport{
		Benchmark: "estimation duty cycle: packed interpreter vs compiled program",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Rows:      rows,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		// Marshal of a plain struct cannot fail; keep the API total anyway.
		return "{}"
	}
	return string(b) + "\n"
}

// RenderCompiledBench renders rows as an ASCII table.
func RenderCompiledBench(rows []CompiledBenchRow) string {
	s := fmt.Sprintf("%-8s %7s %6s %12s %12s %7s %12s %12s %7s\n",
		"circuit", "gates", "lanes", "pk hidden", "cc hidden", "hid.x", "pk duty", "cc duty", "duty.x")
	for _, r := range rows {
		s += fmt.Sprintf("%-8s %7d %6d %12.3g %12.3g %6.2fx %12.3g %12.3g %6.2fx\n",
			r.Name, r.Gates, r.CompiledLanes,
			r.PackedHiddenCPS, r.CompiledHiddenCPS, r.HiddenSpeedup,
			r.PackedDutyCPS, r.CompiledDutyCPS, r.DutySpeedup)
	}
	return s
}
