#!/usr/bin/env bash
# Regenerates BENCH_2.json: sampled-cycle throughput of the scalar
# event-driven engine vs the packed zero-delay engine on the regression
# trio (s298/s832/s1494). Optional first argument overrides the scalar
# sampled-cycle budget (default 2000).
set -euo pipefail
cd "$(dirname "$0")/.."

cycles="${1:-2000}"
go run ./cmd/dipe-experiments -sampled -sampled-cycles "$cycles" -sampled-json BENCH_2.json
