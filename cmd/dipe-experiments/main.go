// Command dipe-experiments regenerates every table and figure of the
// paper's evaluation section, plus the ablations documented in
// DESIGN.md.
//
//	dipe-experiments -table1                       # Table 1 (all circuits)
//	dipe-experiments -table2 -runs 1000            # Table 2 at paper scale
//	dipe-experiments -fig3                         # Figure 3 (s1494, L=10000)
//	dipe-experiments -ablation stopping            # criterion comparison
//	dipe-experiments -table1 -circuits s27,s298    # subset
//	dipe-experiments -all -small                   # everything, small circuits
//
// By default reference budgets scale with circuit size; -paper restores
// the 1e6-cycle references of the paper (slow on the largest circuits).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench89"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "regenerate Table 1")
		table2   = flag.Bool("table2", false, "regenerate Table 2")
		fig3     = flag.Bool("fig3", false, "regenerate Figure 3")
		ablation = flag.String("ablation", "", "run one ablation: seqlen | alpha | stopping | warmup | inputs")
		all      = flag.Bool("all", false, "run every table, figure and ablation")
		circuits = flag.String("circuits", "", "comma-separated circuit subset (default: all 24)")
		small    = flag.Bool("small", false, "restrict to circuits with < 700 gates")
		runs     = flag.Int("runs", 100, "runs per circuit for Table 2 / ablations (paper: 1000)")
		parallel = flag.Int("parallel", 0, "concurrent estimation runs in Table 2 (0 = serial)")
		reps     = flag.Int("replications", 0, "Table 1: bit-parallel replications (0 = serial estimator)")
		workers  = flag.Int("workers", 0, "goroutine pool for -replications (0 = GOMAXPROCS)")
		packed   = flag.Bool("packed", false, "run the packed-vs-scalar hidden-cycle throughput benchmark")
		packedN  = flag.Int("packed-cycles", 200_000, "scalar cycle budget for -packed")
		packedJS = flag.String("packed-json", "", "write the -packed report as JSON to this file")
		paper    = flag.Bool("paper", false, "use the paper's 1e6-cycle references")
		seed     = flag.Int64("seed", 1997, "base seed for the whole campaign")
		fig3Len  = flag.Int("fig3-len", 10000, "Figure 3 sequence length")
		fig3Max  = flag.Int("fig3-max", 30, "Figure 3 maximum trial interval")
		fig3Circ = flag.String("fig3-circuit", "s1494", "Figure 3 circuit")
		csv      = flag.Bool("csv", false, "emit Figure 3 as CSV instead of ASCII")
		quiet    = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Runs = *runs
	cfg.Parallel = *parallel
	cfg.Replications = *reps
	cfg.Workers = *workers
	cfg.BaseSeed = *seed
	if !*quiet {
		cfg.Log = os.Stderr
	}
	if *paper {
		cfg.RefCycles = experiments.PaperRefCycles
	}
	switch {
	case *circuits != "":
		cfg.Circuits = strings.Split(*circuits, ",")
	case *small:
		cfg.Circuits = bench89.SmallNames(700)
	}

	if !*table1 && !*table2 && !*fig3 && *ablation == "" && !*all && !*packed {
		flag.Usage()
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dipe-experiments:", err)
		os.Exit(1)
	}

	if *packed {
		set := cfg.Circuits
		if *circuits == "" && !*small {
			// Default to the regression trio unless the user chose a set.
			set = []string{"s298", "s832", "s1494"}
		}
		rows, err := experiments.PackedThroughput(set, *packedN, 64, cfg.BaseSeed)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.RenderPackedBench(rows))
		if *packedJS != "" {
			if err := os.WriteFile(*packedJS, []byte(experiments.PackedBenchJSON(rows)), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *packedJS)
		}
	}

	if *table1 || *all {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderTable1(rows))
	}
	if *table2 || *all {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderTable2(rows))
	}
	if *fig3 || *all {
		pts, err := experiments.Figure3(cfg, *fig3Circ, *fig3Len, *fig3Max)
		if err != nil {
			fail(err)
		}
		if *csv {
			fmt.Print(experiments.Figure3CSV(pts))
		} else {
			c := stats.NormalQuantile(1 - cfg.Opts.Alpha/2)
			fmt.Println(experiments.RenderFigure3(pts, c))
		}
	}

	runAblation := func(which string) {
		// Ablations run on one representative circuit each; s298 is small
		// and strongly correlated, s27 is the fast smoke case.
		switch which {
		case "seqlen":
			rows, err := experiments.AblationSeqLen(cfg, "s298", []int{80, 160, 320, 640, 1280})
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.RenderSeqLen(rows))
		case "alpha":
			rows, err := experiments.AblationAlpha(cfg, "s298", []float64{0.05, 0.10, 0.20, 0.30, 0.50})
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.RenderAlpha(rows))
		case "stopping":
			rows, err := experiments.AblationStopping(cfg, "s298")
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.RenderStopping(rows))
		case "warmup":
			rows, err := experiments.AblationWarmup(cfg, "s298", []int{10, 50, 100})
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.RenderWarmup(rows))
		case "inputs":
			rows, err := experiments.AblationInputs(cfg, "s298", []float64{0, 0.5, 0.9})
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.RenderInputs(rows))
		case "delay":
			dcfg := cfg
			if len(dcfg.Circuits) > 8 {
				dcfg.Circuits = dcfg.Circuits[:8]
			}
			rows, err := experiments.AblationDelayModels(dcfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.RenderDelayModels(rows))
		case "calibration":
			rows := experiments.CalibrationRunsTest(cfg, cfg.Opts.Test, cfg.Opts.SeqLen, 2000,
				[]float64{0.05, 0.10, 0.20, 0.30, 0.50})
			fmt.Println(experiments.RenderCalibration(rows))
		case "proba":
			pcfg := cfg
			if len(pcfg.Circuits) > 12 {
				pcfg.Circuits = pcfg.Circuits[:12]
			}
			rows, err := experiments.ProbabilisticBaseline(pcfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.RenderProba(rows))
		default:
			fail(fmt.Errorf("unknown ablation %q (seqlen|alpha|stopping|warmup|inputs|delay|calibration|proba)", which))
		}
	}
	if *ablation != "" {
		runAblation(*ablation)
	}
	if *all {
		for _, a := range []string{"seqlen", "alpha", "stopping", "warmup", "inputs", "delay", "calibration", "proba"} {
			runAblation(a)
		}
	}
}
