package bench89

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// This file provides parameterized generators for classic sequential
// structures with exactly known behaviour: binary counters, shift
// registers, linear feedback shift registers and register pipelines.
// They serve three purposes: ground-truth tests for the simulators
// (period, counting sequence, activity), controllable workloads for the
// estimator (power with known temporal structure), and didactic
// examples.

// GenerateCounter builds an enable-gated n-bit binary ripple counter:
//
//	en       = AND(all primary inputs)         (enableInputs >= 1 pins)
//	t[0]     = en
//	q[i]'    = q[i] XOR t[i]
//	t[i+1]   = AND(q[i], t[i])
//
// The MSB is the primary output. With all inputs held at 1 the counter
// increments every cycle and q[i] toggles with period 2^(i+1).
func GenerateCounter(name string, bits, enableInputs int) (*netlist.Circuit, error) {
	if bits < 1 || enableInputs < 1 {
		return nil, fmt.Errorf("bench89: counter needs bits >= 1 and enableInputs >= 1 (got %d, %d)", bits, enableInputs)
	}
	c := netlist.NewCircuit(name)
	inputs := make([]netlist.NodeID, enableInputs)
	for i := range inputs {
		id, err := c.AddNode(fmt.Sprintf("EN%d", i), logic.Input)
		if err != nil {
			return nil, err
		}
		inputs[i] = id
	}
	var en netlist.NodeID
	if enableInputs == 1 {
		var err error
		en, err = c.AddNode("ENB", logic.Buf, inputs[0])
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		en, err = c.AddNode("ENB", logic.And, inputs...)
		if err != nil {
			return nil, err
		}
	}
	q := make([]netlist.NodeID, bits)
	for i := range q {
		id, err := c.AddNode(fmt.Sprintf("Q%d", i), logic.DFF)
		if err != nil {
			return nil, err
		}
		q[i] = id
	}
	carry := en
	for i := 0; i < bits; i++ {
		tog, err := c.AddNode(fmt.Sprintf("T%d", i), logic.Xor, q[i], carry)
		if err != nil {
			return nil, err
		}
		if err := c.SetFanin(q[i], tog); err != nil {
			return nil, err
		}
		if i < bits-1 {
			carry, err = c.AddNode(fmt.Sprintf("C%d", i), logic.And, q[i], carry)
			if err != nil {
				return nil, err
			}
		}
	}
	if err := c.MarkOutput(q[bits-1]); err != nil {
		return nil, err
	}
	if err := c.Freeze(); err != nil {
		return nil, err
	}
	return c, nil
}

// GenerateShiftRegister builds a serial-in shift register of the given
// depth: DIN -> Q0 -> Q1 -> ... -> Q(depth-1) -> DOUT (buffered). Node
// activity equals the input activity delayed by the stage index, so the
// total power is exactly proportional to the input toggle rate.
func GenerateShiftRegister(name string, depth int) (*netlist.Circuit, error) {
	if depth < 1 {
		return nil, fmt.Errorf("bench89: shift register needs depth >= 1 (got %d)", depth)
	}
	c := netlist.NewCircuit(name)
	din, err := c.AddNode("DIN", logic.Input)
	if err != nil {
		return nil, err
	}
	prev := din
	for i := 0; i < depth; i++ {
		q, err := c.AddNode(fmt.Sprintf("Q%d", i), logic.DFF, prev)
		if err != nil {
			return nil, err
		}
		prev = q
	}
	dout, err := c.AddNode("DOUT", logic.Buf, prev)
	if err != nil {
		return nil, err
	}
	if err := c.MarkOutput(dout); err != nil {
		return nil, err
	}
	if err := c.Freeze(); err != nil {
		return nil, err
	}
	return c, nil
}

// MaximalLFSRTaps lists maximal-length Fibonacci LFSR tap sets (periods
// 2^n - 1) for common register lengths.
var MaximalLFSRTaps = map[int][]int{
	3:  {3, 2},
	4:  {4, 3},
	5:  {5, 3},
	6:  {6, 5},
	7:  {7, 6},
	8:  {8, 6, 5, 4},
	9:  {9, 5},
	10: {10, 7},
	15: {15, 14},
	16: {16, 15, 13, 4},
}

// GenerateLFSR builds a Fibonacci linear feedback shift register over
// `bits` stages with XOR feedback from the 1-indexed tap positions. A
// SCRAMBLE input is XORed into the feedback, so with SCRAMBLE held low
// the register runs autonomously; with maximal taps it cycles through
// all 2^bits - 1 nonzero states. Because the all-zero state is absorbing
// in an autonomous LFSR, the feedback also includes a zero-detect NOR
// that injects a 1 when the register is all zero — making reset
// self-starting and the chain ergodic (a standard hardware trick).
func GenerateLFSR(name string, bits int, taps []int) (*netlist.Circuit, error) {
	if bits < 2 {
		return nil, fmt.Errorf("bench89: LFSR needs bits >= 2 (got %d)", bits)
	}
	if len(taps) < 1 {
		return nil, fmt.Errorf("bench89: LFSR needs at least one tap")
	}
	for _, tp := range taps {
		if tp < 1 || tp > bits {
			return nil, fmt.Errorf("bench89: tap %d outside 1..%d", tp, bits)
		}
	}
	c := netlist.NewCircuit(name)
	scramble, err := c.AddNode("SCRAMBLE", logic.Input)
	if err != nil {
		return nil, err
	}
	q := make([]netlist.NodeID, bits)
	for i := range q {
		id, err := c.AddNode(fmt.Sprintf("Q%d", i), logic.DFF)
		if err != nil {
			return nil, err
		}
		q[i] = id
	}
	// Feedback = XOR of taps (tap t reads q[t-1]).
	fanin := make([]netlist.NodeID, 0, len(taps)+1)
	for _, tp := range taps {
		fanin = append(fanin, q[tp-1])
	}
	fb, err := c.AddNode("FB", logic.Xor, fanin...)
	if err != nil {
		return nil, err
	}
	// Zero-detect: NOR of all stages (1 only when register is all-zero).
	zd, err := c.AddNode("ZD", logic.Nor, q...)
	if err != nil {
		return nil, err
	}
	// din = fb XOR zd XOR scramble.
	din, err := c.AddNode("DIN", logic.Xor, fb, zd, scramble)
	if err != nil {
		return nil, err
	}
	if err := c.SetFanin(q[0], din); err != nil {
		return nil, err
	}
	for i := 1; i < bits; i++ {
		if err := c.SetFanin(q[i], q[i-1]); err != nil {
			return nil, err
		}
	}
	if err := c.MarkOutput(q[bits-1]); err != nil {
		return nil, err
	}
	if err := c.Freeze(); err != nil {
		return nil, err
	}
	return c, nil
}

// GeneratePipeline builds a `stages`-deep, `width`-wide registered
// datapath. Each stage applies a fixed mixing layer between register
// banks: out[i] = XOR(in[i], AND(in[(i+1)%w], in[(i+2)%w])) — a
// nonlinear permutation-ish layer that keeps activity high and creates
// realistic inter-stage glitching under non-zero delays.
func GeneratePipeline(name string, width, stages int) (*netlist.Circuit, error) {
	if width < 3 || stages < 1 {
		return nil, fmt.Errorf("bench89: pipeline needs width >= 3 and stages >= 1 (got %d, %d)", width, stages)
	}
	c := netlist.NewCircuit(name)
	cur := make([]netlist.NodeID, width)
	for i := range cur {
		id, err := c.AddNode(fmt.Sprintf("IN%d", i), logic.Input)
		if err != nil {
			return nil, err
		}
		cur[i] = id
	}
	for s := 0; s < stages; s++ {
		next := make([]netlist.NodeID, width)
		for i := 0; i < width; i++ {
			and, err := c.AddNode(fmt.Sprintf("S%dA%d", s, i), logic.And,
				cur[(i+1)%width], cur[(i+2)%width])
			if err != nil {
				return nil, err
			}
			mix, err := c.AddNode(fmt.Sprintf("S%dX%d", s, i), logic.Xor, cur[i], and)
			if err != nil {
				return nil, err
			}
			reg, err := c.AddNode(fmt.Sprintf("S%dQ%d", s, i), logic.DFF, mix)
			if err != nil {
				return nil, err
			}
			next[i] = reg
		}
		cur = next
	}
	for i := 0; i < width; i++ {
		ob, err := c.AddNode(fmt.Sprintf("OUT%d", i), logic.Buf, cur[i])
		if err != nil {
			return nil, err
		}
		if err := c.MarkOutput(ob); err != nil {
			return nil, err
		}
	}
	if err := c.Freeze(); err != nil {
		return nil, err
	}
	return c, nil
}
