package core

import (
	"math"
	"testing"

	"repro/internal/bench89"
	"repro/internal/stopping"
	"repro/internal/vectors"
)

// TestEstimateParallelDeterministic: the same seeds give the same result,
// bit for bit, regardless of the worker count — the fixed lane→seed
// mapping plus ordered merge make scheduling invisible.
func TestEstimateParallelDeterministic(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = 16
	var ref Result
	for i, workers := range []int{1, 2, 7} {
		opts.Workers = workers
		res, err := EstimateParallel(tb, factory, 42, opts)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Power != ref.Power || res.SampleSize != ref.SampleSize ||
			res.Interval != ref.Interval || res.HalfWidth != ref.HalfWidth {
			t.Fatalf("workers=%d: result %v differs from workers=1 result %v", workers, res, ref)
		}
	}
	if ref.Power <= 0 {
		t.Fatalf("power = %g, want > 0", ref.Power)
	}
	if !ref.Converged {
		t.Fatal("did not converge")
	}
}

// TestEstimateParallelMatchesSerial: the parallel estimate agrees with
// the serial estimate within the accuracy specification (both converged
// to 5% at 0.99, so they must be within ~2x the relative error of each
// other with huge probability).
func TestEstimateParallelMatchesSerial(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()

	serial, err := Estimate(tb.NewSession(factory(7)), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Replications = 64
	par, err := EstimateParallel(tb, factory, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Converged {
		t.Fatal("parallel run did not converge")
	}
	rel := math.Abs(par.Power-serial.Power) / serial.Power
	if rel > 3*opts.Spec.RelErr {
		t.Fatalf("parallel %g W vs serial %g W: relative gap %.1f%% too large",
			par.Power, serial.Power, 100*rel)
	}
	if par.SampleSize < opts.SeqLen {
		t.Fatalf("sample size %d below the reused test sequence length", par.SampleSize)
	}
}

// TestEstimateParallelReplicationSharding: replication counts that do
// not divide evenly across workers or exceed one word still work and
// stay deterministic.
func TestEstimateParallelReplicationSharding(t *testing.T) {
	c := bench89.MustGet("s27")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	for _, reps := range []int{1, 3, 64, 130} {
		opts := DefaultOptions()
		opts.Replications = reps
		opts.Workers = 3
		a, err := EstimateParallel(tb, factory, 11, opts)
		if err != nil {
			t.Fatalf("reps=%d: %v", reps, err)
		}
		opts.Workers = 5
		b, err := EstimateParallel(tb, factory, 11, opts)
		if err != nil {
			t.Fatalf("reps=%d: %v", reps, err)
		}
		if a.Power != b.Power || a.SampleSize != b.SampleSize {
			t.Fatalf("reps=%d: results differ across worker counts: %v vs %v", reps, a, b)
		}
	}
}

// TestEstimateParallelWithInterval: the fixed-interval parallel variant
// runs and converges on a small circuit.
func TestEstimateParallelWithInterval(t *testing.T) {
	c := bench89.MustGet("s27")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = 8
	res, err := EstimateParallelWithInterval(tb, factory, 3, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interval != 2 {
		t.Fatalf("interval = %d, want 2", res.Interval)
	}
	if res.Power <= 0 || !res.Converged {
		t.Fatalf("bad result: %v", res)
	}
	if _, err := EstimateParallelWithInterval(tb, factory, 3, opts, -1); err == nil {
		t.Fatal("negative interval accepted")
	}
}

// TestEstimateParallelMaxSamples: the sample budget is honored at
// round granularity — an unconverged run still collects every whole
// round that fits under MaxSamples instead of aborting a block early.
func TestEstimateParallelMaxSamples(t *testing.T) {
	c := bench89.MustGet("s27")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = 64
	opts.Spec = stopping.Spec{RelErr: 0.0005, Confidence: 0.999} // unreachable
	opts.MaxSamples = 500
	res, err := EstimateParallelWithInterval(tb, factory, 1, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("converged at an unreachable spec")
	}
	want := (opts.MaxSamples / opts.Replications) * opts.Replications // 448
	if res.SampleSize != want {
		t.Fatalf("sample size %d, want %d (every whole round under the budget)", res.SampleSize, want)
	}
}

// TestEstimateParallelValidate: negative knobs are rejected.
func TestEstimateParallelValidate(t *testing.T) {
	c := bench89.MustGet("s27")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = -1
	if _, err := EstimateParallel(tb, factory, 1, opts); err == nil {
		t.Fatal("negative Replications accepted")
	}
	opts = DefaultOptions()
	opts.Workers = -2
	if _, err := EstimateParallel(tb, factory, 1, opts); err == nil {
		t.Fatal("negative Workers accepted")
	}
}
