package compile

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Unit is the compiled form of one frozen circuit: the observation-exact
// Full program and the next-state-only Step program (see the package
// comment for what each may and may not restructure).
type Unit struct {
	Full *Program
	Step *Program
}

// For returns the compiled Unit of a frozen circuit, compiling on first
// use and caching the result on the circuit itself, so every session
// over the same circuit shares one Unit. Compilation is deterministic;
// concurrent first calls race only on which identical Unit gets cached.
func For(c *netlist.Circuit) *Unit {
	if u, ok := c.Artifact().(*Unit); ok {
		return u
	}
	u := Compile(c)
	c.SetArtifact(u)
	return u
}

// Compile builds the word-level programs of a frozen circuit.
func Compile(c *netlist.Circuit) *Unit {
	if !c.Frozen() {
		panic("compile: Compile requires a frozen circuit")
	}
	r := c.CSR()
	cv := constEval(r)
	ord := levelOrder(r)
	return &Unit{Full: compileFull(r, cv, ord), Step: compileStep(r, cv, ord)}
}

// levelOrder returns r.Order stably re-sorted by logic level (a counting
// sort). The CSR order is a valid topological order but interleaves
// levels; emitting in level-contiguous order instead makes each program's
// instructions a sequence of level runs, which is what the blocked
// executor's per-level waves require. The re-sort is itself topological —
// every fanin sits at a strictly lower level — and settled values are
// independent of which valid order is used, so compiled results are
// unchanged.
func levelOrder(r *netlist.CSR) []int32 {
	maxL := int32(0)
	for _, id := range r.Order {
		if r.Level[id] > maxL {
			maxL = r.Level[id]
		}
	}
	cnt := make([]int32, maxL+2)
	for _, id := range r.Order {
		cnt[r.Level[id]+1]++
	}
	for i := 1; i < len(cnt); i++ {
		cnt[i] += cnt[i-1]
	}
	out := make([]int32, len(r.Order))
	for _, id := range r.Order {
		out[cnt[r.Level[id]]] = id
		cnt[r.Level[id]]++
	}
	return out
}

// constVal is the three-point constant lattice of a signal.
type constVal uint8

const (
	varying constVal = iota
	zero
	one
)

func (v constVal) invert() constVal {
	switch v {
	case zero:
		return one
	case one:
		return zero
	}
	return varying
}

// shape reduces a combinational kind to its reduction base (And, Or,
// Xor, or Buf for the unary gates) and an output-inversion flag.
func shape(k logic.Kind) (logic.Kind, bool) {
	switch k {
	case logic.Buf:
		return logic.Buf, false
	case logic.Not:
		return logic.Buf, true
	case logic.And:
		return logic.And, false
	case logic.Nand:
		return logic.And, true
	case logic.Or:
		return logic.Or, false
	case logic.Nor:
		return logic.Or, true
	case logic.Xor:
		return logic.Xor, false
	case logic.Xnor:
		return logic.Xor, true
	}
	panic("compile: shape of non-combinational kind " + k.String())
}

// constEval propagates the constant lattice through the levelized
// order: a gate is constant iff its inputs force it (all-constant cone,
// or a controlling constant input — AND with a known 0, OR with a known
// 1). Inputs and latch outputs are varying by definition.
func constEval(r *netlist.CSR) []constVal {
	cv := make([]constVal, r.NumNodes())
	for _, id := range r.Const0s {
		cv[id] = zero
	}
	for _, id := range r.Const1s {
		cv[id] = one
	}
	for _, id := range r.Order {
		k := r.Kind[id]
		if !k.IsCombinational() {
			continue
		}
		fi := r.FaninList[r.FaninIdx[id]:r.FaninIdx[id+1]]
		base, inv := shape(k)
		var v constVal
		switch base {
		case logic.Buf:
			v = cv[fi[0]]
		case logic.And:
			v = one
			for _, f := range fi {
				if cv[f] == zero {
					v = zero
					break
				}
				if cv[f] == varying {
					v = varying
				}
			}
		case logic.Or:
			v = zero
			for _, f := range fi {
				if cv[f] == one {
					v = one
					break
				}
				if cv[f] == varying {
					v = varying
				}
			}
		case logic.Xor:
			v = zero
			for _, f := range fi {
				if cv[f] == varying {
					v = varying
					break
				}
				if cv[f] == one {
					v = v.invert()
				}
			}
		}
		if inv {
			v = v.invert()
		}
		cv[id] = v
	}
	return cv
}

// emit appends one instruction computing (base, inv) over the operand
// rows into dst, picking the narrowest opcode form.
func (p *Program) emit(dst int32, base logic.Kind, inv bool, ops []int32) {
	switch len(ops) {
	case 0:
		panic("compile: emit with no operands")
	case 1:
		op := opCopy
		if inv {
			op = opNot
		}
		p.code = append(p.code, inst{op: op, dst: dst, a: ops[0]})
	case 2:
		var op opcode
		switch base {
		case logic.And:
			op = opAnd2
			if inv {
				op = opNand2
			}
		case logic.Or:
			op = opOr2
			if inv {
				op = opNor2
			}
		case logic.Xor:
			op = opXor2
			if inv {
				op = opXnor2
			}
		default:
			panic("compile: 2-operand " + base.String())
		}
		p.code = append(p.code, inst{op: op, dst: dst, a: ops[0], b: ops[1]})
	default:
		var op opcode
		switch base {
		case logic.And:
			op = opAndN
			if inv {
				op = opNandN
			}
		case logic.Or:
			op = opOrN
			if inv {
				op = opNorN
			}
		case logic.Xor:
			op = opXorN
			if inv {
				op = opXnorN
			}
		default:
			panic("compile: n-ary " + base.String())
		}
		off := int32(len(p.Args))
		p.Args = append(p.Args, ops...)
		p.code = append(p.code, inst{op: op, dst: dst, off: off, n: int32(len(ops))})
	}
}

// compileFull builds the observation-exact program: one register row
// per node (row i == node i), every varying gate emitted in
// level-contiguous order, constant cones hoisted into init rows,
// identity operands elided with the gate's polarity adjusted. Node
// values after Exec are bit-identical to the interpreted sweep's.
func compileFull(r *netlist.CSR, cv []constVal, ord []int32) *Program {
	p := &Program{
		Slots: r.NumNodes(),
		In:    append([]int32(nil), r.Inputs...),
		Q:     append([]int32(nil), r.Latches...),
		D:     append([]int32(nil), r.LatchD...),
	}
	for id, v := range cv {
		switch v {
		case zero:
			p.Const0 = append(p.Const0, int32(id))
		case one:
			p.Const1 = append(p.Const1, int32(id))
		}
	}
	for _, id := range ord {
		k := r.Kind[id]
		if !k.IsCombinational() || cv[id] != varying {
			continue
		}
		fi := r.FaninList[r.FaninIdx[id]:r.FaninIdx[id+1]]
		base, inv := shape(k)
		if base == logic.Buf {
			p.emit(id, base, inv, fi)
			p.levels = append(p.levels, r.Level[id])
			continue
		}
		ops := make([]int32, 0, len(fi))
		for _, f := range fi {
			switch cv[f] {
			case varying:
				ops = append(ops, f)
			case one:
				// Identity operand of AND; parity flip under XOR. (A
				// controlling constant would have folded the gate.)
				if base == logic.Xor {
					inv = !inv
				}
			}
		}
		p.emit(id, base, inv, ops)
		p.levels = append(p.levels, r.Level[id])
	}
	return p
}

// compileStep builds the next-state-only program over a compact
// register file: rows [0, #inputs) are the primary inputs, rows
// [#inputs, #inputs+#latches) the latch outputs, then constant rows and
// recycled temporaries. Gates outside the latch-D cone are never
// compiled; BUF chains collapse to aliases; single-fanout same-base
// chains fuse into n-ary ops.
func compileStep(r *netlist.CSR, cv []constVal, ord []int32) *Program {
	n := r.NumNodes()
	nIn, nL := len(r.Inputs), len(r.Latches)
	p := &Program{Slots: nIn + nL}
	for i := 0; i < nIn; i++ {
		p.In = append(p.In, int32(i))
	}
	for i := 0; i < nL; i++ {
		p.Q = append(p.Q, int32(nIn+i))
	}
	if nL == 0 {
		return p
	}

	// Leaf rows by node id: inputs and latch outputs.
	leaf := make([]int32, n)
	for i := range leaf {
		leaf[i] = -1
	}
	for i, id := range r.Inputs {
		leaf[id] = int32(i)
	}
	for i, id := range r.Latches {
		leaf[id] = int32(nIn + i)
	}

	// rep collapses varying BUF chains to their driver. (A constant BUF
	// is handled by the lattice, never by rep.)
	rep := make([]int32, n)
	for i := range rep {
		rep[i] = -1
	}
	var resolve func(id int32) int32
	resolve = func(id int32) int32 {
		if rep[id] >= 0 {
			return rep[id]
		}
		out := id
		if r.Kind[id] == logic.Buf && cv[id] == varying {
			out = resolve(r.FaninList[r.FaninIdx[id]])
		}
		rep[id] = out
		return out
	}

	// Cone of the latch D pins: the only nodes whose values influence
	// the next state. Everything else is dead fanout for hidden cycles.
	needed := make([]bool, n)
	var stack []int32
	mark := func(id int32) {
		if !needed[id] {
			needed[id] = true
			stack = append(stack, id)
		}
	}
	for _, d := range r.LatchD {
		mark(d)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cv[id] != varying {
			continue // constant cones never execute
		}
		for _, f := range r.FaninList[r.FaninIdx[id]:r.FaninIdx[id+1]] {
			mark(f)
		}
	}

	// pinned rows hold the D values themselves: they must exist as rows
	// and survive to the end of the program.
	pinned := make([]bool, n)
	for _, d := range r.LatchD {
		if cv[d] == varying {
			pinned[resolve(d)] = true
		}
	}

	// isGate reports whether id compiles to an instruction of its own
	// (before fusion): a needed, varying combinational gate that isn't a
	// collapsed BUF.
	isGate := func(id int32) bool {
		k := r.Kind[id]
		return needed[id] && cv[id] == varying && k.IsCombinational() && k != logic.Buf
	}

	// Effective use counts: how many compiled consumers reference each
	// node after BUF collapse and constant elision. Chain fusion moves a
	// child's operands into its parent, so counts are stable under it.
	uses := make([]int32, n)
	for _, id := range ord {
		if !isGate(id) {
			continue
		}
		for _, f := range r.FaninList[r.FaninIdx[id]:r.FaninIdx[id+1]] {
			if cv[f] == varying {
				uses[resolve(f)]++
			}
		}
	}
	for _, d := range r.LatchD {
		if cv[d] == varying {
			uses[resolve(d)]++
		}
	}

	// absorbed[c] marks gates that fuse into their single consumer:
	// same reduction base, non-inverting (or XOR base, where an
	// inverting child just flips the parent's polarity), not a D value.
	// The reverse levelized walk decides consumers before producers, so
	// chains fuse transitively; an absorbed gate's children check
	// against the same base its parent did.
	absorbed := make([]bool, n)
	fusable := func(parentBase logic.Kind, c int32) bool {
		if !needed[c] || cv[c] != varying || pinned[c] || uses[c] != 1 {
			return false
		}
		k := r.Kind[c]
		if !k.IsCombinational() || k == logic.Buf || k == logic.Not {
			return false
		}
		base, inv := shape(k)
		if base != parentBase {
			return false
		}
		return !inv || base == logic.Xor
	}
	for i := len(ord) - 1; i >= 0; i-- {
		id := ord[i]
		if !isGate(id) || r.Kind[id] == logic.Not {
			continue
		}
		base, _ := shape(r.Kind[id])
		for _, f := range r.FaninList[r.FaninIdx[id]:r.FaninIdx[id+1]] {
			if cv[f] != varying {
				continue
			}
			if c := resolve(f); fusable(base, c) {
				absorbed[c] = true
			}
		}
	}

	// collect gathers gate id's surviving operands (constant-elided,
	// BUF-collapsed, absorbed children expanded in place) under the
	// given reduction base, threading the parity flips of elided XOR
	// ones and of absorbed inverting children.
	var collect func(base logic.Kind, id int32, inv bool, ops []int32) ([]int32, bool)
	collect = func(base logic.Kind, id int32, inv bool, ops []int32) ([]int32, bool) {
		for _, f := range r.FaninList[r.FaninIdx[id]:r.FaninIdx[id+1]] {
			switch cv[f] {
			case one:
				if base == logic.Xor {
					inv = !inv
				}
				continue
			case zero:
				continue
			}
			c := resolve(f)
			if absorbed[c] {
				if _, cInv := shape(r.Kind[c]); cInv {
					inv = !inv
				}
				ops, inv = collect(base, c, inv, ops)
			} else {
				ops = append(ops, c)
			}
		}
		return ops, inv
	}

	// Virtual emission: destinations and operands are node ids. The walk
	// over the level-sorted order makes vcode (and so the final program)
	// level-contiguous; lvl records each instruction's logic level.
	type vinst struct {
		base logic.Kind
		inv  bool
		dst  int32
		lvl  int32
		ops  []int32
	}
	var vcode []vinst
	for _, id := range ord {
		if !isGate(id) || absorbed[id] {
			continue
		}
		base, inv := shape(r.Kind[id])
		var ops []int32
		if base == logic.Buf {
			// Only NOT survives here: varying BUFs collapse via rep.
			ops = []int32{resolve(r.FaninList[r.FaninIdx[id]])}
		} else {
			ops, inv = collect(base, id, inv, make([]int32, 0, 4))
		}
		vcode = append(vcode, vinst{base: base, inv: inv, dst: id, lvl: r.Level[id], ops: ops})
	}

	// Constant rows, allocated only if something still references them
	// (a latch whose D pin is constant).
	constRow := [2]int32{-1, -1} // indexed [zero-1, one-1]
	needConst := func(v constVal) int32 {
		i := int(v) - 1
		if constRow[i] < 0 {
			constRow[i] = int32(p.Slots)
			p.Slots++
			if v == one {
				p.Const1 = append(p.Const1, constRow[i])
			} else {
				p.Const0 = append(p.Const0, constRow[i])
			}
		}
		return constRow[i]
	}

	// Linear-scan register allocation over the virtual code: leaf rows
	// are fixed; temporaries are recycled once their last consumer has
	// executed. An instruction acquires its destination before releasing
	// its operands, so a destination row never aliases its own operand
	// rows (the n-ary forms accumulate in place). A slot freed during
	// level L enters the free list only at the L→L+1 boundary: within one
	// level no instruction may overwrite a row a same-level neighbor
	// still reads, which is what lets the blocked executor run one
	// level's instructions in any order (or in parallel).
	remaining := make([]int32, n)
	for _, vi := range vcode {
		for _, o := range vi.ops {
			remaining[o]++
		}
	}
	row := make([]int32, n)
	for i := range row {
		row[i] = -1
	}
	for id, l := range leaf {
		if l >= 0 {
			row[id] = l
		}
	}
	var free, pendingFree []int32
	acquire := func() int32 {
		if k := len(free); k > 0 {
			s := free[k-1]
			free = free[:k-1]
			return s
		}
		s := int32(p.Slots)
		p.Slots++
		return s
	}
	curLevel := int32(-1)
	for _, vi := range vcode {
		if vi.lvl != curLevel {
			free = append(free, pendingFree...)
			pendingFree = pendingFree[:0]
			curLevel = vi.lvl
		}
		ops := make([]int32, len(vi.ops))
		for j, o := range vi.ops {
			if row[o] < 0 {
				panic(fmt.Sprintf("compile: operand node %d used before definition", o))
			}
			ops[j] = row[o]
		}
		row[vi.dst] = acquire()
		for _, o := range vi.ops {
			remaining[o]--
			if remaining[o] == 0 && !pinned[o] && leaf[o] < 0 {
				pendingFree = append(pendingFree, row[o])
			}
		}
		p.emit(row[vi.dst], vi.base, vi.inv, ops)
		p.levels = append(p.levels, vi.lvl)
	}

	// D rows: the row of each latch's (collapsed) D driver — a leaf, a
	// pinned temporary, or a constant row.
	p.D = make([]int32, nL)
	for i, d := range r.LatchD {
		if cv[d] != varying {
			p.D[i] = needConst(cv[d])
			continue
		}
		c := resolve(d)
		if row[c] < 0 {
			panic(fmt.Sprintf("compile: latch %d D driver %d has no row", i, c))
		}
		p.D[i] = row[c]
	}
	return p
}
