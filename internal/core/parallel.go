package core

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/delay"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// shard is one worker's slice of the replication space: a contiguous
// range of replication indices driven by a single lane-parallel session
// (at most sim.MaxLanes lanes interpreted, sim.CompiledMaxLanes
// compiled). Under the general-delay engine each shard additionally
// owns a private scalar power engine for the sampled cycles; under the
// word-parallel zero-delay engines sampled cycles stay packed and
// engine is nil.
type shard struct {
	ps     sim.LaneSession
	engine sim.PowerEngine
	lanes  int
	powers []float64 // per-block lane powers, round-major: [round*lanes + lane]
	cov    []float64 // per-round covariate scratch (control-variate runs only)
	counts []uint64  // per-node toggle accumulator (breakdown streams only)
	snap   []uint64  // counts snapshot at the block's merge-consumed round
}

// newShards builds the canonical shard layout over replications
// [lo, hi): SplitRange into at least `workers` shards (so the pool is
// saturated) and enough that none exceeds the backend's lane width.
// Replication r keeps its globally fixed seed baseSeed+1+r regardless
// of the layout, and lane counts differ by at most one. Both
// parallelTail and StreamReplications build their shards here, so
// in-process and cluster runs cannot drift apart.
func newShards(tb *Testbench, src vectors.Factory, baseSeed int64, opts Options, plan vr.Plan, lo, hi, workers int, packedSampled, useCov bool) ([]*shard, error) {
	backend := opts.Backend.Canonical()
	n := hi - lo
	nShards := workers
	if min := (n + sim.MaxLanesFor(backend) - 1) / sim.MaxLanesFor(backend); nShards < min {
		nShards = min
	}
	shards := make([]*shard, 0, nShards)
	for _, b := range SplitRange(lo, hi, nShards) {
		lanes := b[1] - b[0]
		srcs := make([]vectors.Source, lanes)
		for k := range srcs {
			var err error
			if srcs[k], err = replicationSource(src, baseSeed, b[0]+k, plan); err != nil {
				return nil, err
			}
		}
		sh := &shard{
			ps: sim.NewLaneSessionConfig(backend, tb.Circuit, srcs, sim.SessionConfig{
				CacheBudget: opts.CacheBudget,
				Workers:     opts.SessionWorkers,
			}),
			lanes: lanes,
		}
		if !packedSampled {
			sh.engine = sim.NewEventDriven(tb.Circuit, tb.Delays)
		}
		if useCov {
			sh.cov = make([]float64, lanes)
		}
		shards = append(shards, sh)
	}
	return shards, nil
}

// EstimateParallel runs the DIPE flow with many independent replications
// advanced concurrently. Interval selection runs once on a scalar
// session seeded baseSeed (exactly like Estimate); sampling then shards
// opts.Replications independent sequences — replication r is seeded
// baseSeed+1+r, a fixed lane→seed mapping — across a goroutine worker
// pool. Each worker drives a bit-packed zero-delay session (up to 64
// replications per machine word) through the hidden cycles of the
// independence interval and hands each lane to a scalar event-driven
// simulator on sampled cycles. Samples are merged into the stopping
// criterion deterministically (round-major, in replication order), so
// the result is reproducible and independent of opts.Workers and of
// goroutine scheduling.
//
// Compared to Estimate, the power samples come from Replications
// parallel sequences instead of one long sequence; samples remain
// i.i.d. across replications by construction (independent seeds), and
// within a replication at the selected independence interval.
func EstimateParallel(tb *Testbench, src vectors.Factory, baseSeed int64, opts Options) (Result, error) {
	return EstimateParallelCtx(context.Background(), tb, src, baseSeed, opts)
}

// EstimateParallelCtx is EstimateParallel with cancellation: the
// sampling loop checks ctx between merged blocks and returns the partial
// (unconverged) result together with ctx.Err() when the context is
// cancelled. The dipe-server job manager uses this to abort jobs.
func EstimateParallelCtx(ctx context.Context, tb *Testbench, src vectors.Factory, baseSeed int64, opts Options) (Result, error) {
	// Phase 1 (interval selection on a scalar session seeded baseSeed)
	// and plan resolution freeze into a ResumePoint; the sampling tail
	// runs from it. The split is the checkpoint seam the durable job
	// store persists across server restarts — the uninterrupted path
	// here is literally prepare-then-resume, so a resumed run cannot
	// diverge from it.
	start := time.Now()
	rp, err := PreparePlanCtx(ctx, tb, src, baseSeed, opts, nil)
	if err != nil {
		return Result{}, err
	}
	res, err := EstimateParallelResumeCtx(ctx, tb, src, baseSeed, opts, rp)
	res.Elapsed = time.Since(start)
	return res, err
}

// EstimateParallelWithInterval is the fixed-interval variant of
// EstimateParallel (the parallel analogue of EstimateWithInterval): it
// skips selection and samples every replication at the given interval.
func EstimateParallelWithInterval(tb *Testbench, src vectors.Factory, baseSeed int64, opts Options, interval int) (Result, error) {
	return EstimateParallelWithIntervalCtx(context.Background(), tb, src, baseSeed, opts, interval)
}

// EstimateParallelWithIntervalCtx is EstimateParallelWithInterval with
// cancellation (see EstimateParallelCtx).
func EstimateParallelWithIntervalCtx(ctx context.Context, tb *Testbench, src vectors.Factory, baseSeed int64, opts Options, interval int) (Result, error) {
	start := time.Now()
	rp, err := PreparePlanCtx(ctx, tb, src, baseSeed, opts, &interval)
	if err != nil {
		return Result{}, err
	}
	res, err := EstimateParallelResumeCtx(ctx, tb, src, baseSeed, opts, rp)
	res.Elapsed = time.Since(start)
	return res, err
}

// parallelTail runs the parallel sampling/stopping phase at a fixed
// interval, optionally seeded with an already-collected random sequence
// (consumed only when opts.ReuseTestSamples is set, as in estimateTail).
// On cancellation it returns the partial result together with ctx.Err().
//
// Engine selection: under zero-delay mode sampled cycles run entirely
// word-parallel (PackedSession.StepSampled) and no scalar simulator is
// built at all; under general-delay mode each shard owns a scalar
// event-driven engine and lanes are extracted per sampled cycle. A
// general-delay run whose delay table is all-zero is upgraded to the
// packed engine too — the transition sets are identical (see
// delay.Table.AllZero), though power sums may differ from per-lane
// event-driven simulation in the last ulp because the summation order
// changes.
func parallelTail(ctx context.Context, tb *Testbench, src vectors.Factory, baseSeed int64, opts Options, interval int, seed []float64, seedToggles []uint64, plan vr.Plan) (Result, error) {
	reps := opts.Replications
	if reps == 0 {
		reps = sim.MaxLanes
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}
	useCov := plan.NeedsCovariate()
	backend := opts.Backend.Canonical()
	packedSampled := (opts.Mode.IsZeroDelay() || tb.Delays.AllZero()) && !useCov
	// The reported engine must track both the sampled-phase upgrade
	// (including the implicit one a general-delay run takes when its
	// delay table is all-zero — see delay.Table.AllZero) AND the backend
	// that actually observed the sampled cycles: a compiled-backend run
	// whose sampled phase stays word-parallel reports the compiled
	// zero-delay engine, not the packed interpreter.
	engineName, delayName := sim.EnginePackedZeroDelay, delay.Zero{}.Name()
	if packedSampled && backend == sim.BackendCompiled {
		engineName = sim.EngineCompiledZeroDelay
	}
	if !packedSampled {
		engineName, delayName = sim.EngineEventDriven, tb.Delays.ModelName
	}

	shards, err := newShards(tb, src, baseSeed, opts, plan, 0, reps, workers, packedSampled, useCov)
	if err != nil {
		return Result{}, err
	}
	tr := obs.TraceFrom(ctx)
	tr.Event("shard",
		"shards", strconv.Itoa(len(shards)),
		"workers", strconv.Itoa(workers),
		"replications", strconv.Itoa(reps),
		"interval", strconv.Itoa(interval))

	// Warm every replication up from reset in parallel.
	runShards(shards, workers, func(sh *shard) {
		sh.ps.StepHiddenN(opts.WarmupCycles)
	})

	// The pooled stopping state is the exported Merger — the same code
	// the distributed coordinator merges remote partial results through —
	// so in-process and cluster runs share one merge order and one budget
	// rule by construction.
	m, err := NewMerger(opts)
	if err != nil {
		return Result{}, err
	}
	if opts.ReuseTestSamples {
		m.Seed(seed)
	}

	// Sampling proceeds in blocks of `rounds` rounds; one round yields
	// one sample per replication. Workers fill their shard's power
	// buffers concurrently; the merge into the criterion is single-
	// threaded and ordered (round-major, replication order).
	rounds := m.Rounds()
	shardPowers := make([][]float64, len(shards))
	shardLanes := make([]int, len(shards))
	for i, sh := range shards {
		sh.powers = make([]float64, rounds*sh.lanes)
		shardPowers[i] = sh.powers
		shardLanes[i] = sh.lanes
	}
	// Per-node attribution rides on the sessions' own accumulators: each
	// shard counts into a private array (no write contention) and the
	// arrays are summed once at the end. Integer addition is associative,
	// so the totals are independent of the shard layout. The block loop
	// steps exactly the rounds the merger consumes, so at any exit the
	// accumulated counts cover exactly the merged samples.
	var shardCounts [][]uint64
	if opts.Breakdown {
		shardCounts = make([][]uint64, len(shards))
		for i, sh := range shards {
			shardCounts[i] = make([]uint64, tb.Circuit.NumNodes())
			sh.ps.AccumulateToggles(shardCounts[i])
		}
	}
	weights := tb.Weights()
	result := func(converged bool) Result {
		var hidden, sampled uint64
		for _, sh := range shards {
			h, s := sh.ps.CycleCounts()
			hidden += h
			sampled += s
		}
		// Every exit fires a final Progress snapshot so long-running
		// callers (the dipe-server job manager) never show a stale last
		// block after convergence, budget exhaustion or cancellation.
		if opts.Progress != nil {
			opts.Progress(m.Progress(interval))
		}
		res := Result{
			Power:         m.Estimate(),
			Interval:      interval,
			SampleSize:    m.N(),
			HalfWidth:     m.HalfWidth(),
			HiddenCycles:  hidden,
			SampledCycles: sampled,
			Criterion:     m.CriterionName(),
			Engine:        engineName,
			Backend:       string(backend),
			DelayModel:    delayName,
			Variance:      plan.Label(),
			CVBeta:        plan.Beta,
			Converged:     converged,
		}
		if opts.Breakdown {
			res.Breakdown = foldBreakdown(tb, opts, m, seed, seedToggles, shardCounts)
			if opts.Metrics != nil {
				opts.Metrics.Power.Observe(res.Breakdown)
			}
		}
		return res
	}
	for !m.Done() {
		if err := ctx.Err(); err != nil {
			return result(false), err
		}
		// Run as many whole rounds as the sample budget allows (one round
		// is the reps-sample granularity of the parallel scheme); give up
		// unconverged only when not even one more round fits.
		n := m.NextRounds()
		if n < 1 {
			return result(false), nil
		}
		runShards(shards, workers, func(sh *shard) {
			for t := 0; t < n; t++ {
				sh.ps.StepHiddenN(interval)
				block := sh.powers[t*sh.lanes : (t+1)*sh.lanes]
				switch {
				case useCov:
					sh.ps.StepSampledBoth(sh.engine, weights, block, sh.cov)
					for k, x := range block {
						block[k] = plan.Apply(x, sh.cov[k])
					}
				case packedSampled:
					sh.ps.StepSampled(weights, block)
				default:
					sh.ps.StepSampledWith(sh.engine, weights, block)
				}
			}
		})
		if err := m.MergeBlock(shardPowers, shardLanes, n); err != nil {
			return result(false), err
		}
		tr.Event("merge-round",
			"rounds", strconv.Itoa(m.MergedRounds()),
			"samples", strconv.Itoa(m.N()),
			"halfWidth", strconv.FormatFloat(m.HalfWidth(), 'g', 6, 64))
		if opts.Progress != nil {
			opts.Progress(m.Progress(interval))
		}
	}
	return result(true), nil
}

// foldBreakdown sums the per-shard accumulators and finishes the
// attribution report through the shared FinishBreakdown seam.
func foldBreakdown(tb *Testbench, opts Options, m *Merger, seed []float64, seedToggles []uint64, shardCounts [][]uint64) *power.BreakdownReport {
	total := make([]uint64, tb.Circuit.NumNodes())
	for _, cnt := range shardCounts {
		for i, n := range cnt {
			total[i] += n
		}
	}
	return FinishBreakdown(tb, opts, m, len(seed), seedToggles, total)
}

// runShards applies fn to every shard with at most `workers` goroutines
// in flight, and waits for all of them.
func runShards(shards []*shard, workers int, fn func(*shard)) {
	if workers <= 1 || len(shards) == 1 {
		for _, sh := range shards {
			fn(sh)
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(sh *shard) {
			defer wg.Done()
			fn(sh)
			<-sem
		}(sh)
	}
	wg.Wait()
}
