package maxpower

import (
	"fmt"
	"math/rand"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Options configures a search.
type Options struct {
	// Budget is the total number of simulated cycles the search may
	// spend.
	Budget int
	// Restarts is the number of random restarts for HillClimb (the
	// budget is shared across restarts).
	Restarts int
	// Seed makes the search reproducible.
	Seed int64
}

// DefaultOptions returns a budget adequate for benchmark circuits.
func DefaultOptions() Options {
	return Options{Budget: 4096, Restarts: 8, Seed: 1}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Budget < 1 {
		return fmt.Errorf("maxpower: budget %d must be >= 1", o.Budget)
	}
	if o.Restarts < 1 {
		return fmt.Errorf("maxpower: restarts %d must be >= 1", o.Restarts)
	}
	return nil
}

// Result is the best cycle found.
type Result struct {
	// Power is the peak single-cycle power found, in the weights' unit
	// (watts with power.Model weights).
	Power float64
	// State, V1, V2 reproduce the peak cycle: the circuit in state
	// State with pattern V1 applied and settled, then switched to
	// pattern V2 (with the captured next state).
	State []bool
	V1    []bool
	V2    []bool
	// Cycles is the number of simulated cycles spent.
	Cycles int
}

// evaluator bundles the simulators for repeated cycle evaluation.
type evaluator struct {
	c       *netlist.Circuit
	zd      *sim.ZeroDelay
	ed      *sim.EventDriven
	weights []float64
	vals    []bool
	s2      []bool
	cycles  int
}

func newEvaluator(c *netlist.Circuit, dt *delay.Table, weights []float64) *evaluator {
	return &evaluator{
		c:       c,
		zd:      sim.NewZeroDelay(c),
		ed:      sim.NewEventDriven(c, dt),
		weights: weights,
		vals:    make([]bool, c.NumNodes()),
		s2:      make([]bool, len(c.Latches)),
	}
}

// eval returns the power of the cycle (v1, s1) -> (v2, delta(v1,s1)).
func (e *evaluator) eval(s1, v1, v2 []bool) float64 {
	e.zd.Settle(e.vals, v1, s1)
	e.zd.NextState(e.vals, e.s2)
	e.cycles++
	return e.ed.Cycle(e.vals, v2, e.s2, e.weights, nil)
}

// candidate is one point of the search space.
type candidate struct {
	s1, v1, v2 []bool
}

func newCandidate(c *netlist.Circuit) candidate {
	return candidate{
		s1: make([]bool, len(c.Latches)),
		v1: make([]bool, len(c.Inputs)),
		v2: make([]bool, len(c.Inputs)),
	}
}

func (cd *candidate) randomize(rng *rand.Rand) {
	for i := range cd.s1 {
		cd.s1[i] = rng.Intn(2) == 1
	}
	for i := range cd.v1 {
		cd.v1[i] = rng.Intn(2) == 1
	}
	for i := range cd.v2 {
		cd.v2[i] = rng.Intn(2) == 1
	}
}

func (cd *candidate) copyFrom(o candidate) {
	copy(cd.s1, o.s1)
	copy(cd.v1, o.v1)
	copy(cd.v2, o.v2)
}

// bit addresses one flippable bit across the three vectors.
func (cd *candidate) flip(i int) {
	switch {
	case i < len(cd.s1):
		cd.s1[i] = !cd.s1[i]
	case i < len(cd.s1)+len(cd.v1):
		cd.v1[i-len(cd.s1)] = !cd.v1[i-len(cd.s1)]
	default:
		cd.v2[i-len(cd.s1)-len(cd.v1)] = !cd.v2[i-len(cd.s1)-len(cd.v1)]
	}
}

func (cd *candidate) bits() int { return len(cd.s1) + len(cd.v1) + len(cd.v2) }

// RandomSearch returns the best of Budget random cycles.
func RandomSearch(c *netlist.Circuit, dt *delay.Table, weights []float64, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	ev := newEvaluator(c, dt, weights)
	cur := newCandidate(c)
	best := newCandidate(c)
	bestP := -1.0
	for ev.cycles < opts.Budget {
		cur.randomize(rng)
		if p := ev.eval(cur.s1, cur.v1, cur.v2); p > bestP {
			bestP = p
			best.copyFrom(cur)
		}
	}
	return Result{Power: bestP, State: best.s1, V1: best.v1, V2: best.v2, Cycles: ev.cycles}, nil
}

// HillClimb performs first-improvement bit-flip local search with random
// restarts, sharing the cycle budget across restarts.
func HillClimb(c *netlist.Circuit, dt *delay.Table, weights []float64, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	ev := newEvaluator(c, dt, weights)
	cur := newCandidate(c)
	best := newCandidate(c)
	bestP := -1.0
	nbits := cur.bits()
	order := rng.Perm(nbits)

	for restart := 0; restart < opts.Restarts && ev.cycles < opts.Budget; restart++ {
		cur.randomize(rng)
		curP := ev.eval(cur.s1, cur.v1, cur.v2)
		improved := true
		for improved && ev.cycles < opts.Budget {
			improved = false
			rng.Shuffle(nbits, func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, b := range order {
				if ev.cycles >= opts.Budget {
					break
				}
				cur.flip(b)
				if p := ev.eval(cur.s1, cur.v1, cur.v2); p > curP {
					curP = p
					improved = true
				} else {
					cur.flip(b) // revert
				}
			}
		}
		if curP > bestP {
			bestP = curP
			best.copyFrom(cur)
		}
	}
	return Result{Power: bestP, State: best.s1, V1: best.v1, V2: best.v2, Cycles: ev.cycles}, nil
}

// Replay re-simulates a result's cycle and returns its power; callers
// use it to verify reported peaks independently.
func Replay(c *netlist.Circuit, dt *delay.Table, weights []float64, r Result) float64 {
	ev := newEvaluator(c, dt, weights)
	return ev.eval(r.State, r.V1, r.V2)
}
