package vr

import "fmt"

// Mode names a variance-reduction transform. The zero value means no
// transform (the paper's plain estimator), so existing call sites keep
// their behaviour without change.
type Mode string

const (
	// ModeNone is the plain estimator: samples feed the stopping
	// criterion untransformed.
	ModeNone Mode = ""
	// ModeAntithetic pairs replications: odd replications draw the
	// mirrored input stream of their even partner, and the criterion
	// consumes pair means.
	ModeAntithetic Mode = "antithetic"
	// ModeControlVariate subtracts the regression-scaled, centred
	// zero-delay toggle power from every general-delay sample.
	ModeControlVariate Mode = "control-variate"
)

// Modes lists the valid canonical modes.
func Modes() []Mode { return []Mode{ModeNone, ModeAntithetic, ModeControlVariate} }

// Canonical maps "none" to the zero value and returns every other
// value unchanged.
func (m Mode) Canonical() Mode {
	if m == "none" {
		return ModeNone
	}
	return m
}

// String implements fmt.Stringer; the zero value prints as "none".
func (m Mode) String() string {
	if m.Canonical() == ModeNone {
		return "none"
	}
	return string(m)
}

// Validate rejects unknown modes.
func (m Mode) Validate() error {
	switch m.Canonical() {
	case ModeNone, ModeAntithetic, ModeControlVariate:
		return nil
	}
	return fmt.Errorf("vr: unknown variance-reduction mode %q (want %q, %q or %q)",
		string(m), "none", ModeAntithetic, ModeControlVariate)
}

// ParseMode resolves a user-supplied mode string, accepting the short
// aliases "anti" and "cv" alongside the canonical names. The empty
// string and "none" parse to ModeNone.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "none":
		return ModeNone, nil
	case "anti", string(ModeAntithetic):
		return ModeAntithetic, nil
	case "cv", string(ModeControlVariate):
		return ModeControlVariate, nil
	}
	return "", fmt.Errorf("vr: unknown variance-reduction mode %q (want none, antithetic or control-variate)", s)
}

// DefaultControlCycles is the default length, in packed 64-lane
// zero-delay sweeps, of the pre-run that estimates the control-variate
// covariate mean. 4096 sweeps observe 64x4096 ~ 262k per-cycle toggle
// powers, putting the mean's standard error two orders of magnitude
// under the paper's 5% accuracy target while costing only hidden-cycle
// rates.
const DefaultControlCycles = 4096

// Spec is the user-facing variance-reduction request, carried in
// core.Options.Variance. The zero value means no transform.
type Spec struct {
	// Mode selects the transform.
	Mode Mode
	// BetaOverride, when non-nil, forces the control-variate coefficient
	// instead of regression-estimating it from phase-1 data. Forcing 0
	// disables the correction entirely — Y = X exactly, no covariate
	// mean pre-run — which is the degeneracy the property tests pin the
	// estimator to.
	BetaOverride *float64
	// ControlCycles overrides the covariate-mean pre-run length in
	// packed sweeps (0 = DefaultControlCycles). Ignored outside
	// ModeControlVariate.
	ControlCycles int
}

// Validate checks the spec in isolation. reps is the effective
// replication count of the run and zeroDelay whether sampled cycles are
// observed zero-delay; both interact with the transforms (pairing needs
// an even lane count, the covariate must not equal the sample).
func (s Spec) Validate(reps int, zeroDelay bool) error {
	if err := s.Mode.Validate(); err != nil {
		return err
	}
	if s.ControlCycles < 0 {
		return fmt.Errorf("vr: negative ControlCycles %d", s.ControlCycles)
	}
	switch s.Mode.Canonical() {
	case ModeAntithetic:
		if reps < 2 || reps%2 != 0 {
			return fmt.Errorf("vr: antithetic pairing needs an even replication count >= 2, got %d", reps)
		}
	case ModeControlVariate:
		if zeroDelay {
			return fmt.Errorf("vr: control variates need general-delay sampling (under zero-delay the covariate equals the sample)")
		}
	}
	return nil
}

// Plan is a resolved transform: the mode plus the coefficients frozen
// before the sampled phase. It is pure data — it travels verbatim over
// the cluster protocol and is applied identically everywhere, keeping
// distributed runs bit-identical to single-process ones.
type Plan struct {
	// Mode is the transform in effect.
	Mode Mode `json:"mode,omitempty"`
	// Beta is the control-variate coefficient (0 outside
	// ModeControlVariate, and exactly 0 when the correction is forced
	// off).
	Beta float64 `json:"beta,omitempty"`
	// ControlMean is the covariate mean mu_C the correction centres on.
	ControlMean float64 `json:"controlMean,omitempty"`
}

// Apply transforms one sample: Y = X - Beta (C - ControlMean) under
// ModeControlVariate, X unchanged otherwise. A zero Beta returns X
// bit-exactly (no floating-point round trip), which is what makes the
// forced-zero degeneracy reproduce the plain estimator sample for
// sample.
func (p Plan) Apply(x, c float64) float64 {
	if p.Mode.Canonical() != ModeControlVariate || p.Beta == 0 {
		return x
	}
	return x - p.Beta*(c-p.ControlMean)
}

// NeedsCovariate reports whether the sampled phase must observe the
// zero-delay toggle power alongside each sample.
func (p Plan) NeedsCovariate() bool {
	return p.Mode.Canonical() == ModeControlVariate && p.Beta != 0
}

// Pairing reports whether the merge layer must average replication
// pairs before feeding the stopping criterion.
func (p Plan) Pairing() bool { return p.Mode.Canonical() == ModeAntithetic }

// Validate rejects plans no estimator could run.
func (p Plan) Validate() error { return p.Mode.Validate() }

// Label renders the plan's mode for result records: the canonical mode
// name, or "" for the plain estimator.
func (p Plan) Label() string {
	if p.Mode.Canonical() == ModeNone {
		return ""
	}
	return string(p.Mode.Canonical())
}

// PairMeans appends the means of consecutive pairs of round (which must
// have even length) to out and returns it: the criterion-ready samples
// of one antithetic round.
func PairMeans(round []float64, out []float64) []float64 {
	if len(round)%2 != 0 {
		panic(fmt.Sprintf("vr: PairMeans over odd round length %d", len(round)))
	}
	for i := 0; i < len(round); i += 2 {
		out = append(out, (round[i]+round[i+1])/2)
	}
	return out
}

// EstimateBeta returns the least-squares control-variate coefficient
// cov(x, c)/var(c) over paired observations. It returns 0 — disabling
// the correction — when fewer than two pairs exist or the covariate is
// (numerically) constant, so a degenerate calibration can never inject
// a wild coefficient.
func EstimateBeta(xs, cs []float64) float64 {
	n := len(xs)
	if n != len(cs) {
		panic(fmt.Sprintf("vr: EstimateBeta over %d samples but %d covariates", n, len(cs)))
	}
	if n < 2 {
		return 0
	}
	var mx, mc float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		mc += cs[i]
	}
	mx /= float64(n)
	mc /= float64(n)
	var sxc, scc float64
	for i := 0; i < n; i++ {
		dc := cs[i] - mc
		sxc += (xs[i] - mx) * dc
		scc += dc * dc
	}
	if scc == 0 {
		return 0
	}
	return sxc / scc
}
