#!/usr/bin/env bash
# check_pkg_docs.sh — fail if any Go package in the module lacks a
# package comment (doc.go convention; `go doc` must be usable end to
# end). Used by the CI docs job and runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)
if [ -n "$missing" ]; then
    echo "packages missing a package comment:" >&2
    echo "$missing" >&2
    exit 1
fi
echo "all $(go list ./... | wc -l) packages have package comments"
