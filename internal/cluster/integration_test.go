package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// TestServiceOverCluster drives the full production wiring over
// loopback HTTP: a dipe-server-shaped service whose dispatcher is a
// cluster coordinator, plus two workers. It checks the readiness
// lifecycle (not ready until a worker registers), runtime worker
// registration through the service API, batch submission across the
// cluster, and that cluster results match a local-dispatcher service
// bit for bit.
func TestServiceOverCluster(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Heartbeat: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	svc := service.New(service.Config{Workers: 2, Dispatcher: coord})
	defer svc.Close()
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	getJSON := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get(api.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}
	postJSON := func(path string, body, v any) int {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(api.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("POST %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	// No workers yet: alive but not ready.
	if code := getJSON("/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code := getJSON("/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before workers = %d, want 503", code)
	}

	// Two workers register themselves over the service API.
	for i := 0; i < 2; i++ {
		wk := httptest.NewServer(NewWorker(WorkerConfig{}).Handler())
		defer wk.Close()
		if code := postJSON("/v1/cluster/workers", service.RegisterWorkerRequest{URL: wk.URL}, nil); code != http.StatusCreated {
			t.Fatalf("worker registration = %d, want 201", code)
		}
	}
	if code := getJSON("/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz with workers = %d, want 200", code)
	}
	var workers map[string][]service.WorkerStatus
	if code := getJSON("/v1/cluster/workers", &workers); code != http.StatusOK {
		t.Fatalf("list workers = %d", code)
	}
	if len(workers["workers"]) != 2 {
		t.Fatalf("listed %d workers, want 2", len(workers["workers"]))
	}

	// A batch across the cluster dispatcher completes.
	jobs := []service.JobRequest{
		{Circuit: "s27", Seed: 5, Options: service.OptionsSpec{Replications: 8, Workers: 1}},
		{Circuit: "s298", Seed: 9, Options: service.OptionsSpec{Replications: 16, Workers: 1}},
	}
	var batch service.BatchResponse
	if code := postJSON("/v1/batch", service.BatchRequest{Jobs: jobs}, &batch); code != http.StatusAccepted {
		t.Fatalf("batch = %d, want 202", code)
	}
	results := make(map[string]*service.ResultView)
	for _, id := range batch.IDs {
		var view service.JobView
		if code := getJSON(fmt.Sprintf("/v1/jobs/%s/wait?timeout=60s", id), &view); code != http.StatusOK {
			t.Fatalf("wait %s = %d", id, code)
		}
		if view.State != service.StateDone || view.Result == nil {
			t.Fatalf("job %s: state %s error %q", id, view.State, view.Error)
		}
		results[view.Request.Circuit] = view.Result
	}

	// Stats name the cluster dispatcher.
	var stats service.StatsResponse
	if code := getJSON("/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Dispatcher != "cluster" {
		t.Fatalf("stats dispatcher %q, want cluster", stats.Dispatcher)
	}

	// The same jobs on a plain local service give bit-identical results.
	local := service.New(service.Config{Workers: 2})
	defer local.Close()
	lapi := httptest.NewServer(local.Handler())
	defer lapi.Close()
	for _, jr := range jobs {
		b, _ := json.Marshal(jr)
		resp, err := http.Post(lapi.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var view service.JobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		wresp, err := http.Get(lapi.URL + "/v1/jobs/" + view.ID + "/wait?timeout=60s")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(wresp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		wresp.Body.Close()
		if view.State != service.StateDone || view.Result == nil {
			t.Fatalf("local job %s: state %s error %q", view.ID, view.State, view.Error)
		}
		cl := results[jr.Circuit]
		lo := view.Result
		if cl.Power != lo.Power || cl.HalfWidth != lo.HalfWidth || cl.SampleSize != lo.SampleSize ||
			cl.HiddenCycles != lo.HiddenCycles || cl.SampledCycles != lo.SampledCycles {
			t.Errorf("%s: cluster result %+v differs from local %+v", jr.Circuit, cl, lo)
		}
	}
}
