// Package logic defines the gate-level logic primitives used by the
// netlist representation and the simulators: gate kinds, their boolean
// semantics, and helpers for evaluating a gate over its fanin values.
//
// The simulation model is two-valued (true/false). Sequential elements
// (DFFs) are represented as a gate kind so that a netlist is a single
// homogeneous node array, but their evaluation is handled by the
// simulators (a DFF's output is state, not a combinational function of
// its fanin).
//
// The package has no direct counterpart in the paper — it is the shared
// substrate under the circuit model of Section II (gate-level
// sequential circuits whose state elements induce the temporal power
// correlation DIPE is designed around).
package logic
