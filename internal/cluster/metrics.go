package cluster

import "repro/internal/obs"

// clusterMetrics is the coordinator's registry-backed telemetry: one
// labeled family per degradation counter, keyed by worker base URL, so
// every cell that /v1/cluster/workers reports is also a /metrics series
// — the JSON view and the scrape cannot drift because they read the
// same counters. The coordinator always has one (an internal registry
// backs it when CoordinatorConfig.Obs is nil), so workerState holds
// real instrument handles unconditionally.
type clusterMetrics struct {
	grants    *obs.CounterVec
	expiries  *obs.CounterVec
	steals    *obs.CounterVec
	reassigns *obs.CounterVec
	failures  *obs.CounterVec
	retries   *obs.CounterVec
	blockLat  *obs.HistogramVec
}

func newClusterMetrics(r *obs.Registry) *clusterMetrics {
	return &clusterMetrics{
		grants: r.CounterVec("dipe_cluster_lease_grants_total",
			"Replication-range leases granted, by worker.", "worker"),
		expiries: r.CounterVec("dipe_cluster_lease_expiries_total",
			"Leases reclaimed after a missed block deadline, by worker.", "worker"),
		steals: r.CounterVec("dipe_cluster_lease_steals_total",
			"Expired leases taken over by a different worker, by thief.", "worker"),
		reassigns: r.CounterVec("dipe_cluster_reassignments_total",
			"Mid-range lease handovers inherited, by worker.", "worker"),
		failures: r.CounterVec("dipe_cluster_worker_failures_total",
			"Stream and heartbeat failures, by worker.", "worker"),
		retries: r.CounterVec("dipe_cluster_worker_retries_total",
			"Failed stream attempts (errors and expiries), by worker.", "worker"),
		blockLat: r.HistogramVec("dipe_cluster_stream_block_seconds",
			"Inter-block delivery latency of /v1/run streams, by worker.",
			nil, "worker"),
	}
}
