package netlist

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// buildToggle constructs the smallest interesting sequential circuit:
// a single DFF whose D input is the inverse of its output.
func buildToggle(t *testing.T) *Circuit {
	t.Helper()
	c := NewCircuit("toggle")
	q, err := c.AddNode("Q", logic.DFF)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := c.AddNode("NQ", logic.Not, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetFanin(q, inv); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkOutput(inv); err != nil {
		t.Fatal(err)
	}
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildAndFreeze(t *testing.T) {
	c := buildToggle(t)
	if got := c.NumGates(); got != 1 {
		t.Errorf("NumGates = %d, want 1", got)
	}
	if got := len(c.Latches); got != 1 {
		t.Errorf("latches = %d, want 1", got)
	}
	if got := len(c.Order()); got != 1 {
		t.Errorf("order length = %d, want 1", got)
	}
	// Fanout derivation: Q drives NQ, NQ drives Q.
	q, nq := c.Lookup("Q"), c.Lookup("NQ")
	if len(c.Nodes[q].Fanout) != 1 || c.Nodes[q].Fanout[0] != nq {
		t.Errorf("Q fanout = %v", c.Nodes[q].Fanout)
	}
	if len(c.Nodes[nq].Fanout) != 1 || c.Nodes[nq].Fanout[0] != q {
		t.Errorf("NQ fanout = %v", c.Nodes[nq].Fanout)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	c := NewCircuit("dup")
	if _, err := c.AddNode("A", logic.Input); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNode("A", logic.Input); err == nil {
		t.Fatal("duplicate AddNode succeeded")
	}
}

func TestFrozenCircuitIsImmutable(t *testing.T) {
	c := buildToggle(t)
	if _, err := c.AddNode("X", logic.Input); err == nil {
		t.Error("AddNode on frozen circuit succeeded")
	}
	if err := c.SetFanin(0, 0); err == nil {
		t.Error("SetFanin on frozen circuit succeeded")
	}
	if err := c.MarkOutput(0); err == nil {
		t.Error("MarkOutput on frozen circuit succeeded")
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	c := NewCircuit("cyc")
	a, _ := c.AddNode("A", logic.Input)
	g1, _ := c.AddNode("G1", logic.And)
	g2, _ := c.AddNode("G2", logic.Or)
	if err := c.SetFanin(g1, a, g2); err != nil {
		t.Fatal(err)
	}
	if err := c.SetFanin(g2, g1, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Freeze(); err == nil {
		t.Fatal("Freeze accepted a combinational cycle")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSequentialFeedbackAllowed(t *testing.T) {
	// Feedback through a DFF must not be reported as a cycle.
	if c := buildToggle(t); !c.Frozen() {
		t.Fatal("toggle circuit did not freeze")
	}
}

func TestFaninArityValidation(t *testing.T) {
	c := NewCircuit("arity")
	a, _ := c.AddNode("A", logic.Input)
	if _, err := c.AddNode("G", logic.And, a); err != nil {
		t.Fatal(err) // arity is checked at Freeze, not AddNode
	}
	if err := c.Freeze(); err == nil {
		t.Fatal("Freeze accepted a 1-input AND")
	}
}

func TestNotWithTwoInputsRejected(t *testing.T) {
	c := NewCircuit("arity2")
	a, _ := c.AddNode("A", logic.Input)
	b, _ := c.AddNode("B", logic.Input)
	if _, err := c.AddNode("G", logic.Not, a, b); err != nil {
		t.Fatal(err)
	}
	if err := c.Freeze(); err == nil {
		t.Fatal("Freeze accepted a 2-input NOT")
	}
}

func TestLevelization(t *testing.T) {
	// A -> G1 -> G2 -> G3 chain: levels 1, 2, 3.
	c := NewCircuit("chain")
	a, _ := c.AddNode("A", logic.Input)
	g1, _ := c.AddNode("G1", logic.Not, a)
	g2, _ := c.AddNode("G2", logic.Not, g1)
	g3, _ := c.AddNode("G3", logic.Not, g2)
	_ = c.MarkOutput(g3)
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	wantLevels := map[NodeID]int{a: 0, g1: 1, g2: 2, g3: 3}
	for id, want := range wantLevels {
		if got := c.Level(id); got != want {
			t.Errorf("Level(%s) = %d, want %d", c.Nodes[id].Name, got, want)
		}
	}
	if c.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", c.Depth())
	}
	// Order respects dependencies.
	pos := map[NodeID]int{}
	for i, id := range c.Order() {
		pos[id] = i
	}
	if !(pos[g1] < pos[g2] && pos[g2] < pos[g3]) {
		t.Errorf("order %v violates dependencies", c.Order())
	}
}

const miniBench = `
# tiny test circuit
INPUT(A)
INPUT(B)
OUTPUT(Y)
Q = DFF(D)
N1 = NAND(A, Q)
D = XOR(N1, B)
Y = NOT(D)
`

func TestParseBench(t *testing.T) {
	c, err := ParseBenchString("mini", miniBench)
	if err != nil {
		t.Fatal(err)
	}
	st := c.ComputeStats()
	if st.Inputs != 2 || st.Outputs != 1 || st.Latches != 1 || st.Gates != 3 {
		t.Fatalf("stats = %+v", st)
	}
	q := c.Lookup("Q")
	d := c.Lookup("D")
	if c.Nodes[q].Fanin[0] != d {
		t.Errorf("DFF D pin resolves to %v, want %v", c.Nodes[q].Fanin[0], d)
	}
}

func TestParseBenchForwardReference(t *testing.T) {
	// D is referenced by the DFF before it is defined: must parse.
	if _, err := ParseBenchString("fwd", "INPUT(A)\nQ = DFF(D)\nD = NOT(A)\n"); err != nil {
		t.Fatal(err)
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"undefined", "INPUT(A)\nG = NOT(B)\n", "undefined"},
		{"unknown fn", "INPUT(A)\nG = FROB(A)\n", "unknown gate function"},
		{"malformed", "INPUT(A)\nG = NOT A\n", "malformed"},
		{"no assign", "INPUT(A)\nNOT(A)\n", "" /* any error */},
		{"dup", "INPUT(A)\nINPUT(A)\n", "duplicate"},
		{"undef output", "INPUT(A)\nOUTPUT(Z)\nG = NOT(A)\n", "undefined"},
		{"empty arg", "INPUT(A)\nG = AND(A,)\n", "empty argument"},
		{"input as fn", "INPUT(A)\nG = INPUT(A)\n", "INPUT used as gate"},
	}
	for _, tc := range cases {
		_, err := ParseBenchString(tc.name, tc.text)
		if err == nil {
			t.Errorf("%s: parse succeeded, want error", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseBenchComments(t *testing.T) {
	text := "INPUT(A) # trailing comment\n# whole-line comment\nG = NOT(A)\n"
	c, err := ParseBenchString("c", text)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lookup("G") == InvalidNode {
		t.Fatal("node G missing")
	}
}

func TestWriteBenchRoundTrip(t *testing.T) {
	c1, err := ParseBenchString("mini", miniBench)
	if err != nil {
		t.Fatal(err)
	}
	text := BenchString(c1)
	c2, err := ParseBenchString("mini", text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if BenchString(c2) != text {
		t.Fatal("round trip is not a fixed point")
	}
	s1, s2 := c1.ComputeStats(), c2.ComputeStats()
	if s1 != s2 {
		t.Fatalf("stats changed across round trip: %+v vs %+v", s1, s2)
	}
}

func TestLookupMissing(t *testing.T) {
	c := buildToggle(t)
	if c.Lookup("nope") != InvalidNode {
		t.Fatal("Lookup of missing name did not return InvalidNode")
	}
}

func TestStatsString(t *testing.T) {
	st := buildToggle(t).ComputeStats()
	s := st.String()
	if !strings.Contains(s, "toggle") || !strings.Contains(s, "1 DFF") {
		t.Errorf("Stats.String() = %q", s)
	}
}

func TestSortedNodeNames(t *testing.T) {
	c := buildToggle(t)
	names := c.SortedNodeNames()
	if len(names) != 2 || names[0] != "NQ" || names[1] != "Q" {
		t.Errorf("SortedNodeNames = %v", names)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	text := "input(A)\noutput(Y)\nY = not(A)\n"
	c, err := ParseBenchString("lower", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 1 || len(c.Outputs) != 1 {
		t.Fatalf("lowercase keywords not handled: %+v", c.ComputeStats())
	}
}
