#!/usr/bin/env bash
# Regenerates BENCH_7.json: estimation duty-cycle throughput of the
# cache-blocked and level-parallel compiled executors vs the linear
# one-pass executor on s38417 and a ~100k-gate synthetic circuit.
# Optional first argument overrides the number of timed duty-cycle
# sweeps (default 3).
set -euo pipefail
cd "$(dirname "$0")/.."

sweeps="${1:-3}"
go run ./cmd/dipe-experiments -large -large-sweeps "$sweeps" -large-json BENCH_7.json
