package delay

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func chainCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("chain")
	a, _ := c.AddNode("A", logic.Input)
	g1, _ := c.AddNode("G1", logic.Not, a)
	g2, _ := c.AddNode("G2", logic.And, g1, a)
	g3, _ := c.AddNode("G3", logic.Or, g2, g1)
	_ = c.MarkOutput(g3)
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestZeroModel(t *testing.T) {
	if (Zero{}).NodeDelay(logic.And, 5) != 0 {
		t.Fatal("zero model returned nonzero delay")
	}
	if (Zero{}).Name() == "" {
		t.Fatal("empty name")
	}
}

func TestUnitModel(t *testing.T) {
	m := Unit{}
	if m.NodeDelay(logic.And, 3) != 1 || m.NodeDelay(logic.Xor, 0) != 1 {
		t.Fatal("unit model gate delay != 1")
	}
	if m.NodeDelay(logic.Input, 3) != 0 || m.NodeDelay(logic.DFF, 1) != 0 {
		t.Fatal("unit model source delay != 0")
	}
}

func TestFanoutLoadedModel(t *testing.T) {
	m := FanoutLoaded{Base: 200, PerFanout: 100, InvDiscout: 80}
	if got := m.NodeDelay(logic.And, 3); got != 500 {
		t.Fatalf("AND fo=3 delay = %d, want 500", got)
	}
	if got := m.NodeDelay(logic.Not, 1); got != 220 {
		t.Fatalf("NOT fo=1 delay = %d, want 220", got)
	}
	if got := m.NodeDelay(logic.Input, 9); got != 0 {
		t.Fatalf("input delay = %d, want 0", got)
	}
	// Delay never drops below 1 ps for combinational gates.
	m2 := FanoutLoaded{Base: 10, PerFanout: 0, InvDiscout: 100}
	if got := m2.NodeDelay(logic.Not, 1); got != 1 {
		t.Fatalf("clamped delay = %d, want 1", got)
	}
}

func TestBuildTable(t *testing.T) {
	c := chainCircuit(t)
	tab := BuildTable(c, DefaultFanoutLoaded())
	if len(tab.Delays) != c.NumNodes() {
		t.Fatalf("table size %d, want %d", len(tab.Delays), c.NumNodes())
	}
	a := c.Lookup("A")
	if tab.Delays[a] != 0 {
		t.Fatalf("input delay %d", tab.Delays[a])
	}
	// G1 (NOT) drives G2 and G3: fanout 2 -> 200 + 200 - 80 = 320.
	g1 := c.Lookup("G1")
	if tab.Delays[g1] != 320 {
		t.Fatalf("G1 delay = %d, want 320", tab.Delays[g1])
	}
}

func TestMaxSettlingCoversDepth(t *testing.T) {
	c := chainCircuit(t)
	tab := BuildTable(c, DefaultFanoutLoaded())
	ms := tab.MaxSettling(c)
	if ms <= 0 {
		t.Fatalf("MaxSettling = %d", ms)
	}
	// It must be at least the largest single gate delay and at most the
	// sum of all gate delays.
	var maxD, sum Picoseconds
	for _, d := range tab.Delays {
		if d > maxD {
			maxD = d
		}
		sum += d
	}
	if ms < maxD || ms > sum {
		t.Fatalf("MaxSettling %d outside [%d,%d]", ms, maxD, sum)
	}
}

func TestDefaultSettlesWithinPaperClock(t *testing.T) {
	// The default coefficients must settle the deepest benchmark-scale
	// chain (~60 levels at fanout 4) within the paper's 50 ns period.
	m := DefaultFanoutLoaded()
	perLevel := m.NodeDelay(logic.And, 4)
	if total := 60 * perLevel; total > 50_000 {
		t.Fatalf("60 levels at fanout 4 = %d ps > 50 ns clock", total)
	}
}

func TestTableAllZero(t *testing.T) {
	c := chainCircuit(t)
	if !BuildTable(c, Zero{}).AllZero() {
		t.Error("zero table not AllZero")
	}
	if BuildTable(c, Unit{}).AllZero() {
		t.Error("unit table reported AllZero")
	}
	if BuildTable(c, DefaultFanoutLoaded()).AllZero() {
		t.Error("fanout table reported AllZero")
	}
}
