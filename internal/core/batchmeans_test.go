package core

import (
	"math"
	"testing"

	"repro/internal/bench89"
	"repro/internal/refsim"
	"repro/internal/vectors"
)

func TestBatchMeansMatchesReference(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	ref := refsim.Run(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 1)), 200, 120_000)

	res, err := EstimateBatchMeans(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 2)),
		DefaultOptions(), DefaultBatchCycles)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	dev := math.Abs(res.Power-ref.Power) / ref.Power
	if dev > 0.05+4*ref.RelStdErr() {
		t.Fatalf("deviation %.2f%% (est %g, ref %g)", 100*dev, res.Power, ref.Power)
	}
	// Every simulated power cycle is general-delay: hidden cycles only
	// from warm-up.
	if res.HiddenCycles != uint64(DefaultOptions().WarmupCycles) {
		t.Errorf("hidden cycles = %d, want warm-up only", res.HiddenCycles)
	}
	if res.SampleSize%DefaultBatchCycles != 0 {
		t.Errorf("sample size %d not a batch multiple", res.SampleSize)
	}
}

func TestBatchMeansCostsMoreSampledCyclesThanDIPE(t *testing.T) {
	// The paper's efficiency claim in miniature: DIPE spends most cycles
	// in the cheap zero-delay phase; the consecutive-cycle baseline pays
	// general-delay for every one. Compare sampled-cycle counts at equal
	// spec on a circuit with a non-trivial interval.
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	opts := DefaultOptions()

	dipeRes, err := Estimate(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 7)), opts)
	if err != nil {
		t.Fatal(err)
	}
	bmRes, err := EstimateBatchMeans(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 7)), opts, DefaultBatchCycles)
	if err != nil {
		t.Fatal(err)
	}
	if dipeRes.Interval == 0 {
		t.Skip("interval 0 selected; comparison not meaningful this seed")
	}
	if bmRes.SampledCycles < dipeRes.SampledCycles {
		t.Logf("note: batch-means used fewer sampled cycles (%d vs %d) — acceptable but unusual",
			bmRes.SampledCycles, dipeRes.SampledCycles)
	}
}

func TestBatchMeansValidation(t *testing.T) {
	c := bench89.S27()
	tb := DefaultTestbench(c)
	if _, err := EstimateBatchMeans(tb.NewSession(vectors.NewIID(4, 0.5, 1)), DefaultOptions(), 0); err == nil {
		t.Fatal("batch=0 accepted")
	}
	bad := DefaultOptions()
	bad.Alpha = 0
	if _, err := EstimateBatchMeans(tb.NewSession(vectors.NewIID(4, 0.5, 1)), bad, 16); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestBatchMeansMaxSamplesGuard(t *testing.T) {
	c := bench89.S27()
	tb := DefaultTestbench(c)
	opts := DefaultOptions()
	opts.Spec.RelErr = 0.0001
	opts.MaxSamples = 2048
	res, err := EstimateBatchMeans(tb.NewSession(vectors.NewIID(4, 0.5, 3)), opts, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("converged under unreachable spec")
	}
	if res.SampleSize > opts.MaxSamples {
		t.Fatalf("sample size %d exceeds cap", res.SampleSize)
	}
}
