package randtest

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Result holds the outcome of a randomness test on one sequence.
type Result struct {
	TestName string
	Z        float64 // standardized test statistic (Eq. 4 for the runs test)
	PValue   float64 // two-sided p-value 2(1 - Phi(|z|))
	N        int     // effective sequence length used by the test
	Runs     int     // number of runs observed (runs-based tests)
	M        int     // count of first-type symbols (ordinary runs test)
	K        int     // count of second-type symbols (ordinary runs test)
	// Degenerate marks sequences the test cannot discriminate (e.g., all
	// values equal after dichotomization). Degenerate sequences are
	// accepted: a constant power sequence carries no temporal correlation
	// that could bias the mean estimate.
	Degenerate bool
}

// Accept reports whether the randomness hypothesis is accepted at
// significance level alpha: |z| <= c with c = Phi^-1(1 - alpha/2), Eq. 7.
func (r Result) Accept(alpha float64) bool {
	if r.Degenerate {
		return true
	}
	c := stats.NormalQuantile(1 - alpha/2)
	return math.Abs(r.Z) <= c
}

// String renders the result compactly.
func (r Result) String() string {
	if r.Degenerate {
		return fmt.Sprintf("%s: degenerate (N=%d)", r.TestName, r.N)
	}
	return fmt.Sprintf("%s: z=%.3f p=%.4f (N=%d, U=%d)", r.TestName, r.Z, r.PValue, r.N, r.Runs)
}

// Test is a randomness test over a real-valued sequence. The estimation
// core treats the test as pluggable.
type Test interface {
	// Apply runs the test on the sequence.
	Apply(seq []float64) Result
	// Name identifies the test.
	Name() string
}

// minEffective is the minimum dichotomized sequence length for the
// normal approximation of the runs distribution to be usable; shorter
// (or single-symbol) sequences are reported as degenerate.
const minEffective = 20

// OrdinaryRuns is the paper's test: dichotomize the sequence about its
// median, count runs, and standardize with the continuity-corrected
// Eq. 4.
//
// Tie handling: power sequences are discrete (integer transition counts
// times capacitances), so a large fraction of values can equal the
// median — under low-activity inputs, sometimes more than half. Dropping
// ties (one textbook rule) would then discard most of the sequence and,
// worse, exactly the temporal clustering the test must detect. Instead,
// ties are assigned wholesale to whichever side of the dichotomy is
// smaller, which balances the symbol counts and preserves run structure.
// Any deterministic value-to-symbol map is valid under the randomness
// hypothesis because the test conditions on the observed symbol counts.
type OrdinaryRuns struct{}

// Name implements Test.
func (OrdinaryRuns) Name() string { return "ordinary-runs" }

// Apply implements Test.
func (OrdinaryRuns) Apply(seq []float64) Result {
	res := Result{TestName: "ordinary-runs"}
	med := stats.Median(seq)
	below, above := 0, 0
	for _, x := range seq {
		switch {
		case x < med:
			below++
		case x > med:
			above++
		}
	}
	// Symbol B: "high". Ties join the smaller strict side.
	tiesHigh := above < below
	symbols := make([]bool, len(seq))
	for i, x := range seq {
		if x > med || (x == med && tiesHigh) {
			symbols[i] = true
		}
	}
	m, k := 0, 0
	for _, s := range symbols {
		if s {
			m++
		} else {
			k++
		}
	}
	n := len(symbols)
	res.N, res.M, res.K = n, m, k
	if n < minEffective || m == 0 || k == 0 {
		res.Degenerate = true
		return res
	}
	u := 1
	for i := 1; i < n; i++ {
		if symbols[i] != symbols[i-1] {
			u++
		}
	}
	res.Runs = u
	res.Z = runsZ(u, m, k)
	res.PValue = 2 * (1 - stats.NormalCDF(math.Abs(res.Z)))
	return res
}

// runsZ computes the continuity-corrected z statistic of Eq. 4 for u runs
// over m symbols of one type and k of the other.
func runsZ(u, m, k int) float64 {
	fm, fk := float64(m), float64(k)
	n := fm + fk
	mean := 1 + 2*fm*fk/n
	varU := 2 * fm * fk * (2*fm*fk - n) / (n * n * (n - 1))
	if varU <= 0 {
		return 0
	}
	sd := math.Sqrt(varU)
	fu := float64(u)
	switch {
	case fu < mean-0.5:
		return (fu + 0.5 - mean) / sd
	case fu > mean+0.5:
		return (fu - 0.5 - mean) / sd
	default:
		// Within half a run of the expectation: the corrected statistic
		// is zero (both branches of Eq. 4 would overshoot).
		return 0
	}
}

// UpDownRuns is the runs-up-and-down test: the sequence of signs of
// successive differences is reduced to monotone runs. Under randomness
// the run count is asymptotically normal with mean (2N-1)/3 and variance
// (16N-29)/90. Adjacent equal values are collapsed first.
type UpDownRuns struct{}

// Name implements Test.
func (UpDownRuns) Name() string { return "updown-runs" }

// Apply implements Test.
func (UpDownRuns) Apply(seq []float64) Result {
	res := Result{TestName: "updown-runs"}
	// Signs of successive differences, skipping zero differences.
	signs := make([]bool, 0, len(seq))
	for i := 1; i < len(seq); i++ {
		switch {
		case seq[i] > seq[i-1]:
			signs = append(signs, true)
		case seq[i] < seq[i-1]:
			signs = append(signs, false)
		}
	}
	n := len(signs) + 1 // effective observation count
	res.N = n
	if len(signs) < minEffective {
		res.Degenerate = true
		return res
	}
	u := 1
	for i := 1; i < len(signs); i++ {
		if signs[i] != signs[i-1] {
			u++
		}
	}
	res.Runs = u
	fn := float64(n)
	mean := (2*fn - 1) / 3
	varU := (16*fn - 29) / 90
	if varU <= 0 {
		res.Degenerate = true
		return res
	}
	sd := math.Sqrt(varU)
	fu := float64(u)
	switch {
	case fu < mean-0.5:
		res.Z = (fu + 0.5 - mean) / sd
	case fu > mean+0.5:
		res.Z = (fu - 0.5 - mean) / sd
	default:
		res.Z = 0
	}
	res.PValue = 2 * (1 - stats.NormalCDF(math.Abs(res.Z)))
	return res
}

// VonNeumann is the serial-correlation (mean square successive
// difference) test: the ratio eta = sum (x_{i+1}-x_i)^2 / sum (x_i-xbar)^2
// has mean 2 and variance ~ 4(n-2)/(n^2-1) under randomness; positive
// serial correlation drives eta below 2.
type VonNeumann struct{}

// Name implements Test.
func (VonNeumann) Name() string { return "von-neumann" }

// Apply implements Test.
func (VonNeumann) Apply(seq []float64) Result {
	res := Result{TestName: "von-neumann"}
	n := len(seq)
	res.N = n
	if n < minEffective {
		res.Degenerate = true
		return res
	}
	mean := stats.Mean(seq)
	var ssd, ss float64
	for i, x := range seq {
		d := x - mean
		ss += d * d
		if i > 0 {
			dd := x - seq[i-1]
			ssd += dd * dd
		}
	}
	if ss == 0 {
		res.Degenerate = true
		return res
	}
	eta := ssd / ss
	fn := float64(n)
	varEta := 4 * (fn - 2) / ((fn + 1) * (fn - 1))
	res.Z = (eta - 2) / math.Sqrt(varEta)
	res.PValue = 2 * (1 - stats.NormalCDF(math.Abs(res.Z)))
	return res
}

// Composite applies several tests and reports the worst (largest |z|)
// outcome; the hypothesis is accepted only if every component accepts.
// It implements a conservative battery in the spirit of "among others".
type Composite struct {
	Tests []Test
}

// Name implements Test.
func (c Composite) Name() string { return "composite" }

// Apply implements Test.
func (c Composite) Apply(seq []float64) Result {
	worst := Result{TestName: "composite", Degenerate: true}
	first := true
	for _, t := range c.Tests {
		r := t.Apply(seq)
		if r.Degenerate {
			continue
		}
		if first || math.Abs(r.Z) > math.Abs(worst.Z) {
			worst = r
			worst.TestName = "composite/" + t.Name()
			first = false
		}
	}
	return worst
}
