package delay

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Picoseconds is the time unit of the event-driven simulator.
type Picoseconds int64

// Model maps a node to its propagation delay. Implementations must be
// pure functions of the node's structure so results can be precomputed.
type Model interface {
	// NodeDelay returns the inertial propagation delay of the node's
	// output, given its gate kind and fanout count.
	NodeDelay(kind logic.Kind, fanout int) Picoseconds
	// Name identifies the model in reports.
	Name() string
}

// Zero is a delay model where every gate switches instantly. Under this
// model the event-driven simulator degenerates to counting functional
// (zero-delay) transitions: glitches disappear.
type Zero struct{}

// NodeDelay implements Model.
func (Zero) NodeDelay(logic.Kind, int) Picoseconds { return 0 }

// Name implements Model.
func (Zero) Name() string { return "zero" }

// Unit assigns one unit (1 ps) to every gate: the classical unit-delay
// model, which exposes glitching due to unequal path depths.
type Unit struct{}

// NodeDelay implements Model.
func (Unit) NodeDelay(kind logic.Kind, _ int) Picoseconds {
	if !kind.IsCombinational() {
		return 0
	}
	return 1
}

// Name implements Model.
func (Unit) Name() string { return "unit" }

// FanoutLoaded is the paper-era "variable delay" model: gate delay grows
// linearly with the capacitive load it drives, d = Base + PerFanout*fanout.
// Inverters and buffers are given a slightly smaller base to reflect their
// lower logical effort.
type FanoutLoaded struct {
	Base       Picoseconds // intrinsic delay, e.g. 200 ps
	PerFanout  Picoseconds // load-dependent delay per fanout, e.g. 100 ps
	InvDiscout Picoseconds // subtracted for NOT/BUF, e.g. 80 ps
}

// DefaultFanoutLoaded returns the coefficients used by the benchmark
// experiments: 200 ps + 100 ps/fanout, inverters 80 ps faster. They put a
// 20-level circuit's settling time well inside the 50 ns clock period of
// the paper's 20 MHz operating point.
func DefaultFanoutLoaded() FanoutLoaded {
	return FanoutLoaded{Base: 200, PerFanout: 100, InvDiscout: 80}
}

// NodeDelay implements Model.
func (m FanoutLoaded) NodeDelay(kind logic.Kind, fanout int) Picoseconds {
	if !kind.IsCombinational() {
		return 0
	}
	d := m.Base + m.PerFanout*Picoseconds(fanout)
	if kind == logic.Not || kind == logic.Buf {
		d -= m.InvDiscout
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Name implements Model.
func (m FanoutLoaded) Name() string {
	return fmt.Sprintf("fanout(%d+%d/fo)", m.Base, m.PerFanout)
}

// Table precomputes per-node delays for one circuit under a Model; it is
// what the simulators consume.
type Table struct {
	ModelName string
	Delays    []Picoseconds // indexed by NodeID
}

// BuildTable evaluates the model for every node of a frozen circuit.
func BuildTable(c *netlist.Circuit, m Model) *Table {
	t := &Table{ModelName: m.Name(), Delays: make([]Picoseconds, len(c.Nodes))}
	for i := range c.Nodes {
		t.Delays[i] = m.NodeDelay(c.Nodes[i].Kind, len(c.Nodes[i].Fanout))
	}
	return t
}

// AllZero reports whether every node delay in the table is zero. Under
// an all-zero table the event-driven simulator commits at most one
// transition per node per cycle (same-time events are processed in
// level order with inertial cancellation), so it counts exactly the
// functional toggles that zero-delay observation counts; the estimator
// uses this to substitute the bit-parallel zero-delay power engine for
// per-lane event-driven simulation. The set of counted transitions is
// identical; only the floating-point summation order differs.
func (t *Table) AllZero() bool {
	for _, d := range t.Delays {
		if d != 0 {
			return false
		}
	}
	return true
}

// MaxSettling returns a conservative bound on the settling time of one
// clock cycle: the sum over the longest path of per-level maxima. It is
// used to sanity-check that the clock period covers combinational
// settling.
func (t *Table) MaxSettling(c *netlist.Circuit) Picoseconds {
	depth := c.Depth()
	if depth == 0 {
		return 0
	}
	maxAtLevel := make([]Picoseconds, depth+1)
	for _, id := range c.Order() {
		l := c.Level(id)
		if t.Delays[id] > maxAtLevel[l] {
			maxAtLevel[l] = t.Delays[id]
		}
	}
	var total Picoseconds
	for _, d := range maxAtLevel {
		total += d
	}
	return total
}
