package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/randtest"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vr"
)

// Trial records one iteration of the independence-interval selection
// procedure (one pass around the loop of Fig. 2).
type Trial struct {
	Interval   int     // trial interval k, in clock cycles
	Z          float64 // runs-test statistic on the collected sequence
	PValue     float64
	Accepted   bool
	Degenerate bool
}

// IntervalSelection is the outcome of the Fig. 2 procedure.
type IntervalSelection struct {
	Interval int     // the selected independence interval
	Capped   bool    // true if MaxInterval was reached without acceptance
	Trials   []Trial // one entry per trial interval, in order
	// Sequence is the power sequence that passed the test (watts per
	// cycle); with Options.ReuseTestSamples it seeds the stopping
	// criterion.
	Sequence []float64
	// Covariates holds the same-cycle zero-delay toggle powers aligned
	// with Sequence. It is collected only under the control-variate
	// options (Options.Variance), where the accepted sequence doubles as
	// the regression-calibration data for the coefficient; nil otherwise.
	// Observing the covariate does not perturb the session trajectory,
	// so Sequence is bit-identical with and without it.
	Covariates []float64
	// Toggles holds the per-node transition counts of the accepted
	// sequence (indexed by NodeID), collected only under
	// Options.Breakdown. When the sequence seeds the stopping criterion
	// (Options.ReuseTestSamples) these counts seed the attribution
	// accumulator the same way, keeping the breakdown's dynamic total
	// equal to the estimate. Counting does not perturb the trajectory.
	Toggles []uint64
}

// collectSequence gathers n power samples, separated by k hidden
// (zero-delay) cycles each, into dst. It polls ctx every ctxCheckEvery
// samples and returns early with ctx.Err() when cancelled, so one trial
// on a large circuit cannot pin a worker past a cancellation request.
func collectSequence(ctx context.Context, s *sim.Session, k, n int, dst []float64) ([]float64, error) {
	dst, _, err := collectSequencePairs(ctx, s, k, n, dst, nil, nil)
	return dst, err
}

// collectSequencePairs is collectSequence with an optional covariate
// buffer: when cov is non-nil it also records each cycle's zero-delay
// toggle power (StepSampledPair), leaving the sample values and the
// session trajectory bit-identical to the plain collection. A non-nil
// counts buffer (len NumNodes) is zeroed and accumulates the sequence's
// per-node transition counts, so after an accepted trial it holds
// exactly the accepted sequence's toggles.
func collectSequencePairs(ctx context.Context, s *sim.Session, k, n int, dst, cov []float64, counts []uint64) ([]float64, []float64, error) {
	dst = dst[:0]
	if cov != nil {
		cov = cov[:0]
	}
	for i := range counts {
		counts[i] = 0
	}
	for i := 0; i < n; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return dst, cov, err
			}
		}
		s.StepHiddenN(k)
		if cov != nil {
			x, c := s.StepSampledPair(counts)
			dst = append(dst, x)
			cov = append(cov, c)
		} else {
			dst = append(dst, s.StepSampled(counts))
		}
	}
	return dst, cov, nil
}

// ctxCheckEvery is the cancellation-poll cadence of sequence collection,
// in samples. Coarse enough to stay invisible in profiles, fine enough
// that cancellation latency is a handful of sampled cycles.
const ctxCheckEvery = 32

// SelectInterval runs the sequential procedure of Fig. 2 on a session:
// starting from trial interval 0, collect a power sequence of length
// opts.SeqLen whose adjacent samples are separated by the trial interval,
// apply the randomness test, and increment the interval until the
// randomness hypothesis is accepted at significance opts.Alpha.
func SelectInterval(s *sim.Session, opts Options) (IntervalSelection, error) {
	return SelectIntervalCtx(context.Background(), s, opts)
}

// SelectIntervalCtx is SelectInterval with cancellation: the collection
// loop polls ctx every few samples (each trial collects opts.SeqLen of
// them) and returns ctx.Err() when cancelled. The dipe-server job
// manager relies on this to abort jobs that are still selecting an
// interval on a large uploaded circuit.
func SelectIntervalCtx(ctx context.Context, s *sim.Session, opts Options) (IntervalSelection, error) {
	if err := opts.Validate(); err != nil {
		return IntervalSelection{}, err
	}
	sel := IntervalSelection{}
	seq := make([]float64, 0, opts.SeqLen)
	// Under the control-variate transform the accepted sequence is also
	// the regression-calibration data, so every trial records covariates
	// alongside the samples.
	var cov []float64
	if opts.Variance.Mode.Canonical() == vr.ModeControlVariate {
		cov = make([]float64, 0, opts.SeqLen)
	}
	// Under Options.Breakdown every trial counts per-node transitions;
	// collectSequencePairs zeroes the buffer per trial, so the accepted
	// trial leaves exactly its own sequence's counts behind.
	var counts []uint64
	if opts.Breakdown {
		counts = make([]uint64, s.Circuit().NumNodes())
	}
	finish := func() IntervalSelection {
		sel.Sequence = append([]float64(nil), seq...)
		if cov != nil {
			sel.Covariates = append([]float64(nil), cov...)
		}
		if counts != nil {
			sel.Toggles = append([]uint64(nil), counts...)
		}
		return sel
	}
	for k := 0; ; k++ {
		var err error
		seq, cov, err = collectSequencePairs(ctx, s, k, opts.SeqLen, seq, cov, counts)
		if err != nil {
			return IntervalSelection{}, err
		}
		res := opts.Test.Apply(seq)
		accepted := res.Accept(opts.Alpha)
		sel.Trials = append(sel.Trials, Trial{
			Interval:   k,
			Z:          res.Z,
			PValue:     res.PValue,
			Accepted:   accepted,
			Degenerate: res.Degenerate,
		})
		if accepted {
			sel.Interval = k
			return finish(), nil
		}
		if k >= opts.MaxInterval {
			sel.Interval = opts.MaxInterval
			sel.Capped = true
			return finish(), nil
		}
	}
}

// ZPoint is one point of the Fig. 3 curve: the runs-test z statistic of a
// fresh power sequence collected at a given trial interval.
type ZPoint struct {
	Interval int
	Z        float64 // signed statistic (positive correlation gives z < 0)
	AbsZ     float64 // magnitude, the quantity Fig. 3 plots
	Accepted bool    // acceptance at the options' significance level
}

// ZTrace reproduces the data behind Fig. 3: for each trial interval
// k = 0..maxK it collects a fresh power sequence of length seqLen on the
// session and records the runs-test statistic. The paper's figure uses
// s1494 with seqLen = 10000.
func ZTrace(s *sim.Session, opts Options, maxK, seqLen int) ([]ZPoint, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if seqLen < 32 {
		return nil, fmt.Errorf("core: ZTrace sequence length %d too short", seqLen)
	}
	if maxK < 0 {
		return nil, fmt.Errorf("core: ZTrace maxK %d negative", maxK)
	}
	out := make([]ZPoint, 0, maxK+1)
	seq := make([]float64, 0, seqLen)
	for k := 0; k <= maxK; k++ {
		seq, _ = collectSequence(context.Background(), s, k, seqLen, seq)
		res := opts.Test.Apply(seq)
		out = append(out, ZPoint{
			Interval: k,
			Z:        res.Z,
			AbsZ:     math.Abs(res.Z),
			Accepted: res.Accept(opts.Alpha),
		})
	}
	return out, nil
}

// Diagnostics is a post-hoc health report on a power sample collected at
// a fixed interval: does it actually look i.i.d.? The paper's procedure
// guarantees this only at the chosen significance level; the diagnostics
// let a user audit a finished run with independent evidence (a fresh
// sequence, a battery of tests, and the autocorrelation function).
type Diagnostics struct {
	Interval int
	// Tests holds the outcome of each randomness test on the fresh
	// sequence.
	Tests []randtest.Result
	// ACF is the sample autocorrelation function of the sequence up to
	// lag 10 (ACF[0] == 1).
	ACF []float64
	// Mean and CV summarize the sequence.
	Mean float64
	CV   float64
}

// AllAccepted reports whether every (non-degenerate) test accepted at
// the given significance level.
func (d Diagnostics) AllAccepted(alpha float64) bool {
	for _, r := range d.Tests {
		if !r.Accept(alpha) {
			return false
		}
	}
	return true
}

// Diagnose collects a fresh power sequence of length n at the given
// interval on the session and audits it with the standard battery
// (ordinary runs, runs up/down, von Neumann, Ljung–Box).
func Diagnose(s *sim.Session, interval, n int) (Diagnostics, error) {
	if interval < 0 || n < 32 {
		return Diagnostics{}, fmt.Errorf("core: Diagnose needs interval >= 0 and n >= 32 (got %d, %d)", interval, n)
	}
	seq, _ := collectSequence(context.Background(), s, interval, n, make([]float64, 0, n))
	battery := []randtest.Test{
		randtest.OrdinaryRuns{}, randtest.UpDownRuns{}, randtest.VonNeumann{}, randtest.LjungBox{},
	}
	d := Diagnostics{Interval: interval, ACF: stats.Autocorrelation(seq, 10)}
	for _, t := range battery {
		d.Tests = append(d.Tests, t.Apply(seq))
	}
	var acc stats.Accumulator
	for _, p := range seq {
		acc.Add(p)
	}
	d.Mean = acc.Mean()
	d.CV = acc.CV()
	return d, nil
}
