package markov

import (
	"math"
	"testing"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/refsim"
	"repro/internal/stopping"
	"repro/internal/vectors"
)

func TestStateSamplingMatchesReferenceOnS27(t *testing.T) {
	c := bench89.S27()
	tb := core.DefaultTestbench(c)
	p := []float64{0.5, 0.5, 0.5, 0.5}

	g, err := Extract(c, p)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.Stationary(1e-12, 200_000)
	if err != nil {
		t.Fatal(err)
	}

	ref := refsim.Run(tb.NewSession(vectors.NewIID(4, 0.5, 1)), 256, 150_000)

	res, err := EstimateByStateSampling(tb.NewSession(vectors.NewIID(4, 0.5, 2)),
		g, pi, p, stopping.DefaultSpec(), stopping.OrderStatisticsFactory, 3, 32, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	dev := math.Abs(res.Power-ref.Power) / ref.Power
	if dev > 0.05+4*ref.RelStdErr() {
		t.Fatalf("state-sampling estimate %g deviates %.2f%% from reference %g",
			res.Power, 100*dev, ref.Power)
	}
	if res.States != g.NumStates() {
		t.Errorf("states = %d", res.States)
	}
}

func TestStateSamplingAgreesWithDIPE(t *testing.T) {
	// The two routes of Section III must agree on the same circuit: the
	// exact state-sampling estimator and the statistical DIPE estimator.
	c := bench89.S27()
	tb := core.DefaultTestbench(c)
	p := []float64{0.5, 0.5, 0.5, 0.5}
	g, _ := Extract(c, p)
	pi, _ := g.Stationary(1e-12, 200_000)

	exact, err := EstimateByStateSampling(tb.NewSession(vectors.NewIID(4, 0.5, 5)),
		g, pi, p, stopping.DefaultSpec(), stopping.OrderStatisticsFactory, 5, 32, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	dipeRes, err := core.Estimate(tb.NewSession(vectors.NewIID(4, 0.5, 6)), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dev := math.Abs(exact.Power-dipeRes.Power) / dipeRes.Power
	if dev > 0.10 { // both carry up to 5% error at 0.99
		t.Fatalf("exact %g vs DIPE %g: %.2f%% apart", exact.Power, dipeRes.Power, 100*dev)
	}
}

func TestStateSamplingValidation(t *testing.T) {
	c := bench89.S27()
	tb := core.DefaultTestbench(c)
	p := []float64{0.5, 0.5, 0.5, 0.5}
	g, _ := Extract(c, p)
	pi, _ := g.Stationary(1e-10, 100_000)

	cases := []struct {
		name string
		run  func() error
	}{
		{"bad spec", func() error {
			_, err := EstimateByStateSampling(tb.NewSession(vectors.NewIID(4, 0.5, 1)),
				g, pi, p, stopping.Spec{}, stopping.NormalFactory, 1, 32, 1024)
			return err
		}},
		{"bad dist", func() error {
			_, err := EstimateByStateSampling(tb.NewSession(vectors.NewIID(4, 0.5, 1)),
				g, pi[:2], p, stopping.DefaultSpec(), stopping.NormalFactory, 1, 32, 1024)
			return err
		}},
		{"bad inputP", func() error {
			_, err := EstimateByStateSampling(tb.NewSession(vectors.NewIID(4, 0.5, 1)),
				g, pi, p[:1], stopping.DefaultSpec(), stopping.NormalFactory, 1, 32, 1024)
			return err
		}},
		{"bad cadence", func() error {
			_, err := EstimateByStateSampling(tb.NewSession(vectors.NewIID(4, 0.5, 1)),
				g, pi, p, stopping.DefaultSpec(), stopping.NormalFactory, 1, 0, 1024)
			return err
		}},
	}
	for _, tc := range cases {
		if tc.run() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
