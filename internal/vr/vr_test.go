package vr

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"", ModeNone, true},
		{"none", ModeNone, true},
		{"anti", ModeAntithetic, true},
		{"antithetic", ModeAntithetic, true},
		{"cv", ModeControlVariate, true},
		{"control-variate", ModeControlVariate, true},
		{"bogus", "", false},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseMode(%q) accepted", c.in)
		}
	}
	if ModeNone.String() != "none" || Mode("none").Canonical() != ModeNone {
		t.Error("none canonicalization broken")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(64, false); err != nil {
		t.Errorf("zero spec invalid: %v", err)
	}
	if err := (Spec{Mode: "bogus"}).Validate(64, false); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := (Spec{Mode: ModeAntithetic}).Validate(15, false); err == nil {
		t.Error("antithetic with odd replication count accepted")
	}
	if err := (Spec{Mode: ModeAntithetic}).Validate(1, false); err == nil {
		t.Error("antithetic with one replication accepted")
	}
	if err := (Spec{Mode: ModeAntithetic}).Validate(16, true); err != nil {
		t.Errorf("antithetic under zero-delay rejected: %v", err)
	}
	if err := (Spec{Mode: ModeControlVariate}).Validate(64, true); err == nil {
		t.Error("control variates under zero-delay accepted (covariate equals sample)")
	}
	if err := (Spec{Mode: ModeControlVariate, ControlCycles: -1}).Validate(64, false); err == nil {
		t.Error("negative ControlCycles accepted")
	}
}

// TestPlanApplyDegeneracy: a zero coefficient returns the sample
// bit-exactly — the identity the forced-zero property tests rely on.
func TestPlanApplyDegeneracy(t *testing.T) {
	plain := Plan{}
	cv0 := Plan{Mode: ModeControlVariate, Beta: 0, ControlMean: 123}
	anti := Plan{Mode: ModeAntithetic}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		x, c := rng.NormFloat64(), rng.NormFloat64()
		if plain.Apply(x, c) != x || cv0.Apply(x, c) != x || anti.Apply(x, c) != x {
			t.Fatalf("Apply not identity for x=%v c=%v", x, c)
		}
	}
	if cv0.NeedsCovariate() {
		t.Error("zero-beta plan claims to need a covariate")
	}
	if !(Plan{Mode: ModeControlVariate, Beta: 0.5}).NeedsCovariate() {
		t.Error("live control-variate plan claims no covariate")
	}
	if !anti.Pairing() || cv0.Pairing() {
		t.Error("Pairing mode detection broken")
	}
}

// TestPlanApplyCentred: the correction vanishes in expectation — with
// the covariate at its mean the sample passes through unchanged.
func TestPlanApplyCentred(t *testing.T) {
	p := Plan{Mode: ModeControlVariate, Beta: 2.5, ControlMean: 7}
	if got := p.Apply(3, 7); got != 3 {
		t.Fatalf("Apply(3, mean) = %v, want 3", got)
	}
	if got := p.Apply(3, 8); got != 3-2.5 {
		t.Fatalf("Apply(3, mean+1) = %v, want %v", got, 3-2.5)
	}
}

func TestPairMeans(t *testing.T) {
	got := PairMeans([]float64{1, 3, 10, 20}, nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 15 {
		t.Fatalf("PairMeans = %v", got)
	}
	// Identical pair members pass through exactly.
	if got := PairMeans([]float64{0.1, 0.1}, nil); got[0] != 0.1 {
		t.Fatalf("degenerate pair mean %v, want 0.1", got[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd-length round accepted")
		}
	}()
	PairMeans([]float64{1, 2, 3}, nil)
}

// TestEstimateBeta: recovers the slope on synthetic linear data and is
// guarded against degenerate inputs.
func TestEstimateBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 10000
	xs, cs := make([]float64, n), make([]float64, n)
	for i := range xs {
		c := rng.NormFloat64()
		cs[i] = c
		xs[i] = 5 + 1.75*c + 0.1*rng.NormFloat64()
	}
	if beta := EstimateBeta(xs, cs); math.Abs(beta-1.75) > 0.02 {
		t.Fatalf("beta = %v, want ~1.75", beta)
	}
	if beta := EstimateBeta([]float64{1}, []float64{2}); beta != 0 {
		t.Fatalf("single-pair beta = %v, want 0", beta)
	}
	if beta := EstimateBeta([]float64{1, 2, 3}, []float64{4, 4, 4}); beta != 0 {
		t.Fatalf("constant-covariate beta = %v, want 0", beta)
	}
}

// TestPairMeanVariance is the statistics behind antithetic pairing in
// miniature: pair means of negatively correlated samples have less
// variance than two independent samples' mean.
func TestPairMeanVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 20000
	varOf := func(xs []float64) float64 {
		var m float64
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		var v float64
		for _, x := range xs {
			v += (x - m) * (x - m)
		}
		return v / float64(len(xs)-1)
	}
	indep, anti := make([]float64, 0, n), make([]float64, 0, n)
	for i := 0; i < n; i++ {
		u, w := rng.Float64(), rng.Float64()
		indep = append(indep, PairMeans([]float64{u, w}, nil)...)
		anti = append(anti, PairMeans([]float64{u, 1 - u}, nil)...)
	}
	if va, vi := varOf(anti), varOf(indep); va >= vi/10 {
		t.Fatalf("antithetic pair-mean variance %v not far below independent %v", va, vi)
	}
}
