package netlist_test

import (
	"strings"
	"testing"

	"repro/internal/bench89"
	"repro/internal/netlist"
)

// FuzzParseBench is the native Go fuzz target for the .bench front
// end, seeded from the bench89 corpora (the genuine s27 plus
// deterministic synthetic family members, serialized by WriteBench) and
// a set of adversarial fragments: malformed gate lines, self-referential
// definitions, combinational cycles through latch-free paths, absurd
// arities. The invariant matches TestParserNeverPanics: the parser
// either fails with an error or returns a frozen circuit that survives
// a serialize/re-parse round trip. Run with
//
//	go test -fuzz=FuzzParseBench ./internal/netlist
//
// to explore; the seed corpus runs as a plain unit test in CI.
func FuzzParseBench(f *testing.F) {
	for _, name := range []string{"s27", "s208", "s298", "s641"} {
		c, err := bench89.Get(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(netlist.BenchString(c))
	}
	for _, seed := range []string{
		"",
		"INPUT(A)\nOUTPUT(A)\n",
		"INPUT(A)\nY = AND(A, A)\nOUTPUT(Y)\n",
		"A = AND(A)\nOUTPUT(A)\n",                     // direct combinational self-loop
		"A = AND(B)\nB = OR(A)\nOUTPUT(A)\n",          // two-gate combinational cycle
		"Q = DFF(Q)\nOUTPUT(Q)\n",                     // latch self-feedback (legal)
		"Q = DFF(D)\nD = NOT(Q)\nOUTPUT(Q)\n",         // latch loop through logic (legal)
		"Q = DFF(A, B)\nINPUT(A)\nINPUT(B)\n",         // DFF arity abuse
		"INPUT(A)\nY = NOT()\nOUTPUT(Y)\n",            // empty argument list
		"INPUT(A)\nY = FROB(A)\nOUTPUT(Y)\n",          // unknown function
		"INPUT(A)\nY = NOT(A\nOUTPUT(Y)\n",            // unbalanced parens
		"INPUT(A)\n= NOT(A)\n",                        // missing output name
		"INPUT(A)\nY = NOT(A))) # trailing\n",         // trailing garbage
		"INPUT(A)\nY = NOT(A)\nY = AND(A, A)\n",       // duplicate definition
		"input(a)\noutput(y)\ny = nand(a, a)\n",       // lower-case keywords
		"INPUT(A)\nOUTPUT(Y)\nY = AND(A, , A)\n",      // empty argument
		"INPUT( A )\nOUTPUT( Y )\nY = BUF( A )\n",     // padded names
		strings.Repeat("INPUT(A)\n", 3) + "OUTPUT(A)", // duplicate inputs
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		c, err := netlist.ParseBenchString("fuzz", text)
		if err != nil {
			return
		}
		if c == nil || !c.Frozen() {
			t.Fatalf("parser returned ok with nil or unfrozen circuit")
		}
		// Round trip: a successfully parsed circuit must serialize to a
		// netlist that parses to the same structure.
		again, err := netlist.ParseBenchString("fuzz", netlist.BenchString(c))
		if err != nil {
			t.Fatalf("round trip failed: %v\noriginal input:\n%s", err, text)
		}
		if a, b := c.ComputeStats(), again.ComputeStats(); a != b {
			t.Fatalf("round trip changed stats: %+v vs %+v", a, b)
		}
	})
}
