package proba

import (
	"math"
	"testing"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/refsim"
	"repro/internal/vectors"
)

func analyze(t *testing.T, c *netlist.Circuit, p []float64) *Result {
	t.Helper()
	r, err := Analyze(c, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGateProbabilitiesExact(t *testing.T) {
	// For a tree (no reconvergence) the independence assumption is exact.
	text := `
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(D)
G1 = AND(A, B)
G2 = OR(C, D)
G3 = XOR(G1, G2)
G4 = NAND(A, C)
OUTPUT(G3)
`
	c, err := netlist.ParseBenchString("tree", text)
	if err != nil {
		t.Fatal(err)
	}
	r := analyze(t, c, []float64{0.5, 0.25, 0.5, 0.8})
	want := map[string]float64{
		"G1": 0.5 * 0.25,                    // 0.125
		"G2": 1 - 0.5*0.2,                   // 0.9
		"G3": 0.125*(1-0.9) + 0.9*(1-0.125), // xor
		"G4": 1 - 0.5*0.5,                   // 0.75
	}
	for name, w := range want {
		if got := r.P[c.Lookup(name)]; math.Abs(got-w) > 1e-12 {
			t.Errorf("P(%s) = %g, want %g", name, got, w)
		}
	}
	// Activity: 2p(1-p).
	g1 := c.Lookup("G1")
	if got, w := r.Activity[g1], 2*0.125*0.875; math.Abs(got-w) > 1e-12 {
		t.Errorf("activity(G1) = %g, want %g", got, w)
	}
}

func TestLatchFixpointToggle(t *testing.T) {
	// Toggle flip-flop: D = NOT(Q). The fixpoint of p = 1-p is 0.5.
	c := netlist.NewCircuit("toggle")
	q, _ := c.AddNode("Q", logic.DFF)
	nq, _ := c.AddNode("NQ", logic.Not, q)
	_ = c.SetFanin(q, nq)
	_ = c.MarkOutput(nq)
	_, _ = c.AddNode("A", logic.Input)
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	r := analyze(t, c, []float64{0.5})
	if !r.Converged {
		t.Fatal("toggle fixpoint did not converge")
	}
	if math.Abs(r.P[q]-0.5) > 1e-6 {
		t.Fatalf("P(Q) = %g, want 0.5", r.P[q])
	}
	// The documented temporal-independence error: the true per-cycle
	// activity of a toggle FF is exactly 1, but the approximation says
	// 2*0.5*0.5 = 0.5. The test pins the *approximation*, the package's
	// documented behaviour.
	if math.Abs(r.Activity[q]-0.5) > 1e-6 {
		t.Fatalf("approx activity(Q) = %g, want 0.5", r.Activity[q])
	}
}

func TestLatchFixpointShiftRegister(t *testing.T) {
	// A shift register fed by p=0.3 input: every stage converges to 0.3.
	c, err := bench89.GenerateShiftRegister("sr", 6)
	if err != nil {
		t.Fatal(err)
	}
	r := analyze(t, c, []float64{0.3})
	for _, id := range c.Latches {
		if math.Abs(r.P[id]-0.3) > 1e-6 {
			t.Fatalf("P(%s) = %g, want 0.3", c.Nodes[id].Name, r.P[id])
		}
	}
	// For a shift register driven by an i.i.d. source, temporal
	// independence is exactly true: activity = 2*0.3*0.7.
	want := 2 * 0.3 * 0.7
	for _, id := range c.Latches {
		if math.Abs(r.Activity[id]-want) > 1e-6 {
			t.Fatalf("activity(%s) = %g, want %g", c.Nodes[id].Name, r.Activity[id], want)
		}
	}
}

func TestShiftRegisterPowerMatchesSimulationExactly(t *testing.T) {
	// The one sequential circuit where all proba approximations hold
	// (tree structure, i.i.d. temporal behaviour, no glitches possible
	// on a DFF chain): the probabilistic power must match simulation.
	c, err := bench89.GenerateShiftRegister("sr", 8)
	if err != nil {
		t.Fatal(err)
	}
	tb := core.DefaultTestbench(c)
	r := analyze(t, c, []float64{0.5})
	pProba := r.Power(tb.Model)
	ref := refsim.Run(tb.NewSession(vectors.NewIID(1, 0.5, 3)), 100, 60_000)
	if dev := math.Abs(pProba-ref.Power) / ref.Power; dev > 0.02 {
		t.Fatalf("proba %g vs sim %g: %.2f%% apart on a shift register", pProba, ref.Power, 100*dev)
	}
}

func TestProbaUnderestimatesGlitchyCircuits(t *testing.T) {
	// On reconvergent sequential benchmarks, the zero-delay +
	// independence approximations must show visible error against the
	// general-delay reference — the paper's motivating observation.
	c := bench89.MustGet("s298")
	tb := core.DefaultTestbench(c)
	p := make([]float64, len(c.Inputs))
	for i := range p {
		p[i] = 0.5
	}
	r, err := Analyze(c, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pProba := r.Power(tb.Model)
	ref := refsim.Run(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 5)), 256, 60_000)
	dev := math.Abs(pProba-ref.Power) / ref.Power
	if dev < 0.05 {
		t.Fatalf("probabilistic estimate within %.2f%% of reference — expected visible error from ignored correlations", 100*dev)
	}
	if dev > 0.95 {
		t.Fatalf("probabilistic estimate off by %.0f%% — implausible for a sanity baseline", 100*dev)
	}
}

func TestProbabilitiesWithinUnitInterval(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s1494"} {
		c := bench89.MustGet(name)
		p := make([]float64, len(c.Inputs))
		for i := range p {
			p[i] = 0.5
		}
		r, err := Analyze(c, p, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range r.P {
			if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
				t.Fatalf("%s: P[%s] = %v", name, c.Nodes[i].Name, v)
			}
		}
		for i, a := range r.Activity {
			if a < 0 || a > 0.5+1e-12 {
				t.Fatalf("%s: activity[%s] = %v outside [0, 0.5]", name, c.Nodes[i].Name, a)
			}
		}
	}
}

func TestConstantNodes(t *testing.T) {
	text := "INPUT(A)\nC1 = CONST1()\nC0 = CONST0()\nG = AND(A, C1)\nH = OR(G, C0)\nOUTPUT(H)\n"
	c, err := netlist.ParseBenchString("const", text)
	if err != nil {
		t.Fatal(err)
	}
	r := analyze(t, c, []float64{0.7})
	if r.P[c.Lookup("C1")] != 1 || r.P[c.Lookup("C0")] != 0 {
		t.Fatal("constant probabilities wrong")
	}
	if r.Activity[c.Lookup("C1")] != 0 {
		t.Fatal("constant activity nonzero")
	}
	if math.Abs(r.P[c.Lookup("H")]-0.7) > 1e-12 {
		t.Fatalf("P(H) = %g, want 0.7", r.P[c.Lookup("H")])
	}
}

func TestAnalyzeValidation(t *testing.T) {
	c := bench89.S27()
	good := []float64{0.5, 0.5, 0.5, 0.5}
	if _, err := Analyze(c, good[:2], DefaultOptions()); err == nil {
		t.Error("short probability vector accepted")
	}
	if _, err := Analyze(c, []float64{0.5, 0.5, 0.5, 1.5}, DefaultOptions()); err == nil {
		t.Error("out-of-range probability accepted")
	}
	bad := DefaultOptions()
	bad.Damping = 0
	if _, err := Analyze(c, good, bad); err == nil {
		t.Error("bad damping accepted")
	}
	unfrozen := netlist.NewCircuit("u")
	if _, err := Analyze(unfrozen, nil, DefaultOptions()); err == nil {
		t.Error("unfrozen circuit accepted")
	}
}

func TestPowerIsCapacitanceWeighted(t *testing.T) {
	c, err := bench89.GenerateShiftRegister("sr", 2)
	if err != nil {
		t.Fatal(err)
	}
	m := power.NewModel(c, power.CapModel{Base: 100e-15}, power.Supply{VDD: 2, ClockPeriod: 10e-9})
	r := analyze(t, c, []float64{0.5})
	// Each DFF and the output buffer has activity 0.5 and cap 100 fF;
	// input excluded. Nodes: Q0, Q1, DOUT = 3 active nodes.
	want := 3 * 100e-15 * 0.5 * 4 / (2 * 10e-9)
	if got := r.Power(m); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("power = %g, want %g", got, want)
	}
}
