package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bench89"
	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// randomSignature derives a small well-formed circuit signature from
// quick-check randomness (the shared seeded derivation benchgen's
// "random" family also uses).
func randomSignature(seed uint32) bench89.Signature {
	return bench89.RandomSignature(seed)
}

// TestPropertyEventDrivenMatchesZeroDelay is the central simulator
// property over random circuits: after an event-driven cycle the settled
// values equal a zero-delay settle of the same (pattern, state), for any
// delay model.
func TestPropertyEventDrivenMatchesZeroDelay(t *testing.T) {
	check := func(seed uint32) bool {
		sig := randomSignature(seed)
		c, err := bench89.Generate(sig)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		rng := rand.New(rand.NewSource(int64(seed) + 1))
		zd := NewZeroDelay(c)
		ed := NewEventDriven(c, delay.BuildTable(c, delay.DefaultFanoutLoaded()))
		w := make([]float64, c.NumNodes())
		for i := range w {
			w[i] = 1
		}
		vals := make([]bool, c.NumNodes())
		ref := make([]bool, c.NumNodes())
		pins := make([]bool, len(c.Inputs))
		q := make([]bool, len(c.Latches))
		zd.Settle(vals, pins, q)
		for cycle := 0; cycle < 25; cycle++ {
			for i := range pins {
				pins[i] = rng.Intn(2) == 1
			}
			for i := range q {
				q[i] = rng.Intn(2) == 1
			}
			ed.Cycle(vals, pins, q, w, nil)
			zd.Settle(ref, pins, q)
			for i := range vals {
				if vals[i] != ref[i] {
					t.Logf("seed %d cycle %d: node %s mismatch", seed, cycle, c.Nodes[i].Name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPowerNonNegativeAndBounded: every cycle's weighted
// transition sum is nonnegative and bounded by the total weight times
// a generous per-node transition cap.
func TestPropertyPowerNonNegativeAndBounded(t *testing.T) {
	check := func(seed uint32) bool {
		sig := randomSignature(seed)
		c, err := bench89.Generate(sig)
		if err != nil {
			return false
		}
		w := make([]float64, c.NumNodes())
		var totalW float64
		for i := range w {
			w[i] = 1
			totalW++
		}
		s := NewSession(c, delay.BuildTable(c, delay.DefaultFanoutLoaded()),
			vectors.NewIID(len(c.Inputs), 0.5, int64(seed)), w)
		for cycle := 0; cycle < 50; cycle++ {
			p := s.StepSampled(nil)
			if p < 0 {
				return false
			}
			// Bound: no node can transition more than ~2*depth times in
			// a settling DAG; use a crude but safe cap.
			if p > totalW*float64(2*c.Depth()+2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBenchRoundTrip: generated circuits survive a .bench
// write/parse round trip structurally intact.
func TestPropertyBenchRoundTrip(t *testing.T) {
	check := func(seed uint32) bool {
		sig := randomSignature(seed)
		c, err := bench89.Generate(sig)
		if err != nil {
			return false
		}
		text := netlist.BenchString(c)
		re, err := netlist.ParseBenchString(c.Name, text)
		if err != nil {
			t.Logf("seed %d: reparse: %v", seed, err)
			return false
		}
		return netlist.BenchString(re) == text && re.ComputeStats() == c.ComputeStats()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStateTrajectoryIndependentOfSimulator: hidden (zero-delay)
// and sampled (event-driven) stepping follow identical state paths on
// random circuits.
func TestPropertyStateTrajectoryIndependentOfSimulator(t *testing.T) {
	check := func(seed uint32) bool {
		sig := randomSignature(seed)
		c, err := bench89.Generate(sig)
		if err != nil {
			return false
		}
		w := make([]float64, c.NumNodes())
		dt := delay.BuildTable(c, delay.DefaultFanoutLoaded())
		a := NewSession(c, dt, vectors.NewIID(len(c.Inputs), 0.5, int64(seed)), w)
		b := NewSession(c, dt, vectors.NewIID(len(c.Inputs), 0.5, int64(seed)), w)
		qa := make([]bool, len(c.Latches))
		qb := make([]bool, len(c.Latches))
		rng := rand.New(rand.NewSource(int64(seed) + 9))
		for step := 0; step < 60; step++ {
			if rng.Intn(2) == 0 {
				a.StepHidden()
			} else {
				a.StepSampled(nil)
			}
			b.StepSampled(nil)
			a.State(qa)
			b.State(qb)
			for i := range qa {
				if qa[i] != qb[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCycleCountsAdditive: session counters track exactly the
// steps taken.
func TestPropertyCycleCountsAdditive(t *testing.T) {
	check := func(h, s uint8) bool {
		c := bench89.S27()
		w := make([]float64, c.NumNodes())
		sess := NewSession(c, delay.BuildTable(c, delay.Unit{}),
			vectors.NewIID(4, 0.5, 5), w)
		sess.StepHiddenN(int(h))
		for i := 0; i < int(s); i++ {
			sess.StepSampled(nil)
		}
		return sess.HiddenCycles == uint64(h) && sess.SampledCycles == uint64(s)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
