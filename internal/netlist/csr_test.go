package netlist

import (
	"math/rand"
	"strings"
	"testing"
)

// csrTestCircuit builds a small sequential circuit exercising every
// structural feature the CSR must capture: multi-fanin gates, latch
// feedback, constants, and shared fanout.
func csrTestCircuit(t *testing.T) *Circuit {
	t.Helper()
	text := `INPUT(A)
INPUT(B)
OUTPUT(Y)
OUTPUT(Q)
Q = DFF(D)
ONE = VDD()
N1 = NAND(A, Q, ONE)
N2 = NOR(A, B)
D = XOR(N1, N2)
Y = NOT(D)
`
	c, err := ParseBenchString("csr", text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCSRMatchesNodes: the flat arrays agree element-for-element with the
// per-Node slices for every node.
func TestCSRMatchesNodes(t *testing.T) {
	c := csrTestCircuit(t)
	r := c.CSR()
	if r.NumNodes() != c.NumNodes() {
		t.Fatalf("CSR has %d nodes, circuit %d", r.NumNodes(), c.NumNodes())
	}
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		if r.Kind[i] != nd.Kind {
			t.Errorf("node %d kind %v, want %v", i, r.Kind[i], nd.Kind)
		}
		if int(r.Level[i]) != c.Level(NodeID(i)) {
			t.Errorf("node %d level %d, want %d", i, r.Level[i], c.Level(NodeID(i)))
		}
		fi := r.Fanin(int32(i))
		if len(fi) != len(nd.Fanin) {
			t.Fatalf("node %d fanin length %d, want %d", i, len(fi), len(nd.Fanin))
		}
		for j, f := range nd.Fanin {
			if fi[j] != int32(f) {
				t.Errorf("node %d fanin[%d] = %d, want %d", i, j, fi[j], f)
			}
		}
		fo := r.Fanout(int32(i))
		if len(fo) != len(nd.Fanout) {
			t.Fatalf("node %d fanout length %d, want %d", i, len(fo), len(nd.Fanout))
		}
		gates := 0
		for j, g := range nd.Fanout {
			if fo[j] != int32(g) {
				t.Errorf("node %d fanout[%d] = %d, want %d", i, j, fo[j], g)
			}
			if c.Nodes[g].Kind.IsCombinational() {
				gates++
			}
		}
		gfo := r.GateFanout(int32(i))
		if len(gfo) != gates {
			t.Fatalf("node %d gate fanout length %d, want %d", i, len(gfo), gates)
		}
		for _, g := range gfo {
			if !c.Nodes[g].Kind.IsCombinational() {
				t.Errorf("node %d gate fanout contains non-gate %d", i, g)
			}
		}
	}
	if len(r.Order) != len(c.Order()) {
		t.Fatalf("order length %d, want %d", len(r.Order), len(c.Order()))
	}
	for i, id := range c.Order() {
		if r.Order[i] != int32(id) {
			t.Errorf("order[%d] = %d, want %d", i, r.Order[i], id)
		}
	}
	for i, id := range c.Latches {
		if r.Latches[i] != int32(id) {
			t.Errorf("latch[%d] = %d, want %d", i, r.Latches[i], id)
		}
		if r.LatchD[i] != int32(c.Nodes[id].Fanin[0]) {
			t.Errorf("latchD[%d] = %d, want %d", i, r.LatchD[i], c.Nodes[id].Fanin[0])
		}
	}
	if len(r.Const1s) != 1 || len(r.Const0s) != 0 {
		t.Errorf("constants: got %d const0, %d const1; want 0, 1", len(r.Const0s), len(r.Const1s))
	}
}

// TestCSRRandomCircuits cross-checks the CSR invariants (index
// monotonicity, totals, in-range entries) on randomly generated chains.
func TestCSRRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		var sb strings.Builder
		sb.WriteString("INPUT(A)\nINPUT(B)\n")
		n := 3 + rng.Intn(40)
		prev := []string{"A", "B"}
		for i := 0; i < n; i++ {
			nm := "G" + itoa(i)
			a := prev[rng.Intn(len(prev))]
			b := prev[rng.Intn(len(prev))]
			op := []string{"AND", "OR", "NAND", "NOR", "XOR"}[rng.Intn(5)]
			sb.WriteString(nm + " = " + op + "(" + a + ", " + b + ")\n")
			prev = append(prev, nm)
		}
		sb.WriteString("OUTPUT(" + prev[len(prev)-1] + ")\n")
		c, err := ParseBenchString("rnd", sb.String())
		if err != nil {
			t.Fatal(err)
		}
		r := c.CSR()
		nn := int32(c.NumNodes())
		if r.FaninIdx[0] != 0 || r.FanoutIdx[0] != 0 {
			t.Fatal("CSR index arrays must start at 0")
		}
		for i := 0; i < int(nn); i++ {
			if r.FaninIdx[i] > r.FaninIdx[i+1] || r.FanoutIdx[i] > r.FanoutIdx[i+1] ||
				r.GateFanoutIdx[i] > r.GateFanoutIdx[i+1] {
				t.Fatalf("trial %d: non-monotone CSR index at node %d", trial, i)
			}
		}
		for _, f := range r.FaninList {
			if f < 0 || f >= nn {
				t.Fatalf("trial %d: fanin entry %d out of range", trial, f)
			}
		}
		for _, f := range r.FanoutList {
			if f < 0 || f >= nn {
				t.Fatalf("trial %d: fanout entry %d out of range", trial, f)
			}
		}
		if int(r.FaninIdx[nn]) != len(r.FaninList) || int(r.FanoutIdx[nn]) != len(r.FanoutList) {
			t.Fatalf("trial %d: CSR totals do not close", trial)
		}
		// Every directed edge appears exactly once in each direction.
		if len(r.FaninList) != len(r.FanoutList) {
			t.Fatalf("trial %d: %d fanin edges vs %d fanout edges",
				trial, len(r.FaninList), len(r.FanoutList))
		}
	}
}

// TestCSRPanicsUnfrozen: the accessor refuses unfrozen circuits.
func TestCSRPanicsUnfrozen(t *testing.T) {
	c := NewCircuit("unfrozen")
	defer func() {
		if recover() == nil {
			t.Fatal("CSR on unfrozen circuit did not panic")
		}
	}()
	c.CSR()
}
