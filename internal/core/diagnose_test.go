package core

import (
	"math"
	"testing"

	"repro/internal/bench89"
	"repro/internal/vectors"
)

func TestDiagnoseAtSelectedInterval(t *testing.T) {
	// At the interval DIPE selects, the sample battery should mostly
	// pass and low-lag autocorrelation should be small.
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	s := tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 41))
	sel, err := SelectInterval(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diagnose(s, sel.Interval, 640)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tests) != 4 {
		t.Fatalf("battery size = %d", len(d.Tests))
	}
	if len(d.ACF) != 11 || d.ACF[0] != 1 {
		t.Fatalf("ACF shape: %v", d.ACF)
	}
	if d.Mean <= 0 || d.CV <= 0 {
		t.Fatalf("summary: mean=%g cv=%g", d.Mean, d.CV)
	}
	// A loose significance level: at least the worst-case battery should
	// usually pass at the accepted interval; assert only lag-1 sanity to
	// avoid flaky strictness.
	if math.Abs(d.ACF[1]) > 0.4 {
		t.Errorf("lag-1 autocorrelation %.3f at accepted interval %d", d.ACF[1], d.Interval)
	}
}

func TestDiagnoseDetectsConsecutiveCorrelation(t *testing.T) {
	// At interval 0 on a strongly correlated circuit, the battery must
	// reject (this is the phenomenon DIPE exists to handle).
	c := bench89.MustGet("s1494")
	tb := DefaultTestbench(c)
	s := tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 43))
	s.StepHiddenN(512)
	d, err := Diagnose(s, 0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if d.AllAccepted(0.20) {
		t.Fatalf("battery accepted consecutive-cycle power of s1494: %+v", d.Tests)
	}
	if d.ACF[1] < 0.03 {
		t.Errorf("expected positive lag-1 autocorrelation, got %.3f", d.ACF[1])
	}
}

func TestDiagnoseValidation(t *testing.T) {
	c := bench89.S27()
	tb := DefaultTestbench(c)
	s := tb.NewSession(vectors.NewIID(4, 0.5, 1))
	if _, err := Diagnose(s, -1, 100); err == nil {
		t.Error("negative interval accepted")
	}
	if _, err := Diagnose(s, 0, 8); err == nil {
		t.Error("tiny n accepted")
	}
}
