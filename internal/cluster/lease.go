package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/vr"
)

// This file is the work-stealing half of the coordinator: replication
// ranges are not pinned to workers for the duration of a job but
// *leased*, one stream attempt at a time, with a per-block delivery
// deadline. A worker that stops producing blocks — dead, stalled, or
// just slow while a faster worker sits idle — has its lease reclaimed
// and the range reassigned; the replacement stream replays the merged
// prefix via SkipBlocks, which deterministic seeding reproduces
// exactly, so stealing is invisible in the merged result. The job is
// partitioned into more ranges than workers (CoordinatorConfig
// LeaseSplit) precisely so there is a tail of ranges for fast workers
// to steal.
//
// Scheduling is least-loaded with memory: each (worker, range) pair
// that burns a lease to expiry is penalized for that range, so a
// reclaimed range is not handed straight back to the worker that just
// timed out on it (which, having lost a lease, would otherwise look
// attractively idle).

// errLeaseExpired marks a stream attempt cancelled by its own lease
// deadline: the worker is alive but did not deliver a block in time
// while another worker was free to take over.
var errLeaseExpired = errors.New("cluster: lease expired")

// leaseStartupFactor scales the first block's delivery allowance: the
// first block carries stream setup, per-replication warm-up and the
// hidden-cycle replay of every already-merged block, so it is given
// leaseStartupFactor lease timeouts where subsequent blocks get one.
const leaseStartupFactor = 4

// retryBackoff yields exponentially growing waits with ±20% jitter,
// capped. The jitter decorrelates concurrent range runners retrying
// against the same recovering worker.
type retryBackoff struct {
	next, max time.Duration
}

func newRetryBackoff(base, max time.Duration) *retryBackoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &retryBackoff{next: base, max: max}
}

// sleep waits the current interval (jittered) or until ctx ends, then
// doubles the interval up to the cap.
func (b *retryBackoff) sleep(ctx context.Context) error {
	d := b.next + time.Duration((rand.Float64()-0.5)*0.4*float64(b.next))
	if b.next *= 2; b.next > b.max {
		b.next = b.max
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// jobScheduler arbitrates one job's leases: which worker streams each
// replication range right now, how loaded every worker is, and which
// (worker, range) pairs have burned a lease to expiry. One exists per
// sampledPhase call; worker liveness and the global per-worker counters
// live on the Coordinator it wraps.
//
// Lock order: js.mu before c.mu, always.
type jobScheduler struct {
	c  *Coordinator
	mu sync.Mutex
	// penalty[worker][rangeIdx] counts leases that worker burned to
	// expiry on that range.
	penalty map[string]map[int]int
}

func newJobScheduler(c *Coordinator) *jobScheduler {
	return &jobScheduler{c: c, penalty: make(map[string]map[int]int)}
}

// acquire leases rangeIdx to a live worker, blocking (with backoff)
// until one is available or ctx ends. prev is the worker that held the
// range last ("" on first acquisition): it is deprioritized after a
// failure or expiry but remains eligible when it is the only live
// worker. delivered>0 with a changed owner counts as a reassignment on
// the inheriting worker; expired marks a reacquisition right after a
// lease expiry, so a changed owner additionally counts as a steal on
// the thief.
func (s *jobScheduler) acquire(ctx context.Context, rangeIdx int, prev string, delivered int, expired bool) (string, error) {
	bo := newRetryBackoff(50*time.Millisecond, s.c.hb)
	for {
		if w, ok := s.tryAcquire(rangeIdx, prev, delivered, expired); ok {
			return w, nil
		}
		if err := bo.sleep(ctx); err != nil {
			return "", err
		}
	}
}

// tryAcquire picks the live worker minimizing (range penalty, active
// leases, registration order) and charges the lease to it. The previous
// owner carries a large penalty addend so it wins only as the sole live
// worker.
func (s *jobScheduler) tryAcquire(rangeIdx int, prev string, delivered int, expired bool) (string, bool) {
	const prevOwnerPenalty = 1 << 20
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	best := ""
	var bestPen, bestLoad int
	for _, u := range c.order {
		w := c.workers[u]
		if !w.alive {
			continue
		}
		pen := s.penalty[u][rangeIdx]
		if u == prev {
			pen += prevOwnerPenalty
		}
		if best == "" || pen < bestPen || (pen == bestPen && w.activeLeases < bestLoad) {
			best, bestPen, bestLoad = u, pen, w.activeLeases
		}
	}
	if best == "" {
		return "", false
	}
	w := c.workers[best]
	w.activeLeases++
	w.grants.Inc()
	if delivered > 0 && prev != "" && best != prev {
		w.reassignments.Inc()
	}
	if expired && prev != "" && best != prev {
		w.steals.Inc()
	}
	return best, true
}

// release returns a lease.
func (s *jobScheduler) release(worker string) {
	s.c.mu.Lock()
	if w := s.c.workers[worker]; w != nil && w.activeLeases > 0 {
		w.activeLeases--
	}
	s.c.mu.Unlock()
}

// expire records a lease reclaimed from worker on rangeIdx: the pair is
// penalized in future assignment and the worker's degradation counters
// bump. The worker stays in rotation — expiry means slow, not dead.
func (s *jobScheduler) expire(worker string, rangeIdx int) {
	s.mu.Lock()
	m := s.penalty[worker]
	if m == nil {
		m = make(map[int]int)
		s.penalty[worker] = m
	}
	m[rangeIdx]++
	s.mu.Unlock()
	s.c.mu.Lock()
	if w := s.c.workers[worker]; w != nil {
		w.leaseExpiries.Inc()
		w.retries.Inc()
		w.lastErr = fmt.Sprintf("lease expired on range %d", rangeIdx)
	}
	s.c.mu.Unlock()
	s.c.log.Warn("lease expired", "worker", worker, "range", rangeIdx)
}

// shouldReclaim reports whether expiring worker's lease can help:
// either another live worker exists to steal the range, or the holder
// itself has been marked dead (its stream is a zombie). A slow but sole
// live worker keeps its lease — reclaiming would only force a pointless
// replay onto the same worker.
func (s *jobScheduler) shouldReclaim(worker string) bool {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[worker]; w != nil && !w.alive {
		return true
	}
	for _, u := range c.order {
		if u != worker && c.workers[u].alive {
			return true
		}
	}
	return false
}

// blockLease is the watchdog of one stream attempt: a deadline on the
// *next block's delivery*, armed while the coordinator waits on the
// worker and paused while the block is handed to the merge loop (merge
// backpressure is the coordinator's queue, not the worker's fault).
// Firing reclaims the lease by cancelling the stream context — unless
// reclaiming cannot help (see shouldReclaim), in which case the lease
// silently renews.
type blockLease struct {
	timeout time.Duration
	timer   *time.Timer
	expired atomic.Bool
}

// newBlockLease arms the watchdog with the first-block allowance
// (leaseStartupFactor timeouts) and returns it.
func newBlockLease(js *jobScheduler, worker string, timeout time.Duration, cancel context.CancelFunc) *blockLease {
	l := &blockLease{timeout: timeout}
	l.timer = time.AfterFunc(leaseStartupFactor*timeout, func() { l.fire(js, worker, cancel) })
	return l
}

func (l *blockLease) fire(js *jobScheduler, worker string, cancel context.CancelFunc) {
	if !js.shouldReclaim(worker) {
		l.timer.Reset(l.timeout)
		return
	}
	l.expired.Store(true)
	cancel()
}

// pause suspends the deadline (block in hand, delivering to the merge
// loop).
func (l *blockLease) pause() { l.timer.Stop() }

// arm restarts the per-block deadline (waiting on the worker again).
func (l *blockLease) arm() {
	if !l.expired.Load() {
		l.timer.Reset(l.timeout)
	}
}

// stop retires the watchdog at the end of a stream attempt.
func (l *blockLease) stop() { l.timer.Stop() }

// runLeasedRange owns one replication range for the duration of a job:
// it repeatedly leases the range to a worker and streams blocks into
// rg.ch until the range's block budget is delivered. Stream failures
// mark the worker dead and move on; lease expiries penalize the
// (worker, range) pair and move on; SkipBlocks replay makes every
// handover invisible in the merged result. The error budget
// (maxAttempts) fails the job on a cluster that keeps breaking rather
// than spinning forever.
func (c *Coordinator) runLeasedRange(ctx context.Context, js *jobScheduler, hash string, src service.CircuitSource, req service.JobRequest, opts core.Options, plan vr.Plan, interval, rounds, maxBlocks, budgetRounds int, rg *repRange) {
	defer close(rg.ch)
	delivered := 0
	attempts := 0
	uploaded := make(map[string]bool)
	prev := ""
	expired := false
	tr := obs.TraceFrom(ctx)
	bo := newRetryBackoff(50*time.Millisecond, c.hb)
	for {
		worker, err := js.acquire(ctx, rg.idx, prev, delivered, expired)
		if err != nil {
			return // job context ended while waiting for a live worker
		}
		if expired && worker != prev {
			tr.Event("steal", "range", strconv.Itoa(rg.idx), "worker", worker, "from", prev)
		} else {
			tr.Event("lease", "range", strconv.Itoa(rg.idx), "worker", worker,
				"skipBlocks", strconv.Itoa(delivered))
		}
		serr := func() error {
			for {
				err := c.streamRange(ctx, js, worker, hash, req, opts, plan, interval, rounds, maxBlocks, budgetRounds, &delivered, rg)
				if errors.Is(err, errUnknownCircuit) && !uploaded[worker] {
					// Propagate the circuit and retry the same worker under
					// the same lease; an install failure falls through to
					// normal failure handling.
					if uerr := c.installCircuit(ctx, worker, hash, src); uerr == nil {
						uploaded[worker] = true
						continue
					}
				}
				return err
			}
		}()
		js.release(worker)
		if serr == nil || ctx.Err() != nil {
			return // range complete, or the merge loop is done with us
		}
		if errors.Is(serr, errPermanent) {
			// The worker rejected the request itself; no other worker will
			// accept it either, and the worker is healthy — fail the job
			// without touching liveness.
			select {
			case rg.ch <- rangeMsg{err: serr}:
			case <-ctx.Done():
			}
			return
		}
		attempts++
		if attempts >= c.maxAttempts {
			select {
			case rg.ch <- rangeMsg{err: fmt.Errorf("giving up after %d attempts (last worker %s): %w", attempts, worker, serr)}:
			case <-ctx.Done():
			}
			return
		}
		expired = errors.Is(serr, errLeaseExpired)
		if expired {
			// Reclaimed, not broken: penalize the pair and reassign
			// immediately — the whole point is that someone faster is free.
			js.expire(worker, rg.idx)
			tr.Event("lease-expired", "range", strconv.Itoa(rg.idx), "worker", worker,
				"delivered", strconv.Itoa(delivered))
		} else {
			c.markFailed(worker, serr)
			if bo.sleep(ctx) != nil {
				return
			}
		}
		prev = worker
	}
}
