package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
)

// renderRows formats a header and row lines through a tabwriter.
func renderRows(title string, header []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteString("\n")
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	// tabwriter.Flush on a strings.Builder cannot fail.
	_ = tw.Flush()
	return sb.String()
}

// RenderTable1 renders Table 1 in the paper's column layout (power in
// mW), with the reference's own uncertainty added for honesty.
func RenderTable1(rows []Table1Row) string {
	header := []string{"Circuit", "SIM(mW)", "ref±%", "I.I.", "p̂(mW)", "Sample", "Err(%)", "Cycles", "CPU(s)"}
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			r.Name,
			fmt.Sprintf("%.4f", r.SIM*1e3),
			fmt.Sprintf("%.2f", 100*r.RefRelSE),
			fmt.Sprintf("%d", r.II),
			fmt.Sprintf("%.4f", r.Estimate*1e3),
			fmt.Sprintf("%d", r.SampleSize),
			fmt.Sprintf("%.2f", r.ErrPct),
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%.1f", r.CPUSec),
		}
	}
	return renderRows("Table 1: Power estimation results", header, body)
}

// RenderTable2 renders Table 2 in the paper's column layout.
func RenderTable2(rows []Table2Row) string {
	header := []string{"Circuit", "Runs", "II.min", "II.max", "II.avg", "S.avg", "D.avg(%)", "Err(%)", "Cyc.avg"}
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			r.Name,
			fmt.Sprintf("%d", r.Runs),
			fmt.Sprintf("%d", r.IIMin),
			fmt.Sprintf("%d", r.IIMax),
			fmt.Sprintf("%.2f", r.IIAvg),
			fmt.Sprintf("%.0f", r.SAvg),
			fmt.Sprintf("%.2f", r.DAvg),
			fmt.Sprintf("%.1f", r.ErrPct),
			fmt.Sprintf("%.0f", r.CycAvg),
		}
	}
	return renderRows("Table 2: Large number simulation summary", header, body)
}

// RenderFigure3 renders the z-statistic trace as an ASCII chart plus the
// underlying values, mirroring Fig. 3's axes (trial interval vs. |z|).
func RenderFigure3(points []core.ZPoint, accepted float64) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: |z| statistic vs. trial interval length\n")
	var maxZ float64
	for _, p := range points {
		if p.AbsZ > maxZ {
			maxZ = p.AbsZ
		}
	}
	if maxZ < 1 {
		maxZ = 1
	}
	const width = 60
	for _, p := range points {
		bar := int(p.AbsZ / maxZ * width)
		marker := " "
		if p.Accepted {
			marker = "*" // inside the acceptance band
		}
		fmt.Fprintf(&sb, "k=%3d |%-*s| %6.2f %s\n", p.Interval, width, strings.Repeat("#", bar), p.AbsZ, marker)
	}
	fmt.Fprintf(&sb, "(* = randomness hypothesis accepted; threshold |z| <= %.3f)\n", accepted)
	return sb.String()
}

// Figure3CSV renders the trace as CSV (interval,z,abs_z,accepted).
func Figure3CSV(points []core.ZPoint) string {
	var sb strings.Builder
	sb.WriteString("interval,z,abs_z,accepted\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%d,%.6f,%.6f,%v\n", p.Interval, p.Z, p.AbsZ, p.Accepted)
	}
	return sb.String()
}

// RenderSeqLen renders ablation A1.
func RenderSeqLen(rows []SeqLenRow) string {
	header := []string{"SeqLen", "Runs", "II.min", "II.max", "II.avg", "II.std", "SelCycles"}
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			fmt.Sprintf("%d", r.SeqLen),
			fmt.Sprintf("%d", r.Runs),
			fmt.Sprintf("%d", r.IIMin),
			fmt.Sprintf("%d", r.IIMax),
			fmt.Sprintf("%.2f", r.IIAvg),
			fmt.Sprintf("%.2f", r.IIStd),
			fmt.Sprintf("%.0f", r.SelCycAvg),
		}
	}
	return renderRows("Ablation A1: randomness-test sequence length", header, body)
}

// RenderAlpha renders ablation A2.
func RenderAlpha(rows []AlphaRow) string {
	header := []string{"Alpha", "Runs", "II.avg", "S.avg", "D.avg(%)", "Err(%)"}
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			fmt.Sprintf("%.2f", r.Alpha),
			fmt.Sprintf("%d", r.Runs),
			fmt.Sprintf("%.2f", r.IIAvg),
			fmt.Sprintf("%.0f", r.SAvg),
			fmt.Sprintf("%.2f", r.DAvg),
			fmt.Sprintf("%.1f", r.ErrPct),
		}
	}
	return renderRows("Ablation A2: randomness-test significance level", header, body)
}

// RenderStopping renders ablation A3.
func RenderStopping(rows []StoppingRow) string {
	header := []string{"Criterion", "Runs", "S.avg", "D.avg(%)", "Err(%)", "Cyc.avg"}
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			r.Criterion,
			fmt.Sprintf("%d", r.Runs),
			fmt.Sprintf("%.0f", r.SAvg),
			fmt.Sprintf("%.2f", r.DAvg),
			fmt.Sprintf("%.1f", r.ErrPct),
			fmt.Sprintf("%.0f", r.CycAvg),
		}
	}
	return renderRows("Ablation A3: stopping criterion comparison", header, body)
}

// RenderWarmup renders ablation A4.
func RenderWarmup(rows []WarmupRow) string {
	header := []string{"Mode", "Runs", "II.avg", "S.avg", "Cyc.avg", "D.avg(%)", "Err(%)"}
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			r.Mode,
			fmt.Sprintf("%d", r.Runs),
			fmt.Sprintf("%.2f", r.IIAvg),
			fmt.Sprintf("%.0f", r.SAvg),
			fmt.Sprintf("%.0f", r.CycAvg),
			fmt.Sprintf("%.2f", r.DAvg),
			fmt.Sprintf("%.1f", r.ErrPct),
		}
	}
	return renderRows("Ablation A4: dynamic interval vs. fixed warm-up (ref [9])", header, body)
}

// RenderDelayModels renders ablation A6.
func RenderDelayModels(rows []DelayModelRow) string {
	header := []string{"Circuit", "P.zero(mW)", "P.unit(mW)", "P.fanout(mW)", "Glitch(%)", "Cycles"}
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			r.Name,
			fmt.Sprintf("%.4f", r.PZero*1e3),
			fmt.Sprintf("%.4f", r.PUnit*1e3),
			fmt.Sprintf("%.4f", r.PFanout*1e3),
			fmt.Sprintf("%.1f", r.GlitchPct),
			fmt.Sprintf("%d", r.Cycles),
		}
	}
	return renderRows("Ablation A6: delay model and glitch power", header, body)
}

// RenderCalibration renders the runs-test calibration table.
func RenderCalibration(rows []CalibrationRow) string {
	header := []string{"Alpha", "Sequences", "SeqLen", "RejectRate"}
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			fmt.Sprintf("%.3f", r.Alpha),
			fmt.Sprintf("%d", r.Sequences),
			fmt.Sprintf("%d", r.SeqLen),
			fmt.Sprintf("%.3f", r.RejectRate),
		}
	}
	return renderRows("Calibration: randomness-test false-rejection rate (Eq. 6)", header, body)
}

// RenderInputs renders ablation A5.
func RenderInputs(rows []InputsRow) string {
	header := []string{"Rho", "Runs", "II.avg", "S.avg", "D.avg(%)", "Err(%)"}
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			fmt.Sprintf("%.2f", r.Rho),
			fmt.Sprintf("%d", r.Runs),
			fmt.Sprintf("%.2f", r.IIAvg),
			fmt.Sprintf("%.0f", r.SAvg),
			fmt.Sprintf("%.2f", r.DAvg),
			fmt.Sprintf("%.1f", r.ErrPct),
		}
	}
	return renderRows("Ablation A5: temporally correlated input streams", header, body)
}
