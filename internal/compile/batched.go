package compile

// Opcode-batched wave execution.
//
// Profiling the linear interpreter on s38417-class programs shows the
// per-instruction switch, not memory traffic, is the dominant cost: gate
// types arrive in near-random order, so the 14-way dispatch branch
// mispredicts on most instructions (~5-6 ns each on a desktop core,
// comparable to the bitwise work itself). The blocked compiler already
// establishes that instructions of one logic level are write/read-
// disjoint — the property the level-parallel executor is built on — so
// within a wave they may execute in any order. Sorting each wave's
// instructions by opcode makes the dispatch stream perfectly
// predictable, and lets the executor dispatch once per same-opcode run
// with an unrolled row kernel instead of once per instruction. The
// per-lane results are unchanged: every op is a pure per-word bitwise
// function, and no instruction reads a row written by its own wave.

// sortRunsByOpcode stable-sorts code by opcode within each level run.
// levels must align with code (levels[i] is code[i]'s level) and be
// nondecreasing; instructions of equal level and opcode keep their
// order. The caller must own code — segments sort private copies, never
// the parent program's stream.
func sortRunsByOpcode(code []inst, levels []int32) {
	var buckets [numOpcodes][]inst
	for lo := 0; lo < len(code); {
		hi := lo + 1
		for hi < len(code) && levels[hi] == levels[lo] {
			hi++
		}
		run := code[lo:hi]
		for op := range buckets {
			buckets[op] = buckets[op][:0]
		}
		for _, in := range run {
			buckets[in.op] = append(buckets[in.op], in)
		}
		k := 0
		for op := range buckets {
			for _, in := range buckets[op] {
				run[k] = in
				k++
			}
		}
		lo = hi
	}
}

// execRuns8 executes opcode-sorted code over a register file of 8-word
// rows (512 lanes, the compiled backend's full width), dispatching once
// per run of equal opcodes. Row accesses go through fixed-size array
// pointers, so each kernel body is a fully unrolled, bounds-check-free
// sequence of eight word ops. Bit-identical to execCode on the same
// code: only the dispatch structure differs.
func execRuns8(code []inst, args []int32, vals []uint64) {
	for i := 0; i < len(code); {
		op := code[i].op
		j := i + 1
		for j < len(code) && code[j].op == op {
			j++
		}
		run := code[i:j]
		i = j
		switch op {
		case opCopy:
			for k := range run {
				in := &run[k]
				*(*[8]uint64)(vals[int(in.dst)*8:]) = *(*[8]uint64)(vals[int(in.a)*8:])
			}
		case opNot:
			for k := range run {
				in := &run[k]
				a := (*[8]uint64)(vals[int(in.a)*8:])
				d := (*[8]uint64)(vals[int(in.dst)*8:])
				d[0], d[1], d[2], d[3] = ^a[0], ^a[1], ^a[2], ^a[3]
				d[4], d[5], d[6], d[7] = ^a[4], ^a[5], ^a[6], ^a[7]
			}
		case opAnd2:
			for k := range run {
				in := &run[k]
				a := (*[8]uint64)(vals[int(in.a)*8:])
				b := (*[8]uint64)(vals[int(in.b)*8:])
				d := (*[8]uint64)(vals[int(in.dst)*8:])
				d[0], d[1], d[2], d[3] = a[0]&b[0], a[1]&b[1], a[2]&b[2], a[3]&b[3]
				d[4], d[5], d[6], d[7] = a[4]&b[4], a[5]&b[5], a[6]&b[6], a[7]&b[7]
			}
		case opNand2:
			for k := range run {
				in := &run[k]
				a := (*[8]uint64)(vals[int(in.a)*8:])
				b := (*[8]uint64)(vals[int(in.b)*8:])
				d := (*[8]uint64)(vals[int(in.dst)*8:])
				d[0], d[1], d[2], d[3] = ^(a[0] & b[0]), ^(a[1] & b[1]), ^(a[2] & b[2]), ^(a[3] & b[3])
				d[4], d[5], d[6], d[7] = ^(a[4] & b[4]), ^(a[5] & b[5]), ^(a[6] & b[6]), ^(a[7] & b[7])
			}
		case opOr2:
			for k := range run {
				in := &run[k]
				a := (*[8]uint64)(vals[int(in.a)*8:])
				b := (*[8]uint64)(vals[int(in.b)*8:])
				d := (*[8]uint64)(vals[int(in.dst)*8:])
				d[0], d[1], d[2], d[3] = a[0]|b[0], a[1]|b[1], a[2]|b[2], a[3]|b[3]
				d[4], d[5], d[6], d[7] = a[4]|b[4], a[5]|b[5], a[6]|b[6], a[7]|b[7]
			}
		case opNor2:
			for k := range run {
				in := &run[k]
				a := (*[8]uint64)(vals[int(in.a)*8:])
				b := (*[8]uint64)(vals[int(in.b)*8:])
				d := (*[8]uint64)(vals[int(in.dst)*8:])
				d[0], d[1], d[2], d[3] = ^(a[0] | b[0]), ^(a[1] | b[1]), ^(a[2] | b[2]), ^(a[3] | b[3])
				d[4], d[5], d[6], d[7] = ^(a[4] | b[4]), ^(a[5] | b[5]), ^(a[6] | b[6]), ^(a[7] | b[7])
			}
		case opXor2:
			for k := range run {
				in := &run[k]
				a := (*[8]uint64)(vals[int(in.a)*8:])
				b := (*[8]uint64)(vals[int(in.b)*8:])
				d := (*[8]uint64)(vals[int(in.dst)*8:])
				d[0], d[1], d[2], d[3] = a[0]^b[0], a[1]^b[1], a[2]^b[2], a[3]^b[3]
				d[4], d[5], d[6], d[7] = a[4]^b[4], a[5]^b[5], a[6]^b[6], a[7]^b[7]
			}
		case opXnor2:
			for k := range run {
				in := &run[k]
				a := (*[8]uint64)(vals[int(in.a)*8:])
				b := (*[8]uint64)(vals[int(in.b)*8:])
				d := (*[8]uint64)(vals[int(in.dst)*8:])
				d[0], d[1], d[2], d[3] = ^(a[0] ^ b[0]), ^(a[1] ^ b[1]), ^(a[2] ^ b[2]), ^(a[3] ^ b[3])
				d[4], d[5], d[6], d[7] = ^(a[4] ^ b[4]), ^(a[5] ^ b[5]), ^(a[6] ^ b[6]), ^(a[7] ^ b[7])
			}
		default:
			// n-ary forms: the run still shares one opcode, so the reduce
			// loop below stays branch-predictable; the accumulator lives in
			// registers until the final store.
			for k := range run {
				in := &run[k]
				ops := args[in.off : in.off+in.n]
				acc := *(*[8]uint64)(vals[int(ops[0])*8:])
				switch op {
				case opAndN, opNandN:
					for _, s := range ops[1:] {
						b := (*[8]uint64)(vals[int(s)*8:])
						acc[0], acc[1], acc[2], acc[3] = acc[0]&b[0], acc[1]&b[1], acc[2]&b[2], acc[3]&b[3]
						acc[4], acc[5], acc[6], acc[7] = acc[4]&b[4], acc[5]&b[5], acc[6]&b[6], acc[7]&b[7]
					}
				case opOrN, opNorN:
					for _, s := range ops[1:] {
						b := (*[8]uint64)(vals[int(s)*8:])
						acc[0], acc[1], acc[2], acc[3] = acc[0]|b[0], acc[1]|b[1], acc[2]|b[2], acc[3]|b[3]
						acc[4], acc[5], acc[6], acc[7] = acc[4]|b[4], acc[5]|b[5], acc[6]|b[6], acc[7]|b[7]
					}
				case opXorN, opXnorN:
					for _, s := range ops[1:] {
						b := (*[8]uint64)(vals[int(s)*8:])
						acc[0], acc[1], acc[2], acc[3] = acc[0]^b[0], acc[1]^b[1], acc[2]^b[2], acc[3]^b[3]
						acc[4], acc[5], acc[6], acc[7] = acc[4]^b[4], acc[5]^b[5], acc[6]^b[6], acc[7]^b[7]
					}
				}
				switch op {
				case opNandN, opNorN, opXnorN:
					acc[0], acc[1], acc[2], acc[3] = ^acc[0], ^acc[1], ^acc[2], ^acc[3]
					acc[4], acc[5], acc[6], acc[7] = ^acc[4], ^acc[5], ^acc[6], ^acc[7]
				}
				*(*[8]uint64)(vals[int(in.dst)*8:]) = acc
			}
		}
	}
}
