// Package core implements the paper's contribution: DIPE, the
// distribution-independent statistical power estimator for sequential
// circuits.
//
// The estimation flow follows Fig. 1 of the paper:
//
//  1. Load the circuit, timing model and power model (Testbench).
//  2. Select an independence interval m with a sequential procedure
//     built on a randomness test (Fig. 2; SelectInterval).
//  3. Generate a random power sample two-phase: m zero-delay cycles
//     between sampled cycles, each sampled cycle simulated with the
//     event-driven general-delay simulator (sim.Session).
//  4. Feed samples to a distribution-independent stopping criterion and
//     stop when the accuracy specification is met (Estimate).
//
// Interval selection implements Section III (Fig. 2's sequential
// procedure over the runs test); the sampling/stopping phase implements
// Section IV. EstimateParallel runs the same flow with many independent
// replications advanced concurrently on the bit-packed simulator, with
// deterministic seeding and merge order. The Ctx variants add
// cooperative cancellation (covering interval selection too, via
// SelectIntervalCtx), and Options.Progress streams running snapshots
// with a guaranteed terminal snapshot — the hooks the dipe-server job
// manager is built on.
//
// Options.Mode selects the power-observation scenario (power.PowerMode):
// the default general-delay mode observes sampled cycles with per-lane
// event-driven simulation, the zero-delay mode with word-parallel packed
// transition counting, making sampled cycles as cheap as hidden ones.
// Result.Engine and Result.DelayModel record what a run actually used.
//
// Options.Variance selects a variance-reduction transform (vr.Spec):
// antithetic replication pairing or a control-variate correction by the
// same-cycle zero-delay toggle power. ResolvePlan freezes the transform
// into a vr.Plan after interval selection — regression-estimating the
// coefficient from the phase-1 sequence and the covariate mean from a
// packed pre-run — and both the in-process estimator and the cluster
// coordinator apply the identical plan, keeping distributed runs
// bit-identical. The Merger folds antithetic rounds to pair means, so
// pairing is a pure function of the canonical merge order.
package core
