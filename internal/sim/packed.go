package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/netlist"
	"repro/internal/vectors"
)

// MaxLanes is the number of independent replications a packed simulator
// advances concurrently: one per bit of a machine word.
const MaxLanes = 64

// PackedZeroDelay is the bit-parallel counterpart of ZeroDelay: every
// node value is a 64-bit word whose bit k holds the node's value in
// replication lane k, so one levelized sweep settles 64 independent
// copies of the circuit at once. Gate evaluation is pure bitwise logic
// (AND/OR/XOR/NOT and their n-ary reductions over the CSR fanin rows),
// which is the software analogue of evaluating many patterns per gate
// concurrently in hardware-accelerated power estimation.
type PackedZeroDelay struct {
	csr *netlist.CSR
}

// NewPackedZeroDelay builds a packed zero-delay simulator for a frozen
// circuit.
func NewPackedZeroDelay(c *netlist.Circuit) *PackedZeroDelay {
	if !c.Frozen() {
		panic("sim: NewPackedZeroDelay requires a frozen circuit")
	}
	return &PackedZeroDelay{csr: c.CSR()}
}

// Settle writes the steady-state value word of every node into vals,
// given the packed primary-input patterns pins (one word per input,
// aligned with c.Inputs) and packed latch outputs q (one word per latch,
// aligned with c.Latches). len(vals) must be c.NumNodes(). Lane k of the
// result is exactly what scalar ZeroDelay.Settle would produce for lane
// k's (pins, q).
func (z *PackedZeroDelay) Settle(vals []uint64, pins, q []uint64) {
	r := z.csr
	if len(vals) != r.NumNodes() {
		panic(fmt.Sprintf("sim: packed Settle vals length %d, want %d", len(vals), r.NumNodes()))
	}
	for i, id := range r.Inputs {
		vals[id] = pins[i]
	}
	for i, id := range r.Latches {
		vals[id] = q[i]
	}
	for _, id := range r.Const0s {
		vals[id] = 0
	}
	for _, id := range r.Const1s {
		vals[id] = ^uint64(0)
	}
	faninIdx, faninList, kinds := r.FaninIdx, r.FaninList, r.Kind
	for _, id := range r.Order {
		vals[id] = evalPacked(vals, kinds[id], faninList[faninIdx[id]:faninIdx[id+1]])
	}
}

// NextState reads the packed next latch state out of a settled value
// array into nextQ: the value word at each DFF's D pin.
func (z *PackedZeroDelay) NextState(vals []uint64, nextQ []uint64) {
	for i, d := range z.csr.LatchD {
		nextQ[i] = vals[d]
	}
}

// Outputs reads the packed primary-output values out of a settled value
// array.
func (z *PackedZeroDelay) Outputs(vals []uint64, out []uint64) {
	for i, id := range z.csr.Outputs {
		out[i] = vals[id]
	}
}

// PackedSession drives up to 64 independent replications of a sequential
// circuit through clock cycles in lock-step, one replication per word
// lane. Each lane has its own input source (fixed lane→source mapping,
// so results are reproducible and lane k is bit-for-bit identical to a
// scalar Session over the same source). Hidden cycles advance all lanes
// with one packed sweep. Sampled cycles come in two flavours:
// StepSampled observes all 64 lanes at once with word-level zero-delay
// transition counting (as cheap as a hidden cycle plus one diff pass),
// and StepSampledWith hands each lane to a scalar power engine for
// general-delay (glitch-accurate) accounting.
//
// The class invariant mirrors Session's: vals always holds the packed
// settled node values for the current (pins, q) pair.
type PackedSession struct {
	c     *netlist.Circuit
	pz    *PackedZeroDelay
	srcs  []vectors.Source
	lanes int
	mask  uint64 // bit k set iff lane k is active

	vals    []uint64 // one word per node
	oldVals []uint64 // previous settled words, for zero-delay toggle diffs
	pins    []uint64 // one word per input
	q       []uint64 // one word per latch
	nextQ   []uint64
	buf     []uint64 // next packed pattern under construction

	laneBuf []bool // one lane's pattern, as drawn from its source

	// scratch for sampled cycles: one lane in scalar representation.
	svals []bool
	spins []bool
	sq    []bool

	// counts, when installed via AccumulateToggles, receives per-node
	// transition counts summed over all active lanes of every sampled
	// cycle.
	counts []uint64

	// HiddenCycles and SampledCycles count per-replication cycles (one
	// StepHidden over L lanes adds L), so they are directly comparable
	// with the scalar Session's cost counters.
	HiddenCycles  uint64
	SampledCycles uint64
}

// NewPackedSession builds a packed session over 1..64 per-lane sources.
// Each source must have width len(c.Inputs). Every lane starts in the
// all-zero latch state with an all-zero input pattern, settled — the
// same reset state as a scalar Session.
func NewPackedSession(c *netlist.Circuit, srcs []vectors.Source) *PackedSession {
	if len(srcs) == 0 || len(srcs) > MaxLanes {
		panic(fmt.Sprintf("sim: NewPackedSession needs 1..%d sources, got %d", MaxLanes, len(srcs)))
	}
	for k, src := range srcs {
		if src.Width() != len(c.Inputs) {
			panic(fmt.Sprintf("sim: lane %d source width %d, circuit has %d inputs",
				k, src.Width(), len(c.Inputs)))
		}
	}
	mask := ^uint64(0)
	if len(srcs) < MaxLanes {
		mask = 1<<uint(len(srcs)) - 1
	}
	s := &PackedSession{
		c:       c,
		pz:      NewPackedZeroDelay(c),
		srcs:    append([]vectors.Source(nil), srcs...),
		lanes:   len(srcs),
		mask:    mask,
		vals:    make([]uint64, c.NumNodes()),
		oldVals: make([]uint64, c.NumNodes()),
		pins:    make([]uint64, len(c.Inputs)),
		q:       make([]uint64, len(c.Latches)),
		nextQ:   make([]uint64, len(c.Latches)),
		buf:     make([]uint64, len(c.Inputs)),
		laneBuf: make([]bool, len(c.Inputs)),
		svals:   make([]bool, c.NumNodes()),
		spins:   make([]bool, len(c.Inputs)),
		sq:      make([]bool, len(c.Latches)),
	}
	s.pz.Settle(s.vals, s.pins, s.q)
	return s
}

// Circuit returns the simulated circuit.
func (s *PackedSession) Circuit() *netlist.Circuit { return s.c }

// Lanes returns the number of active replication lanes.
func (s *PackedSession) Lanes() int { return s.lanes }

// ResetCounters zeroes the cycle-cost counters.
func (s *PackedSession) ResetCounters() {
	s.HiddenCycles = 0
	s.SampledCycles = 0
}

// AccumulateToggles installs dst (len NumNodes, or nil to disable) as
// the per-node transition-count accumulator: every sampled cycle adds
// each active lane's transitions at node i into dst[i]. Zero-delay
// sampled steps count from the packed word diff (one popcount per
// node word); engine-observed steps count from the scalar engine, so
// general-delay accounting includes glitches. Accumulation never
// perturbs powers — per-lane samples stay bit-identical with and
// without it.
func (s *PackedSession) AccumulateToggles(dst []uint64) {
	if dst != nil && len(dst) != s.c.NumNodes() {
		panic(fmt.Sprintf("sim: AccumulateToggles length %d, want %d", len(dst), s.c.NumNodes()))
	}
	s.counts = dst
}

// advance computes the packed next latch state from the current settled
// values and draws every lane's next input pattern into buf.
func (s *PackedSession) advance() {
	s.pz.NextState(s.vals, s.nextQ)
	for i := range s.buf {
		s.buf[i] = 0
	}
	for k := 0; k < s.lanes; k++ {
		s.srcs[k].Next(s.laneBuf)
		bit := uint64(1) << uint(k)
		for i, v := range s.laneBuf {
			if v {
				s.buf[i] |= bit
			}
		}
	}
}

// StepHidden advances every lane one clock cycle with the packed
// zero-delay simulator. No transitions are counted.
func (s *PackedSession) StepHidden() {
	s.advance()
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	s.pz.Settle(s.vals, s.pins, s.q)
	s.HiddenCycles += uint64(s.lanes)
}

// StepHiddenN advances n cycles with StepHidden.
func (s *PackedSession) StepHiddenN(n int) {
	for i := 0; i < n; i++ {
		s.StepHidden()
	}
}

// StepSampled advances every lane one clock cycle and computes each
// lane's zero-delay power entirely at word level: the new packed state
// is settled with one 64-lane sweep, the value words are XORed against
// the previous settled words, and every set bit adds the node's weight
// to its lane's sum. powers[k] receives lane k's weighted functional
// transition sum (len(powers) >= Lanes()); glitches are excluded by
// construction. Lane k is bit-identical — including float summation
// order — to a scalar session with the ZeroDelayToggle engine over the
// same source, which the sim property tests assert for all 64 lanes.
//
// This makes a sampled cycle cost one packed sweep plus one diff pass,
// the same order as a hidden cycle — the zero-delay mode's sampled
// phase runs at packed-simulation throughput.
func (s *PackedSession) StepSampled(weights []float64, powers []float64) {
	if len(powers) < s.lanes {
		panic(fmt.Sprintf("sim: packed StepSampled powers length %d, want >= %d", len(powers), s.lanes))
	}
	if len(weights) != len(s.vals) {
		panic(fmt.Sprintf("sim: packed StepSampled weights length %d, want %d", len(weights), len(s.vals)))
	}
	s.advance()
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	s.vals, s.oldVals = s.oldVals, s.vals
	s.pz.Settle(s.vals, s.pins, s.q)
	s.toggleDiff(weights, powers, s.counts)
	s.SampledCycles += uint64(s.lanes)
}

// observeLanes hands every lane of the advanced-but-unapplied state
// (after advance: current settled values in vals, new pins in buf, new
// latch state in nextQ) to the scalar power engine. It is the one
// per-lane observation pass shared by StepSampledWith and
// StepSampledBoth, which keeps their powers bit-identical by
// construction.
func (s *PackedSession) observeLanes(engine PowerEngine, weights, powers []float64) {
	for k := 0; k < s.lanes; k++ {
		extractWord(k, s.svals, s.vals)
		extractWord(k, s.spins, s.buf)
		extractWord(k, s.sq, s.nextQ)
		powers[k] = engine.CyclePower(s.svals, s.spins, s.sq, weights, s.counts)
	}
}

// toggleDiff accumulates each lane's weighted zero-delay toggle sum
// from the settled word diff (vals vs oldVals). It is the one diff
// pass shared by StepSampled and StepSampledBoth, which keeps the
// toggle covariate bit-identical to the packed zero-delay power by
// construction. counts, when non-nil, additionally receives each
// node's cross-lane transition count (one popcount per node word);
// StepSampledBoth passes nil here because its counts come from the
// scalar engine, which would otherwise double-count the cycle.
func (s *PackedSession) toggleDiff(weights, powers []float64, counts []uint64) {
	for k := 0; k < s.lanes; k++ {
		powers[k] = 0
	}
	for i, w := range weights {
		// Inactive lanes are masked out: their inputs are frozen at the
		// reset pattern but latch feedback could still toggle them.
		d := (s.vals[i] ^ s.oldVals[i]) & s.mask
		if counts != nil {
			counts[i] += uint64(bits.OnesCount64(d))
		}
		for ; d != 0; d &= d - 1 {
			powers[bits.TrailingZeros64(d)] += w
		}
	}
}

// StepSampledWith advances every lane one clock cycle, observing each
// lane's transitions with the scalar power engine (which must be built
// for the same circuit) — per-lane event-driven simulation for the
// general-delay mode. powers[k] receives lane k's weighted transition
// sum (len(powers) >= Lanes()). The packed state is advanced by a
// zero-delay settle — every engine agrees with zero-delay simulation on
// settled values, so lane equivalence with scalar sessions is exact.
func (s *PackedSession) StepSampledWith(engine PowerEngine, weights []float64, powers []float64) {
	if len(powers) < s.lanes {
		panic(fmt.Sprintf("sim: packed StepSampledWith powers length %d, want >= %d", len(powers), s.lanes))
	}
	s.advance()
	s.observeLanes(engine, weights, powers)
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	s.pz.Settle(s.vals, s.pins, s.q)
	s.SampledCycles += uint64(s.lanes)
}

// StepSampledBoth advances every lane one clock cycle, observing each
// lane's transitions with the scalar power engine (exactly as
// StepSampledWith does — powers[k] is bit-identical to it) while also
// computing every lane's zero-delay toggle power at word level (exactly
// as StepSampled does — toggles[k] is bit-identical to it). The same
// cycle thus yields the general-delay sample and its functional-toggle
// covariate, which is what the control-variate transform consumes: the
// covariate costs one extra XOR diff pass, not a second simulation.
func (s *PackedSession) StepSampledBoth(engine PowerEngine, weights []float64, powers, toggles []float64) {
	if len(powers) < s.lanes || len(toggles) < s.lanes {
		panic(fmt.Sprintf("sim: packed StepSampledBoth powers/toggles lengths %d/%d, want >= %d",
			len(powers), len(toggles), s.lanes))
	}
	if len(weights) != len(s.vals) {
		panic(fmt.Sprintf("sim: packed StepSampledBoth weights length %d, want %d", len(weights), len(s.vals)))
	}
	s.advance()
	s.observeLanes(engine, weights, powers)
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	s.vals, s.oldVals = s.oldVals, s.vals
	s.pz.Settle(s.vals, s.pins, s.q)
	s.toggleDiff(weights, toggles, nil)
	s.SampledCycles += uint64(s.lanes)
}

// ExtractLane copies lane k's settled state into scalar arrays: node
// values (len NumNodes), input pattern (len #inputs) and latch state
// (len #latches). Any destination may be nil to skip it. This is the
// bridge that hands a single replication to scalar simulators.
func (s *PackedSession) ExtractLane(k int, vals, pins, q []bool) {
	if k < 0 || k >= s.lanes {
		panic(fmt.Sprintf("sim: ExtractLane %d of %d", k, s.lanes))
	}
	if vals != nil {
		extractWord(k, vals, s.vals)
	}
	if pins != nil {
		extractWord(k, pins, s.pins)
	}
	if q != nil {
		extractWord(k, q, s.q)
	}
}

// extractWord unpacks bit k of every word in src into dst.
func extractWord(k int, dst []bool, src []uint64) {
	bit := uint64(1) << uint(k)
	for i, w := range src {
		dst[i] = w&bit != 0
	}
}
