package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/randtest"
)

func TestAblationDelayModels(t *testing.T) {
	cfg := tinyConfig()
	cfg.Circuits = []string{"s298", "s1196"}
	rows, err := AblationDelayModels(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PZero <= 0 || r.PUnit <= 0 || r.PFanout <= 0 {
			t.Errorf("%s: nonpositive power %+v", r.Name, r)
		}
		// Glitches only add transitions: general-delay power must be at
		// least the functional power (same input stream, same weights).
		if r.PFanout < r.PZero*0.999 {
			t.Errorf("%s: fanout power %g below zero-delay %g", r.Name, r.PFanout, r.PZero)
		}
		if r.GlitchPct < 0 || r.GlitchPct > 80 {
			t.Errorf("%s: implausible glitch share %.1f%%", r.Name, r.GlitchPct)
		}
	}
	if out := RenderDelayModels(rows); !strings.Contains(out, "A6") {
		t.Error("render missing title")
	}
}

func TestCalibrationRunsTest(t *testing.T) {
	cfg := tinyConfig()
	rows := CalibrationRunsTest(cfg, randtest.OrdinaryRuns{}, 320, 800, []float64{0.05, 0.20, 0.50})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Empirical rejection rate must track alpha (Eq. 6); with 800
		// sequences the binomial noise is ~2-5%.
		if math.Abs(r.RejectRate-r.Alpha) > 0.06 {
			t.Errorf("alpha=%.2f: rejection rate %.3f", r.Alpha, r.RejectRate)
		}
	}
	// Rejection rate must increase with alpha.
	if !(rows[0].RejectRate < rows[2].RejectRate) {
		t.Errorf("rejection not increasing: %+v", rows)
	}
	if out := RenderCalibration(rows); !strings.Contains(out, "Calibration") {
		t.Error("render missing title")
	}
}
