//go:build slow

package core

// coverageRuns under -tags slow: the full-size conformance run the
// nightly CI job executes (>= 200 independent estimates per mode, as
// the statistical conformance suite specifies).
const coverageRuns = 240
