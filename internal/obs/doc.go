// Package obs is the dependency-free observability substrate shared by
// every layer of the system: a metrics registry with Prometheus
// text-format exposition, a leveled structured logger (JSON or logfmt),
// and a per-job trace recorder.
//
// # Metrics
//
// A Registry hands out Counter, Gauge and Histogram instruments keyed
// by metric name, plus labeled variants (CounterVec, GaugeVec,
// HistogramVec) and scrape-time callback metrics (CounterFunc,
// GaugeFunc). Hot-path updates are single atomic operations on
// pre-resolved instrument handles; label resolution (the map lookup)
// happens once at setup, never per increment. Every instrument is safe
// for concurrent use.
//
// All instrument methods are nil-receiver safe, and a nil *Registry
// hands out nil instruments, so "observability disabled" is spelled by
// simply not constructing a registry: call sites keep their
// instrumentation statements and pay only a nil-check branch
// (benchmarked at <1% of the compiled duty cycle — see
// BenchmarkCompiledInstrumentOverhead).
//
// Exposition is the Prometheus text format, served by Registry.Handler
// (mounted at /metrics on dipe-server and dipe-worker) or written
// directly with WriteProm. Metric names follow the repository
// convention dipe_<subsystem>_<name>, enforced by
// scripts/check_metric_names.sh in CI.
//
// # Logging
//
// Logger writes leveled structured records — logfmt by default, JSON
// when constructed with FormatJSON — with constant base fields attached
// via With. A nil *Logger discards everything, so components accept a
// logger without guarding call sites.
//
// # Tracing
//
// Trace records a job's lifecycle as an ordered span list (submit →
// select-interval → plan-resolve → shard → lease/steal/expiry →
// merge-round → stop) with millisecond timestamps relative to the trace
// start. Traces travel through context (ContextWithTrace / TraceFrom)
// so the core estimator and cluster coordinator can annotate spans
// without signature changes, and Import splices spans persisted before
// a restart ahead of post-resume spans with monotonically increasing
// timestamps. Span capacity is bounded; overflow is counted, not
// allocated.
package obs
