// Package vectors generates primary-input pattern streams for power
// simulation. The paper's experiments use mutually independent inputs
// with signal probability 0.5, but explicitly claims the method handles
// correlated streams "without any extra work"; this package therefore
// provides i.i.d., temporally correlated (lag-1 Markov), spatially
// correlated, and trace-replay sources behind one interface.
//
// All sources are deterministic given their seed, so every experiment in
// the repository is reproducible bit-for-bit. Factory builds a source
// per seed, which is how the parallel estimator and the service hand
// every replication fresh, reproducible randomness (replication r of a
// job with base seed s is always seeded s+1+r).
package vectors
