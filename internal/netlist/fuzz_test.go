package netlist

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics mutates a valid netlist thousands of ways and
// asserts the parser either succeeds or returns an error — never panics
// and never produces an unfrozen circuit. This is the failure-injection
// test for the front end: truncated files, flipped bytes, duplicated
// lines, shuffled lines.
func TestParserNeverPanics(t *testing.T) {
	base := `# mutant base
INPUT(A)
INPUT(B)
OUTPUT(Y)
Q = DFF(D)
N1 = NAND(A, Q)
D = XOR(N1, B)
Y = NOT(D)
`
	rng := rand.New(rand.NewSource(99))
	mutate := func(s string) string {
		b := []byte(s)
		switch rng.Intn(5) {
		case 0: // truncate
			if len(b) > 1 {
				b = b[:rng.Intn(len(b))]
			}
		case 1: // flip a byte
			if len(b) > 0 {
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			}
		case 2: // duplicate a line
			lines := strings.Split(s, "\n")
			i := rng.Intn(len(lines))
			lines = append(lines[:i], append([]string{lines[i]}, lines[i:]...)...)
			return strings.Join(lines, "\n")
		case 3: // delete a line
			lines := strings.Split(s, "\n")
			if len(lines) > 1 {
				i := rng.Intn(len(lines))
				lines = append(lines[:i], lines[i+1:]...)
			}
			return strings.Join(lines, "\n")
		case 4: // shuffle lines (definition order must not matter...
			// unless a reference breaks, which must then error cleanly)
			lines := strings.Split(s, "\n")
			rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
			return strings.Join(lines, "\n")
		}
		return string(b)
	}

	for trial := 0; trial < 3000; trial++ {
		text := base
		for m := 0; m <= rng.Intn(3); m++ {
			text = mutate(text)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on mutant %d:\n%s\npanic: %v", trial, text, r)
				}
			}()
			c, err := ParseBenchString("mutant", text)
			if err == nil && c != nil && !c.Frozen() {
				t.Fatalf("parser returned unfrozen circuit on mutant %d", trial)
			}
		}()
	}
}

// TestParserLineShuffleInvariance: a valid netlist parses identically
// regardless of gate definition order (the format is declarative).
func TestParserLineShuffleInvariance(t *testing.T) {
	decls := []string{
		"Q = DFF(D)",
		"N1 = NAND(A, Q)",
		"D = XOR(N1, B)",
		"Y = NOT(D)",
	}
	header := "INPUT(A)\nINPUT(B)\nOUTPUT(Y)\n"
	rng := rand.New(rand.NewSource(5))
	var wantStats Stats
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]string(nil), decls...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		c, err := ParseBenchString("shuffle", header+strings.Join(shuffled, "\n")+"\n")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		st := c.ComputeStats()
		if trial == 0 {
			wantStats = st
			continue
		}
		if st != wantStats {
			t.Fatalf("trial %d: stats changed with declaration order: %+v vs %+v", trial, st, wantStats)
		}
	}
}

// TestParserLargeInput exercises the scanner's buffer growth on a
// generated netlist with thousands of gates and very long lines.
func TestParserLargeInput(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("INPUT(A)\n")
	const n = 5000
	for i := 0; i < n; i++ {
		prev := "A"
		if i > 0 {
			prev = name(i - 1)
		}
		sb.WriteString(name(i) + " = NOT(" + prev + ")\n")
	}
	// One wide AND over many signals: a single very long line.
	sb.WriteString("WIDE = AND(")
	for i := 0; i < n; i += 7 {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(name(i))
	}
	sb.WriteString(")\nOUTPUT(WIDE)\n")

	c, err := ParseBenchString("large", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != n+1 {
		t.Fatalf("gates = %d, want %d", c.NumGates(), n+1)
	}
	if c.Depth() != n {
		t.Fatalf("depth = %d, want %d", c.Depth(), n)
	}
}

func name(i int) string {
	const letters = "GHJKMN"
	return string(letters[i%len(letters)]) + itoa(i)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
