// Package netlist defines the gate-level circuit representation used
// throughout the library, together with an ISCAS89 ".bench" reader and
// writer, structural validation, and levelization of the combinational
// part (the evaluation order used by the zero-delay simulator).
//
// A Circuit is a flat array of nodes. Node IDs are dense indices into
// that array, which lets simulators use plain slices for node state.
//
// This is the "Circuit Description" box of Fig. 1 (the paper's circuit
// model, Section II). Freeze validates the netlist, derives fanouts,
// levelizes the combinational part and builds the flat CSR view
// (csr.go) that every simulator inner loop runs over; freezing is the
// per-design cost the dipe-server registry amortizes across requests.
package netlist
