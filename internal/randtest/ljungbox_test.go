package randtest

import (
	"math"
	"testing"
)

func TestLjungBoxAcceptsIID(t *testing.T) {
	accept := 0
	const runs = 200
	for i := 0; i < runs; i++ {
		if (LjungBox{}).Apply(iidSeq(320, int64(i))).Accept(0.20) {
			accept++
		}
	}
	if accept < int(0.70*runs) {
		t.Fatalf("Ljung-Box accepted %d/%d i.i.d. sequences at alpha=0.2", accept, runs)
	}
}

func TestLjungBoxFalseRejectionNearAlpha(t *testing.T) {
	const runs = 1000
	reject := 0
	for i := 0; i < runs; i++ {
		if !(LjungBox{}).Apply(iidSeq(500, int64(5000+i))).Accept(0.05) {
			reject++
		}
	}
	rate := float64(reject) / runs
	if rate > 0.10 {
		t.Fatalf("false rejection rate %.3f at alpha=0.05", rate)
	}
}

func TestLjungBoxRejectsAR1(t *testing.T) {
	for i := 0; i < 20; i++ {
		r := (LjungBox{}).Apply(ar1Seq(320, 0.6, int64(i)))
		if r.Accept(0.20) {
			t.Fatalf("accepted AR(1) rho=0.6 (seed %d, z=%g p=%g)", i, r.Z, r.PValue)
		}
	}
}

func TestLjungBoxSensitiveToOscillation(t *testing.T) {
	// A lag-5 oscillatory process has weak lag-1 signal; pooling over 10
	// lags must catch it.
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/10) + 0.1*float64(i%3)
	}
	r := LjungBox{Lags: 10}.Apply(xs)
	if r.Accept(0.05) {
		t.Fatalf("accepted periodic sequence (z=%g)", r.Z)
	}
}

func TestLjungBoxDegenerateCases(t *testing.T) {
	if r := (LjungBox{}).Apply(make([]float64, 100)); !r.Degenerate {
		t.Errorf("constant sequence not degenerate: %+v", r)
	}
	if r := (LjungBox{}).Apply([]float64{1, 2, 3}); !r.Degenerate {
		t.Errorf("short sequence not degenerate: %+v", r)
	}
	// n barely above lags.
	if r := (LjungBox{Lags: 30}).Apply(iidSeq(25, 1)); !r.Degenerate {
		t.Errorf("n<=h+1 not degenerate: %+v", r)
	}
}

func TestLjungBoxZMatchesPValue(t *testing.T) {
	// Accept at alpha iff p >= alpha, via the z mapping.
	r := (LjungBox{}).Apply(iidSeq(320, 3))
	if r.Degenerate {
		t.Skip("degenerate draw")
	}
	for _, alpha := range []float64{0.01, 0.05, 0.2, 0.5} {
		wantAccept := r.PValue >= alpha
		if got := r.Accept(alpha); got != wantAccept {
			t.Errorf("alpha=%g: Accept=%v but p=%g", alpha, got, r.PValue)
		}
	}
}

func TestLjungBoxInComposite(t *testing.T) {
	comp := Composite{Tests: []Test{OrdinaryRuns{}, LjungBox{}}}
	if comp.Apply(ar1Seq(320, 0.7, 9)).Accept(0.2) {
		t.Fatal("composite with Ljung-Box accepted correlated data")
	}
}
