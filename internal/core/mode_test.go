package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/bench89"
	"repro/internal/delay"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/vectors"
)

// golden holds results captured from the estimator BEFORE the power-
// engine refactor (commit 32efb46, seed 42, default options, 64
// replications for the parallel rows). The default general-delay path
// must keep reproducing them bit-for-bit: the refactor routes the same
// computation through the PowerEngine interface without changing a
// single arithmetic step.
type golden struct {
	power           float64
	interval        int
	samples         int
	halfWidth       float64
	hidden, sampled uint64
}

var goldenSerial = map[string]golden{
	"s27":  {4.6707915145985263e-05, 0, 4384, 2.2656250000000059e-06, 512, 4384},
	"s298": {0.00035740885416666712, 1, 960, 1.7734375000000009e-05, 1472, 1280},
	"s832": {0.0011258945312499998, 1, 640, 5.6015624999999859e-05, 1152, 960},
}

var goldenParallel = map[string]golden{
	"s27":  {4.5485733695652114e-05, 0, 1472, 2.2656250000000026e-06, 33280, 1472},
	"s298": {0.0003563359375000007, 1, 2560, 1.6640625000000027e-05, 35840, 2880},
	"s832": {0.0011188454861111126, 1, 1152, 4.7187500000000137e-05, 34432, 1472},
}

func checkGolden(t *testing.T, name, kind string, res Result, want golden) {
	t.Helper()
	if res.Power != want.power || res.Interval != want.interval ||
		res.SampleSize != want.samples || res.HalfWidth != want.halfWidth ||
		res.HiddenCycles != want.hidden || res.SampledCycles != want.sampled {
		t.Errorf("%s %s: got (P=%.17g II=%d n=%d hw=%.17g h=%d s=%d), want (P=%.17g II=%d n=%d hw=%.17g h=%d s=%d)",
			name, kind, res.Power, res.Interval, res.SampleSize, res.HalfWidth,
			res.HiddenCycles, res.SampledCycles,
			want.power, want.interval, want.samples, want.halfWidth, want.hidden, want.sampled)
	}
}

// TestGeneralDelayBitIdenticalToPreRefactor pins the default path to
// pre-refactor numbers: for fixed seeds, Estimate and EstimateParallel
// must reproduce the recorded power, interval, sample size, half-width
// and cycle counts exactly.
func TestGeneralDelayBitIdenticalToPreRefactor(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s832"} {
		c, err := bench89.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tb := DefaultTestbench(c)
		w := len(c.Inputs)

		res, err := Estimate(tb.NewSession(vectors.NewIID(w, 0.5, 42)), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, name, "serial", res, goldenSerial[name])
		if res.Engine != sim.EngineEventDriven {
			t.Errorf("%s serial: engine %q", name, res.Engine)
		}

		opts := DefaultOptions()
		opts.Replications = 64
		pres, err := EstimateParallel(tb, vectors.IIDFactory(w, 0.5), 42, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, name, "parallel", pres, goldenParallel[name])
		if pres.Engine != sim.EngineEventDriven || pres.DelayModel != tb.Delays.ModelName {
			t.Errorf("%s parallel: engine %q delay %q", name, pres.Engine, pres.DelayModel)
		}
	}
}

// TestModeSessionMatchesDefaultSession: an explicit general-delay mode
// is the same code path as the default, bit for bit.
func TestModeSessionMatchesDefaultSession(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	w := len(c.Inputs)
	a, err := Estimate(tb.NewSession(vectors.NewIID(w, 0.5, 7)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Mode = power.ModeGeneralDelay
	b, err := Estimate(tb.NewSessionMode(vectors.NewIID(w, 0.5, 7), opts.Mode), opts)
	if err != nil {
		t.Fatal(err)
	}
	a.Trials, b.Trials = nil, nil
	a.Elapsed, b.Elapsed = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("explicit general-delay differs from default:\n%+v\n%+v", a, b)
	}
}

// TestZeroDelayParallelMatchesZeroTableGeneral: estimating in zero-delay
// mode on the default testbench must agree with general-delay estimation
// on a testbench whose delay model is Zero — the same functional
// transitions are counted either way. Power agreement is to a relative
// 1e-12 (the selection phases use different engines, whose float
// summation orders may differ in the last ulp).
func TestZeroDelayParallelMatchesZeroTableGeneral(t *testing.T) {
	c := bench89.MustGet("s298")
	w := len(c.Inputs)
	factory := vectors.IIDFactory(w, 0.5)

	opts := DefaultOptions()
	opts.Replications = 64
	opts.Mode = power.ModeZeroDelay
	za, err := EstimateParallel(DefaultTestbench(c), factory, 9, opts)
	if err != nil {
		t.Fatal(err)
	}
	if za.Engine != sim.EngineCompiledZeroDelay || za.DelayModel != "zero" {
		t.Fatalf("zero-delay mode recorded engine %q delay %q", za.Engine, za.DelayModel)
	}

	ztb := NewTestbench(c, delay.Zero{}, power.DefaultCapModel(), power.DefaultSupply())
	gopts := DefaultOptions()
	gopts.Replications = 64
	zb, err := EstimateParallel(ztb, factory, 9, gopts)
	if err != nil {
		t.Fatal(err)
	}
	if zb.Engine != sim.EngineCompiledZeroDelay {
		t.Fatalf("all-zero table was not upgraded to the word-parallel engine (engine %q)", zb.Engine)
	}
	if za.Interval != zb.Interval || za.SampleSize != zb.SampleSize {
		t.Fatalf("zero-delay mode (II=%d n=%d) vs zero-table general (II=%d n=%d)",
			za.Interval, za.SampleSize, zb.Interval, zb.SampleSize)
	}
	if rel := math.Abs(za.Power-zb.Power) / zb.Power; rel > 1e-12 {
		t.Fatalf("powers differ by %g relative: %.17g vs %.17g", rel, za.Power, zb.Power)
	}
}

// TestZeroDelayBelowGeneralDelay: glitch power only adds, so the
// zero-delay estimate must come in below the general-delay estimate on
// the same circuit (well beyond statistical noise on s832, whose deep
// logic glitches heavily).
func TestZeroDelayBelowGeneralDelay(t *testing.T) {
	c := bench89.MustGet("s832")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	gopts := DefaultOptions()
	gopts.Replications = 64
	g, err := EstimateParallel(tb, factory, 5, gopts)
	if err != nil {
		t.Fatal(err)
	}
	zopts := gopts
	zopts.Mode = power.ModeZeroDelay
	z, err := EstimateParallel(tb, factory, 5, zopts)
	if err != nil {
		t.Fatal(err)
	}
	if z.Power >= g.Power {
		t.Fatalf("zero-delay power %g not below general-delay %g", z.Power, g.Power)
	}
}

// TestSerialZeroDelayMode: the session-based estimator honours a
// zero-delay session and records the engine.
func TestSerialZeroDelayMode(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	s := tb.NewSessionMode(vectors.NewIID(len(c.Inputs), 0.5, 3), power.ModeZeroDelay)
	res, err := Estimate(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != sim.EngineZeroDelay || res.DelayModel != "zero" {
		t.Fatalf("recorded engine %q delay %q", res.Engine, res.DelayModel)
	}
	if res.Power <= 0 {
		t.Fatalf("power %g", res.Power)
	}
}

// TestSelectIntervalCancellable: a cancelled context aborts interval
// selection (previously documented as non-interruptible) from both the
// serial and the parallel estimator.
func TestSelectIntervalCancellable(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err := SelectIntervalCtx(ctx, tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 1)), DefaultOptions())
	if err != context.Canceled {
		t.Fatalf("SelectIntervalCtx error = %v, want context.Canceled", err)
	}
	_, err = EstimateCtx(ctx, tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 1)), DefaultOptions())
	if err != context.Canceled {
		t.Fatalf("EstimateCtx error = %v, want context.Canceled", err)
	}
	_, err = EstimateParallelCtx(ctx, tb, vectors.IIDFactory(len(c.Inputs), 0.5), 1, DefaultOptions())
	if err != context.Canceled {
		t.Fatalf("EstimateParallelCtx error = %v, want context.Canceled", err)
	}
}

// TestFinalProgressSnapshot: the last Progress callback always matches
// the returned result — on convergence and on cancellation — so job
// status pages never show a stale last block.
func TestFinalProgressSnapshot(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)

	var last *Progress
	opts := DefaultOptions()
	opts.Replications = 16
	opts.Progress = func(p Progress) { last = &p }
	res, err := EstimateParallel(tb, factory, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if last == nil || last.Samples != res.SampleSize || last.Power != res.Power {
		t.Fatalf("final progress %+v does not match result (n=%d P=%g)", last, res.SampleSize, res.Power)
	}

	// Cancelled before any block: the terminal snapshot must still fire
	// and reflect the partial (seed-sample-only) state.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	last = nil
	pres, err := EstimateParallelWithIntervalCtx(ctx, tb, factory, 2, opts, 1)
	if err != context.Canceled {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if last == nil || last.Samples != pres.SampleSize {
		t.Fatalf("no terminal progress snapshot on cancellation (last=%+v, n=%d)", last, pres.SampleSize)
	}
}
