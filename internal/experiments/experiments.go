package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/refsim"
	"repro/internal/vectors"
)

// Config controls an experiment campaign.
type Config struct {
	// Circuits is the list of benchmark names (default: all 24 of the
	// paper's tables).
	Circuits []string
	// RefCycles returns the reference-simulation cycle budget for a
	// circuit of the given gate count. The paper uses 1e6 cycles for
	// every circuit; the default scales down with size to keep the whole
	// suite interactive (the reference's standard error is reported so
	// the comparison stays honest).
	RefCycles func(gates int) int
	// RefWarmup is the hidden-cycle warm-up before the reference run.
	RefWarmup int
	// Runs is the number of independent estimation runs per circuit for
	// Table 2 and the ablations (paper: 1000).
	Runs int
	// Opts are the estimator options (paper defaults).
	Opts core.Options
	// InputProb is the primary-input signal probability (paper: 0.5).
	InputProb float64
	// BaseSeed makes the campaign reproducible.
	BaseSeed int64
	// Parallel bounds the number of concurrent estimation runs inside
	// Table2 (each run is an independent session). 0 or 1 means serial.
	// Results are independent of the parallelism level: runs are seeded
	// individually and aggregated in run order.
	Parallel int
	// Replications switches Table1 to the bit-parallel multi-replication
	// estimator (core.EstimateParallel) with this many concurrent
	// replication sequences. 0 keeps the serial single-sequence
	// estimator.
	Replications int
	// Workers bounds the estimator's goroutine pool when Replications is
	// set (0 = GOMAXPROCS). The results do not depend on it.
	Workers int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// DefaultConfig returns the paper's configuration with compute-friendly
// reference budgets and run counts.
func DefaultConfig() Config {
	return Config{
		Circuits:  bench89.Names(),
		RefCycles: DefaultRefCycles,
		RefWarmup: 256,
		Runs:      100,
		Opts:      core.DefaultOptions(),
		InputProb: 0.5,
		BaseSeed:  1997, // the paper's year; any value works
	}
}

// DefaultRefCycles scales the reference budget with circuit size:
// small circuits get paper-like precision, the largest stay tractable.
func DefaultRefCycles(gates int) int {
	switch {
	case gates < 300:
		return 200_000
	case gates < 1_000:
		return 100_000
	case gates < 3_000:
		return 50_000
	default:
		return 20_000
	}
}

// PaperRefCycles reproduces the paper's fixed 1e6-cycle reference.
func PaperRefCycles(int) int { return 1_000_000 }

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format, args...)
	}
}

func (c Config) validate() error {
	if len(c.Circuits) == 0 {
		return fmt.Errorf("experiments: no circuits configured")
	}
	if c.RefCycles == nil {
		return fmt.Errorf("experiments: RefCycles is nil")
	}
	if c.InputProb <= 0 || c.InputProb >= 1 {
		return fmt.Errorf("experiments: input probability %g outside (0,1)", c.InputProb)
	}
	return c.Opts.Validate()
}

// factory returns the input source factory for a circuit width.
func (c Config) factory(width int) vectors.Factory {
	return vectors.IIDFactory(width, c.InputProb)
}

// reference computes the long-run reference for one circuit.
func (c Config) reference(tb *core.Testbench, width int, seed int64) refsim.Result {
	cycles := c.RefCycles(tb.Circuit.NumGates())
	return refsim.Run(tb.NewSession(c.factory(width)(seed)), c.RefWarmup, cycles)
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Name       string
	SIM        float64 // reference average power, watts
	RefRelSE   float64 // reference's own relative standard error
	RefCycles  int
	II         int     // independence interval of the estimation run
	Estimate   float64 // watts
	SampleSize int
	ErrPct     float64 // |Estimate-SIM|/SIM * 100
	Cycles     uint64  // total simulated cycles of the estimation run
	CPUSec     float64 // wall-clock seconds of the estimation run
}

// Table1 regenerates Table 1: one reference and one estimation run per
// circuit.
func Table1(cfg Config) ([]Table1Row, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(cfg.Circuits))
	for ci, name := range cfg.Circuits {
		circ, err := bench89.Get(name)
		if err != nil {
			return nil, err
		}
		tb := core.DefaultTestbench(circ)
		width := len(circ.Inputs)
		seed := cfg.BaseSeed + int64(ci)*1_000_003

		cfg.logf("table1: %s reference (%d cycles)...\n", name, cfg.RefCycles(circ.NumGates()))
		ref := cfg.reference(tb, width, seed)

		start := time.Now()
		var res core.Result
		if cfg.Replications > 0 {
			opts := cfg.Opts
			opts.Replications = cfg.Replications
			opts.Workers = cfg.Workers
			res, err = core.EstimateParallel(tb, cfg.factory(width), seed+1, opts)
		} else {
			res, err = core.Estimate(tb.NewSession(cfg.factory(width)(seed+1)), cfg.Opts)
		}
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", name, err)
		}
		row := Table1Row{
			Name:       name,
			SIM:        ref.Power,
			RefRelSE:   ref.RelStdErr(),
			RefCycles:  ref.Cycles,
			II:         res.Interval,
			Estimate:   res.Power,
			SampleSize: res.SampleSize,
			Cycles:     res.TotalCycles(),
			CPUSec:     time.Since(start).Seconds(),
		}
		if ref.Power != 0 {
			row.ErrPct = 100 * abs(res.Power-ref.Power) / ref.Power
		}
		cfg.logf("table1: %s done: SIM=%.4g est=%.4g II=%d n=%d err=%.2f%%\n",
			name, row.SIM, row.Estimate, row.II, row.SampleSize, row.ErrPct)
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2Row is one row of the paper's Table 2 (Eq. 8 for Davg).
type Table2Row struct {
	Name   string
	Runs   int
	IIMin  int
	IIMax  int
	IIAvg  float64
	SAvg   float64 // average sample size
	DAvg   float64 // average |deviation| percent (Eq. 8)
	ErrPct float64 // percent of runs violating the accuracy spec
	CycAvg float64 // average simulated cycles per run
}

// Table2 regenerates Table 2: cfg.Runs independent estimation runs per
// circuit, summarized against one long reference per circuit.
func Table2(cfg Config) ([]Table2Row, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Runs < 2 {
		return nil, fmt.Errorf("experiments: Table2 needs Runs >= 2, got %d", cfg.Runs)
	}
	rows := make([]Table2Row, 0, len(cfg.Circuits))
	for ci, name := range cfg.Circuits {
		circ, err := bench89.Get(name)
		if err != nil {
			return nil, err
		}
		tb := core.DefaultTestbench(circ)
		width := len(circ.Inputs)
		seed := cfg.BaseSeed + 7_777_777 + int64(ci)*1_000_003

		cfg.logf("table2: %s reference...\n", name)
		ref := cfg.reference(tb, width, seed)

		results, err := runMany(cfg, tb, width, seed+10)
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", name, err)
		}
		row := Table2Row{Name: name, Runs: cfg.Runs, IIMin: 1 << 30}
		var sumII, sumS, sumD, sumCyc float64
		violations := 0
		for _, res := range results {
			if res.Interval < row.IIMin {
				row.IIMin = res.Interval
			}
			if res.Interval > row.IIMax {
				row.IIMax = res.Interval
			}
			sumII += float64(res.Interval)
			sumS += float64(res.SampleSize)
			sumCyc += float64(res.TotalCycles())
			dev := 100 * abs(res.Power-ref.Power) / ref.Power
			sumD += dev
			if dev > 100*cfg.Opts.Spec.RelErr {
				violations++
			}
		}
		n := float64(cfg.Runs)
		row.IIAvg = sumII / n
		row.SAvg = sumS / n
		row.DAvg = sumD / n
		row.CycAvg = sumCyc / n
		row.ErrPct = 100 * float64(violations) / n
		cfg.logf("table2: %s done: II %d..%d avg %.2f, Savg %.0f, Davg %.2f%%, Err %.1f%%\n",
			name, row.IIMin, row.IIMax, row.IIAvg, row.SAvg, row.DAvg, row.ErrPct)
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure3 regenerates the data behind Fig. 3: the runs-test z statistic
// versus trial interval length for one circuit (paper: s1494, sequence
// length 10000, intervals 0..30).
func Figure3(cfg Config, circuit string, seqLen, maxK int) ([]core.ZPoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	circ, err := bench89.Get(circuit)
	if err != nil {
		return nil, err
	}
	tb := core.DefaultTestbench(circ)
	s := tb.NewSession(cfg.factory(len(circ.Inputs))(cfg.BaseSeed + 31_337))
	cfg.logf("figure3: %s, L=%d, k=0..%d\n", circuit, seqLen, maxK)
	return core.ZTrace(s, cfg.Opts, maxK, seqLen)
}

// runMany performs cfg.Runs independent estimation runs (run r seeded
// with baseSeed+r), optionally in parallel, returning results in run
// order so aggregates never depend on scheduling.
func runMany(cfg Config, tb *core.Testbench, width int, baseSeed int64) ([]core.Result, error) {
	results := make([]core.Result, cfg.Runs)
	errs := make([]error, cfg.Runs)
	workers := cfg.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	if workers == 1 {
		for r := 0; r < cfg.Runs; r++ {
			res, err := core.Estimate(tb.NewSession(cfg.factory(width)(baseSeed+int64(r))), cfg.Opts)
			if err != nil {
				return nil, fmt.Errorf("run %d: %w", r, err)
			}
			results[r] = res
		}
		return results, nil
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range work {
				res, err := core.Estimate(tb.NewSession(cfg.factory(width)(baseSeed+int64(r))), cfg.Opts)
				results[r], errs[r] = res, err
			}
		}()
	}
	for r := 0; r < cfg.Runs; r++ {
		work <- r
	}
	close(work)
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", r, err)
		}
	}
	return results, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
